/**
 * @file
 * Reproduces paper Fig. 1: energy breakdown of a conventional dense
 * INT8 systolic array running a typical CNN layer with ~50%
 * sparsity. The paper reports SRAM 21%, PE buffers 49%, MAC
 * datapath 20%, activation function 10%.
 */

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Figure 1",
           "Energy breakdown of a dense INT8 systolic array, "
           "typical conv, 50% weight/activation sparsity");

    const GemmProblem p = typicalConvGemm(0.5, 0.5);
    const DesignPoint sa = evalGemm(ArrayConfig::sa(), p);

    struct Row
    {
        const char *component;
        double measured;
        double paper;
    };
    const Row rows[] = {
        {"SRAM Buffers", sa.energy.sramPj() / sa.energy_pj, 0.21},
        {"PE Buffers (regs/accum)",
         sa.energy.share(Component::PeBuffers), 0.49},
        {"MAC Datapath", sa.energy.share(Component::MacDatapath),
         0.20},
        {"Activation Fn (MCU)", sa.energy.share(Component::Mcu),
         0.10},
    };

    Table t({"Component", "Measured", "Paper Fig.1"});
    for (const Row &r : rows)
        t.addRow({r.component, Table::percent(r.measured),
                  Table::percent(r.paper)});
    t.print();

    std::printf("\nTotal energy: %.1f uJ for %s MACs "
                "(dense-equivalent)\n",
                sa.energy.totalUj(),
                Table::count(sa.events.logical_macs).c_str());
    std::printf("Mean power: %.0f mW at 1 GHz\n",
                sa.energy_pj / static_cast<double>(sa.cycles));
    std::printf("\nKey insight (Sec. 2.1): the INT8 MAC datapath is "
                "~20%% of energy;\noperand/result buffers dominate, "
                "so sparsity hardware must stay lean.\n");

    if (!args.json.empty()) {
        JsonWriter jw;
        jw.field("bench", "fig01_energy_breakdown")
            .field("simd_kernel", benchSimdKernel())
            .field("total_uj", sa.energy.totalUj(), 3)
            .field("pe_buffer_share",
                   sa.energy.share(Component::PeBuffers), 4)
            .field("mac_share",
                   sa.energy.share(Component::MacDatapath), 4);
        jw.write(args.json);
    }
    return 0;
}
