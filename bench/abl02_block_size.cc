/**
 * @file
 * Ablation 2 — DBB block size (paper Sec. 8.1).
 *
 * "A larger block size (BZ) relaxes accuracy loss, but increases
 * the hardware cost to exploit the sparsity." At the same 50%
 * density bound, a 2/4 block (the A100 choice) must keep the top-2
 * of every 4 values, while a 4/8 block keeps the top-4 of 8 — a
 * strictly looser constraint. This ablation quantifies both sides:
 * the pruning quality (L2 magnitude retained on Gaussian weights)
 * and the storage/mux cost per block size.
 */

#include <cmath>

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** L2 retention of Top-NNZ pruning on N(0,1) weights. */
double
l2Retention(const DbbSpec &spec, Rng &rng)
{
    // Build a Gaussian weight matrix, quantize to INT8-like range,
    // prune, and measure retained magnitude energy.
    GemmProblem p(8, 512, 64);
    for (auto &v : p.w) {
        const double g = rng.normal(0.0, 30.0);
        v = static_cast<int8_t>(
            std::max(-127.0, std::min(127.0, g)));
    }
    const PruneStats st = pruneWeightsDbb(p, spec);
    return st.l2_retained;
}

} // anonymous namespace

int
main()
{
    banner("Ablation 2",
           "DBB block size: pruning quality vs hardware cost at a "
           "fixed 50% density bound");

    Rng rng(0xAB2);
    Table t({"Spec", "L2 retained", "Stored B per 8 vals",
             "Compression", "Mux width"});
    const struct { DbbSpec spec; int mux; } cases[] = {
        {{1, 2}, 2}, {{2, 4}, 4}, {{4, 8}, 8},
    };
    for (const auto &c : cases) {
        const double l2 = l2Retention(c.spec, rng);
        // Bytes to store 8 dense values under this spec.
        const double stored =
            8.0 / c.spec.bz * c.spec.storedBytesPerBlock();
        t.addRow({c.spec.toString(), Table::percent(l2, 2),
                  Table::num(stored, 2),
                  Table::ratio(8.0 / stored),
                  Table::count(c.mux) + ":1"});
    }
    t.print();

    // Density-bound headroom: fraction of random 50%-sparse blocks
    // that already satisfy the bound without dropping anything.
    std::printf("\nBlocks of a random 50%%-sparse tensor that fit "
                "the bound losslessly:\n");
    Table t2({"Spec", "Lossless blocks", "Nonzeros dropped"});
    for (const auto &c : cases) {
        Rng r2(0xAB3);
        GemmProblem p = makeUnstructuredGemm(64, 512, 64, 0.5, 0.5,
                                             r2);
        GemmProblem copy = p;
        const PruneStats st = pruneWeightsDbb(copy, c.spec);
        const double lossless =
            1.0 - static_cast<double>(st.nonzeros_dropped) /
                      std::max<int64_t>(1, st.nonzeros_before);
        // Count blocks untouched.
        int64_t blocks = 0, clean = 0;
        std::vector<int8_t> blk(static_cast<size_t>(c.spec.bz));
        for (int j = 0; j < p.n; ++j) {
            for (int b = 0; b < p.k / c.spec.bz; ++b) {
                ++blocks;
                for (int e = 0; e < c.spec.bz; ++e)
                    blk[static_cast<size_t>(e)] =
                        p.wgtAt(b * c.spec.bz + e, j);
                clean += dbbSatisfies(blk, c.spec);
            }
        }
        t2.addRow({c.spec.toString(),
                   Table::percent(static_cast<double>(clean) /
                                  blocks, 1),
                   Table::percent(1.0 - lossless, 1)});
    }
    t2.print();

    std::printf("\nExpected: 4/8 retains more magnitude and leaves "
                "more blocks untouched than 2/4\nor 1/2 at the same "
                "density bound (the paper picks BZ=8 for exactly "
                "this reason,\naccepting the wider 8:1 steering "
                "mux).\n");
    return 0;
}
