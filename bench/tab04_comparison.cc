/**
 * @file
 * Reproduces paper Table 4: cross-accelerator comparison in 16nm
 * and 65nm — area, peak throughput/efficiency at 50% and 75%
 * sparsity, and AlexNet / MobileNet full-model rates. SparTen and
 * Eyeriss v2 rows are published values, exactly as in the paper.
 */

#include "bench_util.hh"
#include "energy/published.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

struct Variant { const char *label; ArrayConfig cfg; };

const Variant kVariants[] = {
    {"SA-ZVCG", ArrayConfig::saZvcg()},
    {"SA-SMT", ArrayConfig::saSmt(2)},
    {"S2TA-W", ArrayConfig::s2taW()},
    {"S2TA-AW", ArrayConfig::s2taAw(4)},
};

/** Peak rows: DBB-structured microbenchmark at a sparsity level. */
void
peakRows(const TechParams &tech, Table &t)
{
    // Models and energy models are hoisted in the default context;
    // repeated design points over the same operands reuse the
    // shared plan cache.
    SweepContext &ctx = defaultContext();
    for (const Variant &v : kVariants) {
        const double area =
            ctx.energyModel(v.cfg, tech).area().totalMm2();

        double tops[2], topsw[2];
        int i = 0;
        for (int nnz : {4, 2}) { // 50% and 75% sparse
            ArrayConfig cfg = v.cfg;
            GemmProblem p =
                cfg.kind == ArchKind::S2taAw ||
                        cfg.kind == ArchKind::S2taW
                    ? typicalConvDbbGemm(nnz, nnz)
                    : typicalConvGemm(nnz == 4 ? 0.5 : 0.75,
                                      nnz == 4 ? 0.5 : 0.75);
            if (cfg.kind == ArchKind::S2taAw) {
                cfg.act_nnz = nnz;
                cfg.weight_dbb = DbbSpec{nnz, 8};
            } else if (cfg.kind == ArchKind::S2taW) {
                cfg.weight_dbb = DbbSpec{nnz, 8};
            }
            const DesignPoint dp = ctx.evalGemm(cfg, p, tech);
            const EnergyModel &em2 = ctx.energyModel(cfg, tech);
            tops[i] = em2.effectiveTops(dp.events);
            topsw[i] = em2.effectiveTopsPerWatt(dp.events);
            ++i;
        }
        t.addRow({v.label, Table::num(area, 1),
                  Table::num(tops[0], 1) + " (" +
                      Table::num(tops[1], 1) + ")",
                  Table::num(topsw[0], 1) + " (" +
                      Table::num(topsw[1], 1) + ")"});
    }
}

/** Full-model rows: inferences/s, inferences/J, TOPS/W. */
void
modelRows(const TechParams &tech, const ModelWorkload &mw, Table &t)
{
    SweepContext &ctx = defaultContext();
    for (const Variant &v : kVariants) {
        const ModelPoint mp = ctx.evalModel(v.cfg, mw, tech);
        const EnergyModel &em = ctx.energyModel(v.cfg, tech);
        const double seconds =
            static_cast<double>(mp.cycles) /
            (tech.freq_ghz * 1e9);
        const double joules = mp.energy_uj * 1e-6;
        t.addRow({v.label,
                  Table::num(1.0 / seconds / 1e3, 2),
                  Table::num(1.0 / joules / 1e3, 2),
                  Table::num(em.effectiveTopsPerWatt(mp.events),
                             2)});
    }
}

void
publishedRow(Table &t, const published::AcceleratorDatapoint &d)
{
    t.addRow({std::string(d.name) + " (" + d.process + ", pub.)",
              d.alexnet_kinf_per_j >= 0
                  ? Table::num(d.alexnet_kinf_per_j, 2)
                  : "-",
              d.alexnet_tops_per_w >= 0
                  ? Table::num(d.alexnet_tops_per_w, 2)
                  : "-",
              d.mobilenet_tops_per_w >= 0
                  ? Table::num(d.mobilenet_tops_per_w, 2)
                  : "-"});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Table 4",
           "Comparison of S2TA-AW and baselines (our models) with "
           "published sparse accelerators");

    Rng rng(0x7AB4);
    const ModelWorkload alex = buildModelWorkload(alexNet(), rng);
    const ModelWorkload mobile =
        buildModelWorkload(mobileNetV1(), rng);

    for (const TechParams &tech :
         {TechParams::tsmc16(), TechParams::tsmc65()}) {
        std::printf("---- %s implementations (%.1f GHz) ----\n\n",
                    tech.name.c_str(), tech.freq_ghz);

        Table peak({"Design", "Area mm2", "Eff. TOPS 50% (75%)",
                    "TOPS/W 50% (75%)"});
        peakRows(tech, peak);
        peak.print();

        std::printf("\nAlexNet (full model):\n");
        Table ta({"Design", "x1e3 Inf/s", "x1e3 Inf/J", "TOPS/W"});
        modelRows(tech, alex, ta);
        ta.print();

        std::printf("\nMobileNetV1 (full model):\n");
        Table tm({"Design", "x1e3 Inf/s", "x1e3 Inf/J", "TOPS/W"});
        modelRows(tech, mobile, tm);
        tm.print();
        std::printf("\n");
    }

    std::printf("---- Published datapoints quoted by the paper "
                "----\n\n");
    Table pub({"Design", "AlexNet x1e3 Inf/J", "AlexNet TOPS/W",
               "MobileNet TOPS/W"});
    publishedRow(pub, published::kSparTen);
    publishedRow(pub, published::kEyerissV2);
    pub.print();

    std::printf("\nPaper 16nm anchors: SA-ZVCG 10.5 TOPS/W peak, "
                "S2TA-AW 14.3 (26.5 @75%%) TOPS/W;\n65nm: SA-ZVCG "
                "0.78, S2TA-AW 1.1 TOPS/W peak. A100 (2/4 W-DBB) "
                "peaks at %.2f TOPS/W\nper the paper's Sec. 9 -- "
                "~4x below the S2TA-W baseline.\n",
                published::kA100.peak_tops_per_w);

    if (!args.json.empty()) {
        const PlanCache::Stats cs =
            defaultContext().planCache().stats();
        JsonWriter jw;
        jw.field("bench", "tab04_comparison")
            .field("simd_kernel", benchSimdKernel())
            .field("cache_hits", cs.hits)
            .field("cache_misses", cs.misses);
        jw.write(args.json);
    }
    return 0;
}
