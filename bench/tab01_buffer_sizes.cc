/**
 * @file
 * Reproduces paper Table 1: per-INT8-MAC buffer sizes across
 * architectures. Rows for this repo's architectures come from the
 * structural buffer model; SCNN / SparTen / Eyeriss v2 rows are the
 * paper's published values (those designs are outside this repo's
 * scope, quoted as the paper itself does).
 */

#include "bench_util.hh"
#include "energy/buffer_model.hh"
#include "energy/published.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

std::string
bytes(double b)
{
    if (b >= 1024.0)
        return Table::num(b / 1024.0, 2) + " KB";
    return Table::num(b, b < 8 ? 3 : 0) + " B";
}

} // anonymous namespace

int
main()
{
    banner("Table 1",
           "PE buffer sizes per INT8 MAC: operand staging vs "
           "accumulators");

    Table t({"Architecture", "Operands", "FIFOs", "Accum", "Total",
             "Paper total"});

    // Published outer-product / gather designs (quoted).
    for (const auto &row : published::kTable1) {
        const std::string nm(row.name);
        if (nm == "SCNN" || nm == "SparTen" || nm == "Eyeriss v2") {
            t.addRow({nm + " (published)", bytes(row.operand_bytes),
                      "-", bytes(row.accum_bytes),
                      bytes(row.total_bytes),
                      bytes(row.total_bytes)});
        }
    }
    t.addSeparator();

    struct Ours { const char *label; ArrayConfig cfg; double paper; };
    const Ours ours[] = {
        {"SA-SMT (T2Q2)", ArrayConfig::saSmt(2), 20.0},
        {"Systolic Array", ArrayConfig::sa(), 6.0},
        {"S2TA-W", ArrayConfig::s2taW(), 0.875},
        {"S2TA-AW", ArrayConfig::s2taAw(4), 4.75},
    };
    for (const Ours &o : ours) {
        const BufferBreakdown b = bufferModel(o.cfg);
        t.addRow({o.label, bytes(b.operand_bytes_per_mac),
                  o.cfg.kind == ArchKind::SaSmt
                      ? bytes(b.fifo_bytes_per_mac)
                      : "-",
                  bytes(b.accum_bytes_per_mac),
                  bytes(b.totalPerMac()), bytes(o.paper)});
    }
    t.print();

    const double smt = bufferModel(ArrayConfig::saSmt(2)).totalPerMac();
    const double w = bufferModel(ArrayConfig::s2taW()).totalPerMac();
    std::printf("\nDBB TPEs need %.0fx less buffering per MAC than "
                "SMT staging FIFOs\n(paper: ~7-1886x less than prior "
                "architectures overall).\n", smt / w);
    return 0;
}
