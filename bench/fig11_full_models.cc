/**
 * @file
 * Reproduces paper Fig. 11: energy reduction and speedup, normalized
 * to SA-ZVCG, on the four full benchmark CNNs (ResNet-50V1, VGG-16,
 * MobileNetV1, AlexNet) with the per-layer DBB sparsity profiles of
 * Sec. 8. The paper's headline: S2TA-AW averages 2.08x energy
 * reduction and 2.11x speedup over SA-ZVCG, 1.84x / 1.26x over
 * S2TA-W, and 2.24x / 1.43x (energy/speedup) vs SA-SMT.
 */

#include <cmath>

#include "bench_util.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

struct ModelResult
{
    double energy_uj = 0.0;
    int64_t cycles = 0;
};

ModelResult
runModel(const ArrayConfig &cfg, const ModelWorkload &mw)
{
    AcceleratorConfig acfg;
    acfg.array = cfg;
    const Accelerator acc(acfg);
    const EnergyModel em(TechParams::tsmc16(), acfg);
    const NetworkRun nr = acc.runNetwork(mw.layers);
    ModelResult r;
    r.energy_uj = em.energy(nr.total).totalUj();
    r.cycles = nr.total.cycles;
    return r;
}

} // anonymous namespace

int
main()
{
    banner("Figure 11",
           "Full-model energy reduction and speedup vs SA-ZVCG "
           "(16nm, per-layer DBB profiles)");

    struct Variant { const char *label; ArrayConfig cfg; };
    const Variant variants[] = {
        {"SA", ArrayConfig::sa()},
        {"SA-SMT", ArrayConfig::saSmt(2)},
        {"S2TA-W", ArrayConfig::s2taW()},
        {"S2TA-AW", ArrayConfig::s2taAw(4)},
    };

    Table t({"Model", "Design", "Energy red.", "Speedup"});
    double gm_energy[4] = {1, 1, 1, 1};
    double gm_speed[4] = {1, 1, 1, 1};
    int n_models = 0;

    Rng rng(0xF11);
    for (const ModelSpec &spec : benchmarkModels()) {
        const ModelWorkload mw = buildModelWorkload(spec, rng);
        const ModelResult base =
            runModel(ArrayConfig::saZvcg(), mw);
        ++n_models;
        int vi = 0;
        for (const Variant &v : variants) {
            const ModelResult r = runModel(v.cfg, mw);
            const double ered = base.energy_uj / r.energy_uj;
            const double speed =
                static_cast<double>(base.cycles) / r.cycles;
            t.addRow({spec.name, v.label,
                      Table::ratio(ered), Table::ratio(speed)});
            gm_energy[vi] *= ered;
            gm_speed[vi] *= speed;
            ++vi;
        }
        t.addSeparator();
    }

    // Geometric means across the four models.
    for (size_t vi = 0; vi < std::size(variants); ++vi) {
        const double ge =
            std::pow(gm_energy[vi], 1.0 / n_models);
        const double gs = std::pow(gm_speed[vi], 1.0 / n_models);
        t.addRow({"GeoMean", variants[vi].label, Table::ratio(ge),
                  Table::ratio(gs)});
    }
    t.print();

    std::printf("\nPaper (Fig. 11): S2TA-AW is 2.08x more energy "
                "efficient and 2.11x faster than SA-ZVCG,\n"
                "1.84x / 1.26x vs S2TA-W, and 2.24x / 1.43x vs "
                "SA-SMT, averaged over the four models.\n");
    return 0;
}
