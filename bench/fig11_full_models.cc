/**
 * @file
 * Reproduces paper Fig. 11: energy reduction and speedup, normalized
 * to SA-ZVCG, on the four full benchmark CNNs (ResNet-50V1, VGG-16,
 * MobileNetV1, AlexNet) with the per-layer DBB sparsity profiles of
 * Sec. 8. The paper's headline: S2TA-AW averages 2.08x energy
 * reduction and 2.11x speedup over SA-ZVCG, 1.84x / 1.26x over
 * S2TA-W, and 2.24x / 1.43x (energy/speedup) vs SA-SMT.
 */

#include <cmath>

#include "bench_util.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Figure 11",
           "Full-model energy reduction and speedup vs SA-ZVCG "
           "(16nm, per-layer DBB profiles)");

    struct Variant { const char *label; ArrayConfig cfg; };
    const Variant variants[] = {
        {"SA", ArrayConfig::sa()},
        {"SA-SMT", ArrayConfig::saSmt(2)},
        {"S2TA-W", ArrayConfig::s2taW()},
        {"S2TA-AW", ArrayConfig::s2taAw(4)},
    };

    Table t({"Model", "Design", "Energy red.", "Speedup"});
    double gm_energy[4] = {1, 1, 1, 1};
    double gm_speed[4] = {1, 1, 1, 1};
    int n_models = 0;

    Rng rng(0xF11);
    for (const ModelSpec &spec : benchmarkModels()) {
        const ModelWorkload mw = buildModelWorkload(spec, rng);
        // Every design point below shares the default context:
        // hoisted models and one plan cache, so this model's
        // layers lower and encode once for all five variants.
        const ModelPoint base =
            evalModel(ArrayConfig::saZvcg(), mw);
        ++n_models;
        int vi = 0;
        for (const Variant &v : variants) {
            const ModelPoint r = evalModel(v.cfg, mw);
            const double ered = base.energy_uj / r.energy_uj;
            const double speed =
                static_cast<double>(base.cycles) / r.cycles;
            t.addRow({spec.name, v.label,
                      Table::ratio(ered), Table::ratio(speed)});
            gm_energy[vi] *= ered;
            gm_speed[vi] *= speed;
            ++vi;
        }
        t.addSeparator();
    }

    // Geometric means across the four models.
    double aw_ge = 0.0, aw_gs = 0.0;
    for (size_t vi = 0; vi < std::size(variants); ++vi) {
        const double ge =
            std::pow(gm_energy[vi], 1.0 / n_models);
        const double gs = std::pow(gm_speed[vi], 1.0 / n_models);
        t.addRow({"GeoMean", variants[vi].label, Table::ratio(ge),
                  Table::ratio(gs)});
        if (vi + 1 == std::size(variants)) {
            aw_ge = ge;
            aw_gs = gs;
        }
    }
    t.print();

    std::printf("\nPaper (Fig. 11): S2TA-AW is 2.08x more energy "
                "efficient and 2.11x faster than SA-ZVCG,\n"
                "1.84x / 1.26x vs S2TA-W, and 2.24x / 1.43x vs "
                "SA-SMT, averaged over the four models.\n");

    if (!args.json.empty()) {
        const PlanCache::Stats cs =
            defaultContext().planCache().stats();
        JsonWriter jw;
        jw.field("bench", "fig11_full_models")
            .field("simd_kernel", benchSimdKernel())
            .field("s2ta_aw_geomean_energy_reduction", aw_ge, 3)
            .field("s2ta_aw_geomean_speedup", aw_gs, 3)
            .field("paper_energy_reduction", 2.08, 2)
            .field("paper_speedup", 2.11, 2)
            .field("cache_hits", cs.hits)
            .field("cache_misses", cs.misses);
        jw.write(args.json);
    }
    return 0;
}
