/**
 * @file
 * Reproduces paper Table 2: area and power breakdown of the
 * S2TA-AW design (16nm, 8x4x4_8x8 TPE array, 512 KB WB + 2 MB AB,
 * 4x Cortex-M33, DAP array).
 *
 * The paper measures power near the 4-TOPS peak operating point
 * (4/8 weights, dense activations); we evaluate the same point with
 * the DAP array busy compressing the produced activations.
 */

#include "bench_util.hh"
#include "energy/published.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main()
{
    banner("Table 2",
           "S2TA-AW 16nm area & power breakdown at the 4-TOPS "
           "operating point");

    // Peak-activity workload: fully occupied 4/8 weight blocks,
    // dense activations.
    GemmProblem p = typicalConvDbbGemm(4, 8);
    // DAP compresses the produced output activations (next layer's
    // input) at 5 maxpool stages of 7 comparators.
    const int64_t out_blocks =
        static_cast<int64_t>(p.m) * p.n / 8;
    const int64_t dap_cmps = out_blocks * 5 * 7;

    const ArrayConfig cfg = ArrayConfig::s2taAw(8);
    const DesignPoint dp =
        evalGemm(cfg, p, TechParams::tsmc16(), dap_cmps);

    AcceleratorConfig acfg;
    acfg.array = cfg;
    const EnergyModel em(TechParams::tsmc16(), acfg);
    const AreaBreakdown area = em.area();

    const double cycles = static_cast<double>(dp.cycles);
    auto mw = [&](double pj) { return pj / cycles; }; // 1 GHz

    struct Row
    {
        const char *label;
        double power_mw;
        double area_mm2;
    };
    const Row rows[] = {
        {"MAC Datapath and Buffers",
         mw(dp.energy.at(Component::MacDatapath) +
            dp.energy.at(Component::PeBuffers)),
         area.at(Component::MacDatapath) +
             area.at(Component::PeBuffers)},
        {"Weight SRAM (512KB)",
         mw(dp.energy.at(Component::WeightSram)),
         area.at(Component::WeightSram)},
        {"Activation SRAM (2MB)",
         mw(dp.energy.at(Component::ActSram)),
         area.at(Component::ActSram)},
        {"Cortex-M33 MCU x4", mw(dp.energy.at(Component::Mcu)),
         area.at(Component::Mcu)},
        {"DAP Array", mw(dp.energy.at(Component::Dap)),
         area.at(Component::Dap)},
    };

    double total_mw = 0.0, total_mm2 = 0.0;
    for (const Row &r : rows) {
        total_mw += r.power_mw;
        total_mm2 += r.area_mm2;
    }

    Table t({"Component", "Power mW", "Share", "Area mm2", "Share",
             "Paper mW", "Paper mm2"});
    for (size_t i = 0; i < std::size(rows); ++i) {
        const Row &r = rows[i];
        t.addRow({r.label, Table::num(r.power_mw, 1),
                  Table::percent(r.power_mw / total_mw),
                  Table::num(r.area_mm2, 2),
                  Table::percent(r.area_mm2 / total_mm2),
                  Table::num(published::kTable2[i].power_mw, 1),
                  Table::num(published::kTable2[i].area_mm2, 2)});
    }
    t.addSeparator();
    t.addRow({"Total", Table::num(total_mw, 1), "100.0%",
              Table::num(total_mm2, 2), "100.0%", "541.3", "3.77"});
    t.print();

    std::printf("\nPeak (dense) throughput: %.2f TOPS at 1 GHz with "
                "%ld MACs\n", cfg.densePeakTops(),
                cfg.totalMacs());
    return 0;
}
