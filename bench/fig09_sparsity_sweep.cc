/**
 * @file
 * Reproduces paper Fig. 9 (a-d): energy and speedup vs sparsity for
 * SA-ZVCG, SA-SMT, S2TA-W and S2TA-AW on synthetic microbenchmark
 * GEMMs. All energies are normalized to SA-ZVCG at 50% weight / 50%
 * activation sparsity; speedups are vs SA-ZVCG on the same operands
 * (SA-ZVCG cycle counts are sparsity-independent).
 */

#include <functional>

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** Weight-DBB sweep points: sparsity % -> block NNZ. */
const struct { double pct; int nnz; } kWgtPoints[] = {
    {0.0, 8}, {25.0, 6}, {50.0, 4}, {62.5, 3}, {75.0, 2}, {87.5, 1},
};

double
normBase()
{
    static double base = [] {
        const GemmProblem p = typicalConvGemm(0.5, 0.5);
        return evalGemm(ArrayConfig::saZvcg(), p).energy_pj;
    }();
    return base;
}

/** Panels (a)-(c): weight sweep at two activation sparsities. */
void
weightSweepPanel(const char *title, const char *note,
                 const std::function<ArrayConfig(int wgt_nnz)> &mk,
                 bool dbb_weights)
{
    std::printf("--- %s ---\n%s\n", title, note);
    Table t({"Wgt sparsity", "Energy(a50%)", "Energy(a80%)",
             "Speedup"});
    for (const auto &pt : kWgtPoints) {
        double energy[2];
        double speedup = 1.0;
        int i = 0;
        for (double act_sparsity : {0.5, 0.8}) {
            GemmProblem p = typicalConvGemm(
                dbb_weights ? 0.0 : pt.pct / 100.0, act_sparsity,
                0xF00D + pt.nnz);
            if (dbb_weights)
                pruneWeightsDbb(p, DbbSpec{pt.nnz, 8});
            const DesignPoint base =
                evalGemm(ArrayConfig::saZvcg(), p);
            const DesignPoint dp = evalGemm(mk(pt.nnz), p);
            energy[i++] = dp.energy_pj / normBase();
            speedup = dp.speedupOver(base);
        }
        t.addRow({Table::percent(pt.pct / 100.0, 1),
                  Table::num(energy[0]), Table::num(energy[1]),
                  Table::ratio(speedup, 1)});
    }
    t.print();
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Figure 9",
           "Energy (normalized to SA-ZVCG @ 50%/50%) and speedup "
           "vs sparsity");

    // (a) SA-ZVCG: energy falls weakly, never any speedup.
    weightSweepPanel(
        "(a) SA-ZVCG", "Paper: energy scales weakly, no speedup.",
        [](int) { return ArrayConfig::saZvcg(); },
        /*dbb_weights=*/true);

    // (b) SA-SMT: faster, but more energy than SA-ZVCG.
    weightSweepPanel(
        "(b) SA-SMT (T2Q2)",
        "Paper: higher energy than SA-ZVCG, up to 2x speedup.",
        [](int) { return ArrayConfig::saSmt(2); },
        /*dbb_weights=*/false);

    // (c) S2TA-W: 2x step once weights fit 4/8 DBB.
    weightSweepPanel(
        "(c) S2TA-W",
        "Paper: fixed 2x speedup for weight sparsity >= 50%.",
        [](int wgt_nnz) {
            ArrayConfig cfg = ArrayConfig::s2taW();
            cfg.weight_dbb =
                DbbSpec{wgt_nnz > 4 ? 8 : 4, 8}; // dense fallback
            return cfg;
        },
        /*dbb_weights=*/true);

    // (d) S2TA-AW: activation-DBB sweep at two weight densities.
    std::printf("--- (d) S2TA-AW ---\n"
                "Paper: speedup = BZ/NNZ_a "
                "(1.0, 1.3, 2.0, 2.7, 4.0, 8.0).\n");
    Table t({"Act sparsity", "Energy(w4/8)", "Energy(w2/8)",
             "Speedup", "Paper speedup"});
    double aw_75_speedup = 0.0;
    const struct { double pct; int nnz; double paper; } pts[] = {
        {0.0, 8, 1.0},  {25.0, 6, 1.3}, {50.0, 4, 2.0},
        {62.5, 3, 2.7}, {75.0, 2, 4.0}, {87.5, 1, 8.0},
    };
    for (const auto &pt : pts) {
        double energy[2];
        double speedup = 1.0;
        int i = 0;
        for (int wgt_nnz : {4, 2}) {
            const GemmProblem p = typicalConvDbbGemm(
                wgt_nnz, pt.nnz, 0xD00D + pt.nnz);
            const DesignPoint base =
                evalGemm(ArrayConfig::saZvcg(), p);
            // DAP ran over the activations to enforce the bound.
            const int64_t blocks =
                static_cast<int64_t>(p.m) * p.k / 8;
            const int64_t dap =
                pt.nnz >= 6 ? 0 : blocks * pt.nnz * 7;
            const DesignPoint dp = evalGemm(
                ArrayConfig::s2taAw(pt.nnz), p,
                TechParams::tsmc16(), dap);
            energy[i++] = dp.energy_pj / normBase();
            speedup = dp.speedupOver(base);
        }
        t.addRow({Table::percent(pt.pct / 100.0, 1),
                  Table::num(energy[0]), Table::num(energy[1]),
                  Table::ratio(speedup, 2),
                  Table::ratio(pt.paper, 1)});
        if (pt.nnz == 2)
            aw_75_speedup = speedup;
    }
    t.print();

    if (!args.json.empty()) {
        const PlanCache::Stats cs =
            defaultContext().planCache().stats();
        JsonWriter jw;
        jw.field("bench", "fig09_sparsity_sweep")
            .field("simd_kernel", benchSimdKernel())
            .field("s2ta_aw_75pct_speedup", aw_75_speedup, 3)
            .field("paper_75pct_speedup", 4.0, 1)
            .field("cache_hits", cs.hits)
            .field("cache_misses", cs.misses);
        jw.write(args.json);
    }
    return 0;
}
