/**
 * @file
 * Overload-hardened serving: the same mixed multi-model open-loop
 * trace as bench_latency_serving, replayed at offered loads up to
 * 3x deployment capacity with seeded faults injected at every site
 * the serving path owns — transient layer faults and stalls in the
 * accelerator, read/write/rename/bit-flip faults in the plan store,
 * encode/decode faults in the spill tier — under queue caps,
 * infeasible-deadline shedding, and a bounded retry budget.
 *
 * Every utilization point runs a fault-free baseline first, then
 * the faulted + overloaded replay with a fresh seeded injector and
 * a fresh PlanCache (the persistent store, when configured, is
 * shared — stores are stateful by design). Four gates:
 *
 *  - bounded queues: the virtual ready queue's high-water mark
 *    never exceeds the global cap;
 *  - degradation never corrupts: every Ok completion's NetworkRun
 *    is bitwise identical to the fault-free baseline's (faults and
 *    overload delay or drop results, never change them);
 *  - exact accounting: scheduler counters reconcile with the
 *    injector's per-site totals (layer faults, stalls, spill
 *    drops/decode faults, store read/save/reject deltas) and with
 *    the RobustnessTelemetry fed from the completion stream;
 *  - determinism: the gated (2x capacity) point rerun fully serial
 *    reproduces every outcome, shed decision, and virtual timing
 *    bit for bit.
 *
 * The artifact records the shed-rate cliff curve (shed rate per
 * utilization point) plus the gated point's full counter set.
 *
 * Usage: bench_overload_serving [--smoke] [--json PATH]
 *          [--threads N] [--arch s2ta-w|s2ta-aw] [--cache-mb N]
 *          [--spill-mb N] [--plan-store DIR] [--store-cap-mb N]
 *        (--model / --no-plan-cache / --engine / --reps are
 *         rejected: the trace is mixed-model by definition, the
 *         cache tiers are fault-injection surfaces and part of the
 *         scenario, results are engine-independent, and virtual
 *         time needs no best-of-N)
 *
 * Emits BENCH_overload_serving.json (schema checked in CI).
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "base/fault_injection.hh"
#include "bench_util.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"
#include "serve/telemetry.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** One trace entry: a zoo model at a batch size. */
struct TraceItem
{
    const char *model;
    int batch;
};

/** The deployed (model, batch) mix requests cycle through. */
std::vector<TraceItem>
traceItems(bool smoke)
{
    if (smoke) {
        return {{"lenet5", 1}, {"mobilenetv1", 1}, {"lenet5", 2},
                {"mobilenetv1", 2}, {"lenet5", 4},
                {"mobilenetv1", 4}};
    }
    return {{"resnet50", 1}, {"alexnet", 1}, {"mobilenetv1", 1},
            {"resnet50", 2}, {"alexnet", 2}, {"mobilenetv1", 2}};
}

/** One generated request of the open-loop trace. */
struct TraceRequest
{
    const ModelWorkload *workload = nullptr;
    int stream = 0;
    double arrival_s = 0.0;
    double deadline_s = serve::kNoDeadline;
};

/** Everything observable about one completion except its run:
 *  (outcome, shed reason, attempts, fault layer, fault count,
 *  stall cycles, start, finish, retry delay, lane). Maps of these
 *  compare the faulted replay across thread counts bit for bit. */
using Observed = std::tuple<int, int, int, int, int64_t, int64_t,
                            double, double, double, int>;

Observed
observe(const serve::Completion &c)
{
    return Observed{static_cast<int>(c.outcome),
                    static_cast<int>(c.shed_reason),
                    c.attempts,
                    c.fault_layer,
                    c.fault_count,
                    c.stall_cycles,
                    c.start_s,
                    c.finish_s,
                    c.retry_delay_s,
                    c.lane};
}

/** Outcome of one trace replay. */
struct ReplayResult
{
    std::map<uint64_t, Observed> observed;
    /** Per Ok request id: the run, for bitwise baseline checks. */
    std::map<uint64_t, NetworkRun> ok_runs;
    serve::ServeStats stats;
    serve::RobustnessTelemetry telemetry;
    PlanCache::Stats cache_stats;
};

/** Scheduler counters vs the telemetry fed from its completion
 *  stream (failed is excluded on purpose: a request that exhausted
 *  its retries *and* was shed reports Shed in its completion). */
bool
telemetryMatches(const serve::ServeStats &st,
                 const serve::RobustnessTelemetry &rt)
{
    return rt.total() == st.requests &&
           rt.completed() == st.completed &&
           rt.shedQueueFull() == st.shed_queue_full &&
           rt.shedStreamFull() == st.shed_stream_full &&
           rt.shedInfeasible() == st.shed_infeasible &&
           rt.retries() == st.retries &&
           rt.layerFaults() == st.layer_faults &&
           rt.stallCycles() == st.stall_cycles;
}

bool
sameServeStats(const serve::ServeStats &a, const serve::ServeStats &b)
{
    return a.requests == b.requests && a.completed == b.completed &&
           a.layers == b.layers && a.gemms == b.gemms &&
           a.dense_macs == b.dense_macs &&
           a.shed_queue_full == b.shed_queue_full &&
           a.shed_stream_full == b.shed_stream_full &&
           a.shed_infeasible == b.shed_infeasible &&
           a.failed == b.failed && a.retries == b.retries &&
           a.faulted_attempts == b.faulted_attempts &&
           a.layer_faults == b.layer_faults &&
           a.stall_events == b.stall_events &&
           a.stall_cycles == b.stall_cycles &&
           a.max_queue_depth == b.max_queue_depth;
}

constexpr double kMsPerS = 1e3;

/** The injection plan: every serving-path site, seeded. */
constexpr uint64_t kFaultSeed = 0x0F417;

void
armInjector(FaultInjector &fi)
{
    fi.setRate(FaultSite::LayerCompute, 0.01);
    fi.setRate(FaultSite::LayerStall, 0.02);
    fi.setStallCycles(1000, 50000);
    fi.setRate(FaultSite::StoreRead, 0.15);
    fi.setRate(FaultSite::StoreWrite, 0.15);
    fi.setRate(FaultSite::StoreRename, 0.1);
    fi.setRate(FaultSite::StoreBitFlip, 0.15);
    fi.setRate(FaultSite::SpillEncode, 0.25);
    fi.setRate(FaultSite::SpillDecode, 0.25);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(!args.model.empty(), "--model",
                    "the overload trace mixes several models by "
                    "definition");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the cache tiers are fault-injection surfaces "
                    "and part of the scenario (--cache-mb 0 "
                    "disables the cache if that is the experiment)");
    args.rejectFlag(args.engine_given, "--engine",
                    "fault and overload behavior is "
                    "engine-independent; the simulation always "
                    "runs the plan-cached fast path");
    args.rejectFlag(args.reps_given, "--reps",
                    "virtual time is deterministic; there is no "
                    "wall-clock noise to best-of");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "this bench serves one accelerator; fleet "
                    "scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "single-accelerator serving has nothing to "
                    "place; fleet routing lives in "
                    "bench_fleet_serving");
    const std::string json_path =
        args.json.empty() ? "BENCH_overload_serving.json" : args.json;

    banner("Overload-hardened serving",
           "Seeded faults at every serving-path site under queue "
           "caps, deadline shedding, and bounded retries");

    const std::vector<TraceItem> items = traceItems(args.smoke);
    const int streams = args.smoke ? 3 : 6;
    const int requests = args.smoke ? 24 : 48;
    const serve::VirtualClockConfig clock{/*lanes=*/2,
                                          /*clock_ghz=*/1.0};
    const int cache_budget_mb =
        args.cache_mb_given ? args.cache_mb : 2048;
    const bool cache_disabled =
        args.cache_mb_given && args.cache_mb == 0;
    const int64_t cache_budget_bytes =
        static_cast<int64_t>(cache_budget_mb) << 20;
    const int64_t spill_bytes = static_cast<int64_t>(args.spill_mb)
                                << 20;

    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);
    acfg.sim_threads = args.ctx.threads;
    const Accelerator acc(acfg);
    BenchCache tiers(args, cache_budget_mb);

    NetworkRunOptions run_opt;
    run_opt.validate_operands = false;
    run_opt.plan_cache = tiers.cachePtr();

    // Servable workloads + per-workload service estimates from one
    // unmeasured fault-free pass (which also seeds the plan store,
    // when configured, as a deployment's first requests would).
    serve::ModelRegistry registry;
    std::vector<const ModelWorkload *> deployed;
    std::map<const ModelWorkload *, double> est_service_s;
    for (const TraceItem &it : items) {
        const ModelWorkload &mw =
            registry.workload(it.model, it.batch);
        deployed.push_back(&mw);
        if (!est_service_s.count(&mw)) {
            const NetworkRun nr = acc.runNetwork(mw.layers, run_opt);
            est_service_s.emplace(
                &mw, clock.cyclesToSeconds(nr.total.cycles));
        }
    }

    double mean_service_s = 0.0;
    for (int i = 0; i < requests; ++i) {
        mean_service_s += est_service_s.at(
            deployed[static_cast<size_t>(i) % deployed.size()]);
    }
    mean_service_s /= requests;
    const double capacity_rps = clock.lanes / mean_service_s;
    const std::vector<double> utilizations =
        args.smoke ? std::vector<double>{0.8, 2.0, 3.0}
                   : std::vector<double>{0.5, 1.0, 1.5, 2.0, 3.0};
    size_t gated = 0;
    for (size_t i = 0; i < utilizations.size(); ++i) {
        if (utilizations[i] == 2.0)
            gated = i;
    }

    serve::OverloadConfig overload;
    overload.global_queue_cap = 6;
    overload.stream_queue_cap = 3;
    overload.shed_infeasible = true;
    overload.max_retries = 4;
    overload.retry_backoff_s = 0.25 * mean_service_s;

    std::printf("trace: %d requests over %d streams, %zu deployed "
                "workloads | %d virtual lanes @ %.1f GHz, mean "
                "service %.3f ms, capacity %.1f req/s\n"
                "overload: queue caps %lld global / %lld per "
                "stream, infeasible-deadline shedding, %d retries, "
                "backoff %.3f ms | fault seed 0x%llx\n\n",
                requests, streams, deployed.size(), clock.lanes,
                clock.clock_ghz, mean_service_s * kMsPerS,
                capacity_rps,
                static_cast<long long>(overload.global_queue_cap),
                static_cast<long long>(overload.stream_queue_cap),
                overload.max_retries,
                overload.retry_backoff_s * kMsPerS,
                static_cast<unsigned long long>(kFaultSeed));

    // Replay the trace under EDF admission. A null injector means
    // the fault-free baseline: no overload controls, everything
    // admitted, every request completes Ok. Each replay builds its
    // own PlanCache (the shared persistent store attaches to it) so
    // fault-driven cache degradation cannot leak across points.
    const auto replay = [&](const std::vector<TraceRequest> &trace,
                            const Accelerator &on, int threads,
                            FaultInjector *fi) {
        ReplayResult res;
        std::unique_ptr<PlanCache> cache;
        if (!cache_disabled) {
            cache = std::make_unique<PlanCache>(
                0, cache_budget_bytes, spill_bytes);
            if (tiers.store)
                cache->attachStore(tiers.store.get());
            cache->setFaultInjector(fi);
        }
        if (tiers.store)
            tiers.store->setFaultInjector(fi);
        serve::StreamScheduler::Options o;
        o.run = run_opt;
        o.run.plan_cache = cache.get();
        o.run.fault = fi;
        o.threads = threads;
        o.clock = clock;
        o.policy = &serve::policyFor(
            serve::PolicyKind::EarliestDeadlineFirst);
        if (fi)
            o.overload = overload;
        o.on_complete = [&](const serve::Completion &c) {
            res.observed.emplace(c.id, observe(c));
            res.telemetry.recordOutcome(c.outcome, c.shed_reason,
                                        c.attempts, c.fault_count,
                                        c.stall_cycles);
        };
        serve::StreamScheduler sched(on, o);
        for (const TraceRequest &r : trace) {
            sched.submit(r.stream, *r.workload, r.arrival_s,
                         r.deadline_s);
        }
        auto by_stream = sched.drain();
        for (auto &stream : by_stream) {
            for (auto &c : stream) {
                if (c.ok())
                    res.ok_runs.emplace(c.id, std::move(c.run));
            }
        }
        res.stats = sched.stats();
        if (cache)
            res.cache_stats = cache->stats();
        if (tiers.store)
            tiers.store->setFaultInjector(nullptr);
        return res;
    };

    JsonWriter jw;
    jw.field("bench", "overload_serving")
        .field("smoke", args.smoke)
        .field("arch", acfg.array.name())
        .field("simd_kernel", benchSimdKernel())
        .field("streams", streams)
        .field("requests", requests)
        .field("lanes", clock.lanes)
        .field("clock_ghz", clock.clock_ghz, 1)
        .field("global_queue_cap", overload.global_queue_cap)
        .field("stream_queue_cap", overload.stream_queue_cap)
        .field("max_retries",
               static_cast<int64_t>(overload.max_retries))
        .field("retry_backoff_ms",
               overload.retry_backoff_s * kMsPerS, 4)
        .field("cache_budget_mb", cache_budget_mb)
        .field("rates_evaluated",
               static_cast<int64_t>(utilizations.size()));

    bool queue_bounded = true;
    bool bitwise_ok_vs_baseline = true;
    bool counters_reconcile = true;
    bool telemetry_consistent = true;
    bool deterministic_serial = true;
    std::vector<double> shed_rates;

    std::printf("%-6s %-9s %-10s %-5s %-22s %-7s %-8s %s\n", "util",
                "rate", "completed", "shed", "(queue/stream/infeas)",
                "failed", "retries", "shed-rate");

    for (size_t ri = 0; ri < utilizations.size(); ++ri) {
        const double util = utilizations[ri];
        const double rate = util * capacity_rps;

        // Seeded trace: Poisson arrivals, streams round-robin,
        // deadline = arrival + slack x estimated service (slack
        // uniform in [2, 10)). Identical for baseline and faulted
        // replays.
        Rng trace_rng(0x0F417A + static_cast<uint64_t>(ri));
        const std::vector<double> arrivals =
            serve::poissonArrivals(requests, rate, trace_rng);
        std::vector<TraceRequest> trace(
            static_cast<size_t>(requests));
        for (int i = 0; i < requests; ++i) {
            TraceRequest &r = trace[static_cast<size_t>(i)];
            r.workload = deployed[static_cast<size_t>(i) %
                                  deployed.size()];
            r.stream = i % streams;
            r.arrival_s = arrivals[static_cast<size_t>(i)];
            const double slack = trace_rng.uniformReal(2.0, 10.0);
            r.deadline_s = r.arrival_s +
                           slack * est_service_s.at(r.workload);
        }

        // Fault-free baseline: the bitwise reference every Ok
        // completion of the faulted replay must reproduce.
        const ReplayResult baseline =
            replay(trace, acc, args.ctx.threads, nullptr);
        if (baseline.stats.completed != requests) {
            s2ta_fatal("baseline completed %lld of %d requests",
                       static_cast<long long>(
                           baseline.stats.completed),
                       requests);
        }

        const PlanStore::Stats store_before =
            tiers.store ? tiers.store->stats() : PlanStore::Stats{};
        FaultInjector fi(kFaultSeed);
        armInjector(fi);
        const ReplayResult faulted =
            replay(trace, acc, args.ctx.threads, &fi);
        const serve::ServeStats &st = faulted.stats;

        // Gate: the virtual ready queue stayed under the cap.
        if (st.max_queue_depth > overload.global_queue_cap)
            queue_bounded = false;

        // Gate: faults and overload never corrupt a served result.
        for (const auto &[id, run] : faulted.ok_runs) {
            if (!bitwiseEqualRuns(run, baseline.ok_runs.at(id))) {
                bitwise_ok_vs_baseline = false;
                std::printf("  RUN MISMATCH vs baseline on request "
                            "%llu\n",
                            static_cast<unsigned long long>(id));
            }
        }

        // Gate: scheduler counters reconcile exactly with the
        // injection plan, attempt accounting, the spill tier, and
        // (per-point deltas — the store is shared) the plan store.
        bool ok =
            st.layer_faults == fi.injected(FaultSite::LayerCompute) &&
            st.stall_events == fi.injected(FaultSite::LayerStall) &&
            st.faulted_attempts == st.retries + st.failed &&
            st.requests == requests;
        if (!cache_disabled) {
            ok = ok &&
                 faulted.cache_stats.spill_drops ==
                     fi.injected(FaultSite::SpillEncode) &&
                 faulted.cache_stats.spill_decode_faults ==
                     fi.injected(FaultSite::SpillDecode);
        }
        if (tiers.store && !cache_disabled) {
            const PlanStore::Stats after = tiers.store->stats();
            ok = ok &&
                 after.read_faults - store_before.read_faults ==
                     fi.injected(FaultSite::StoreRead) &&
                 after.save_failures - store_before.save_failures ==
                     fi.injected(FaultSite::StoreWrite) +
                         fi.injected(FaultSite::StoreRename) &&
                 after.rejects - store_before.rejects ==
                     fi.injected(FaultSite::StoreBitFlip) &&
                 after.quarantined - store_before.quarantined ==
                     after.rejects - store_before.rejects;
        }
        if (!ok) {
            counters_reconcile = false;
            std::printf("  COUNTER MISMATCH at utilization %.1f\n",
                        util);
        }

        // Gate: the completion stream tells the same story as the
        // scheduler's own accounting.
        if (!telemetryMatches(st, faulted.telemetry))
            telemetry_consistent = false;

        const double shed_rate = faulted.telemetry.shedRate();
        shed_rates.push_back(shed_rate);
        std::printf("%-6.1f %7.1f/s %-10lld %-5lld (%lld/%lld/"
                    "%lld)%*s %-7lld %-8lld %5.1f%%%s\n",
                    util, rate,
                    static_cast<long long>(st.completed),
                    static_cast<long long>(st.shedTotal()),
                    static_cast<long long>(st.shed_queue_full),
                    static_cast<long long>(st.shed_stream_full),
                    static_cast<long long>(st.shed_infeasible), 8,
                    "", static_cast<long long>(st.failed),
                    static_cast<long long>(st.retries),
                    100.0 * shed_rate,
                    ri == gated ? "  [gated]" : "");

        char rate_key[32];
        std::snprintf(rate_key, sizeof(rate_key),
                      "shed_rate_u%03d",
                      static_cast<int>(util * 100.0 + 0.5));
        jw.field(rate_key, shed_rate, 4);

        if (ri == gated) {
            jw.field("gated_utilization", util, 2)
                .field("gated_rate_rps", rate, 3)
                .field("gated_completed", st.completed)
                .field("gated_shed_queue_full", st.shed_queue_full)
                .field("gated_shed_stream_full",
                       st.shed_stream_full)
                .field("gated_shed_infeasible", st.shed_infeasible)
                .field("gated_failed", st.failed)
                .field("gated_retries", st.retries)
                .field("gated_faulted_attempts",
                       st.faulted_attempts)
                .field("gated_layer_faults", st.layer_faults)
                .field("gated_stall_events", st.stall_events)
                .field("gated_max_queue_depth", st.max_queue_depth)
                .field("gated_spill_drops",
                       faulted.cache_stats.spill_drops)
                .field("gated_spill_decode_faults",
                       faulted.cache_stats.spill_decode_faults);

            // Gate: the gated point rerun fully serial — fresh
            // same-seed injector, one simulation lane, serial
            // accelerator — reproduces every outcome, shed
            // decision, and virtual timing bit for bit. (Store
            // counters are excluded: the shared store's state
            // advanced, which changes wall-clock tier traffic but
            // never outcomes or virtual time.)
            AcceleratorConfig serial_cfg = acfg;
            serial_cfg.sim_threads = 1;
            const Accelerator serial_acc(serial_cfg);
            FaultInjector serial_fi(kFaultSeed);
            armInjector(serial_fi);
            const ReplayResult serial =
                replay(trace, serial_acc, 1, &serial_fi);
            if (serial.observed != faulted.observed ||
                !sameServeStats(serial.stats, faulted.stats)) {
                deterministic_serial = false;
                std::printf("  SERIAL RERUN MISMATCH at the gated "
                            "point\n");
            }
        }
    }

    // The cliff curve in one line: shed rate per utilization.
    std::printf("\nshed-rate cliff:");
    for (size_t i = 0; i < utilizations.size(); ++i)
        std::printf(" %.1fx=%.0f%%", utilizations[i],
                    100.0 * shed_rates[i]);
    std::printf("\n");

    // Store lifecycle: a capped store is compacted before the
    // artifact is written, so the JSON records the swept/evicted
    // state CI asserts on. (BenchCache compacts on teardown too;
    // doing it here makes the result visible.)
    if (tiers.store && tiers.store->sizeCapBytes() > 0) {
        const PlanStore::CompactResult cr = tiers.store->compact();
        std::printf("store compact: swept %lld torn, removed %lld "
                    "quarantined, evicted %lld files (%lld bytes); "
                    "%lld files / %lld bytes remain\n",
                    static_cast<long long>(cr.torn_swept),
                    static_cast<long long>(cr.quarantine_removed),
                    static_cast<long long>(cr.evicted_files),
                    static_cast<long long>(cr.evicted_bytes),
                    static_cast<long long>(cr.files),
                    static_cast<long long>(cr.bytes));
        jw.field("store_cap_mb", args.store_cap_mb)
            .field("store_compact_torn_swept", cr.torn_swept)
            .field("store_compact_quarantine_removed",
                   cr.quarantine_removed)
            .field("store_compact_evicted_files", cr.evicted_files)
            .field("store_compact_bytes_remaining", cr.bytes);
    }

    std::printf("gates: queue bounded %s | ok-runs bitwise equal "
                "to baseline %s | counters reconcile %s | "
                "telemetry consistent %s | serial determinism "
                "%s\n",
                queue_bounded ? "ok" : "FAIL",
                bitwise_ok_vs_baseline ? "ok" : "FAIL",
                counters_reconcile ? "ok" : "FAIL",
                telemetry_consistent ? "ok" : "FAIL",
                deterministic_serial ? "ok" : "FAIL");

    jw.field("plan_store", !args.plan_store.empty())
        .field("cache_disabled", cache_disabled)
        .field("queue_bounded", queue_bounded)
        .field("bitwise_ok_vs_baseline", bitwise_ok_vs_baseline)
        .field("counters_reconcile", counters_reconcile)
        .field("telemetry_consistent", telemetry_consistent)
        .field("deterministic_serial", deterministic_serial);
    jw.write(json_path);

    if (!queue_bounded)
        s2ta_fatal("virtual queue depth exceeded the global cap");
    if (!bitwise_ok_vs_baseline)
        s2ta_fatal("a served result diverged from the fault-free "
                   "baseline");
    if (!counters_reconcile)
        s2ta_fatal("counters do not reconcile with the injection "
                   "plan");
    if (!telemetry_consistent)
        s2ta_fatal("completion-stream telemetry disagrees with "
                   "scheduler stats");
    if (!deterministic_serial)
        s2ta_fatal("the gated point is not deterministic under "
                   "serial rerun");
    return 0;
}
