/**
 * @file
 * Sustained serving throughput: many concurrent inference streams
 * (mixed zoo models, per-request batch sizes > 1) pushed through
 * ONE Accelerator instance with one PlanCache shared across every
 * stream and model — the scenario a weight-static compressed format
 * amortizes best, since repeated (model, batch) requests re-hit the
 * same encoded plans.
 *
 * Two phases over the same request trace:
 *  - cold single-stream: all requests in one FIFO stream, serial
 *    scheduler lane, fresh PlanCache — the naive driver that
 *    re-lowers and re-encodes on first sight of each workload;
 *  - warm multi-stream: the trace spread round-robin over several
 *    streams, request-level fan-out enabled, PlanCache pre-warmed —
 *    the steady state of a serving deployment.
 *
 * Reports sustained GEMM simulations per second for both phases and
 * GATES that warm multi-stream beats cold single-stream by a fixed
 * factor. Also verifies the serving correctness contract: every
 * completion is bitwise identical to a standalone fresh-accelerator
 * run of the same workload, and every stream completes its requests
 * strictly in submission order.
 *
 * Usage: bench_serving_throughput [--smoke] [--json PATH]
 *          [--threads N] [--arch NAME] [--reps N] [--cache-mb N]
 *          [--spill-mb N] [--plan-store DIR]
 *        (--model / --no-plan-cache / --engine are rejected: the
 *         trace is mixed-model by definition and the shared cache
 *         is the measured engine)
 *
 * The shared PlanCache runs under a resident-byte budget
 * (--cache-mb, default 1440): the full trace's encodings (~1.5 GB
 * unbounded) exceed it, so the warm phase exercises real LRU
 * eviction and the throughput gate holds with the cache bounded,
 * not just unbounded. Much smaller budgets LRU-thrash the cyclic
 * trace — hit rates collapse and, without a spill tier, the gate
 * legitimately fails. --spill-mb turns that cliff into graceful
 * degradation: evicted plans are kept in compact serialized form
 * (mask + values, zero runs RLE-coded; the dense mirror and
 * operands dropped and re-derived) and rehydrate on hit, which
 * costs a fraction of the full im2col-lower + re-encode miss, so
 * the gate holds at budgets below the eviction cliff. --plan-store
 * additionally persists encodings across process restarts, so a
 * redeployed scheduler warm-starts instead of re-encoding its
 * whole model mix.
 *
 * Emits BENCH_serving_throughput.json (schema checked in CI).
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** Warm multi-stream must beat cold single-stream by this factor. */
constexpr double kThroughputGate = 1.5;

/** One trace entry: a zoo model at a batch size. */
struct TraceItem
{
    const char *model;
    int batch;
};

/**
 * The mixed request trace. Full mode interleaves ResNet-50, AlexNet
 * and MobileNetV1 at batches 1/2/4 over four streams; smoke mode is
 * the CI-sized version of the same shape (two models, two streams,
 * batches 1/2).
 */
std::vector<TraceItem>
traceItems(bool smoke)
{
    if (smoke) {
        return {{"lenet5", 1}, {"mobilenetv1", 2}, {"lenet5", 2},
                {"mobilenetv1", 1}, {"lenet5", 4}, {"lenet5", 1},
                {"mobilenetv1", 2}, {"lenet5", 2}};
    }
    return {{"resnet50", 1},    {"alexnet", 2}, {"mobilenetv1", 1},
            {"resnet50", 2},    {"alexnet", 4}, {"mobilenetv1", 2},
            {"resnet50", 1},    {"alexnet", 2}, {"mobilenetv1", 1},
            {"resnet50", 2},    {"alexnet", 4}, {"mobilenetv1", 2},
            {"resnet50", 1},    {"alexnet", 2}, {"mobilenetv1", 2},
            {"resnet50", 2},    {"alexnet", 4}, {"mobilenetv1", 1},
            {"resnet50", 1},    {"alexnet", 2}, {"mobilenetv1", 2},
            {"resnet50", 2},    {"alexnet", 4}, {"mobilenetv1", 1}};
}

/** Index a per-stream completion grouping by request id. */
std::map<uint64_t, const serve::Completion *>
byId(const std::vector<std::vector<serve::Completion>> &by_stream)
{
    std::map<uint64_t, const serve::Completion *> out;
    for (const auto &stream : by_stream)
        for (const auto &c : stream)
            out.emplace(c.id, &c);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(!args.model.empty(), "--model",
                    "the serving trace mixes several models by "
                    "definition");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the cross-stream plan cache is the measured "
                    "engine");
    args.rejectFlag(args.engine_given, "--engine",
                    "the measured engine is the plan-cached fast "
                    "path (the scalar engine bypasses the plan "
                    "cache entirely)");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "this bench serves one accelerator; fleet "
                    "scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "single-accelerator serving has nothing to "
                    "place; fleet routing lives in "
                    "bench_fleet_serving");
    const std::string json_path =
        args.json.empty() ? "BENCH_serving_throughput.json"
                          : args.json;
    // Bound the shared cache: a serving deployment cannot hold every
    // encoding resident forever, and the warm-over-cold gate must
    // hold under LRU eviction, not just with unbounded memory.
    const int cache_budget_mb =
        args.cache_mb_given ? args.cache_mb : 1440;
    const int64_t cache_budget_bytes =
        static_cast<int64_t>(cache_budget_mb) << 20;
    const int64_t spill_budget_bytes =
        static_cast<int64_t>(args.spill_mb) << 20;

    banner("Serving throughput",
           "Multi-stream, multi-model, batch>1 streaming through "
           "one Accelerator + shared PlanCache");

    const std::vector<TraceItem> trace = traceItems(args.smoke);
    const int streams = args.smoke ? 2 : 4;

    // One accelerator instance for the whole deployment.
    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);
    acfg.sim_threads = args.ctx.threads;
    const Accelerator acc(acfg);

    // Build every servable workload up front (the registry is the
    // deployment's model store; generation cost is not serving
    // cost). Workload content depends only on the registry seed and
    // the model name, never on request order.
    serve::ModelRegistry registry;
    std::vector<const ModelWorkload *> requests;
    requests.reserve(trace.size());
    int64_t trace_gemms = 0;
    for (const TraceItem &it : trace) {
        const ModelWorkload &mw =
            registry.workload(it.model, it.batch);
        requests.push_back(&mw);
        trace_gemms += serve::StreamScheduler::gemmCount(mw);
    }
    // Distinct (model, batch) workloads actually requested (the
    // registry may additionally hold batch-1 bases that only back
    // batched variants).
    std::vector<const ModelWorkload *> distinct;
    for (const ModelWorkload *mw : requests) {
        bool seen = false;
        for (const ModelWorkload *d : distinct)
            seen = seen || d == mw;
        if (!seen)
            distinct.push_back(mw);
    }
    std::printf("trace: %zu requests over %d streams, %zu distinct "
                "(model, batch) workloads, %lld GEMMs\n\n",
                trace.size(), streams, distinct.size(),
                static_cast<long long>(trace_gemms));

    // Simulation knobs shared by every phase: events-only (serving
    // sweeps don't materialize functional outputs), generator
    // structure trusted, caller-chosen engine.
    NetworkRunOptions run_opt;
    run_opt.engine = args.ctx.engine;
    run_opt.validate_operands = false;

    // ---- phase 1: cold single-stream ----------------------------
    // Fresh cache every rep; all requests in one stream, one
    // scheduler lane. This is the naive driver a serving deployment
    // starts from.
    // Deliberately store-free: the cold baseline must measure real
    // first-sight encodes. With the store attached, a second
    // invocation (or rep 2+) would hydrate this phase from disk and
    // the warm/cold gate would compare against a not-cold baseline.
    PlanCache cold_cache(0, cache_budget_bytes,
                         spill_budget_bytes);
    double cold_seconds = 0.0;
    std::vector<std::vector<serve::Completion>> cold_runs;
    std::vector<uint64_t> cold_ids;
    for (int rep = 0; rep < args.reps; ++rep) {
        cold_cache.clear();
        serve::StreamScheduler::Options copts;
        copts.run = run_opt;
        copts.run.plan_cache = &cold_cache;
        copts.threads = 1;
        serve::StreamScheduler cold(acc, copts);
        std::vector<uint64_t> ids;
        ids.reserve(requests.size());
        for (const ModelWorkload *mw : requests)
            ids.push_back(cold.submit(0, *mw));
        const double t0 = benchNow();
        auto runs = cold.drain();
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < cold_seconds) {
            cold_seconds = dt;
            cold_runs = std::move(runs);
            cold_ids = std::move(ids);
        }
    }
    // Drop the cold encodings before warming the serving cache so
    // the two phases never hold plans resident twice.
    cold_cache.clear();
    std::printf("cold single-stream:  %.3f s (%.1f GEMMs/s)\n",
                cold_seconds,
                static_cast<double>(trace_gemms) / cold_seconds);

    // ---- phase 2: warm multi-stream -----------------------------
    // The trace spread round-robin over the streams, request-level
    // fan-out on, shared cache pre-warmed by an unmeasured pass —
    // the steady state under sustained traffic.
    // The deployment cache: --plan-store attaches here (and only
    // here), persisting encodings across scheduler restarts within
    // this process and across whole processes.
    BenchCache warm_tiers(args, cache_budget_mb);
    serve::StreamScheduler::Options wopts;
    wopts.run = run_opt;
    wopts.run.plan_cache = warm_tiers.cachePtr();
    wopts.threads = args.ctx.threads;
    const auto submit_trace = [&](serve::StreamScheduler &s) {
        std::vector<uint64_t> ids;
        ids.reserve(requests.size());
        for (size_t i = 0; i < requests.size(); ++i) {
            ids.push_back(s.submit(static_cast<int>(i) % streams,
                                   *requests[i]));
        }
        return ids;
    };
    {
        serve::StreamScheduler warmup(acc, wopts);
        submit_trace(warmup);
        warmup.drain();
    }
    double warm_seconds = 0.0;
    std::vector<std::vector<serve::Completion>> warm_runs;
    std::vector<uint64_t> warm_ids;
    PlanCache::Stats warm_stats;
    for (int rep = 0; rep < args.reps; ++rep) {
        serve::StreamScheduler warm(acc, wopts);
        std::vector<uint64_t> ids = submit_trace(warm);
        // Counters accumulate for the cache's lifetime; the
        // steady-state hit rate is this rep's delta, not the total
        // (which would fold in the warmup's misses).
        const PlanCache::Stats before = warm_tiers.cache.stats();
        const double t0 = benchNow();
        auto runs = warm.drain();
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < warm_seconds) {
            warm_seconds = dt;
            warm_runs = std::move(runs);
            warm_ids = std::move(ids);
            warm_stats = warm_tiers.cache.stats();
            warm_stats.hits -= before.hits;
            warm_stats.misses -= before.misses;
            warm_stats.spill_hits -= before.spill_hits;
            warm_stats.store_hits -= before.store_hits;
            warm_stats.evictions -= before.evictions;
            warm_stats.spill_evictions -= before.spill_evictions;
        }
    }
    std::printf("warm multi-stream:   %.3f s (%.1f GEMMs/s)\n",
                warm_seconds,
                static_cast<double>(trace_gemms) / warm_seconds);

    // ---- correctness: serving == standalone ---------------------
    // Every completion (cold and warm) must be bitwise identical to
    // a standalone fresh-accelerator serial run of its workload: no
    // cache sharing, stream interleaving, or fan-out may change a
    // single event count.
    bool reference_equal = true;
    {
        AcceleratorConfig ref_cfg = acfg;
        ref_cfg.sim_threads = 1;
        const Accelerator ref_acc(ref_cfg);
        NetworkRunOptions ref_opt = run_opt; // no plan cache
        std::vector<NetworkRun> ref_by_workload(distinct.size());
        for (size_t d = 0; d < distinct.size(); ++d) {
            ref_by_workload[d] =
                ref_acc.runNetwork(distinct[d]->layers, ref_opt);
        }
        const auto ref_for = [&](const ModelWorkload *mw)
            -> const NetworkRun & {
            for (size_t d = 0; d < distinct.size(); ++d)
                if (distinct[d] == mw)
                    return ref_by_workload[d];
            s2ta_panic("request workload not in distinct set");
        };
        // Match completions to submitted requests by id, so the
        // check is independent of the scheduler's admission policy.
        const auto check = [&](const auto &by_stream,
                               const std::vector<uint64_t> &ids,
                               const char *what) {
            const auto completions = byId(by_stream);
            if (completions.size() != requests.size()) {
                reference_equal = false;
                return;
            }
            for (size_t i = 0; i < requests.size(); ++i) {
                const auto it = completions.find(ids[i]);
                if (it == completions.end() ||
                    !bitwiseEqualRuns(it->second->run,
                                      ref_for(requests[i]))) {
                    reference_equal = false;
                    std::printf("%s MISMATCH on request %zu\n",
                                what, i);
                }
            }
        };
        check(cold_runs, cold_ids, "COLD");
        check(warm_runs, warm_ids, "WARM");
    }

    // ---- correctness: per-stream in-order completion ------------
    bool in_order = true;
    for (const auto &stream : warm_runs) {
        for (size_t i = 1; i < stream.size(); ++i)
            in_order = in_order && stream[i - 1].id < stream[i].id;
    }

    const double cold_rate =
        static_cast<double>(trace_gemms) / cold_seconds;
    const double warm_rate =
        static_cast<double>(trace_gemms) / warm_seconds;
    const double factor = warm_rate / cold_rate;
    // Lookups resolve in one of four tiers; the resident hit rate
    // is RAM hits over all of them, so rehydrations and store
    // hydrations never masquerade as free hits in the artifact.
    const int64_t warm_lookups =
        warm_stats.hits + warm_stats.spill_hits +
        warm_stats.store_hits + warm_stats.misses;
    const double hit_rate =
        warm_lookups == 0
            ? 0.0
            : static_cast<double>(warm_stats.hits) /
                  static_cast<double>(warm_lookups);
    std::printf(
        "\nwarm/cold throughput: %.2fx (gate %.1fx) | warm cache "
        "hit rate %.1f%% (%lld hits / %lld rehydrations / %lld "
        "misses, %lld entries, %.1f MB resident of %d MB budget, "
        "%lld evictions; spill: %lld entries, %.1f MB of %d MB, "
        "%lld dropped)\n"
        "equivalence: reference %s, in-order streams %s\n",
        factor, kThroughputGate, 100.0 * hit_rate,
        static_cast<long long>(warm_stats.hits),
        static_cast<long long>(warm_stats.spill_hits),
        static_cast<long long>(warm_stats.misses),
        static_cast<long long>(warm_stats.entries),
        static_cast<double>(warm_stats.resident_bytes) /
            static_cast<double>(1 << 20),
        cache_budget_mb,
        static_cast<long long>(warm_stats.evictions),
        static_cast<long long>(warm_stats.spill_entries),
        static_cast<double>(warm_stats.spill_bytes) /
            static_cast<double>(1 << 20),
        args.spill_mb,
        static_cast<long long>(warm_stats.spill_evictions),
        reference_equal ? "ok" : "FAIL", in_order ? "ok" : "FAIL");

    JsonWriter jw;
    jw.field("bench", "serving_throughput")
        .field("smoke", args.smoke)
        .field("arch", acfg.array.name())
        .field("simd_kernel", benchSimdKernel())
        .field("engine",
               args.ctx.engine == EngineKind::Scalar ? "scalar"
                                                     : "fast")
        .field("streams", streams)
        .field("requests", static_cast<int64_t>(trace.size()))
        .field("distinct_workloads",
               static_cast<int64_t>(distinct.size()))
        .field("gemms", trace_gemms)
        .field("reps", args.reps)
        .field("cold_seconds", cold_seconds)
        .field("warm_seconds", warm_seconds)
        .field("cold_gemms_per_sec", cold_rate, 1)
        .field("warm_gemms_per_sec", warm_rate, 1)
        .field("warm_over_cold", factor, 3)
        .field("throughput_gate", kThroughputGate, 1)
        .field("cache_hits", warm_stats.hits)
        .field("cache_misses", warm_stats.misses)
        .field("cache_hit_rate", hit_rate, 4)
        .field("cache_entries", warm_stats.entries)
        .field("cache_resident_bytes", warm_stats.resident_bytes)
        .field("cache_budget_mb", cache_budget_mb)
        .field("cache_evictions", warm_stats.evictions)
        .field("spill_budget_mb", args.spill_mb)
        .field("spill_hits", warm_stats.spill_hits)
        .field("spill_entries", warm_stats.spill_entries)
        .field("spill_bytes", warm_stats.spill_bytes)
        .field("spill_evictions", warm_stats.spill_evictions)
        .field("plan_store", !args.plan_store.empty())
        .field("store_hits", warm_stats.store_hits)
        .field("bitwise_equal_reference", reference_equal)
        .field("in_order_streams", in_order);
    jw.write(json_path);

    if (!reference_equal)
        s2ta_fatal("serving outputs diverged from standalone runs");
    if (!in_order)
        s2ta_fatal("a stream completed out of submission order");
    if (factor < kThroughputGate) {
        s2ta_fatal("warm multi-stream throughput %.2fx cold is "
                   "below the %.1fx gate", factor, kThroughputGate);
    }
    return 0;
}
