/**
 * @file
 * Wall-clock replay serving: the measured-time validation of the
 * virtual-clock QoS stack (ROADMAP's "measured-time serving" gap).
 *
 * The same seeded Poisson trace the virtual-time latency bench
 * replays is served twice per admission policy:
 *
 *  - **virtual**: through StreamScheduler's discrete-event loop
 *    (exact, deterministic virtual p50/p95/p99);
 *  - **measured**: open-loop against real steady_clock time via
 *    serve::replayWallclock — a feeder thread publishes each
 *    request at its scheduled wall arrival on a real ThreadPool of
 *    N lanes, and completions carry measured instants. Wall
 *    arrivals are the virtual arrivals stretched by a measured
 *    time-scale factor (mean wall service / mean virtual service),
 *    so the replay offers the same utilization to the wall
 *    deployment that the virtual trace offers the virtual one.
 *
 * Reported side by side per policy; three gates:
 *
 *  - every wall-clock run is bitwise identical to the virtual run
 *    of the same request (real thread contention reorders timing,
 *    never computation);
 *  - the tracer's overhead on a fully traced virtual drain is
 *    within 5% of the untraced drain (best-of-N wall time);
 *  - measured latencies are sane (start >= arrival, finish >=
 *    start — enforced inside the replay driver).
 *
 * Usage: bench_wallclock_serving [--smoke] [--json PATH]
 *          [--threads N] [--arch s2ta-w|s2ta-aw] [--cache-mb N]
 *          [--spill-mb N] [--plan-store DIR] [--reps N]
 *          [--trace-out PATH] [--metrics-out PATH]
 *        (--model / --no-plan-cache / --engine / --replicas /
 *         --placement / --test-backend are rejected: mixed-model
 *         trace by definition, the shared cache is the scenario,
 *         results are engine-independent, one accelerator, and the
 *         replay drives the accelerator directly)
 *
 * Emits BENCH_wallclock_serving.json (schema checked in CI); with
 * --trace-out the Chrome trace of the whole run opens in
 * chrome://tracing / Perfetto and summarizes with
 * tools/trace_summarize.py.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/trace.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"
#include "serve/telemetry.hh"
#include "serve/wallclock_replay.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** One trace entry: a zoo model at a batch size. */
struct TraceItem
{
    const char *model;
    int batch;
};

/** The deployed (model, batch) mix requests cycle through (the
 *  latency-serving bench's mix, for comparable traces). */
std::vector<TraceItem>
traceItems(bool smoke)
{
    if (smoke) {
        return {{"lenet5", 1}, {"mobilenetv1", 1}, {"lenet5", 2},
                {"mobilenetv1", 2}, {"lenet5", 4}};
    }
    return {{"resnet50", 1}, {"alexnet", 1}, {"mobilenetv1", 1},
            {"resnet50", 2}, {"alexnet", 2}, {"mobilenetv1", 2}};
}

/** One generated request of the open-loop trace, virtual seconds. */
struct TraceRequest
{
    const ModelWorkload *workload = nullptr;
    int stream = 0;
    double arrival_s = 0.0;
    double deadline_s = serve::kNoDeadline;
};

constexpr double kMsPerS = 1e3;

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(!args.model.empty(), "--model",
                    "the replay trace mixes several models by "
                    "definition");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the shared budgeted plan cache is part of the "
                    "serving scenario");
    args.rejectFlag(args.engine_given, "--engine",
                    "results are engine-independent; the replay "
                    "always runs the plan-cached fast path");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "this bench serves one accelerator; fleet "
                    "scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "single-accelerator serving has nothing to "
                    "place");
    args.rejectFlag(args.test_backend_given, "--test-backend",
                    "the wall-clock replay drives the accelerator "
                    "directly; backend timing lives in "
                    "bench_backend_serving");
    const std::string json_path =
        args.json.empty() ? "BENCH_wallclock_serving.json"
                          : args.json;
    // Wall-clock noise exists here (unlike the virtual benches), so
    // the overhead gate is best-of-N by default.
    const int reps = args.reps_given ? args.reps : 5;

    banner("Wall-clock replay serving",
           "Measured vs virtual QoS: the same seeded Poisson trace "
           "served open-loop on real steady_clock time");

    const std::vector<TraceItem> items = traceItems(args.smoke);
    const int streams = args.smoke ? 3 : 6;
    const int requests = args.smoke ? 15 : 36;
    const serve::VirtualClockConfig clock{/*lanes=*/2,
                                          /*clock_ghz=*/1.0};
    const double utilization = 0.7;
    const int cache_budget_mb =
        args.cache_mb_given ? args.cache_mb : 2048;

    // Two views of one deployment sharing one PlanCache: `acc`
    // simulates with the configured fan-out (virtual replays),
    // `acc_serial` simulates serially — the wall-clock lanes run
    // their simulations inline anyway (nested-parallelism rule), so
    // the serial instance is what warmup must measure for the time
    // scale to be honest. Results are bitwise identical across the
    // two by the repo's thread-count determinism contract (and the
    // gate below crosses them on purpose).
    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);
    acfg.sim_threads = args.ctx.threads;
    const Accelerator acc(acfg);
    AcceleratorConfig serial_cfg = acfg;
    serial_cfg.sim_threads = 1;
    const Accelerator acc_serial(serial_cfg);
    BenchCache tiers(args, cache_budget_mb);

    NetworkRunOptions run_opt;
    run_opt.validate_operands = false;
    run_opt.plan_cache = tiers.cachePtr();

    // Warmup: service estimates (virtual seconds + cycles) and the
    // measured serial wall service time per workload, off the warm
    // cache — the state a deployment reaches after its first
    // requests.
    serve::ModelRegistry registry;
    std::vector<const ModelWorkload *> deployed;
    std::map<const ModelWorkload *, double> est_service_s;
    std::map<const ModelWorkload *, int64_t> est_cycles;
    std::map<const ModelWorkload *, double> wall_service_s;
    for (const TraceItem &it : items) {
        const ModelWorkload &mw =
            registry.workload(it.model, it.batch);
        deployed.push_back(&mw);
        if (est_service_s.count(&mw))
            continue;
        const NetworkRun warm =
            acc.runNetwork(mw.layers, run_opt); // encode once
        est_service_s.emplace(
            &mw, clock.cyclesToSeconds(warm.total.cycles));
        est_cycles.emplace(&mw, warm.total.cycles);
        double best = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
            const double t0 = benchNow();
            const NetworkRun nr =
                acc_serial.runNetwork(mw.layers, run_opt);
            const double dt = benchNow() - t0;
            if (rep == 0 || dt < best)
                best = dt;
            if (!bitwiseEqualRuns(warm, nr))
                s2ta_fatal("serial warmup run of %s diverged",
                           mw.spec.name.c_str());
        }
        wall_service_s.emplace(&mw, best);
    }

    double virtual_mean_s = 0.0, wall_mean_s = 0.0;
    for (int i = 0; i < requests; ++i) {
        const ModelWorkload *mw =
            deployed[static_cast<size_t>(i) % deployed.size()];
        virtual_mean_s += est_service_s.at(mw);
        wall_mean_s += wall_service_s.at(mw);
    }
    virtual_mean_s /= requests;
    wall_mean_s /= requests;
    /** Virtual seconds -> wall seconds for the replayed trace. */
    const double time_scale = wall_mean_s / virtual_mean_s;
    const double capacity_rps = clock.lanes / virtual_mean_s;
    const double rate = utilization * capacity_rps;

    std::printf("trace: %d requests over %d streams, %zu deployed "
                "workloads | %d lanes, utilization %.1f\n"
                "mean service: %.3f ms virtual @ %.1f GHz, %.3f ms "
                "measured serial -> time scale %.1fx\n\n",
                requests, streams, deployed.size(), clock.lanes,
                utilization, virtual_mean_s * kMsPerS,
                clock.clock_ghz, wall_mean_s * kMsPerS, time_scale);

    // The trace (virtual seconds): seeded Poisson arrivals, streams
    // round-robin, deadline = arrival + slack x estimated service
    // (slack uniform in [2, 10), seeded).
    Rng trace_rng(0xA11C10);
    const std::vector<double> arrivals =
        serve::poissonArrivals(requests, rate, trace_rng);
    std::vector<TraceRequest> trace(static_cast<size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        TraceRequest &r = trace[static_cast<size_t>(i)];
        r.workload =
            deployed[static_cast<size_t>(i) % deployed.size()];
        r.stream = i % streams;
        r.arrival_s = arrivals[static_cast<size_t>(i)];
        const double slack = trace_rng.uniformReal(2.0, 10.0);
        r.deadline_s =
            r.arrival_s + slack * est_service_s.at(r.workload);
    }

    const std::vector<serve::PolicyKind> policies = {
        serve::PolicyKind::RoundRobin,
        serve::PolicyKind::EarliestDeadlineFirst,
        serve::PolicyKind::ShortestJobFirst,
    };

    /** Virtual replay: telemetry + runs indexed by trace order
     *  (submission order, so scheduler id == index + 1). */
    struct VirtualResult
    {
        serve::LatencyTelemetry telemetry;
        std::vector<NetworkRun> runs;
    };
    const auto replayVirtual = [&](serve::PolicyKind kind) {
        VirtualResult vr;
        vr.runs.resize(trace.size());
        serve::StreamScheduler::Options opts;
        opts.run = run_opt;
        opts.threads = args.ctx.threads;
        opts.clock = clock;
        opts.policy = &serve::policyFor(kind);
        opts.on_complete = [&](const serve::Completion &c) {
            vr.telemetry.record(c.sample());
        };
        serve::StreamScheduler sched(acc, opts);
        for (const TraceRequest &r : trace) {
            sched.submit(r.stream, *r.workload, r.arrival_s,
                         r.deadline_s);
        }
        auto by_stream = sched.drain();
        for (auto &stream : by_stream) {
            for (auto &c : stream)
                vr.runs[static_cast<size_t>(c.id - 1)] =
                    std::move(c.run);
        }
        return vr;
    };

    // Tracer overhead: the gated virtual drain, fully traced vs
    // untraced, best-of-reps wall time. Run before the wall-clock
    // replays so the ring buffers exercised here are cleared from
    // the exported trace's hot window (snapshot keeps them; the
    // trace stays valid either way).
    obs::Tracer &tracer = obs::Tracer::global();
    const bool trace_requested = !args.trace_out.empty();
    double untraced_best = 0.0, traced_best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        tracer.setEnabled(false);
        double t0 = benchNow();
        replayVirtual(serve::PolicyKind::RoundRobin);
        const double untraced = benchNow() - t0;
        tracer.setEnabled(true);
        t0 = benchNow();
        replayVirtual(serve::PolicyKind::RoundRobin);
        const double traced = benchNow() - t0;
        if (rep == 0 || untraced < untraced_best)
            untraced_best = untraced;
        if (rep == 0 || traced < traced_best)
            traced_best = traced;
    }
    tracer.setEnabled(trace_requested);
    const double overhead_frac =
        traced_best / untraced_best - 1.0;
    const bool overhead_ok = overhead_frac <= 0.05;
    std::printf("tracer overhead on the virtual drain: %.3f ms "
                "traced vs %.3f ms untraced (best of %d) -> "
                "%+.2f%% (%s)\n\n",
                traced_best * kMsPerS, untraced_best * kMsPerS,
                reps, 100.0 * overhead_frac,
                overhead_ok ? "ok" : "FAIL");

    JsonWriter jw;
    jw.field("bench", "wallclock_serving")
        .field("smoke", args.smoke)
        .field("arch", acfg.array.name())
        .field("simd_kernel", benchSimdKernel())
        .field("streams", streams)
        .field("requests", requests)
        .field("lanes", clock.lanes)
        .field("clock_ghz", clock.clock_ghz, 1)
        .field("utilization", utilization, 2)
        .field("rate_rps", rate, 3)
        .field("virtual_mean_service_ms", virtual_mean_s * kMsPerS,
               4)
        .field("wall_mean_service_ms", wall_mean_s * kMsPerS, 4)
        .field("time_scale", time_scale, 3)
        .field("cache_budget_mb", cache_budget_mb);

    bool bitwise_equal_wallclock = true;
    for (const serve::PolicyKind kind : policies) {
        const VirtualResult vr = replayVirtual(kind);

        // The identical trace in wall seconds: arrivals and
        // deadlines stretched by the measured time scale, estimates
        // in the same cycle units SJF ordered by virtually.
        std::vector<serve::WallclockRequest> wall_trace(
            trace.size());
        for (size_t i = 0; i < trace.size(); ++i) {
            wall_trace[i].model = trace[i].workload;
            wall_trace[i].stream = trace[i].stream;
            wall_trace[i].arrival_s =
                trace[i].arrival_s * time_scale;
            wall_trace[i].deadline_s =
                trace[i].deadline_s == serve::kNoDeadline
                    ? serve::kNoDeadline
                    : trace[i].deadline_s * time_scale;
            wall_trace[i].est_cycles =
                est_cycles.at(trace[i].workload);
        }
        serve::WallclockReplayOptions wopts;
        wopts.run = run_opt;
        wopts.lanes = clock.lanes;
        wopts.policy = &serve::policyFor(kind);
        const std::vector<serve::WallclockCompletion> measured =
            replayWallclock(acc_serial, wall_trace, wopts);

        serve::LatencyTelemetry mtel;
        for (const serve::WallclockCompletion &c : measured) {
            mtel.record(c.sample());
            if (!bitwiseEqualRuns(
                    vr.runs[c.index],
                    measured[c.index].run)) {
                bitwise_equal_wallclock = false;
                std::printf("  %s RUN MISMATCH wall vs virtual on "
                            "request %zu\n",
                            serve::policyName(kind), c.index);
            }
        }

        const serve::LatencyQuantiles vq = vr.telemetry.quantiles();
        const serve::LatencyQuantiles mq = mtel.quantiles();
        const std::string p = serve::policyName(kind);
        std::printf("%-3s  virtual  p50 %8.3f ms  p95 %8.3f ms  "
                    "p99 %8.3f ms  miss %2lld/%2lld\n"
                    "     measured p50 %8.3f ms  p95 %8.3f ms  "
                    "p99 %8.3f ms  miss %2lld/%2lld\n",
                    p.c_str(), vq.p50_s * kMsPerS,
                    vq.p95_s * kMsPerS, vq.p99_s * kMsPerS,
                    static_cast<long long>(
                        vr.telemetry.deadlineMisses()),
                    static_cast<long long>(
                        vr.telemetry.deadlineRequests()),
                    mq.p50_s * kMsPerS, mq.p95_s * kMsPerS,
                    mq.p99_s * kMsPerS,
                    static_cast<long long>(mtel.deadlineMisses()),
                    static_cast<long long>(
                        mtel.deadlineRequests()));

        jw.field(p + "_virtual_p50_ms", vq.p50_s * kMsPerS, 4)
            .field(p + "_virtual_p95_ms", vq.p95_s * kMsPerS, 4)
            .field(p + "_virtual_p99_ms", vq.p99_s * kMsPerS, 4)
            .field(p + "_measured_p50_ms", mq.p50_s * kMsPerS, 4)
            .field(p + "_measured_p95_ms", mq.p95_s * kMsPerS, 4)
            .field(p + "_measured_p99_ms", mq.p99_s * kMsPerS, 4)
            .field(p + "_virtual_miss_rate",
                   vr.telemetry.missRate(), 4)
            .field(p + "_measured_miss_rate", mtel.missRate(), 4);
    }
    std::printf("\n");

    const obs::Tracer::Stats ts = tracer.stats();
    std::printf("gates: bitwise wall==virtual %s | tracer overhead "
                "%+.2f%% (%s) | %lld trace events recorded, %lld "
                "dropped\n",
                bitwise_equal_wallclock ? "ok" : "FAIL",
                100.0 * overhead_frac, overhead_ok ? "ok" : "FAIL",
                static_cast<long long>(ts.recorded),
                static_cast<long long>(ts.dropped));

    jw.field("bitwise_equal_wallclock", bitwise_equal_wallclock)
        .field("tracer_overhead_frac", overhead_frac, 4)
        .field("tracer_overhead_ok", overhead_ok)
        .field("trace_events", ts.recorded)
        .field("trace_events_dropped", ts.dropped);
    jw.write(json_path);

    if (!bitwise_equal_wallclock) {
        s2ta_fatal("wall-clock replay changed simulation results "
                   "(thread contention must reorder timing, never "
                   "computation)");
    }
    if (!overhead_ok) {
        s2ta_warn("tracer overhead %.2f%% exceeds the 5%% budget "
                  "(CI gates this on the artifact field; rerun on "
                  "an idle machine)",
                  100.0 * overhead_frac);
    }
    return 0;
}
