/**
 * @file
 * End-to-end throughput of the *sweep layer*: wall-clock time to
 * evaluate one CNN workload across many array configurations, the
 * way fig09-fig12/tab04-tab05 and design-space exploration actually
 * use the simulator. The baseline is the PR-1 path (fresh models
 * per design point, every config re-lowers and re-encodes the
 * workload, single thread, single stripe); the measured engine
 * shares one PlanCache so the workload encodes once and every
 * subsequent design point reuses the cached plans.
 *
 * Also verifies the correctness contract of the whole stack:
 *  - cached and uncached sweeps produce identical event totals;
 *  - fast-engine outputs (plan-cached included) are bitwise
 *    identical to EngineKind::Scalar;
 *  - tile-stripe sharded runs are bitwise identical to serial at
 *    every checked thread count.
 *
 * With --plan-store DIR a third phase runs the same sweep through a
 * persistent cross-process plan store: the first invocation encodes
 * and serializes every plan (cold start, populating DIR); any later
 * invocation pointed at the same DIR hydrates the mmap'd encodings
 * instead of re-encoding (warm start). The warm-start gate compares
 * the time-to-first-design-point — the phase warm start actually
 * accelerates; the per-point simulation cost after it is identical
 * by construction — against the store-free cold encode, and every
 * store-phase run must stay bitwise identical to the store-free
 * sweep (a corrupt or version-stale store file is rejected and
 * silently rebuilt, so the check holds under corruption too).
 *
 * Usage: bench_sweep_throughput [--smoke] [--model NAME]
 *          [--json PATH] [--reps N] [--engine scalar|fast]
 *          [--plan-store DIR] [--spill-mb N] [--cache-mb N]
 *        (--threads / --no-plan-cache are rejected: the experiment
 *         pins them)
 *
 * Emits BENCH_sweep_throughput.json (schema checked in CI).
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/**
 * The sweep: the four baseline families plus a design-space grid of
 * S2TA array geometries (Fig. 9-12 x Sec. 7-style exploration). All
 * S2TA points share one set of encoded plans; the SA/SMT points
 * share another (their im2col alignment differs).
 */
std::vector<ArrayConfig>
sweepConfigs(bool smoke)
{
    std::vector<ArrayConfig> cfgs;
    cfgs.push_back(ArrayConfig::saZvcg());
    if (!smoke) {
        cfgs.push_back(ArrayConfig::sa());
        cfgs.push_back(ArrayConfig::saSmt(2));
        cfgs.push_back(ArrayConfig::saSmt(4));
    }
    const auto scaled = [](ArrayConfig cfg, int mx, int nx) {
        cfg.tpe.m *= mx;
        cfg.tpe.n *= nx;
        return cfg;
    };
    cfgs.push_back(ArrayConfig::s2taW());
    cfgs.push_back(ArrayConfig::s2taAw(4));
    if (!smoke) {
        for (const auto &[mx, nx] :
             {std::pair{2, 1}, {1, 2}, {2, 2}}) {
            cfgs.push_back(scaled(ArrayConfig::s2taW(), mx, nx));
            cfgs.push_back(scaled(ArrayConfig::s2taAw(4), mx, nx));
        }
    }
    return cfgs;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(args.threads_given, "--threads",
                    "the cached-vs-baseline comparison is pinned "
                    "single-thread (sharded runs are checked at "
                    "fixed lane counts)");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the plan cache is the measured engine");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "the sweep evaluates design points, not a "
                    "fleet; scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "the sweep routes nothing; fleet placement "
                    "lives in bench_fleet_serving");
    if (args.model.empty())
        args.model = args.smoke ? "lenet5" : "resnet50";
    std::string json_path = args.json.empty()
                                ? "BENCH_sweep_throughput.json"
                                : args.json;

    banner("Sweep throughput",
           "Multi-config sweep: per-point re-encoding (PR-1 "
           "baseline) vs one shared PlanCache");

    const ModelSpec spec = modelByName(args.model);
    Rng rng(0x51EE9);
    const ModelWorkload mw = buildModelWorkload(spec, rng);
    const std::vector<ArrayConfig> cfgs = sweepConfigs(args.smoke);

    std::printf("model=%s layers=%zu configs=%zu reps=%d\n\n",
                spec.name.c_str(), mw.layers.size(), cfgs.size(),
                args.reps);

    // ---- baseline: the PR-1 sweep loop --------------------------
    // Fresh Accelerator per design point, no plan cache: every
    // config re-lowers and re-encodes all layers. Single thread,
    // single stripe.
    NetworkRunOptions base_opt;
    base_opt.engine = args.ctx.engine;
    std::vector<NetworkRun> base_runs(cfgs.size());
    double base_seconds = 0.0;
    for (int rep = 0; rep < args.reps; ++rep) {
        std::vector<NetworkRun> runs(cfgs.size());
        const double t0 = benchNow();
        for (size_t c = 0; c < cfgs.size(); ++c) {
            const double c0 = benchNow();
            AcceleratorConfig acfg;
            acfg.array = cfgs[c];
            acfg.sim_threads = 1;
            const Accelerator acc(acfg);
            runs[c] = acc.runNetwork(mw.layers, base_opt);
            if (rep == 0)
                std::printf("  base   %-28s %.3f s\n",
                            cfgs[c].name().c_str(), benchNow() - c0);
        }
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < base_seconds) {
            base_seconds = dt;
            base_runs = std::move(runs);
        }
    }
    std::printf("baseline (no cache, fresh models):  %.3f s\n",
                base_seconds);

    // ---- measured: shared plan cache + hoisted models -----------
    // Store-free even when --plan-store is given: this phase is the
    // cold-encode reference the warm-start gate compares against.
    SweepContext::Options ctx_opts = args.ctx;
    ctx_opts.threads = 1; // acceptance point is single-thread
    ctx_opts.plan_cache = true;
    ctx_opts.plan_store_dir.clear();
    double cached_seconds = 0.0;
    double cold_first_point_seconds = 0.0;
    std::vector<NetworkRun> cached_runs(cfgs.size());
    PlanCache::Stats cache_stats;
    for (int rep = 0; rep < args.reps; ++rep) {
        SweepContext ctx(ctx_opts); // cold cache every rep
        const NetworkRunOptions opt = ctx.networkRunOptions();
        std::vector<NetworkRun> runs(cfgs.size());
        double first_point = 0.0;
        const double t0 = benchNow();
        for (size_t c = 0; c < cfgs.size(); ++c) {
            const double c0 = benchNow();
            runs[c] =
                ctx.accelerator(cfgs[c]).runNetwork(mw.layers, opt);
            if (c == 0)
                first_point = benchNow() - c0;
            if (rep == 0)
                std::printf("  cached %-28s %.3f s\n",
                            cfgs[c].name().c_str(), benchNow() - c0);
        }
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < cached_seconds) {
            cached_seconds = dt;
            cold_first_point_seconds = first_point;
            cached_runs = std::move(runs);
            cache_stats = ctx.planCache().stats();
        }
    }
    std::printf("plan-cached sweep (shared encode):  %.3f s\n",
                cached_seconds);

    // ---- persistent plan store: cold populate / warm hydrate ----
    // Fresh context (cold RAM cache) per rep, all sharing the store
    // directory — and, across invocations, sharing it with past
    // processes. Warm start is detected from the tier counters: the
    // store served every plan and nothing was encoded.
    const bool plan_store_on = !args.plan_store.empty();
    double store_seconds = 0.0;
    double store_first_point_seconds = 0.0;
    bool warm_start = false;
    bool store_equal = true;
    PlanCache::Stats store_stats;
    if (plan_store_on) {
        SweepContext::Options sopts = args.ctx;
        sopts.threads = 1;
        sopts.plan_cache = true;
        for (int rep = 0; rep < args.reps; ++rep) {
            SweepContext ctx(sopts);
            const NetworkRunOptions opt = ctx.networkRunOptions();
            std::vector<NetworkRun> runs(cfgs.size());
            double first_point = 0.0;
            const double t0 = benchNow();
            for (size_t c = 0; c < cfgs.size(); ++c) {
                const double c0 = benchNow();
                runs[c] = ctx.accelerator(cfgs[c])
                              .runNetwork(mw.layers, opt);
                if (c == 0)
                    first_point = benchNow() - c0;
            }
            const double dt = benchNow() - t0;
            const PlanCache::Stats st = ctx.planCache().stats();
            // Warm start is a property of the *invocation*, judged
            // from rep 0 — the first contact with the store. On a
            // cold invocation, rep 2+ would hydrate from the store
            // rep 0 just populated in this very process; those
            // same-process reps must neither flip the label nor be
            // timed as the (cross-process) warm start, so a cold
            // invocation reports rep 0 — the true populate cost —
            // and a warm one reports best-of (every rep is a
            // genuine store hydration).
            if (rep == 0)
                warm_start = st.store_hits > 0 && st.misses == 0;
            const bool record =
                warm_start ? (rep == 0 || dt < store_seconds)
                           : rep == 0;
            if (record) {
                store_seconds = dt;
                store_first_point_seconds = first_point;
                store_stats = st;
                for (size_t c = 0; c < cfgs.size(); ++c) {
                    if (!bitwiseEqualRuns(runs[c], base_runs[c])) {
                        store_equal = false;
                        std::printf("STORE MISMATCH on %s\n",
                                    cfgs[c].name().c_str());
                    }
                }
            }
            if (!warm_start)
                break; // further reps would only be discarded
        }
        std::printf(
            "plan-store sweep (%s start):        %.3f s | first "
            "design point %.3f s vs %.3f s cold encode | store: "
            "%lld hydrated / %lld saved / %lld rejected\n",
            warm_start ? "warm" : "cold", store_seconds,
            store_first_point_seconds, cold_first_point_seconds,
            static_cast<long long>(store_stats.store_hits),
            static_cast<long long>(store_stats.store_saves),
            static_cast<long long>(store_stats.store_rejects));
    }

    bool events_equal = true;
    for (size_t c = 0; c < cfgs.size(); ++c) {
        if (!bitwiseEqualRuns(base_runs[c], cached_runs[c])) {
            events_equal = false;
            std::printf("EVENT MISMATCH on %s\n",
                        cfgs[c].name().c_str());
        }
    }

    // ---- scalar-engine equivalence (events, all configs) --------
    NetworkRunOptions scalar_opt;
    scalar_opt.engine = EngineKind::Scalar;
    bool scalar_equal = true;
    for (size_t c = 0; c < cfgs.size(); ++c) {
        AcceleratorConfig acfg;
        acfg.array = cfgs[c];
        acfg.sim_threads = 1;
        const NetworkRun sr =
            Accelerator(acfg).runNetwork(mw.layers, scalar_opt);
        if (!bitwiseEqualRuns(sr, base_runs[c])) {
            scalar_equal = false;
            std::printf("SCALAR EVENT MISMATCH on %s\n",
                        cfgs[c].name().c_str());
        }
    }

    // ---- functional bitwise checks ------------------------------
    // Scalar vs fast vs plan-cached functional outputs on one
    // architecture, then tile-stripe sharded runs at several lane
    // counts against the serial run.
    AcceleratorConfig fcfg;
    fcfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);
    fcfg.sim_threads = 1;

    NetworkRunOptions fun_scalar;
    fun_scalar.compute_output = true;
    fun_scalar.engine = EngineKind::Scalar;
    const NetworkRun out_scalar =
        Accelerator(fcfg).runNetwork(mw.layers, fun_scalar);

    NetworkRunOptions fun_fast = fun_scalar;
    fun_fast.engine = EngineKind::DbbFast;
    const NetworkRun out_fast =
        Accelerator(fcfg).runNetwork(mw.layers, fun_fast);

    PlanCache fun_cache;
    NetworkRunOptions fun_cached = fun_fast;
    fun_cached.plan_cache = &fun_cache;
    const NetworkRun out_cached =
        Accelerator(fcfg).runNetwork(mw.layers, fun_cached);

    bool functional_equal = bitwiseEqualRuns(out_scalar, out_fast) &&
                            bitwiseEqualRuns(out_scalar, out_cached);

    bool sharded_equal = true;
    const int shard_threads[] = {2, 4};
    for (int t : shard_threads) {
        AcceleratorConfig scfg = fcfg;
        scfg.sim_threads = t;
        const NetworkRun out_sharded =
            Accelerator(scfg).runNetwork(mw.layers, fun_cached);
        if (!bitwiseEqualRuns(out_fast, out_sharded)) {
            sharded_equal = false;
            std::printf("SHARD MISMATCH at %d threads\n", t);
        }
    }

    // ---- event-loop sharding row --------------------------------
    // Events-only runs (no functional output) on tile grids past
    // the shard cutover: the per-PE operand-register loops and the
    // SMT sampled queue automata are the dominant per-point cost,
    // and both now stripe across RunOptions::shard_pool. Timed from
    // pre-built plans so the encode (a one-time sweep cost, already
    // measured above) stays out of the ratio. The pooled runs must
    // stay bitwise identical to serial; the wall-clock gate follows
    // the engine bench's overlap pattern — enforced where a second
    // core exists, recorded with mode "serial-bound-single-core"
    // where the pool lanes timeshare one core and a measured win is
    // physically impossible.
    std::printf("\ntiming sharded event loops (large tile "
                "grids)...\n");
    Rng shard_rng(0x5A4D);
    const GemmProblem shard_aw_p =
        makeDbbGemm(4096, 64, 2048, 4, 4, shard_rng);
    const GemmProblem shard_smt_p =
        makeUnstructuredGemm(2048, 512, 2048, 0.5, 0.5, shard_rng);
    const GemmPlan shard_aw_plan = GemmPlan::build(shard_aw_p);
    const GemmPlan shard_smt_plan = GemmPlan::build(shard_smt_p);
    ThreadPool event_pool(4);
    const auto timeEvents = [&](const ArrayConfig &cfg,
                                const GemmPlan &plan,
                                ThreadPool *pool, GemmRun &out) {
        const auto model = makeArrayModel(cfg);
        RunOptions opt;
        opt.compute_output = false;
        opt.validate_operands = false;
        opt.shard_pool = pool;
        double best = 0.0;
        for (int rep = 0; rep < std::max(args.reps, 3); ++rep) {
            const double t0 = benchNow();
            GemmRun r = model->run(plan, opt);
            const double dt = benchNow() - t0;
            if (rep == 0 || dt < best) {
                best = dt;
                out = std::move(r);
            }
        }
        return best;
    };
    GemmRun aw_serial, aw_pooled, smt_serial, smt_pooled;
    const double aw_serial_s = timeEvents(
        ArrayConfig::s2taAw(4), shard_aw_plan, nullptr, aw_serial);
    const double aw_pooled_s =
        timeEvents(ArrayConfig::s2taAw(4), shard_aw_plan,
                   &event_pool, aw_pooled);
    const double smt_serial_s =
        timeEvents(ArrayConfig::saSmt(2), shard_smt_plan, nullptr,
                   smt_serial);
    const double smt_pooled_s =
        timeEvents(ArrayConfig::saSmt(2), shard_smt_plan,
                   &event_pool, smt_pooled);
    const bool event_shard_equal =
        aw_serial.events == aw_pooled.events &&
        smt_serial.events == smt_pooled.events;
    const double event_shard_serial_s = aw_serial_s + smt_serial_s;
    const double event_shard_pool_s = aw_pooled_s + smt_pooled_s;
    const double event_shard_speedup =
        event_shard_serial_s / event_shard_pool_s;
    const unsigned event_shard_cores =
        std::thread::hardware_concurrency();
    const bool event_shard_measurable = event_shard_cores >= 2;
    const char *event_shard_mode =
        event_shard_measurable ? "measured"
                               : "serial-bound-single-core";
    std::printf("  event loops: serial %.4f s | pool(4) %.4f s | "
                "%.2fx (%s) | events %s\n",
                event_shard_serial_s, event_shard_pool_s,
                event_shard_speedup, event_shard_mode,
                event_shard_equal ? "identical" : "DIFFERENT");

    const bool all_equal = events_equal && scalar_equal &&
                           functional_equal && sharded_equal &&
                           event_shard_equal && store_equal;
    const double speedup = base_seconds / cached_seconds;
    // Warm-start gate: hydration must beat cold encode by 2x at
    // the point it accelerates — time to the first design point
    // (encode-or-hydrate + one simulation; the remaining points
    // cost the same with or without the store by construction).
    constexpr double kWarmStartGate = 2.0;
    const double warm_start_speedup =
        warm_start && store_first_point_seconds > 0.0
            ? cold_first_point_seconds / store_first_point_seconds
            : 0.0;
    const double pts = static_cast<double>(cfgs.size());
    std::printf(
        "\nsweep speedup: %.2fx | %.2f -> %.2f design points/s | "
        "cache: %lld hits / %lld misses\n"
        "equivalence: events %s, scalar %s, functional %s, "
        "sharded %s\n",
        speedup, pts / base_seconds, pts / cached_seconds,
        static_cast<long long>(cache_stats.hits),
        static_cast<long long>(cache_stats.misses),
        events_equal ? "ok" : "FAIL", scalar_equal ? "ok" : "FAIL",
        functional_equal ? "ok" : "FAIL",
        sharded_equal ? "ok" : "FAIL");

    JsonWriter jw;
    jw.field("bench", "sweep_throughput")
        .field("model", spec.name)
        .field("smoke", args.smoke)
        .field("layers", static_cast<int64_t>(mw.layers.size()))
        .field("configs", static_cast<int64_t>(cfgs.size()))
        .field("reps", args.reps)
        .field("baseline_seconds", base_seconds)
        .field("cached_seconds", cached_seconds)
        .field("speedup", speedup, 3)
        .field("design_points_per_sec_baseline", pts / base_seconds,
               3)
        .field("design_points_per_sec_cached", pts / cached_seconds,
               3)
        .field("cache_hits", cache_stats.hits)
        .field("cache_misses", cache_stats.misses)
        .field("cache_entries", cache_stats.entries)
        .field("cache_resident_bytes", cache_stats.resident_bytes)
        .field("dap_memo_hits", cache_stats.dap_hits)
        .field("dap_memo_misses", cache_stats.dap_misses)
        .field("simd_kernel", benchSimdKernel())
        .field("plan_store", plan_store_on)
        .field("warm_start", warm_start)
        .field("store_seconds", store_seconds)
        .field("cold_first_point_seconds", cold_first_point_seconds)
        .field("warm_first_point_seconds",
               store_first_point_seconds)
        .field("warm_start_speedup", warm_start_speedup, 3)
        .field("warm_start_gate", kWarmStartGate, 1)
        .field("store_hits", store_stats.store_hits)
        .field("store_misses", store_stats.store_misses)
        .field("store_rejects", store_stats.store_rejects)
        .field("store_saves", store_stats.store_saves)
        .field("spill_hits", store_stats.spill_hits)
        .field("bitwise_equal_store", store_equal)
        .field("bitwise_equal_events", events_equal)
        .field("bitwise_equal_scalar",
               scalar_equal && functional_equal)
        .field("bitwise_equal_sharded", sharded_equal)
        .field("shard_threads_checked", "2,4")
        .field("event_shard_serial_seconds", event_shard_serial_s)
        .field("event_shard_pool_seconds", event_shard_pool_s)
        .field("event_shard_speedup", event_shard_speedup, 3)
        .field("event_shard_mode", event_shard_mode)
        .field("event_shard_cores",
               static_cast<int64_t>(event_shard_cores))
        .field("bitwise_equal_event_shard", event_shard_equal);
    jw.write(json_path);

    if (!all_equal)
        s2ta_fatal("sweep engine outputs diverged");
    // Event-shard gate: with a second core the pooled event loops
    // must not lose to serial; on one core the bitwise check above
    // is the contract and the recorded ratio is informational.
    if (!args.smoke && event_shard_measurable &&
        event_shard_speedup <= 1.0) {
        s2ta_fatal("event-loop sharding speedup %.2fx is not a win "
                   "on a %u-core host", event_shard_speedup,
                   event_shard_cores);
    }
    if (warm_start && !args.smoke &&
        warm_start_speedup < kWarmStartGate) {
        s2ta_fatal("warm-start first design point %.2fx cold encode "
                   "is below the %.1fx gate", warm_start_speedup,
                   kWarmStartGate);
    }
    return 0;
}
