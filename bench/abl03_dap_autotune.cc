/**
 * @file
 * Ablation 3 — variable vs fixed A-DBB density (paper Sec. 5.2).
 *
 * "Forcing a fixed activation DBB sparsity would be a huge
 * compromise": activation density falls from dense in early layers
 * to 2/8 late, so a fixed bound either destroys early-layer
 * activations or leaves late-layer speedup on the table. This
 * ablation builds a ResNet-like depth profile of activation tensors,
 * lets chooseLayerNnz() auto-tune the per-layer density at a 98% L2
 * retention target, and compares three deployments on S2TA-AW:
 * fixed 2/8, fixed 4/8, and per-layer variable (the time-unrolled
 * architecture's whole point).
 */

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

struct LayerPoint
{
    const char *name;
    double natural_sparsity; ///< fraction of zero activations
};

/** ResNet-like activation sparsity by depth (Sec. 5.2). */
const LayerPoint kLayers[] = {
    {"early-1", 0.10}, {"early-2", 0.25}, {"mid-1", 0.45},
    {"mid-2", 0.60},   {"late-1", 0.72},  {"late-2", 0.85},
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Ablation 3",
           "Per-layer DAP auto-tuning vs fixed A-DBB density "
           "(S2TA-AW, 98% L2 retention target)");

    Rng rng(0xAB3C);

    Table t({"Layer", "Nat. sparsity", "Auto NNZ", "L2@auto",
             "L2@fixed 2/8"});
    int64_t var_cycles = 0, fix2_cycles = 0, fix4_cycles = 0;
    double worst_fixed_l2 = 1.0;
    for (const LayerPoint &lp : kLayers) {
        // Activation tensor with this layer's natural sparsity.
        Int8Tensor act = makeUnstructuredTensor(
            {32, 32, 64}, lp.natural_sparsity, rng);
        const int auto_nnz = chooseLayerNnz(act, 0.98);

        Int8Tensor t_auto = act;
        const DapStats st_auto = dapPruneTensor(
            t_auto, auto_nnz);
        Int8Tensor t_fix = act;
        const DapStats st_fix = dapPruneTensor(t_fix, 2);
        worst_fixed_l2 = std::min(worst_fixed_l2,
                                  st_fix.l2_retained);

        t.addRow({lp.name,
                  Table::percent(lp.natural_sparsity, 0),
                  auto_nnz == 8 ? "8/8 (bypass)"
                                : Table::count(auto_nnz) + "/8",
                  Table::percent(st_auto.l2_retained, 1),
                  Table::percent(st_fix.l2_retained, 1)});

        // Cycle cost of a conv consuming this tensor on S2TA-AW.
        auto cyclesFor = [&](int nnz, const Int8Tensor &src) {
            GemmProblem p = makeDbbGemm(256, 512, 128, 4,
                                        std::min(nnz, 8), rng);
            (void)src;
            RunOptions opt;
            opt.compute_output = false;
            return makeArrayModel(ArrayConfig::s2taAw(nnz))
                ->run(p, opt).events.cycles;
        };
        var_cycles += cyclesFor(auto_nnz, t_auto);
        fix2_cycles += cyclesFor(2, t_fix);
        Int8Tensor t_fix4 = act;
        dapPruneTensor(t_fix4, 4);
        fix4_cycles += cyclesFor(4, t_fix4);
    }
    t.print();

    std::printf("\nTotal S2TA-AW compute cycles over the profile:\n");
    Table t2({"Policy", "Cycles", "vs variable", "Accuracy risk"});
    t2.addRow({"Variable (auto-tuned)", Table::count(var_cycles),
               "1.00x", "meets 98% L2 everywhere"});
    t2.addRow({"Fixed 4/8", Table::count(fix4_cycles),
               Table::ratio(static_cast<double>(fix4_cycles) /
                            var_cycles),
               "drops early-layer data"});
    char risk[64];
    std::snprintf(risk, sizeof(risk), "only %.0f%% L2 on early layers",
                  worst_fixed_l2 * 100.0);
    t2.addRow({"Fixed 2/8", Table::count(fix2_cycles),
               Table::ratio(static_cast<double>(fix2_cycles) /
                            var_cycles),
               risk});
    t2.print();

    std::printf("\nExpected (Sec. 5.2): the auto-tuner picks the "
                "dense bypass early and 2/8 late;\na fixed bound is "
                "either slow (4/8 wastes late-layer sparsity) or "
                "lossy (2/8\ndestroys early-layer activations). "
                "Time-unrolling makes the variable policy\nfree in "
                "hardware.\n");

    if (!args.json.empty()) {
        JsonWriter jw;
        jw.field("bench", "abl03_dap_autotune")
            .field("simd_kernel", benchSimdKernel())
            .field("variable_cycles", var_cycles)
            .field("fixed4_over_variable",
                   static_cast<double>(fix4_cycles) / var_cycles,
                   3)
            .field("fixed2_over_variable",
                   static_cast<double>(fix2_cycles) / var_cycles,
                   3);
        jw.write(args.json);
    }
    return 0;
}
