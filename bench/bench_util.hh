/**
 * @file
 * Shared plumbing for the paper-reproduction benchmark binaries:
 * canonical workloads, design-point evaluation, and normalized
 * metric records.
 */

#ifndef S2TA_BENCH_BENCH_UTIL_HH
#define S2TA_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "arch/models.hh"
#include "base/table.hh"
#include "core/dap.hh"
#include "core/weight_pruner.hh"
#include "energy/energy_model.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace bench {

/** Outcome of one design point on one workload. */
struct DesignPoint
{
    std::string name;
    EventCounts events;
    EnergyBreakdown energy;
    double energy_pj = 0.0;
    int64_t cycles = 0;

    double
    speedupOver(const DesignPoint &base) const
    {
        return static_cast<double>(base.cycles) /
               static_cast<double>(cycles);
    }

    double
    energyRatioTo(const DesignPoint &base) const
    {
        return energy_pj / base.energy_pj;
    }
};

/** Evaluate one array config on a GEMM with the 16nm energy model. */
inline DesignPoint
evalGemm(const ArrayConfig &cfg, const GemmProblem &p,
         const TechParams &tech = TechParams::tsmc16(),
         int64_t extra_dap_comparisons = 0)
{
    AcceleratorConfig acfg;
    acfg.array = cfg;
    const EnergyModel em(tech, acfg);
    RunOptions opt;
    opt.compute_output = false;
    GemmRun run = makeArrayModel(cfg)->run(p, opt);
    run.events.dap_comparisons += extra_dap_comparisons;

    DesignPoint dp;
    dp.name = archKindName(cfg.kind);
    dp.events = run.events;
    dp.energy = em.energy(run.events);
    dp.energy_pj = dp.energy.totalPj();
    dp.cycles = run.events.cycles;
    return dp;
}

/**
 * The "typical convolution" GEMM used throughout Sec. 8.2: a
 * mid-network 3x3 layer lowered to 512 x 1152 x 256.
 */
inline GemmProblem
typicalConvGemm(double wgt_sparsity, double act_sparsity,
                uint64_t seed = 0xBE7C4)
{
    Rng rng(seed);
    return makeUnstructuredGemm(512, 1152, 256, wgt_sparsity,
                                act_sparsity, rng);
}

/** Same geometry with exact DBB-structured operands. */
inline GemmProblem
typicalConvDbbGemm(int wgt_nnz, int act_nnz, uint64_t seed = 0xBE7C4)
{
    Rng rng(seed);
    return makeDbbGemm(512, 1152, 256, wgt_nnz, act_nnz, rng);
}

/** Print the standard benchmark banner. */
inline void
banner(const char *artifact, const char *what)
{
    std::printf("\n=================================================="
                "====================\n");
    std::printf("S2TA reproduction | %s\n%s\n", artifact, what);
    std::printf("===================================================="
                "==================\n\n");
}

} // namespace bench
} // namespace s2ta

#endif // S2TA_BENCH_BENCH_UTIL_HH
