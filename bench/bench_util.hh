/**
 * @file
 * Shared plumbing for the paper-reproduction benchmark binaries:
 * canonical workloads, design-point evaluation, sweep-scale
 * amortization (hoisted models + cross-run plan caching), the
 * common CLI flags, and normalized metric records.
 */

#ifndef S2TA_BENCH_BENCH_UTIL_HH
#define S2TA_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arch/accelerator.hh"
#include "arch/backend.hh"
#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "arch/plan_cache.hh"
#include "arch/plan_store.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "core/dap.hh"
#include "core/weight_pruner.hh"
#include "energy/energy_model.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workload/model_workloads.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace bench {

/** Outcome of one design point on one workload. */
struct DesignPoint
{
    std::string name;
    EventCounts events;
    EnergyBreakdown energy;
    double energy_pj = 0.0;
    int64_t cycles = 0;

    double
    speedupOver(const DesignPoint &base) const
    {
        return static_cast<double>(base.cycles) /
               static_cast<double>(cycles);
    }

    double
    energyRatioTo(const DesignPoint &base) const
    {
        return energy_pj / base.energy_pj;
    }
};

/** Outcome of one design point on a whole model workload. */
struct ModelPoint
{
    std::string name;
    EventCounts events;
    double energy_uj = 0.0;
    int64_t cycles = 0;
};

/**
 * Sweep-scale evaluation context.
 *
 * A paper sweep evaluates many design points over few workloads;
 * pre-PR, every point paid the full setup again (fresh ArrayModel,
 * fresh EnergyModel, fresh Accelerator, re-lowered and re-encoded
 * operands). The context hoists all of that: array models, energy
 * models, and accelerators are constructed once per distinct config
 * and the shared PlanCache encodes each workload once for the whole
 * sweep. Results are bitwise identical to the uncached path.
 */
class SweepContext
{
  public:
    struct Options
    {
        /** Simulation engine for every evaluation. */
        EngineKind engine = EngineKind::DbbFast;
        /**
         * Simulation threads: 0 = one lane per hardware thread
         * (the default, matching AcceleratorConfig), 1 = serial,
         * N > 1 = a dedicated pool. Also enables intra-GEMM
         * tile-stripe sharding when != 1.
         */
        int threads = 0;
        /** Share encoded plans across design points. */
        bool plan_cache = true;
        /** Plan-cache LRU entry capacity (0 = unbounded). */
        size_t cache_entries = 0;
        /** Plan-cache resident-byte budget (0 = unbounded). */
        int64_t cache_bytes = 0;
        /** Spill-tier byte budget for evicted plans in compact
         *  form (0 = tier disabled). */
        int64_t spill_bytes = 0;
        /** Persistent plan-store directory shared across contexts,
         *  reps, and processes (empty = no store). */
        std::string plan_store_dir;
        /** Published-entry byte cap PlanStore::compact() enforces
         *  on that directory (0 = uncapped). */
        int64_t store_cap_bytes = 0;
        /** Operand density validation (benches trust their
         *  generators; tests turn it on). */
        bool validate = true;
    };

    explicit SweepContext(Options o)
        : opts(std::move(o)),
          cache(opts.cache_entries, opts.cache_bytes,
                opts.spill_bytes)
    {
        if (!opts.plan_store_dir.empty()) {
            store = std::make_unique<PlanStore>(
                opts.plan_store_dir, opts.store_cap_bytes);
            cache.attachStore(store.get());
        }
    }

    // Defined after the class: Options' member initializers are
    // not usable as a default argument inside it.
    SweepContext();

    const Options &options() const { return opts; }
    PlanCache &planCache() { return cache; }
    /** Attached persistent store; null when none was configured. */
    PlanStore *planStore() { return store.get(); }

    /** GEMM-level RunOptions matching this context's knobs. */
    RunOptions
    runOptions(bool compute_output = false)
    {
        RunOptions ro;
        ro.compute_output = compute_output;
        ro.validate_operands = opts.validate;
        ro.engine = opts.engine;
        if (opts.plan_cache)
            ro.plan_cache = &cache;
        ro.shard_pool = shardPool();
        return ro;
    }

    /** Evaluate one array config on a GEMM (16nm by default). */
    DesignPoint
    evalGemm(const ArrayConfig &cfg, const GemmProblem &p,
             const TechParams &tech = TechParams::tsmc16(),
             int64_t extra_dap_comparisons = 0)
    {
        GemmRun run = model(cfg).run(p, runOptions());
        run.events.dap_comparisons += extra_dap_comparisons;

        DesignPoint dp;
        dp.name = archKindName(cfg.kind);
        dp.events = run.events;
        dp.energy = energyModel(cfg, tech).energy(run.events);
        dp.energy_pj = dp.energy.totalPj();
        dp.cycles = run.events.cycles;
        return dp;
    }

    /** Network-level RunOptions matching this context's knobs. */
    NetworkRunOptions
    networkRunOptions(bool compute_output = false)
    {
        NetworkRunOptions nro;
        static_cast<RunOptions &>(nro) =
            runOptions(compute_output);
        return nro;
    }

    /** Evaluate one array config on a whole model workload. */
    ModelPoint
    evalModel(const ArrayConfig &cfg, const ModelWorkload &mw,
              const TechParams &tech = TechParams::tsmc16())
    {
        const NetworkRun nr = accelerator(cfg).runNetwork(
            mw.layers, networkRunOptions());

        ModelPoint mp;
        mp.name = cfg.name();
        mp.events = nr.total;
        mp.energy_uj = energyModel(cfg, tech).energy(nr.total)
                           .totalUj();
        mp.cycles = nr.total.cycles;
        return mp;
    }

    /** Hoisted cycle model for @p cfg (built on first use). */
    ArrayModel &
    model(const ArrayConfig &cfg)
    {
        for (auto &e : models)
            if (e.first == cfg)
                return *e.second;
        models.emplace_back(cfg, makeArrayModel(cfg));
        return *models.back().second;
    }

    /** Hoisted energy model for (@p cfg, @p tech). */
    EnergyModel &
    energyModel(const ArrayConfig &cfg, const TechParams &tech)
    {
        for (auto &e : emodels)
            if (e.tech_name == tech.name && e.cfg == cfg)
                return *e.em;
        AcceleratorConfig acfg;
        acfg.array = cfg;
        emodels.push_back(
            {tech.name, cfg,
             std::make_unique<EnergyModel>(tech, acfg)});
        return *emodels.back().em;
    }

    /** Hoisted full-system accelerator for @p cfg. */
    Accelerator &
    accelerator(const ArrayConfig &cfg)
    {
        for (auto &e : accels)
            if (e.first == cfg)
                return *e.second;
        AcceleratorConfig acfg;
        acfg.array = cfg;
        acfg.sim_threads = opts.threads;
        accels.emplace_back(
            cfg, std::make_unique<Accelerator>(acfg));
        return *accels.back().second;
    }

  private:
    ThreadPool *
    shardPool()
    {
        if (opts.threads == 1)
            return nullptr;
        if (opts.threads == 0)
            return &ThreadPool::global();
        // Dedicated pool, spawned lazily: evalModel goes through
        // hoisted Accelerators (which bring their own pools), so
        // only direct evalGemm sharding needs this one.
        if (!own_pool)
            own_pool =
                std::make_unique<ThreadPool>(opts.threads - 1);
        return own_pool.get();
    }

    struct EnergyEntry
    {
        std::string tech_name;
        ArrayConfig cfg;
        std::unique_ptr<EnergyModel> em;
    };

    Options opts;
    std::unique_ptr<PlanStore> store;
    PlanCache cache;
    std::unique_ptr<ThreadPool> own_pool;
    std::vector<std::pair<ArrayConfig, std::unique_ptr<ArrayModel>>>
        models;
    std::vector<EnergyEntry> emodels;
    std::vector<std::pair<ArrayConfig, std::unique_ptr<Accelerator>>>
        accels;
};

inline SweepContext::SweepContext() : SweepContext(Options{}) {}

// ---- shared CLI flags ------------------------------------------------

/**
 * The full shared flag set, for error messages: every rejection
 * names the offending flag *and* this list — with the accepted
 * value set spelled out for every enum-valued flag — so a user
 * never has to read the source to learn what a binary accepts.
 */
inline const char *
benchFlagList()
{
    return "--engine scalar|fast, --threads N, --json PATH, "
           "--no-plan-cache, --smoke, "
           "--model lenet5|alexnet|vgg16|mobilenetv1|resnet50, "
           "--arch s2ta-w|s2ta-aw, --reps N, --cache-mb N, "
           "--plan-store DIR, --spill-mb N, --store-cap-mb N, "
           "--replicas N, --placement hash|least-loaded, "
           "--test-backend NAME (a BackendRegistry name, e.g. "
           "in-process|scalar-ref|remote-stub), "
           "--trace-out PATH, --metrics-out PATH, "
           "--simd auto|scalar|ssse3|avx2|avx512";
}

/**
 * SIMD dispatch tiers usable on this host *and* build, for --simd
 * error messages ("avx512" needs both -DS2TA_ENABLE_X86_64_V4 and
 * AVX-512 silicon; "ssse3"/"avx2" need the v2 build).
 */
inline std::string
benchSupportedSimdTiers()
{
    std::string tiers = "auto|scalar";
    if (dbbSimdKernelSupportedImpl())
        tiers += "|ssse3";
    if (dbbAvx2KernelSupportedImpl())
        tiers += "|avx2";
    if (dbbAvx512KernelSupportedImpl())
        tiers += "|avx512";
    return tiers;
}

/**
 * The kernel tier the dispatcher actually resolves to after --simd
 * (and host probing): the value every bench records as
 * "simd_kernel" in its JSON artifact so a stored number can never
 * be mistaken for one measured under a different tier.
 */
inline const char *
benchSimdKernel()
{
    return dbbKernelKindName(dbbActiveKernel());
}

/** Options common to every bench binary. */
struct BenchArgs
{
    SweepContext::Options ctx;
    /** Artifact path; empty = no JSON emitted. */
    std::string json;
    /** Reduced CI-sized run for benches that support it. */
    bool smoke = false;
    /** Model override for benches that take one (empty = default). */
    std::string model;
    /** Architecture override for benches that take one. */
    std::string arch;
    /** Timing repetitions (best-of). */
    int reps = 1;
    /** Plan-cache resident-byte budget in MB. Given explicitly,
     *  0 disables the plan cache outright; left at the default,
     *  benches substitute their own budget (check cache_mb_given).
     *  Serving benches bound their shared cache with it; sweep
     *  benches feed it into ctx.cache_bytes. */
    int cache_mb = 0;
    /** Persistent plan-store directory (empty = no store). A
     *  second invocation pointed at the same directory warm-starts
     *  by hydrating mmap'd encodings instead of re-encoding. */
    std::string plan_store;
    /** Spill-tier budget in MB for evicted plans in compact form
     *  (0 = tier off): bounded caches degrade to rehydration
     *  instead of LRU-thrashing to full re-encodes. */
    int spill_mb = 0;
    /** Plan-store published-entry cap in MB, enforced by
     *  compact() when the bench tears its tiers down (0 =
     *  uncapped). */
    int store_cap_mb = 0;
    /** Fleet size for the fleet-serving bench (each replica is one
     *  virtual accelerator with its own PlanCache). */
    int replicas = 4;
    /** Fleet placement policy ("hash" | "least-loaded"), validated
     *  against serve::placementByName's accepted set. */
    std::string placement = "least-loaded";
    /** Device backend for benches that run through the async
     *  command-queue API (empty = the bench's default, normally
     *  "in-process"). Validated against BackendRegistry::names(). */
    std::string test_backend;
    /** Chrome trace-event JSON output path (empty = tracing stays
     *  disabled). Given, the global Tracer records for the whole
     *  run and the trace is written at process exit — any bench
     *  emits a trace with no code changes (docs/OBSERVABILITY.md). */
    std::string trace_out;
    /** MetricsRegistry JSON snapshot path, written at process exit
     *  (empty = none). */
    std::string metrics_out;
    /** Forced SIMD dispatch tier ("auto" = widest the host has).
     *  Parsing already applied it via dbbForceKernelCap, so every
     *  bench inherits the pin with no code of its own; benches
     *  record the resolved tier with benchSimdKernel(). */
    std::string simd = "auto";
    // Whether the knob was given explicitly: benches whose
    // experiment pins a knob (e.g. the engine-comparison bench
    // runs both engines by definition) must reject an explicit
    // flag instead of silently ignoring it.
    bool engine_given = false;
    bool threads_given = false;
    bool plan_cache_given = false;
    bool reps_given = false;
    bool cache_mb_given = false;
    bool plan_store_given = false;
    bool spill_mb_given = false;
    bool store_cap_mb_given = false;
    bool replicas_given = false;
    bool placement_given = false;
    bool test_backend_given = false;
    bool simd_given = false;

    /**
     * Fatal unless flag @p name was left at its default. The error
     * names the offending flag, the reason this experiment pins it,
     * and the shared flag set the binary otherwise accepts.
     */
    void
    rejectFlag(bool given, const char *name,
               const char *why) const
    {
        if (given) {
            s2ta_fatal("flag %s is not applicable to this binary: "
                       "%s (the shared bench flag set is: %s; this "
                       "binary accepts the subset it does not "
                       "reject)",
                       name, why, benchFlagList());
        }
    }
};

namespace detail {

/** atexit state for --trace-out / --metrics-out (atexit handlers
 *  cannot capture, so the paths live in statics). */
inline std::string &
obsTracePath()
{
    static std::string path;
    return path;
}

inline std::string &
obsMetricsPath()
{
    static std::string path;
    return path;
}

inline void
writeObsOutputs()
{
    if (!obsTracePath().empty()) {
        obs::Tracer::global().writeChromeTrace(obsTracePath());
        std::printf("wrote %s\n", obsTracePath().c_str());
    }
    if (!obsMetricsPath().empty()) {
        obs::MetricsRegistry::global().writeJson(obsMetricsPath());
        std::printf("wrote %s\n", obsMetricsPath().c_str());
    }
}

} // namespace detail

/**
 * Arm --trace-out / --metrics-out: enable the global Tracer when a
 * trace was requested and register one atexit writer that dumps the
 * Chrome trace and/or the metrics snapshot when the bench exits
 * (including s2ta_fatal exits — a partial trace of a failed run is
 * exactly what you want to look at). parseBenchArgs calls this, so
 * every bench built on it supports the flag pair automatically.
 */
inline void
installObsOutputs(const BenchArgs &a)
{
    detail::obsTracePath() = a.trace_out;
    detail::obsMetricsPath() = a.metrics_out;
    if (!a.trace_out.empty())
        obs::Tracer::global().setEnabled(true);
    if (a.trace_out.empty() && a.metrics_out.empty())
        return;
    static bool registered = false;
    if (!registered) {
        registered = true;
        std::atexit(detail::writeObsOutputs);
    }
}

/**
 * Parse the shared flags (see benchFlagList for the set and the
 * accepted values). Fatal on anything unrecognized — flag or enum
 * value, each error naming the accepted value set — so a typo
 * cannot silently run the wrong experiment.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                s2ta_fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--engine") {
            const std::string v = value();
            if (v == "scalar")
                a.ctx.engine = EngineKind::Scalar;
            else if (v == "fast" || v == "dbb-fast")
                a.ctx.engine = EngineKind::DbbFast;
            else
                s2ta_fatal("unknown engine '%s' (scalar|fast)",
                           v.c_str());
            a.engine_given = true;
        } else if (arg == "--threads") {
            a.ctx.threads = std::atoi(value().c_str());
            if (a.ctx.threads < 0)
                s2ta_fatal("--threads must be >= 0");
            a.threads_given = true;
        } else if (arg == "--json") {
            a.json = value();
        } else if (arg == "--no-plan-cache") {
            a.ctx.plan_cache = false;
            a.plan_cache_given = true;
        } else if (arg == "--smoke") {
            a.smoke = true;
        } else if (arg == "--model") {
            // Accepted names are validated (with the value set in
            // the error) by modelByName when the bench resolves it.
            a.model = value();
        } else if (arg == "--arch") {
            a.arch = value();
            if (a.arch != "s2ta-w" && a.arch != "s2ta-aw") {
                s2ta_fatal("unknown arch '%s' (accepted values: "
                           "s2ta-w|s2ta-aw)", a.arch.c_str());
            }
        } else if (arg == "--reps") {
            a.reps = std::atoi(value().c_str());
            if (a.reps < 1)
                s2ta_fatal("--reps must be >= 1");
            a.reps_given = true;
        } else if (arg == "--cache-mb") {
            a.cache_mb = std::atoi(value().c_str());
            if (a.cache_mb < 0) {
                s2ta_fatal("--cache-mb must be >= 0 (accepted "
                           "values: 0 = plan cache disabled, N >= 1 "
                           "= N MiB resident budget)");
            }
            // 0 means *disabled*, not unbounded: an explicit zero
            // budget turns the cache off everywhere it is wired.
            if (a.cache_mb == 0)
                a.ctx.plan_cache = false;
            a.ctx.cache_bytes =
                static_cast<int64_t>(a.cache_mb) << 20;
            a.cache_mb_given = true;
        } else if (arg == "--plan-store") {
            a.plan_store = value();
            if (a.plan_store.empty())
                s2ta_fatal("--plan-store needs a directory");
            a.ctx.plan_store_dir = a.plan_store;
            a.plan_store_given = true;
        } else if (arg == "--spill-mb") {
            a.spill_mb = std::atoi(value().c_str());
            if (a.spill_mb < 0) {
                s2ta_fatal("--spill-mb must be >= 0 (accepted "
                           "values: 0 = spill tier off, N >= 1 = "
                           "N MiB compact-form budget)");
            }
            a.ctx.spill_bytes =
                static_cast<int64_t>(a.spill_mb) << 20;
            a.spill_mb_given = true;
        } else if (arg == "--store-cap-mb") {
            a.store_cap_mb = std::atoi(value().c_str());
            if (a.store_cap_mb < 0) {
                s2ta_fatal("--store-cap-mb must be >= 0 (accepted "
                           "values: 0 = uncapped, N >= 1 = compact "
                           "the store to N MiB of published "
                           "entries)");
            }
            a.ctx.store_cap_bytes =
                static_cast<int64_t>(a.store_cap_mb) << 20;
            a.store_cap_mb_given = true;
        } else if (arg == "--replicas") {
            a.replicas = std::atoi(value().c_str());
            if (a.replicas < 1)
                s2ta_fatal("--replicas must be >= 1");
            a.replicas_given = true;
        } else if (arg == "--test-backend") {
            a.test_backend = value();
            bool known = false;
            for (const std::string &n : BackendRegistry::names())
                known = known || n == a.test_backend;
            if (!known) {
                std::string names;
                for (const std::string &n : BackendRegistry::names())
                    names += (names.empty() ? "" : "|") + n;
                s2ta_fatal("unknown backend '%s' (registered "
                           "backends: %s)",
                           a.test_backend.c_str(), names.c_str());
            }
            a.test_backend_given = true;
        } else if (arg == "--placement") {
            a.placement = value();
            if (a.placement != "hash" &&
                a.placement != "least-loaded") {
                s2ta_fatal("unknown placement '%s' (accepted "
                           "values: hash|least-loaded)",
                           a.placement.c_str());
            }
            a.placement_given = true;
        } else if (arg == "--simd") {
            a.simd = value();
            DbbKernelKind cap = DbbKernelKind::Avx512;
            bool supported = true;
            if (a.simd == "auto") {
                cap = DbbKernelKind::Avx512; // uncapped dispatch
            } else if (a.simd == "scalar") {
                cap = DbbKernelKind::Scalar;
            } else if (a.simd == "ssse3") {
                cap = DbbKernelKind::SimdV2;
                supported = dbbSimdKernelSupportedImpl();
            } else if (a.simd == "avx2") {
                cap = DbbKernelKind::Avx2;
                supported = dbbAvx2KernelSupportedImpl();
            } else if (a.simd == "avx512") {
                cap = DbbKernelKind::Avx512;
                supported = dbbAvx512KernelSupportedImpl();
            } else {
                s2ta_fatal("unknown simd tier '%s' (accepted "
                           "values: auto|scalar|ssse3|avx2|avx512; "
                           "this host/build supports: %s)",
                           a.simd.c_str(),
                           benchSupportedSimdTiers().c_str());
            }
            if (!supported) {
                s2ta_fatal("simd tier '%s' is not usable on this "
                           "host/build (supported here: %s) — a "
                           "forced tier must fail loudly rather "
                           "than silently time a different kernel",
                           a.simd.c_str(),
                           benchSupportedSimdTiers().c_str());
            }
            dbbForceKernelCap(cap);
            a.simd_given = true;
        } else if (arg == "--trace-out") {
            a.trace_out = value();
            if (a.trace_out.empty())
                s2ta_fatal("--trace-out needs a path");
        } else if (arg == "--metrics-out") {
            a.metrics_out = value();
            if (a.metrics_out.empty())
                s2ta_fatal("--metrics-out needs a path");
        } else {
            s2ta_fatal("unknown argument '%s' (accepted flags: %s)",
                       arg.c_str(), benchFlagList());
        }
    }
    installObsOutputs(a);
    return a;
}

/**
 * The budgeted PlanCache + optional persistent PlanStore a
 * serving-style bench builds straight from its flags — the
 * non-SweepContext twin of that class's wiring, so the four gated
 * benches cannot drift apart in how they stand the tiers up.
 * @p default_cache_mb applies when --cache-mb was not given
 * (0 = unbounded).
 */
struct BenchCache
{
    BenchCache(const BenchArgs &args, int default_cache_mb)
        : disabled(args.cache_mb_given && args.cache_mb == 0),
          store(args.plan_store.empty()
                    ? nullptr
                    : std::make_unique<PlanStore>(
                          args.plan_store,
                          static_cast<int64_t>(args.store_cap_mb)
                              << 20)),
          cache(0,
                static_cast<int64_t>(args.cache_mb_given
                                         ? args.cache_mb
                                         : default_cache_mb)
                    << 20,
                static_cast<int64_t>(args.spill_mb) << 20)
    {
        if (store && !disabled)
            cache.attachStore(store.get());
    }

    /** Run tier-down lifecycle: a capped store is compacted (torn
     *  temps swept, quarantine emptied, oldest published entries
     *  evicted down to the cap) when the bench tears down. */
    ~BenchCache()
    {
        if (store && store->sizeCapBytes() > 0)
            store->compact();
    }

    /** The cache to wire into RunOptions::plan_cache — null when
     *  --cache-mb 0 asked for no plan cache at all. */
    PlanCache *
    cachePtr()
    {
        return disabled ? nullptr : &cache;
    }

    bool disabled;
    std::unique_ptr<PlanStore> store;
    PlanCache cache;
};

/** Monotonic wall-clock seconds for bench timing. */
inline double
benchNow()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Shared bitwise-equivalence gate for engine/cache/shard checks:
 * per-layer functional outputs (when computed), per-layer events,
 * and the network totals must all match exactly.
 */
inline bool
bitwiseEqualRuns(const NetworkRun &a, const NetworkRun &b)
{
    if (a.layers.size() != b.layers.size())
        return false;
    if (!(a.total == b.total) || a.dense_macs != b.dense_macs)
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const Int32Tensor &x = a.layers[i].output;
        const Int32Tensor &y = b.layers[i].output;
        if (x.size() != y.size())
            return false;
        if (x.size() > 0 &&
            std::memcmp(x.data(), y.data(),
                        static_cast<size_t>(x.size()) *
                            sizeof(int32_t)) != 0)
            return false;
        if (!(a.layers[i].events == b.layers[i].events))
            return false;
    }
    return true;
}

// Zoo-model lookup by CLI name lives in nn/model_zoo.hh
// (s2ta::modelByName); the serving registry shares it.

// ---- JSON artifacts --------------------------------------------------

/**
 * Minimal ordered JSON-object writer for bench artifacts. Strings
 * are emitted verbatim (keys and values in this repo are plain
 * identifiers; no escaping needed).
 */
class JsonWriter
{
  public:
    JsonWriter &
    field(const std::string &key, double v, int digits = 6)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
        return raw(key, buf);
    }

    JsonWriter &
    field(const std::string &key, int64_t v)
    {
        return raw(key, std::to_string(v));
    }

    JsonWriter &
    field(const std::string &key, int v)
    {
        return raw(key, std::to_string(v));
    }

    JsonWriter &
    field(const std::string &key, bool v)
    {
        return raw(key, v ? "true" : "false");
    }

    JsonWriter &
    field(const std::string &key, const std::string &v)
    {
        return raw(key, "\"" + v + "\"");
    }

    JsonWriter &
    field(const std::string &key, const char *v)
    {
        return field(key, std::string(v));
    }

    std::string
    str() const
    {
        return "{\n" + body + "\n}\n";
    }

    /** Write to @p path and echo to stdout; fatal on I/O error. */
    void
    write(const std::string &path) const
    {
        const std::string s = str();
        std::printf("\n%s", s.c_str());
        if (path.empty())
            return;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            s2ta_fatal("cannot write '%s'", path.c_str());
        std::fputs(s.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    JsonWriter &
    raw(const std::string &key, const std::string &v)
    {
        if (!body.empty())
            body += ",\n";
        body += "  \"" + key + "\": " + v;
        return *this;
    }

    std::string body;
};

// ---- canonical workloads ---------------------------------------------

/**
 * Process-wide context behind the free evalGemm / evalModel
 * helpers: every design point evaluated by a bench shares hoisted
 * array/energy models and one plan cache instead of reconstructing
 * everything per point (the pre-PR behavior). A small LRU is
 * enough: benches evaluate a handful of design points per workload
 * back to back, so the cap bounds memory while every same-operand
 * re-evaluation still hits.
 */
namespace detail {

inline std::unique_ptr<SweepContext> &
defaultContextSlot()
{
    static std::unique_ptr<SweepContext> ctx;
    return ctx;
}

} // namespace detail

inline SweepContext &
defaultContext()
{
    auto &slot = detail::defaultContextSlot();
    if (!slot) {
        SweepContext::Options o;
        o.cache_bytes = 1ll << 30; // bound bench memory, not reuse
        slot = std::make_unique<SweepContext>(o);
    }
    return *slot;
}

/**
 * Point the free helpers at a context built from the CLI flags
 * (engine / threads / plan-cache knobs). Call once at the top of a
 * bench main, before the first evaluation.
 */
inline void
configureDefaultContext(SweepContext::Options o)
{
    if (o.cache_entries == 0 && o.cache_bytes == 0)
        o.cache_bytes = 1ll << 30;
    detail::defaultContextSlot() = std::make_unique<SweepContext>(o);
}

/** Evaluate one array config on a GEMM with the 16nm energy model
 *  (sweep-amortized via defaultContext()). */
inline DesignPoint
evalGemm(const ArrayConfig &cfg, const GemmProblem &p,
         const TechParams &tech = TechParams::tsmc16(),
         int64_t extra_dap_comparisons = 0)
{
    return defaultContext().evalGemm(cfg, p, tech,
                                     extra_dap_comparisons);
}

/** Evaluate one array config on a whole model workload
 *  (sweep-amortized via defaultContext()). */
inline ModelPoint
evalModel(const ArrayConfig &cfg, const ModelWorkload &mw,
          const TechParams &tech = TechParams::tsmc16())
{
    return defaultContext().evalModel(cfg, mw, tech);
}

/**
 * The "typical convolution" GEMM used throughout Sec. 8.2: a
 * mid-network 3x3 layer lowered to 512 x 1152 x 256.
 */
inline GemmProblem
typicalConvGemm(double wgt_sparsity, double act_sparsity,
                uint64_t seed = 0xBE7C4)
{
    Rng rng(seed);
    return makeUnstructuredGemm(512, 1152, 256, wgt_sparsity,
                                act_sparsity, rng);
}

/** Same geometry with exact DBB-structured operands. */
inline GemmProblem
typicalConvDbbGemm(int wgt_nnz, int act_nnz, uint64_t seed = 0xBE7C4)
{
    Rng rng(seed);
    return makeDbbGemm(512, 1152, 256, wgt_nnz, act_nnz, rng);
}

/** Print the standard benchmark banner. */
inline void
banner(const char *artifact, const char *what)
{
    std::printf("\n=================================================="
                "====================\n");
    std::printf("S2TA reproduction | %s\n%s\n", artifact, what);
    std::printf("===================================================="
                "==================\n\n");
}

} // namespace bench
} // namespace s2ta

#endif // S2TA_BENCH_BENCH_UTIL_HH
