/**
 * @file
 * Reproduces paper Fig. 12: AlexNet per-convolution-layer energy per
 * inference in 65nm for SA-ZVCG, S2TA-W and S2TA-AW (this repo's
 * models) next to the published Eyeriss v2 (65nm) and SparTen (45nm)
 * series. SparTen wins only on the very sparse conv3-5; its
 * overheads inflate energy on the denser conv1-2.
 */

#include "bench_util.hh"
#include "energy/published.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main()
{
    banner("Figure 12",
           "AlexNet per-layer energy per inference (uJ), 65nm");

    Rng rng(0xF12);
    const ModelWorkload mw = buildModelWorkload(alexNet(), rng);

    struct Variant { const char *label; ArrayConfig cfg; };
    const Variant variants[] = {
        {"SA-ZVCG", ArrayConfig::saZvcg()},
        {"S2TA-W", ArrayConfig::s2taW()},
        {"S2TA-AW", ArrayConfig::s2taAw(4)},
    };

    // Our per-layer energies in 65nm, conv layers only.
    std::vector<std::vector<double>> ours(std::size(variants));
    for (size_t vi = 0; vi < std::size(variants); ++vi) {
        AcceleratorConfig acfg;
        acfg.array = variants[vi].cfg;
        const Accelerator acc(acfg);
        const EnergyModel em(TechParams::tsmc65(), acfg);
        for (size_t li = 0; li < 5; ++li) { // conv1..conv5
            const LayerRun lr = acc.runLayer(mw.layers[li]);
            ours[vi].push_back(em.energy(lr.events).totalUj());
        }
    }

    Table t({"Layer", "EyerissV2*", "SparTen*", "SA-ZVCG", "S2TA-W",
             "S2TA-AW"});
    double totals[5] = {0, 0, 0, 0, 0};
    for (int li = 0; li < 5; ++li) {
        char name[16];
        std::snprintf(name, sizeof(name), "Conv%d", li + 1);
        const double ey =
            published::kFig12EyerissV2.conv_uj[
                static_cast<size_t>(li)];
        const double sp =
            published::kFig12SparTen.conv_uj[
                static_cast<size_t>(li)];
        t.addRow({name, Table::num(ey, 0), Table::num(sp, 0),
                  Table::num(ours[0][static_cast<size_t>(li)], 0),
                  Table::num(ours[1][static_cast<size_t>(li)], 0),
                  Table::num(ours[2][static_cast<size_t>(li)], 0)});
        totals[0] += ey;
        totals[1] += sp;
        for (int vi = 0; vi < 3; ++vi)
            totals[2 + vi] += ours[static_cast<size_t>(vi)][
                static_cast<size_t>(li)];
    }
    t.addSeparator();
    t.addRow({"Total", Table::num(totals[0], 0),
              Table::num(totals[1], 0), Table::num(totals[2], 0),
              Table::num(totals[3], 0), Table::num(totals[4], 0)});
    t.print();
    std::printf("\n* published values digitized from the paper's "
                "figure (Eyeriss v2 in 65nm, SparTen in 45nm).\n");

    std::printf("\nPaper: S2TA-AW is ~2.2x more efficient than "
                "SparTen and ~3.1x than Eyeriss v2 on AlexNet.\n");
    std::printf("Measured: SparTen/S2TA-AW = %.2fx, "
                "EyerissV2/S2TA-AW = %.2fx\n",
                totals[1] / totals[4], totals[0] / totals[4]);
    return 0;
}
