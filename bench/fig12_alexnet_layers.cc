/**
 * @file
 * Reproduces paper Fig. 12: AlexNet per-convolution-layer energy per
 * inference in 65nm for SA-ZVCG, S2TA-W and S2TA-AW (this repo's
 * models) next to the published Eyeriss v2 (65nm) and SparTen (45nm)
 * series. SparTen wins only on the very sparse conv3-5; its
 * overheads inflate energy on the denser conv1-2.
 */

#include "bench_util.hh"
#include "energy/published.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Figure 12",
           "AlexNet per-layer energy per inference (uJ), 65nm");

    Rng rng(0xF12);
    const ModelWorkload mw = buildModelWorkload(alexNet(), rng);

    struct Variant { const char *label; ArrayConfig cfg; };
    const Variant variants[] = {
        {"SA-ZVCG", ArrayConfig::saZvcg()},
        {"S2TA-W", ArrayConfig::s2taW()},
        {"S2TA-AW", ArrayConfig::s2taAw(4)},
    };

    // Our per-layer energies in 65nm, conv layers only. The layer
    // runs share the default context's hoisted accelerators, plan
    // cache, and energy models across all three variants.
    SweepContext &ctx = defaultContext();
    const NetworkRunOptions lro = ctx.networkRunOptions();
    std::vector<std::vector<double>> ours(std::size(variants));
    for (size_t vi = 0; vi < std::size(variants); ++vi) {
        const Accelerator &acc =
            ctx.accelerator(variants[vi].cfg);
        const EnergyModel &em = ctx.energyModel(
            variants[vi].cfg, TechParams::tsmc65());
        for (size_t li = 0; li < 5; ++li) { // conv1..conv5
            const LayerRun lr = acc.runLayer(mw.layers[li], lro);
            ours[vi].push_back(em.energy(lr.events).totalUj());
        }
    }

    Table t({"Layer", "EyerissV2*", "SparTen*", "SA-ZVCG", "S2TA-W",
             "S2TA-AW"});
    double totals[5] = {0, 0, 0, 0, 0};
    for (int li = 0; li < 5; ++li) {
        char name[16];
        std::snprintf(name, sizeof(name), "Conv%d", li + 1);
        const double ey =
            published::kFig12EyerissV2.conv_uj[
                static_cast<size_t>(li)];
        const double sp =
            published::kFig12SparTen.conv_uj[
                static_cast<size_t>(li)];
        t.addRow({name, Table::num(ey, 0), Table::num(sp, 0),
                  Table::num(ours[0][static_cast<size_t>(li)], 0),
                  Table::num(ours[1][static_cast<size_t>(li)], 0),
                  Table::num(ours[2][static_cast<size_t>(li)], 0)});
        totals[0] += ey;
        totals[1] += sp;
        for (int vi = 0; vi < 3; ++vi)
            totals[2 + vi] += ours[static_cast<size_t>(vi)][
                static_cast<size_t>(li)];
    }
    t.addSeparator();
    t.addRow({"Total", Table::num(totals[0], 0),
              Table::num(totals[1], 0), Table::num(totals[2], 0),
              Table::num(totals[3], 0), Table::num(totals[4], 0)});
    t.print();
    std::printf("\n* published values digitized from the paper's "
                "figure (Eyeriss v2 in 65nm, SparTen in 45nm).\n");

    std::printf("\nPaper: S2TA-AW is ~2.2x more efficient than "
                "SparTen and ~3.1x than Eyeriss v2 on AlexNet.\n");
    std::printf("Measured: SparTen/S2TA-AW = %.2fx, "
                "EyerissV2/S2TA-AW = %.2fx\n",
                totals[1] / totals[4], totals[0] / totals[4]);

    if (!args.json.empty()) {
        JsonWriter jw;
        jw.field("bench", "fig12_alexnet_layers")
            .field("simd_kernel", benchSimdKernel())
            .field("s2ta_aw_total_uj", totals[4], 1)
            .field("sparten_over_s2ta_aw", totals[1] / totals[4], 3)
            .field("eyerissv2_over_s2ta_aw",
                   totals[0] / totals[4], 3);
        jw.write(args.json);
    }
    return 0;
}
