/**
 * @file
 * Reproduces paper Fig. 3: effective energy/area and speedup of
 * INT8 systolic-array variants on a typical convolution with 50%
 * weight and activation sparsity. SMT gains speed but its staging
 * FIFOs push energy above even the dense SA baseline.
 */

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Figure 3",
           "Unstructured-sparsity overheads: SA vs SA-ZVCG vs "
           "SMT-T2Q2/T2Q4, 50%/50% sparsity");

    const GemmProblem p = typicalConvGemm(0.5, 0.5);
    const TechParams tech = TechParams::tsmc16();

    struct Variant { const char *label; ArrayConfig cfg; };
    const Variant variants[] = {
        {"SA", ArrayConfig::sa()},
        {"SA-ZVCG", ArrayConfig::saZvcg()},
        {"SMT-T2Q2", ArrayConfig::saSmt(2)},
        {"SMT-T2Q4", ArrayConfig::saSmt(4)},
    };

    std::vector<DesignPoint> pts;
    std::vector<double> areas, mac_areas, buf_areas;
    for (const Variant &v : variants) {
        pts.push_back(evalGemm(v.cfg, p, tech));
        pts.back().name = v.label;
        AcceleratorConfig acfg;
        acfg.array = v.cfg;
        const AreaBreakdown a = EnergyModel(tech, acfg).area();
        areas.push_back(a.totalMm2());
        mac_areas.push_back(a.at(Component::MacDatapath));
        buf_areas.push_back(a.at(Component::PeBuffers));
    }
    const DesignPoint &base = pts[0]; // normalize to dense SA

    Table t({"Design", "Speedup", "Eff.Energy", "E:MACs", "E:Bufs",
             "Area mm2", "A:MACs", "A:Bufs"});
    for (size_t i = 0; i < pts.size(); ++i) {
        const DesignPoint &d = pts[i];
        t.addRow({d.name, Table::ratio(d.speedupOver(base)),
                  Table::num(d.energyRatioTo(base)),
                  Table::num(d.energy.share(Component::MacDatapath)),
                  Table::num(d.energy.share(Component::PeBuffers)),
                  Table::num(areas[i]), Table::num(mac_areas[i]),
                  Table::num(buf_areas[i])});
    }
    t.print();

    const double smt2_vs_zvcg = pts[2].energyRatioTo(pts[1]);
    const double smt4_vs_zvcg = pts[3].energyRatioTo(pts[1]);
    std::printf("\nPaper: SMT achieves 1.6x/1.8x speedup but ~1.4x "
                "the energy of SA-ZVCG.\n");
    std::printf("Measured: speedups %.2fx / %.2fx; energy vs ZVCG "
                "%.2fx / %.2fx\n",
                pts[2].speedupOver(pts[0]),
                pts[3].speedupOver(pts[0]), smt2_vs_zvcg,
                smt4_vs_zvcg);

    if (!args.json.empty()) {
        JsonWriter jw;
        jw.field("bench", "fig03_unstructured_overhead")
            .field("simd_kernel", benchSimdKernel())
            .field("smt2_energy_vs_zvcg", smt2_vs_zvcg, 3)
            .field("smt4_energy_vs_zvcg", smt4_vs_zvcg, 3)
            .field("smt2_speedup", pts[2].speedupOver(pts[0]), 3);
        jw.write(args.json);
    }
    return 0;
}
