/**
 * @file
 * Reproduces paper Table 3 (accuracy of DBB pruning variants) on
 * the synthetic substitution testbeds (DESIGN.md Sec. 5): ImageNet
 * and MNIST are unavailable offline, so small CNN/MLP testbeds on
 * deterministic synthetic tasks exercise exactly the same pruning
 * and fine-tuning machinery (Top-NNZ W-DBB projection, DAP with
 * straight-through gradients, INT8 fake-quantized weights).
 *
 * The claim under test is *relative*: DBB pruning with DBB-aware
 * fine-tuning costs ~1% accuracy or less, while one-shot pruning
 * without fine-tuning costs much more (e.g. the paper's MobileNet
 * 71% -> 56.1% -> 70.2% A-DBB arc).
 */

#include "bench_util.hh"
#include "energy/published.hh"
#include "nn/trainer.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

struct Row
{
    std::string model;
    std::string a_dbb;
    std::string w_dbb;
    double baseline_pct;
    double no_ft_pct;
    double tuned_pct;
};

/**
 * Evaluate one (A-DBB, W-DBB) variant: restore the trained baseline
 * weights, apply the pruning, measure raw accuracy, fine-tune with
 * the constraints in the loop, and measure again. Weights are fake
 * INT8-quantized for every reported evaluation.
 */
Row
runVariant(const std::string &model_name, Network &net,
           const std::vector<FloatTensor> &baseline_params,
           double baseline_pct, const Dataset &train_set,
           const Dataset &test_set, int act_nnz, int wgt_nnz)
{
    Row row;
    row.model = model_name;
    row.a_dbb = act_nnz < 8 ? DbbSpec{act_nnz, 8}.toString() : "-";
    row.w_dbb = wgt_nnz < 8 ? DbbSpec{wgt_nnz, 8}.toString() : "-";
    row.baseline_pct = baseline_pct;

    net.restoreParameters(baseline_params);
    net.disableDap();
    if (act_nnz < 8)
        net.enableDap(act_nnz);
    if (wgt_nnz < 8)
        net.applyWeightDbb(DbbSpec{wgt_nnz, 8});
    {
        // Evaluate INT8-deployed accuracy without fine-tuning.
        const auto pre_quant = net.snapshotParameters();
        net.fakeQuantizeWeightsInt8();
        row.no_ft_pct = evaluate(net, test_set) * 100.0;
        net.restoreParameters(pre_quant);
    }

    TrainConfig ft;
    ft.epochs = 5;
    ft.lr = 0.015f;
    ft.lr_decay = 0.8f;
    ft.use_weight_dbb = wgt_nnz < 8;
    ft.weight_dbb = DbbSpec{wgt_nnz < 8 ? wgt_nnz : 8, 8};
    ft.weight_dbb_ramp = 2;
    train(net, train_set, ft);
    net.fakeQuantizeWeightsInt8();
    row.tuned_pct = evaluate(net, test_set) * 100.0;
    return row;
}

} // anonymous namespace

int
main()
{
    banner("Table 3",
           "DBB pruning accuracy on the synthetic substitution "
           "testbeds (see DESIGN.md Sec. 5)");

    std::vector<Row> rows;

    // ---- Vision CNN testbed (stands in for the CNN rows) --------
    {
        SyntheticVisionConfig vcfg;
        Rng drng(0xDA7A);
        const Dataset train_set = makeSyntheticVision(900, vcfg,
                                                      drng);
        const Dataset test_set = makeSyntheticVision(300, vcfg,
                                                     drng);
        Rng rng(0xB00);
        Network net =
            makeTestbedCnn(vcfg.channels, vcfg.num_classes, rng);
        // Train to saturation so fine-tuning deltas are read
        // against a converged baseline.
        TrainConfig base;
        base.epochs = 14;
        base.lr = 0.04f;
        base.lr_decay = 0.85f;
        train(net, train_set, base);
        const auto params = net.snapshotParameters();
        {
            const auto pre = net.snapshotParameters();
            net.fakeQuantizeWeightsInt8();
            const double baseline =
                evaluate(net, test_set) * 100.0;
            net.restoreParameters(pre);

            const struct { int a, w; } variants[] = {
                {3, 8}, {8, 2}, {4, 2}, {2, 8},
            };
            for (const auto &v : variants) {
                rows.push_back(runVariant(
                    "TestbedCNN (vision)", net, params, baseline,
                    train_set, test_set, v.a, v.w));
            }
        }
    }

    // ---- MLP testbed (stands in for the I-BERT FC rows) ---------
    {
        SyntheticFeatureConfig fcfg;
        Rng drng(0xFEED);
        const Dataset train_set =
            makeSyntheticFeatures(900, fcfg, drng);
        const Dataset test_set =
            makeSyntheticFeatures(300, fcfg, drng);
        Rng rng(0xB01);
        Network net =
            makeTestbedMlp(fcfg.dim, fcfg.num_classes, rng);
        TrainConfig base;
        base.epochs = 10;
        base.lr = 0.02f;
        train(net, train_set, base);
        const auto params = net.snapshotParameters();
        const auto pre = net.snapshotParameters();
        net.fakeQuantizeWeightsInt8();
        const double baseline = evaluate(net, test_set) * 100.0;
        net.restoreParameters(pre);

        const struct { int a, w; } variants[] = {
            {4, 8}, {8, 4}, {4, 4},
        };
        for (const auto &v : variants) {
            rows.push_back(runVariant("TestbedMLP (FC layers)", net,
                                      params, baseline, train_set,
                                      test_set, v.a, v.w));
        }
    }

    Table t({"Model", "A-DBB", "W-DBB", "Baseline", "No fine-tune",
             "Fine-tuned", "Tuned loss"});
    for (const Row &r : rows) {
        t.addRow({r.model, r.a_dbb, r.w_dbb,
                  Table::num(r.baseline_pct, 1) + "%",
                  Table::num(r.no_ft_pct, 1) + "%",
                  Table::num(r.tuned_pct, 1) + "%",
                  Table::num(r.baseline_pct - r.tuned_pct, 1)
                      + " pp"});
    }
    t.print();

    std::printf("\nPaper Table 3 reference (full-scale models):\n");
    Table ref({"Model", "Dataset", "A-DBB", "W-DBB", "Baseline",
               "Pruned"});
    for (const auto &r : published::kTable3) {
        ref.addRow({r.model, r.dataset, r.a_dbb, r.w_dbb,
                    Table::num(r.baseline_pct, 1) + "%",
                    Table::num(r.pruned_pct, 1) + "%"});
    }
    ref.print();
    std::printf("\nShape check: fine-tuned DBB variants should sit "
                "within ~1-2 pp of baseline;\none-shot pruning "
                "without fine-tuning should lose much more (cf. "
                "MobileNet 71 -> 56.1 -> 70.2).\n");
    return 0;
}
