/**
 * @file
 * Reproduces paper Fig. 10: energy breakdown and speedup of all SA
 * variants on a typical convolution with 50% (4/8-DBB) weight and
 * 62.5% (3/8-DBB) activation sparsity, normalized to SA-ZVCG.
 */

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Figure 10",
           "Typical conv, 50% (4/8) weight + 62.5% (3/8) activation "
           "sparsity; all designs run the same deployed model");

    // One deployed (pruned) model shared by every design.
    GemmProblem p = typicalConvGemm(0.5, 0.625);
    pruneWeightsDbb(p, DbbSpec{4, 8});
    const DapStats dap = dapPruneActivations(p, 3);

    struct Variant
    {
        const char *label;
        ArrayConfig cfg;
        bool has_dap;
    };
    const Variant variants[] = {
        {"SA", ArrayConfig::sa(), false},
        {"SA-ZVCG", ArrayConfig::saZvcg(), false},
        {"SA-SMT T2Q2", ArrayConfig::saSmt(2), false},
        {"SA-SMT T2Q4", ArrayConfig::saSmt(4), false},
        {"S2TA-W", ArrayConfig::s2taW(), false},
        {"S2TA-AW", ArrayConfig::s2taAw(3), true},
    };

    std::vector<DesignPoint> pts;
    for (const Variant &v : variants) {
        pts.push_back(evalGemm(v.cfg, p, TechParams::tsmc16(),
                               v.has_dap ? dap.comparisons : 0));
        pts.back().name = v.label;
    }
    const DesignPoint &base = pts[1]; // SA-ZVCG

    Table t({"Design", "Eff.Energy", "Datapath", "Buffers", "SRAM",
             "ActFn", "DAP", "Speedup"});
    for (const DesignPoint &d : pts) {
        const double n = base.energy_pj;
        t.addRow({d.name, Table::num(d.energy_pj / n),
                  Table::num(d.energy.at(Component::MacDatapath) / n),
                  Table::num(d.energy.at(Component::PeBuffers) / n),
                  Table::num(d.energy.sramPj() / n),
                  Table::num(d.energy.at(Component::Mcu) / n),
                  Table::num(d.energy.at(Component::Dap) / n),
                  Table::ratio(d.speedupOver(base), 1)});
    }
    t.print();

    std::printf("\nPaper speedups: SA 1.0, SA-ZVCG 1.0, T2Q2 1.7, "
                "T2Q4 1.9, S2TA-W 2.0, S2TA-AW 2.7\n");
    std::printf("Paper energy:   SMT ~1.4x SA-ZVCG; S2TA-AW ~0.5x "
                "with ~3x lower SRAM energy than S2TA-W\n");
    const double sram_ratio =
        pts[4].energy.sramPj() / pts[5].energy.sramPj();
    std::printf("Measured S2TA-W / S2TA-AW SRAM energy: %.2fx\n",
                sram_ratio);

    if (!args.json.empty()) {
        JsonWriter jw;
        jw.field("bench", "fig10_conv_breakdown")
            .field("simd_kernel", benchSimdKernel())
            .field("s2ta_aw_speedup_vs_zvcg",
                   pts[5].speedupOver(pts[1]), 3)
            .field("s2ta_aw_energy_vs_zvcg",
                   pts[5].energyRatioTo(pts[1]), 3)
            .field("s2ta_w_over_aw_sram_energy", sram_ratio, 3);
        jw.write(args.json);
    }
    return 0;
}
