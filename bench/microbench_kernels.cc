/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * golden GEMM, operand profiling, DBB encode/decode, DAP pruning,
 * the SMT queue automaton, and whole-GEMM simulation per
 * architecture. These guard the simulator's own performance (the
 * full-model benches depend on it), not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "core/dap.hh"
#include "core/dbb.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

const GemmProblem &
sharedProblem()
{
    static const GemmProblem p = [] {
        Rng rng(0xBEEF);
        return makeUnstructuredGemm(256, 1152, 128, 0.5, 0.5, rng);
    }();
    return p;
}

void
BM_GemmReference(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(gemmReference(p));
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_GemmReference)->Unit(benchmark::kMillisecond);

void
BM_OperandProfile(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(OperandProfile::build(p));
    state.SetItemsProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k + static_cast<int64_t>(p.k)
         * p.n));
}
BENCHMARK(BM_OperandProfile)->Unit(benchmark::kMicrosecond);

void
BM_OperandProfileFromDbb(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    const GemmPlan plan = GemmPlan::build(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            OperandProfile::fromDbb(p, plan.act(), plan.wgt()));
    state.SetItemsProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k + static_cast<int64_t>(p.k)
         * p.n));
}
BENCHMARK(BM_OperandProfileFromDbb)->Unit(benchmark::kMicrosecond);

void
BM_GemmPlanBuild(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(GemmPlan::build(p));
    state.SetBytesProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k + static_cast<int64_t>(p.k)
         * p.n));
}
BENCHMARK(BM_GemmPlanBuild)->Unit(benchmark::kMicrosecond);

void
BM_MaskIntersectGemm(benchmark::State &state)
{
    // The DBB-native functional kernel on the same GEMM as
    // BM_GemmReference: the headline per-element vs mask-intersect
    // comparison.
    const GemmProblem &p = sharedProblem();
    const GemmPlan plan = GemmPlan::build(p);
    std::vector<int32_t> out(static_cast<size_t>(p.m) * p.n);
    const int nb = plan.act().blocksPerVector();
    for (auto _ : state) {
        for (int i = 0; i < p.m; ++i) {
            const DbbBlock *arow = plan.act().vectorBlocks(i);
            int32_t *orow = &out[static_cast<size_t>(i) * p.n];
            for (int j = 0; j < p.n; ++j)
                orow[j] =
                    dbbDotRow(arow, plan.wgt().vectorBlocks(j), nb);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_MaskIntersectGemm)->Unit(benchmark::kMillisecond);

/** True when @p kind's kernel is compiled in and the CPU has it. */
bool
tierUsable(DbbKernelKind kind)
{
    switch (kind) {
      case DbbKernelKind::Scalar: return true;
      case DbbKernelKind::SimdV2: return dbbSimdKernelSupportedImpl();
      case DbbKernelKind::Avx2:   return dbbAvx2KernelSupportedImpl();
      case DbbKernelKind::Avx512:
        return dbbAvx512KernelSupportedImpl();
    }
    return false;
}

/** The row-dot entry point of one tier, bypassing the dispatcher. */
int32_t (*
tierRowDot(DbbKernelKind kind))(const DbbBlock *, const DbbBlock *,
                                int)
{
    switch (kind) {
      case DbbKernelKind::Scalar: return dbbDotRow;
      case DbbKernelKind::SimdV2: return dbbDotRowSimdV2;
      case DbbKernelKind::Avx2:   return dbbDotRowAvx2;
      case DbbKernelKind::Avx512: return dbbDotRowAvx512;
    }
    return dbbDotRow;
}

/** Random DBB row at roughly the requested mask density. */
std::vector<DbbBlock>
tierRow(Rng &rng, int nblocks, int mask_bits)
{
    std::vector<DbbBlock> row(static_cast<size_t>(nblocks));
    for (auto &b : row) {
        b.mask = 0;
        for (int s = 0; s < mask_bits; ++s)
            b.mask = maskSet(b.mask,
                             static_cast<int>(rng.uniformInt(0, 7)));
        const int stored = maskPopcount(b.mask);
        for (int s = 0; s < stored; ++s)
            b.values[static_cast<size_t>(s)] = static_cast<int8_t>(
                rng.uniformInt(-127, 127) | 1);
    }
    return row;
}

/**
 * The per-tier mask-intersection row dot: kernel-ladder rows side
 * by side. range(0) picks the tier (skipped with an error when the
 * host/build lacks it — an absent row can never be mistaken for a
 * slow one); range(1) picks the mask regime: dense 8/8 masks make
 * the expansion/permute path the whole cost, sparse 4/8 masks make
 * it an intersection-dominated dot. Bytes processed = stored DBB
 * bytes of both rows, so bytes/sec is directly comparable across
 * tiers and regimes.
 */
void
BM_DbbRowDotTier(benchmark::State &state)
{
    const auto kind = static_cast<DbbKernelKind>(state.range(0));
    const bool dense = state.range(1) != 0;
    if (!tierUsable(kind)) {
        state.SkipWithError("tier unavailable on this host/build");
        return;
    }
    Rng rng(0xD07 + state.range(1));
    const int nblocks = 144; // k = 1152, the conv sweet spot
    const auto a = tierRow(rng, nblocks, dense ? 8 : 4);
    const auto w = tierRow(rng, nblocks, dense ? 8 : 4);
    auto *const fn = tierRowDot(kind);
    for (auto _ : state)
        benchmark::DoNotOptimize(fn(a.data(), w.data(), nblocks));
    state.SetLabel(std::string(dbbKernelKindName(kind)) +
                   (dense ? " expansion-bound (8/8 masks)"
                          : " intersection (4/8 masks)"));
    state.SetBytesProcessed(state.iterations() * 2 * nblocks *
                            static_cast<int64_t>(sizeof(DbbBlock)));
}
BENCHMARK(BM_DbbRowDotTier)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 3, 1), {0, 1}})
    ->Unit(benchmark::kNanosecond);

/** Scalar reference dense dot (the baseline the VNNI row beats). */
int32_t
denseDotScalar(const int8_t *a, const int8_t *w, int k)
{
    int32_t sum = 0;
    for (int x = 0; x < k; ++x)
        sum += static_cast<int32_t>(a[x]) * w[x];
    return sum;
}

/**
 * The dense-mirror contraction: scalar loop vs the AVX512-VNNI
 * vpdpbusd kernel (range(0)). This is the dot product dbbGemm picks
 * when mask intersection stops paying (>= half the block pairs
 * matched), i.e. the hot loop of the 4/8-density engine bench.
 */
void
BM_DenseDotTier(benchmark::State &state)
{
    const bool vnni = state.range(0) != 0;
    if (vnni && !dbbVnniKernelSupportedImpl()) {
        state.SkipWithError("no AVX512-VNNI on this host/build");
        return;
    }
    Rng rng(0xDE4);
    const int k = 1152;
    std::vector<int8_t> a(static_cast<size_t>(k));
    std::vector<int8_t> w(static_cast<size_t>(k));
    for (int x = 0; x < k; ++x) {
        a[static_cast<size_t>(x)] =
            static_cast<int8_t>(rng.uniformInt(-128, 127));
        w[static_cast<size_t>(x)] =
            static_cast<int8_t>(rng.uniformInt(-128, 127));
    }
    auto *const fn = vnni ? dbbDenseDotVnni : denseDotScalar;
    for (auto _ : state)
        benchmark::DoNotOptimize(fn(a.data(), w.data(), k));
    state.SetLabel(vnni ? "avx512-vnni" : "scalar");
    state.SetBytesProcessed(state.iterations() * 2 * k);
}
BENCHMARK(BM_DenseDotTier)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kNanosecond);

/**
 * OperandProfile::fromDbb per derivation tier: the forced-scalar
 * per-bit mask loops vs the VPOPCNTDQ vectorized popcount +
 * histogram (range(0)). Same work as BM_OperandProfileFromDbb,
 * dispatch pinned either side.
 */
void
BM_ProfileDerivationTier(benchmark::State &state)
{
    const bool simd = state.range(0) != 0;
    if (simd && !dbbVpopcntKernelSupportedImpl()) {
        state.SkipWithError("no AVX512-VPOPCNTDQ on this "
                            "host/build");
        return;
    }
    const GemmProblem &p = sharedProblem();
    const GemmPlan plan = GemmPlan::build(p);
    dbbForceKernelCap(simd ? DbbKernelKind::Avx512
                           : DbbKernelKind::Scalar);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            OperandProfile::fromDbb(p, plan.act(), plan.wgt()));
    dbbForceKernelCap(DbbKernelKind::Avx512);
    state.SetLabel(simd ? "avx512-vpopcntdq" : "scalar-bitloops");
    state.SetBytesProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k +
         static_cast<int64_t>(p.k) * p.n) / 8); // mask bytes read
}
BENCHMARK(BM_ProfileDerivationTier)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void
BM_DbbEncodeDecode(benchmark::State &state)
{
    Rng rng(7);
    GemmProblem p = makeDbbGemm(64, 512, 64, 4, 8, rng);
    const DbbSpec spec{4, 8};
    for (auto _ : state) {
        const DbbMatrix m = DbbMatrix::fromWeights(p, spec);
        benchmark::DoNotOptimize(m.toDense());
    }
    state.SetBytesProcessed(state.iterations() * 512 * 64);
}
BENCHMARK(BM_DbbEncodeDecode)->Unit(benchmark::kMicrosecond);

void
BM_DapPrune(benchmark::State &state)
{
    Rng rng(8);
    const Int8Tensor base =
        makeUnstructuredTensor({56, 56, 128}, 0.4, rng);
    for (auto _ : state) {
        Int8Tensor t = base;
        benchmark::DoNotOptimize(dapPruneTensor(t, 3));
    }
    state.SetBytesProcessed(state.iterations() * base.size());
}
BENCHMARK(BM_DapPrune)->Unit(benchmark::kMillisecond);

void
BM_WeightPrune(benchmark::State &state)
{
    Rng rng(9);
    const GemmProblem base =
        makeUnstructuredGemm(8, 1152, 256, 0.0, 0.0, rng);
    for (auto _ : state) {
        GemmProblem p = base;
        benchmark::DoNotOptimize(pruneWeightsDbb(p, DbbSpec{4, 8}));
    }
}
BENCHMARK(BM_WeightPrune)->Unit(benchmark::kMillisecond);

void
BM_SmtQueueAutomaton(benchmark::State &state)
{
    Rng rng(10);
    std::vector<int> arrivals(4096);
    for (auto &a : arrivals)
        a = static_cast<int>(rng.uniformInt(0, 2));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            SaSmtModel::queueCycles(arrivals, 2));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SmtQueueAutomaton)->Unit(benchmark::kMicrosecond);

void
BM_SimulateArch(benchmark::State &state)
{
    const auto kind = static_cast<ArchKind>(state.range(0));
    const auto engine = static_cast<EngineKind>(state.range(1));
    ArrayConfig cfg;
    switch (kind) {
      case ArchKind::Sa:     cfg = ArrayConfig::sa(); break;
      case ArchKind::SaZvcg: cfg = ArrayConfig::saZvcg(); break;
      case ArchKind::SaSmt:  cfg = ArrayConfig::saSmt(2); break;
      case ArchKind::S2taW:  cfg = ArrayConfig::s2taW(); break;
      case ArchKind::S2taAw: cfg = ArrayConfig::s2taAw(4); break;
    }
    Rng rng(11);
    GemmProblem p = makeDbbGemm(256, 1152, 128, 4, 4, rng);
    const auto model = makeArrayModel(cfg);
    RunOptions opt;
    opt.compute_output = false;
    opt.engine = engine;
    for (auto _ : state)
        benchmark::DoNotOptimize(model->run(p, opt));
    state.SetLabel(cfg.name() +
                   (engine == EngineKind::Scalar ? " scalar"
                                                 : " dbb-fast"));
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_SimulateArch)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, 1),
                   {static_cast<int>(EngineKind::Scalar),
                    static_cast<int>(EngineKind::DbbFast)}})
    ->Unit(benchmark::kMillisecond);

void
BM_SimulateFunctional(benchmark::State &state)
{
    // Whole-GEMM simulation including the functional output: this
    // is the path bench_engine_throughput measures end to end.
    const auto engine = static_cast<EngineKind>(state.range(0));
    Rng rng(12);
    GemmProblem p = makeDbbGemm(256, 1152, 128, 4, 4, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taAw(4));
    RunOptions opt;
    opt.compute_output = true;
    opt.engine = engine;
    opt.validate_operands = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(model->run(p, opt));
    state.SetLabel(engine == EngineKind::Scalar ? "scalar"
                                                : "dbb-fast");
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_SimulateFunctional)
    ->Arg(static_cast<int>(EngineKind::Scalar))
    ->Arg(static_cast<int>(EngineKind::DbbFast))
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace s2ta

BENCHMARK_MAIN();
