/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * golden GEMM, operand profiling, DBB encode/decode, DAP pruning,
 * the SMT queue automaton, and whole-GEMM simulation per
 * architecture. These guard the simulator's own performance (the
 * full-model benches depend on it), not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "core/dap.hh"
#include "core/dbb.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

const GemmProblem &
sharedProblem()
{
    static const GemmProblem p = [] {
        Rng rng(0xBEEF);
        return makeUnstructuredGemm(256, 1152, 128, 0.5, 0.5, rng);
    }();
    return p;
}

void
BM_GemmReference(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(gemmReference(p));
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_GemmReference)->Unit(benchmark::kMillisecond);

void
BM_OperandProfile(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(OperandProfile::build(p));
    state.SetItemsProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k + static_cast<int64_t>(p.k)
         * p.n));
}
BENCHMARK(BM_OperandProfile)->Unit(benchmark::kMicrosecond);

void
BM_OperandProfileFromDbb(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    const GemmPlan plan = GemmPlan::build(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            OperandProfile::fromDbb(p, plan.act(), plan.wgt()));
    state.SetItemsProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k + static_cast<int64_t>(p.k)
         * p.n));
}
BENCHMARK(BM_OperandProfileFromDbb)->Unit(benchmark::kMicrosecond);

void
BM_GemmPlanBuild(benchmark::State &state)
{
    const GemmProblem &p = sharedProblem();
    for (auto _ : state)
        benchmark::DoNotOptimize(GemmPlan::build(p));
    state.SetBytesProcessed(
        state.iterations() *
        (static_cast<int64_t>(p.m) * p.k + static_cast<int64_t>(p.k)
         * p.n));
}
BENCHMARK(BM_GemmPlanBuild)->Unit(benchmark::kMicrosecond);

void
BM_MaskIntersectGemm(benchmark::State &state)
{
    // The DBB-native functional kernel on the same GEMM as
    // BM_GemmReference: the headline per-element vs mask-intersect
    // comparison.
    const GemmProblem &p = sharedProblem();
    const GemmPlan plan = GemmPlan::build(p);
    std::vector<int32_t> out(static_cast<size_t>(p.m) * p.n);
    const int nb = plan.act().blocksPerVector();
    for (auto _ : state) {
        for (int i = 0; i < p.m; ++i) {
            const DbbBlock *arow = plan.act().vectorBlocks(i);
            int32_t *orow = &out[static_cast<size_t>(i) * p.n];
            for (int j = 0; j < p.n; ++j)
                orow[j] =
                    dbbDotRow(arow, plan.wgt().vectorBlocks(j), nb);
        }
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_MaskIntersectGemm)->Unit(benchmark::kMillisecond);

void
BM_DbbEncodeDecode(benchmark::State &state)
{
    Rng rng(7);
    GemmProblem p = makeDbbGemm(64, 512, 64, 4, 8, rng);
    const DbbSpec spec{4, 8};
    for (auto _ : state) {
        const DbbMatrix m = DbbMatrix::fromWeights(p, spec);
        benchmark::DoNotOptimize(m.toDense());
    }
    state.SetBytesProcessed(state.iterations() * 512 * 64);
}
BENCHMARK(BM_DbbEncodeDecode)->Unit(benchmark::kMicrosecond);

void
BM_DapPrune(benchmark::State &state)
{
    Rng rng(8);
    const Int8Tensor base =
        makeUnstructuredTensor({56, 56, 128}, 0.4, rng);
    for (auto _ : state) {
        Int8Tensor t = base;
        benchmark::DoNotOptimize(dapPruneTensor(t, 3));
    }
    state.SetBytesProcessed(state.iterations() * base.size());
}
BENCHMARK(BM_DapPrune)->Unit(benchmark::kMillisecond);

void
BM_WeightPrune(benchmark::State &state)
{
    Rng rng(9);
    const GemmProblem base =
        makeUnstructuredGemm(8, 1152, 256, 0.0, 0.0, rng);
    for (auto _ : state) {
        GemmProblem p = base;
        benchmark::DoNotOptimize(pruneWeightsDbb(p, DbbSpec{4, 8}));
    }
}
BENCHMARK(BM_WeightPrune)->Unit(benchmark::kMillisecond);

void
BM_SmtQueueAutomaton(benchmark::State &state)
{
    Rng rng(10);
    std::vector<int> arrivals(4096);
    for (auto &a : arrivals)
        a = static_cast<int>(rng.uniformInt(0, 2));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            SaSmtModel::queueCycles(arrivals, 2));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SmtQueueAutomaton)->Unit(benchmark::kMicrosecond);

void
BM_SimulateArch(benchmark::State &state)
{
    const auto kind = static_cast<ArchKind>(state.range(0));
    const auto engine = static_cast<EngineKind>(state.range(1));
    ArrayConfig cfg;
    switch (kind) {
      case ArchKind::Sa:     cfg = ArrayConfig::sa(); break;
      case ArchKind::SaZvcg: cfg = ArrayConfig::saZvcg(); break;
      case ArchKind::SaSmt:  cfg = ArrayConfig::saSmt(2); break;
      case ArchKind::S2taW:  cfg = ArrayConfig::s2taW(); break;
      case ArchKind::S2taAw: cfg = ArrayConfig::s2taAw(4); break;
    }
    Rng rng(11);
    GemmProblem p = makeDbbGemm(256, 1152, 128, 4, 4, rng);
    const auto model = makeArrayModel(cfg);
    RunOptions opt;
    opt.compute_output = false;
    opt.engine = engine;
    for (auto _ : state)
        benchmark::DoNotOptimize(model->run(p, opt));
    state.SetLabel(cfg.name() +
                   (engine == EngineKind::Scalar ? " scalar"
                                                 : " dbb-fast"));
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_SimulateArch)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, 1),
                   {static_cast<int>(EngineKind::Scalar),
                    static_cast<int>(EngineKind::DbbFast)}})
    ->Unit(benchmark::kMillisecond);

void
BM_SimulateFunctional(benchmark::State &state)
{
    // Whole-GEMM simulation including the functional output: this
    // is the path bench_engine_throughput measures end to end.
    const auto engine = static_cast<EngineKind>(state.range(0));
    Rng rng(12);
    GemmProblem p = makeDbbGemm(256, 1152, 128, 4, 4, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taAw(4));
    RunOptions opt;
    opt.compute_output = true;
    opt.engine = engine;
    opt.validate_operands = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(model->run(p, opt));
    state.SetLabel(engine == EngineKind::Scalar ? "scalar"
                                                : "dbb-fast");
    state.SetItemsProcessed(state.iterations() * p.denseMacs());
}
BENCHMARK(BM_SimulateFunctional)
    ->Arg(static_cast<int>(EngineKind::Scalar))
    ->Arg(static_cast<int>(EngineKind::DbbFast))
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace
} // namespace s2ta

BENCHMARK_MAIN();
