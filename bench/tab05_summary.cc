/**
 * @file
 * Reproduces paper Table 5: qualitative summary of the evaluated
 * designs and prior work — what sparsity each exploits, the class
 * of hardware overhead it pays, and whether it supports ZVCG and
 * time-unrolled variable DBB.
 */

#include "base/table.hh"
#include "bench_util.hh"
#include "energy/buffer_model.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main()
{
    banner("Table 5",
           "Summary of designs: sparsity support, overhead class, "
           "ZVCG, variable DBB (time-unrolling)");

    Table t({"Architecture", "Wgt sparsity", "Act sparsity",
             "HW overhead", "ZVCG", "Var. DBB", "Buf B/MAC"});

    auto buf = [](const ArrayConfig &cfg) {
        return Table::num(bufferModel(cfg).totalPerMac(), 3);
    };

    t.addRow({"SA (TPU-like)", "none", "none", "-", "no", "no",
              buf(ArrayConfig::sa())});
    t.addRow({"SA-ZVCG", "power only", "power only", "-", "yes",
              "no", buf(ArrayConfig::saZvcg())});
    t.addSeparator();
    t.addRow({"SA-SMT [38]", "random", "random", "gather FIFOs",
              "yes", "no", buf(ArrayConfig::saSmt(2))});
    t.addRow({"SCNN [30] (pub.)", "random", "random",
              "scatter accum.", "yes", "no", "1664"});
    t.addRow({"SparTen [13] (pub.)", "random", "random",
              "gather", "yes", "no", "1014"});
    t.addSeparator();
    t.addRow({"Kang [19] (pub.)", "2/8 DBB", "none", "none", "yes",
              "no", "-"});
    t.addRow({"STA [26] (pub.)", "4/8 DBB", "none", "none", "yes",
              "no", "-"});
    t.addRow({"A100 [28] (pub.)", "2/4 DBB", "none", "none", "-",
              "no", "-"});
    t.addRow({"S2TA-W (ours)", "4/8 DBB", "ZVCG only", "none",
              "yes", "no", buf(ArrayConfig::s2taW())});
    t.addRow({"S2TA-AW (ours)", "4/8 DBB", "(1-5)/8 DBB", "none",
              "yes", "yes", buf(ArrayConfig::s2taAw(4))});
    t.print();

    std::printf("\nThe optimal design is the time-unrolled "
                "(variable DBB) S2TA-AW architecture with up to 8x "
                "speedup (paper Table 5).\n");
    return 0;
}
