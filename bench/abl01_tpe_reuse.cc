/**
 * @file
 * Ablation 1 — TPE data reuse (paper Sec. 6.1).
 *
 * The paper argues the TPE organization exposes two new reuse
 * dimensions (intra-TPE operand reuse and accumulator reuse), so
 * larger TPEs need fewer register bytes moved per MAC and less
 * buffer energy. This ablation holds the MAC count at 2048 and
 * sweeps the TPE size (A x C MACs per TPE) from the scalar-PE
 * degenerate case up to 256-MAC TPEs, reporting operand-register
 * traffic and datapath+buffer energy per effective MAC.
 */

#include "bench_util.hh"
#include "energy/buffer_model.hh"

using namespace s2ta;
using namespace s2ta::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    configureDefaultContext(args.ctx);
    banner("Ablation 1",
           "Intra-TPE reuse: operand-register traffic vs TPE size "
           "at a fixed 2048 MACs (S2TA-AW, 4/8 W, 4/8 A)");

    const GemmProblem p = typicalConvDbbGemm(4, 4);

    struct Point { int a, c, m, n; };
    // A x C MACs per TPE, M x N TPEs; A*C*M*N == 2048 throughout.
    const Point points[] = {
        {1, 1, 32, 64}, // scalar-PE-like TPE
        {2, 2, 16, 32},
        {4, 4, 8, 16},
        {8, 4, 8, 8},   // the paper's S2TA-AW design point
        {8, 8, 8, 4},
        {16, 16, 4, 2},
    };

    Table t({"TPE (AxBxC_MxN)", "MACs/TPE", "RegB/MAC", "Buf B/MAC",
             "E(dp+buf)/MAC pJ", "Energy vs scalar"});
    double scalar_dpbuf = -1.0;
    for (const Point &pt : points) {
        ArrayConfig cfg = ArrayConfig::s2taAw(4);
        cfg.tpe = {pt.a, 4, pt.c, pt.m, pt.n};
        const DesignPoint dp = evalGemm(cfg, p);
        const double macs =
            static_cast<double>(dp.events.logical_macs);
        const double reg_per_mac =
            static_cast<double>(dp.events.operand_reg_bytes) / macs;
        const double dpbuf =
            (dp.energy.at(Component::MacDatapath) +
             dp.energy.at(Component::PeBuffers)) /
            macs;
        if (scalar_dpbuf < 0.0)
            scalar_dpbuf = dpbuf;
        t.addRow({cfg.tpe.toString(),
                  Table::count(pt.a * pt.c),
                  Table::num(reg_per_mac, 3),
                  Table::num(bufferModel(cfg).totalPerMac(), 2),
                  Table::num(dpbuf, 4),
                  Table::ratio(dpbuf / scalar_dpbuf)});
    }
    t.print();

    std::printf("\nExpected (Sec. 6.1): register bytes per MAC fall "
                "as the TPE grows, because each\noperand latched at "
                "a TPE feeds A x C datapaths; the frontier flattens "
                "past ~32\nMACs per TPE, which is where the paper's "
                "8x4x4_8x8 design point sits.\n");

    if (!args.json.empty()) {
        // This is the canonical one-workload / many-configs sweep:
        // with the plan cache, the GEMM encodes once for all six
        // TPE geometries.
        const PlanCache::Stats cs =
            defaultContext().planCache().stats();
        JsonWriter jw;
        jw.field("bench", "abl01_tpe_reuse")
            .field("simd_kernel", benchSimdKernel())
            .field("design_points", 6)
            .field("cache_hits", cs.hits)
            .field("cache_misses", cs.misses);
        jw.write(args.json);
    }
    return 0;
}
