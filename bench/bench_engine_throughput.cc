/**
 * @file
 * End-to-end throughput of the simulation engine itself: wall-clock
 * time to run a full CNN workload (functional outputs on) through
 * the legacy scalar engine versus the DBB-native fast path
 * (mask-intersection kernels + GemmPlan caching + parallel runner),
 * plus the encode-amortized rerun through a warm PlanCache (the
 * sweep operating point: one encode, many design points). Emits a
 * JSON record for the bench trajectory and verifies that every
 * configuration produces bitwise-identical outputs and events.
 *
 * Usage:
 *   bench_engine_throughput [--smoke] [--model NAME]
 *                           [--arch s2ta-w|s2ta-aw] [--json PATH]
 *                           [--reps N] [--threads N]
 *                           [--cache-mb N] [--spill-mb N]
 *                           [--plan-store DIR]
 *
 * --smoke runs LeNet-5 (seconds, for CI); the default is a
 * ResNet-50 full-model run at a uniform 4/8 DBB operating point.
 * --threads sets the parallel-runner lane count (1 = serial; the
 * serial engine comparison rows are always run serial).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

struct EngineResult
{
    double seconds = 0.0;
    NetworkRun run;
};

EngineResult
timeEngine(const AcceleratorConfig &acfg, const ModelWorkload &mw,
           const NetworkRunOptions &opt, int reps)
{
    const Accelerator acc(acfg);
    EngineResult r;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = benchNow();
        NetworkRun nr = acc.runNetwork(mw.layers, opt);
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < best) {
            best = dt;
            r.run = std::move(nr);
        }
    }
    r.seconds = best;
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(args.engine_given, "--engine",
                    "this bench compares both engines by design");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the warm-cache row is part of the experiment");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "engine comparison runs one accelerator; fleet "
                    "scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "engine comparison routes nothing; fleet "
                    "placement lives in bench_fleet_serving");
    if (args.model.empty())
        args.model = args.smoke ? "lenet5" : "resnet50";
    if (args.arch.empty())
        args.arch = "s2ta-aw";
    const std::string json_path =
        args.json.empty() ? "BENCH_engine_throughput.json"
                          : args.json;

    banner("Engine throughput",
           "Scalar per-element engine vs DBB-native fast path "
           "(functional outputs on, uniform 4/8 DBB)");

    const ModelSpec spec = modelByName(args.model);
    // Uniform 4/8 operating point on both operands: the paper's
    // headline weight density, and the sparsity level the
    // acceptance target is defined at.
    std::vector<LayerSparsity> profile(spec.layers.size(),
                                       LayerSparsity{4, 4});
    Rng rng(0xE16);
    const ModelWorkload mw =
        buildModelWorkload(spec, profile, rng);

    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);

    // Pre-PR behavior: serial, per-element loops, always-on operand
    // validation.
    NetworkRunOptions scalar_opt;
    scalar_opt.compute_output = true;
    scalar_opt.engine = EngineKind::Scalar;
    scalar_opt.validate_operands = true;
    AcceleratorConfig serial_cfg = acfg;
    serial_cfg.sim_threads = 1;

    // The DBB-native engine under identical conditions (serial,
    // validation on): the JSON "speedup" isolates the engine gain
    // from thread count.
    NetworkRunOptions fast_opt = scalar_opt;
    fast_opt.engine = EngineKind::DbbFast;

    // The full production path: parallel lanes (with intra-GEMM
    // tile-stripe sharding), validation off (the bench generator
    // guarantees the bounds; tests keep it on). --threads applies
    // here (0 = all hardware threads, 1 = serial).
    NetworkRunOptions prod_opt = fast_opt;
    prod_opt.validate_operands = false;
    AcceleratorConfig prod_cfg = acfg;
    prod_cfg.sim_threads = args.ctx.threads;

    // The sweep operating point: same engine with a warm PlanCache,
    // i.e. the marginal cost of one more design point after the
    // workload has been encoded once. --cache-mb bounds it
    // (unbounded by default: one model's encodings fit comfortably),
    // --spill-mb keeps evictions rehydratable, and --plan-store
    // persists the encodings so a second invocation warm-starts.
    BenchCache tiers(args, /*default_cache_mb=*/0);
    NetworkRunOptions cached_opt = fast_opt;
    cached_opt.plan_cache = tiers.cachePtr();

    std::printf("model=%s arch=%s layers=%zu dense_macs=%lld\n\n",
                spec.name.c_str(), acfg.array.name().c_str(),
                spec.layers.size(),
                static_cast<long long>(spec.totalMacs()));

    std::printf("running scalar engine (serial)...\n");
    const EngineResult scalar =
        timeEngine(serial_cfg, mw, scalar_opt, args.reps);
    std::printf("  %.3f s\n", scalar.seconds);

    std::printf("running DBB-native engine (serial)...\n");
    const EngineResult fast =
        timeEngine(serial_cfg, mw, fast_opt, args.reps);
    std::printf("  %.3f s\n", fast.seconds);

    std::printf("running DBB-native engine (parallel, unvalidated)"
                "...\n");
    const EngineResult prod =
        timeEngine(prod_cfg, mw, prod_opt, args.reps);
    std::printf("  %.3f s\n", prod.seconds);

    std::printf("running DBB-native engine (warm plan cache)...\n");
    // Warm the cache once, then time the encode-amortized rerun.
    (void)timeEngine(serial_cfg, mw, cached_opt, 1);
    const EngineResult cached =
        timeEngine(serial_cfg, mw, cached_opt, args.reps);
    std::printf("  %.3f s\n", cached.seconds);

    const bool equal = bitwiseEqualRuns(scalar.run, fast.run) &&
                       bitwiseEqualRuns(scalar.run, prod.run) &&
                       bitwiseEqualRuns(scalar.run, cached.run);
    const double speedup = scalar.seconds / fast.seconds;
    const double speedup_parallel = scalar.seconds / prod.seconds;
    const double speedup_cached = scalar.seconds / cached.seconds;
    const double layers_per_sec =
        static_cast<double>(mw.layers.size()) / prod.seconds;
    const double macs_per_sec =
        static_cast<double>(spec.totalMacs()) / prod.seconds;

    std::printf(
        "\nengine speedup: %.2fx (serial) | %.2fx with the parallel "
        "runner | %.2fx encode-amortized\nfast path: %.2f layers/s, "
        "%.3g simulated MACs/s | outputs bitwise %s\n",
        speedup, speedup_parallel, speedup_cached, layers_per_sec,
        macs_per_sec, equal ? "identical" : "DIFFERENT");
    if (!equal)
        s2ta_fatal("engine outputs diverged; fast path is broken");

    JsonWriter jw;
    jw.field("bench", "engine_throughput")
        .field("model", spec.name)
        .field("arch", acfg.array.name())
        .field("smoke", args.smoke)
        .field("layers", static_cast<int64_t>(spec.layers.size()))
        .field("dense_macs", spec.totalMacs())
        .field("wgt_nnz", 4)
        .field("act_nnz", 4)
        .field("scalar_seconds", scalar.seconds)
        .field("fast_seconds", fast.seconds)
        .field("fast_parallel_seconds", prod.seconds)
        .field("fast_cached_seconds", cached.seconds)
        .field("speedup", speedup, 3)
        .field("speedup_parallel", speedup_parallel, 3)
        .field("speedup_cached", speedup_cached, 3)
        .field("fast_layers_per_sec", layers_per_sec, 3)
        .field("fast_sim_macs_per_sec", macs_per_sec, 0)
        .field("plan_store", !args.plan_store.empty())
        .field("store_hits", tiers.cache.stats().store_hits)
        .field("store_saves", tiers.cache.stats().store_saves)
        .field("spill_hits", tiers.cache.stats().spill_hits)
        .field("bitwise_equal", equal);
    jw.write(json_path);
    return 0;
}
