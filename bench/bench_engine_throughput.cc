/**
 * @file
 * End-to-end throughput of the simulation engine itself: wall-clock
 * time to run a full CNN workload (functional outputs on) through
 * the legacy scalar engine versus the DBB-native fast path
 * (mask-intersection kernels + GemmPlan caching + parallel runner),
 * plus the encode-amortized rerun through a warm PlanCache (the
 * sweep operating point: one encode, many design points). Emits a
 * JSON record for the bench trajectory and verifies that every
 * configuration produces bitwise-identical outputs and events.
 *
 * Also times the async device-backend path: the same workload
 * submitted through the bounded command queue (prepare of layer
 * k+1 overlapped with execution of layer k on the device thread)
 * versus the same backend pinned synchronous. On full runs the
 * overlap row must clear a 1.1x speedup gate over the synchronous
 * path — measured wall clock on hosts with >= 2 cores, the
 * measured two-stage pipeline bound on single-core hosts (where a
 * device thread cannot physically run alongside the submitter).
 * --test-backend picks the backend (default in-process).
 *
 * And a SIMD tier row: the same serial fast-engine run with the
 * kernel ladder capped at AVX2 versus uncapped (AVX-512 with VNNI
 * and VPOPCNTDQ sub-kernels). On full runs where the host has
 * AVX-512 the uncapped run must beat the cap (speedup_simd > 1);
 * hosts without it record mode avx512-unsupported-host. --simd is
 * rejected here — the tier rows pin the cap themselves.
 *
 * Usage:
 *   bench_engine_throughput [--smoke] [--model NAME]
 *                           [--arch s2ta-w|s2ta-aw] [--json PATH]
 *                           [--reps N] [--threads N]
 *                           [--cache-mb N] [--spill-mb N]
 *                           [--plan-store DIR]
 *                           [--test-backend NAME]
 *
 * --smoke runs LeNet-5 (seconds, for CI); the default is a
 * ResNet-50 full-model run at a uniform 4/8 DBB operating point.
 * --threads sets the parallel-runner lane count (1 = serial; the
 * serial engine comparison rows are always run serial).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

struct EngineResult
{
    double seconds = 0.0;
    NetworkRun run;
};

EngineResult
timeEngine(const AcceleratorConfig &acfg, const ModelWorkload &mw,
           const NetworkRunOptions &opt, int reps)
{
    const Accelerator acc(acfg);
    EngineResult r;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = benchNow();
        NetworkRun nr = acc.runNetwork(mw.layers, opt);
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < best) {
            best = dt;
            r.run = std::move(nr);
        }
    }
    r.seconds = best;
    return r;
}

struct BackendResult
{
    double seconds = 0.0;
    NetworkRun run;
    BackendStats stats;
    int64_t transfer_cycles = 0;
};

/** Time a fresh backend instance per rep (a backend's stats are
 *  lifetime totals; one instance per rep keeps the reported stats
 *  those of exactly the timed run). */
BackendResult
timeBackend(const std::string &name, const AcceleratorConfig &acfg,
            const BackendConfig &bcfg, const ModelWorkload &mw,
            const NetworkRunOptions &opt, int reps)
{
    BackendResult r;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto be = makeBackend(name, acfg, bcfg);
        const double t0 = benchNow();
        BackendNetworkRun br = be->runNetworkTimed(mw.layers, opt);
        const double dt = benchNow() - t0;
        if (rep == 0 || dt < best) {
            best = dt;
            r.run = std::move(br.run);
            r.stats = be->stats();
            r.transfer_cycles = br.transfer_cycles;
        }
    }
    r.seconds = best;
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(args.engine_given, "--engine",
                    "this bench compares both engines by design");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the warm-cache row is part of the experiment");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "engine comparison runs one accelerator; fleet "
                    "scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "engine comparison routes nothing; fleet "
                    "placement lives in bench_fleet_serving");
    args.rejectFlag(args.simd_given, "--simd",
                    "the SIMD tier comparison rows pin the "
                    "dispatcher cap by design");
    if (args.model.empty())
        args.model = args.smoke ? "lenet5" : "resnet50";
    if (args.arch.empty())
        args.arch = "s2ta-aw";
    const std::string json_path =
        args.json.empty() ? "BENCH_engine_throughput.json"
                          : args.json;

    banner("Engine throughput",
           "Scalar per-element engine vs DBB-native fast path "
           "(functional outputs on, uniform 4/8 DBB)");

    const ModelSpec spec = modelByName(args.model);
    // Uniform 4/8 operating point on both operands: the paper's
    // headline weight density, and the sparsity level the
    // acceptance target is defined at.
    std::vector<LayerSparsity> profile(spec.layers.size(),
                                       LayerSparsity{4, 4});
    Rng rng(0xE16);
    const ModelWorkload mw =
        buildModelWorkload(spec, profile, rng);

    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);

    // Pre-PR behavior: serial, per-element loops, always-on operand
    // validation.
    NetworkRunOptions scalar_opt;
    scalar_opt.compute_output = true;
    scalar_opt.engine = EngineKind::Scalar;
    scalar_opt.validate_operands = true;
    AcceleratorConfig serial_cfg = acfg;
    serial_cfg.sim_threads = 1;

    // The DBB-native engine under identical conditions (serial,
    // validation on): the JSON "speedup" isolates the engine gain
    // from thread count.
    NetworkRunOptions fast_opt = scalar_opt;
    fast_opt.engine = EngineKind::DbbFast;

    // The full production path: parallel lanes (with intra-GEMM
    // tile-stripe sharding), validation off (the bench generator
    // guarantees the bounds; tests keep it on). --threads applies
    // here (0 = all hardware threads, 1 = serial).
    NetworkRunOptions prod_opt = fast_opt;
    prod_opt.validate_operands = false;
    AcceleratorConfig prod_cfg = acfg;
    prod_cfg.sim_threads = args.ctx.threads;

    // The sweep operating point: same engine with a warm PlanCache,
    // i.e. the marginal cost of one more design point after the
    // workload has been encoded once. --cache-mb bounds it
    // (unbounded by default: one model's encodings fit comfortably),
    // --spill-mb keeps evictions rehydratable, and --plan-store
    // persists the encodings so a second invocation warm-starts.
    BenchCache tiers(args, /*default_cache_mb=*/0);
    NetworkRunOptions cached_opt = fast_opt;
    cached_opt.plan_cache = tiers.cachePtr();

    std::printf("model=%s arch=%s layers=%zu dense_macs=%lld\n\n",
                spec.name.c_str(), acfg.array.name().c_str(),
                spec.layers.size(),
                static_cast<long long>(spec.totalMacs()));

    std::printf("running scalar engine (serial)...\n");
    const EngineResult scalar =
        timeEngine(serial_cfg, mw, scalar_opt, args.reps);
    std::printf("  %.3f s\n", scalar.seconds);

    std::printf("running DBB-native engine (serial)...\n");
    const EngineResult fast =
        timeEngine(serial_cfg, mw, fast_opt, args.reps);
    std::printf("  %.3f s\n", fast.seconds);

    std::printf("running DBB-native engine (parallel, unvalidated)"
                "...\n");
    const EngineResult prod =
        timeEngine(prod_cfg, mw, prod_opt, args.reps);
    std::printf("  %.3f s\n", prod.seconds);

    std::printf("running DBB-native engine (warm plan cache)...\n");
    // Warm the cache once, then time the encode-amortized rerun.
    (void)timeEngine(serial_cfg, mw, cached_opt, 1);
    const EngineResult cached =
        timeEngine(serial_cfg, mw, cached_opt, args.reps);
    std::printf("  %.3f s\n", cached.seconds);

    // The SIMD tier rows: the serial fast engine re-timed with the
    // dispatcher capped at AVX2 (every AVX-512 sub-path off: the
    // VBMI intersection kernel, the VNNI dense mirror, and the
    // VPOPCNTDQ profile derivation all fall back), then uncapped.
    // At the 4/8 operating point the dense-mirror dot dominates, so
    // this is chiefly VNNI-vs-SSE2 — the headline kernel-ladder
    // win. Hosts (or builds) without the AVX-512 tier keep the rows
    // with mode "avx512-unsupported-host" and a 1.0x ratio instead
    // of silently comparing AVX2 against itself.
    const bool avx512_supported = dbbAvx512KernelSupportedImpl();
    const int tier_reps = std::max(args.reps, 3);
    std::printf("running DBB-native engine (avx2-capped "
                "dispatch)...\n");
    dbbForceKernelCap(DbbKernelKind::Avx2);
    const EngineResult tier_avx2 =
        timeEngine(serial_cfg, mw, fast_opt, tier_reps);
    dbbForceKernelCap(DbbKernelKind::Avx512);
    std::printf("  %.3f s\n", tier_avx2.seconds);
    EngineResult tier_avx512;
    if (avx512_supported) {
        std::printf("running DBB-native engine (avx512 "
                    "dispatch)...\n");
        tier_avx512 = timeEngine(serial_cfg, mw, fast_opt,
                                 tier_reps);
        std::printf("  %.3f s\n", tier_avx512.seconds);
    } else {
        std::printf("avx512 tier unavailable on this host/build; "
                    "recording the avx2 row only\n");
        tier_avx512.seconds = tier_avx2.seconds;
        tier_avx512.run = tier_avx2.run;
    }
    const double speedup_simd =
        tier_avx2.seconds / tier_avx512.seconds;
    const char *simd_mode =
        avx512_supported ? "measured" : "avx512-unsupported-host";

    // The async device-backend rows: the same serial device config
    // driven through the bounded command queue, synchronous (every
    // submit executes inline — no overlap possible) versus async
    // (the host's im2col/encode of layer k+1 runs while the device
    // thread executes layer k). The gap is the encode/compute
    // overlap win, isolated from engine and thread-count effects.
    const std::string backend_name = args.test_backend.empty()
                                         ? "in-process"
                                         : args.test_backend;
    BackendConfig sync_bcfg;
    sync_bcfg.synchronous = true;
    BackendConfig async_bcfg;
    async_bcfg.queue_depth = 2;

    std::printf("running %s backend (synchronous queue)...\n",
                backend_name.c_str());
    const BackendResult be_sync =
        timeBackend(backend_name, serial_cfg, sync_bcfg, mw,
                    fast_opt, args.reps);
    std::printf("  %.3f s\n", be_sync.seconds);

    std::printf("running %s backend (async, encode/compute "
                "overlap)...\n", backend_name.c_str());
    const BackendResult be_async =
        timeBackend(backend_name, serial_cfg, async_bcfg, mw,
                    fast_opt, args.reps);
    std::printf("  %.3f s\n", be_async.seconds);

    const bool backend_equal =
        bitwiseEqualRuns(be_sync.run, be_async.run) &&
        (backend_name == "scalar-ref"
             ? bitwiseEqualRuns(scalar.run, be_async.run)
             : bitwiseEqualRuns(fast.run, be_async.run));

    // Per-phase split through the same prepare/execute API the
    // queue pipelines: the host-side cost (im2col + DBB encode) and
    // the device-side cost (GEMM execution) measured separately
    // give the two-stage pipeline bound — the wall time the async
    // queue converges to when the device thread has a core of its
    // own: the longer phase, plus one queue-slot fill of the
    // shorter.
    std::printf("splitting prepare/execute phases...\n");
    double prep_seconds = 0.0, exec_seconds = 0.0;
    {
        const Accelerator split_acc(serial_cfg);
        std::vector<PreparedLayer> preps;
        preps.reserve(mw.layers.size());
        const double t0 = benchNow();
        for (const LayerWorkload &wl : mw.layers)
            preps.push_back(split_acc.prepareLayer(wl, fast_opt));
        prep_seconds = benchNow() - t0;
        const double t1 = benchNow();
        for (const PreparedLayer &p : preps)
            (void)split_acc.executePrepared(p, fast_opt);
        exec_seconds = benchNow() - t1;
    }
    std::printf("  prepare %.3f s | execute %.3f s\n", prep_seconds,
                exec_seconds);
    const double pipeline_seconds =
        std::max(prep_seconds, exec_seconds) +
        std::min(prep_seconds, exec_seconds) /
            static_cast<double>(mw.layers.size());

    const bool equal = bitwiseEqualRuns(scalar.run, fast.run) &&
                       bitwiseEqualRuns(scalar.run, prod.run) &&
                       bitwiseEqualRuns(scalar.run, cached.run) &&
                       bitwiseEqualRuns(scalar.run, tier_avx2.run) &&
                       bitwiseEqualRuns(scalar.run,
                                        tier_avx512.run) &&
                       backend_equal;
    const double speedup = scalar.seconds / fast.seconds;
    const double speedup_parallel = scalar.seconds / prod.seconds;
    const double speedup_cached = scalar.seconds / cached.seconds;
    // The overlap gate needs two runnable threads to mean anything:
    // on a single-core host the device thread timeshares with the
    // submitter and measured async wall time degenerates to the
    // synchronous path, whatever the queue does. There the gate
    // falls back to the measured pipeline bound — the overlap the
    // queue delivers as soon as a second core exists. Both numbers
    // land in the artifact, with the mode that was enforced.
    const double speedup_overlap_measured =
        be_sync.seconds / be_async.seconds;
    const double speedup_overlap_pipeline =
        be_sync.seconds / pipeline_seconds;
    const unsigned overlap_cores =
        std::thread::hardware_concurrency();
    const bool overlap_measurable = overlap_cores >= 2;
    const double speedup_overlap = overlap_measurable
                                       ? speedup_overlap_measured
                                       : speedup_overlap_pipeline;
    const char *overlap_mode = overlap_measurable
                                   ? "measured"
                                   : "pipeline-bound-single-core";
    const double overlap_gate = 1.1;
    const double layers_per_sec =
        static_cast<double>(mw.layers.size()) / prod.seconds;
    const double macs_per_sec =
        static_cast<double>(spec.totalMacs()) / prod.seconds;

    std::printf(
        "\nengine speedup: %.2fx (serial) | %.2fx with the parallel "
        "runner | %.2fx encode-amortized\nasync %s backend: %.2fx "
        "over the synchronous queue (%s; gate %.1fx on full runs)\n"
        "fast path: %.2f layers/s, %.3g simulated MACs/s | outputs "
        "bitwise %s\n",
        speedup, speedup_parallel, speedup_cached,
        backend_name.c_str(), speedup_overlap, overlap_mode,
        overlap_gate, layers_per_sec, macs_per_sec,
        equal ? "identical" : "DIFFERENT");
    if (!equal)
        s2ta_fatal("engine outputs diverged; fast path is broken");
    // The overlap gate is a wall-clock property: smoke models are
    // too small for stable timing, so CI asserts the schema there
    // and the full ResNet-50 run enforces the ratio.
    if (!args.smoke && speedup_overlap < overlap_gate) {
        s2ta_fatal("async backend overlap speedup %.2fx is below "
                   "the %.1fx gate", speedup_overlap, overlap_gate);
    }
    std::printf("simd tier: avx512 %.2fx over avx2-capped (%s)\n",
                speedup_simd, simd_mode);
    // Where the AVX-512 tier runs at all it must win: smoke models
    // are too small for stable timing, but on the full model a
    // regression to parity means a sub-kernel fell off its fast
    // path (e.g. the dense mirror stopped choosing VNNI).
    if (!args.smoke && avx512_supported && speedup_simd <= 1.0) {
        s2ta_fatal("avx512 tier speedup %.2fx over avx2 is not a "
                   "win; the kernel ladder regressed",
                   speedup_simd);
    }

    JsonWriter jw;
    jw.field("bench", "engine_throughput")
        .field("model", spec.name)
        .field("arch", acfg.array.name())
        .field("smoke", args.smoke)
        .field("simd_kernel", benchSimdKernel())
        .field("layers", static_cast<int64_t>(spec.layers.size()))
        .field("dense_macs", spec.totalMacs())
        .field("wgt_nnz", 4)
        .field("act_nnz", 4)
        .field("scalar_seconds", scalar.seconds)
        .field("fast_seconds", fast.seconds)
        .field("fast_parallel_seconds", prod.seconds)
        .field("fast_cached_seconds", cached.seconds)
        .field("speedup", speedup, 3)
        .field("speedup_parallel", speedup_parallel, 3)
        .field("speedup_cached", speedup_cached, 3)
        .field("simd_avx2_seconds", tier_avx2.seconds)
        .field("simd_avx512_seconds", tier_avx512.seconds)
        .field("speedup_simd", speedup_simd, 3)
        .field("simd_mode", simd_mode)
        .field("test_backend", backend_name)
        .field("backend_queue_depth", async_bcfg.queue_depth)
        .field("backend_sync_seconds", be_sync.seconds)
        .field("backend_async_seconds", be_async.seconds)
        .field("backend_prepare_seconds", prep_seconds)
        .field("backend_execute_seconds", exec_seconds)
        .field("speedup_overlap", speedup_overlap, 3)
        .field("speedup_overlap_measured", speedup_overlap_measured,
               3)
        .field("speedup_overlap_pipeline", speedup_overlap_pipeline,
               3)
        .field("overlap_mode", overlap_mode)
        .field("overlap_cores",
               static_cast<int64_t>(overlap_cores))
        .field("overlap_gate", overlap_gate, 3)
        .field("backend_submitted", be_async.stats.submitted)
        .field("backend_completed", be_async.stats.completed)
        .field("backend_h2d_bytes", be_async.stats.h2d_bytes)
        .field("backend_d2h_bytes", be_async.stats.d2h_bytes)
        .field("backend_transfer_cycles",
               be_async.stats.transfer_cycles)
        .field("bitwise_equal_backend", backend_equal)
        .field("fast_layers_per_sec", layers_per_sec, 3)
        .field("fast_sim_macs_per_sec", macs_per_sec, 0)
        .field("plan_store", !args.plan_store.empty())
        .field("store_hits", tiers.cache.stats().store_hits)
        .field("store_saves", tiers.cache.stats().store_saves)
        .field("spill_hits", tiers.cache.stats().spill_hits)
        .field("bitwise_equal", equal);
    jw.write(json_path);
    return 0;
}
