/**
 * @file
 * End-to-end throughput of the simulation engine itself: wall-clock
 * time to run a full CNN workload (functional outputs on) through
 * the legacy scalar engine versus the DBB-native fast path
 * (mask-intersection kernels + GemmPlan caching + parallel runner).
 * Emits a JSON record for the bench trajectory and verifies the two
 * engines produce bitwise-identical outputs and event counts.
 *
 * Usage:
 *   bench_engine_throughput [--smoke] [--model NAME]
 *                           [--arch s2ta-w|s2ta-aw]
 *                           [--json PATH] [--reps N]
 *
 * --smoke runs LeNet-5 (seconds, for CI); the default is a
 * ResNet-50 full-model run at a uniform 4/8 DBB operating point.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "workload/model_workloads.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

ModelSpec
pickModel(const std::string &name)
{
    if (name == "lenet5")
        return leNet5();
    if (name == "alexnet")
        return alexNet();
    if (name == "vgg16")
        return vgg16();
    if (name == "mobilenetv1")
        return mobileNetV1();
    if (name == "resnet50")
        return resNet50();
    s2ta_fatal("unknown model '%s'", name.c_str());
}

struct EngineResult
{
    double seconds = 0.0;
    NetworkRun run;
};

EngineResult
timeEngine(const AcceleratorConfig &acfg, const ModelWorkload &mw,
           const NetworkRunOptions &opt, int reps)
{
    const Accelerator acc(acfg);
    EngineResult r;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double t0 = now();
        NetworkRun nr = acc.runNetwork(mw.layers, opt);
        const double dt = now() - t0;
        if (rep == 0 || dt < best) {
            best = dt;
            r.run = std::move(nr);
        }
    }
    r.seconds = best;
    return r;
}

bool
bitwiseEqual(const NetworkRun &a, const NetworkRun &b)
{
    if (a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const Int32Tensor &x = a.layers[i].output;
        const Int32Tensor &y = b.layers[i].output;
        if (x.size() != y.size())
            return false;
        if (std::memcmp(x.data(), y.data(),
                        static_cast<size_t>(x.size()) *
                            sizeof(int32_t)) != 0)
            return false;
        if (!(a.layers[i].events == b.layers[i].events))
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string model_name = "resnet50";
    std::string arch_name = "s2ta-aw";
    std::string json_path = "BENCH_engine_throughput.json";
    bool smoke = false;
    int reps = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
            model_name = "lenet5";
        } else if (arg == "--model" && i + 1 < argc) {
            model_name = argv[++i];
        } else if (arg == "--arch" && i + 1 < argc) {
            arch_name = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
            if (reps < 1)
                s2ta_fatal("--reps must be >= 1");
        } else {
            s2ta_fatal("unknown argument '%s'", arg.c_str());
        }
    }

    banner("Engine throughput",
           "Scalar per-element engine vs DBB-native fast path "
           "(functional outputs on, uniform 4/8 DBB)");

    const ModelSpec spec = pickModel(model_name);
    // Uniform 4/8 operating point on both operands: the paper's
    // headline weight density, and the sparsity level the
    // acceptance target is defined at.
    std::vector<LayerSparsity> profile(spec.layers.size(),
                                       LayerSparsity{4, 4});
    Rng rng(0xE16);
    const ModelWorkload mw =
        buildModelWorkload(spec, profile, rng);

    AcceleratorConfig acfg;
    acfg.array = arch_name == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);

    // Pre-PR behavior: serial, per-element loops, always-on operand
    // validation.
    NetworkRunOptions scalar_opt;
    scalar_opt.compute_output = true;
    scalar_opt.engine = EngineKind::Scalar;
    scalar_opt.validate_operands = true;
    AcceleratorConfig serial_cfg = acfg;
    serial_cfg.sim_threads = 1;

    // The DBB-native engine under identical conditions (serial,
    // validation on): the JSON "speedup" isolates the engine gain
    // from thread count.
    NetworkRunOptions fast_opt = scalar_opt;
    fast_opt.engine = EngineKind::DbbFast;

    // The full production path: all lanes, validation off (the
    // bench generator guarantees the bounds; tests keep it on).
    NetworkRunOptions prod_opt = fast_opt;
    prod_opt.validate_operands = false;
    AcceleratorConfig prod_cfg = acfg;
    prod_cfg.sim_threads = 0;

    std::printf("model=%s arch=%s layers=%zu dense_macs=%lld\n\n",
                spec.name.c_str(), acfg.array.name().c_str(),
                spec.layers.size(),
                static_cast<long long>(spec.totalMacs()));

    std::printf("running scalar engine (serial)...\n");
    const EngineResult scalar =
        timeEngine(serial_cfg, mw, scalar_opt, reps);
    std::printf("  %.3f s\n", scalar.seconds);

    std::printf("running DBB-native engine (serial)...\n");
    const EngineResult fast =
        timeEngine(serial_cfg, mw, fast_opt, reps);
    std::printf("  %.3f s\n", fast.seconds);

    std::printf("running DBB-native engine (parallel, unvalidated)"
                "...\n");
    const EngineResult prod =
        timeEngine(prod_cfg, mw, prod_opt, reps);
    std::printf("  %.3f s\n", prod.seconds);

    const bool equal = bitwiseEqual(scalar.run, fast.run) &&
                       bitwiseEqual(scalar.run, prod.run);
    const double speedup = scalar.seconds / fast.seconds;
    const double speedup_parallel = scalar.seconds / prod.seconds;
    const double layers_per_sec =
        static_cast<double>(mw.layers.size()) / prod.seconds;
    const double macs_per_sec =
        static_cast<double>(spec.totalMacs()) / prod.seconds;

    std::printf("\nengine speedup: %.2fx (serial) | %.2fx with the "
                "parallel runner\nfast path: %.2f layers/s, %.3g "
                "simulated MACs/s | outputs bitwise %s\n",
                speedup, speedup_parallel, layers_per_sec,
                macs_per_sec, equal ? "identical" : "DIFFERENT");
    if (!equal)
        s2ta_fatal("engine outputs diverged; fast path is broken");

    char json[1024];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"bench\": \"engine_throughput\",\n"
        "  \"model\": \"%s\",\n"
        "  \"arch\": \"%s\",\n"
        "  \"smoke\": %s,\n"
        "  \"layers\": %zu,\n"
        "  \"dense_macs\": %lld,\n"
        "  \"wgt_nnz\": 4,\n"
        "  \"act_nnz\": 4,\n"
        "  \"scalar_seconds\": %.6f,\n"
        "  \"fast_seconds\": %.6f,\n"
        "  \"fast_parallel_seconds\": %.6f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"speedup_parallel\": %.3f,\n"
        "  \"fast_layers_per_sec\": %.3f,\n"
        "  \"fast_sim_macs_per_sec\": %.6g,\n"
        "  \"bitwise_equal\": %s\n"
        "}\n",
        spec.name.c_str(), acfg.array.name().c_str(),
        smoke ? "true" : "false", spec.layers.size(),
        static_cast<long long>(spec.totalMacs()), scalar.seconds,
        fast.seconds, prod.seconds, speedup, speedup_parallel,
        layers_per_sec, macs_per_sec, equal ? "true" : "false");
    std::printf("\n%s", json);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f)
            s2ta_fatal("cannot write '%s'", json_path.c_str());
        std::fputs(json, f);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
