/**
 * @file
 * Fault-tolerant fleet serving: the mixed multi-model open-loop
 * trace routed across N accelerator replicas — each with its own
 * PlanCache, optionally all over one shared persistent PlanStore —
 * first clean (the scaling + equivalence story), then under a
 * seeded replica-kill schedule (crashes, brownouts, restarts,
 * a scripted drain window, layer faults and stalls) with bounded
 * failover and hedged requests (the robustness story).
 *
 * Four gates:
 *
 *  - throughput scales: on a 10x-overloaded mixed trace, the
 *    R-replica fleet's makespan beats 0.8x-linear scaling over the
 *    single-replica fleet (least-loaded placement, 1 lane each);
 *  - fleet serving never changes results: every Ok completion's
 *    NetworkRun — clean or under the kill schedule — is bitwise
 *    identical to a single-accelerator StreamScheduler baseline of
 *    the same request;
 *  - zero lost requests: under the kill schedule every submission
 *    resolves to exactly one Ok / Shed / Failed, the instance
 *    ledger balances (faulted attempts == retries + failed
 *    instances), every launched hedge reconciles as exactly one of
 *    win / loss / failed, and the lifecycle counters match the
 *    injector's per-site totals exactly;
 *  - deterministic failover: the kill run rerun fully serial (one
 *    simulation lane, serial accelerator, fresh same-seed
 *    injector) reproduces every outcome, route, failover set,
 *    hedge decision, and virtual timing bit for bit.
 *
 * Usage: bench_fleet_serving [--smoke] [--json PATH] [--threads N]
 *          [--arch s2ta-w|s2ta-aw] [--replicas N]
 *          [--placement hash|least-loaded] [--cache-mb N]
 *          [--spill-mb N] [--plan-store DIR] [--store-cap-mb N]
 *        (--model / --no-plan-cache / --engine / --reps are
 *         rejected: the trace is mixed-model by definition, the
 *         per-replica caches are part of the scenario, results are
 *         engine-independent, and virtual time needs no best-of-N.
 *         --placement steers the kill-schedule fleet; the scaling
 *         gate always runs least-loaded, which is the throughput
 *         placement — hash trades peak scaling for cache
 *         affinity.)
 *
 * Emits BENCH_fleet_serving.json (schema checked in CI).
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "base/fault_injection.hh"
#include "bench_util.hh"
#include "serve/fleet.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** One trace entry: a zoo model at a batch size. */
struct TraceItem
{
    const char *model;
    int batch;
};

/** The deployed (model, batch) mix requests cycle through. */
std::vector<TraceItem>
traceItems(bool smoke)
{
    if (smoke) {
        return {{"lenet5", 1}, {"mobilenetv1", 1}, {"lenet5", 2},
                {"mobilenetv1", 2}, {"lenet5", 4},
                {"mobilenetv1", 4}};
    }
    return {{"resnet50", 1}, {"alexnet", 1}, {"mobilenetv1", 1},
            {"resnet50", 2}, {"alexnet", 2}, {"mobilenetv1", 2}};
}

/** One generated request of the open-loop trace. */
struct TraceRequest
{
    const ModelWorkload *workload = nullptr;
    int stream = 0;
    double arrival_s = 0.0;
};

/** Everything observable about one fleet completion except its
 *  run: outcome, shed reason, attempts, fault layer, fault count,
 *  stall cycles, start, finish, retry delay, lane, replica,
 *  failovers, instances, hedged, hedge won, lost to crash. Maps of
 *  these compare reruns across thread counts bit for bit. */
using Observed =
    std::tuple<int, int, int, int, int64_t, int64_t, double,
               double, double, int, int, int, int, bool, bool,
               bool>;

Observed
observe(const serve::FleetCompletion &c)
{
    return Observed{static_cast<int>(c.outcome),
                    static_cast<int>(c.shed_reason),
                    c.attempts,
                    c.fault_layer,
                    c.fault_count,
                    c.stall_cycles,
                    c.start_s,
                    c.finish_s,
                    c.retry_delay_s,
                    c.lane,
                    c.replica,
                    c.failovers,
                    c.instances,
                    c.hedged,
                    c.hedge_won,
                    c.lost_to_crash};
}

/** Outcome of one fleet replay. */
struct FleetResult
{
    std::map<uint64_t, Observed> observed;
    /** Per Ok request id: the run, for bitwise baseline checks. */
    std::map<uint64_t, NetworkRun> ok_runs;
    serve::FleetStats stats;
    double routing_skew = 0.0;
    double cache_hit_variance = 0.0;
    int64_t hedges_launched = 0;
    int64_t hedge_wins = 0;
    int64_t hedge_losses = 0;
    int64_t hedge_failed = 0;
    bool hedges_reconcile = true;
};

bool
sameFleetStats(const serve::FleetStats &a,
               const serve::FleetStats &b)
{
    return a.requests == b.requests && a.completed == b.completed &&
           a.failed == b.failed &&
           a.failed_compute == b.failed_compute &&
           a.failed_crash == b.failed_crash &&
           a.shed_queue_full == b.shed_queue_full &&
           a.shed_stream_full == b.shed_stream_full &&
           a.shed_infeasible == b.shed_infeasible &&
           a.layers == b.layers && a.gemms == b.gemms &&
           a.dense_macs == b.dense_macs &&
           a.instances == b.instances &&
           a.failovers == b.failovers &&
           a.lost_instances == b.lost_instances &&
           a.retries == b.retries &&
           a.faulted_attempts == b.faulted_attempts &&
           a.failed_instances == b.failed_instances &&
           a.layer_faults == b.layer_faults &&
           a.stall_events == b.stall_events &&
           a.stall_cycles == b.stall_cycles &&
           a.crashes == b.crashes && a.restarts == b.restarts &&
           a.brownouts == b.brownouts && a.drains == b.drains &&
           a.max_queue_depth == b.max_queue_depth &&
           a.makespan_s == b.makespan_s;
}

constexpr double kMsPerS = 1e3;

/** The replica-kill injection plan, seeded. */
constexpr uint64_t kFaultSeed = 0xF1EE7F417;

void
armInjector(FaultInjector &fi)
{
    fi.setRate(FaultSite::LayerCompute, 0.02);
    fi.setRate(FaultSite::LayerStall, 0.02);
    fi.setStallCycles(1000, 50000);
    fi.setRate(FaultSite::ReplicaCrash, 0.08);
    fi.setRate(FaultSite::ReplicaRestart, 0.5);
    fi.setRate(FaultSite::ReplicaStall, 0.1);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(!args.model.empty(), "--model",
                    "the fleet trace mixes several models by "
                    "definition");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "per-replica plan caches over the shared store "
                    "are part of the scenario (--cache-mb 0 "
                    "disables them if that is the experiment)");
    args.rejectFlag(args.engine_given, "--engine",
                    "fleet behavior is engine-independent; the "
                    "simulation always runs the plan-cached fast "
                    "path");
    args.rejectFlag(args.reps_given, "--reps",
                    "virtual time is deterministic; there is no "
                    "wall-clock noise to best-of");
    const std::string json_path =
        args.json.empty() ? "BENCH_fleet_serving.json" : args.json;
    const int R = args.replicas;
    const serve::PlacementKind placement =
        serve::placementByName(args.placement);

    banner("Fault-tolerant fleet serving",
           "Replica health, failover routing, draining, and "
           "hedged requests across N virtual accelerators");

    const std::vector<TraceItem> items = traceItems(args.smoke);
    const int streams = 6;
    const int scale_requests = args.smoke ? 240 : 480;
    const int kill_requests = args.smoke ? 120 : 240;
    const serve::VirtualClockConfig clock{/*lanes=*/1,
                                          /*clock_ghz=*/1.0};
    const int cache_budget_mb =
        args.cache_mb_given ? args.cache_mb : 2048;
    const bool cache_disabled =
        args.cache_mb_given && args.cache_mb == 0;
    const int64_t cache_budget_bytes =
        static_cast<int64_t>(cache_budget_mb) << 20;
    const int64_t spill_bytes = static_cast<int64_t>(args.spill_mb)
                                << 20;

    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);
    acfg.sim_threads = args.ctx.threads;
    const Accelerator acc(acfg);
    BenchCache tiers(args, cache_budget_mb);

    NetworkRunOptions run_opt;
    run_opt.validate_operands = false;
    run_opt.plan_cache = tiers.cachePtr();

    // Servable workloads + per-workload service estimates from one
    // unmeasured fault-free pass (which also seeds the shared plan
    // store, when configured, as a deployment's first replica
    // would).
    serve::ModelRegistry registry;
    std::vector<const ModelWorkload *> deployed;
    std::map<const ModelWorkload *, double> est_service_s;
    for (const TraceItem &it : items) {
        const ModelWorkload &mw =
            registry.workload(it.model, it.batch);
        deployed.push_back(&mw);
        if (!est_service_s.count(&mw)) {
            const NetworkRun nr = acc.runNetwork(mw.layers, run_opt);
            est_service_s.emplace(
                &mw, clock.cyclesToSeconds(nr.total.cycles));
        }
    }
    double mean_service_s = 0.0;
    for (size_t i = 0; i < deployed.size(); ++i)
        mean_service_s += est_service_s.at(deployed[i]);
    mean_service_s /= static_cast<double>(deployed.size());
    const double fleet_capacity_rps =
        static_cast<double>(R) * clock.lanes / mean_service_s;

    std::printf("fleet: %d replicas x %d lane @ %.1f GHz, "
                "placement %s | %zu deployed workloads, mean "
                "service %.3f ms, fleet capacity %.1f req/s | "
                "fault seed 0x%llx\n\n",
                R, clock.lanes, clock.clock_ghz,
                serve::placementName(placement), deployed.size(),
                mean_service_s * kMsPerS, fleet_capacity_rps,
                static_cast<unsigned long long>(kFaultSeed));

    // Build a seeded open-loop trace: Poisson arrivals at
    // rate_x x fleet capacity, streams round-robin, the workload
    // mix cycling.
    const auto makeTrace = [&](int n, double rate_x,
                               uint64_t seed) {
        Rng rng(seed);
        const std::vector<double> arrivals = serve::poissonArrivals(
            n, rate_x * fleet_capacity_rps, rng);
        std::vector<TraceRequest> trace(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            TraceRequest &r = trace[static_cast<size_t>(i)];
            r.workload = deployed[static_cast<size_t>(i) %
                                  deployed.size()];
            r.stream = i % streams;
            r.arrival_s = arrivals[static_cast<size_t>(i)];
        }
        return trace;
    };

    // Single-accelerator baseline for a trace: every Ok run the
    // fleet serves must be bitwise identical to these.
    const auto baselineRuns =
        [&](const std::vector<TraceRequest> &trace) {
            serve::StreamScheduler::Options o;
            o.run = run_opt;
            o.threads = args.ctx.threads;
            o.clock = clock;
            serve::StreamScheduler sched(acc, o);
            for (const TraceRequest &r : trace)
                sched.submit(r.stream, *r.workload, r.arrival_s);
            std::map<uint64_t, NetworkRun> runs;
            auto by_stream = sched.drain();
            for (auto &stream : by_stream)
                for (auto &c : stream)
                    if (c.ok())
                        runs.emplace(c.id, std::move(c.run));
            return runs;
        };

    // Replay a trace on a fleet of @p replicas clones of the
    // accelerator. Fresh per-replica caches every replay (all over
    // the shared store, when configured) so cache state cannot
    // leak between points; outcomes and virtual timings are
    // cache-independent by construction.
    const auto replay = [&](const std::vector<TraceRequest> &trace,
                            int replicas, const Accelerator &on,
                            int threads, FaultInjector *fi,
                            const serve::OverloadConfig &overload,
                            serve::PlacementKind place,
                            double detect_delay_s,
                            double hedge_delay_s,
                            std::vector<serve::ReplicaEvent>
                                schedule) {
        std::vector<std::unique_ptr<PlanCache>> caches;
        std::vector<serve::FleetReplica> fleet;
        for (int r = 0; r < replicas; ++r) {
            PlanCache *cp = nullptr;
            if (!cache_disabled) {
                caches.push_back(std::make_unique<PlanCache>(
                    0, cache_budget_bytes, spill_bytes));
                if (tiers.store)
                    caches.back()->attachStore(tiers.store.get());
                cp = caches.back().get();
            }
            fleet.push_back(serve::FleetReplica{&on, cp});
        }
        serve::FleetScheduler::Options o;
        o.run = run_opt;
        o.run.plan_cache = nullptr;
        o.run.fault = fi;
        o.threads = threads;
        o.clock = clock;
        o.overload = overload;
        o.placement = place;
        o.detect_delay_s = detect_delay_s;
        o.max_failovers = 3;
        o.hedge_delay_s = hedge_delay_s;
        o.schedule = std::move(schedule);
        FleetResult res;
        o.on_complete = [&](const serve::FleetCompletion &c) {
            res.observed.emplace(c.id, observe(c));
        };
        serve::FleetScheduler sched(std::move(fleet), std::move(o));
        for (const TraceRequest &r : trace)
            sched.submit(r.stream, *r.workload, r.arrival_s);
        auto by_stream = sched.drain();
        for (auto &stream : by_stream)
            for (auto &c : stream)
                if (c.ok())
                    res.ok_runs.emplace(c.id, std::move(c.run));
        res.stats = sched.stats();
        const serve::FleetTelemetry &ft = sched.telemetry();
        res.routing_skew = ft.routingSkew();
        res.cache_hit_variance = ft.cacheHitVariance();
        res.hedges_launched = ft.hedgesLaunched();
        res.hedge_wins = ft.hedgeWins();
        res.hedge_losses = ft.hedgeLosses();
        res.hedge_failed = ft.hedgeFailed();
        res.hedges_reconcile = ft.hedgesReconcile();
        return res;
    };

    JsonWriter jw;
    jw.field("bench", "fleet_serving")
        .field("smoke", args.smoke)
        .field("arch", acfg.array.name())
        .field("simd_kernel", benchSimdKernel())
        .field("replicas", R)
        .field("placement", serve::placementName(placement))
        .field("lanes_per_replica", clock.lanes)
        .field("clock_ghz", clock.clock_ghz, 1)
        .field("streams", streams)
        .field("scale_requests", scale_requests)
        .field("kill_requests", kill_requests)
        .field("cache_budget_mb", cache_budget_mb)
        .field("plan_store", !args.plan_store.empty())
        .field("cache_disabled", cache_disabled);

    // ---- Scaling: clean 10x-overloaded trace, fleet 1 -> R ------
    // The gate placement is always least-loaded (the throughput
    // placement); a saturating trace makes makespan the inverse
    // throughput, so the ratio of makespans is the scaling factor.
    const std::vector<TraceRequest> scale_trace =
        makeTrace(scale_requests, 10.0, 0xF1EE7A);
    const std::map<uint64_t, NetworkRun> scale_baseline =
        baselineRuns(scale_trace);

    std::vector<int> fleet_sizes{1};
    if (R > 2)
        fleet_sizes.push_back(2);
    if (R > 1)
        fleet_sizes.push_back(R);
    const serve::OverloadConfig no_overload;
    bool bitwise_ok_vs_single = true;
    double makespan_1 = 0.0, makespan_R = 0.0;
    std::printf("%-9s %-11s %-11s %-9s %s\n", "replicas",
                "makespan", "throughput", "scaling", "skew");
    for (const int f : fleet_sizes) {
        const FleetResult res = replay(
            scale_trace, f, acc, args.ctx.threads, nullptr,
            no_overload, serve::PlacementKind::LeastLoaded, 0.0,
            0.0, {});
        if (res.stats.completed != scale_requests) {
            s2ta_fatal("clean %d-replica replay completed %lld of "
                       "%d requests",
                       f,
                       static_cast<long long>(res.stats.completed),
                       scale_requests);
        }
        for (const auto &[id, run] : res.ok_runs) {
            if (!bitwiseEqualRuns(run, scale_baseline.at(id))) {
                bitwise_ok_vs_single = false;
                std::printf("  RUN MISMATCH vs single-accelerator "
                            "baseline on request %llu (%d "
                            "replicas)\n",
                            static_cast<unsigned long long>(id),
                            f);
            }
        }
        if (f == 1)
            makespan_1 = res.stats.makespan_s;
        if (f == R)
            makespan_R = res.stats.makespan_s;
        const double scaling =
            makespan_1 > 0.0 ? makespan_1 / res.stats.makespan_s
                             : 1.0;
        std::printf("%-9d %8.3f ms %8.1f r/s %7.2fx %6.3f\n", f,
                    res.stats.makespan_s * kMsPerS,
                    scale_requests / res.stats.makespan_s, scaling,
                    res.routing_skew);
        char key[32];
        std::snprintf(key, sizeof(key), "makespan_ms_r%d", f);
        jw.field(key, res.stats.makespan_s * kMsPerS, 4);
    }
    if (R == 1)
        makespan_R = makespan_1;
    const double scaling_x =
        makespan_R > 0.0 ? makespan_1 / makespan_R : 1.0;
    const double linear_frac = scaling_x / static_cast<double>(R);
    const bool scaling_ok = linear_frac >= 0.8;
    std::printf("\nscaling 1 -> %d replicas: %.2fx (%.0f%% of "
                "linear, gate >= 80%%)\n\n",
                R, scaling_x, 100.0 * linear_frac);

    // ---- Replica-kill schedule: crashes, brownouts, restarts, a
    // drain window, layer faults, failover, and hedging ----------
    const std::vector<TraceRequest> kill_trace =
        makeTrace(kill_requests, 2.0, 0xF1EE7B);
    const std::map<uint64_t, NetworkRun> kill_baseline =
        baselineRuns(kill_trace);
    const double horizon_s =
        kill_trace.back().arrival_s + 20.0 * mean_service_s;
    const double slot_s = 2.0 * mean_service_s;

    serve::OverloadConfig overload;
    overload.global_queue_cap = 48;
    overload.max_retries = 3;
    overload.retry_backoff_s = 0.25 * mean_service_s;
    const double detect_delay_s = 1.0 * mean_service_s;
    const double hedge_delay_s = 4.0 * mean_service_s;

    const auto killSchedule = [&](FaultInjector &fi) {
        std::vector<serve::ReplicaEvent> schedule =
            serve::deriveReplicaSchedule(fi, R, horizon_s, slot_s,
                                         /*brownout_slowdown=*/2.0);
        if (R > 1) {
            // A scripted maintenance drain on replica 0 rides on
            // top of the fault-derived lifecycle.
            schedule.push_back(
                {0, serve::ReplicaEvent::Kind::DrainStart,
                 0.25 * horizon_s, 1.0});
            schedule.push_back(
                {0, serve::ReplicaEvent::Kind::DrainEnd,
                 0.5 * horizon_s, 1.0});
        }
        return schedule;
    };

    FaultInjector fi(kFaultSeed);
    armInjector(fi);
    std::vector<serve::ReplicaEvent> schedule = killSchedule(fi);
    int64_t sched_crashes = 0;
    for (const serve::ReplicaEvent &ev : schedule)
        sched_crashes +=
            ev.kind == serve::ReplicaEvent::Kind::Crash ? 1 : 0;
    const FleetResult kill = replay(
        kill_trace, R, acc, args.ctx.threads, &fi, overload,
        placement, detect_delay_s, hedge_delay_s, schedule);
    const serve::FleetStats &st = kill.stats;

    // Gate: zero lost requests — every submission resolved exactly
    // once and the instance ledger balances.
    const bool zero_lost =
        st.requests == kill_requests && st.reconciles();

    // Gate: hedges reconcile (launched == wins + losses + failed).
    const bool hedges_ok = kill.hedges_reconcile;

    // Gate: lifecycle + fault counters match the injection plan
    // exactly (the derived schedule is rolled on the same
    // injector, so injected(ReplicaCrash) IS the crash count).
    const bool counters_reconcile =
        st.crashes == fi.injected(FaultSite::ReplicaCrash) &&
        st.crashes == sched_crashes &&
        st.restarts == fi.injected(FaultSite::ReplicaRestart) &&
        st.brownouts == fi.injected(FaultSite::ReplicaStall) &&
        st.layer_faults == fi.injected(FaultSite::LayerCompute) &&
        st.stall_events == fi.injected(FaultSite::LayerStall) &&
        st.drains == (R > 1 ? 1 : 0);

    // Gate: served results under the kill schedule are still
    // bitwise identical to the single-accelerator baseline.
    for (const auto &[id, run] : kill.ok_runs) {
        if (!bitwiseEqualRuns(run, kill_baseline.at(id))) {
            bitwise_ok_vs_single = false;
            std::printf("  RUN MISMATCH vs baseline on request "
                        "%llu (kill schedule)\n",
                        static_cast<unsigned long long>(id));
        }
    }

    std::printf("replica-kill: %lld crashes, %lld restarts, %lld "
                "brownouts, %lld drains | %lld instances lost, "
                "%lld failovers, hedges %lld (%lld won / %lld "
                "lost / %lld failed)\n"
                "outcomes: %lld ok, %lld shed, %lld failed "
                "(%lld compute, %lld crash) of %d | retries %lld, "
                "layer faults %lld, stalls %lld | skew %.3f, "
                "cache-hit variance %.4f\n\n",
                static_cast<long long>(st.crashes),
                static_cast<long long>(st.restarts),
                static_cast<long long>(st.brownouts),
                static_cast<long long>(st.drains),
                static_cast<long long>(st.lost_instances),
                static_cast<long long>(st.failovers),
                static_cast<long long>(kill.hedges_launched),
                static_cast<long long>(kill.hedge_wins),
                static_cast<long long>(kill.hedge_losses),
                static_cast<long long>(kill.hedge_failed),
                static_cast<long long>(st.completed),
                static_cast<long long>(st.shedTotal()),
                static_cast<long long>(st.failed),
                static_cast<long long>(st.failed_compute),
                static_cast<long long>(st.failed_crash),
                kill_requests,
                static_cast<long long>(st.retries),
                static_cast<long long>(st.layer_faults),
                static_cast<long long>(st.stall_events),
                kill.routing_skew, kill.cache_hit_variance);

    // Gate: the kill run is deterministic — rerun fully serial
    // with a fresh same-seed injector (the derived schedule is a
    // pure function of the seed, so it regenerates identically).
    AcceleratorConfig serial_cfg = acfg;
    serial_cfg.sim_threads = 1;
    const Accelerator serial_acc(serial_cfg);
    FaultInjector serial_fi(kFaultSeed);
    armInjector(serial_fi);
    const FleetResult serial = replay(
        kill_trace, R, serial_acc, 1, &serial_fi, overload,
        placement, detect_delay_s, hedge_delay_s,
        killSchedule(serial_fi));
    const bool deterministic_serial =
        serial.observed == kill.observed &&
        sameFleetStats(serial.stats, kill.stats);
    if (!deterministic_serial)
        std::printf("  SERIAL RERUN MISMATCH under the kill "
                    "schedule\n");

    std::printf("gates: scaling >= 0.8x-linear %s | ok-runs "
                "bitwise equal to single-accelerator %s | zero "
                "lost requests %s | hedges reconcile %s | "
                "counters reconcile %s | serial determinism %s\n",
                scaling_ok ? "ok" : "FAIL",
                bitwise_ok_vs_single ? "ok" : "FAIL",
                zero_lost ? "ok" : "FAIL",
                hedges_ok ? "ok" : "FAIL",
                counters_reconcile ? "ok" : "FAIL",
                deterministic_serial ? "ok" : "FAIL");

    jw.field("scaling_x", scaling_x, 3)
        .field("scaling_linear_frac", linear_frac, 3)
        .field("kill_crashes", st.crashes)
        .field("kill_restarts", st.restarts)
        .field("kill_brownouts", st.brownouts)
        .field("kill_drains", st.drains)
        .field("kill_lost_instances", st.lost_instances)
        .field("kill_failovers", st.failovers)
        .field("kill_hedges_launched", kill.hedges_launched)
        .field("kill_hedge_wins", kill.hedge_wins)
        .field("kill_hedge_losses", kill.hedge_losses)
        .field("kill_hedge_failed", kill.hedge_failed)
        .field("kill_completed", st.completed)
        .field("kill_shed", st.shedTotal())
        .field("kill_failed_compute", st.failed_compute)
        .field("kill_failed_crash", st.failed_crash)
        .field("kill_retries", st.retries)
        .field("kill_layer_faults", st.layer_faults)
        .field("kill_routing_skew", kill.routing_skew, 4)
        .field("kill_cache_hit_variance", kill.cache_hit_variance,
               6)
        .field("scaling_ok", scaling_ok)
        .field("bitwise_ok_vs_single", bitwise_ok_vs_single)
        .field("zero_lost", zero_lost)
        .field("hedges_reconcile", hedges_ok)
        .field("counters_reconcile", counters_reconcile)
        .field("deterministic_serial", deterministic_serial);
    jw.write(json_path);

    if (!scaling_ok)
        s2ta_fatal("fleet throughput scaled below 0.8x-linear");
    if (!bitwise_ok_vs_single)
        s2ta_fatal("a fleet-served result diverged from the "
                   "single-accelerator baseline");
    if (!zero_lost)
        s2ta_fatal("a submission was lost (requests != ok + shed "
                   "+ failed, or the instance ledger is "
                   "unbalanced)");
    if (!hedges_ok)
        s2ta_fatal("hedge counters do not reconcile");
    if (!counters_reconcile)
        s2ta_fatal("lifecycle counters do not reconcile with the "
                   "injection plan");
    if (!deterministic_serial)
        s2ta_fatal("the kill schedule is not deterministic under "
                   "serial rerun");
    return 0;
}
