/**
 * @file
 * Latency-aware serving QoS: a mixed multi-model request trace with
 * seeded open-loop Poisson arrivals and per-request deadlines,
 * replayed in *virtual time* (request service time = simulated
 * NetworkRun cycles at the accelerator clock) over N virtual lanes
 * under each admission policy (round-robin, earliest-deadline-
 * first, shortest-job-first), at several arrival rates.
 *
 * For every (rate, policy) the streaming telemetry reports exact
 * p50/p95/p99 latency, mean queueing delay, and the deadline-miss
 * rate; per-stream queueing breakdowns and the latency histogram
 * are printed for the gated (highest-load) rate. Three gates:
 *
 *  - EDF's deadline-miss rate <= round-robin's on the gated trace
 *    (the point of deadline-aware admission);
 *  - every policy produces bitwise-identical NetworkRuns (policies
 *    reorder timing, never computation);
 *  - virtual timings are identical when the whole bench reruns with
 *    serial simulation (threads cannot leak into virtual time).
 *
 * Usage: bench_latency_serving [--smoke] [--json PATH]
 *          [--threads N] [--arch s2ta-w|s2ta-aw] [--cache-mb N]
 *          [--spill-mb N] [--plan-store DIR]
 *        (--model / --no-plan-cache / --engine / --reps are
 *         rejected: the trace is mixed-model by definition, the
 *         shared budgeted cache is part of the scenario, results
 *         are engine-independent, and virtual time needs no
 *         best-of-N)
 *
 * Emits BENCH_latency_serving.json (schema checked in CI).
 */

#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"
#include "serve/telemetry.hh"

using namespace s2ta;
using namespace s2ta::bench;

namespace {

/** One trace entry: a zoo model at a batch size. */
struct TraceItem
{
    const char *model;
    int batch;
};

/** The deployed (model, batch) mix requests cycle through. */
std::vector<TraceItem>
traceItems(bool smoke)
{
    if (smoke) {
        return {{"lenet5", 1}, {"mobilenetv1", 1}, {"lenet5", 2},
                {"mobilenetv1", 2}, {"lenet5", 4}};
    }
    // Batches capped at 2: the nine-workload batch-4 mix would
    // outgrow any sane cache budget and LRU-thrash the (wall-clock)
    // simulation without changing the virtual-time results.
    return {{"resnet50", 1}, {"alexnet", 1}, {"mobilenetv1", 1},
            {"resnet50", 2}, {"alexnet", 2}, {"mobilenetv1", 2}};
}

/** One generated request of the open-loop trace. */
struct TraceRequest
{
    const ModelWorkload *workload = nullptr;
    int stream = 0;
    double arrival_s = 0.0;
    double deadline_s = serve::kNoDeadline;
};

/** Outcome of one (rate, policy) replay. */
struct PolicyResult
{
    serve::LatencyTelemetry telemetry;
    /** Per request id: the run, for cross-policy bitwise checks. */
    std::map<uint64_t, NetworkRun> runs;
    /** Per request id: (arrival, start, finish), for determinism
     *  checks. */
    std::map<uint64_t, std::array<double, 3>> timings;
};

constexpr double kMsPerS = 1e3;

} // anonymous namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(argc, argv);
    args.rejectFlag(!args.model.empty(), "--model",
                    "the latency trace mixes several models by "
                    "definition");
    args.rejectFlag(args.plan_cache_given, "--no-plan-cache",
                    "the shared budgeted plan cache is part of the "
                    "serving scenario");
    args.rejectFlag(args.engine_given, "--engine",
                    "virtual-time latencies are engine-independent "
                    "(cycle totals are bitwise equal across "
                    "engines); the simulation always runs the "
                    "plan-cached fast path");
    args.rejectFlag(args.reps_given, "--reps",
                    "virtual time is deterministic; there is no "
                    "wall-clock noise to best-of");
    args.rejectFlag(args.replicas_given, "--replicas",
                    "this bench serves one accelerator; fleet "
                    "scaling lives in bench_fleet_serving");
    args.rejectFlag(args.placement_given, "--placement",
                    "single-accelerator serving has nothing to "
                    "place; fleet routing lives in "
                    "bench_fleet_serving");
    const std::string json_path = args.json.empty()
                                      ? "BENCH_latency_serving.json"
                                      : args.json;

    banner("Latency-aware serving",
           "Virtual-clock QoS: Poisson arrivals + deadlines over "
           "virtual lanes under rr/edf/sjf admission");

    const std::vector<TraceItem> items = traceItems(args.smoke);
    const int streams = args.smoke ? 3 : 6;
    const int requests = args.smoke ? 15 : 36;
    const serve::VirtualClockConfig clock{/*lanes=*/2,
                                          /*clock_ghz=*/1.0};
    const int cache_budget_mb =
        args.cache_mb_given ? args.cache_mb : 2048;

    // One accelerator + one budgeted PlanCache for the whole
    // deployment; simulation threads only change wall clock, never
    // virtual time (gated below).
    AcceleratorConfig acfg;
    acfg.array = args.arch == "s2ta-w" ? ArrayConfig::s2taW()
                                       : ArrayConfig::s2taAw(4);
    acfg.sim_threads = args.ctx.threads;
    const Accelerator acc(acfg);
    BenchCache tiers(args, cache_budget_mb);

    NetworkRunOptions run_opt;
    run_opt.validate_operands = false;
    run_opt.plan_cache = tiers.cachePtr();

    // Servable workloads (generation cost is not serving cost) and
    // per-workload service estimates from one unmeasured pass —
    // which also warms the shared cache, as a deployment's first
    // requests would.
    serve::ModelRegistry registry;
    std::vector<const ModelWorkload *> deployed;
    std::map<const ModelWorkload *, double> est_service_s;
    for (const TraceItem &it : items) {
        const ModelWorkload &mw =
            registry.workload(it.model, it.batch);
        deployed.push_back(&mw);
        if (!est_service_s.count(&mw)) {
            const NetworkRun nr = acc.runNetwork(mw.layers, run_opt);
            est_service_s.emplace(
                &mw, clock.cyclesToSeconds(nr.total.cycles));
        }
    }

    // Offered load: rates are chosen relative to deployment
    // capacity (lanes / mean service time over the request mix), so
    // the same utilization points are exercised no matter the model
    // mix or architecture.
    double mean_service_s = 0.0;
    for (int i = 0; i < requests; ++i) {
        mean_service_s += est_service_s.at(
            deployed[static_cast<size_t>(i) % deployed.size()]);
    }
    mean_service_s /= requests;
    const double capacity_rps = clock.lanes / mean_service_s;
    const std::vector<double> utilizations =
        args.smoke ? std::vector<double>{0.7, 1.4}
                   : std::vector<double>{0.6, 1.0, 1.4};
    const size_t gated = utilizations.size() - 1;

    std::printf("trace: %d requests over %d streams, %zu deployed "
                "workloads | %d virtual lanes @ %.1f GHz, mean "
                "service %.3f ms, capacity %.1f req/s\n\n",
                requests, streams, deployed.size(), clock.lanes,
                clock.clock_ghz, mean_service_s * kMsPerS,
                capacity_rps);

    const std::vector<serve::PolicyKind> policies = {
        serve::PolicyKind::RoundRobin,
        serve::PolicyKind::EarliestDeadlineFirst,
        serve::PolicyKind::ShortestJobFirst,
    };

    // Replay one trace under one policy; simulation threads and the
    // accelerator are parameters so the determinism gate can rerun
    // the gated trace fully serial.
    const auto replay = [&](const std::vector<TraceRequest> &trace,
                            serve::PolicyKind kind,
                            const Accelerator &on, int threads) {
        PolicyResult pr;
        serve::StreamScheduler::Options opts;
        opts.run = run_opt;
        opts.threads = threads;
        opts.clock = clock;
        opts.policy = &serve::policyFor(kind);
        opts.on_complete = [&](const serve::Completion &c) {
            pr.telemetry.record(c.sample());
            pr.timings.emplace(
                c.id, std::array<double, 3>{c.arrival_s, c.start_s,
                                            c.finish_s});
        };
        serve::StreamScheduler sched(on, opts);
        for (const TraceRequest &r : trace) {
            sched.submit(r.stream, *r.workload, r.arrival_s,
                         r.deadline_s);
        }
        auto by_stream = sched.drain();
        for (auto &stream : by_stream)
            for (auto &c : stream)
                pr.runs.emplace(c.id, std::move(c.run));
        return pr;
    };

    JsonWriter jw;
    jw.field("bench", "latency_serving")
        .field("smoke", args.smoke)
        .field("arch", acfg.array.name())
        .field("simd_kernel", benchSimdKernel())
        .field("streams", streams)
        .field("requests", requests)
        .field("lanes", clock.lanes)
        .field("clock_ghz", clock.clock_ghz, 1)
        .field("rates_evaluated",
               static_cast<int64_t>(utilizations.size()))
        .field("mean_service_ms", mean_service_s * kMsPerS, 3)
        .field("cache_budget_mb", cache_budget_mb);

    bool bitwise_equal_policies = true;
    bool deterministic_timing = true;
    bool edf_le_rr = true;
    double gated_rr_miss = 0.0, gated_edf_miss = 0.0;

    for (size_t ri = 0; ri < utilizations.size(); ++ri) {
        const double util = utilizations[ri];
        const double rate = util * capacity_rps;

        // The trace is identical for every policy: seeded Poisson
        // arrivals, streams assigned round-robin, deadline =
        // arrival + slack x the workload's estimated service time
        // (slack uniform in [2, 10), seeded).
        Rng trace_rng(0xA221E5 + static_cast<uint64_t>(ri));
        const std::vector<double> arrivals =
            serve::poissonArrivals(requests, rate, trace_rng);
        std::vector<TraceRequest> trace(
            static_cast<size_t>(requests));
        for (int i = 0; i < requests; ++i) {
            TraceRequest &r = trace[static_cast<size_t>(i)];
            r.workload = deployed[static_cast<size_t>(i) %
                                  deployed.size()];
            r.stream = i % streams;
            r.arrival_s = arrivals[static_cast<size_t>(i)];
            const double slack = trace_rng.uniformReal(2.0, 10.0);
            r.deadline_s = r.arrival_s +
                           slack * est_service_s.at(r.workload);
        }

        std::printf("rate %.1f req/s (utilization %.1f)%s\n", rate,
                    util, ri == gated ? "  [gated]" : "");
        std::map<serve::PolicyKind, PolicyResult> results;
        for (const serve::PolicyKind kind : policies) {
            PolicyResult pr = replay(trace, kind, acc,
                                     args.ctx.threads);
            const serve::LatencyQuantiles q =
                pr.telemetry.quantiles();
            std::printf("  %-3s  p50 %8.3f ms  p95 %8.3f ms  p99 "
                        "%8.3f ms  miss %2lld/%2lld (%.0f%%)\n",
                        serve::policyName(kind), q.p50_s * kMsPerS,
                        q.p95_s * kMsPerS, q.p99_s * kMsPerS,
                        static_cast<long long>(
                            pr.telemetry.deadlineMisses()),
                        static_cast<long long>(
                            pr.telemetry.deadlineRequests()),
                        100.0 * pr.telemetry.missRate());
            results.emplace(kind, std::move(pr));
        }

        // Policies reorder timing, never computation.
        const PolicyResult &rr =
            results.at(serve::PolicyKind::RoundRobin);
        for (const serve::PolicyKind kind : policies) {
            const PolicyResult &pr = results.at(kind);
            for (const auto &[id, run] : rr.runs) {
                if (!bitwiseEqualRuns(run, pr.runs.at(id))) {
                    bitwise_equal_policies = false;
                    std::printf("  %s RUN MISMATCH on request "
                                "%llu\n", serve::policyName(kind),
                                static_cast<unsigned long long>(
                                    id));
                }
            }
        }

        if (ri == gated) {
            const PolicyResult &edf = results.at(
                serve::PolicyKind::EarliestDeadlineFirst);
            gated_rr_miss = rr.telemetry.missRate();
            gated_edf_miss = edf.telemetry.missRate();
            edf_le_rr = gated_edf_miss <= gated_rr_miss;
            jw.field("gated_rate_rps", rate, 3)
                .field("gated_utilization", util, 2);
            for (const serve::PolicyKind kind : policies) {
                const PolicyResult &pr = results.at(kind);
                const serve::LatencyQuantiles q =
                    pr.telemetry.quantiles();
                const std::string p = serve::policyName(kind);
                double queue_sum = 0.0;
                for (const auto &[stream, sd] :
                     pr.telemetry.byStream())
                    queue_sum += sd.queue_sum_s;
                jw.field(p + "_p50_ms", q.p50_s * kMsPerS, 4)
                    .field(p + "_p95_ms", q.p95_s * kMsPerS, 4)
                    .field(p + "_p99_ms", q.p99_s * kMsPerS, 4)
                    .field(p + "_mean_queue_ms",
                           queue_sum / pr.telemetry.count() *
                               kMsPerS, 4)
                    .field(p + "_deadline_misses",
                           pr.telemetry.deadlineMisses())
                    .field(p + "_deadline_miss_rate",
                           pr.telemetry.missRate(), 4);
            }

            // Per-stream queueing breakdown + latency histogram
            // under EDF: the streaming-telemetry showcase.
            std::printf("\n  per-stream queueing under edf:\n");
            for (const auto &[stream, sd] :
                 edf.telemetry.byStream()) {
                std::printf("    stream %d: %lld reqs, mean queue "
                            "%8.3f ms, max %8.3f ms, %lld "
                            "missed\n", stream,
                            static_cast<long long>(sd.requests),
                            sd.meanQueue() * kMsPerS,
                            sd.queue_max_s * kMsPerS,
                            static_cast<long long>(
                                sd.deadline_misses));
            }
            std::printf("  edf latency histogram:\n");
            for (const serve::HistogramBin &bin :
                 edf.telemetry.histogram()) {
                std::printf("    [%9.3f, %9.3f) ms: %lld\n",
                            bin.lo_s * kMsPerS, bin.hi_s * kMsPerS,
                            static_cast<long long>(bin.count));
            }

            // Determinism: the whole gated trace rerun with serial
            // simulation (fresh serial accelerator, one scheduler
            // lane) must reproduce every virtual timing bit for
            // bit under every policy.
            AcceleratorConfig serial_cfg = acfg;
            serial_cfg.sim_threads = 1;
            const Accelerator serial_acc(serial_cfg);
            for (const serve::PolicyKind kind : policies) {
                const PolicyResult serial =
                    replay(trace, kind, serial_acc, 1);
                const PolicyResult &pr = results.at(kind);
                if (serial.timings != pr.timings) {
                    deterministic_timing = false;
                    std::printf("  %s TIMING MISMATCH under serial "
                                "rerun\n", serve::policyName(kind));
                }
            }
        }
        std::printf("\n");
    }

    const PlanCache::Stats cs = tiers.cache.stats();
    const int64_t lookups =
        cs.hits + cs.spill_hits + cs.store_hits + cs.misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(cs.hits) /
                           static_cast<double>(lookups);
    std::printf("gates: edf miss %.0f%% vs rr %.0f%% (%s) | "
                "bitwise-equal policies %s | deterministic timing "
                "%s | cache hit rate %.1f%%\n",
                100.0 * gated_edf_miss, 100.0 * gated_rr_miss,
                edf_le_rr ? "ok" : "FAIL",
                bitwise_equal_policies ? "ok" : "FAIL",
                deterministic_timing ? "ok" : "FAIL",
                100.0 * hit_rate);

    jw.field("cache_hits", cs.hits)
        .field("cache_misses", cs.misses)
        .field("cache_evictions", cs.evictions)
        .field("cache_hit_rate", hit_rate, 4)
        .field("spill_budget_mb", args.spill_mb)
        .field("spill_hits", cs.spill_hits)
        .field("spill_evictions", cs.spill_evictions)
        .field("plan_store", !args.plan_store.empty())
        .field("store_hits", cs.store_hits)
        .field("edf_miss_le_rr", edf_le_rr)
        .field("bitwise_equal_policies", bitwise_equal_policies)
        .field("deterministic_timing", deterministic_timing);
    jw.write(json_path);

    if (!bitwise_equal_policies)
        s2ta_fatal("policies changed simulation results");
    if (!deterministic_timing)
        s2ta_fatal("virtual timings depend on thread count");
    if (!edf_le_rr) {
        s2ta_fatal("EDF misses %.1f%% of deadlines vs round-robin "
                   "%.1f%% on the gated trace",
                   100.0 * gated_edf_miss, 100.0 * gated_rr_miss);
    }
    return 0;
}
