/** @file Unit tests for the training substrate, including numerical
 *  gradient checks for every trainable layer. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/net.hh"

namespace s2ta {
namespace {

/** Scalar loss = sum of logits * coeffs, with analytic gradient. */
float
lossOf(const FloatTensor &out, const FloatTensor &coeffs)
{
    float l = 0.0f;
    for (int64_t i = 0; i < out.size(); ++i)
        l += out.flat(i) * coeffs.flat(i);
    return l;
}

/**
 * Numerical vs analytic input gradient for a single layer.
 * Perturbs each input element and compares the finite difference
 * against the backward() result.
 */
void
checkInputGradient(Layer &layer, FloatTensor x, double tol = 2e-2)
{
    Rng rng(99);
    FloatTensor out = layer.forward(x, true);
    FloatTensor coeffs(out.shape());
    for (int64_t i = 0; i < coeffs.size(); ++i)
        coeffs.flat(i) =
            static_cast<float>(rng.uniformReal(-1.0, 1.0));

    const FloatTensor gx = layer.backward(coeffs);
    ASSERT_EQ(gx.shape(), x.shape());

    const float eps = 1e-2f;
    // Probe a deterministic subset of elements.
    for (int64_t i = 0; i < x.size();
         i += std::max<int64_t>(1, x.size() / 17)) {
        FloatTensor xp = x;
        xp.flat(i) += eps;
        FloatTensor xm = x;
        xm.flat(i) -= eps;
        const float lp = lossOf(layer.forward(xp, false), coeffs);
        const float lm = lossOf(layer.forward(xm, false), coeffs);
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(gx.flat(i), numeric,
                    tol * std::max(1.0, std::fabs(numeric)))
            << "element " << i;
    }
}

FloatTensor
randomInput(std::vector<int> shape, uint64_t seed)
{
    Rng rng(seed);
    FloatTensor t(std::move(shape));
    for (int64_t i = 0; i < t.size(); ++i)
        t.flat(i) = static_cast<float>(rng.normal(0.0, 1.0));
    return t;
}

TEST(GradCheck, ConvLayer)
{
    Rng rng(1);
    ConvLayer conv(3, 4, 3, 1, rng);
    checkInputGradient(conv, randomInput({5, 5, 3}, 11));
}

TEST(GradCheck, DenseLayer)
{
    Rng rng(2);
    DenseLayer dense(10, 7, rng);
    checkInputGradient(dense, randomInput({10}, 12));
}

TEST(GradCheck, ReluLayer)
{
    ReluLayer relu;
    // Keep activations away from the kink for finite differences.
    FloatTensor x = randomInput({4, 4, 3}, 13);
    for (int64_t i = 0; i < x.size(); ++i)
        if (std::fabs(x.flat(i)) < 0.05f)
            x.flat(i) = 0.2f;
    checkInputGradient(relu, x);
}

TEST(GradCheck, DapLayerStraightThrough)
{
    // With DAP active, the gradient must be the binary keep mask:
    // surviving positions pass gradient, pruned ones block it.
    DapLayer dap(2, 8);
    FloatTensor x({1, 1, 8});
    const float vals[8] = {0.1f, -0.9f, 0.2f, 0.5f,
                           -0.05f, 0.3f, 0.02f, -0.01f};
    for (int c = 0; c < 8; ++c)
        x(0, 0, c) = vals[c];
    FloatTensor out = dap.forward(x, true);
    // Survivors: positions 1 (|-0.9|) and 3 (0.5).
    EXPECT_FLOAT_EQ(out(0, 0, 1), -0.9f);
    EXPECT_FLOAT_EQ(out(0, 0, 3), 0.5f);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 0.0f);

    FloatTensor go({1, 1, 8});
    go.fill(1.0f);
    const FloatTensor gx = dap.backward(go);
    for (int c = 0; c < 8; ++c)
        EXPECT_FLOAT_EQ(gx(0, 0, c), (c == 1 || c == 3) ? 1.0f : 0.0f);
}

TEST(Layers, MaxPoolForwardAndGradientRouting)
{
    MaxPoolLayer pool;
    FloatTensor x({4, 4, 1});
    for (int y = 0; y < 4; ++y)
        for (int xx = 0; xx < 4; ++xx)
            x(y, xx, 0) = static_cast<float>(y * 4 + xx);
    FloatTensor out = pool.forward(x, true);
    ASSERT_EQ(out.shape(), (std::vector<int>{2, 2, 1}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out(1, 1, 0), 15.0f);

    FloatTensor go({2, 2, 1});
    go.fill(1.0f);
    const FloatTensor gx = pool.backward(go);
    // Gradient flows only to the argmax positions.
    EXPECT_FLOAT_EQ(gx(1, 1, 0), 1.0f);
    EXPECT_FLOAT_EQ(gx(3, 3, 0), 1.0f);
    EXPECT_FLOAT_EQ(gx(0, 0, 0), 0.0f);
}

TEST(Layers, SoftmaxCrossEntropyGradient)
{
    FloatTensor logits({4});
    logits(0) = 1.0f;
    logits(1) = 2.0f;
    logits(2) = 0.5f;
    logits(3) = -1.0f;
    FloatTensor grad;
    const float loss = softmaxCrossEntropy(logits, 1, grad);
    EXPECT_GT(loss, 0.0f);
    // Gradient sums to zero and is negative only at the label.
    float sum = 0.0f;
    for (int i = 0; i < 4; ++i)
        sum += grad(i);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
    EXPECT_LT(grad(1), 0.0f);
    EXPECT_GT(grad(0), 0.0f);
}

TEST(Network, WeightDbbProjectionHoldsOnAllLayers)
{
    Rng rng(3);
    Network net;
    net.add<ConvLayer>(8, 8, 3, 1, rng);
    net.add<FlattenLayer>();
    net.add<DenseLayer>(8 * 6 * 6, 10, rng);

    net.applyWeightDbb(DbbSpec{2, 8});
    for (const auto &l : net.all()) {
        FloatTensor *w = l->weights();
        if (w == nullptr)
            continue;
        const int dim = l->dbbDim();
        ASSERT_GE(dim, 0);
        // Spot-check: count non-zeros along the blocking dim.
        // For conv (k,k,cin,cout): fix (0,0,*,0); for dense
        // (in,out): fix (*,0).
        int nz = 0;
        const int len = w->dim(dim);
        for (int c = 0; c < std::min(len, 8); ++c) {
            const float v = dim == 2 ? (*w)(0, 0, c, 0)
                                     : (*w)(c, 0);
            nz += v != 0.0f;
        }
        EXPECT_LE(nz, 2);
    }
}

TEST(Network, FakeQuantizeKeepsZeroAndBounds)
{
    Rng rng(4);
    Network net;
    net.add<DenseLayer>(16, 4, rng);
    FloatTensor *w = net.all()[0]->weights();
    (*w)(0, 0) = 0.0f;
    net.fakeQuantizeWeightsInt8();
    EXPECT_FLOAT_EQ((*w)(0, 0), 0.0f);
    // All values sit on the INT8 grid.
    float max_abs = 0.0f;
    for (int64_t i = 0; i < w->size(); ++i)
        max_abs = std::max(max_abs, std::fabs(w->flat(i)));
    const float scale = max_abs / 127.0f;
    for (int64_t i = 0; i < w->size(); ++i) {
        const float q = w->flat(i) / scale;
        EXPECT_NEAR(q, std::nearbyint(q), 1e-3f);
    }
}

} // anonymous namespace
} // namespace s2ta
