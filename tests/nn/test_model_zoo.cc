/** @file Sanity tests for the CNN layer-shape tables. */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"

namespace s2ta {
namespace {

TEST(ModelZoo, AlexNetGeometry)
{
    const ModelSpec m = alexNet();
    ASSERT_EQ(m.layers.size(), 8u); // 5 conv + 3 fc
    EXPECT_EQ(m.layers[0].shape.outH(), 55);
    EXPECT_EQ(m.layers[0].shape.out_c, 96);
    EXPECT_EQ(m.layers[4].shape.out_c, 256);
    EXPECT_EQ(m.layers[5].shape.in_c, 256 * 6 * 6);
    EXPECT_EQ(m.layers[7].shape.out_c, 1000);
    // Two-tower (grouped) AlexNet convolutions: the classic ~666
    // MMACs.
    EXPECT_GT(m.convMacs(), 600ll * 1000 * 1000);
    EXPECT_LT(m.convMacs(), 750ll * 1000 * 1000);
    EXPECT_EQ(m.layers[1].shape.groups, 2); // conv2 is 2-group
}

TEST(ModelZoo, Vgg16Geometry)
{
    const ModelSpec m = vgg16();
    ASSERT_EQ(m.layers.size(), 16u); // 13 conv + 3 fc
    EXPECT_EQ(m.layers[12].shape.outH(), 14);
    EXPECT_EQ(m.layers[13].shape.in_c, 512 * 7 * 7);
    // The canonical ~15.3 GMACs of VGG-16 convolutions.
    EXPECT_GT(m.convMacs(), 14ll * 1000 * 1000 * 1000);
    EXPECT_LT(m.convMacs(), 16ll * 1000 * 1000 * 1000);
}

TEST(ModelZoo, MobileNetV1Geometry)
{
    const ModelSpec m = mobileNetV1();
    ASSERT_EQ(m.layers.size(), 28u); // conv1 + 13*(dw+pw) + fc
    int dw = 0, pw = 0;
    for (const ModelLayer &l : m.layers) {
        dw += l.kind == LayerKind::Depthwise;
        pw += l.kind == LayerKind::Pointwise;
    }
    EXPECT_EQ(dw, 13);
    EXPECT_EQ(pw, 13);
    // The canonical ~569 MMACs of MobileNetV1 1.0-224.
    EXPECT_GT(m.totalMacs(), 520ll * 1000 * 1000);
    EXPECT_LT(m.totalMacs(), 620ll * 1000 * 1000);
    // Depthwise shapes are grouped per channel.
    for (const ModelLayer &l : m.layers) {
        if (l.kind == LayerKind::Depthwise) {
            EXPECT_EQ(l.shape.groups, l.shape.in_c);
            EXPECT_EQ(l.shape.out_c, l.shape.in_c);
        }
    }
}

TEST(ModelZoo, ResNet50Geometry)
{
    const ModelSpec m = resNet50();
    // 1 stem + 4 projections + 16 blocks x 3 convs + fc = 54.
    ASSERT_EQ(m.layers.size(), 54u);
    // The canonical ~3.8-4.1 GMACs of ResNet-50.
    EXPECT_GT(m.totalMacs(), 3500ll * 1000 * 1000);
    EXPECT_LT(m.totalMacs(), 4300ll * 1000 * 1000);
    // Stage transitions halve resolution and set channel widths.
    const ModelLayer &last = m.layers[m.layers.size() - 2];
    EXPECT_EQ(last.shape.outH(), 7);
    EXPECT_EQ(last.shape.out_c, 2048);
}

TEST(ModelZoo, LeNet5Geometry)
{
    const ModelSpec m = leNet5();
    ASSERT_EQ(m.layers.size(), 5u);
    EXPECT_EQ(m.layers[1].shape.outH(), 10);
    EXPECT_EQ(m.layers[2].shape.in_c, 400); // 5*5*16
    EXPECT_EQ(m.layers[4].shape.out_c, 10);
}

TEST(ModelZoo, AllShapesValidAndChained)
{
    for (const ModelSpec &m :
         {alexNet(), vgg16(), mobileNetV1(), resNet50(), leNet5()}) {
        for (const ModelLayer &l : m.layers) {
            EXPECT_TRUE(l.shape.valid())
                << m.name << "/" << l.name;
            EXPECT_GT(l.shape.denseMacs(), 0)
                << m.name << "/" << l.name;
        }
        EXPECT_GT(m.totalWeights(), 0);
    }
}

TEST(ModelZoo, BenchmarkModelsMatchPaperSet)
{
    const auto models = benchmarkModels();
    ASSERT_EQ(models.size(), 4u);
    EXPECT_EQ(models[0].name, "ResNet-50V1");
    EXPECT_EQ(models[1].name, "VGG-16");
    EXPECT_EQ(models[2].name, "MobileNetV1");
    EXPECT_EQ(models[3].name, "AlexNet");
}

} // anonymous namespace
} // namespace s2ta
