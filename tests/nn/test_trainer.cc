/** @file Training-loop tests: learning works, DBB fine-tuning keeps
 *  constraints and recovers accuracy (Table 3's qualitative shape). */

#include <gtest/gtest.h>

#include "core/weight_pruner.hh"
#include "nn/trainer.hh"

namespace s2ta {
namespace {

struct Testbed
{
    Dataset train;
    Dataset test;
};

Testbed
visionTestbed()
{
    SyntheticVisionConfig cfg;
    Rng rng(0xDA7A);
    Testbed tb;
    tb.train = makeSyntheticVision(600, cfg, rng);
    tb.test = makeSyntheticVision(200, cfg, rng);
    return tb;
}

TEST(Trainer, LearnsSyntheticVisionTask)
{
    const Testbed tb = visionTestbed();
    Rng rng(1);
    Network net = makeTestbedCnn(3, tb.train.num_classes, rng);

    const double before = evaluate(net, tb.test);
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.lr = 0.04f;
    cfg.lr_decay = 0.85f;
    const TrainResult res = train(net, tb.train, cfg);
    const double after = evaluate(net, tb.test);

    EXPECT_EQ(res.epochs_run, 6);
    EXPECT_GT(after, before + 0.2);
    EXPECT_GT(after, 0.55); // well above the 1/8 chance level
}

TEST(Trainer, MlpLearnsFeatureTask)
{
    SyntheticFeatureConfig fcfg;
    Rng drng(0xFEED);
    const Dataset tr = makeSyntheticFeatures(800, fcfg, drng);
    const Dataset te = makeSyntheticFeatures(200, fcfg, drng);
    Rng rng(2);
    Network net = makeTestbedMlp(fcfg.dim, fcfg.num_classes, rng);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.lr = 0.02f;
    train(net, tr, cfg);
    EXPECT_GT(evaluate(net, te), 0.8);
}

TEST(Trainer, WeightDbbFineTuneKeepsConstraint)
{
    const Testbed tb = visionTestbed();
    Rng rng(3);
    Network net = makeTestbedCnn(3, tb.train.num_classes, rng);

    TrainConfig base;
    base.epochs = 3;
    train(net, tb.train, base);

    TrainConfig ft;
    ft.epochs = 3;
    ft.lr = 0.02f;
    ft.use_weight_dbb = true;
    ft.weight_dbb = DbbSpec{4, 8};
    ft.weight_dbb_ramp = 2;
    train(net, tb.train, ft);

    // Every weight tensor satisfies 4/8 along its blocking dim.
    for (const auto &l : net.all()) {
        FloatTensor *w = l->weights();
        if (w == nullptr)
            continue;
        FloatTensor copy = *w;
        // Re-projecting must be a no-op if the constraint holds.
        pruneFloatTensorDbbAlongDim(copy, l->dbbDim(), DbbSpec{4, 8});
        for (int64_t i = 0; i < w->size(); ++i)
            EXPECT_FLOAT_EQ(copy.flat(i), w->flat(i));
    }
}

TEST(Trainer, FineTuningRecoversPruningLoss)
{
    // The Table-3 shape: naive DBB pruning hurts; fine-tuning with
    // the constraint in the loop recovers most of the loss.
    const Testbed tb = visionTestbed();
    Rng rng(4);
    Network net = makeTestbedCnn(3, tb.train.num_classes, rng);
    TrainConfig base;
    base.epochs = 4;
    train(net, tb.train, base);
    const double baseline = evaluate(net, tb.test);

    // Naive one-shot aggressive pruning, no fine-tuning.
    net.applyWeightDbb(DbbSpec{2, 8});
    const double naive = evaluate(net, tb.test);

    // Fine-tune under the same constraint.
    TrainConfig ft;
    ft.epochs = 3;
    ft.lr = 0.02f;
    ft.use_weight_dbb = true;
    ft.weight_dbb = DbbSpec{2, 8};
    ft.weight_dbb_ramp = 1;
    train(net, tb.train, ft);
    const double tuned = evaluate(net, tb.test);

    EXPECT_GE(tuned, naive);
    EXPECT_GT(tuned, baseline - 0.10);
}

TEST(Trainer, DapFineTuneRecoversAccuracy)
{
    const Testbed tb = visionTestbed();
    Rng rng(5);
    Network net = makeTestbedCnn(3, tb.train.num_classes, rng);
    TrainConfig base;
    base.epochs = 4;
    train(net, tb.train, base);
    const double baseline = evaluate(net, tb.test);

    // Turn DAP on at 2/8 without fine-tuning.
    net.enableDap(2);
    const double raw = evaluate(net, tb.test);

    // DAP-aware fine-tuning (straight-through gradients).
    TrainConfig ft;
    ft.epochs = 3;
    ft.lr = 0.02f;
    train(net, tb.train, ft);
    const double tuned = evaluate(net, tb.test);

    EXPECT_GE(tuned + 0.02, raw); // never meaningfully worse
    EXPECT_GT(tuned, baseline - 0.12);
}

TEST(Trainer, DeterministicGivenSeeds)
{
    const Testbed tb = visionTestbed();
    auto run = [&tb]() {
        Rng rng(6);
        Network net = makeTestbedCnn(3, tb.train.num_classes, rng);
        TrainConfig cfg;
        cfg.epochs = 2;
        train(net, tb.train, cfg);
        return evaluate(net, tb.test);
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // anonymous namespace
} // namespace s2ta
