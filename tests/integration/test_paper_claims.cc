/** @file End-to-end checks of the paper's headline claims (Sec. 8):
 *  the shape of every key comparison must hold in this model. */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "arch/models.hh"
#include "core/dap.hh"
#include "core/weight_pruner.hh"
#include "energy/energy_model.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

struct DesignResult
{
    double energy_pj = 0.0;
    double speedup = 1.0;
    EnergyBreakdown breakdown;
    EventCounts events;
};

/**
 * Run the Fig. 10 experiment: a typical convolution layer with 50%
 * (4/8) weight and 62.5% (3/8) activation sparsity, on every design.
 */
class Fig10Experiment : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Rng rng(0xF16);
        // A typical mid-network convolution GEMM.
        GemmProblem base =
            makeUnstructuredGemm(512, 1152, 256, 0.5, 0.625, rng);
        pruneWeightsDbb(base, DbbSpec{4, 8});
        GemmProblem structured = base;
        const DapStats dap_stats =
            dapPruneActivations(structured, 3);

        RunOptions opt;
        opt.compute_output = false;

        auto eval = [&](const ArrayConfig &cfg,
                        const GemmProblem &p,
                        bool add_dap) {
            AcceleratorConfig acfg;
            acfg.array = cfg;
            const EnergyModel em(TechParams::tsmc16(), acfg);
            GemmRun run = makeArrayModel(cfg)->run(p, opt);
            if (add_dap)
                run.events.dap_comparisons = dap_stats.comparisons;
            DesignResult r;
            r.events = run.events;
            r.breakdown = em.energy(run.events);
            r.energy_pj = r.breakdown.totalPj();
            return r;
        };

        results = new std::map<std::string, DesignResult>;
        // All designs consume the same deployed (pruned) model.
        (*results)["SA"] = eval(ArrayConfig::sa(), structured,
                                false);
        (*results)["SA-ZVCG"] =
            eval(ArrayConfig::saZvcg(), structured, false);
        (*results)["SMT-T2Q2"] =
            eval(ArrayConfig::saSmt(2), structured, false);
        (*results)["SMT-T2Q4"] =
            eval(ArrayConfig::saSmt(4), structured, false);
        (*results)["S2TA-W"] =
            eval(ArrayConfig::s2taW(), structured, false);
        (*results)["S2TA-AW"] =
            eval(ArrayConfig::s2taAw(3), structured, true);

        const int64_t base_cycles =
            (*results)["SA-ZVCG"].events.cycles;
        for (auto &[name, r] : *results) {
            r.speedup = static_cast<double>(base_cycles) /
                        static_cast<double>(r.events.cycles);
        }
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        results = nullptr;
    }

    static const DesignResult &
    get(const std::string &name)
    {
        return results->at(name);
    }

    static std::map<std::string, DesignResult> *results;
};

std::map<std::string, DesignResult> *Fig10Experiment::results =
    nullptr;

TEST_F(Fig10Experiment, SmtGainsSpeedButLosesEnergy)
{
    // Fig. 10: SMT variants are 1.7-1.9x faster than SA-ZVCG but
    // burn ~40% more energy (43.0% T2Q2, 41.2% T2Q4).
    const double base = get("SA-ZVCG").energy_pj;
    for (const char *name : {"SMT-T2Q2", "SMT-T2Q4"}) {
        const DesignResult &r = get(name);
        EXPECT_GT(r.speedup, 1.4) << name;
        EXPECT_LT(r.speedup, 2.0) << name;
        EXPECT_GT(r.energy_pj / base, 1.15) << name;
        EXPECT_LT(r.energy_pj / base, 1.75) << name;
    }
}

TEST_F(Fig10Experiment, S2taWGets2xAndModestEnergyWin)
{
    const DesignResult &w = get("S2TA-W");
    EXPECT_NEAR(w.speedup, 2.0, 0.2);
    // Sec. 8.4 item 3: S2TA-W alone reduces energy only marginally
    // (paper: 1.13x vs SA-ZVCG).
    const double reduction = get("SA-ZVCG").energy_pj / w.energy_pj;
    EXPECT_GT(reduction, 1.0);
    EXPECT_LT(reduction, 1.6);
}

TEST_F(Fig10Experiment, S2taAwWinsOnBothAxes)
{
    const DesignResult &aw = get("S2TA-AW");
    // 3/8 A-DBB: speedup 8/3 = 2.67x (Fig. 10 shows 2.7x).
    EXPECT_NEAR(aw.speedup, 8.0 / 3.0, 0.25);
    // Paper Fig. 10: ~2x energy reduction vs SA-ZVCG on this layer.
    const double reduction =
        get("SA-ZVCG").energy_pj / aw.energy_pj;
    EXPECT_GT(reduction, 1.5);
    EXPECT_LT(reduction, 3.2);
    // And it beats S2TA-W clearly (paper: 1.84x on full models).
    EXPECT_GT(get("S2TA-W").energy_pj / aw.energy_pj, 1.3);
}

TEST_F(Fig10Experiment, SramEnergyDropIsTheAwMechanism)
{
    // Fig. 10: "the energy benefits of S2TA-AW mainly come from a
    // ~3x reduction in the SRAM energy" vs S2TA-W.
    const double w_sram = get("S2TA-W").breakdown.sramPj();
    const double aw_sram = get("S2TA-AW").breakdown.sramPj();
    EXPECT_GT(w_sram / aw_sram, 2.0);
    EXPECT_LT(w_sram / aw_sram, 4.5);
}

TEST_F(Fig10Experiment, FifoBufferEnergyIsTheSmtPenalty)
{
    // The SMT penalty must come from PE buffers (staging FIFOs),
    // not from SRAM or MAC differences.
    const double smt_buf =
        get("SMT-T2Q2").breakdown.at(Component::PeBuffers);
    const double zvcg_buf =
        get("SA-ZVCG").breakdown.at(Component::PeBuffers);
    EXPECT_GT(smt_buf / zvcg_buf, 1.5);
}

TEST_F(Fig10Experiment, DapOverheadIsSmall)
{
    // Table 2: the DAP array is ~2% of total power.
    const DesignResult &aw = get("S2TA-AW");
    EXPECT_LT(aw.breakdown.share(Component::Dap), 0.06);
    EXPECT_GT(aw.breakdown.at(Component::Dap), 0.0);
}

TEST_F(Fig10Experiment, ZvcgBeatsPlainSaOnEnergyOnly)
{
    EXPECT_LT(get("SA-ZVCG").energy_pj, get("SA").energy_pj);
    EXPECT_EQ(get("SA").events.cycles,
              get("SA-ZVCG").events.cycles);
}

TEST(PaperClaims, Fig9dSpeedupSeries)
{
    // Fig. 9d reports the speedup series 1.0, 1.3, 2.0, 2.7, 4.0,
    // 8.0 across activation DBB sparsity 0..87.5%.
    Rng rng(0x9D);
    RunOptions opt;
    opt.compute_output = false;
    const int64_t base =
        makeArrayModel(ArrayConfig::saZvcg())
            ->run(makeDbbGemm(128, 4096, 64, 4, 8, rng), opt)
            .events.cycles;
    const struct { int nnz; double expect; } series[] = {
        {8, 1.0}, {6, 1.3}, {4, 2.0}, {3, 2.7}, {2, 4.0}, {1, 8.0},
    };
    for (const auto &pt : series) {
        GemmProblem p = makeDbbGemm(128, 4096, 64, 4, pt.nnz, rng);
        const int64_t cycles =
            makeArrayModel(ArrayConfig::s2taAw(pt.nnz))
                ->run(p, opt).events.cycles;
        EXPECT_NEAR(static_cast<double>(base) / cycles, pt.expect,
                    pt.expect * 0.08)
            << "NNZ_a=" << pt.nnz;
    }
}

TEST(PaperClaims, Fig9aZvcgEnergyFallsWeaklyNoSpeedup)
{
    Rng rng(0x9A);
    RunOptions opt;
    opt.compute_output = false;
    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::saZvcg();
    const EnergyModel em(TechParams::tsmc16(), acfg);

    double prev_energy = 1e30;
    double dense_energy = -1.0;
    int64_t first_cycles = -1;
    for (int wgt_sparsity : {0, 25, 50, 75}) {
        GemmProblem p = makeUnstructuredGemm(
            128, 1024, 64, wgt_sparsity / 100.0, 0.5, rng);
        const GemmRun run =
            makeArrayModel(acfg.array)->run(p, opt);
        const double e = em.energy(run.events).totalPj();
        EXPECT_LT(e, prev_energy) << wgt_sparsity;
        prev_energy = e;
        if (dense_energy < 0.0)
            dense_energy = e;
        // "weakly": even 75% weight sparsity saves < 50% energy
        // relative to dense weights (Fig. 9a).
        if (wgt_sparsity == 75) {
            EXPECT_GT(e / dense_energy, 0.5);
        }
        if (first_cycles < 0)
            first_cycles = run.events.cycles;
        EXPECT_EQ(run.events.cycles, first_cycles);
    }
}

} // anonymous namespace
} // namespace s2ta
