/** @file Property tests for batch > 1: a batched run is bitwise
 *  identical to the concatenation of the per-sample runs — at the
 *  im2col level (batched GEMM operands are the stacked per-sample
 *  operands), at the layer level (output slice s equals sample s's
 *  output) on every engine, at every shard lane count, and with the
 *  plan cache on or off. Batch folds into the GEMM M axis, so no
 *  engine may observe anything but a taller activation matrix. */

#include <gtest/gtest.h>

#include <cstring>

#include "arch/accelerator.hh"
#include "arch/plan_cache.hh"
#include "workload/model_workloads.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/**
 * A batched workload with *distinct* random samples (replication
 * would hide sample-indexing bugs that alias one sample's rows onto
 * another's).
 */
LayerWorkload
batchedLayer(const Conv2dShape &shape, int batch, int act_nnz,
             int wgt_nnz, Rng &rng)
{
    LayerWorkload wl;
    wl.name = "batched";
    wl.shape = shape;
    wl.batch = batch;
    wl.act_nnz = act_nnz;
    wl.wgt_nnz = wgt_nnz;

    std::vector<int> in_shape = {shape.in_h, shape.in_w,
                                 shape.in_c};
    if (batch > 1)
        in_shape.insert(in_shape.begin(), batch);
    wl.input = act_nnz >= 8
                   ? makeUnstructuredTensor(in_shape, 0.3, rng)
                   : makeDbbTensor(in_shape, act_nnz, rng);

    // W-DBB blocks run along the input-channel dimension: generate
    // channel-innermost and transpose into (kh, kw, gc, oc).
    const int gc = shape.groupInC();
    const Int8Tensor tmp = makeDbbTensor(
        {shape.kernel_h, shape.kernel_w, shape.out_c, gc},
        std::min(wgt_nnz, gc), rng);
    wl.weights = Int8Tensor(
        {shape.kernel_h, shape.kernel_w, gc, shape.out_c});
    for (int ky = 0; ky < shape.kernel_h; ++ky)
        for (int kx = 0; kx < shape.kernel_w; ++kx)
            for (int c = 0; c < gc; ++c)
                for (int oc = 0; oc < shape.out_c; ++oc)
                    wl.weights(ky, kx, c, oc) = tmp(ky, kx, oc, c);
    return wl;
}

/** Sample @p s of a batched workload as a standalone batch-1 one. */
LayerWorkload
sampleOf(const LayerWorkload &b, int s)
{
    LayerWorkload wl;
    wl.name = b.name + "/sample";
    wl.shape = b.shape;
    wl.batch = 1;
    wl.act_nnz = b.act_nnz;
    wl.wgt_nnz = b.wgt_nnz;
    wl.weights = b.weights;
    wl.input = Int8Tensor(
        {b.shape.in_h, b.shape.in_w, b.shape.in_c});
    const size_t sample_bytes =
        static_cast<size_t>(wl.input.size());
    std::memcpy(wl.input.data(),
                b.input.data() +
                    static_cast<size_t>(s) * sample_bytes,
                sample_bytes);
    return wl;
}

/** The shapes under test: plain conv (with padding), grouped,
 *  depthwise, strided, and FC (the skinny-m tile-fold path). */
std::vector<Conv2dShape>
testShapes()
{
    return {
        {16, 6, 6, 24, 3, 3, 1, 1, 1},  // conv 3x3 pad 1
        {16, 8, 8, 16, 3, 3, 1, 1, 4},  // grouped conv
        {16, 8, 8, 16, 3, 3, 1, 1, 16}, // depthwise
        {8, 9, 9, 12, 3, 3, 2, 0, 1},   // strided, ragged edge
        {64, 1, 1, 32, 1, 1, 1, 0, 1},  // FC (skinny-m fold)
    };
}

TEST(BatchEquivalence, Im2colStacksPerSampleRows)
{
    Rng rng(0xBA7C);
    for (const Conv2dShape &shape : testShapes()) {
        const int batch = 3;
        const LayerWorkload wl =
            batchedLayer(shape, batch, 4, 4, rng);
        const auto batched = im2colLowerAll(shape, wl.input,
                                            wl.weights, 8, batch);
        ASSERT_EQ(batched.size(),
                  static_cast<size_t>(shape.groups));
        for (int g = 0; g < shape.groups; ++g) {
            const GemmProblem &bp =
                batched[static_cast<size_t>(g)];
            const int per_m = shape.outH() * shape.outW();
            ASSERT_EQ(bp.m, batch * per_m);
            for (int s = 0; s < batch; ++s) {
                const LayerWorkload one = sampleOf(wl, s);
                const GemmProblem sp = im2colLower(
                    shape, one.input, one.weights, g, 8);
                ASSERT_EQ(sp.m, per_m);
                ASSERT_EQ(sp.k, bp.k);
                // Weight operand identical, activation rows of
                // sample s are rows [s*per_m, (s+1)*per_m).
                EXPECT_EQ(sp.w, bp.w);
                EXPECT_EQ(0, std::memcmp(
                                 sp.a.data(),
                                 bp.a.data() +
                                     static_cast<size_t>(s) *
                                         per_m * bp.k,
                                 sp.a.size()))
                    << "group " << g << " sample " << s;
            }
        }
    }
}

/** Slice sample @p s out of a batched layer output. */
std::vector<int32_t>
outputSlice(const LayerRun &lr, const Conv2dShape &shape, int s)
{
    const int64_t per_sample = static_cast<int64_t>(shape.outH()) *
                               shape.outW() * shape.out_c;
    std::vector<int32_t> out(static_cast<size_t>(per_sample));
    std::memcpy(out.data(),
                lr.output.data() +
                    static_cast<size_t>(s) * per_sample,
                static_cast<size_t>(per_sample) * sizeof(int32_t));
    return out;
}

TEST(BatchEquivalence, LayerRunMatchesPerSampleRunsOnEveryEngine)
{
    Rng rng(0xBA7D);
    for (const Conv2dShape &shape : testShapes()) {
        const int batch = 3;
        const LayerWorkload wl =
            batchedLayer(shape, batch, 4, 4, rng);
        for (const EngineKind engine :
             {EngineKind::Scalar, EngineKind::DbbFast}) {
            AcceleratorConfig cfg;
            cfg.array = ArrayConfig::s2taAw(4);
            cfg.sim_threads = 1;
            const Accelerator acc(cfg);
            NetworkRunOptions opt;
            opt.compute_output = true;
            opt.engine = engine;

            const LayerRun br = acc.runLayer(wl, opt);
            ASSERT_EQ(br.output.dim(0), batch);
            EXPECT_EQ(br.batch, batch);
            for (int s = 0; s < batch; ++s) {
                const LayerRun sr =
                    acc.runLayer(sampleOf(wl, s), opt);
                const auto slice = outputSlice(br, shape, s);
                ASSERT_EQ(static_cast<int64_t>(slice.size()),
                          sr.output.size());
                EXPECT_EQ(0, std::memcmp(slice.data(),
                                         sr.output.data(),
                                         slice.size() *
                                             sizeof(int32_t)))
                    << "engine "
                    << (engine == EngineKind::Scalar ? "scalar"
                                                     : "fast")
                    << " sample " << s;
            }
        }
    }
}

TEST(BatchEquivalence, EnginesAgreeOnBatchedEventsAndOutputs)
{
    Rng rng(0xBA7E);
    for (const Conv2dShape &shape : testShapes()) {
        const LayerWorkload wl = batchedLayer(shape, 4, 4, 4, rng);
        AcceleratorConfig cfg;
        cfg.array = ArrayConfig::s2taAw(4);
        cfg.sim_threads = 1;
        const Accelerator acc(cfg);
        NetworkRunOptions fast;
        fast.compute_output = true;
        NetworkRunOptions scalar = fast;
        scalar.engine = EngineKind::Scalar;
        const LayerRun fr = acc.runLayer(wl, fast);
        const LayerRun sr = acc.runLayer(wl, scalar);
        EXPECT_TRUE(fr.output == sr.output);
        EXPECT_TRUE(fr.events == sr.events);
        EXPECT_EQ(fr.dense_macs,
                  wl.shape.denseMacs() * wl.batch);
    }
}

TEST(BatchEquivalence, ShardLaneCountsAndPlanCacheAreInvisible)
{
    Rng rng(0xBA7F);
    // Big enough that the batched tile grid splits into several row
    // stripes, so sharding genuinely kicks in.
    const Conv2dShape shape = {16, 12, 12, 24, 3, 3, 1, 1, 1};
    const LayerWorkload wl = batchedLayer(shape, 4, 4, 4, rng);

    AcceleratorConfig serial_cfg;
    serial_cfg.array = ArrayConfig::s2taAw(4);
    serial_cfg.sim_threads = 1;
    NetworkRunOptions opt;
    opt.compute_output = true;
    const LayerRun ref = Accelerator(serial_cfg).runLayer(wl, opt);

    // Shard lane counts: 0 = hardware-sized global pool, dedicated
    // 2- and 4-lane pools.
    for (int threads : {0, 2, 4}) {
        AcceleratorConfig cfg = serial_cfg;
        cfg.sim_threads = threads;
        const LayerRun lr = Accelerator(cfg).runLayer(wl, opt);
        EXPECT_TRUE(lr.output == ref.output)
            << "threads " << threads;
        EXPECT_TRUE(lr.events == ref.events)
            << "threads " << threads;
    }

    // Plan cache: miss pass, then a hit pass, both bitwise equal to
    // the uncached run.
    PlanCache cache;
    NetworkRunOptions cached = opt;
    cached.plan_cache = &cache;
    const Accelerator acc(serial_cfg);
    const LayerRun miss = acc.runLayer(wl, cached);
    const LayerRun hit = acc.runLayer(wl, cached);
    EXPECT_GT(cache.stats().hits, 0);
    for (const LayerRun *lr : {&miss, &hit}) {
        EXPECT_TRUE(lr->output == ref.output);
        EXPECT_TRUE(lr->events == ref.events);
    }
}

TEST(BatchEquivalence, WithBatchReplicatesSamples)
{
    Rng rng(0xBA80);
    const ModelWorkload base =
        buildModelWorkload(leNet5(), rng);
    const ModelWorkload b3 = withBatch(base, 3);
    ASSERT_EQ(b3.layers.size(), base.layers.size());
    for (size_t i = 0; i < b3.layers.size(); ++i) {
        const LayerWorkload &bl = b3.layers[i];
        EXPECT_EQ(bl.batch, 3);
        EXPECT_TRUE(bl.weights == base.layers[i].weights);
        ASSERT_EQ(bl.input.size(),
                  3 * base.layers[i].input.size());
        for (int s = 0; s < 3; ++s) {
            EXPECT_EQ(0,
                      std::memcmp(
                          bl.input.data() +
                              static_cast<size_t>(s) *
                                  base.layers[i].input.size(),
                          base.layers[i].input.data(),
                          static_cast<size_t>(
                              base.layers[i].input.size())));
        }
    }
}

} // anonymous namespace
} // namespace s2ta
