/** @file Seeded conv-shape fuzzer: a randomized sweep over kernel
 *  sizes (square and rectangular), odd strides, paddings, grouped
 *  and depthwise fan-outs, and batches, asserting on every shape
 *  that the fast DBB engine matches the scalar reference engine bit
 *  for bit (outputs and event counters), and — at batch 1 — that
 *  both match the direct convolution reference.
 *
 *  Reproducing a failure: every trial derives its own seed and the
 *  failure message carries it. Re-run just that trial with
 *
 *      S2TA_FUZZ_SEED=<seed> ctest -R integration/test_conv_fuzz
 *
 *  (any base accepted by strtoull, so the printed hex form pastes
 *  directly). When the env var is set the sweep collapses to that
 *  single seed.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/accelerator.hh"
#include "tensor/conv.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/**
 * One fuzzed conv layer. Spatial geometry is unconstrained (the
 * h/w floor of 6 keeps every kernel/stride/pad draw valid), but the
 * channel structure follows the safe (groups, group-channels)
 * table: makeDbbTensor structures its nnz bound over flat 8-blocks,
 * so in_c must be a multiple of 8 and each group's channel segment
 * must not straddle an 8-block boundary or im2col re-blocking could
 * exceed the declared DBB bound.
 */
LayerWorkload
fuzzLayer(Rng &rng)
{
    LayerWorkload wl;
    wl.name = "fuzz";

    struct Pick
    {
        int groups, gc;
    };
    const Pick picks[] = {{1, 8}, {1, 16}, {2, 4},  {2, 8},
                          {4, 4}, {8, 4},  {16, 1}};
    const Pick pick = picks[rng.uniformInt(0, std::size(picks) - 1)];
    const int gc = pick.gc;
    const int in_c = pick.gc * pick.groups;
    const int goc = pick.groups >= 8
                        ? static_cast<int>(rng.uniformInt(1, 2))
                        : static_cast<int>(rng.uniformInt(1, 3));
    const int out_c = goc * pick.groups;

    const int kern_pick[] = {1, 2, 3, 5};
    const int kh = kern_pick[rng.uniformInt(0, std::size(kern_pick) - 1)];
    const int kw = kern_pick[rng.uniformInt(0, std::size(kern_pick) - 1)];
    const int h = static_cast<int>(rng.uniformInt(6, 14));
    const int w = static_cast<int>(rng.uniformInt(6, 14));
    const int stride = static_cast<int>(rng.uniformInt(1, 3));
    const int pad = static_cast<int>(rng.uniformInt(0, 2));
    const int batch = static_cast<int>(rng.uniformInt(1, 3));

    wl.shape = {in_c, h, w, out_c, kh, kw, stride, pad, pick.groups};
    wl.batch = batch;
    const int act_bounds[] = {1, 2, 4, 8};
    wl.act_nnz =
        act_bounds[rng.uniformInt(0, std::size(act_bounds) - 1)];
    wl.wgt_nnz = static_cast<int>(rng.uniformInt(1, 8));

    std::vector<int> in_shape = {h, w, in_c};
    if (batch > 1)
        in_shape.insert(in_shape.begin(), batch);
    wl.input = makeDbbTensor(in_shape, wl.act_nnz, rng);

    // W-DBB blocks run along the input-channel dimension: generate
    // channel-innermost and transpose into (kh, kw, gc, oc).
    const Int8Tensor tmp = makeDbbTensor(
        {kh, kw, out_c, gc}, std::min(wl.wgt_nnz, gc), rng);
    wl.weights = Int8Tensor({kh, kw, gc, out_c});
    for (int ky = 0; ky < kh; ++ky)
        for (int kx = 0; kx < kw; ++kx)
            for (int c = 0; c < gc; ++c)
                for (int oc = 0; oc < out_c; ++oc)
                    wl.weights(ky, kx, c, oc) = tmp(ky, kx, oc, c);
    return wl;
}

std::string
describe(const LayerWorkload &wl, uint64_t seed)
{
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "conv %dx%dx%d -> %d k%dx%d s%d p%d g%d b%d A%d W%d; "
        "repro: S2TA_FUZZ_SEED=0x%llx ctest -R "
        "integration/test_conv_fuzz",
        wl.shape.in_h, wl.shape.in_w, wl.shape.in_c, wl.shape.out_c,
        wl.shape.kernel_h, wl.shape.kernel_w, wl.shape.stride,
        wl.shape.pad, wl.shape.groups, wl.batch, wl.act_nnz,
        wl.wgt_nnz, static_cast<unsigned long long>(seed));
    return buf;
}

/** Run one seed's layer on the fast and scalar engines and check
 *  them against each other (and the direct reference at batch 1). */
void
fuzzOneSeed(uint64_t seed)
{
    Rng rng(seed);
    const LayerWorkload wl = fuzzLayer(rng);
    SCOPED_TRACE(describe(wl, seed));

    AcceleratorConfig cfg;
    cfg.array = ArrayConfig::s2taAw(4);
    cfg.sim_threads = 1;
    const Accelerator acc(cfg);

    NetworkRunOptions fast;
    fast.compute_output = true;
    NetworkRunOptions scalar = fast;
    scalar.engine = EngineKind::Scalar;

    const LayerRun fr = acc.runLayer(wl, fast);
    const LayerRun sr = acc.runLayer(wl, scalar);
    EXPECT_TRUE(fr.output == sr.output) << "fast/scalar output";
    EXPECT_TRUE(fr.events == sr.events) << "fast/scalar events";
    EXPECT_EQ(fr.dense_macs, sr.dense_macs);
    EXPECT_EQ(fr.h2d_bytes, sr.h2d_bytes);
    EXPECT_EQ(fr.d2h_bytes, sr.d2h_bytes);

    if (wl.batch == 1) {
        const Int32Tensor ref =
            convReference(wl.shape, wl.input, wl.weights);
        EXPECT_TRUE(sr.output == ref) << "scalar vs direct reference";
    }
}

TEST(ConvFuzz, RandomShapeSweepFastVsScalar)
{
    if (const char *env = std::getenv("S2TA_FUZZ_SEED")) {
        // Single-seed repro mode.
        fuzzOneSeed(std::strtoull(env, nullptr, 0));
        return;
    }
    const uint64_t base = 0xF0220000ULL;
    for (int trial = 0; trial < 48; ++trial) {
        fuzzOneSeed(base + static_cast<uint64_t>(trial));
        if (::testing::Test::HasFailure()) {
            // One broken shape is enough; later trials would bury
            // the repro line.
            break;
        }
    }
}

} // anonymous namespace
} // namespace s2ta
