/** @file Property tests for the DBB-native fast engine: across
 *  random shapes, sparsity bounds, grouped/depthwise layers, and
 *  the skinny-m/skinny-n tile-fold paths, the fast path's outputs
 *  and event counts must match the scalar engine and gemmReference
 *  bit for bit. */

#include <gtest/gtest.h>

#include "arch/accelerator.hh"
#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "base/thread_pool.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

RunOptions
engineOpt(EngineKind engine)
{
    RunOptions opt;
    opt.compute_output = true;
    opt.engine = engine;
    return opt;
}

void
expectEnginesAgree(const ArrayConfig &cfg, const GemmProblem &p,
                   const char *what)
{
    const auto model = makeArrayModel(cfg);
    const GemmRun fast = model->run(p, engineOpt(EngineKind::DbbFast));
    const GemmRun scalar =
        model->run(p, engineOpt(EngineKind::Scalar));
    const auto ref = gemmReference(p);
    EXPECT_EQ(fast.output, ref) << cfg.name() << " fast: " << what;
    EXPECT_EQ(scalar.output, ref)
        << cfg.name() << " scalar: " << what;
    // Event accounting must be engine-independent too.
    EXPECT_EQ(fast.events.cycles, scalar.events.cycles) << what;
    EXPECT_EQ(fast.events.macs_executed, scalar.events.macs_executed)
        << what;
    EXPECT_EQ(fast.events.macs_gated, scalar.events.macs_gated)
        << what;
    EXPECT_EQ(fast.events.accum_updates, scalar.events.accum_updates)
        << what;
    EXPECT_EQ(fast.events.operand_reg_bytes,
              scalar.events.operand_reg_bytes)
        << what;
}

TEST(EngineEquivalence, RandomShapesAndSparsityBounds)
{
    // Sweep every W-DBB bound 1/8..8/8 (8/8 exercises the dense
    // fallback) and the supported A-DBB bounds over random shapes,
    // including single-block K and ragged tile edges.
    Rng rng(0xE0);
    const int act_bounds[] = {1, 2, 3, 4, 5, 8};
    for (int trial = 0; trial < 24; ++trial) {
        const int m = static_cast<int>(rng.uniformInt(1, 96));
        const int k = 8 * static_cast<int>(rng.uniformInt(1, 40));
        const int n = static_cast<int>(rng.uniformInt(1, 96));
        const int wgt_nnz = static_cast<int>(rng.uniformInt(1, 8));
        const int act_nnz =
            act_bounds[rng.uniformInt(0, std::size(act_bounds) - 1)];
        GemmProblem p = makeDbbGemm(m, k, n, wgt_nnz, act_nnz, rng);

        char what[96];
        std::snprintf(what, sizeof(what),
                      "trial %d: %dx%dx%d W%d/8 A%d/8", trial, m, k,
                      n, wgt_nnz, act_nnz);

        ArrayConfig w = ArrayConfig::s2taW();
        w.weight_dbb = DbbSpec{wgt_nnz, 8};
        expectEnginesAgree(w, p, what);

        ArrayConfig aw = ArrayConfig::s2taAw(act_nnz);
        aw.weight_dbb = DbbSpec{wgt_nnz, 8};
        expectEnginesAgree(aw, p, what);
    }
}

TEST(EngineEquivalence, DenseBaselinesUseTheSameKernels)
{
    Rng rng(0xE1);
    GemmProblem p = makeUnstructuredGemm(40, 72, 56, 0.5, 0.6, rng);
    for (const ArrayConfig &cfg :
         {ArrayConfig::sa(), ArrayConfig::saZvcg(),
          ArrayConfig::saSmt(2), ArrayConfig::saSmt(4)}) {
        expectEnginesAgree(cfg, p, "dense baseline");
    }
}

TEST(EngineEquivalence, SkinnyTileFoldPaths)
{
    Rng rng(0xE2);
    // Skinny-m (FC-like): one output row folds column stripes
    // across the idle row groups.
    GemmProblem fc = makeDbbGemm(1, 512, 96, 4, 4, rng);
    // Skinny-n (depthwise-group-like): two output columns fold row
    // stripes across the idle column groups.
    GemmProblem dw = makeDbbGemm(96, 256, 2, 4, 4, rng);
    for (const ArrayConfig &cfg :
         {ArrayConfig::s2taW(), ArrayConfig::s2taAw(4)}) {
        expectEnginesAgree(cfg, fc, "skinny-m fold");
        expectEnginesAgree(cfg, dw, "skinny-n fold");
    }
}

LayerWorkload
groupedLayer(int groups, Rng &rng)
{
    LayerWorkload wl;
    wl.name = "grouped";
    const int in_c = 16;
    const int out_c = 16;
    const int gc = in_c / groups;
    wl.shape = {in_c, 8, 8, out_c, 3, 3, 1, 1, groups};
    wl.act_nnz = 4;
    wl.wgt_nnz = 4;
    wl.input = makeDbbTensor({8, 8, in_c}, 4, rng);
    // W-DBB blocks run along the input-channel dimension: generate
    // channel-innermost and transpose into (kh, kw, gc, oc).
    const Int8Tensor tmp =
        makeDbbTensor({3, 3, out_c, gc}, std::min(4, gc), rng);
    wl.weights = Int8Tensor({3, 3, gc, out_c});
    for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
            for (int c = 0; c < gc; ++c)
                for (int oc = 0; oc < out_c; ++oc)
                    wl.weights(ky, kx, c, oc) = tmp(ky, kx, oc, c);
    return wl;
}

TEST(EngineEquivalence, GroupedAndDepthwiseLayers)
{
    Rng rng(0xE3);
    for (int groups : {1, 4, 16}) { // 16 = depthwise
        const LayerWorkload wl = groupedLayer(groups, rng);
        const Int32Tensor ref =
            convReference(wl.shape, wl.input, wl.weights);
        for (const ArrayConfig &array :
             {ArrayConfig::saZvcg(), ArrayConfig::s2taW(),
              ArrayConfig::s2taAw(4)}) {
            AcceleratorConfig cfg;
            cfg.array = array;
            const Accelerator acc(cfg);
            NetworkRunOptions fast;
            fast.compute_output = true;
            NetworkRunOptions scalar = fast;
            scalar.engine = EngineKind::Scalar;
            const LayerRun fr = acc.runLayer(wl, fast);
            const LayerRun sr = acc.runLayer(wl, scalar);
            EXPECT_TRUE(fr.output == ref)
                << array.name() << " groups=" << groups;
            EXPECT_TRUE(sr.output == ref)
                << array.name() << " groups=" << groups;
            EXPECT_EQ(fr.events.cycles, sr.events.cycles);
            EXPECT_EQ(fr.events.macs_executed,
                      sr.events.macs_executed);
        }
    }
}

TEST(EngineEquivalence, TileStripeShardingIsBitwiseIdentical)
{
    // m > 256 so the output grid splits into several row stripes;
    // sweep sparsity so both the intersection and the dense-mirror
    // kernels run sharded.
    Rng rng(0xE5);
    for (int nnz : {1, 4, 8}) {
        const GemmProblem p =
            makeDbbGemm(700, 128, 48, std::min(nnz, 4), nnz, rng);
        for (const ArrayConfig &cfg :
             {ArrayConfig::s2taW(), ArrayConfig::s2taAw(4),
              ArrayConfig::saZvcg()}) {
            const auto model = makeArrayModel(cfg);
            RunOptions serial;
            serial.compute_output = true;
            serial.validate_operands = false; // nnz=8 is dense
            const GemmRun a = model->run(p, serial);
            for (int workers : {1, 3}) {
                ThreadPool pool(workers);
                RunOptions sharded = serial;
                sharded.shard_pool = &pool;
                const GemmRun b = model->run(p, sharded);
                EXPECT_EQ(a.output, b.output)
                    << cfg.name() << " nnz=" << nnz
                    << " workers=" << workers;
                EXPECT_TRUE(a.events == b.events);
            }
        }
    }
}

TEST(EngineEquivalence, SimdV2KernelMatchesScalarKernel)
{
    // With the x86-64-v2 build off (or an old CPU) this pins the
    // dispatcher to the scalar kernel twice — trivially equal; with
    // it on, it is the widest-SIMD-tier-vs-scalar bitwise check
    // (AVX-512 with the v4 build on capable hardware, then AVX2,
    // then SSSE3).
    Rng rng(0xE6);
    // Sparse operating point so dbbGemm picks the intersection
    // kernel (the dense-mirror path bypasses the dispatcher).
    const GemmProblem p = makeDbbGemm(300, 512, 40, 2, 2, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taAw(2));
    RunOptions opt;
    opt.compute_output = true;

    dbbForceScalarKernel(true);
    EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Scalar);
    const GemmRun scalar_kernel = model->run(p, opt);
    dbbForceScalarKernel(false);
    const GemmRun auto_kernel = model->run(p, opt);

    EXPECT_EQ(scalar_kernel.output, auto_kernel.output);
    EXPECT_EQ(auto_kernel.output, gemmReference(p));
    if (dbbAvx512KernelSupportedImpl()) {
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Avx512);
    } else if (dbbAvx2KernelSupportedImpl()) {
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Avx2);
    } else if (dbbSimdKernelAvailable()) {
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::SimdV2);
    }
}

TEST(EngineEquivalence, ParallelRunNetworkIsBitwiseIdentical)
{
    Rng rng(0xE4);
    std::vector<LayerWorkload> layers;
    for (int groups : {1, 4, 16, 1})
        layers.push_back(groupedLayer(groups, rng));

    AcceleratorConfig serial_cfg;
    serial_cfg.array = ArrayConfig::s2taAw(4);
    serial_cfg.sim_threads = 1;

    NetworkRunOptions opt;
    opt.compute_output = true;
    const NetworkRun a =
        Accelerator(serial_cfg).runNetwork(layers, opt);
    // 0 = hardware-sized global pool, 2 = dedicated two-lane pool.
    for (int threads : {0, 2}) {
        AcceleratorConfig parallel_cfg = serial_cfg;
        parallel_cfg.sim_threads = threads;
        const NetworkRun b =
            Accelerator(parallel_cfg).runNetwork(layers, opt);
        ASSERT_EQ(a.layers.size(), b.layers.size());
        EXPECT_EQ(a.total.cycles, b.total.cycles);
        EXPECT_EQ(a.total.macs_executed, b.total.macs_executed);
        EXPECT_EQ(a.total.dma_bytes, b.total.dma_bytes);
        for (size_t i = 0; i < a.layers.size(); ++i) {
            EXPECT_TRUE(a.layers[i].output == b.layers[i].output)
                << "threads " << threads << " layer " << i;
            EXPECT_EQ(a.layers[i].events.cycles,
                      b.layers[i].events.cycles);
        }
    }
}

} // anonymous namespace
} // namespace s2ta
