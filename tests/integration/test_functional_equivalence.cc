/** @file Cross-architecture functional equivalence: every array
 *  model must produce the bit-exact golden GEMM result through its
 *  own datapath steering, over a sweep of shapes and sparsities. */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/models.hh"
#include "core/dap.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/** (m, k, n, weight sparsity %, act sparsity %). */
using Case = std::tuple<int, int, int, int, int>;

class Equivalence : public ::testing::TestWithParam<Case>
{
  protected:
    GemmProblem
    makeProblem() const
    {
        const auto [m, k, n, ws, as] = GetParam();
        Rng rng(static_cast<uint64_t>(m * 7 + k * 3 + n + ws + as));
        return makeUnstructuredGemm(m, k, n, ws / 100.0, as / 100.0,
                                    rng);
    }
};

TEST_P(Equivalence, SaAndZvcgAndSmt)
{
    const GemmProblem p = makeProblem();
    const auto ref = gemmReference(p);
    for (const ArrayConfig &cfg :
         {ArrayConfig::sa(), ArrayConfig::saZvcg(),
          ArrayConfig::saSmt(2), ArrayConfig::saSmt(4)}) {
        EXPECT_EQ(makeArrayModel(cfg)->run(p).output, ref)
            << cfg.name();
    }
}

TEST_P(Equivalence, S2taWOnPrunedWeights)
{
    GemmProblem p = makeProblem();
    pruneWeightsDbb(p, DbbSpec{4, 8});
    const auto ref = gemmReference(p);
    EXPECT_EQ(makeArrayModel(ArrayConfig::s2taW())->run(p).output,
              ref);
}

TEST_P(Equivalence, S2taAwOnJointlyPrunedOperands)
{
    GemmProblem p = makeProblem();
    pruneWeightsDbb(p, DbbSpec{4, 8});
    for (int nnz : {1, 3, 5, 8}) {
        GemmProblem q = p;
        if (nnz < 8)
            dapPruneActivations(q, nnz);
        const auto ref = gemmReference(q);
        EXPECT_EQ(makeArrayModel(ArrayConfig::s2taAw(nnz))
                      ->run(q).output,
                  ref)
            << "NNZ_a=" << nnz;
    }
}

TEST_P(Equivalence, S2taAwDenseWeightFallback)
{
    GemmProblem p = makeProblem();
    dapPruneActivations(p, 4);
    ArrayConfig cfg = ArrayConfig::s2taAw(4);
    cfg.weight_dbb = DbbSpec{8, 8}; // dense fallback, 2 passes
    EXPECT_EQ(makeArrayModel(cfg)->run(p).output, gemmReference(p));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, Equivalence,
    ::testing::Values(
        // single tile, K exactly one block
        Case{8, 8, 8, 50, 50},
        // ragged everything (partial tiles on every design)
        Case{33, 72, 65, 50, 50},
        // tall-skinny (FC-like)
        Case{1, 512, 96, 75, 60},
        // wide output
        Case{16, 64, 200, 25, 30},
        // dense operands
        Case{40, 80, 40, 0, 0},
        // extremely sparse
        Case{24, 128, 24, 90, 90},
        // conv-like
        Case{96, 288, 64, 50, 62}));

} // anonymous namespace
} // namespace s2ta
