/** @file Unit tests for per-model sparsity profiles and workload
 *  construction. */

#include <gtest/gtest.h>

#include "workload/model_workloads.hh"

namespace s2ta {
namespace {

TEST(Profiles, AverageActDensitiesNearTable3)
{
    // Table 3 reports MAC-weighted average A-DBB densities:
    // AlexNet 3.9/8, VGG-16 3.1/8, MobileNetV1 4.8/8,
    // ResNet-50 3.49/8. Our per-layer profiles should land close
    // (the paper averages are per-layer tuned, ours are encoded
    // curves; allow a loose band).
    struct Expect { const char *name; double avg_density; };
    const Expect cases[] = {
        {"AlexNet", 3.9 / 8},
        {"VGG-16", 3.1 / 8},
        {"MobileNetV1", 4.8 / 8},
        {"ResNet-50V1", 3.49 / 8},
    };
    const auto models = benchmarkModels();
    for (const Expect &e : cases) {
        const ModelSpec *spec = nullptr;
        for (const ModelSpec &m : models)
            if (m.name == e.name)
                spec = &m;
        ASSERT_NE(spec, nullptr) << e.name;
        const double avg =
            averageActDensity(*spec, sparsityProfile(*spec));
        EXPECT_NEAR(avg, e.avg_density, 0.15) << e.name;
    }
}

TEST(Profiles, FirstLayerExcludedFromPruning)
{
    for (const ModelSpec &m : benchmarkModels()) {
        const auto prof = sparsityProfile(m);
        EXPECT_EQ(prof[0].wgt_nnz, 8) << m.name;
        EXPECT_EQ(prof[0].act_nnz, 8) << m.name;
    }
}

TEST(Profiles, ActDensityFallsWithDepthOnResNet)
{
    // Sec. 5.2: "per-layer tuned activation DBB ranges from 8/8
    // (dense) in early layers down to 2/8 towards the end".
    const ModelSpec m = resNet50();
    const auto prof = sparsityProfile(m);
    EXPECT_GE(prof[1].act_nnz, 5);
    EXPECT_EQ(prof[prof.size() - 2].act_nnz, 2);
}

TEST(Profiles, AllValuesSupportedByDapHardware)
{
    for (const ModelSpec &m : benchmarkModels()) {
        for (const LayerSparsity &ls : sparsityProfile(m)) {
            const bool supported =
                (ls.act_nnz >= 1 && ls.act_nnz <= 5) ||
                ls.act_nnz == 8;
            EXPECT_TRUE(supported)
                << m.name << " act_nnz=" << ls.act_nnz;
        }
    }
}

TEST(Workloads, LeNetTensorsCarryDeclaredStructure)
{
    Rng rng(1);
    const ModelWorkload mw = buildModelWorkload(leNet5(), rng);
    ASSERT_EQ(mw.layers.size(), mw.spec.layers.size());
    for (size_t i = 0; i < mw.layers.size(); ++i) {
        const LayerWorkload &wl = mw.layers[i];
        EXPECT_EQ(wl.shape.in_h, wl.input.dim(0)) << wl.name;
        EXPECT_EQ(wl.shape.in_c, wl.input.dim(2)) << wl.name;
        // Activation blocks satisfy the declared bound.
        if (wl.act_nnz < 8) {
            const int channels = wl.input.dim(2);
            for (int64_t base = 0; base < wl.input.size();
                 base += channels) {
                for (int off = 0; off < channels; off += 8) {
                    const int len = std::min(8, channels - off);
                    int nz = 0;
                    for (int e = 0; e < len; ++e)
                        nz += wl.input.flat(base + off + e) != 0;
                    EXPECT_LE(nz, wl.act_nnz) << wl.name;
                }
            }
        }
    }
}

TEST(Workloads, NarrowStemTightensDeclaredBounds)
{
    Rng rng(2);
    const ModelWorkload mw = buildModelWorkload(alexNet(), rng);
    // conv1 input has 3 channels: physically at most 3 non-zeros
    // per 8-block, so the declared A-DBB bound tightens to 3.
    EXPECT_LE(mw.layers[0].act_nnz, 3);
    EXPECT_LE(mw.layers[0].wgt_nnz, 4);
}

TEST(Workloads, WeightBlocksRunAlongInputChannels)
{
    Rng rng(3);
    const ModelWorkload mw = buildModelWorkload(vgg16(), rng);
    // Pick a pruned conv layer and check blocks along cin.
    const LayerWorkload &wl = mw.layers[4]; // conv3_1-ish, 3/8
    ASSERT_LT(wl.wgt_nnz, 8);
    const Conv2dShape &s = wl.shape;
    for (int ky = 0; ky < s.kernel_h; ++ky) {
        for (int oc = 0; oc < std::min(8, s.out_c); ++oc) {
            for (int b = 0; b < s.groupInC() / 8; ++b) {
                int nz = 0;
                for (int e = 0; e < 8; ++e)
                    nz += wl.weights(ky, 0, b * 8 + e, oc) != 0;
                EXPECT_LE(nz, wl.wgt_nnz);
            }
        }
    }
}

} // anonymous namespace
} // namespace s2ta
