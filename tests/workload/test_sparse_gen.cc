/** @file Unit tests for the sparse workload generators. */

#include <gtest/gtest.h>

#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(SparseGen, UnstructuredGemmHitsExactPerVectorCounts)
{
    Rng rng(1);
    const GemmProblem p =
        makeUnstructuredGemm(10, 40, 6, 0.75, 0.5, rng);
    for (int i = 0; i < p.m; ++i) {
        int nz = 0;
        for (int kk = 0; kk < p.k; ++kk)
            nz += p.actAt(i, kk) != 0;
        EXPECT_EQ(nz, 20) << "row " << i; // 50% of 40
    }
    for (int j = 0; j < p.n; ++j) {
        int nz = 0;
        for (int kk = 0; kk < p.k; ++kk)
            nz += p.wgtAt(kk, j) != 0;
        EXPECT_EQ(nz, 10) << "col " << j; // 25% of 40
    }
}

TEST(SparseGen, DbbGemmBoundsEveryBlock)
{
    Rng rng(2);
    const GemmProblem p = makeDbbGemm(6, 48, 5, 3, 2, rng);
    for (int i = 0; i < p.m; ++i) {
        for (int b = 0; b < p.k / 8; ++b) {
            int nz = 0;
            for (int e = 0; e < 8; ++e)
                nz += p.actAt(i, b * 8 + e) != 0;
            EXPECT_EQ(nz, 2);
        }
    }
    for (int j = 0; j < p.n; ++j) {
        for (int b = 0; b < p.k / 8; ++b) {
            int nz = 0;
            for (int e = 0; e < 8; ++e)
                nz += p.wgtAt(b * 8 + e, j) != 0;
            EXPECT_EQ(nz, 3);
        }
    }
}

TEST(SparseGen, UnstructuredTensorHitsExactGlobalCount)
{
    Rng rng(3);
    const Int8Tensor t =
        makeUnstructuredTensor({7, 9, 13}, 0.6, rng);
    int64_t nz = 0;
    for (int64_t i = 0; i < t.size(); ++i)
        nz += t.flat(i) != 0;
    const int64_t expect =
        std::llround(static_cast<double>(t.size()) * 0.4);
    EXPECT_EQ(nz, expect);
}

TEST(SparseGen, DbbTensorHandlesPartialTail)
{
    Rng rng(4);
    const Int8Tensor t = makeDbbTensor({3, 3, 11}, 2, rng);
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 3; ++x) {
            int nz_full = 0, nz_tail = 0;
            for (int c = 0; c < 8; ++c)
                nz_full += t(y, x, c) != 0;
            for (int c = 8; c < 11; ++c)
                nz_tail += t(y, x, c) != 0;
            EXPECT_EQ(nz_full, 2);
            EXPECT_EQ(nz_tail, 2); // min(2, 3)
        }
    }
}

TEST(SparseGen, ZeroAndFullSparsityEdges)
{
    Rng rng(5);
    const GemmProblem dense =
        makeUnstructuredGemm(4, 16, 4, 0.0, 0.0, rng);
    EXPECT_DOUBLE_EQ(dense.actSparsity(), 0.0);
    EXPECT_DOUBLE_EQ(dense.wgtSparsity(), 0.0);
    const GemmProblem empty =
        makeUnstructuredGemm(4, 16, 4, 1.0, 1.0, rng);
    EXPECT_DOUBLE_EQ(empty.actSparsity(), 1.0);
    EXPECT_DOUBLE_EQ(empty.wgtSparsity(), 1.0);
}

TEST(SparseGen, DeterministicForFixedSeed)
{
    Rng a(7), b(7);
    const GemmProblem p1 = makeDbbGemm(4, 32, 4, 4, 2, a);
    const GemmProblem p2 = makeDbbGemm(4, 32, 4, 4, 2, b);
    EXPECT_EQ(p1.a, p2.a);
    EXPECT_EQ(p1.w, p2.w);
}

} // anonymous namespace
} // namespace s2ta
