/** @file Unit tests for the per-PE buffer model (paper Table 1). */

#include <gtest/gtest.h>

#include "energy/buffer_model.hh"

namespace s2ta {
namespace {

TEST(BufferModel, SystolicArrayMatchesTable1)
{
    // Table 1: SA = 2 B operands + 4 B accumulator per MAC.
    const BufferBreakdown b = bufferModel(ArrayConfig::sa());
    EXPECT_DOUBLE_EQ(b.operand_bytes_per_mac, 2.0);
    EXPECT_DOUBLE_EQ(b.accum_bytes_per_mac, 4.0);
    EXPECT_DOUBLE_EQ(b.fifo_bytes_per_mac, 0.0);
    EXPECT_DOUBLE_EQ(b.totalPerMac(), 6.0);
}

TEST(BufferModel, SmtMatchesTable1)
{
    // Table 1: SA-SMT = 16 B operands (T2Q2 FIFOs) + 4 B accum.
    const BufferBreakdown b = bufferModel(ArrayConfig::saSmt(2));
    EXPECT_DOUBLE_EQ(b.fifo_bytes_per_mac, 16.0);
    EXPECT_DOUBLE_EQ(b.accum_bytes_per_mac, 4.0);
    // Deeper FIFO costs proportionally more.
    const BufferBreakdown b4 = bufferModel(ArrayConfig::saSmt(4));
    EXPECT_DOUBLE_EQ(b4.fifo_bytes_per_mac, 32.0);
}

TEST(BufferModel, S2taWTpeReuseShrinksBuffers)
{
    const BufferBreakdown b = bufferModel(ArrayConfig::s2taW());
    // 4x8x4 TPE: (4*8 + 4*5) / 64 MACs operands; 4*4*4 / 64 accum.
    EXPECT_NEAR(b.operand_bytes_per_mac, 52.0 / 64.0, 1e-12);
    EXPECT_NEAR(b.accum_bytes_per_mac, 1.0, 1e-12);
    // Order of magnitude below the scalar SA, as Table 1 shows.
    EXPECT_LT(b.totalPerMac(), 2.0);
}

TEST(BufferModel, S2taAwMatchesTable1Shape)
{
    const BufferBreakdown b = bufferModel(ArrayConfig::s2taAw(4));
    // 8x4x4 TPE: (8*2 + 4*5) / 32 MACs operands; 4 B accum per MAC.
    EXPECT_NEAR(b.operand_bytes_per_mac, 36.0 / 32.0, 1e-12);
    EXPECT_DOUBLE_EQ(b.accum_bytes_per_mac, 4.0);
    EXPECT_NEAR(b.totalPerMac(), 5.125, 1e-12);
}

TEST(BufferModel, PaperOrderingHolds)
{
    // The headline of Table 1: SMT >> SA > S2TA-W, and S2TA-AW sits
    // between SA and SMT (its accumulators are per-MAC again).
    const double smt = bufferModel(ArrayConfig::saSmt(2)).totalPerMac();
    const double sa = bufferModel(ArrayConfig::sa()).totalPerMac();
    const double w = bufferModel(ArrayConfig::s2taW()).totalPerMac();
    const double aw = bufferModel(ArrayConfig::s2taAw(4)).totalPerMac();
    EXPECT_GT(smt, sa);
    EXPECT_GT(sa, w);
    EXPECT_LT(aw, smt);
    EXPECT_GT(smt / w, 10.0);
}

TEST(BufferModel, TotalBytesScalesWithMacs)
{
    const ArrayConfig cfg = ArrayConfig::sa();
    const BufferBreakdown b = bufferModel(cfg);
    EXPECT_DOUBLE_EQ(b.totalBytes(cfg.totalMacs()), 6.0 * 2048);
}

} // anonymous namespace
} // namespace s2ta
