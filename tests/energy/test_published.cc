/** @file Consistency checks on the published constants quoted from
 *  the paper (they feed the comparison benches). */

#include <gtest/gtest.h>

#include <numeric>

#include "energy/published.hh"

namespace s2ta {
namespace {

TEST(Published, Table1TotalsAreOperandPlusAccum)
{
    for (const auto &row : published::kTable1) {
        // SparTen's paper total (0.99 KB) is quoted as 1013.76 B;
        // allow the rounding the paper itself applies.
        EXPECT_NEAR(row.operand_bytes + row.accum_bytes,
                    row.total_bytes, row.total_bytes * 0.05)
            << row.name;
    }
}

TEST(Published, Table1OrderingMatchesPaperNarrative)
{
    // SCNN > SparTen > Eyeriss v2 >> SA-SMT > SA > S2TA designs.
    double prev = 1e18;
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_LT(published::kTable1[i].total_bytes, prev)
            << published::kTable1[i].name;
        prev = published::kTable1[i].total_bytes;
    }
}

TEST(Published, Fig12SeriesSumToStatedTotals)
{
    for (const auto &series :
         {published::kFig12EyerissV2, published::kFig12SparTen}) {
        const double sum =
            std::accumulate(series.conv_uj.begin(),
                            series.conv_uj.end(), 0.0);
        EXPECT_NEAR(sum, series.total_uj, series.total_uj * 0.05)
            << series.name;
    }
}

TEST(Published, Table2SumsToPaperTotals)
{
    double power = 0.0, area = 0.0;
    for (const auto &row : published::kTable2) {
        power += row.power_mw;
        area += row.area_mm2;
    }
    EXPECT_NEAR(power, 541.3, 1.0);
    EXPECT_NEAR(area, 3.77, 0.01);
}

TEST(Published, Table3PrunedNeverBeatsBaselineByMuch)
{
    // Sanity on transcription: pruned accuracy sits within a few
    // points of baseline (the paper's VGG row is slightly above).
    for (const auto &row : published::kTable3) {
        EXPECT_GT(row.pruned_pct, row.baseline_pct - 3.0)
            << row.model;
        EXPECT_LT(row.pruned_pct, row.baseline_pct + 1.0)
            << row.model;
    }
}

TEST(Published, ComparatorsCiteSources)
{
    EXPECT_NE(std::string(published::kSparTen.source).find("Table 4"),
              std::string::npos);
    EXPECT_NE(
        std::string(published::kEyerissV2.source).find("Table 4"),
        std::string::npos);
    EXPECT_GT(published::kA100.peak_tops_per_w, 0.0);
}

} // anonymous namespace
} // namespace s2ta
