/** @file Calibration tests for the energy/area model against the
 *  paper's published anchors (DESIGN.md Sec. 4). */

#include <gtest/gtest.h>

#include "arch/models.hh"
#include "energy/energy_model.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

AcceleratorConfig
configFor(ArrayConfig array)
{
    AcceleratorConfig cfg;
    cfg.array = array;
    return cfg;
}

/** Dense-SA events for a typical conv at ~50% sparsity. */
EventCounts
denseSaEvents(ArchKind kind)
{
    Rng rng(1);
    const GemmProblem p =
        makeUnstructuredGemm(512, 1152, 256, 0.5, 0.5, rng);
    ArrayConfig cfg =
        kind == ArchKind::Sa ? ArrayConfig::sa()
                             : ArrayConfig::saZvcg();
    RunOptions opt;
    opt.compute_output = false;
    return makeArrayModel(cfg)->run(p, opt).events;
}

TEST(EnergyModel, Fig1DenseSaShares)
{
    // Fig. 1 anchor: SRAM 21%, PE buffers 49%, MAC datapath 20%,
    // activation function 10% (+-3 pp tolerance per DESIGN.md).
    const EnergyModel em(TechParams::tsmc16(),
                         configFor(ArrayConfig::sa()));
    const EnergyBreakdown e = em.energy(denseSaEvents(ArchKind::Sa));

    const double total = e.totalPj();
    ASSERT_GT(total, 0.0);
    const double sram = e.sramPj() / total;
    const double buffers = e.share(Component::PeBuffers);
    const double mac = e.share(Component::MacDatapath);
    const double actfn = e.share(Component::Mcu);
    EXPECT_NEAR(sram, 0.21, 0.03);
    EXPECT_NEAR(buffers, 0.49, 0.03);
    EXPECT_NEAR(mac, 0.20, 0.03);
    EXPECT_NEAR(actfn, 0.10, 0.03);
}

TEST(EnergyModel, ZvcgSaves20To35PercentOverDenseSa)
{
    // Sec. 8.4 item 2: "SA-ZVCG consumes 25% less energy than a
    // dense SA by exploiting random sparsity."
    const EnergyModel em(TechParams::tsmc16(),
                         configFor(ArrayConfig::sa()));
    const double dense =
        em.energy(denseSaEvents(ArchKind::Sa)).totalPj();
    const double zvcg =
        em.energy(denseSaEvents(ArchKind::SaZvcg)).totalPj();
    const double saving = 1.0 - zvcg / dense;
    EXPECT_GT(saving, 0.18);
    EXPECT_LT(saving, 0.38);
}

TEST(AreaModel, SramAndMcuAreasMatchTable2)
{
    // Table 2 reports 0.54 mm^2 for 512 KB WB, 2.16 mm^2 for 2 MB
    // AB, and 0.30 mm^2 for the 4-MCU cluster in 16nm.
    const EnergyModel em(TechParams::tsmc16(),
                         configFor(ArrayConfig::s2taAw(4)));
    const AreaBreakdown a = em.area();
    EXPECT_NEAR(a.at(Component::WeightSram), 0.54, 0.02);
    EXPECT_NEAR(a.at(Component::ActSram), 2.16, 0.05);
    EXPECT_NEAR(a.at(Component::Mcu), 0.30, 0.02);
    EXPECT_NEAR(a.at(Component::Dap), 0.05, 0.01);
}

TEST(AreaModel, TotalsMatchPaper16nm)
{
    // Sec. 7 / Table 4: SA 3.7 mm^2, SA-SMT 4.2 mm^2,
    // S2TA-AW 3.8 mm^2 (within ~8%).
    const TechParams t16 = TechParams::tsmc16();
    const double sa =
        EnergyModel(t16, configFor(ArrayConfig::sa())).area()
            .totalMm2();
    const double smt =
        EnergyModel(t16, configFor(ArrayConfig::saSmt(2))).area()
            .totalMm2();
    const double aw =
        EnergyModel(t16, configFor(ArrayConfig::s2taAw(4))).area()
            .totalMm2();
    EXPECT_NEAR(sa, 3.7, 0.3);
    EXPECT_NEAR(smt, 4.2, 0.35);
    EXPECT_NEAR(aw, 3.8, 0.35);
    // Relative ordering: SMT pays for its FIFOs.
    EXPECT_GT(smt, sa);
}

TEST(EnergyModel, PeakEfficiencyNearPaper16nm)
{
    // Table 4: SA-ZVCG 10.5 TOPS/W at 50% sparse weights and
    // activations in 16nm.
    const EnergyModel em(TechParams::tsmc16(),
                         configFor(ArrayConfig::saZvcg()));
    const EventCounts ev = denseSaEvents(ArchKind::SaZvcg);
    const double tops_w = em.effectiveTopsPerWatt(ev);
    EXPECT_GT(tops_w, 8.0);
    EXPECT_LT(tops_w, 13.5);
}

TEST(EnergyModel, Node65nmScalesEnergyAndArea)
{
    const TechParams t16 = TechParams::tsmc16();
    const TechParams t65 = TechParams::tsmc65();
    EXPECT_DOUBLE_EQ(t65.freq_ghz, 0.5);
    EXPECT_NEAR(t65.e_mac / t16.e_mac, 13.0, 1e-9);
    EXPECT_NEAR(t65.a_mac / t16.a_mac, 5.8, 1e-9);

    // Table 4: 65nm SA-ZVCG lands near 0.78 TOPS/W.
    const EnergyModel em(t65, configFor(ArrayConfig::saZvcg()));
    const double tops_w =
        em.effectiveTopsPerWatt(denseSaEvents(ArchKind::SaZvcg));
    EXPECT_GT(tops_w, 0.6);
    EXPECT_LT(tops_w, 1.05);
}

TEST(EnergyModel, PowerAndRuntimeHelpers)
{
    const EnergyModel em(TechParams::tsmc16(),
                         configFor(ArrayConfig::sa()));
    const EventCounts ev = denseSaEvents(ArchKind::Sa);
    EXPECT_GT(em.powerMw(ev), 0.0);
    EXPECT_GT(em.runtimeMs(ev), 0.0);
    // 2048 MACs at 1 GHz bounds effective throughput at 4.1 TOPS.
    EXPECT_LE(em.effectiveTops(ev), 4.2);
    EXPECT_GT(em.effectiveTops(ev), 3.0);
}

TEST(EnergyBreakdown, ShareAndAddArithmetic)
{
    EnergyBreakdown a;
    a.at(Component::MacDatapath) = 30.0;
    a.at(Component::PeBuffers) = 70.0;
    EXPECT_DOUBLE_EQ(a.totalPj(), 100.0);
    EXPECT_DOUBLE_EQ(a.share(Component::PeBuffers), 0.7);
    EnergyBreakdown b;
    b.at(Component::MacDatapath) = 10.0;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.at(Component::MacDatapath), 40.0);
}

} // anonymous namespace
} // namespace s2ta
