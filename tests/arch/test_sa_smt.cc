/** @file Unit tests for the SMT-SA re-implementation. */

#include <gtest/gtest.h>

#include "arch/models.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(SmtQueue, AllZeroStreamTakesOneCyclePerSlot)
{
    const std::vector<int> arrivals(100, 0);
    EXPECT_EQ(SaSmtModel::queueCycles(arrivals, 2), 100);
}

TEST(SmtQueue, SingleArrivalsPipelinePerfectly)
{
    // One non-zero pair per slot: push and pop overlap, so the
    // stream is consumed at one slot per cycle plus the final drain.
    const std::vector<int> arrivals(50, 1);
    EXPECT_EQ(SaSmtModel::queueCycles(arrivals, 2), 51);
}

TEST(SmtQueue, SaturatedStreamServiceLimited)
{
    // Two arrivals per slot against one pop per cycle: asymptotic
    // rate is one slot per two cycles.
    const std::vector<int> arrivals(100, 2);
    const int64_t cycles = SaSmtModel::queueCycles(arrivals, 2);
    EXPECT_GE(cycles, 195);
    EXPECT_LE(cycles, 205);
}

TEST(SmtQueue, DeeperQueueNeverSlower)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int> arrivals(200);
        for (auto &a : arrivals)
            a = static_cast<int>(rng.uniformInt(0, 2));
        const int64_t q2 = SaSmtModel::queueCycles(arrivals, 2);
        const int64_t q4 = SaSmtModel::queueCycles(arrivals, 4);
        const int64_t q16 = SaSmtModel::queueCycles(arrivals, 16);
        EXPECT_LE(q4, q2);
        EXPECT_LE(q16, q4);
        // Lower bound: total work and stream length.
        int64_t work = 0;
        for (int a : arrivals)
            work += a;
        EXPECT_GE(q16, std::max<int64_t>(work,
                      static_cast<int64_t>(arrivals.size())));
    }
}

TEST(SmtModel, OutputMatchesReference)
{
    Rng rng(2);
    const GemmProblem p =
        makeUnstructuredGemm(40, 64, 70, 0.5, 0.5, rng);
    const auto model = makeArrayModel(ArrayConfig::saSmt(2));
    EXPECT_EQ(model->run(p).output, gemmReference(p));
}

TEST(SmtModel, SpeedupInPaperRangeAtHalfSparsity)
{
    Rng rng(3);
    // A typical convolution-sized GEMM at 50/50 sparsity.
    const GemmProblem p =
        makeUnstructuredGemm(128, 512, 128, 0.5, 0.5, rng);
    RunOptions opt;
    opt.compute_output = false;

    const auto zvcg = makeArrayModel(ArrayConfig::saZvcg());
    const int64_t base = zvcg->run(p, opt).events.cycles;

    // Fig. 3: SMT-T2Q2 ~1.6x, SMT-T2Q4 ~1.8x.
    const auto q2 = makeArrayModel(ArrayConfig::saSmt(2));
    const auto q4 = makeArrayModel(ArrayConfig::saSmt(4));
    const double s2 = static_cast<double>(base) /
                      q2->run(p, opt).events.cycles;
    const double s4 = static_cast<double>(base) /
                      q4->run(p, opt).events.cycles;
    EXPECT_GT(s2, 1.3);
    EXPECT_LT(s2, 2.0);
    EXPECT_GT(s4, s2);
    EXPECT_LE(s4, 2.0);
}

TEST(SmtModel, SpeedupCappedByThreadCount)
{
    Rng rng(4);
    // Extremely sparse: the cap is the T=2 stream rate.
    const GemmProblem p =
        makeUnstructuredGemm(64, 2048, 64, 0.95, 0.95, rng);
    RunOptions opt;
    opt.compute_output = false;
    const int64_t base = makeArrayModel(ArrayConfig::saZvcg())
                             ->run(p, opt).events.cycles;
    const int64_t smt = makeArrayModel(ArrayConfig::saSmt(4))
                            ->run(p, opt).events.cycles;
    const double speedup = static_cast<double>(base) / smt;
    EXPECT_LE(speedup, 2.05);
    EXPECT_GT(speedup, 1.8);
}

TEST(SmtModel, FifoActivityMatchesMatchedPairs)
{
    Rng rng(5);
    const GemmProblem p =
        makeUnstructuredGemm(32, 128, 64, 0.5, 0.5, rng);
    RunOptions opt;
    opt.compute_output = false;
    const auto r = makeArrayModel(ArrayConfig::saSmt(2))->run(p, opt);
    EXPECT_EQ(r.events.fifo_pushes, r.events.macs_executed);
    EXPECT_EQ(r.events.fifo_pops, r.events.fifo_pushes);
    const OperandProfile prof = OperandProfile::build(p);
    EXPECT_EQ(r.events.macs_executed, prof.matched_products);
}

TEST(SmtModel, TimingIsDeterministicForFixedSeed)
{
    Rng rng(6);
    const GemmProblem p =
        makeUnstructuredGemm(64, 256, 128, 0.5, 0.5, rng);
    RunOptions opt;
    opt.compute_output = false;
    const auto model = makeArrayModel(ArrayConfig::saSmt(2));
    EXPECT_EQ(model->run(p, opt).events.cycles,
              model->run(p, opt).events.cycles);
}

} // anonymous namespace
} // namespace s2ta
