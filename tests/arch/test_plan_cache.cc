/** @file Tests for the cross-run PlanCache: hit/miss accounting,
 *  deterministic LRU eviction, mutation safety via content
 *  fingerprints, the DAP memo, and — the load-bearing property —
 *  bitwise-identical results with caching on vs off across array
 *  configs, engines, and thread counts. */

#include <gtest/gtest.h>

#include "arch/accelerator.hh"
#include "arch/plan_cache.hh"
#include "arch/plan_store.hh"
#include "base/fault_injection.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

GemmProblem
smallGemm(uint64_t seed, int m = 24, int k = 64, int n = 16)
{
    Rng rng(seed);
    return makeDbbGemm(m, k, n, 4, 4, rng);
}

TEST(PlanCache, HitMissAccounting)
{
    PlanCache cache;
    const GemmProblem p = smallGemm(0xA0);

    const auto e1 = cache.acquire(p, 8, /*dense_mirror=*/false);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 0);
    EXPECT_EQ(cache.stats().entries, 1);

    const auto e2 = cache.acquire(p, 8, false);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(e1.get(), e2.get()) << "hit must return same entry";

    // A different mirror flag is a different entry (the plan
    // contents differ), as is a different block size.
    cache.acquire(p, 8, true);
    cache.acquire(p, 4, false);
    EXPECT_EQ(cache.stats().misses, 3);
    EXPECT_EQ(cache.stats().entries, 3);
    EXPECT_GT(cache.stats().resident_bytes, 0);
}

TEST(PlanCache, FingerprintGuardsMutatedOperands)
{
    PlanCache cache;
    GemmProblem p = smallGemm(0xA1);
    cache.acquire(p, 8, false);

    // Mutating the operands must never return the stale plan.
    p.a[3] = static_cast<int8_t>(p.a[3] + 1);
    const auto e = cache.acquire(p, 8, false);
    EXPECT_EQ(cache.stats().misses, 2);
    EXPECT_EQ(e->problem.a[3], p.a[3]);
}

TEST(PlanCache, EvictionIsLruAndDeterministic)
{
    const GemmProblem a = smallGemm(0xB0);
    const GemmProblem b = smallGemm(0xB1);
    const GemmProblem c = smallGemm(0xB2);

    const auto run = [&](PlanCache &cache) {
        cache.acquire(a, 8, false);
        cache.acquire(b, 8, false);
        cache.acquire(a, 8, false); // promote a over b
        cache.acquire(c, 8, false); // evicts b (LRU)
        cache.acquire(a, 8, false); // still resident
        cache.acquire(b, 8, false); // must be a miss again
        return cache.stats();
    };

    PlanCache c1(/*max_entries=*/2);
    const PlanCache::Stats s1 = run(c1);
    EXPECT_EQ(s1.misses, 4) << "a, b, c, then b again";
    EXPECT_EQ(s1.hits, 2);
    EXPECT_EQ(s1.evictions, 2);
    EXPECT_EQ(s1.entries, 2);

    // The same access sequence on a fresh cache produces exactly
    // the same accounting: eviction order is deterministic.
    PlanCache c2(2);
    const PlanCache::Stats s2 = run(c2);
    EXPECT_EQ(s1.misses, s2.misses);
    EXPECT_EQ(s1.hits, s2.hits);
    EXPECT_EQ(s1.evictions, s2.evictions);
    EXPECT_EQ(s1.resident_bytes, s2.resident_bytes);
}

TEST(PlanCache, ByteBudgetEvictsButKeepsNewestEntry)
{
    // A budget smaller than one entry: the newest entry must stay
    // usable (a sweep over one oversized workload still works).
    PlanCache cache(0, /*max_bytes=*/1);
    const GemmProblem a = smallGemm(0xC0);
    const GemmProblem b = smallGemm(0xC1);
    cache.acquire(a, 8, false);
    EXPECT_EQ(cache.stats().entries, 1);
    cache.acquire(b, 8, false);
    EXPECT_EQ(cache.stats().entries, 1);
    EXPECT_EQ(cache.stats().evictions, 1);
    // b is the resident entry now.
    cache.acquire(b, 8, false);
    EXPECT_EQ(cache.stats().hits, 1);
}

TEST(PlanCache, SpillTierRehydratesEvictedEntriesBitwise)
{
    // Entry-capped resident tier with a spill tier underneath: a
    // cyclic access pattern that LRU-thrashes the resident tier is
    // served by rehydration instead of re-encoding, and every
    // rehydrated plan is indistinguishable from a fresh build.
    PlanCache cache(/*max_entries=*/2, /*max_bytes=*/0,
                    /*spill_max_bytes=*/1 << 30);
    std::vector<GemmProblem> ps;
    for (uint64_t s = 0; s < 4; ++s)
        ps.push_back(smallGemm(0xF0 + s));

    for (int round = 0; round < 2; ++round) {
        for (const GemmProblem &p : ps) {
            const auto e = cache.acquire(p, 8, true);
            const GemmPlan fresh = GemmPlan::build(p, 8, true);
            std::vector<int32_t> got(
                static_cast<size_t>(p.m) * p.n);
            std::vector<int32_t> want(got.size());
            dbbGemm(e->plan, got.data());
            dbbGemm(fresh, want.data());
            EXPECT_EQ(got, want) << "round " << round;
            EXPECT_EQ(e->problem.a, p.a) << "round " << round;
            EXPECT_EQ(e->problem.w, p.w) << "round " << round;
            EXPECT_EQ(e->plan.wgtDenseT() != nullptr,
                      fresh.wgtDenseT() != nullptr);
        }
    }
    const PlanCache::Stats st = cache.stats();
    // Each workload encodes exactly once; the whole second round is
    // rehydration (the 2-entry resident tier can never hold the
    // 4-workload cycle).
    EXPECT_EQ(st.misses, 4);
    EXPECT_EQ(st.spill_hits, 4);
    EXPECT_EQ(st.hits, 0);
    EXPECT_GT(st.spill_entries, 0);
    EXPECT_GT(st.spill_bytes, 0);
    EXPECT_LE(st.spill_bytes, 1 << 30);
}

TEST(PlanCache, SpillBudgetDropsOldestAndStaysBounded)
{
    // A spill budget big enough for roughly one compact entry:
    // older spilled entries are dropped, the accounting stays
    // within budget, and a dropped entry simply re-encodes.
    const GemmProblem probe = smallGemm(0xF8);
    const int64_t one_entry = static_cast<int64_t>(
        spillEncode(CachedPlan(probe, 8, false)).size());
    PlanCache cache(/*max_entries=*/1, 0,
                    /*spill_max_bytes=*/one_entry + 8);
    std::vector<GemmProblem> ps;
    for (uint64_t s = 0; s < 3; ++s)
        ps.push_back(smallGemm(0xF8 + s));
    for (int round = 0; round < 2; ++round)
        for (const GemmProblem &p : ps)
            cache.acquire(p, 8, false);
    const PlanCache::Stats st = cache.stats();
    EXPECT_GT(st.spill_evictions, 0);
    EXPECT_LE(st.spill_bytes, one_entry + 8);
    EXPECT_GT(st.misses, 3) << "dropped entries must re-encode";
    // Whatever tier served it, results must still be correct: the
    // cache never returns a wrong plan, only a slower one.
    const auto e = cache.acquire(ps[0], 8, false);
    EXPECT_EQ(e->problem.a, ps[0].a);
}

TEST(PlanCache, SpillDisabledKeepsLegacyEvictionBehavior)
{
    PlanCache cache(/*max_entries=*/1);
    cache.acquire(smallGemm(0xFA), 8, false);
    cache.acquire(smallGemm(0xFB), 8, false);
    const PlanCache::Stats st = cache.stats();
    EXPECT_EQ(st.evictions, 1);
    EXPECT_EQ(st.spill_entries, 0);
    EXPECT_EQ(st.spill_bytes, 0);
    EXPECT_EQ(st.spill_hits, 0);
}

TEST(PlanCache, StatsSeparateResidentHitsFromRehydrations)
{
    const GemmProblem a = smallGemm(0xFC);
    const GemmProblem b = smallGemm(0xFD);
    PlanCache cache(/*max_entries=*/1, 0,
                    /*spill_max_bytes=*/1 << 30);
    cache.acquire(a, 8, false); // miss
    cache.acquire(a, 8, false); // resident hit
    cache.acquire(b, 8, false); // miss; a spills
    cache.acquire(a, 8, false); // spill hit (rehydration)
    cache.acquire(a, 8, false); // resident hit again
    const PlanCache::Stats st = cache.stats();
    EXPECT_EQ(st.misses, 2);
    EXPECT_EQ(st.hits, 2);
    EXPECT_EQ(st.spill_hits, 1);
}

TEST(PlanCache, InjectedSpillEncodeFaultDegradesToColdRebuild)
{
    const GemmProblem a = smallGemm(0xD0);
    const GemmProblem b = smallGemm(0xD1);
    FaultInjector fi(0x21);
    fi.setRate(FaultSite::SpillEncode, 1.0);
    PlanCache cache(/*max_entries=*/1, 0,
                    /*spill_max_bytes=*/1 << 30);
    cache.setFaultInjector(&fi);

    cache.acquire(a, 8, false); // miss
    cache.acquire(b, 8, false); // miss; a's spill encode faults
    const auto e = cache.acquire(a, 8, false);
    // The dropped entry degrades to a cold re-encode — counted,
    // never wrong.
    const PlanCache::Stats st = cache.stats();
    EXPECT_EQ(st.misses, 3);
    EXPECT_EQ(st.spill_hits, 0);
    EXPECT_EQ(st.spill_entries, 0);
    EXPECT_GT(st.spill_drops, 0);
    EXPECT_EQ(st.spill_drops, fi.injected(FaultSite::SpillEncode));
    EXPECT_EQ(e->problem.a, a.a);
}

TEST(PlanCache, InjectedSpillDecodeFaultFallsBackToColderTier)
{
    const GemmProblem a = smallGemm(0xD2);
    const GemmProblem b = smallGemm(0xD3);
    PlanCache cache(/*max_entries=*/1, 0,
                    /*spill_max_bytes=*/1 << 30);
    cache.acquire(a, 8, false); // miss
    cache.acquire(b, 8, false); // miss; a spills cleanly

    // Decode of the parked image faults: the image is dropped and
    // the lookup degrades to a cold rebuild (no store attached).
    FaultInjector fi(0x22);
    fi.setRate(FaultSite::SpillDecode, 1.0);
    cache.setFaultInjector(&fi);
    const auto e = cache.acquire(a, 8, false);
    const PlanCache::Stats st = cache.stats();
    EXPECT_EQ(st.misses, 3);
    EXPECT_EQ(st.spill_hits, 0);
    EXPECT_GT(st.spill_decode_faults, 0);
    EXPECT_EQ(st.spill_decode_faults,
              fi.injected(FaultSite::SpillDecode));
    EXPECT_EQ(e->problem.a, a.a);
    // The faulted image was dropped, not re-read: a second lookup
    // with faults cleared still re-encodes.
    fi.setRate(FaultSite::SpillDecode, 0.0);
    cache.acquire(b, 8, false); // a spills again... (b evicts a)
    EXPECT_EQ(cache.stats().spill_decode_faults,
              st.spill_decode_faults);
}

TEST(PlanCache, DapMemoComputesOnce)
{
    PlanCache cache;
    int computed = 0;
    const auto compute = [&] {
        ++computed;
        DapStats st;
        st.comparisons = 123;
        return st;
    };
    const uint64_t key = PlanCache::combine(0xD0, 7);
    EXPECT_EQ(cache.dapStats(key, compute).comparisons, 123);
    EXPECT_EQ(cache.dapStats(key, compute).comparisons, 123);
    EXPECT_EQ(computed, 1);
    // A different key computes again.
    cache.dapStats(PlanCache::combine(0xD0, 8), compute);
    EXPECT_EQ(computed, 2);
}

TEST(PlanCache, CachedGemmRunsAreBitwiseIdentical)
{
    Rng rng(0xE0);
    for (int trial = 0; trial < 6; ++trial) {
        const int m = static_cast<int>(rng.uniformInt(1, 80));
        const int k = 8 * static_cast<int>(rng.uniformInt(1, 24));
        const int n = static_cast<int>(rng.uniformInt(1, 64));
        const GemmProblem p = makeDbbGemm(m, k, n, 4, 4, rng);

        for (const ArrayConfig &cfg :
             {ArrayConfig::s2taW(), ArrayConfig::s2taAw(4),
              ArrayConfig::saZvcg(), ArrayConfig::saSmt(2)}) {
            const auto model = makeArrayModel(cfg);
            RunOptions plain;
            plain.compute_output = true;
            const GemmRun ref = model->run(p, plain);

            PlanCache cache;
            RunOptions cached = plain;
            cached.plan_cache = &cache;
            const GemmRun cold = model->run(p, cached);
            const GemmRun warm = model->run(p, cached);
            EXPECT_GE(cache.stats().hits, 1);

            RunOptions scalar = plain;
            scalar.engine = EngineKind::Scalar;
            const GemmRun sc = model->run(p, scalar);

            for (const GemmRun *r : {&cold, &warm, &sc}) {
                EXPECT_EQ(r->output, ref.output)
                    << cfg.name() << " trial " << trial;
                EXPECT_TRUE(r->events == ref.events)
                    << cfg.name() << " trial " << trial;
            }
        }
    }
}

std::vector<LayerWorkload>
testNetwork(Rng &rng)
{
    std::vector<LayerWorkload> layers;
    for (int groups : {1, 4, 16}) {
        LayerWorkload wl;
        wl.name = "l" + std::to_string(groups);
        const int in_c = 16, out_c = 16;
        const int gc = in_c / groups;
        wl.shape = {in_c, 10, 10, out_c, 3, 3, 1, 1, groups};
        wl.act_nnz = 4;
        wl.wgt_nnz = 4;
        wl.input = makeDbbTensor({10, 10, in_c}, 4, rng);
        const Int8Tensor tmp =
            makeDbbTensor({3, 3, out_c, gc}, std::min(4, gc), rng);
        wl.weights = Int8Tensor({3, 3, gc, out_c});
        for (int ky = 0; ky < 3; ++ky)
            for (int kx = 0; kx < 3; ++kx)
                for (int c = 0; c < gc; ++c)
                    for (int oc = 0; oc < out_c; ++oc)
                        wl.weights(ky, kx, c, oc) =
                            tmp(ky, kx, oc, c);
        layers.push_back(std::move(wl));
    }
    return layers;
}

TEST(PlanCache, NetworkSweepIdenticalAcrossCacheAndThreads)
{
    Rng rng(0xE1);
    const std::vector<LayerWorkload> layers = testNetwork(rng);
    const std::vector<ArrayConfig> sweep = {
        ArrayConfig::saZvcg(), ArrayConfig::s2taW(),
        ArrayConfig::s2taAw(4)};

    // Reference: serial, no cache.
    std::vector<NetworkRun> ref;
    for (const ArrayConfig &cfg : sweep) {
        AcceleratorConfig acfg;
        acfg.array = cfg;
        acfg.sim_threads = 1;
        NetworkRunOptions opt;
        opt.compute_output = true;
        ref.push_back(
            Accelerator(acfg).runNetwork(layers, opt));
    }

    for (int threads : {1, 0, 3}) {
        PlanCache cache;
        for (size_t c = 0; c < sweep.size(); ++c) {
            AcceleratorConfig acfg;
            acfg.array = sweep[c];
            acfg.sim_threads = threads;
            NetworkRunOptions opt;
            opt.compute_output = true;
            opt.plan_cache = &cache;
            const NetworkRun nr =
                Accelerator(acfg).runNetwork(layers, opt);
            ASSERT_EQ(nr.layers.size(), ref[c].layers.size());
            EXPECT_TRUE(nr.total == ref[c].total)
                << sweep[c].name() << " threads=" << threads;
            for (size_t i = 0; i < nr.layers.size(); ++i) {
                EXPECT_TRUE(nr.layers[i].output ==
                            ref[c].layers[i].output)
                    << sweep[c].name() << " threads=" << threads
                    << " layer " << i;
                EXPECT_TRUE(nr.layers[i].events ==
                            ref[c].layers[i].events)
                    << sweep[c].name() << " threads=" << threads
                    << " layer " << i;
            }
        }
        // The second and third configs share the DBB-side plans;
        // the sweep must hit for every reused layer.
        EXPECT_GT(cache.stats().hits, 0) << "threads=" << threads;
    }
}

TEST(PlanCache, AcquireLayerBatchesAndHits)
{
    Rng rng(0xE2);
    const std::vector<LayerWorkload> layers = testNetwork(rng);
    PlanCache cache;
    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::s2taAw(4);
    acfg.sim_threads = 1;
    const Accelerator acc(acfg);
    NetworkRunOptions opt;
    opt.plan_cache = &cache;

    (void)acc.runNetwork(layers, opt);
    const PlanCache::Stats cold = cache.stats();
    // One entry per (layer, group): 1 + 4 + 16, plus DAP memo
    // misses per layer.
    EXPECT_EQ(cold.entries, 21);

    (void)acc.runNetwork(layers, opt);
    const PlanCache::Stats warm = cache.stats();
    EXPECT_EQ(warm.misses, cold.misses)
        << "second pass must not re-encode anything";
    EXPECT_GT(warm.hits, cold.hits);
}

} // anonymous namespace
} // namespace s2ta
