/**
 * @file
 * Shared fixture of the differential backend-conformance suite.
 *
 * Every backend registered in BackendRegistry is run through the
 * same property tests (tests/arch/test_backend_conformance.cc):
 * randomized layer shapes, queue depths, submission orders and
 * completion interleavings, asserting bitwise-identical
 * NetworkRuns, reconciled DMA/residency counters, and
 * thread-count-independent results against the synchronous
 * Accelerator reference.
 *
 * To put a new backend under the suite, register it — nothing else:
 *
 *     BackendRegistry::add("my-backend",
 *         [](const AcceleratorConfig &acfg,
 *            const BackendConfig &bcfg) {
 *             return std::make_unique<MyBackend>(acfg, bcfg);
 *         });
 *
 * before the suite instantiates (e.g. from a static initializer in
 * its translation unit, as test_backend_conformance.cc itself does
 * for the "conformance-mirror" example backend). The suite is
 * parameterized over BackendRegistry::names(), so the new name is
 * picked up automatically.
 */

#ifndef S2TA_TESTS_ARCH_BACKEND_CONFORMANCE_HH
#define S2TA_TESTS_ARCH_BACKEND_CONFORMANCE_HH

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/backend.hh"
#include "base/random.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace conformance {

/** Device config the suite runs: the full S2TA-AW design exercises
 *  every encode path (W-DBB, A-DBB, DAP) a backend must carry. */
inline AcceleratorConfig
deviceConfig(int sim_threads = 1)
{
    AcceleratorConfig cfg;
    cfg.array = ArrayConfig::s2taAw(4);
    cfg.sim_threads = sim_threads;
    return cfg;
}

/**
 * One randomized conv layer: grouped/depthwise fan-outs, ragged
 * spatial dims, strides, padding, batches, and per-layer DBB
 * bounds all vary with @p rng. Operands are generated to satisfy
 * the bounds they declare (block structure along channels, with
 * weights transposed into the (kh, kw, gc, oc) layout the lowering
 * expects).
 */
inline LayerWorkload
randomLayer(Rng &rng, int index)
{
    LayerWorkload wl;
    wl.name = "conf_layer_" + std::to_string(index);

    // (groups, group-channels) pairs chosen so every group's
    // channel segment stays inside the 8-aligned blocks
    // makeDbbTensor structures (in_c a multiple of 8, and gc
    // dividing or being a multiple of 8): the declared DBB bounds
    // then survive im2col for any spatial position and batch.
    struct Pick
    {
        int groups, gc;
    };
    const Pick picks[] = {{1, 8},  {1, 16}, {2, 4}, {2, 8},
                          {4, 4},  {4, 8},  {16, 1}};
    const Pick pick =
        picks[rng.uniformInt(0, std::size(picks) - 1)];
    const int groups = pick.groups;
    const int gc = pick.gc;
    const int in_c = gc * groups;
    const int goc = groups >= 8
                        ? static_cast<int>(rng.uniformInt(1, 2))
                        : 4 * static_cast<int>(rng.uniformInt(1, 2));
    const int out_c = goc * groups;
    const int h = static_cast<int>(rng.uniformInt(5, 9));
    const int w = static_cast<int>(rng.uniformInt(5, 9));
    const int kern = rng.uniformInt(0, 1) ? 3 : 1;
    const int stride = static_cast<int>(rng.uniformInt(1, 2));
    const int pad = kern == 3 ? static_cast<int>(rng.uniformInt(0, 1))
                              : 0;
    const int batch = static_cast<int>(rng.uniformInt(1, 2));

    wl.shape = {in_c, h, w, out_c, kern, kern, stride, pad, groups};
    wl.batch = batch;
    const int act_bounds[] = {2, 4, 8};
    wl.act_nnz =
        act_bounds[rng.uniformInt(0, std::size(act_bounds) - 1)];
    wl.wgt_nnz = static_cast<int>(rng.uniformInt(1, 4));

    std::vector<int> in_shape = {h, w, in_c};
    if (batch > 1)
        in_shape.insert(in_shape.begin(), batch);
    wl.input = makeDbbTensor(in_shape, wl.act_nnz, rng);

    // W-DBB blocks run along the input-channel dimension: generate
    // channel-innermost and transpose into (kh, kw, gc, oc).
    const Int8Tensor tmp = makeDbbTensor(
        {kern, kern, out_c, gc}, std::min(wl.wgt_nnz, gc), rng);
    wl.weights = Int8Tensor({kern, kern, gc, out_c});
    for (int ky = 0; ky < kern; ++ky)
        for (int kx = 0; kx < kern; ++kx)
            for (int c = 0; c < gc; ++c)
                for (int oc = 0; oc < out_c; ++oc)
                    wl.weights(ky, kx, c, oc) = tmp(ky, kx, oc, c);
    return wl;
}

/** A randomized little network. */
inline std::vector<LayerWorkload>
randomNetwork(uint64_t seed, int n_layers)
{
    Rng rng(seed);
    std::vector<LayerWorkload> layers;
    layers.reserve(static_cast<size_t>(n_layers));
    for (int i = 0; i < n_layers; ++i)
        layers.push_back(randomLayer(rng, i));
    return layers;
}

/** The options every conformance run uses: functional outputs on,
 *  so bitwise identity covers results, not just events. */
inline NetworkRunOptions
runOptions()
{
    NetworkRunOptions opt;
    opt.compute_output = true;
    return opt;
}

/** The synchronous single-thread reference every backend's output
 *  is differentially compared against. */
inline NetworkRun
referenceRun(const std::vector<LayerWorkload> &layers)
{
    const Accelerator acc(deviceConfig(1));
    return acc.runNetwork(layers, runOptions());
}

/** Assert two layer records are bitwise identical: every event
 *  counter, the DMA/residency ledger, and the functional output. */
inline void
expectSameLayer(const LayerRun &a, const LayerRun &b,
                const char *what)
{
    EXPECT_TRUE(a.events == b.events) << what << ": events";
    EXPECT_TRUE(a.output == b.output) << what << ": output";
    EXPECT_EQ(a.dense_macs, b.dense_macs) << what;
    EXPECT_EQ(a.h2d_bytes, b.h2d_bytes) << what;
    EXPECT_EQ(a.d2h_bytes, b.d2h_bytes) << what;
    EXPECT_EQ(a.compute_cycles, b.compute_cycles) << what;
    EXPECT_EQ(a.memory_bound, b.memory_bound) << what;
    EXPECT_EQ(a.batch, b.batch) << what;
}

/** Assert two whole-network runs are bitwise identical. */
inline void
expectSameRun(const NetworkRun &a, const NetworkRun &b,
              const char *what)
{
    EXPECT_TRUE(a.total == b.total) << what << ": totals";
    EXPECT_EQ(a.dense_macs, b.dense_macs) << what;
    EXPECT_EQ(a.fault_layer, b.fault_layer) << what;
    ASSERT_EQ(a.layers.size(), b.layers.size()) << what;
    for (size_t i = 0; i < a.layers.size(); ++i)
        expectSameLayer(a.layers[i], b.layers[i], what);
}

/**
 * Reconcile a backend's counters against the run it produced: every
 * submitted command completed, the staged/downloaded byte ledger
 * matches the run's per-layer DMA events exactly, and local
 * backends model zero transfer.
 */
inline void
expectStatsReconcile(const Backend &be, const BackendNetworkRun &r)
{
    const BackendStats st = be.stats();
    const int64_t n = static_cast<int64_t>(r.run.layers.size());
    EXPECT_EQ(st.submitted, n);
    EXPECT_EQ(st.completed, n);
    EXPECT_EQ(st.h2d_bytes, r.h2d_bytes);
    EXPECT_EQ(st.d2h_bytes, r.d2h_bytes);
    EXPECT_EQ(st.transfer_cycles, r.transfer_cycles);
    int64_t h2d = 0, d2h = 0, dma = 0;
    for (const LayerRun &lr : r.run.layers) {
        // The residency ledger partitions the DMA ledger, per layer.
        EXPECT_EQ(lr.h2d_bytes + lr.d2h_bytes, lr.events.dma_bytes)
            << lr.name;
        h2d += lr.h2d_bytes;
        d2h += lr.d2h_bytes;
        dma += lr.events.dma_bytes;
    }
    EXPECT_EQ(st.h2d_bytes, h2d);
    EXPECT_EQ(st.d2h_bytes, d2h);
    EXPECT_EQ(st.h2d_bytes + st.d2h_bytes, dma);
}

} // namespace conformance
} // namespace s2ta

#endif // S2TA_TESTS_ARCH_BACKEND_CONFORMANCE_HH
