/** @file Pins the on-disk plan-store format against a checked-in
 *  golden fixture and sweeps every header byte, so any layout
 *  change that forgets to bump kPlanStoreVersion fails loudly here.
 *
 *  The golden file (tests/data/plan_store_golden.s2ta) is the
 *  serialized form of a fixed-seed entry; regenerate it — only
 *  after a deliberate format bump — with
 *
 *      S2TA_UPDATE_GOLDEN=1 ./tests/arch_test_plan_store_format
 *
 *  from the build directory (writes into the source tree).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "arch/plan_cache.hh"
#include "arch/plan_store.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/** The fixed-seed entry the golden fixture serializes. */
CachedPlan
goldenEntry()
{
    Rng rng(0x601D);
    GemmProblem p = makeDbbGemm(16, 32, 8, 2, 2, rng);
    return CachedPlan(std::move(p), 8, /*dense_mirror=*/false);
}

std::string
goldenPath()
{
    return std::string(S2TA_TEST_DATA_DIR) +
           "/plan_store_golden.s2ta";
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Equality at the image level: two entries serialize identically
 *  under the same key iff they are structurally identical. */
void
expectSameImage(const CachedPlan &a, const CachedPlan &b,
                uint64_t key)
{
    EXPECT_EQ(PlanStore::serialize(key, a),
              PlanStore::serialize(key, b));
}

TEST(PlanStoreFormat, GoldenFixtureIsByteExact)
{
    const CachedPlan entry = goldenEntry();
    const uint64_t key = PlanCache::fingerprint(entry.problem);
    const auto image = PlanStore::serialize(key, entry);

    if (std::getenv("S2TA_UPDATE_GOLDEN") != nullptr) {
        writeFile(goldenPath(), image);
        GTEST_SKIP() << "golden fixture regenerated at "
                     << goldenPath();
    }

    // Byte-exact against the checked-in fixture: a drifted layout
    // (or a nondeterministic serializer) fails here before it can
    // silently invalidate every store directory in the field.
    const auto golden = readFile(goldenPath());
    ASSERT_FALSE(golden.empty()) << goldenPath();
    EXPECT_EQ(image, golden);

    // And the fixture hydrates to the entry it was made from.
    const auto back =
        PlanStore::deserialize(golden.data(), golden.size(), key);
    ASSERT_NE(back, nullptr);
    expectSameImage(entry, *back, key);
}

TEST(PlanStoreFormat, VersionMutationsReject)
{
    const CachedPlan entry = goldenEntry();
    const uint64_t key = PlanCache::fingerprint(entry.problem);
    const auto image = PlanStore::serialize(key, entry);
    // Version lives at header bytes 4..7, little-endian uint32.
    for (const uint32_t v :
         {uint32_t{0}, kPlanStoreVersion + 1, uint32_t{0xffffffff}}) {
        auto bad = image;
        std::memcpy(bad.data() + 4, &v, sizeof(v));
        EXPECT_EQ(PlanStore::deserialize(bad.data(), bad.size(), key),
                  nullptr)
            << "version " << v;
    }
    // The unmutated image still hydrates (the sweep above did not
    // pass vacuously).
    EXPECT_NE(PlanStore::deserialize(image.data(), image.size(), key),
              nullptr);
}

TEST(PlanStoreFormat, HeaderByteSweepPinsTheRejectSet)
{
    const CachedPlan entry = goldenEntry();
    const uint64_t key = PlanCache::fingerprint(entry.problem);
    const auto image = PlanStore::serialize(key, entry);

    // Bytes 0..40 are load-bearing (magic, version, key, payload
    // hash, dims, the mirror flag bit): flipping any of them must
    // reject. Bytes 41..43 (undefined flag bits) and 44..47
    // (reserved) are ignored by a version-1 reader, so flips there
    // must still hydrate — that tolerance is what lets a future
    // version assign them meaning without stranding old files.
    for (size_t off = 0; off < 48; ++off) {
        auto bad = image;
        bad[off] ^= 0xff;
        const auto got =
            PlanStore::deserialize(bad.data(), bad.size(), key);
        if (off <= 40) {
            EXPECT_EQ(got, nullptr) << "header byte " << off;
        } else {
            ASSERT_NE(got, nullptr) << "header byte " << off;
            expectSameImage(entry, *got, key);
        }
    }
}

TEST(PlanStoreFormat, TruncationRejects)
{
    const CachedPlan entry = goldenEntry();
    const uint64_t key = PlanCache::fingerprint(entry.problem);
    const auto image = PlanStore::serialize(key, entry);
    for (const size_t len :
         {size_t{0}, size_t{47}, image.size() - 1}) {
        EXPECT_EQ(PlanStore::deserialize(image.data(), len, key),
                  nullptr)
            << "len " << len;
    }
}

TEST(PlanStoreFormat, CorruptFileIsQuarantinedNotFatal)
{
    const CachedPlan entry = goldenEntry();
    const uint64_t key = PlanCache::fingerprint(entry.problem);
    const auto image = PlanStore::serialize(key, entry);

    const std::string dir =
        testing::TempDir() + "s2ta_store_format_quar";
    std::filesystem::remove_all(dir);
    const PlanStore store(dir);

    // A stale-version file (e.g. left by an older build) is
    // rejected, renamed aside, and never re-read.
    auto stale = image;
    const uint32_t old_version = kPlanStoreVersion + 7;
    std::memcpy(stale.data() + 4, &old_version, sizeof(old_version));
    writeFile(store.pathFor(key), stale);

    const auto r = store.load(key);
    EXPECT_EQ(r.entry, nullptr);
    EXPECT_TRUE(r.rejected);
    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
    EXPECT_TRUE(
        std::filesystem::exists(store.pathFor(key) + ".quar"));
    EXPECT_EQ(store.stats().quarantined, 1);

    // The quarantined name is dead to load(): the slot reads as a
    // plain miss now, and a fresh save publishes over it cleanly.
    const auto miss = store.load(key);
    EXPECT_EQ(miss.entry, nullptr);
    EXPECT_FALSE(miss.rejected);
    ASSERT_TRUE(store.save(key, entry));
    const auto hit = store.load(key);
    ASSERT_NE(hit.entry, nullptr);
    EXPECT_FALSE(hit.rejected);
    expectSameImage(entry, *hit.entry, key);
}

TEST(PlanStoreFormat, GoldenFixtureLoadsThroughAStore)
{
    if (std::getenv("S2TA_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "regeneration run";
    const CachedPlan entry = goldenEntry();
    const uint64_t key = PlanCache::fingerprint(entry.problem);

    // Drop the checked-in fixture into a store directory under its
    // key's canonical name: load() must treat it as a first-class
    // entry — the format, not this process's serializer, is the
    // compatibility contract.
    const std::string dir =
        testing::TempDir() + "s2ta_store_format_golden";
    std::filesystem::remove_all(dir);
    const PlanStore store(dir);
    const auto golden = readFile(goldenPath());
    ASSERT_FALSE(golden.empty());
    writeFile(store.pathFor(key), golden);

    const auto r = store.load(key);
    ASSERT_NE(r.entry, nullptr);
    EXPECT_FALSE(r.rejected);
    expectSameImage(entry, *r.entry, key);
}

} // anonymous namespace
} // namespace s2ta
