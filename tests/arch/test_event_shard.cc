/** @file Determinism tests for the sharded per-PE timing/event
 *  loops: every model's event counts (and the energy roll-up, a
 *  pure function of them) must be bitwise identical whether the
 *  tile-grid and SMT sampling loops run serially or sharded across
 *  a pool, at any lane count — on grids above the shard cutover
 *  (stripe dispatch engaged) and on tiny single-stripe grids (the
 *  inline short-circuit). */

#include <gtest/gtest.h>

#include "arch/models.hh"
#include "base/thread_pool.hh"
#include "energy/energy_model.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/** Tiles of an unfolded m x n output on @p cfg's array. */
int64_t
unfoldedTiles(const ArrayConfig &cfg, int m, int n)
{
    const int64_t rt = (m + cfg.tileRows() - 1) / cfg.tileRows();
    const int64_t ct = (n + cfg.tileCols() - 1) / cfg.tileCols();
    return rt * ct;
}

/** Run @p p serially, then on 2-lane and 8-lane pools, asserting
 *  events and the per-component energy roll-up are identical. */
void
expectLaneCountInvariant(const ArrayConfig &cfg,
                         const GemmProblem &p, bool compute_output)
{
    const auto model = makeArrayModel(cfg);
    RunOptions serial;
    serial.compute_output = compute_output;
    const GemmRun a = model->run(p, serial);

    AcceleratorConfig acfg;
    acfg.array = cfg;
    const EnergyModel em(TechParams::tsmc16(), acfg);
    const EnergyBreakdown ea = em.energy(a.events);

    for (const int workers : {1, 7}) {
        ThreadPool pool(workers);
        RunOptions sharded = serial;
        sharded.shard_pool = &pool;
        const GemmRun b = model->run(p, sharded);
        EXPECT_TRUE(a.events == b.events)
            << cfg.name() << " workers=" << workers;
        if (compute_output) {
            EXPECT_EQ(a.output, b.output)
                << cfg.name() << " workers=" << workers;
        }
        const EnergyBreakdown eb = em.energy(b.events);
        EXPECT_TRUE(ea.pj == eb.pj)
            << cfg.name() << " workers=" << workers;
    }
}

TEST(EventShard, LargeTileGridIsLaneCountInvariant)
{
    // Grids past kShardTileThreshold: the per-tile operand-register
    // loops actually stripe across the pool. K stays small so the
    // big M x N output grid, not the encode, dominates the test.
    Rng rng(0x54A2);
    {
        const ArrayConfig cfg = ArrayConfig::s2taW(); // 16x32 tiles
        ASSERT_GE(unfoldedTiles(cfg, 1024, 1024),
                  ArrayModel::kShardTileThreshold);
        const GemmProblem p =
            makeDbbGemm(1024, 64, 1024, 4, 8, rng);
        expectLaneCountInvariant(cfg, p, false);
    }
    {
        const ArrayConfig cfg = ArrayConfig::s2taAw(4); // 64x32
        ASSERT_GE(unfoldedTiles(cfg, 2048, 1024),
                  ArrayModel::kShardTileThreshold);
        const GemmProblem p =
            makeDbbGemm(2048, 64, 1024, 4, 4, rng);
        expectLaneCountInvariant(cfg, p, false);
    }
}

TEST(EventShard, TinyGridIsLaneCountInvariant)
{
    // Single-tile grids: the pool is set but the loops stay on the
    // serial path (below the cutover / a single SMT sample tile);
    // outputs are cheap enough to compare too.
    Rng rng(0x54A3);
    {
        const ArrayConfig cfg = ArrayConfig::s2taW();
        ASSERT_LT(unfoldedTiles(cfg, 16, 32),
                  ArrayModel::kShardTileThreshold);
        expectLaneCountInvariant(
            cfg, makeDbbGemm(16, 64, 32, 4, 8, rng), true);
    }
    {
        const ArrayConfig cfg = ArrayConfig::s2taAw(4);
        expectLaneCountInvariant(
            cfg, makeDbbGemm(64, 64, 32, 4, 4, rng), true);
    }
    {
        const ArrayConfig cfg = ArrayConfig::saSmt(2);
        expectLaneCountInvariant(
            cfg,
            makeUnstructuredGemm(32, 64, 64, 0.5, 0.5, rng), true);
    }
}

TEST(EventShard, SmtSampledTimingIsLaneCountInvariant)
{
    // The SMT queue automaton fans its sampled tiles across the
    // pool after a serial RNG pre-draw; sampled cycle totals (and
    // so ev.cycles) must not depend on the lane count. The grid is
    // large enough that all smt_sample_tiles draws land on distinct
    // tiles with high probability.
    Rng rng(0x54A4);
    const ArrayConfig cfg = ArrayConfig::saSmt(2); // 32x64 tiles
    ASSERT_GE(unfoldedTiles(cfg, 1024, 2048),
              ArrayModel::kShardTileThreshold);
    const GemmProblem p =
        makeUnstructuredGemm(1024, 64, 2048, 0.5, 0.5, rng);
    expectLaneCountInvariant(cfg, p, false);
}

} // namespace
} // namespace s2ta
