/** @file Tests for the skinny-GEMM fold mapping (FC and depthwise
 *  layers must not idle the array; paper Sec. 8.3). */

#include <gtest/gtest.h>

#include "arch/accelerator.hh"
#include "arch/models.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

int64_t
cyclesFor(const ArrayConfig &cfg, const GemmProblem &p)
{
    RunOptions opt;
    opt.compute_output = false;
    return makeArrayModel(cfg)->run(p, opt).events.cycles;
}

TEST(TileGrid, FcRowFoldRecoversColumnThroughput)
{
    Rng rng(1);
    // Batch-1 FC: m = 1. Without folding, a 32x64 array would need
    // ceil(4096/64) = 64 passes; with row folding it covers
    // 64 * 32 = 2048 columns per pass -> 2 passes.
    const GemmProblem p =
        makeUnstructuredGemm(1, 1024, 4096, 0.5, 0.5, rng);
    const int64_t cycles = cyclesFor(ArrayConfig::saZvcg(), p);
    const int64_t per_pass = 1024 + 32 + 64;
    EXPECT_EQ(cycles, 2 * per_pass);
}

TEST(TileGrid, DepthwiseColFoldRecoversRowThroughput)
{
    Rng rng(2);
    // Depthwise group: n = 1, large m. Column folding processes
    // tileCols row stripes concurrently.
    const GemmProblem p =
        makeUnstructuredGemm(12544, 16, 1, 0.3, 0.3, rng);
    const int64_t cycles = cyclesFor(ArrayConfig::saZvcg(), p);
    // eff_rows = 32 * 64 = 2048 -> ceil(12544/2048) = 7 passes.
    EXPECT_EQ(cycles, 7 * (16 + 32 + 64));
}

TEST(TileGrid, FoldDoesNotChangeEventTotals)
{
    // Folding remaps work across the array; the data-dependent
    // event totals (MACs, matched products) must be identical.
    Rng rng(3);
    const GemmProblem skinny =
        makeUnstructuredGemm(4, 256, 512, 0.5, 0.5, rng);
    RunOptions opt;
    opt.compute_output = false;
    const auto r = makeArrayModel(ArrayConfig::saZvcg())
                       ->run(skinny, opt);
    const OperandProfile prof = OperandProfile::build(skinny);
    EXPECT_EQ(r.events.macs_executed, prof.matched_products);
    EXPECT_EQ(r.events.macSlots(),
              static_cast<int64_t>(skinny.m) * skinny.k * skinny.n);
}

TEST(TileGrid, SquareGemmsUnaffected)
{
    Rng rng(4);
    const GemmProblem p =
        makeUnstructuredGemm(64, 128, 128, 0.5, 0.5, rng);
    // 2x2 plain tiles, no folding.
    EXPECT_EQ(cyclesFor(ArrayConfig::saZvcg(), p),
              4 * (128 + 32 + 64));
}

TEST(TileGrid, FoldAppliesToS2taAwToo)
{
    Rng rng(5);
    GemmProblem p = makeDbbGemm(1, 512, 2048, 4, 2, rng);
    // AW tile is 64 x 32; with m = 1 folding covers 2048 columns in
    // one pass: nblocks * nnz_a + fill.
    const int64_t cycles =
        cyclesFor(ArrayConfig::s2taAw(2), p);
    EXPECT_EQ(cycles, (512 / 8) * 2 + 8 + 8 + 8);
}

TEST(TileGrid, FunctionalOutputUnaffectedByFold)
{
    Rng rng(6);
    GemmProblem p = makeDbbGemm(2, 64, 200, 4, 3, rng);
    for (const ArrayConfig &cfg :
         {ArrayConfig::sa(), ArrayConfig::saSmt(2),
          ArrayConfig::s2taW(), ArrayConfig::s2taAw(3)}) {
        EXPECT_EQ(makeArrayModel(cfg)->run(p).output,
                  gemmReference(p))
            << cfg.name();
    }
}

TEST(TileGrid, FcLayerIsMemoryBoundOnAccelerator)
{
    // The paper's Sec. 8.3 claim depends on the fold: FC compute
    // must be cheap enough that DMA dominates.
    Rng rng(7);
    LayerWorkload wl;
    wl.name = "fc";
    wl.shape = {9216, 1, 1, 4096, 1, 1, 1, 0, 1};
    wl.act_nnz = 4;
    wl.wgt_nnz = 4;
    wl.input = makeDbbTensor({1, 1, 9216}, 4, rng);
    Int8Tensor tmp = makeDbbTensor({1, 1, 4096, 9216}, 4, rng);
    wl.weights = Int8Tensor({1, 1, 9216, 4096});
    for (int c = 0; c < 9216; ++c)
        for (int oc = 0; oc < 4096; ++oc)
            wl.weights(0, 0, c, oc) = tmp(0, 0, oc, c);

    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::s2taAw(4);
    const Accelerator acc(acfg);
    const LayerRun lr = acc.runLayer(wl);
    EXPECT_TRUE(lr.memory_bound);
    // Compute is now a small fraction of the DMA-bound time.
    EXPECT_LT(lr.compute_cycles, lr.events.cycles / 2);
}

} // anonymous namespace
} // namespace s2ta
