/** @file Unit tests for the operand non-zero profile. */

#include <gtest/gtest.h>

#include "arch/array_model.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(OperandProfile, CountsMatchBruteForce)
{
    Rng rng(1);
    const GemmProblem p =
        makeUnstructuredGemm(13, 24, 9, 0.6, 0.4, rng);
    const OperandProfile prof = OperandProfile::build(p);

    // Brute-force recount.
    int64_t matched = 0;
    for (int i = 0; i < p.m; ++i) {
        int row_nz = 0;
        for (int kk = 0; kk < p.k; ++kk)
            row_nz += p.actAt(i, kk) != 0;
        EXPECT_EQ(prof.row_nz[static_cast<size_t>(i)], row_nz);
    }
    for (int j = 0; j < p.n; ++j) {
        int col_nz = 0;
        for (int kk = 0; kk < p.k; ++kk)
            col_nz += p.wgtAt(kk, j) != 0;
        EXPECT_EQ(prof.col_nz[static_cast<size_t>(j)], col_nz);
    }
    for (int i = 0; i < p.m; ++i)
        for (int j = 0; j < p.n; ++j)
            for (int kk = 0; kk < p.k; ++kk)
                matched += p.actAt(i, kk) != 0 &&
                           p.wgtAt(kk, j) != 0;
    EXPECT_EQ(prof.matched_products, matched);
}

TEST(OperandProfile, ExactSparsityFromGenerator)
{
    Rng rng(2);
    // 50% weight, 75% activation sparsity with exact per-vector
    // counts.
    const GemmProblem p =
        makeUnstructuredGemm(16, 32, 8, 0.5, 0.75, rng);
    const OperandProfile prof = OperandProfile::build(p);
    EXPECT_EQ(prof.act_nnz, 16 * 8);  // 25% of 32 per row
    EXPECT_EQ(prof.wgt_nnz, 8 * 16);  // 50% of 32 per column
}

TEST(OperandProfile, MatchedProductsIdentity)
{
    // matched == sum_k actNz(k) * wgtNz(k) by definition; verify
    // the identity holds on structured data too.
    Rng rng(3);
    const GemmProblem p = makeDbbGemm(10, 40, 6, 4, 2, rng);
    const OperandProfile prof = OperandProfile::build(p);
    int64_t expect = 0;
    for (int kk = 0; kk < p.k; ++kk)
        expect += static_cast<int64_t>(
                      prof.act_nz_at_k[static_cast<size_t>(kk)]) *
                  prof.wgt_nz_at_k[static_cast<size_t>(kk)];
    EXPECT_EQ(prof.matched_products, expect);
    // DBB 2/8 activations: exactly 2 per block per row.
    EXPECT_EQ(prof.act_nnz, 10ll * (40 / 8) * 2);
    EXPECT_EQ(prof.wgt_nnz, 6ll * (40 / 8) * 4);
}

} // anonymous namespace
} // namespace s2ta
