/** @file Property tests for the SIMD tiers of the mask-intersection
 *  row-dot kernel: across random masks (including all-zero runs and
 *  fully dense blocks), random stored values, and every row length
 *  around the tiers' batch widths, each compiled-in tier must match
 *  the scalar rank-gather loop bit for bit. Tiers the running CPU
 *  lacks fall back to the scalar alias and pass trivially. */

#include <gtest/gtest.h>

#include <vector>

#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"
#include "base/random.hh"
#include "core/dbb.hh"

namespace s2ta {
namespace {

/** Random valid DBB block: random mask, values in the stored slots
 *  (non-zero, as dbbEncode would produce), zeros beyond them. */
DbbBlock
randomBlock(Rng &rng, double zero_mask_prob)
{
    DbbBlock b;
    if (rng.uniformReal() < zero_mask_prob)
        return b; // all-zero block, the RLE/expansion edge case
    b.mask = static_cast<Mask8>(rng.uniformInt(1, 255));
    const int stored = maskPopcount(b.mask);
    for (int s = 0; s < stored; ++s) {
        int8_t v = 0;
        while (v == 0)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        b.values[static_cast<size_t>(s)] = v;
    }
    return b;
}

std::vector<DbbBlock>
randomRow(Rng &rng, int nblocks, double zero_mask_prob)
{
    std::vector<DbbBlock> row(static_cast<size_t>(nblocks));
    for (auto &b : row)
        b = randomBlock(rng, zero_mask_prob);
    return row;
}

TEST(GemmKernels, SimdTiersMatchScalarRowDot)
{
    Rng rng(0xA2C2);
    // Row lengths around both batch widths (SSSE3 pairs, AVX2
    // quads) including the empty row and every tail length.
    for (const int nblocks :
         {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 33, 64}) {
        for (const double zp : {0.0, 0.3, 0.9}) {
            for (int trial = 0; trial < 8; ++trial) {
                const auto a = randomRow(rng, nblocks, zp);
                const auto w = randomRow(rng, nblocks, zp);
                const int32_t want =
                    dbbDotRow(a.data(), w.data(), nblocks);
                if (dbbSimdKernelSupportedImpl()) {
                    EXPECT_EQ(dbbDotRowSimdV2(a.data(), w.data(),
                                              nblocks),
                              want)
                        << "ssse3, nblocks " << nblocks;
                }
                if (dbbAvx2KernelSupportedImpl()) {
                    EXPECT_EQ(dbbDotRowAvx2(a.data(), w.data(),
                                            nblocks),
                              want)
                        << "avx2, nblocks " << nblocks;
                }
            }
        }
    }
}

TEST(GemmKernels, ExtremeValuesDoNotDiverge)
{
    // INT8 extremes exercise the sign-extension paths: (-128)^2
    // sums must agree across every tier.
    for (const int nblocks : {1, 3, 4, 5, 8}) {
        std::vector<DbbBlock> a(static_cast<size_t>(nblocks));
        std::vector<DbbBlock> w(static_cast<size_t>(nblocks));
        for (int i = 0; i < nblocks; ++i) {
            a[static_cast<size_t>(i)].mask = 0xff;
            w[static_cast<size_t>(i)].mask = 0xff;
            for (int s = 0; s < 8; ++s) {
                a[static_cast<size_t>(i)]
                    .values[static_cast<size_t>(s)] =
                    (s % 2 == 0) ? int8_t{-128} : int8_t{127};
                w[static_cast<size_t>(i)]
                    .values[static_cast<size_t>(s)] =
                    (s % 3 == 0) ? int8_t{-128} : int8_t{-1};
            }
        }
        const int32_t want = dbbDotRow(a.data(), w.data(), nblocks);
        if (dbbSimdKernelSupportedImpl()) {
            EXPECT_EQ(dbbDotRowSimdV2(a.data(), w.data(), nblocks),
                      want);
        }
        if (dbbAvx2KernelSupportedImpl()) {
            EXPECT_EQ(dbbDotRowAvx2(a.data(), w.data(), nblocks),
                      want);
        }
    }
}

TEST(GemmKernels, DispatcherPrefersWidestTier)
{
    dbbForceScalarKernel(true);
    EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Scalar);
    dbbForceScalarKernel(false);
    if (dbbAvx2KernelSupportedImpl())
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Avx2);
    else if (dbbSimdKernelAvailable())
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::SimdV2);
    else
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Scalar);
}

} // namespace
} // namespace s2ta
