/** @file Property tests for the SIMD tiers of the mask-intersection
 *  row-dot kernel: across random masks (including all-zero runs and
 *  fully dense blocks), random stored values, and every row length
 *  around the tiers' batch widths, each compiled-in tier must match
 *  the scalar rank-gather loop bit for bit. Tiers the running CPU
 *  lacks fall back to the scalar alias and pass trivially. The same
 *  contract covers the AVX-512 sub-kernels (VNNI dense dot,
 *  VPOPCNTDQ profile derivation) and the forced-cap dispatcher used
 *  by the benches' --simd flag.
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/array_model.hh"
#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"
#include "base/random.hh"
#include "core/dbb.hh"
#include "tensor/conv.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/** Random valid DBB block: random mask, values in the stored slots
 *  (non-zero, as dbbEncode would produce), zeros beyond them. */
DbbBlock
randomBlock(Rng &rng, double zero_mask_prob)
{
    DbbBlock b;
    if (rng.uniformReal() < zero_mask_prob)
        return b; // all-zero block, the RLE/expansion edge case
    b.mask = static_cast<Mask8>(rng.uniformInt(1, 255));
    const int stored = maskPopcount(b.mask);
    for (int s = 0; s < stored; ++s) {
        int8_t v = 0;
        while (v == 0)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        b.values[static_cast<size_t>(s)] = v;
    }
    return b;
}

std::vector<DbbBlock>
randomRow(Rng &rng, int nblocks, double zero_mask_prob)
{
    std::vector<DbbBlock> row(static_cast<size_t>(nblocks));
    for (auto &b : row)
        b = randomBlock(rng, zero_mask_prob);
    return row;
}

TEST(GemmKernels, SimdTiersMatchScalarRowDot)
{
    Rng rng(0xA2C2);
    // Row lengths around every batch width (SSSE3 pairs, AVX2
    // quads, AVX-512 octets) including the empty row and every
    // tail length.
    for (const int nblocks :
         {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 33, 64}) {
        for (const double zp : {0.0, 0.3, 0.9}) {
            for (int trial = 0; trial < 8; ++trial) {
                const auto a = randomRow(rng, nblocks, zp);
                const auto w = randomRow(rng, nblocks, zp);
                const int32_t want =
                    dbbDotRow(a.data(), w.data(), nblocks);
                if (dbbSimdKernelSupportedImpl()) {
                    EXPECT_EQ(dbbDotRowSimdV2(a.data(), w.data(),
                                              nblocks),
                              want)
                        << "ssse3, nblocks " << nblocks;
                }
                if (dbbAvx2KernelSupportedImpl()) {
                    EXPECT_EQ(dbbDotRowAvx2(a.data(), w.data(),
                                            nblocks),
                              want)
                        << "avx2, nblocks " << nblocks;
                }
                if (dbbAvx512KernelSupportedImpl()) {
                    EXPECT_EQ(dbbDotRowAvx512(a.data(), w.data(),
                                              nblocks),
                              want)
                        << "avx512, nblocks " << nblocks;
                }
            }
        }
    }
}

TEST(GemmKernels, ExtremeValuesDoNotDiverge)
{
    // INT8 extremes exercise the sign-extension paths: (-128)^2
    // sums must agree across every tier.
    for (const int nblocks : {1, 3, 4, 5, 8, 9, 16}) {
        std::vector<DbbBlock> a(static_cast<size_t>(nblocks));
        std::vector<DbbBlock> w(static_cast<size_t>(nblocks));
        for (int i = 0; i < nblocks; ++i) {
            a[static_cast<size_t>(i)].mask = 0xff;
            w[static_cast<size_t>(i)].mask = 0xff;
            for (int s = 0; s < 8; ++s) {
                a[static_cast<size_t>(i)]
                    .values[static_cast<size_t>(s)] =
                    (s % 2 == 0) ? int8_t{-128} : int8_t{127};
                w[static_cast<size_t>(i)]
                    .values[static_cast<size_t>(s)] =
                    (s % 3 == 0) ? int8_t{-128} : int8_t{-1};
            }
        }
        const int32_t want = dbbDotRow(a.data(), w.data(), nblocks);
        if (dbbSimdKernelSupportedImpl()) {
            EXPECT_EQ(dbbDotRowSimdV2(a.data(), w.data(), nblocks),
                      want);
        }
        if (dbbAvx2KernelSupportedImpl()) {
            EXPECT_EQ(dbbDotRowAvx2(a.data(), w.data(), nblocks),
                      want);
        }
        if (dbbAvx512KernelSupportedImpl()) {
            EXPECT_EQ(dbbDotRowAvx512(a.data(), w.data(), nblocks),
                      want);
        }
    }
}

/** Scalar reference for the VNNI dense dot (the SSE2 denseDot in
 *  gemm_plan.cc is file-static, so the test carries its own). */
int32_t
denseDotRef(const int8_t *a, const int8_t *w, int k)
{
    int32_t sum = 0;
    for (int x = 0; x < k; ++x)
        sum += static_cast<int32_t>(a[x]) * w[x];
    return sum;
}

TEST(GemmKernels, VnniDenseDotMatchesScalar)
{
    if (!dbbVnniKernelSupportedImpl())
        GTEST_SKIP() << "no AVX512-VNNI on this host/build";
    Rng rng(0x51DD);
    // Lengths around the 64-byte batch width, incl. masked tails.
    for (const int k : {0, 1, 7, 63, 64, 65, 127, 128, 200, 1152}) {
        for (int trial = 0; trial < 8; ++trial) {
            std::vector<int8_t> a(static_cast<size_t>(k));
            std::vector<int8_t> w(static_cast<size_t>(k));
            for (int x = 0; x < k; ++x) {
                a[static_cast<size_t>(x)] = static_cast<int8_t>(
                    rng.uniformInt(-128, 127));
                w[static_cast<size_t>(x)] = static_cast<int8_t>(
                    rng.uniformInt(-128, 127));
            }
            EXPECT_EQ(dbbDenseDotVnni(a.data(), w.data(), k),
                      denseDotRef(a.data(), w.data(), k))
                << "k " << k;
        }
    }
    // The xor-0x80 bias correction at both INT8 extremes.
    std::vector<int8_t> a(96, int8_t{-128});
    std::vector<int8_t> w(96, int8_t{-128});
    for (size_t x = 0; x < a.size(); x += 2)
        w[x] = 127;
    EXPECT_EQ(dbbDenseDotVnni(a.data(), w.data(), 96),
              denseDotRef(a.data(), w.data(), 96));
}

void
expectProfilesEqual(const OperandProfile &a, const OperandProfile &b,
                    const char *what)
{
    EXPECT_EQ(a.row_nz, b.row_nz) << what;
    EXPECT_EQ(a.col_nz, b.col_nz) << what;
    EXPECT_EQ(a.act_nz_at_k, b.act_nz_at_k) << what;
    EXPECT_EQ(a.wgt_nz_at_k, b.wgt_nz_at_k) << what;
    EXPECT_EQ(a.act_nnz, b.act_nnz) << what;
    EXPECT_EQ(a.wgt_nnz, b.wgt_nnz) << what;
    EXPECT_EQ(a.matched_products, b.matched_products) << what;
}

/** Conv-shaped GEMM corpus (im2col of fuzz-style layer draws): the
 *  profile positions then carry the kernel-tap structure (zero
 *  pad rings, per-tap channel segments) instead of uniform noise. */
GemmProblem
fuzzConvGemm(Rng &rng)
{
    const int gc = 8 << rng.uniformInt(0, 1); // 8 or 16 channels
    const int out_c = static_cast<int>(rng.uniformInt(1, 24));
    const int kern_pick[] = {1, 2, 3, 5};
    const int kh =
        kern_pick[rng.uniformInt(0, std::size(kern_pick) - 1)];
    const int kw =
        kern_pick[rng.uniformInt(0, std::size(kern_pick) - 1)];
    const int h = static_cast<int>(rng.uniformInt(6, 14));
    const int w = static_cast<int>(rng.uniformInt(6, 14));
    const int stride = static_cast<int>(rng.uniformInt(1, 3));
    const int pad = static_cast<int>(rng.uniformInt(0, 2));

    const Conv2dShape shape = {gc, h, w, out_c, kh, kw, stride,
                               pad, 1};
    const int act_nnz = 1 << rng.uniformInt(0, 3);
    const Int8Tensor input =
        makeDbbTensor({h, w, gc}, act_nnz, rng);
    const Int8Tensor weights = makeDbbTensor(
        {kh, kw, gc, out_c},
        static_cast<int>(rng.uniformInt(1, 8)), rng);
    return im2colLower(shape, input, weights);
}

TEST(GemmKernels, ProfileDerivationMatchesScalarOnConvCorpus)
{
    // OperandProfile::fromDbb under the widest cap (VPOPCNTDQ
    // histogram path where supported) vs the forced-scalar per-bit
    // derivation vs the dense reference scan: all three must be
    // bitwise identical over conv-shaped operands. On hosts/builds
    // without the AVX-512 tier both caps run the same loops and the
    // test degrades to fromDbb-vs-build.
    Rng rng(0xF0CC);
    const DbbSpec dense8{8, 8};
    for (int trial = 0; trial < 12; ++trial) {
        const GemmProblem p = fuzzConvGemm(rng);
        const DbbMatrix act = DbbMatrix::fromActivations(p, dense8);
        const DbbMatrix wgt = DbbMatrix::fromWeights(p, dense8);
        const OperandProfile ref = OperandProfile::build(p);

        dbbForceKernelCap(DbbKernelKind::Scalar);
        const OperandProfile scalar =
            OperandProfile::fromDbb(p, act, wgt);
        dbbForceKernelCap(DbbKernelKind::Avx512);
        const OperandProfile simd =
            OperandProfile::fromDbb(p, act, wgt);

        expectProfilesEqual(simd, scalar, "simd vs scalar fromDbb");
        expectProfilesEqual(simd, ref, "fromDbb vs dense build");
        if (::testing::Test::HasFailure()) {
            ADD_FAILURE() << "trial " << trial << " m=" << p.m
                          << " k=" << p.k << " n=" << p.n;
            break;
        }
    }
}

TEST(GemmKernels, DispatcherPrefersWidestTier)
{
    dbbForceScalarKernel(true);
    EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Scalar);
    dbbForceScalarKernel(false);
    if (dbbAvx512KernelSupportedImpl())
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Avx512);
    else if (dbbAvx2KernelSupportedImpl())
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Avx2);
    else if (dbbSimdKernelAvailable())
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::SimdV2);
    else
        EXPECT_EQ(dbbActiveKernel(), DbbKernelKind::Scalar);
}

TEST(GemmKernels, ForcedCapClampsEveryTier)
{
    // The --simd flag's mechanism: a cap below the widest supported
    // tier must win, a cap above it must fall back to the widest,
    // and any cap below Avx512 must switch the VNNI dense dot and
    // the SIMD profile derivation off (a forced "avx2" run may not
    // execute a single AVX-512 instruction).
    const DbbKernelKind widest = [] {
        dbbForceKernelCap(DbbKernelKind::Avx512);
        return dbbActiveKernel();
    }();
    for (const DbbKernelKind cap :
         {DbbKernelKind::Scalar, DbbKernelKind::SimdV2,
          DbbKernelKind::Avx2, DbbKernelKind::Avx512}) {
        dbbForceKernelCap(cap);
        EXPECT_EQ(dbbKernelCap(), cap);
        const DbbKernelKind want = cap < widest ? cap : widest;
        EXPECT_EQ(dbbActiveKernel(), want)
            << "cap " << dbbKernelKindName(cap);
        if (cap < DbbKernelKind::Avx512) {
            EXPECT_FALSE(dbbVnniDenseEnabled())
                << dbbKernelKindName(cap);
            EXPECT_FALSE(dbbProfileSimdEnabled())
                << dbbKernelKindName(cap);
        }
    }
    dbbForceKernelCap(DbbKernelKind::Avx512); // restore auto
    EXPECT_EQ(dbbVnniDenseEnabled(), dbbVnniKernelSupportedImpl());
    EXPECT_EQ(dbbProfileSimdEnabled(),
              dbbVpopcntKernelSupportedImpl());
}

TEST(GemmKernels, KernelKindNamesAreStable)
{
    // Bench JSON contract: these strings appear as "simd_kernel"
    // values and CI asserts on them verbatim.
    EXPECT_STREQ(dbbKernelKindName(DbbKernelKind::Scalar), "scalar");
    EXPECT_STREQ(dbbKernelKindName(DbbKernelKind::SimdV2), "ssse3");
    EXPECT_STREQ(dbbKernelKindName(DbbKernelKind::Avx2), "avx2");
    EXPECT_STREQ(dbbKernelKindName(DbbKernelKind::Avx512), "avx512");
}

} // namespace
} // namespace s2ta
