/** @file Unit tests for the dense / ZVCG systolic array model. */

#include <gtest/gtest.h>

#include "arch/models.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(SaModel, OutputMatchesReference)
{
    Rng rng(1);
    const GemmProblem p =
        makeUnstructuredGemm(40, 64, 70, 0.5, 0.5, rng);
    const auto model = makeArrayModel(ArrayConfig::sa());
    const GemmRun run = model->run(p);
    EXPECT_EQ(run.output, gemmReference(p));
}

TEST(SaModel, CyclesFollowTileFormula)
{
    Rng rng(2);
    // Exactly one 32x64 tile.
    const GemmProblem p1 =
        makeUnstructuredGemm(32, 128, 64, 0.5, 0.5, rng);
    const auto model = makeArrayModel(ArrayConfig::sa());
    const auto r1 = model->run(p1);
    EXPECT_EQ(r1.events.cycles, 128 + 32 + 64);

    // Four tiles (2x2) of the same K.
    const GemmProblem p4 =
        makeUnstructuredGemm(64, 128, 128, 0.5, 0.5, rng);
    const auto r4 = model->run(p4);
    EXPECT_EQ(r4.events.cycles, 4 * (128 + 32 + 64));
}

TEST(SaModel, PartialTilesRoundUp)
{
    Rng rng(3);
    const GemmProblem p =
        makeUnstructuredGemm(33, 64, 65, 0.5, 0.5, rng);
    const auto model = makeArrayModel(ArrayConfig::sa());
    const auto r = model->run(p);
    // 2x2 tiles even though only slightly over one tile.
    EXPECT_EQ(r.events.cycles, 4 * (64 + 32 + 64));
}

TEST(SaModel, NoSpeedupFromSparsity)
{
    Rng rng(4);
    const GemmProblem dense =
        makeUnstructuredGemm(32, 256, 64, 0.0, 0.0, rng);
    const GemmProblem sparse =
        makeUnstructuredGemm(32, 256, 64, 0.9, 0.9, rng);
    const auto sa = makeArrayModel(ArrayConfig::saZvcg());
    // Fig. 9a: "No Speedup Gain" regardless of sparsity.
    EXPECT_EQ(sa->run(dense).events.cycles,
              sa->run(sparse).events.cycles);
}

TEST(SaModel, ZvcgGatesZeroSlots)
{
    Rng rng(5);
    const GemmProblem p =
        makeUnstructuredGemm(32, 64, 64, 0.5, 0.5, rng);
    const auto sa = makeArrayModel(ArrayConfig::sa());
    const auto zvcg = makeArrayModel(ArrayConfig::saZvcg());
    const auto rs = sa->run(p);
    const auto rz = zvcg->run(p);

    // Identical slot decomposition, different classification.
    EXPECT_EQ(rs.events.macs_executed, rz.events.macs_executed);
    EXPECT_EQ(rs.events.macs_zero,
              rz.events.macs_gated); // SA: zero, ZVCG: gated
    EXPECT_EQ(rz.events.macs_zero, 0);
    EXPECT_EQ(rs.events.macs_gated, 0);
    EXPECT_EQ(rs.events.macSlots(), 32ll * 64 * 64);

    // ZVCG gates operand registers and accumulators too.
    EXPECT_GT(rz.events.operand_reg_gated_bytes, 0);
    EXPECT_EQ(rs.events.operand_reg_gated_bytes, 0);
    EXPECT_LT(rz.events.accum_updates, rs.events.accum_updates);
}

TEST(SaModel, ExecutedMatchesExpectationAtHalfSparsity)
{
    Rng rng(6);
    const GemmProblem p =
        makeUnstructuredGemm(64, 256, 128, 0.5, 0.5, rng);
    const auto model = makeArrayModel(ArrayConfig::saZvcg());
    const auto r = model->run(p);
    // P(both non-zero) = 0.25 at 50/50 sparsity.
    const double frac =
        static_cast<double>(r.events.macs_executed) /
        static_cast<double>(r.events.macSlots());
    EXPECT_NEAR(frac, 0.25, 0.01);
}

TEST(SaModel, SramTrafficFollowsTileReuse)
{
    Rng rng(7);
    const GemmProblem p =
        makeUnstructuredGemm(64, 128, 128, 0.3, 0.3, rng);
    const auto model = makeArrayModel(ArrayConfig::sa());
    const auto r = model->run(p);
    // 2 row tiles x 2 col tiles: activations re-read per col tile,
    // weights per row tile.
    EXPECT_EQ(r.events.act_sram_read_bytes, 2ll * 64 * 128);
    EXPECT_EQ(r.events.wgt_sram_bytes, 2ll * 128 * 128);
    EXPECT_EQ(r.events.act_sram_write_bytes, 64ll * 128);
    EXPECT_EQ(r.events.actfn_elements, 64ll * 128);
}

TEST(SaModel, LogicalMacsRecorded)
{
    Rng rng(8);
    const GemmProblem p =
        makeUnstructuredGemm(16, 32, 8, 0.5, 0.5, rng);
    const auto r = makeArrayModel(ArrayConfig::sa())->run(p);
    EXPECT_EQ(r.events.logical_macs, 16ll * 32 * 8);
    EXPECT_GT(r.effectiveMacsPerCycle(), 0.0);
}

} // anonymous namespace
} // namespace s2ta
