/** @file Unit tests for the time-unrolled S2TA-AW model. */

#include <gtest/gtest.h>

#include "arch/models.hh"
#include "core/dap.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(S2taAw, OutputMatchesReferenceThroughTimeUnrolledPath)
{
    Rng rng(1);
    const GemmProblem p = makeDbbGemm(20, 64, 40, 4, 3, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taAw(3));
    EXPECT_EQ(model->run(p).output, gemmReference(p));
}

/** Speedup over SA-ZVCG must equal BZ / NNZ_a (paper Fig. 9d). */
class AwSpeedup : public ::testing::TestWithParam<int>
{
};

TEST_P(AwSpeedup, EqualsBzOverNnz)
{
    const int nnz = GetParam();
    Rng rng(static_cast<uint64_t>(nnz));
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(256, 1024, 128, 4, nnz, rng);

    const int64_t base = makeArrayModel(ArrayConfig::saZvcg())
                             ->run(p, opt).events.cycles;
    const int64_t aw = makeArrayModel(ArrayConfig::s2taAw(nnz))
                           ->run(p, opt).events.cycles;
    const double speedup = static_cast<double>(base) / aw;
    EXPECT_NEAR(speedup, 8.0 / nnz, 8.0 / nnz * 0.08)
        << "NNZ_a = " << nnz;
}

INSTANTIATE_TEST_SUITE_P(VariableDensity, AwSpeedup,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TEST(S2taAw, BothOperandsMoveCompressed)
{
    Rng rng(2);
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(64, 512, 32, 4, 2, rng);
    const auto r =
        makeArrayModel(ArrayConfig::s2taAw(2))->run(p, opt);
    // One tile (64 x 32): activations 3 bytes per block (2 values +
    // mask), weights 5 bytes per block.
    EXPECT_EQ(r.events.act_sram_read_bytes, 64ll * (512 / 8) * 3);
    EXPECT_EQ(r.events.wgt_sram_bytes, 32ll * (512 / 8) * 5);
}

TEST(S2taAw, MacSlotsScaleWithSerialization)
{
    Rng rng(3);
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(64, 64, 32, 4, 3, rng);
    const auto r =
        makeArrayModel(ArrayConfig::s2taAw(3))->run(p, opt);
    // One MAC slot per serialized activation element.
    const int64_t slots = 64ll * 32 * (64 / 8) * 3;
    EXPECT_EQ(r.events.macSlots(), slots);
    EXPECT_EQ(r.events.mux_selects, slots);
    // Accumulators update only on executed MACs (private per MAC).
    EXPECT_EQ(r.events.accum_updates, r.events.macs_executed);
}

TEST(S2taAw, DenseFallbackRunsAtSaParity)
{
    Rng rng(4);
    RunOptions opt;
    opt.compute_output = false;
    // Dense activations (8/8), 4/8 weights.
    GemmProblem p = makeUnstructuredGemm(128, 2048, 64, 0.5, 0.0,
                                         rng);
    pruneWeightsDbb(p, DbbSpec{4, 8});
    const int64_t base = makeArrayModel(ArrayConfig::saZvcg())
                             ->run(p, opt).events.cycles;
    const int64_t aw = makeArrayModel(ArrayConfig::s2taAw(8))
                           ->run(p, opt).events.cycles;
    // 8 cycles per 8-block: same effective rate as the scalar SA.
    EXPECT_NEAR(static_cast<double>(base) / aw, 1.0, 0.1);
}

TEST(S2taAw, ExecutedMacsAreMaskIntersections)
{
    Rng rng(5);
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(32, 256, 32, 4, 2, rng);
    const auto r =
        makeArrayModel(ArrayConfig::s2taAw(2))->run(p, opt);
    const OperandProfile prof = OperandProfile::build(p);
    EXPECT_EQ(r.events.macs_executed, prof.matched_products);
    // With random positions, a 2-element activation block meets a
    // 4/8 weight block in ~half its slots.
    const double hit =
        static_cast<double>(r.events.macs_executed) /
        static_cast<double>(r.events.macSlots());
    EXPECT_NEAR(hit, 0.5, 0.05);
}

TEST(S2taAwDeath, RejectsOverDenseActivations)
{
    Rng rng(6);
    GemmProblem p = makeDbbGemm(8, 32, 8, 4, 5, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taAw(2));
    EXPECT_DEATH(model->run(p), "violates");
}

TEST(S2taAw, DapPipelineIntegration)
{
    // Full pipeline: unstructured activations -> DAP -> run.
    Rng rng(7);
    GemmProblem p = makeUnstructuredGemm(32, 128, 32, 0.6, 0.4, rng);
    pruneWeightsDbb(p, DbbSpec{4, 8});
    dapPruneActivations(p, 3);
    const auto model = makeArrayModel(ArrayConfig::s2taAw(3));
    const GemmRun r = model->run(p);
    EXPECT_EQ(r.output, gemmReference(p));
}

} // anonymous namespace
} // namespace s2ta
