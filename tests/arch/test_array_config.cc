/** @file Unit tests for array configurations (paper Sec. 7). */

#include <gtest/gtest.h>

#include "arch/array_config.hh"

namespace s2ta {
namespace {

TEST(ArrayConfig, AllPaperDesignsHave2048Macs)
{
    // Sec. 7: "All systolic array designs have 4 TOPS peak (dense)
    // throughput and otherwise identical configurations."
    EXPECT_EQ(ArrayConfig::sa().totalMacs(), 2048);
    EXPECT_EQ(ArrayConfig::saZvcg().totalMacs(), 2048);
    EXPECT_EQ(ArrayConfig::saSmt(2).totalMacs(), 2048);
    EXPECT_EQ(ArrayConfig::s2taW().totalMacs(), 2048);
    EXPECT_EQ(ArrayConfig::s2taAw(4).totalMacs(), 2048);
}

TEST(ArrayConfig, DensePeakIs4Tops)
{
    for (const ArrayConfig &cfg :
         {ArrayConfig::sa(), ArrayConfig::s2taW(),
          ArrayConfig::s2taAw(4)}) {
        EXPECT_NEAR(cfg.densePeakTops(), 4.096, 1e-9)
            << cfg.name();
    }
}

TEST(ArrayConfig, TileGeometry)
{
    const ArrayConfig sa = ArrayConfig::sa();
    EXPECT_EQ(sa.tileRows(), 32);
    EXPECT_EQ(sa.tileCols(), 64);

    // S2TA-W 4x8x4_4x8: 16 x 32 output tile.
    const ArrayConfig w = ArrayConfig::s2taW();
    EXPECT_EQ(w.tileRows(), 16);
    EXPECT_EQ(w.tileCols(), 32);

    // S2TA-AW 8x4x4_8x8: 64 x 32 output tile.
    const ArrayConfig aw = ArrayConfig::s2taAw(4);
    EXPECT_EQ(aw.tileRows(), 64);
    EXPECT_EQ(aw.tileCols(), 32);
}

TEST(ArrayConfig, NamesMentionKeyParameters)
{
    EXPECT_EQ(std::string(archKindName(ArchKind::SaZvcg)),
              "SA-ZVCG");
    const std::string smt = ArrayConfig::saSmt(4).name();
    EXPECT_NE(smt.find("T2Q4"), std::string::npos);
    const std::string aw = ArrayConfig::s2taAw(3).name();
    EXPECT_NE(aw.find("8x4x4_8x8"), std::string::npos);
    EXPECT_NE(aw.find("A3/8"), std::string::npos);
    EXPECT_NE(aw.find("W4/8"), std::string::npos);
}

TEST(ArrayConfig, CheckAcceptsDenseWeightFallback)
{
    ArrayConfig aw = ArrayConfig::s2taAw(8);
    aw.weight_dbb = DbbSpec{8, 8};
    aw.check(); // must not die: dense fallback is supported
    SUCCEED();
}

TEST(ArrayConfigDeath, InvalidConfigsFatal)
{
    ArrayConfig bad = ArrayConfig::s2taAw(4);
    bad.act_nnz = 9;
    EXPECT_DEATH(bad.check(), "invalid A-DBB");

    ArrayConfig bad2 = ArrayConfig::s2taW();
    bad2.tpe.b = 4; // S2TA-W wants B == BZ
    EXPECT_DEATH(bad2.check(), "expects B == BZ");

    ArrayConfig bad3 = ArrayConfig::sa();
    bad3.tpe.m = 0;
    EXPECT_DEATH(bad3.check(), "invalid TPE geometry");
}

} // anonymous namespace
} // namespace s2ta
