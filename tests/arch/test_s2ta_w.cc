/** @file Unit tests for the S2TA-W (weight-DBB-only) model. */

#include <gtest/gtest.h>

#include "arch/models.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(S2taW, OutputMatchesReferenceThroughMuxSteering)
{
    Rng rng(1);
    const GemmProblem p =
        makeDbbGemm(20, 64, 40, 4, 8, rng); // 4/8 weights, dense act
    const auto model = makeArrayModel(ArrayConfig::s2taW());
    EXPECT_EQ(model->run(p).output, gemmReference(p));
}

TEST(S2taW, TwoXSpeedupOverZvcgWith48Weights)
{
    Rng rng(2);
    RunOptions opt;
    opt.compute_output = false;
    // Large enough for fill/drain to be negligible.
    GemmProblem p = makeUnstructuredGemm(128, 1024, 128, 0.5, 0.5,
                                         rng);
    pruneWeightsDbb(p, DbbSpec{4, 8});

    const int64_t base = makeArrayModel(ArrayConfig::saZvcg())
                             ->run(p, opt).events.cycles;
    const int64_t w = makeArrayModel(ArrayConfig::s2taW())
                          ->run(p, opt).events.cycles;
    // Fig. 9c: fixed 2x speedup when weight sparsity >= 50%.
    EXPECT_NEAR(static_cast<double>(base) / w, 2.0, 0.15);
}

TEST(S2taW, SpeedupCappedAtTwoRegardlessOfActSparsity)
{
    Rng rng(3);
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(128, 1024, 128, 2, 1, rng);
    const int64_t base = makeArrayModel(ArrayConfig::saZvcg())
                             ->run(p, opt).events.cycles;
    const int64_t w = makeArrayModel(ArrayConfig::s2taW())
                          ->run(p, opt).events.cycles;
    // "the speedup from S2TA-W is capped at 2x regardless of the
    // activation sparsity" (Sec. 8.2).
    EXPECT_NEAR(static_cast<double>(base) / w, 2.0, 0.15);
}

TEST(S2taW, DenseWeightFallbackHalvesThroughput)
{
    Rng rng(4);
    RunOptions opt;
    opt.compute_output = false;
    const GemmProblem p =
        makeUnstructuredGemm(64, 512, 64, 0.0, 0.5, rng);
    ArrayConfig dense_cfg = ArrayConfig::s2taW();
    dense_cfg.weight_dbb = DbbSpec{8, 8};
    const auto wmodel = makeArrayModel(dense_cfg);
    const auto r = wmodel->run(p, opt);
    const int64_t base = makeArrayModel(ArrayConfig::saZvcg())
                             ->run(p, opt).events.cycles;
    // Two passes per block: parity with the scalar SA (1x).
    EXPECT_NEAR(static_cast<double>(base) / r.events.cycles, 1.0,
                0.15);
}

TEST(S2taW, WeightSramMovesCompressed)
{
    Rng rng(5);
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(16, 512, 32, 4, 8, rng);
    const auto r =
        makeArrayModel(ArrayConfig::s2taW())->run(p, opt);
    // One row tile (16 rows), one col tile (32 cols): weights read
    // once, 5 bytes per 8-block (Sec. 4: 37.5% bandwidth cut).
    EXPECT_EQ(r.events.wgt_sram_bytes, 32ll * (512 / 8) * 5);
    // Activations stay dense.
    EXPECT_EQ(r.events.act_sram_read_bytes, 16ll * 512);
}

TEST(S2taW, MacSlotsAndMuxes)
{
    Rng rng(6);
    RunOptions opt;
    opt.compute_output = false;
    GemmProblem p = makeDbbGemm(16, 64, 32, 4, 8, rng);
    const auto r =
        makeArrayModel(ArrayConfig::s2taW())->run(p, opt);
    // 4 MAC slots per block per output, one pass.
    const int64_t slots = 16ll * 32 * (64 / 8) * 4;
    EXPECT_EQ(r.events.macSlots(), slots);
    EXPECT_EQ(r.events.mux_selects, slots);
    const OperandProfile prof = OperandProfile::build(p);
    EXPECT_EQ(r.events.macs_executed, prof.matched_products);
}

TEST(S2taWDeath, RejectsUnprunedWeights)
{
    Rng rng(7);
    const GemmProblem p =
        makeUnstructuredGemm(16, 64, 16, 0.0, 0.0, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taW());
    EXPECT_DEATH(model->run(p), "violates");
}

} // anonymous namespace
} // namespace s2ta
