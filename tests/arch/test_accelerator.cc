/** @file Unit tests for the full-accelerator (layer/network) model. */

#include <gtest/gtest.h>

#include "arch/accelerator.hh"
#include "workload/model_workloads.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/** A small conv layer workload with the requested structure. */
LayerWorkload
smallLayer(int act_nnz, int wgt_nnz, Rng &rng)
{
    LayerWorkload wl;
    wl.name = "test_conv";
    wl.shape = {16, 10, 10, 24, 3, 3, 1, 1, 1};
    wl.act_nnz = act_nnz;
    wl.wgt_nnz = wgt_nnz;
    wl.input = act_nnz >= 8
                   ? makeUnstructuredTensor({10, 10, 16}, 0.4, rng)
                   : makeDbbTensor({10, 10, 16}, act_nnz, rng);
    // Weight blocks along cin: generate channel-innermost and
    // transpose.
    Int8Tensor tmp = wgt_nnz >= 8
                         ? makeUnstructuredTensor({3, 3, 24, 16},
                                                  0.2, rng)
                         : makeDbbTensor({3, 3, 24, 16}, wgt_nnz,
                                         rng);
    wl.weights = Int8Tensor({3, 3, 16, 24});
    for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
            for (int c = 0; c < 16; ++c)
                for (int oc = 0; oc < 24; ++oc)
                    wl.weights(ky, kx, c, oc) = tmp(ky, kx, oc, c);
    return wl;
}

AcceleratorConfig
configFor(ArrayConfig array)
{
    AcceleratorConfig cfg;
    cfg.array = array;
    return cfg;
}

TEST(Accelerator, FunctionalOutputMatchesConvReference)
{
    Rng rng(1);
    const LayerWorkload wl = smallLayer(3, 4, rng);
    for (const ArrayConfig &array :
         {ArrayConfig::sa(), ArrayConfig::saZvcg(),
          ArrayConfig::saSmt(2), ArrayConfig::s2taW(),
          ArrayConfig::s2taAw(3)}) {
        const Accelerator acc(configFor(array));
        const LayerRun lr = acc.runLayer(wl, true);
        const Int32Tensor ref =
            convReference(wl.shape, wl.input, wl.weights);
        EXPECT_TRUE(lr.output == ref) << array.name();
    }
}

TEST(Accelerator, DepthwiseLayerRunsOnAllArchitectures)
{
    Rng rng(2);
    LayerWorkload wl;
    wl.name = "dw";
    wl.shape = {16, 8, 8, 16, 3, 3, 1, 1, 16};
    wl.act_nnz = 4;
    wl.wgt_nnz = 4;
    wl.input = makeDbbTensor({8, 8, 16}, 4, rng);
    wl.weights = makeUnstructuredTensor({3, 3, 1, 16}, 0.0, rng);
    for (const ArrayConfig &array :
         {ArrayConfig::saZvcg(), ArrayConfig::s2taW(),
          ArrayConfig::s2taAw(4)}) {
        const Accelerator acc(configFor(array));
        const LayerRun lr = acc.runLayer(wl, true);
        const Int32Tensor ref =
            convReference(wl.shape, wl.input, wl.weights);
        EXPECT_TRUE(lr.output == ref) << array.name();
    }
}

TEST(Accelerator, FcLayersAreMemoryBound)
{
    Rng rng(3);
    LayerWorkload wl;
    wl.name = "fc";
    wl.shape = {4096, 1, 1, 1000, 1, 1, 1, 0, 1};
    wl.act_nnz = 4;
    wl.wgt_nnz = 4;
    wl.input = makeDbbTensor({1, 1, 4096}, 4, rng);
    wl.weights = makeDbbTensor({1, 1, 1000, 4096}, 4, rng);
    // Transpose into (1, 1, cin, cout).
    Int8Tensor w({1, 1, 4096, 1000});
    for (int c = 0; c < 4096; ++c)
        for (int oc = 0; oc < 1000; ++oc)
            w(0, 0, c, oc) = wl.weights(0, 0, oc, c);
    wl.weights = std::move(w);

    const Accelerator acc(configFor(ArrayConfig::s2taAw(4)));
    const LayerRun lr = acc.runLayer(wl);
    // Batch-1 FC: DMA (weight streaming) dominates (Sec. 8.3).
    EXPECT_TRUE(lr.memory_bound);
    EXPECT_GT(lr.events.cycles, lr.compute_cycles);
}

TEST(Accelerator, DapComparisonsOnlyOnS2taAw)
{
    Rng rng(4);
    const LayerWorkload wl = smallLayer(3, 4, rng);
    const Accelerator aw(configFor(ArrayConfig::s2taAw(3)));
    const Accelerator zvcg(configFor(ArrayConfig::saZvcg()));
    EXPECT_GT(aw.runLayer(wl).events.dap_comparisons, 0);
    EXPECT_EQ(zvcg.runLayer(wl).events.dap_comparisons, 0);
}

TEST(Accelerator, DmaCompressesDbbOperands)
{
    Rng rng(5);
    const LayerWorkload wl = smallLayer(2, 4, rng);
    const Accelerator aw(configFor(ArrayConfig::s2taAw(2)));
    const Accelerator sa(configFor(ArrayConfig::sa()));
    const int64_t dma_aw = aw.runLayer(wl).events.dma_bytes;
    const int64_t dma_sa = sa.runLayer(wl).events.dma_bytes;
    EXPECT_LT(dma_aw, dma_sa);
}

TEST(Accelerator, NetworkRunAccumulatesLayers)
{
    Rng rng(6);
    std::vector<LayerWorkload> layers = {smallLayer(3, 4, rng),
                                         smallLayer(4, 4, rng)};
    const Accelerator acc(configFor(ArrayConfig::s2taAw(3)));
    const NetworkRun nr = acc.runNetwork(layers);
    ASSERT_EQ(nr.layers.size(), 2u);
    EXPECT_EQ(nr.total.cycles, nr.layers[0].events.cycles +
                                   nr.layers[1].events.cycles);
    EXPECT_EQ(nr.dense_macs, nr.layers[0].dense_macs +
                                 nr.layers[1].dense_macs);
}

TEST(Accelerator, LeNetWorkloadEndToEnd)
{
    // Whole-model integration on the smallest zoo model.
    Rng rng(7);
    const ModelWorkload mw = buildModelWorkload(leNet5(), rng);
    for (const ArrayConfig &array :
         {ArrayConfig::saZvcg(), ArrayConfig::s2taAw(4)}) {
        const Accelerator acc(configFor(array));
        const NetworkRun nr = acc.runNetwork(mw.layers);
        EXPECT_EQ(nr.layers.size(), mw.layers.size());
        EXPECT_GT(nr.total.cycles, 0);
        EXPECT_EQ(nr.dense_macs, mw.spec.totalMacs());
    }
}

} // anonymous namespace
} // namespace s2ta
