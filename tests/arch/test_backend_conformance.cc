/**
 * @file
 * Differential conformance suite over every registered device
 * backend (see tests/arch/backend_conformance.hh for the shared
 * fixture and the registration recipe): randomized layer shapes,
 * queue depths, submission orders and adversarial completion
 * interleavings must all produce NetworkRuns bitwise identical to
 * the synchronous Accelerator, with the DMA/residency/transfer
 * counters reconciling exactly, at any device thread count.
 */

#include "backend_conformance.hh"

#include <cmath>
#include <numeric>
#include <thread>

namespace s2ta {
namespace {

using conformance::deviceConfig;
using conformance::expectSameLayer;
using conformance::expectSameRun;
using conformance::expectStatsReconcile;
using conformance::randomNetwork;
using conformance::referenceRun;
using conformance::runOptions;

// The registration recipe under test: a backend plugs into the
// whole suite by adding a factory — "conformance-mirror" simply
// wraps the in-process backend under a new name, and every TEST_P
// below runs against it with zero additional test code.
const bool kMirrorRegistered = [] {
    BackendRegistry::add(
        "conformance-mirror",
        [](const AcceleratorConfig &acfg, const BackendConfig &bcfg) {
            return makeBackend("in-process", acfg, bcfg);
        });
    return true;
}();

class BackendConformance
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(BackendConformance, MatchesSynchronousAcceleratorAtEveryQueueDepth)
{
    const auto layers = randomNetwork(0xBAC0, 4);
    const NetworkRun ref = referenceRun(layers);
    for (const int depth : {1, 2, 4}) {
        BackendConfig bcfg;
        bcfg.queue_depth = depth;
        const auto be =
            makeBackend(GetParam(), deviceConfig(), bcfg);
        BackendNetworkRun got =
            be->runNetworkTimed(layers, runOptions());
        expectSameRun(got.run, ref,
                      ("depth " + std::to_string(depth)).c_str());
        expectStatsReconcile(*be, got);
    }
}

TEST_P(BackendConformance, SynchronousModeIsBitwiseIdenticalToAsync)
{
    const auto layers = randomNetwork(0xBAC1, 3);
    BackendConfig sync;
    sync.synchronous = true;
    const auto sync_be =
        makeBackend(GetParam(), deviceConfig(), sync);
    const auto async_be = makeBackend(GetParam(), deviceConfig());
    const BackendNetworkRun a =
        sync_be->runNetworkTimed(layers, runOptions());
    const BackendNetworkRun b =
        async_be->runNetworkTimed(layers, runOptions());
    expectSameRun(a.run, b.run, "sync vs async");
    EXPECT_EQ(a.transfer_cycles, b.transfer_cycles);
    EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
    EXPECT_EQ(a.d2h_bytes, b.d2h_bytes);
}

TEST_P(BackendConformance, DeterministicAtAnyDeviceThreadCount)
{
    const auto layers = randomNetwork(0xBAC2, 4);
    const NetworkRun ref = referenceRun(layers);
    // sim_threads > 1 gives the device its own dedicated pool; the
    // backend must stay bitwise identical either way.
    for (const int threads : {1, 4}) {
        const auto be =
            makeBackend(GetParam(), deviceConfig(threads));
        const NetworkRun got = be->runNetwork(layers, runOptions());
        expectSameRun(
            got, ref,
            ("sim_threads " + std::to_string(threads)).c_str());
    }
}

TEST_P(BackendConformance, RandomizedShapesSweepAgainstReference)
{
    // Fresh random networks per round: odd strides, padding,
    // grouped/depthwise layers, batches — every backend must track
    // the reference bit for bit on all of them.
    for (uint64_t round = 0; round < 4; ++round) {
        const auto layers = randomNetwork(0x5A00 + round, 3);
        const NetworkRun ref = referenceRun(layers);
        const auto be = makeBackend(GetParam(), deviceConfig());
        const NetworkRun got = be->runNetwork(layers, runOptions());
        expectSameRun(
            got, ref,
            ("round " + std::to_string(round)).c_str());
    }
}

TEST_P(BackendConformance, TokensWaitableInAnyOrder)
{
    const auto layers = randomNetwork(0xBAC3, 5);
    const NetworkRun ref = referenceRun(layers);
    const NetworkRunOptions opt = runOptions();

    // Waits run in a seeded shuffled order; results must land by
    // token, never by completion timing. Depth 3 keeps submission
    // itself overlapped while all five tokens stay outstanding.
    Rng rng(0xF00D);
    BackendConfig bcfg;
    bcfg.queue_depth = 3;
    const auto be = makeBackend(GetParam(), deviceConfig(), bcfg);
    std::vector<Backend::Token> tokens;
    for (const LayerWorkload &wl : layers)
        tokens.push_back(be->submit(wl, opt));

    std::vector<size_t> order(tokens.size());
    std::iota(order.begin(), order.end(), size_t{0});
    for (size_t i = order.size(); i > 1; --i) {
        const size_t j =
            static_cast<size_t>(rng.uniformInt(0, i - 1));
        std::swap(order[i - 1], order[j]);
    }

    std::vector<LayerRun> got(tokens.size());
    for (const size_t i : order) {
        EXPECT_NE(be->residency(tokens[i]), Residency::Host);
        got[i] = be->wait(tokens[i]);
        EXPECT_EQ(be->residency(tokens[i]), Residency::Host);
    }
    for (size_t i = 0; i < got.size(); ++i)
        expectSameLayer(got[i], ref.layers[i], "shuffled wait");
}

TEST_P(BackendConformance, ResidencyLedgerTracksTheCommand)
{
    const auto layers = randomNetwork(0xBAC4, 1);
    const NetworkRunOptions opt = runOptions();
    const auto be = makeBackend(GetParam(), deviceConfig());

    const Backend::Token t = be->submit(layers[0], opt);
    // Between submit and wait the command is Staged (queued or
    // executing) or already Device (complete, undownloaded) —
    // never Host.
    const Residency before = be->residency(t);
    EXPECT_TRUE(before == Residency::Staged ||
                before == Residency::Device);
    const BackendStats mid = be->stats();
    EXPECT_EQ(mid.submitted, 1);
    EXPECT_EQ(mid.d2h_bytes, 0) << "download before wait()";

    int64_t tc = -1;
    const LayerRun lr = be->wait(t, &tc);
    EXPECT_EQ(be->residency(t), Residency::Host);
    const BackendStats after = be->stats();
    EXPECT_EQ(after.completed, 1);
    EXPECT_EQ(after.h2d_bytes, lr.h2d_bytes);
    EXPECT_EQ(after.d2h_bytes, lr.d2h_bytes);
    EXPECT_EQ(after.transfer_cycles, tc);
    EXPECT_EQ(lr.h2d_bytes + lr.d2h_bytes, lr.events.dma_bytes);
}

TEST_P(BackendConformance, TransferModelIsClosedFormOnTheVirtualClock)
{
    const auto layers = randomNetwork(0xBAC5, 3);
    BackendConfig bcfg;
    bcfg.link_bytes_per_cycle = 48.0;
    bcfg.kick_cycles = 100;
    const auto be = makeBackend(GetParam(), deviceConfig(), bcfg);
    const BackendNetworkRun got =
        be->runNetworkTimed(layers, runOptions());

    if (GetParam() == "remote-stub") {
        // kick + ceil(bytes / bandwidth), per command, recomputable
        // from the run's own residency ledger.
        int64_t want = 0;
        for (const LayerRun &lr : got.run.layers) {
            want += bcfg.kick_cycles +
                    static_cast<int64_t>(std::ceil(
                        static_cast<double>(lr.h2d_bytes +
                                            lr.d2h_bytes) /
                        bcfg.link_bytes_per_cycle));
        }
        EXPECT_EQ(got.transfer_cycles, want);
        EXPECT_GT(got.transfer_cycles, 0);
    } else {
        EXPECT_EQ(got.transfer_cycles, 0)
            << "local backends model no link";
    }
    // Transfer is timing-only metadata: the run itself must still
    // match the reference exactly.
    expectSameRun(got.run, referenceRun(layers), "transfer model");
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredBackends, BackendConformance,
    ::testing::ValuesIn(BackendRegistry::names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(BackendRegistry, BuiltinsAndTestBackendsAreRegistered)
{
    ASSERT_TRUE(kMirrorRegistered);
    const auto names = BackendRegistry::names();
    for (const char *want :
         {"conformance-mirror", "in-process", "remote-stub",
          "scalar-ref"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << want;
    }
    // names() is sorted: the suite's parameterization is
    // deterministic.
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// ---- Satellite: completion-interleaving stress -------------------
//
// Drive the async queue with seeded adversarial schedules —
// reordered waits, delayed (poll-until-complete) waits, bursty
// submissions — and assert both the results and the telemetry are
// bitwise identical to plain in-order completion.

struct DrainedNetwork
{
    std::vector<LayerRun> layers;
    BackendStats stats;
};

DrainedNetwork
drainInOrder(const std::vector<LayerWorkload> &layers,
             const BackendConfig &bcfg)
{
    const auto be = makeBackend("in-process", deviceConfig(), bcfg);
    DrainedNetwork out;
    std::vector<Backend::Token> tokens;
    for (const LayerWorkload &wl : layers)
        tokens.push_back(be->submit(wl, runOptions()));
    for (const Backend::Token t : tokens)
        out.layers.push_back(be->wait(t));
    out.stats = be->stats();
    return out;
}

DrainedNetwork
drainAdversarial(const std::vector<LayerWorkload> &layers,
                 const BackendConfig &bcfg, uint64_t seed)
{
    const auto be = makeBackend("in-process", deviceConfig(), bcfg);
    Rng rng(seed);
    DrainedNetwork out;
    out.layers.resize(layers.size());

    std::vector<Backend::Token> tokens(layers.size(), 0);
    std::vector<size_t> outstanding;
    size_t next = 0;
    while (next < layers.size() || !outstanding.empty()) {
        // Bursty submission: push a random-length burst (bounded by
        // what the queue accepts without parking this thread
        // forever — submit itself may block, which is part of the
        // contract under test).
        const size_t burst = std::min(
            layers.size() - next,
            static_cast<size_t>(rng.uniformInt(0, 3)));
        for (size_t b = 0; b < burst; ++b, ++next) {
            tokens[next] = be->submit(layers[next], runOptions());
            outstanding.push_back(next);
        }
        if (outstanding.empty())
            continue;

        // Reordered completion: pick a random outstanding token.
        const size_t pick = static_cast<size_t>(
            rng.uniformInt(0, outstanding.size() - 1));
        const size_t idx = outstanding[pick];
        outstanding.erase(outstanding.begin() +
                          static_cast<long>(pick));

        if (rng.uniformInt(0, 2) == 0) {
            // Delayed completion: let the device finish on its own
            // (poll the residency ledger) before downloading, so
            // the result sits parked in device memory for a while.
            while (be->residency(tokens[idx]) == Residency::Staged)
                std::this_thread::yield();
            EXPECT_EQ(be->residency(tokens[idx]), Residency::Device);
        }
        out.layers[idx] = be->wait(tokens[idx]);
    }
    out.stats = be->stats();
    return out;
}

TEST(BackendInterleavingStress, AdversarialSchedulesAreBitwiseIdentical)
{
    const auto layers = randomNetwork(0x57E5, 8);
    BackendConfig bcfg;
    bcfg.queue_depth = 3;
    const DrainedNetwork base = drainInOrder(layers, bcfg);
    ASSERT_EQ(base.layers.size(), layers.size());

    for (uint64_t round = 0; round < 6; ++round) {
        const DrainedNetwork adv =
            drainAdversarial(layers, bcfg, 0xD15C0 + round);
        const std::string what =
            "adversarial round " + std::to_string(round);
        ASSERT_EQ(adv.layers.size(), base.layers.size());
        for (size_t i = 0; i < base.layers.size(); ++i)
            expectSameLayer(adv.layers[i], base.layers[i],
                            what.c_str());
        // Telemetry: every counter is a commutative sum over
        // commands, so the interleaving must not show up in it.
        EXPECT_EQ(adv.stats.submitted, base.stats.submitted);
        EXPECT_EQ(adv.stats.completed, base.stats.completed);
        EXPECT_EQ(adv.stats.h2d_bytes, base.stats.h2d_bytes);
        EXPECT_EQ(adv.stats.d2h_bytes, base.stats.d2h_bytes);
        EXPECT_EQ(adv.stats.transfer_cycles,
                  base.stats.transfer_cycles);
    }
}

TEST(BackendInterleavingStress, RemoteStubTelemetrySurvivesReordering)
{
    // Same property where transfer cycles are non-zero: the
    // remote stub's per-command link modeling must be completion-
    // order independent too.
    const auto layers = randomNetwork(0x57E6, 6);
    BackendConfig bcfg;
    bcfg.queue_depth = 2;

    const auto in_order =
        makeBackend("remote-stub", deviceConfig(), bcfg);
    std::vector<Backend::Token> tokens;
    for (const LayerWorkload &wl : layers)
        tokens.push_back(in_order->submit(wl, runOptions()));
    std::vector<LayerRun> base;
    int64_t base_tc = 0;
    for (const Backend::Token t : tokens) {
        int64_t tc = 0;
        base.push_back(in_order->wait(t, &tc));
        base_tc += tc;
    }

    const auto reordered =
        makeBackend("remote-stub", deviceConfig(), bcfg);
    std::vector<Backend::Token> tk2;
    for (const LayerWorkload &wl : layers)
        tk2.push_back(reordered->submit(wl, runOptions()));
    int64_t adv_tc = 0;
    for (size_t i = tk2.size(); i > 0; --i) { // reverse order
        int64_t tc = 0;
        const LayerRun lr = reordered->wait(tk2[i - 1], &tc);
        adv_tc += tc;
        expectSameLayer(lr, base[i - 1], "reverse wait");
    }
    EXPECT_EQ(adv_tc, base_tc);
    EXPECT_EQ(reordered->stats().transfer_cycles,
              in_order->stats().transfer_cycles);
}

} // anonymous namespace
} // namespace s2ta
