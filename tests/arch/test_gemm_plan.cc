/** @file Unit tests for the GemmPlan encoding/profile cache and the
 *  dbbGemm kernels. */

#include <gtest/gtest.h>

#include "arch/gemm_plan.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

void
expectProfilesEqual(const OperandProfile &a, const OperandProfile &b)
{
    EXPECT_EQ(a.m, b.m);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.row_nz, b.row_nz);
    EXPECT_EQ(a.col_nz, b.col_nz);
    EXPECT_EQ(a.act_nz_at_k, b.act_nz_at_k);
    EXPECT_EQ(a.wgt_nz_at_k, b.wgt_nz_at_k);
    EXPECT_EQ(a.act_nnz, b.act_nnz);
    EXPECT_EQ(a.wgt_nnz, b.wgt_nnz);
    EXPECT_EQ(a.matched_products, b.matched_products);
}

TEST(GemmPlan, MaskProfileMatchesDenseScan)
{
    Rng rng(0xA1);
    for (int trial = 0; trial < 8; ++trial) {
        const int m = static_cast<int>(rng.uniformInt(1, 40));
        const int k = static_cast<int>(rng.uniformInt(1, 130));
        const int n = static_cast<int>(rng.uniformInt(1, 40));
        const GemmProblem p = makeUnstructuredGemm(
            m, k, n, rng.uniformReal(0.0, 0.95),
            rng.uniformReal(0.0, 0.95), rng);
        const GemmPlan plan = GemmPlan::build(p);
        expectProfilesEqual(plan.profile(), OperandProfile::build(p));
    }
}

TEST(GemmPlan, TailBlocksEncodeLosslessly)
{
    // K not a multiple of bz: the tail block zero-pads, and every
    // mask bit / value must still match the dense operand.
    Rng rng(0xA2);
    const GemmProblem p =
        makeUnstructuredGemm(5, 21, 7, 0.4, 0.4, rng);
    const GemmPlan plan = GemmPlan::build(p);
    EXPECT_EQ(plan.act().blocksPerVector(), 3);
    for (int i = 0; i < p.m; ++i)
        for (int kk = 0; kk < p.k; ++kk)
            EXPECT_EQ(plan.actNonZero(i, kk), p.actAt(i, kk) != 0);
    for (int j = 0; j < p.n; ++j)
        for (int kk = 0; kk < p.k; ++kk)
            EXPECT_EQ(plan.wgtNonZero(kk, j), p.wgtAt(kk, j) != 0);
}

#ifdef __SSE2__
TEST(GemmPlan, DenseMirrorIsTheTransposedWeights)
{
    Rng rng(0xA3);
    // 4/8 x 4/8 clears the density bar for the SIMD kernel, so the
    // mirror is materialized.
    const GemmProblem p = makeDbbGemm(6, 40, 9, 4, 4, rng);
    const GemmPlan plan = GemmPlan::build(p);
    const int8_t *wt = plan.wgtDenseT();
    ASSERT_NE(wt, nullptr);
    for (int j = 0; j < p.n; ++j)
        for (int kk = 0; kk < p.k; ++kk)
            EXPECT_EQ(wt[static_cast<size_t>(j) * p.k + kk],
                      p.wgtAt(kk, j));
}
#endif

TEST(GemmPlan, SparsePlansSkipTheDenseMirror)
{
    Rng rng(0xA9);
    const GemmProblem p = makeDbbGemm(6, 40, 9, 1, 1, rng);
    const GemmPlan plan = GemmPlan::build(p);
    EXPECT_EQ(plan.wgtDenseT(), nullptr);
    std::vector<int32_t> out(static_cast<size_t>(p.m) * p.n);
    dbbGemm(plan, out.data());
    EXPECT_EQ(out, gemmReference(p));
}

TEST(GemmPlan, DbbGemmMatchesReferenceAcrossDensities)
{
    Rng rng(0xA4);
    // Sweep density so both kernel selections (mask-intersection
    // gather and SIMD contraction) are exercised.
    for (int wgt_nnz : {1, 4, 8}) {
        for (int act_nnz : {1, 4, 8}) {
            const GemmProblem p =
                makeDbbGemm(33, 64, 17, wgt_nnz, act_nnz, rng);
            const GemmPlan plan = GemmPlan::build(p);
            std::vector<int32_t> out(
                static_cast<size_t>(p.m) * p.n);
            dbbGemm(plan, out.data());
            EXPECT_EQ(out, gemmReference(p))
                << "W" << wgt_nnz << "/8 A" << act_nnz << "/8";
        }
    }
}

TEST(GemmPlan, OnePlanServesMultipleModels)
{
    Rng rng(0xA5);
    GemmProblem p = makeDbbGemm(24, 64, 20, 4, 4, rng);
    const GemmPlan plan = GemmPlan::build(p);
    const auto ref = gemmReference(p);
    RunOptions opt;
    opt.compute_output = true;
    for (const ArrayConfig &cfg :
         {ArrayConfig::saZvcg(), ArrayConfig::saSmt(2),
          ArrayConfig::s2taW(), ArrayConfig::s2taAw(4)}) {
        EXPECT_EQ(makeArrayModel(cfg)->run(plan, opt).output, ref)
            << cfg.name();
    }
}

TEST(GemmPlanDeath, DensityViolationsAreFatal)
{
    Rng rng(0xA6);
    const GemmProblem p = makeDbbGemm(8, 32, 8, 6, 6, rng);
    const GemmPlan plan = GemmPlan::build(p);
    EXPECT_DEATH(plan.checkWeights(DbbSpec{4, 8}),
                 "pruneWeightsDbb");
    EXPECT_DEATH(plan.checkActivations(DbbSpec{4, 8}), "DAP");
    // The bounds the operands do satisfy pass (and memoize).
    plan.checkWeights(DbbSpec{6, 8});
    plan.checkWeights(DbbSpec{6, 8});
    plan.checkActivations(DbbSpec{6, 8});
}

TEST(GemmPlanDeath, ShallowPlanRefusesEncodedAccess)
{
    Rng rng(0xA7);
    const GemmProblem p = makeDbbGemm(8, 16, 8, 4, 4, rng);
    const GemmPlan plan = GemmPlan::shallow(p);
    EXPECT_FALSE(plan.encoded());
    EXPECT_DEATH(plan.profile(), "shallow");
}

TEST(GemmPlan, ValidationSkippableViaRunOptions)
{
    // With validation off, operands violating the bound still run
    // (the engine models the datapath on whatever it is given).
    Rng rng(0xA8);
    GemmProblem p = makeDbbGemm(8, 32, 8, 6, 4, rng);
    const auto model = makeArrayModel(ArrayConfig::s2taW());
    RunOptions opt;
    opt.compute_output = false;
    opt.validate_operands = false;
    const GemmRun run = model->run(p, opt);
    EXPECT_GT(run.events.cycles, 0);
}

} // anonymous namespace
} // namespace s2ta
