/** @file Tests for the persistent plan store and the spill codec:
 *  byte-exact roundtrips (serialize -> hydrate) at the entry level
 *  and through Accelerator runs on every zoo model, rejection of
 *  truncated / bit-flipped / version-stale / misnamed files with
 *  silent rebuild, and concurrent readers of one store directory. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "arch/accelerator.hh"
#include "arch/plan_store.hh"
#include "base/fault_injection.hh"
#include "nn/model_zoo.hh"
#include "workload/model_workloads.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

GemmProblem
smallGemm(uint64_t seed, int m = 24, int k = 64, int n = 16,
          int nnz = 4)
{
    Rng rng(seed);
    return makeDbbGemm(m, k, n, nnz, nnz, rng);
}

/** Unique per-test store directory under the gtest temp root,
 *  cleaned of any previous run's files so tier counters start from
 *  a genuinely cold store. */
std::string
storeDir(const char *name)
{
    const std::string dir = testing::TempDir() + "s2ta_store_" +
                            name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(out.good()) << path;
}

/** Full structural equality of two cache entries: operands, block
 *  arrays, mirror, profile, and the functional output. */
void
expectEntriesEqual(const CachedPlan &a, const CachedPlan &b)
{
    ASSERT_EQ(a.problem.m, b.problem.m);
    ASSERT_EQ(a.problem.k, b.problem.k);
    ASSERT_EQ(a.problem.n, b.problem.n);
    EXPECT_EQ(a.problem.a, b.problem.a);
    EXPECT_EQ(a.problem.w, b.problem.w);

    ASSERT_TRUE(a.plan.encoded() && b.plan.encoded());
    ASSERT_EQ(a.plan.bz(), b.plan.bz());
    const auto expect_blocks_equal = [](const DbbMatrix &x,
                                        const DbbMatrix &y) {
        ASSERT_EQ(x.vectors(), y.vectors());
        ASSERT_EQ(x.blocksPerVector(), y.blocksPerVector());
        EXPECT_EQ(std::memcmp(x.vectorBlocks(0), y.vectorBlocks(0),
                              static_cast<size_t>(x.vectors()) *
                                  x.blocksPerVector() *
                                  sizeof(DbbBlock)),
                  0);
    };
    expect_blocks_equal(a.plan.act(), b.plan.act());
    expect_blocks_equal(a.plan.wgt(), b.plan.wgt());

    ASSERT_EQ(a.plan.wgtDenseT() != nullptr,
              b.plan.wgtDenseT() != nullptr);
    if (a.plan.wgtDenseT() != nullptr) {
        EXPECT_EQ(std::memcmp(a.plan.wgtDenseT(),
                              b.plan.wgtDenseT(),
                              static_cast<size_t>(a.problem.n) *
                                  a.problem.k),
                  0);
    }

    const OperandProfile &pa = a.plan.profile();
    const OperandProfile &pb = b.plan.profile();
    EXPECT_EQ(pa.row_nz, pb.row_nz);
    EXPECT_EQ(pa.col_nz, pb.col_nz);
    EXPECT_EQ(pa.act_nz_at_k, pb.act_nz_at_k);
    EXPECT_EQ(pa.wgt_nz_at_k, pb.wgt_nz_at_k);
    EXPECT_EQ(pa.act_nnz, pb.act_nnz);
    EXPECT_EQ(pa.wgt_nnz, pb.wgt_nnz);
    EXPECT_EQ(pa.matched_products, pb.matched_products);

    std::vector<int32_t> out_a(
        static_cast<size_t>(a.problem.m) * a.problem.n);
    std::vector<int32_t> out_b(out_a.size());
    dbbGemm(a.plan, out_a.data());
    dbbGemm(b.plan, out_b.data());
    EXPECT_EQ(out_a, out_b);
}

TEST(PlanStore, EntryRoundtripIsExact)
{
    for (const bool mirror : {false, true}) {
        const GemmProblem p = smallGemm(0x51, 48, 96, 32,
                                        mirror ? 8 : 2);
        const CachedPlan entry(p, 8, mirror);
        const uint64_t key = PlanCache::fingerprint(p);
        const auto image = PlanStore::serialize(key, entry);
        const auto back =
            PlanStore::deserialize(image.data(), image.size(), key);
        ASSERT_NE(back, nullptr);
        expectEntriesEqual(entry, *back);
    }
}

TEST(PlanStore, SpillRoundtripIsExact)
{
    // Both operating points: sparse (no mirror materialized) and
    // dense (mirror materialized, then dropped by the codec and
    // re-derived on rehydration).
    for (const int nnz : {2, 8}) {
        const GemmProblem p = smallGemm(0x52, 40, 72, 24, nnz);
        const CachedPlan entry(p, 8, true);
        const auto bytes = spillEncode(entry);
        // Compact relative to the resident footprint (operands +
        // block arrays + any mirror): the codec stores only the
        // block arrays, mask byte + stored values each.
        const int64_t nb = entry.plan.act().blocksPerVector();
        const int64_t resident =
            static_cast<int64_t>(p.a.size() + p.w.size()) +
            (static_cast<int64_t>(p.m) + p.n) * nb * 9;
        EXPECT_LT(static_cast<int64_t>(bytes.size()), resident);
        const auto back = spillDecode(bytes.data(), bytes.size());
        ASSERT_NE(back, nullptr);
        expectEntriesEqual(entry, *back);
    }
}

TEST(PlanStore, RoundtripEveryZooModel)
{
    // End-to-end through the accelerator: populate a store from a
    // run of each zoo model (layers trimmed for test runtime),
    // restart with a cold cache on the same directory, and demand
    // bitwise-identical runs with every plan hydrated, none
    // re-encoded.
    const char *names[] = {"lenet5", "alexnet", "vgg16",
                           "mobilenetv1", "resnet50"};
    for (const char *name : names) {
        ModelSpec spec = modelByName(name);
        if (spec.layers.size() > 2)
            spec.layers.resize(2);
        Rng rng(0x200);
        const ModelWorkload mw = buildModelWorkload(spec, rng);
        const std::string dir =
            storeDir((std::string("zoo_") + name).c_str());

        AcceleratorConfig acfg;
        acfg.array = ArrayConfig::s2taAw(4);
        acfg.sim_threads = 1;
        const Accelerator acc(acfg);
        NetworkRunOptions opt;
        opt.compute_output = true;
        opt.validate_operands = false;

        PlanStore store_a(dir);
        PlanCache cache_a;
        cache_a.attachStore(&store_a);
        opt.plan_cache = &cache_a;
        const NetworkRun cold = acc.runNetwork(mw.layers, opt);
        EXPECT_GT(cache_a.stats().store_saves, 0) << name;

        // Process restart: new store handle, cold cache, same dir.
        PlanStore store_b(dir);
        PlanCache cache_b;
        cache_b.attachStore(&store_b);
        opt.plan_cache = &cache_b;
        const NetworkRun warm = acc.runNetwork(mw.layers, opt);
        EXPECT_GT(cache_b.stats().store_hits, 0) << name;
        EXPECT_EQ(cache_b.stats().misses, 0) << name;

        ASSERT_EQ(cold.layers.size(), warm.layers.size());
        EXPECT_TRUE(cold.total == warm.total) << name;
        for (size_t i = 0; i < cold.layers.size(); ++i) {
            EXPECT_TRUE(cold.layers[i].output ==
                        warm.layers[i].output)
                << name << " layer " << i;
            EXPECT_TRUE(cold.layers[i].events ==
                        warm.layers[i].events)
                << name << " layer " << i;
        }
    }
}

/** The key PlanCache::acquire derives for (p, bz, mirror): content
 *  fingerprint mixed with the encoding variant, the same scheme
 *  acquireKeyed applies before consulting the store. */
uint64_t
cacheKeyFor(const GemmProblem &p, int bz, bool mirror)
{
    return PlanCache::combine(PlanCache::fingerprint(p),
                              static_cast<uint64_t>(bz) |
                                  (mirror ? 0x100u : 0u));
}

TEST(PlanStore, RejectsTruncatedFiles)
{
    const std::string dir = storeDir("trunc");
    PlanStore store(dir);
    const GemmProblem p = smallGemm(0x53);
    const CachedPlan entry(p, 8, false);
    // Save under the exact key the cache will look up, so the
    // rebuild path below exercises reject -> re-encode -> replace.
    const uint64_t key = cacheKeyFor(p, 8, false);
    ASSERT_TRUE(store.save(key, entry));

    const auto image = readFile(store.pathFor(key));
    // Every truncation point must reject: header-only, mid-payload,
    // empty. Each rejection also quarantines the corrupt file
    // (renames it to .quar), so the path is absent afterwards.
    for (const size_t keep :
         {size_t{0}, size_t{10}, size_t{48}, image.size() / 2,
          image.size() - 1}) {
        writeFile(store.pathFor(key),
                  {image.begin(), image.begin() + keep});
        const auto r = store.load(key);
        EXPECT_EQ(r.entry, nullptr) << "kept " << keep;
        EXPECT_TRUE(r.rejected) << "kept " << keep;
        EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)))
            << "kept " << keep;
    }
    EXPECT_EQ(store.stats().rejects, 5);
    EXPECT_EQ(store.stats().quarantined, 5);

    // The rebuild path quarantines the bad file and silently
    // publishes a fresh one in its place.
    writeFile(store.pathFor(key),
              {image.begin(), image.begin() + image.size() / 2});
    PlanCache cache;
    cache.attachStore(&store);
    const auto rebuilt = cache.acquire(p, 8, false);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(cache.stats().store_rejects, 1);
    EXPECT_NE(store.load(key).entry, nullptr);
}

TEST(PlanStore, RejectsBitFlips)
{
    const std::string dir = storeDir("flip");
    PlanStore store(dir);
    const GemmProblem p = smallGemm(0x54);
    const CachedPlan entry(p, 8, false);
    const uint64_t key = PlanCache::fingerprint(p);
    ASSERT_TRUE(store.save(key, entry));
    const auto image = readFile(store.pathFor(key));

    // Flip one bit in the magic, in the stored key, and at several
    // payload offsets; all must be rejected by the header checks or
    // the payload checksum.
    for (const size_t at :
         {size_t{0}, size_t{8}, size_t{64}, image.size() / 2,
          image.size() - 1}) {
        auto bad = image;
        bad[at] ^= 0x10;
        writeFile(store.pathFor(key), bad);
        const auto r = store.load(key);
        EXPECT_EQ(r.entry, nullptr) << "flip at " << at;
        EXPECT_TRUE(r.rejected) << "flip at " << at;
    }

    // Restoring the pristine image loads again.
    writeFile(store.pathFor(key), image);
    EXPECT_NE(store.load(key).entry, nullptr);
}

TEST(PlanStore, RejectsVersionBump)
{
    const std::string dir = storeDir("version");
    PlanStore store(dir);
    const GemmProblem p = smallGemm(0x55);
    const CachedPlan entry(p, 8, false);
    const uint64_t key = PlanCache::fingerprint(p);
    ASSERT_TRUE(store.save(key, entry));

    auto image = readFile(store.pathFor(key));
    // The version field is the second uint32 of the header; a file
    // from any other format version must be rejected even though
    // its checksum is intact.
    uint32_t version;
    std::memcpy(&version, image.data() + 4, sizeof(version));
    EXPECT_EQ(version, kPlanStoreVersion);
    ++version;
    std::memcpy(image.data() + 4, &version, sizeof(version));
    writeFile(store.pathFor(key), image);
    const auto r = store.load(key);
    EXPECT_EQ(r.entry, nullptr);
    EXPECT_TRUE(r.rejected);
}

TEST(PlanStore, RejectsKeyMismatch)
{
    const std::string dir = storeDir("key");
    PlanStore store(dir);
    const GemmProblem p = smallGemm(0x56);
    const CachedPlan entry(p, 8, false);
    const uint64_t key = PlanCache::fingerprint(p);
    ASSERT_TRUE(store.save(key, entry));

    // A file renamed onto another key's path (or a key collision in
    // the filename hash) carries the wrong embedded key.
    const uint64_t other = key ^ 0xdeadbeefull;
    writeFile(store.pathFor(other), readFile(store.pathFor(key)));
    const auto r = store.load(other);
    EXPECT_EQ(r.entry, nullptr);
    EXPECT_TRUE(r.rejected);
    // The original is untouched.
    EXPECT_NE(store.load(key).entry, nullptr);
}

TEST(PlanStore, ConcurrentReadersShareOneDirectory)
{
    const std::string dir = storeDir("conc");
    std::vector<GemmProblem> problems;
    for (uint64_t s = 0; s < 4; ++s)
        problems.push_back(smallGemm(0x600 + s, 32, 80, 24));

    {
        PlanStore writer(dir);
        PlanCache cache;
        cache.attachStore(&writer);
        for (const auto &p : problems)
            cache.acquire(p, 8, true);
    }

    // Reference outputs from fresh builds.
    std::vector<std::vector<int32_t>> ref;
    for (const auto &p : problems) {
        const GemmPlan plan = GemmPlan::build(p, 8, true);
        std::vector<int32_t> out(static_cast<size_t>(p.m) * p.n);
        dbbGemm(plan, out.data());
        ref.push_back(std::move(out));
    }

    // Many readers, each its own store handle + cache over the same
    // directory, all hydrating the same mmap'd files concurrently.
    constexpr int kReaders = 8;
    std::vector<std::thread> readers;
    std::vector<int> ok(kReaders, 0);
    for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
            PlanStore store(dir);
            PlanCache cache;
            cache.attachStore(&store);
            bool good = true;
            for (size_t i = 0; i < problems.size(); ++i) {
                const auto e = cache.acquire(problems[i], 8, true);
                std::vector<int32_t> out(
                    static_cast<size_t>(problems[i].m) *
                    problems[i].n);
                dbbGemm(e->plan, out.data());
                good = good && out == ref[i];
            }
            good = good &&
                   cache.stats().store_hits ==
                       static_cast<int64_t>(problems.size()) &&
                   cache.stats().misses == 0;
            ok[static_cast<size_t>(t)] = good ? 1 : 0;
        });
    }
    for (auto &th : readers)
        th.join();
    for (int t = 0; t < kReaders; ++t)
        EXPECT_EQ(ok[static_cast<size_t>(t)], 1) << "reader " << t;
}

TEST(PlanStore, SweepsTornTempFilesOnOpen)
{
    const std::string dir = storeDir("torn");
    const GemmProblem p = smallGemm(0x57);
    uint64_t key;
    std::string torn;
    {
        PlanStore store(dir);
        key = cacheKeyFor(p, 8, false);
        ASSERT_TRUE(store.save(key, CachedPlan(p, 8, false)));
        // Simulate a writer killed mid-save: an unpublished temp
        // next to a healthy entry.
        torn = store.pathFor(key) + ".tmp.99999";
        writeFile(torn, {0x01, 0x02, 0x03});
    }
    ASSERT_TRUE(std::filesystem::exists(torn));
    PlanStore reopened(dir);
    EXPECT_FALSE(std::filesystem::exists(torn))
        << "constructor must sweep torn temp files";
    // The published entry is untouched.
    EXPECT_NE(reopened.load(key).entry, nullptr);
}

/** Files in @p dir whose name contains @p needle. */
int64_t
countFilesContaining(const std::string &dir,
                     const std::string &needle)
{
    int64_t n = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(dir)) {
        if (e.path().filename().string().find(needle) !=
            std::string::npos)
            ++n;
    }
    return n;
}

TEST(PlanStore, InjectedWriteFaultLeavesNoVisibleEntry)
{
    const std::string dir = storeDir("wfault");
    PlanStore store(dir);
    FaultInjector fi(0x11);
    fi.setRate(FaultSite::StoreWrite, 1.0);
    store.setFaultInjector(&fi);

    const GemmProblem p = smallGemm(0x58);
    const uint64_t key = cacheKeyFor(p, 8, false);
    EXPECT_FALSE(store.save(key, CachedPlan(p, 8, false)));

    // Nothing visible under the published path, only the torn temp
    // the modeled mid-save crash left behind; a load is a plain
    // miss, not a rejection.
    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
    EXPECT_EQ(countFilesContaining(dir, ".tmp."), 1);
    const auto r = store.load(key);
    EXPECT_EQ(r.entry, nullptr);
    EXPECT_FALSE(r.rejected);
    EXPECT_EQ(store.stats().saves, 0);
    EXPECT_EQ(store.stats().save_failures, 1);
    EXPECT_EQ(fi.injected(FaultSite::StoreWrite), 1);

    // compact() sweeps the torn temp, counted.
    const auto res = store.compact();
    EXPECT_EQ(res.torn_swept, 1);
    EXPECT_EQ(res.files, 0);
    EXPECT_EQ(countFilesContaining(dir, ".tmp."), 0);
    EXPECT_EQ(store.stats().torn_swept, 1);
}

TEST(PlanStore, InjectedRenameFaultFailsSaveCleanly)
{
    const std::string dir = storeDir("rfault");
    PlanStore store(dir);
    FaultInjector fi(0x12);
    fi.setRate(FaultSite::StoreRename, 1.0);
    store.setFaultInjector(&fi);

    const GemmProblem p = smallGemm(0x59);
    const uint64_t key = cacheKeyFor(p, 8, false);
    EXPECT_FALSE(store.save(key, CachedPlan(p, 8, false)));
    // A failed publish leaves nothing behind at all.
    EXPECT_TRUE(std::filesystem::is_empty(dir));
    EXPECT_EQ(store.stats().save_failures, 1);

    // Dropping the rate restores normal saves on the same handle.
    fi.setRate(FaultSite::StoreRename, 0.0);
    EXPECT_TRUE(store.save(key, CachedPlan(p, 8, false)));
    EXPECT_NE(store.load(key).entry, nullptr);
}

TEST(PlanStore, InjectedBitFlipQuarantinesOnceAndRebuilds)
{
    const std::string dir = storeDir("bfault");
    const GemmProblem p = smallGemm(0x5a);
    const uint64_t key = cacheKeyFor(p, 8, false);
    {
        PlanStore pristine(dir);
        ASSERT_TRUE(pristine.save(key, CachedPlan(p, 8, false)));
    }

    // A reader under modeled bit rot: the flipped image is rejected,
    // the file quarantined (exactly one .quar appears), and the
    // cache degrades to a cold encode and republishes.
    PlanStore store(dir);
    FaultInjector fi(0x13);
    fi.setRate(FaultSite::StoreBitFlip, 1.0);
    store.setFaultInjector(&fi);
    PlanCache cache;
    cache.attachStore(&store);
    const auto rebuilt = cache.acquire(p, 8, false);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_EQ(cache.stats().store_rejects, 1);
    EXPECT_EQ(store.stats().rejects, 1);
    EXPECT_EQ(store.stats().quarantined, 1);
    EXPECT_EQ(fi.injected(FaultSite::StoreBitFlip), 1);
    EXPECT_EQ(countFilesContaining(dir, ".quar"), 1);
    EXPECT_EQ(countFilesContaining(dir, ".s2ta"), 2)
        << "republished entry plus the quarantined original";

    // The republished file is valid: a fresh fault-free handle
    // hydrates it and it matches a direct build exactly.
    PlanStore clean(dir);
    const auto back = clean.load(key);
    ASSERT_NE(back.entry, nullptr);
    expectEntriesEqual(CachedPlan(p, 8, false), *back.entry);

    // compact() deletes the quarantined file, counted.
    const auto res = clean.compact();
    EXPECT_EQ(res.quarantine_removed, 1);
    EXPECT_EQ(res.files, 1);
    EXPECT_EQ(countFilesContaining(dir, ".quar"), 0);
    EXPECT_EQ(clean.stats().quarantine_removed, 1);
}

TEST(PlanStore, CompactEnforcesSizeCap)
{
    const std::string dir = storeDir("cap");
    std::vector<uint64_t> keys;
    int64_t file_bytes = 0;
    {
        PlanStore store(dir);
        for (uint64_t s = 0; s < 6; ++s) {
            const GemmProblem p = smallGemm(0x700 + s);
            const uint64_t key = cacheKeyFor(p, 8, false);
            ASSERT_TRUE(store.save(key, CachedPlan(p, 8, false)));
            keys.push_back(key);
        }
        file_bytes = static_cast<int64_t>(
            std::filesystem::file_size(store.pathFor(keys[0])));
    }

    // Re-attach with a budget for two entries; attaching alone
    // never evicts, compact() does.
    const int64_t cap = 2 * file_bytes + file_bytes / 2;
    PlanStore store(dir, cap);
    EXPECT_EQ(countFilesContaining(dir, ".s2ta"), 6);
    const auto res = store.compact();
    EXPECT_EQ(res.evicted_files, 4);
    EXPECT_EQ(res.evicted_bytes, 4 * file_bytes);
    EXPECT_EQ(res.files, 2);
    EXPECT_LE(res.bytes, cap);
    EXPECT_EQ(countFilesContaining(dir, ".s2ta"), 2);
    EXPECT_EQ(store.stats().evicted_files, 4);

    // Every surviving file still hydrates.
    int64_t alive = 0;
    for (const uint64_t key : keys)
        alive += store.load(key).entry != nullptr ? 1 : 0;
    EXPECT_EQ(alive, 2);
}

TEST(PlanStore, CompactEvictsByAge)
{
    const std::string dir = storeDir("age");
    PlanStore store(dir);
    const GemmProblem old_p = smallGemm(0x5b);
    const GemmProblem new_p = smallGemm(0x5c);
    const uint64_t old_key = cacheKeyFor(old_p, 8, false);
    const uint64_t new_key = cacheKeyFor(new_p, 8, false);
    ASSERT_TRUE(store.save(old_key, CachedPlan(old_p, 8, false)));
    ASSERT_TRUE(store.save(new_key, CachedPlan(new_p, 8, false)));

    // Age one entry an hour into the past; a 60 s horizon evicts it
    // and keeps the fresh one.
    std::filesystem::last_write_time(
        store.pathFor(old_key),
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(1));
    const auto res = store.compact(60.0);
    EXPECT_EQ(res.evicted_files, 1);
    EXPECT_EQ(res.files, 1);
    EXPECT_EQ(store.load(old_key).entry, nullptr);
    EXPECT_NE(store.load(new_key).entry, nullptr);
}

TEST(PlanStore, InjectedReadFaultIsAPlainMiss)
{
    const std::string dir = storeDir("readf");
    PlanStore store(dir);
    const GemmProblem p = smallGemm(0x5d);
    const uint64_t key = cacheKeyFor(p, 8, false);
    ASSERT_TRUE(store.save(key, CachedPlan(p, 8, false)));

    FaultInjector fi(0x14);
    fi.setRate(FaultSite::StoreRead, 1.0);
    store.setFaultInjector(&fi);
    const auto r = store.load(key);
    EXPECT_EQ(r.entry, nullptr);
    EXPECT_FALSE(r.rejected) << "a modeled open failure is a miss, "
                                "not a corrupt file";
    EXPECT_EQ(store.stats().read_faults, 1);
    // The file itself is untouched: detaching the injector loads it.
    store.setFaultInjector(nullptr);
    EXPECT_NE(store.load(key).entry, nullptr);
}

TEST(PlanStore, ChecksumDetectsEveryByte)
{
    // The 4-lane checksum must change when any single byte changes
    // (probabilistically; here spot-checked across the stride
    // positions of all four lanes and the scalar tail).
    std::vector<uint8_t> buf(257);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 7 + 1);
    const uint64_t base = planStoreChecksum(buf.data(), buf.size());
    for (const size_t at : {size_t{0}, size_t{7}, size_t{8},
                            size_t{15}, size_t{16}, size_t{24},
                            size_t{31}, size_t{130}, size_t{255},
                            size_t{256}}) {
        auto bad = buf;
        bad[at] ^= 1;
        EXPECT_NE(planStoreChecksum(bad.data(), bad.size()), base)
            << "byte " << at;
    }
    // And be length-sensitive.
    EXPECT_NE(planStoreChecksum(buf.data(), buf.size() - 1), base);
}

} // namespace
} // namespace s2ta
