/** @file Tests for EventCounts arithmetic and the accelerator's DMA
 *  residency policy. */

#include <gtest/gtest.h>

#include "arch/accelerator.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

EventCounts
sample()
{
    EventCounts ev;
    ev.cycles = 100;
    ev.logical_macs = 1000;
    ev.macs_executed = 250;
    ev.macs_zero = 50;
    ev.macs_gated = 700;
    ev.operand_reg_bytes = 2000;
    ev.operand_reg_gated_bytes = 100;
    ev.accum_updates = 250;
    ev.accum_gated = 750;
    ev.fifo_pushes = 10;
    ev.fifo_pops = 10;
    ev.mux_selects = 1000;
    ev.wgt_sram_bytes = 512;
    ev.act_sram_read_bytes = 1024;
    ev.act_sram_write_bytes = 64;
    ev.dap_comparisons = 70;
    ev.actfn_elements = 64;
    ev.dma_bytes = 4096;
    return ev;
}

TEST(EventCounts, AddAccumulatesEveryField)
{
    EventCounts a = sample();
    a.add(sample());
    const EventCounts s = sample();
    EXPECT_EQ(a.cycles, 2 * s.cycles);
    EXPECT_EQ(a.logical_macs, 2 * s.logical_macs);
    EXPECT_EQ(a.macs_executed, 2 * s.macs_executed);
    EXPECT_EQ(a.macs_zero, 2 * s.macs_zero);
    EXPECT_EQ(a.macs_gated, 2 * s.macs_gated);
    EXPECT_EQ(a.operand_reg_bytes, 2 * s.operand_reg_bytes);
    EXPECT_EQ(a.operand_reg_gated_bytes,
              2 * s.operand_reg_gated_bytes);
    EXPECT_EQ(a.accum_updates, 2 * s.accum_updates);
    EXPECT_EQ(a.accum_gated, 2 * s.accum_gated);
    EXPECT_EQ(a.fifo_pushes, 2 * s.fifo_pushes);
    EXPECT_EQ(a.fifo_pops, 2 * s.fifo_pops);
    EXPECT_EQ(a.mux_selects, 2 * s.mux_selects);
    EXPECT_EQ(a.wgt_sram_bytes, 2 * s.wgt_sram_bytes);
    EXPECT_EQ(a.act_sram_read_bytes, 2 * s.act_sram_read_bytes);
    EXPECT_EQ(a.act_sram_write_bytes, 2 * s.act_sram_write_bytes);
    EXPECT_EQ(a.dap_comparisons, 2 * s.dap_comparisons);
    EXPECT_EQ(a.actfn_elements, 2 * s.actfn_elements);
    EXPECT_EQ(a.dma_bytes, 2 * s.dma_bytes);
}

TEST(EventCounts, ScaleRoundsToNearest)
{
    EventCounts ev = sample();
    ev.scale(0.5);
    EXPECT_EQ(ev.cycles, 50);
    EXPECT_EQ(ev.macs_executed, 125);
    EXPECT_EQ(ev.dma_bytes, 2048);
    ev.scale(2.0);
    EXPECT_EQ(ev.cycles, 100);
}

TEST(EventCounts, MacSlotsIsTheSlotSum)
{
    const EventCounts ev = sample();
    EXPECT_EQ(ev.macSlots(), 250 + 50 + 700);
}

/** Layer whose weights are sized relative to the weight SRAM. */
LayerWorkload
weightHeavyLayer(int out_c, Rng &rng)
{
    LayerWorkload wl;
    wl.name = "wh";
    wl.shape = {256, 8, 8, out_c, 3, 3, 1, 1, 1};
    wl.act_nnz = 8;
    wl.wgt_nnz = 8;
    wl.input = makeUnstructuredTensor({8, 8, 256}, 0.4, rng);
    wl.weights = makeUnstructuredTensor({3, 3, 256, out_c}, 0.2,
                                        rng);
    return wl;
}

TEST(DmaPolicy, ResidentOperandsLoadOnce)
{
    Rng rng(1);
    // 3*3*256*64 = 147 KB weights: fits the 512 KB WB.
    const LayerWorkload wl = weightHeavyLayer(64, rng);
    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::saZvcg();
    const Accelerator acc(acfg);
    const LayerRun lr = acc.runLayer(wl);
    const int64_t expect =
        wl.weights.size() + wl.input.size() +
        static_cast<int64_t>(wl.shape.outH()) * wl.shape.outW() *
            wl.shape.out_c;
    EXPECT_EQ(lr.events.dma_bytes, expect);
}

TEST(DmaPolicy, OversizedWeightsStillStreamOnce)
{
    Rng rng(2);
    // 3*3*256*512 = 1.2 MB weights: overflows the WB, but the
    // activations are resident, so weights stream exactly once
    // (column-stripe-outer order).
    const LayerWorkload wl = weightHeavyLayer(512, rng);
    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::saZvcg();
    const Accelerator acc(acfg);
    const LayerRun lr = acc.runLayer(wl);
    const int64_t expect =
        wl.weights.size() + wl.input.size() +
        static_cast<int64_t>(wl.shape.outH()) * wl.shape.outW() *
            wl.shape.out_c;
    EXPECT_EQ(lr.events.dma_bytes, expect);
}

TEST(DmaPolicy, NeitherFitsRefetchesTheCheaperOperand)
{
    Rng rng(3);
    LayerWorkload wl = weightHeavyLayer(512, rng);
    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::saZvcg();
    // Shrink both SRAMs below the operand sizes.
    acfg.wgt_sram_bytes = 64 * 1024;
    acfg.act_sram_bytes = 8 * 1024;
    const Accelerator acc(acfg);
    const LayerRun lr = acc.runLayer(wl);
    // Some refetch must now happen.
    const int64_t once =
        wl.weights.size() + wl.input.size() +
        static_cast<int64_t>(wl.shape.outH()) * wl.shape.outW() *
            wl.shape.out_c;
    EXPECT_GT(lr.events.dma_bytes, once);
}

TEST(DmaPolicy, DbbCompressionShrinksWeightDma)
{
    Rng rng(4);
    LayerWorkload wl = weightHeavyLayer(64, rng);
    // Same layer, but with 4/8-pruned weights declared as such.
    LayerWorkload pruned = wl;
    pruned.wgt_nnz = 4;
    Int8Tensor tmp = makeDbbTensor({3, 3, 64, 256}, 4, rng);
    for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
            for (int c = 0; c < 256; ++c)
                for (int oc = 0; oc < 64; ++oc)
                    pruned.weights(ky, kx, c, oc) =
                        tmp(ky, kx, oc, c);

    AcceleratorConfig acfg;
    acfg.array = ArrayConfig::s2taAw(8);
    const Accelerator acc(acfg);
    const int64_t dense_dma = acc.runLayer(wl).events.dma_bytes;
    const int64_t dbb_dma = acc.runLayer(pruned).events.dma_bytes;
    // 5 bytes per 8: weights shrink by 3/8 of their share.
    EXPECT_LT(dbb_dma, dense_dma);
}

} // anonymous namespace
} // namespace s2ta
