/** @file Unit tests for the GEMM container and golden kernel. */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "tensor/gemm.hh"

namespace s2ta {
namespace {

TEST(Gemm, IdentityWeightCopiesActivations)
{
    const int n = 4;
    GemmProblem p(3, n, n);
    Rng rng(1);
    for (int i = 0; i < p.m; ++i)
        for (int kk = 0; kk < p.k; ++kk)
            p.actAt(i, kk) = rng.nonZeroInt8();
    for (int d = 0; d < n; ++d)
        p.wgtAt(d, d) = 1;

    const auto c = gemmReference(p);
    for (int i = 0; i < p.m; ++i)
        for (int j = 0; j < p.n; ++j)
            EXPECT_EQ(c[static_cast<size_t>(i) * p.n + j],
                      p.actAt(i, j));
}

TEST(Gemm, MatchesNaiveTripleLoop)
{
    Rng rng(2);
    GemmProblem p(7, 16, 5);
    for (auto &v : p.a)
        v = static_cast<int8_t>(rng.uniformInt(-128, 127));
    for (auto &v : p.w)
        v = static_cast<int8_t>(rng.uniformInt(-128, 127));

    const auto c = gemmReference(p);
    for (int i = 0; i < p.m; ++i) {
        for (int j = 0; j < p.n; ++j) {
            int32_t acc = 0;
            for (int kk = 0; kk < p.k; ++kk)
                acc += static_cast<int32_t>(p.actAt(i, kk)) *
                       p.wgtAt(kk, j);
            EXPECT_EQ(c[static_cast<size_t>(i) * p.n + j], acc);
        }
    }
}

TEST(Gemm, WorstCaseAccumulationFitsInt32)
{
    // The deepest K in the model zoo is ~25088 (VGG fc6); the
    // worst-case products sum to 25088 * 128 * 128 < 2^31, so
    // INT32 accumulators never overflow.
    GemmProblem p(1, 25088, 1);
    for (auto &v : p.a)
        v = -128;
    for (auto &v : p.w)
        v = -128;
    const auto c = gemmReference(p);
    EXPECT_EQ(c[0], 25088 * 128 * 128);
    EXPECT_GT(c[0], 0); // no wraparound
}

TEST(Gemm, SparsityFractions)
{
    GemmProblem p(2, 4, 2);
    // 8 activation elements, set 2 non-zero -> sparsity 0.75.
    p.actAt(0, 0) = 5;
    p.actAt(1, 3) = -9;
    EXPECT_DOUBLE_EQ(p.actSparsity(), 0.75);
    EXPECT_DOUBLE_EQ(p.wgtSparsity(), 1.0);
    p.wgtAt(0, 0) = 1;
    EXPECT_DOUBLE_EQ(p.wgtSparsity(), 7.0 / 8.0);
}

TEST(Gemm, DenseMacs)
{
    GemmProblem p(3, 8, 5);
    EXPECT_EQ(p.denseMacs(), 3 * 8 * 5);
}

TEST(GemmDeath, BadDimsFatal)
{
    EXPECT_DEATH(GemmProblem(0, 8, 4), "bad GEMM dims");
}

} // anonymous namespace
} // namespace s2ta
