/** @file Unit tests for the dense Tensor container. */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"

namespace s2ta {
namespace {

TEST(Tensor, ConstructsWithShapeAndInit)
{
    Int8Tensor t({2, 3, 4}, 7);
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(1), 3);
    EXPECT_EQ(t.dim(2), 4);
    EXPECT_EQ(t.size(), 24);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.flat(i), 7);
}

TEST(Tensor, RowMajorLayout)
{
    Int32Tensor t({2, 3, 4});
    int32_t v = 0;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 4; ++k)
                t(i, j, k) = v++;
    // The innermost index is contiguous.
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.flat(i), static_cast<int32_t>(i));
}

TEST(Tensor, MultiIndexAccessReadsBack)
{
    FloatTensor t({3, 5});
    t(2, 4) = 1.5f;
    t(0, 0) = -2.0f;
    EXPECT_FLOAT_EQ(t(2, 4), 1.5f);
    EXPECT_FLOAT_EQ(t(0, 0), -2.0f);
    EXPECT_FLOAT_EQ(t(1, 3), 0.0f);
}

TEST(Tensor, FillOverwritesAll)
{
    FloatTensor t({4, 4});
    t.fill(3.0f);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t.flat(i), 3.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Int32Tensor t({2, 6});
    for (int64_t i = 0; i < t.size(); ++i)
        t.flat(i) = static_cast<int32_t>(i * 3);
    t.reshape({3, 4});
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.dim(0), 3);
    EXPECT_EQ(t.dim(1), 4);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.flat(i), static_cast<int32_t>(i * 3));
}

TEST(Tensor, EqualityComparesShapeAndData)
{
    Int8Tensor a({2, 2}, 1);
    Int8Tensor b({2, 2}, 1);
    EXPECT_TRUE(a == b);
    b(1, 1) = 2;
    EXPECT_FALSE(a == b);
    Int8Tensor c({4}, 1);
    EXPECT_FALSE(a == c);
}

TEST(TensorDeath, OutOfBoundsIndexPanics)
{
    Int8Tensor t({2, 2});
    EXPECT_DEATH(t(2, 0), "out of bound");
    EXPECT_DEATH(t.flat(4), "flat index");
}

TEST(TensorDeath, BadReshapePanics)
{
    Int8Tensor t({2, 2});
    EXPECT_DEATH(t.reshape({3, 2}), "reshape");
}

} // anonymous namespace
} // namespace s2ta
