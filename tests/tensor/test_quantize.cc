/** @file Unit tests for symmetric INT8 quantization. */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "tensor/quantize.hh"

namespace s2ta {
namespace {

TEST(Quantize, ScaleIsMaxAbsOver127)
{
    FloatTensor t({4});
    t(0) = 0.5f;
    t(1) = -2.54f;
    t(2) = 1.0f;
    t(3) = 0.0f;
    EXPECT_FLOAT_EQ(computeScale(t), 2.54f / 127.0f);
}

TEST(Quantize, AllZeroTensorGetsUnitScale)
{
    FloatTensor t({8});
    EXPECT_FLOAT_EQ(computeScale(t), 1.0f);
}

TEST(Quantize, ExtremesMapToPlusMinus127)
{
    FloatTensor t({2});
    t(0) = 10.0f;
    t(1) = -10.0f;
    const QuantizedTensor q = quantize(t);
    EXPECT_EQ(q.values(0), 127);
    EXPECT_EQ(q.values(1), -127);
}

TEST(Quantize, ZerosStayExactlyZero)
{
    // Symmetric quantization must keep zeros exact, otherwise
    // sparsity would be destroyed by quantization.
    FloatTensor t({3});
    t(0) = 0.0f;
    t(1) = 3.0f;
    t(2) = 0.0f;
    const QuantizedTensor q = quantize(t);
    EXPECT_EQ(q.values(0), 0);
    EXPECT_EQ(q.values(2), 0);
}

TEST(Quantize, RoundTripErrorBoundedByHalfStep)
{
    Rng rng(5);
    FloatTensor t({256});
    for (int64_t i = 0; i < t.size(); ++i)
        t.flat(i) = static_cast<float>(rng.normal(0.0, 1.0));
    const QuantizedTensor q = quantize(t);
    const FloatTensor back = dequantize(q);
    for (int64_t i = 0; i < t.size(); ++i) {
        EXPECT_LE(std::fabs(back.flat(i) - t.flat(i)),
                  q.scale * 0.5f + 1e-6f)
            << "element " << i;
    }
}

TEST(Quantize, ExplicitScaleClamps)
{
    FloatTensor t({2});
    t(0) = 100.0f;
    t(1) = -100.0f;
    const QuantizedTensor q = quantizeWithScale(t, 0.1f);
    EXPECT_EQ(q.values(0), 127);  // clamped
    EXPECT_EQ(q.values(1), -127); // clamped symmetric
}

} // anonymous namespace
} // namespace s2ta
