/** @file Direct convolution vs im2col+GEMM equivalence tests. */

#include <gtest/gtest.h>

#include <tuple>

#include "base/random.hh"
#include "tensor/conv.hh"

namespace s2ta {
namespace {

/** Fill a tensor with ~50% random non-zeros. */
void
randomFill(Int8Tensor &t, Rng &rng)
{
    for (int64_t i = 0; i < t.size(); ++i)
        t.flat(i) = rng.bernoulli(0.5) ? rng.nonZeroInt8() : 0;
}

Int32Tensor
viaIm2col(const Conv2dShape &shape, const Int8Tensor &input,
          const Int8Tensor &weights, int align)
{
    Int32Tensor out({shape.outH(), shape.outW(), shape.out_c}, 0);
    for (int g = 0; g < shape.groups; ++g) {
        const GemmProblem p =
            im2colLower(shape, input, weights, g, align);
        scatterGemmResult(shape, g, gemmReference(p), out);
    }
    return out;
}

TEST(ConvShape, OutputGeometry)
{
    Conv2dShape s{3, 227, 227, 96, 11, 11, 4, 0, 1};
    EXPECT_TRUE(s.valid());
    EXPECT_EQ(s.outH(), 55);
    EXPECT_EQ(s.outW(), 55);
    EXPECT_EQ(s.denseMacs(),
              55ll * 55 * 96 * 11 * 11 * 3);
}

TEST(ConvShape, DepthwiseGrouping)
{
    Conv2dShape s{32, 14, 14, 32, 3, 3, 1, 1, 32};
    EXPECT_TRUE(s.valid());
    EXPECT_EQ(s.groupInC(), 1);
    EXPECT_EQ(s.groupOutC(), 1);
}

TEST(ConvShape, InvalidShapesRejected)
{
    Conv2dShape s{3, 8, 8, 16, 3, 3, 1, 1, 2}; // in_c % groups != 0
    EXPECT_FALSE(s.valid());
    Conv2dShape z{0, 8, 8, 16, 3, 3, 1, 1, 1};
    EXPECT_FALSE(z.valid());
}

/** (in_c, size, out_c, kernel, stride, pad, groups, align). */
using ConvCase = std::tuple<int, int, int, int, int, int, int, int>;

class ConvEquivalence : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvEquivalence, Im2colMatchesDirect)
{
    const auto [in_c, size, out_c, kernel, stride, pad, groups,
                align] = GetParam();
    Conv2dShape shape{in_c, size, size, out_c, kernel, kernel,
                      stride, pad, groups};
    ASSERT_TRUE(shape.valid());

    Rng rng(static_cast<uint64_t>(in_c * 131 + size * 17 + kernel));
    Int8Tensor input({shape.in_h, shape.in_w, shape.in_c});
    Int8Tensor weights({shape.kernel_h, shape.kernel_w,
                        shape.groupInC(), shape.out_c});
    randomFill(input, rng);
    randomFill(weights, rng);

    const Int32Tensor direct = convReference(shape, input, weights);
    const Int32Tensor lowered =
        viaIm2col(shape, input, weights, align);
    EXPECT_TRUE(direct == lowered);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalence,
    ::testing::Values(
        // 1x1 pointwise
        ConvCase{16, 6, 24, 1, 1, 0, 1, 8},
        // 3x3 same-pad
        ConvCase{8, 9, 12, 3, 1, 1, 1, 8},
        // channel count not a multiple of the alignment
        ConvCase{5, 7, 9, 3, 1, 1, 1, 8},
        // strided, no padding
        ConvCase{3, 11, 7, 3, 2, 0, 1, 8},
        // large kernel, big stride (AlexNet conv1 style)
        ConvCase{3, 23, 8, 11, 4, 0, 1, 8},
        // depthwise
        ConvCase{16, 8, 16, 3, 1, 1, 16, 8},
        // grouped (2 groups)
        ConvCase{8, 6, 12, 3, 1, 1, 2, 8},
        // no channel alignment (dense baselines)
        ConvCase{5, 7, 9, 3, 1, 1, 1, 1},
        // stride 2 with pad
        ConvCase{12, 10, 6, 3, 2, 1, 1, 8}));

TEST(Im2col, BatchedLoweringMatchesDirectPerSample)
{
    // A batched lowering against convReference on each sample:
    // batch folds into the GEMM M axis and the batched scatter must
    // land sample s in output slab s.
    const Conv2dShape shape{8, 7, 7, 12, 3, 3, 1, 1, 2};
    const int batch = 3;
    Rng rng(0xB47);
    Int8Tensor input({batch, shape.in_h, shape.in_w, shape.in_c});
    Int8Tensor weights({shape.kernel_h, shape.kernel_w,
                        shape.groupInC(), shape.out_c});
    randomFill(input, rng);
    randomFill(weights, rng);

    Int32Tensor out(
        {batch, shape.outH(), shape.outW(), shape.out_c}, 0);
    const auto problems =
        im2colLowerAll(shape, input, weights, 8, batch);
    for (int g = 0; g < shape.groups; ++g) {
        // The single-group lowering must agree with the batched
        // all-groups pass.
        const GemmProblem single =
            im2colLower(shape, input, weights, g, 8, batch);
        EXPECT_EQ(single.a, problems[static_cast<size_t>(g)].a);
        EXPECT_EQ(single.w, problems[static_cast<size_t>(g)].w);
        scatterGemmResult(
            shape, g,
            gemmReference(problems[static_cast<size_t>(g)]), out,
            batch);
    }

    const int64_t in_stride = static_cast<int64_t>(shape.in_h) *
                              shape.in_w * shape.in_c;
    const int64_t out_stride = static_cast<int64_t>(shape.outH()) *
                               shape.outW() * shape.out_c;
    for (int s = 0; s < batch; ++s) {
        Int8Tensor one({shape.in_h, shape.in_w, shape.in_c});
        for (int64_t i = 0; i < in_stride; ++i)
            one.flat(i) = input.flat(s * in_stride + i);
        const Int32Tensor ref =
            convReference(shape, one, weights);
        for (int64_t i = 0; i < out_stride; ++i) {
            ASSERT_EQ(out.flat(s * out_stride + i), ref.flat(i))
                << "sample " << s << " element " << i;
        }
    }
}

TEST(Im2col, PadsChannelSegmentsToAlignment)
{
    Conv2dShape shape{3, 4, 4, 2, 3, 3, 1, 1, 1};
    Int8Tensor input({4, 4, 3}, 1);
    Int8Tensor weights({3, 3, 3, 2}, 1);
    const GemmProblem p = im2colLower(shape, input, weights, 0, 8);
    // Each of the 9 kernel taps gets an 8-aligned channel segment.
    EXPECT_EQ(p.k, 9 * 8);
    EXPECT_EQ(p.m, 16);
    EXPECT_EQ(p.n, 2);
    // Padding positions must be zero in both operands.
    for (int tap = 0; tap < 9; ++tap) {
        for (int c = 3; c < 8; ++c) {
            EXPECT_EQ(p.wgtAt(tap * 8 + c, 0), 0);
            EXPECT_EQ(p.actAt(5, tap * 8 + c), 0);
        }
    }
}

} // anonymous namespace
} // namespace s2ta
