/** @file Unit tests for the text-table printer's formatters. */

#include <gtest/gtest.h>

#include "base/table.hh"

namespace s2ta {
namespace {

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.14159, 0), "3");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, CountInsertsThousandsSeparators)
{
    EXPECT_EQ(Table::count(0), "0");
    EXPECT_EQ(Table::count(999), "999");
    EXPECT_EQ(Table::count(1000), "1,000");
    EXPECT_EQ(Table::count(1234567), "1,234,567");
    EXPECT_EQ(Table::count(-1234567), "-1,234,567");
    EXPECT_EQ(Table::count(-12), "-12");
}

TEST(Table, RatioAndPercent)
{
    EXPECT_EQ(Table::ratio(2.0), "2.00x");
    EXPECT_EQ(Table::ratio(1.255, 1), "1.3x");
    EXPECT_EQ(Table::percent(0.493), "49.3%");
    EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

TEST(Table, PrintsAlignedRows)
{
    Table t({"Design", "Speedup"});
    t.addRow({"SA-ZVCG", "1.00x"});
    t.addSeparator();
    t.addRow({"S2TA-AW", "2.11x"});

    // Render to a memory stream and sanity-check the layout.
    char buf[512] = {};
    std::FILE *mem = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(mem, nullptr);
    t.print(mem);
    std::fclose(mem);
    const std::string out(buf);
    EXPECT_NE(out.find("Design"), std::string::npos);
    EXPECT_NE(out.find("S2TA-AW"), std::string::npos);
    EXPECT_NE(out.find("2.11x"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

} // anonymous namespace
} // namespace s2ta
