/** @file Tests for the deterministic fault-injection harness:
 *  decisions are pure functions of (seed, site, identity), rates 0
 *  and 1 are exact, intermediate rates hit their expected fraction,
 *  stall magnitudes stay in range, and the per-site counters
 *  reconcile exactly with the decisions taken. */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "base/fault_injection.hh"

namespace s2ta {
namespace {

TEST(FaultInjection, DecisionsArePureInSeedSiteIdentity)
{
    FaultInjector a(0x1234);
    FaultInjector b(0x1234);
    a.setRate(FaultSite::LayerCompute, 0.3);
    b.setRate(FaultSite::LayerCompute, 0.3);
    for (uint64_t id = 0; id < 1000; ++id) {
        EXPECT_EQ(a.shouldFail(FaultSite::LayerCompute, id),
                  b.shouldFail(FaultSite::LayerCompute, id))
            << "id " << id;
    }
    // Re-asking the same injector the same question repeats the
    // answer: no hidden call-counter state.
    for (uint64_t id = 0; id < 100; ++id) {
        EXPECT_EQ(a.shouldFail(FaultSite::LayerCompute, id),
                  b.shouldFail(FaultSite::LayerCompute, id));
    }
}

TEST(FaultInjection, SeedAndSiteChangeTheFaultSet)
{
    FaultInjector a(1);
    FaultInjector b(2);
    a.setRate(FaultSite::StoreRead, 0.5);
    a.setRate(FaultSite::SpillDecode, 0.5);
    b.setRate(FaultSite::StoreRead, 0.5);
    int seed_diff = 0, site_diff = 0;
    for (uint64_t id = 0; id < 512; ++id) {
        seed_diff += a.shouldFail(FaultSite::StoreRead, id) !=
                             b.shouldFail(FaultSite::StoreRead, id)
                         ? 1
                         : 0;
        site_diff += a.shouldFail(FaultSite::StoreRead, id) !=
                             a.shouldFail(FaultSite::SpillDecode, id)
                         ? 1
                         : 0;
    }
    // Independent fair coins disagree about half the time; anything
    // clearly non-zero proves the seed / site is folded in.
    EXPECT_GT(seed_diff, 100);
    EXPECT_GT(site_diff, 100);
}

TEST(FaultInjection, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultInjector fi(7);
    fi.setRate(FaultSite::StoreWrite, 1.0);
    for (uint64_t id = 0; id < 256; ++id) {
        EXPECT_FALSE(fi.shouldFail(FaultSite::StoreRead, id));
        EXPECT_TRUE(fi.shouldFail(FaultSite::StoreWrite, id));
    }
    EXPECT_EQ(fi.injected(FaultSite::StoreRead), 0);
    EXPECT_EQ(fi.evaluated(FaultSite::StoreRead), 256);
    EXPECT_EQ(fi.injected(FaultSite::StoreWrite), 256);
    EXPECT_EQ(fi.evaluated(FaultSite::StoreWrite), 256);
}

TEST(FaultInjection, RateMatchesInjectedFraction)
{
    FaultInjector fi(0xABCD);
    fi.setRate(FaultSite::LayerCompute, 0.25);
    const int64_t trials = 20000;
    int64_t fired = 0;
    for (uint64_t id = 0; id < static_cast<uint64_t>(trials); ++id)
        fired += fi.shouldFail(FaultSite::LayerCompute, id) ? 1 : 0;
    // 4-sigma band around 0.25 * 20000 = 5000 (sigma ~ 61).
    EXPECT_NEAR(static_cast<double>(fired), 5000.0, 250.0);
    EXPECT_EQ(fi.injected(FaultSite::LayerCompute), fired);
    EXPECT_EQ(fi.evaluated(FaultSite::LayerCompute), trials);
}

TEST(FaultInjection, CountersAreExactUnderThreads)
{
    FaultInjector fi(0x99);
    fi.setRate(FaultSite::SpillEncode, 0.5);
    constexpr int kThreads = 8;
    constexpr uint64_t kPer = 4000;
    // Every thread asks about the same identity range; decisions
    // are pure, so each evaluation fires or not identically and the
    // totals are exact multiples of the single-thread counts.
    int64_t serial_fired = 0;
    {
        FaultInjector ref(0x99);
        ref.setRate(FaultSite::SpillEncode, 0.5);
        for (uint64_t id = 0; id < kPer; ++id)
            serial_fired +=
                ref.shouldFail(FaultSite::SpillEncode, id) ? 1 : 0;
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fi] {
            for (uint64_t id = 0; id < kPer; ++id)
                fi.shouldFail(FaultSite::SpillEncode, id);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(fi.evaluated(FaultSite::SpillEncode),
              kThreads * static_cast<int64_t>(kPer));
    EXPECT_EQ(fi.injected(FaultSite::SpillEncode),
              kThreads * serial_fired);
}

TEST(FaultInjection, StallCyclesStayInRangeAndRepeat)
{
    FaultInjector fi(0x77);
    fi.setRate(FaultSite::LayerStall, 1.0);
    fi.setStallCycles(100, 200);
    std::set<int64_t> seen;
    for (uint64_t id = 0; id < 500; ++id) {
        const int64_t c = fi.stallCycles(id);
        EXPECT_GE(c, 100);
        EXPECT_LE(c, 200);
        EXPECT_EQ(fi.stallCycles(id), c) << "id " << id;
        seen.insert(c);
    }
    // The magnitude varies with the identity (not one constant).
    EXPECT_GT(seen.size(), 10u);

    // A non-firing site stalls nothing.
    FaultInjector off(0x77);
    off.setStallCycles(100, 200);
    for (uint64_t id = 0; id < 100; ++id)
        EXPECT_EQ(off.stallCycles(id), 0);
}

TEST(FaultInjection, CombineIdIsOrderDependent)
{
    EXPECT_NE(FaultInjector::combineId(1, 2),
              FaultInjector::combineId(2, 1));
    EXPECT_NE(FaultInjector::combineId(0, 0),
              FaultInjector::combineId(0, 1));
    // Composite identities of distinct (request, attempt) pairs
    // collide only astronomically rarely; spot-check a grid.
    std::set<uint64_t> ids;
    for (uint64_t r = 0; r < 64; ++r)
        for (uint64_t a = 0; a < 8; ++a)
            ids.insert(FaultInjector::combineId(r, a));
    EXPECT_EQ(ids.size(), 64u * 8u);
}

TEST(FaultInjection, SiteNamesAreStable)
{
    EXPECT_STREQ(faultSiteName(FaultSite::StoreRead), "store-read");
    EXPECT_STREQ(faultSiteName(FaultSite::StoreWrite),
                 "store-write");
    EXPECT_STREQ(faultSiteName(FaultSite::StoreRename),
                 "store-rename");
    EXPECT_STREQ(faultSiteName(FaultSite::StoreBitFlip),
                 "store-bit-flip");
    EXPECT_STREQ(faultSiteName(FaultSite::SpillEncode),
                 "spill-encode");
    EXPECT_STREQ(faultSiteName(FaultSite::SpillDecode),
                 "spill-decode");
    EXPECT_STREQ(faultSiteName(FaultSite::LayerCompute),
                 "layer-compute");
    EXPECT_STREQ(faultSiteName(FaultSite::LayerStall),
                 "layer-stall");
    EXPECT_STREQ(faultSiteName(FaultSite::ReplicaCrash),
                 "replica-crash");
    EXPECT_STREQ(faultSiteName(FaultSite::ReplicaStall),
                 "replica-stall");
    EXPECT_STREQ(faultSiteName(FaultSite::ReplicaRestart),
                 "replica-restart");
}

TEST(FaultInjection, ReplicaSitesRollIndependently)
{
    // Replica-scoped sites share the per-site identity-hash
    // machinery: the same (replica, slot) identity decides
    // independently per site, deterministically per seed.
    FaultInjector a(0xF1EE7);
    FaultInjector b(0xF1EE7);
    a.setRate(FaultSite::ReplicaCrash, 0.25);
    b.setRate(FaultSite::ReplicaCrash, 0.25);
    a.setRate(FaultSite::ReplicaRestart, 0.5);
    b.setRate(FaultSite::ReplicaRestart, 0.5);
    int crashes = 0;
    for (uint64_t r = 0; r < 4; ++r) {
        for (uint64_t slot = 0; slot < 64; ++slot) {
            const uint64_t id = FaultInjector::combineId(r, slot);
            const bool hit =
                a.shouldFail(FaultSite::ReplicaCrash, id);
            EXPECT_EQ(hit,
                      b.shouldFail(FaultSite::ReplicaCrash, id));
            crashes += hit ? 1 : 0;
        }
    }
    // ~64 expected at rate 0.25 over 256 rolls; the exact count is
    // seed-determined, the band only guards the hash being alive.
    EXPECT_GT(crashes, 20);
    EXPECT_LT(crashes, 120);
    EXPECT_EQ(a.injected(FaultSite::ReplicaCrash), crashes);
    EXPECT_EQ(a.injected(FaultSite::ReplicaRestart), 0);
}

} // namespace
} // namespace s2ta
