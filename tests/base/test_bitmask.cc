/** @file Unit tests for the DBB bitmask helpers. */

#include <gtest/gtest.h>

#include "base/bitmask.hh"

namespace s2ta {
namespace {

TEST(Bitmask, PopcountCountsSetBits)
{
    EXPECT_EQ(maskPopcount(0x00), 0);
    EXPECT_EQ(maskPopcount(0xFF), 8);
    EXPECT_EQ(maskPopcount(0x4D), 4); // 0b01001101
    EXPECT_EQ(maskPopcount(0x01), 1);
}

TEST(Bitmask, TestAndSetRoundTrip)
{
    Mask8 m = 0;
    for (int i = 0; i < 8; i += 2)
        m = maskSet(m, i);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(maskTest(m, i), i % 2 == 0) << "bit " << i;
    EXPECT_EQ(m, 0x55);
}

TEST(Bitmask, SetIsIdempotent)
{
    Mask8 m = maskSet(0, 3);
    EXPECT_EQ(maskSet(m, 3), m);
}

TEST(Bitmask, RankCountsPrecedingSetBits)
{
    const Mask8 m = 0x4D; // bits 0, 2, 3, 6
    EXPECT_EQ(maskRank(m, 0), 0);
    EXPECT_EQ(maskRank(m, 2), 1);
    EXPECT_EQ(maskRank(m, 3), 2);
    EXPECT_EQ(maskRank(m, 6), 3);
}

TEST(Bitmask, NthSetBitInvertsRank)
{
    const Mask8 m = 0x4D;
    for (int n = 0; n < maskPopcount(m); ++n) {
        const int pos = maskNthSetBit(m, n);
        EXPECT_EQ(maskRank(m, pos), n);
    }
}

TEST(Bitmask, RankNthRoundTripAllMasks)
{
    // Exhaustive property check over all 256 masks.
    for (int mask = 0; mask < 256; ++mask) {
        const Mask8 m = static_cast<Mask8>(mask);
        int seen = 0;
        for (int i = 0; i < 8; ++i) {
            if (!maskTest(m, i))
                continue;
            EXPECT_EQ(maskRank(m, i), seen);
            EXPECT_EQ(maskNthSetBit(m, seen), i);
            ++seen;
        }
        EXPECT_EQ(seen, maskPopcount(m));
    }
}

TEST(Bitmask, ToStringUsesVerilogLiteral)
{
    EXPECT_EQ(maskToString(0x4D), "8'h4D");
    EXPECT_EQ(maskToString(0x00), "8'h00");
    EXPECT_EQ(maskToString(0xFF), "8'hFF");
}

} // anonymous namespace
} // namespace s2ta
