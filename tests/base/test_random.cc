/** @file Unit tests for the deterministic RNG wrapper. */

#include <gtest/gtest.h>

#include <set>

#include "base/random.hh"

namespace s2ta {
namespace {

TEST(Random, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30);
    EXPECT_LT(equal, 3);
}

TEST(Random, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Random, NonZeroInt8NeverZeroAndCoversRange)
{
    Rng rng(9);
    bool saw_min = false, saw_max = false;
    for (int i = 0; i < 20000; ++i) {
        const int v = rng.nonZeroInt8();
        EXPECT_NE(v, 0);
        EXPECT_GE(v, -128);
        EXPECT_LE(v, 127);
        saw_min |= v == -128;
        saw_max |= v == 127;
    }
    EXPECT_TRUE(saw_min);
    EXPECT_TRUE(saw_max);
}

TEST(Random, ChooseKReturnsDistinctSorted)
{
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const auto idx = rng.chooseK(20, 7);
        ASSERT_EQ(idx.size(), 7u);
        std::set<int> seen(idx.begin(), idx.end());
        EXPECT_EQ(seen.size(), 7u);
        EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
        EXPECT_GE(idx.front(), 0);
        EXPECT_LT(idx.back(), 20);
    }
}

TEST(Random, ChooseKEdgeCases)
{
    Rng rng(13);
    EXPECT_TRUE(rng.chooseK(5, 0).empty());
    const auto all = rng.chooseK(5, 5);
    ASSERT_EQ(all.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(Random, ChooseKIsApproximatelyUniform)
{
    Rng rng(17);
    std::vector<int> hits(10, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t)
        for (int i : rng.chooseK(10, 3))
            ++hits[static_cast<size_t>(i)];
    // Each position should be chosen ~30% of the time.
    for (int i = 0; i < 10; ++i) {
        const double frac =
            static_cast<double>(hits[static_cast<size_t>(i)]) / trials;
        EXPECT_NEAR(frac, 0.3, 0.03) << "position " << i;
    }
}

TEST(Random, BernoulliMatchesProbability)
{
    Rng rng(23);
    int heads = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        heads += rng.bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(heads) / trials, 0.25, 0.01);
}

TEST(Random, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    // The child stream must not mirror the parent stream.
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += parent.uniformInt(0, 1 << 30) ==
                 child.uniformInt(0, 1 << 30);
    }
    EXPECT_LT(equal, 3);
}

} // anonymous namespace
} // namespace s2ta
