/** @file Unit tests for the fixed-size thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "base/thread_pool.hh"

namespace s2ta {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    const int64_t n = 10000;
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    pool.parallelFor(n, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, AutoSizedPoolCompletesAllWork)
{
    // workers = 0 sizes from the hardware (possibly zero helpers on
    // a single-core host); either way every index must run.
    ThreadPool pool(0);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(100, [&](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, SequentialJobsReuseWorkers)
{
    ThreadPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> count{0};
        pool.parallelFor(64, [&](int64_t) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 64) << "round " << round;
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(8, [&](int64_t outer) {
        pool.parallelFor(8, [&](int64_t inner) {
            hits[static_cast<size_t>(outer * 8 + inner)].fetch_add(
                1);
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DeterministicByIndexReduction)
{
    // The pool's contract: write slot i from fn(i), reduce in index
    // order afterwards -> results are schedule-independent.
    ThreadPool pool(4);
    std::vector<int64_t> a(5000), b(5000);
    pool.parallelFor(5000, [&](int64_t i) {
        a[static_cast<size_t>(i)] = i * i + 7;
    });
    for (int64_t i = 0; i < 5000; ++i)
        b[static_cast<size_t>(i)] = i * i + 7;
    EXPECT_EQ(a, b);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), int64_t{0}),
              std::accumulate(b.begin(), b.end(), int64_t{0}));
}

TEST(ThreadPool, EmptyAndSingleJobsShortCircuit)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&](int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](int64_t i) {
        EXPECT_EQ(i, 0);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

} // anonymous namespace
} // namespace s2ta
