/** @file Unit tests for the shared Top-NNZ selection. */

#include <gtest/gtest.h>

#include <array>

#include "base/random.hh"
#include "core/topk.hh"

namespace s2ta {
namespace {

TEST(TopK, SelectsLargestMagnitudes)
{
    const std::array<int8_t, 8> blk = {1, -9, 2, 8, -3, 7, 4, 0};
    const Mask8 m = topNnzMask(std::span<const int8_t>(blk), 3);
    // |values|: 9 (pos 1), 8 (pos 3), 7 (pos 5).
    EXPECT_TRUE(maskTest(m, 1));
    EXPECT_TRUE(maskTest(m, 3));
    EXPECT_TRUE(maskTest(m, 5));
    EXPECT_EQ(maskPopcount(m), 3);
}

TEST(TopK, LowestIndexWinsTies)
{
    const std::array<int8_t, 8> blk = {5, -5, 5, 0, 0, 5, 0, 0};
    const Mask8 m = topNnzMask(std::span<const int8_t>(blk), 2);
    EXPECT_TRUE(maskTest(m, 0));
    EXPECT_TRUE(maskTest(m, 1));
    EXPECT_EQ(maskPopcount(m), 2);
}

TEST(TopK, ZerosNeverSelected)
{
    const std::array<int8_t, 8> blk = {0, 0, 3, 0, 0, 0, 0, 0};
    const Mask8 m = topNnzMask(std::span<const int8_t>(blk), 5);
    EXPECT_EQ(maskPopcount(m), 1);
    EXPECT_TRUE(maskTest(m, 2));
}

TEST(TopK, NnzZeroSelectsNothing)
{
    const std::array<int8_t, 8> blk = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(topNnzMask(std::span<const int8_t>(blk), 0), 0);
}

TEST(TopK, WorksOnFloats)
{
    const std::array<float, 8> blk = {0.1f, -0.9f, 0.0f, 0.5f,
                                      -0.2f, 0.05f, 0.3f, 0.0f};
    const Mask8 m = topNnzMask(std::span<const float>(blk), 2);
    EXPECT_TRUE(maskTest(m, 1));
    EXPECT_TRUE(maskTest(m, 3));
}

TEST(TopK, ShorterBlocksSupported)
{
    const std::array<int8_t, 3> blk = {2, -7, 1};
    const Mask8 m = topNnzMask(std::span<const int8_t>(blk), 2);
    EXPECT_TRUE(maskTest(m, 0));
    EXPECT_TRUE(maskTest(m, 1));
}

TEST(TopK, KeepMaskZeroesDropped)
{
    std::array<int8_t, 8> blk = {1, 2, 3, 4, 5, 6, 7, 8};
    applyKeepMask(std::span<int8_t>(blk), 0b10000001);
    EXPECT_EQ(blk[0], 1);
    EXPECT_EQ(blk[7], 8);
    for (int i = 1; i < 7; ++i)
        EXPECT_EQ(blk[static_cast<size_t>(i)], 0);
}

TEST(TopK, SelectionIsPermutationInvariantInMagnitudeSet)
{
    // Property: the multiset of selected magnitudes equals the NNZ
    // largest magnitudes of the block, for random blocks.
    Rng rng(11);
    for (int trial = 0; trial < 300; ++trial) {
        std::array<int8_t, 8> blk{};
        for (auto &v : blk)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        const int nnz = static_cast<int>(rng.uniformInt(1, 8));
        const Mask8 m =
            topNnzMask(std::span<const int8_t>(blk), nnz);

        std::vector<int> mags;
        for (auto v : blk)
            if (v != 0)
                mags.push_back(std::abs(static_cast<int>(v)));
        std::sort(mags.rbegin(), mags.rend());
        const size_t expect_count =
            std::min(mags.size(), static_cast<size_t>(nnz));

        std::vector<int> selected;
        for (int i = 0; i < 8; ++i)
            if (maskTest(m, i))
                selected.push_back(
                    std::abs(static_cast<int>(
                        blk[static_cast<size_t>(i)])));
        std::sort(selected.rbegin(), selected.rend());

        ASSERT_EQ(selected.size(), expect_count) << "trial " << trial;
        for (size_t i = 0; i < expect_count; ++i)
            EXPECT_EQ(selected[i], mags[i]) << "trial " << trial;
    }
}

} // anonymous namespace
} // namespace s2ta
