/** @file Unit tests for the DBB block codec and compressed matrix. */

#include <gtest/gtest.h>

#include <array>

#include "base/random.hh"
#include "core/dbb.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(DbbSpec, Basics)
{
    const DbbSpec s{4, 8};
    EXPECT_TRUE(s.valid());
    EXPECT_DOUBLE_EQ(s.density(), 0.5);
    EXPECT_DOUBLE_EQ(s.sparsity(), 0.5);
    EXPECT_EQ(s.toString(), "4/8");
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.storedBytesPerBlock(), 5);

    const DbbSpec d{8, 8};
    EXPECT_TRUE(d.isDense());
    EXPECT_EQ(d.storedBytesPerBlock(), 8);
}

TEST(DbbBlock, EncodeMatchesFig5Example)
{
    // Paper Fig. 5: a 4/8 block keeps the non-zeros and a
    // positional bitmask.
    const std::array<int8_t, 8> dense = {0, 9, 0, 5, 2, 0, 6, 0};
    const DbbBlock blk = dbbEncode(dense, DbbSpec{4, 8});
    EXPECT_EQ(blk.storedCount(), 4);
    EXPECT_EQ(blk.values[0], 9);
    EXPECT_EQ(blk.values[1], 5);
    EXPECT_EQ(blk.values[2], 2);
    EXPECT_EQ(blk.values[3], 6);
    EXPECT_TRUE(maskTest(blk.mask, 1));
    EXPECT_TRUE(maskTest(blk.mask, 3));
    EXPECT_TRUE(maskTest(blk.mask, 4));
    EXPECT_TRUE(maskTest(blk.mask, 6));
    EXPECT_EQ(maskPopcount(blk.mask), 4);
}

TEST(DbbBlock, RoundTripRandomBlocks)
{
    Rng rng(3);
    const DbbSpec spec{4, 8};
    for (int trial = 0; trial < 500; ++trial) {
        std::array<int8_t, 8> dense{};
        const int nnz = static_cast<int>(rng.uniformInt(0, 4));
        for (int pos : rng.chooseK(8, nnz))
            dense[static_cast<size_t>(pos)] = rng.nonZeroInt8();

        const DbbBlock blk = dbbEncode(dense, spec);
        std::array<int8_t, 8> back{};
        dbbDecode(blk, spec, back);
        EXPECT_EQ(dense, back) << "trial " << trial;
    }
}

TEST(DbbBlock, ExpandedAtReturnsZeroForUnsetPositions)
{
    const std::array<int8_t, 8> dense = {0, 0, 0, -3, 0, 0, 0, 0};
    const DbbBlock blk = dbbEncode(dense, DbbSpec{4, 8});
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(blk.expandedAt(i), dense[static_cast<size_t>(i)]);
}

TEST(DbbBlockDeath, OverDenseBlockRejected)
{
    const std::array<int8_t, 8> dense = {1, 2, 3, 4, 5, 0, 0, 0};
    EXPECT_DEATH(dbbEncode(dense, DbbSpec{4, 8}), "density bound");
}

TEST(DbbBlock, SatisfiesChecksBound)
{
    const std::array<int8_t, 8> four = {1, 2, 3, 4, 0, 0, 0, 0};
    const std::array<int8_t, 8> five = {1, 2, 3, 4, 5, 0, 0, 0};
    EXPECT_TRUE(dbbSatisfies(four, DbbSpec{4, 8}));
    EXPECT_FALSE(dbbSatisfies(five, DbbSpec{4, 8}));
    EXPECT_TRUE(dbbSatisfies(five, DbbSpec{5, 8}));
}

TEST(DbbMatrix, WeightRoundTrip)
{
    Rng rng(5);
    GemmProblem p = makeDbbGemm(4, 32, 6, 4, 8, rng);
    const DbbMatrix m = DbbMatrix::fromWeights(p, DbbSpec{4, 8});
    EXPECT_EQ(m.vectors(), p.n);
    EXPECT_EQ(m.blocksPerVector(), p.k / 8);

    const auto dense = m.toDense();
    for (int j = 0; j < p.n; ++j)
        for (int kk = 0; kk < p.k; ++kk)
            EXPECT_EQ(dense[static_cast<size_t>(j) * p.k + kk],
                      p.wgtAt(kk, j));
}

TEST(DbbMatrix, ActivationRoundTrip)
{
    Rng rng(6);
    GemmProblem p = makeDbbGemm(5, 24, 3, 8, 3, rng);
    const DbbMatrix m = DbbMatrix::fromActivations(p, DbbSpec{3, 8});
    const auto dense = m.toDense();
    for (int i = 0; i < p.m; ++i)
        for (int kk = 0; kk < p.k; ++kk)
            EXPECT_EQ(dense[static_cast<size_t>(i) * p.k + kk],
                      p.actAt(i, kk));
}

TEST(DbbMatrix, CompressionRatioMatchesFormula)
{
    Rng rng(7);
    GemmProblem p = makeDbbGemm(4, 64, 4, 4, 8, rng);
    const DbbMatrix m = DbbMatrix::fromWeights(p, DbbSpec{4, 8});
    // 4/8 DBB: 5 bytes stored per 8 dense bytes (Sec. 4: "37.5%
    // reduction in weight operand bandwidth").
    EXPECT_EQ(m.compressedBytes(), m.denseBytes() * 5 / 8);
    // Fully occupied blocks -> occupancy 1.
    EXPECT_DOUBLE_EQ(m.occupancy(), 1.0);
}

} // anonymous namespace
} // namespace s2ta
