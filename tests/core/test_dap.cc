/** @file Unit tests for Dynamic Activation Pruning (software
 *  reference and the Fig. 8 hardware cascade model). */

#include <gtest/gtest.h>

#include <array>

#include "base/random.hh"
#include "core/dap.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

TEST(DapUnit, MatchesFig8Example)
{
    // Paper Fig. 8 input block; for 4/8 DBB the output elements are
    // [4, 5, -7, 6] (positions 1, 3, 7, 5 in magnitude order).
    const std::array<int8_t, 8> blk = {0, 4, 1, 5, 2, 6, -1, -7};
    DapUnit dap;
    const auto res = dap.process(blk, 4);
    ASSERT_EQ(res.winner_positions.size(), 4u);
    EXPECT_EQ(res.winner_positions[0], 7); // |-7|
    EXPECT_EQ(res.winner_positions[1], 5); // |6|
    EXPECT_EQ(res.winner_positions[2], 3); // |5|
    EXPECT_EQ(res.winner_positions[3], 1); // |4|
    EXPECT_EQ(res.comparisons, 4 * 7);
}

class DapAgreement : public ::testing::TestWithParam<int>
{
};

TEST_P(DapAgreement, HardwareCascadeEqualsReference)
{
    const int nnz = GetParam();
    Rng rng(static_cast<uint64_t>(100 + nnz));
    DapUnit dap;
    for (int trial = 0; trial < 2000; ++trial) {
        std::array<int8_t, 8> blk{};
        for (auto &v : blk) {
            v = rng.bernoulli(0.35)
                    ? 0
                    : static_cast<int8_t>(rng.uniformInt(-128, 127));
        }
        const Mask8 ref = dapSelectMask(blk, nnz);
        const auto hw = dap.process(blk, nnz);
        EXPECT_EQ(hw.mask, ref)
            << "nnz=" << nnz << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedNnz, DapAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DapUnit, DenseBypassFlagsNonZerosWithoutComparisons)
{
    const std::array<int8_t, 8> blk = {0, 4, 0, 5, 0, 6, 0, -7};
    DapUnit dap;
    const auto res = dap.process(blk, 8);
    EXPECT_EQ(res.comparisons, 0);
    EXPECT_EQ(maskPopcount(res.mask), 4);
}

TEST(DapUnit, StopsEarlyWhenOnlyZerosRemain)
{
    const std::array<int8_t, 8> blk = {0, 0, 9, 0, 0, 0, 0, 0};
    DapUnit dap;
    const auto res = dap.process(blk, 4);
    // One non-zero: later stages select nothing and the mask stays
    // at one bit, but the first stages' comparators were exercised.
    EXPECT_EQ(maskPopcount(res.mask), 1);
    ASSERT_EQ(res.winner_positions.size(), 1u);
    EXPECT_EQ(res.winner_positions[0], 2);
}

TEST(DapUnitDeath, UnsupportedNnzRejected)
{
    const std::array<int8_t, 8> blk{};
    DapUnit dap; // max_stages = 5
    EXPECT_DEATH(dap.process(blk, 6), "unsupported NNZ");
    EXPECT_DEATH(dap.process(blk, 0), "unsupported NNZ");
}

TEST(DapPrune, TensorEnforcesBoundAndCountsDrops)
{
    Rng rng(7);
    Int8Tensor t = makeUnstructuredTensor({4, 4, 16}, 0.3, rng);
    const DapStats st = dapPruneTensor(t, 3);
    // Every 8-channel block now has at most 3 non-zeros.
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            for (int b = 0; b < 2; ++b) {
                int nz = 0;
                for (int c = 0; c < 8; ++c)
                    nz += t(y, x, b * 8 + c) != 0;
                EXPECT_LE(nz, 3);
            }
        }
    }
    EXPECT_GT(st.nonzeros_dropped, 0);
    EXPECT_GT(st.l2_retained, 0.5);
    EXPECT_LT(st.l2_retained, 1.0);
    // 4*4*2 blocks, 3 stages of 7 comparisons each.
    EXPECT_EQ(st.blocks, 32);
    EXPECT_EQ(st.comparisons, 32 * 3 * 7);
}

TEST(DapPrune, TopNnzKeepsLargestMagnitudesPerBlock)
{
    Int8Tensor t({1, 1, 8});
    const int8_t vals[8] = {3, -100, 7, 50, -2, 60, 1, -4};
    for (int c = 0; c < 8; ++c)
        t(0, 0, c) = vals[c];
    dapPruneTensor(t, 3);
    EXPECT_EQ(t(0, 0, 1), -100);
    EXPECT_EQ(t(0, 0, 5), 60);
    EXPECT_EQ(t(0, 0, 3), 50);
    EXPECT_EQ(t(0, 0, 0), 0);
    EXPECT_EQ(t(0, 0, 2), 0);
}

TEST(DapPrune, AlreadyStructuredTensorLossless)
{
    Rng rng(8);
    Int8Tensor t = makeDbbTensor({4, 4, 16}, 2, rng);
    const DapStats st = dapPruneTensor(t, 2);
    EXPECT_EQ(st.nonzeros_dropped, 0);
    EXPECT_DOUBLE_EQ(st.l2_retained, 1.0);
}

TEST(DapPrune, GemmVariantPrunesRows)
{
    Rng rng(9);
    GemmProblem p = makeUnstructuredGemm(4, 32, 4, 0.5, 0.2, rng);
    dapPruneActivations(p, 2);
    for (int i = 0; i < p.m; ++i) {
        for (int b = 0; b < p.k / 8; ++b) {
            int nz = 0;
            for (int e = 0; e < 8; ++e)
                nz += p.actAt(i, b * 8 + e) != 0;
            EXPECT_LE(nz, 2);
        }
    }
}

TEST(ChooseLayerNnz, DenseDataNeedsBypass)
{
    Rng rng(10);
    // Nearly dense activations: no small NNZ can retain 98% energy.
    Int8Tensor t = makeUnstructuredTensor({8, 8, 32}, 0.05, rng);
    EXPECT_EQ(chooseLayerNnz(t, 0.98), 8);
}

TEST(ChooseLayerNnz, SparseDataGetsSmallNnz)
{
    Rng rng(11);
    Int8Tensor t = makeDbbTensor({8, 8, 32}, 2, rng);
    EXPECT_LE(chooseLayerNnz(t, 0.98), 2);
}

TEST(ChooseLayerNnz, MonotoneInRetentionThreshold)
{
    Rng rng(12);
    Int8Tensor t = makeUnstructuredTensor({8, 8, 32}, 0.55, rng);
    const int loose = chooseLayerNnz(t, 0.80);
    const int tight = chooseLayerNnz(t, 0.995);
    EXPECT_LE(loose, tight);
}

} // anonymous namespace
} // namespace s2ta
