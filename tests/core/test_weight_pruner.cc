/** @file Unit tests for static W-DBB pruning. */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "core/dbb.hh"
#include "core/weight_pruner.hh"
#include "workload/sparse_gen.hh"

namespace s2ta {
namespace {

/** Check every K-block of every weight column satisfies the spec. */
bool
weightsSatisfy(const GemmProblem &p, const DbbSpec &spec)
{
    std::vector<int8_t> blk(static_cast<size_t>(spec.bz));
    for (int j = 0; j < p.n; ++j) {
        for (int b = 0; b < p.k / spec.bz; ++b) {
            for (int e = 0; e < spec.bz; ++e)
                blk[static_cast<size_t>(e)] =
                    p.wgtAt(b * spec.bz + e, j);
            if (!dbbSatisfies(blk, spec))
                return false;
        }
    }
    return true;
}

TEST(WeightPruner, EnforcesBoundOnDenseWeights)
{
    Rng rng(1);
    GemmProblem p = makeUnstructuredGemm(4, 64, 8, 0.0, 0.0, rng);
    ASSERT_FALSE(weightsSatisfy(p, DbbSpec{4, 8}));
    const PruneStats st = pruneWeightsDbb(p, DbbSpec{4, 8});
    EXPECT_TRUE(weightsSatisfy(p, DbbSpec{4, 8}));
    EXPECT_EQ(st.blocks, 8 * 8); // 8 blocks per column, 8 columns
    // Dense input: exactly half of all weights were dropped.
    EXPECT_EQ(st.nonzeros_dropped, 4 * 64 * 8 / 2 / 4);
}

TEST(WeightPruner, KeepsLargestMagnitudes)
{
    GemmProblem p(1, 8, 1);
    const int8_t vals[8] = {10, -20, 5, 30, -1, 2, 40, -50};
    for (int kk = 0; kk < 8; ++kk)
        p.wgtAt(kk, 0) = vals[kk];
    pruneWeightsDbb(p, DbbSpec{4, 8});
    // Survivors: |−50|, |40|, |30|, |−20|.
    EXPECT_EQ(p.wgtAt(7, 0), -50);
    EXPECT_EQ(p.wgtAt(6, 0), 40);
    EXPECT_EQ(p.wgtAt(3, 0), 30);
    EXPECT_EQ(p.wgtAt(1, 0), -20);
    EXPECT_EQ(p.wgtAt(0, 0), 0);
    EXPECT_EQ(p.wgtAt(2, 0), 0);
}

TEST(WeightPruner, AlreadySparseBlocksUntouched)
{
    Rng rng(2);
    GemmProblem p = makeDbbGemm(4, 32, 4, 3, 8, rng);
    const GemmProblem before = p;
    const PruneStats st = pruneWeightsDbb(p, DbbSpec{4, 8});
    EXPECT_EQ(st.nonzeros_dropped, 0);
    EXPECT_DOUBLE_EQ(st.l2_retained, 1.0);
    EXPECT_EQ(p.w, before.w);
}

TEST(WeightPruner, L2RetentionIsSensible)
{
    Rng rng(3);
    GemmProblem p = makeUnstructuredGemm(8, 64, 8, 0.0, 0.0, rng);
    const PruneStats st = pruneWeightsDbb(p, DbbSpec{4, 8});
    // Keeping the 4 largest of 8 uniform values retains well over
    // half of the energy.
    EXPECT_GT(st.l2_retained, 0.6);
    EXPECT_LT(st.l2_retained, 1.0);
    EXPECT_NEAR(st.dropFraction(), 0.5, 0.02);
}

TEST(WeightPruner, ActivationVariantPrunesRows)
{
    Rng rng(4);
    GemmProblem p = makeUnstructuredGemm(6, 32, 4, 0.0, 0.0, rng);
    pruneActivationsDbb(p, DbbSpec{2, 8});
    for (int i = 0; i < p.m; ++i) {
        for (int b = 0; b < p.k / 8; ++b) {
            int nz = 0;
            for (int e = 0; e < 8; ++e)
                nz += p.actAt(i, b * 8 + e) != 0;
            EXPECT_LE(nz, 2);
        }
    }
}

TEST(WeightPruner, TensorVariantHandlesPartialTailBlock)
{
    Int8Tensor t({2, 11}); // channel dim 11 = one 8-block + tail 3
    for (int64_t i = 0; i < t.size(); ++i)
        t.flat(i) = static_cast<int8_t>(i + 1);
    pruneTensorDbb(t, DbbSpec{2, 8});
    for (int r = 0; r < 2; ++r) {
        int nz_full = 0, nz_tail = 0;
        for (int c = 0; c < 8; ++c)
            nz_full += t(r, c) != 0;
        for (int c = 8; c < 11; ++c)
            nz_tail += t(r, c) != 0;
        EXPECT_EQ(nz_full, 2);
        EXPECT_EQ(nz_tail, 2); // bound min(2, 3)
    }
}

TEST(WeightPruner, AlongDimPrunesInputChannels)
{
    // (kh, kw, cin, cout) conv weights: blocks must run along cin.
    FloatTensor w({1, 1, 8, 4});
    for (int c = 0; c < 8; ++c)
        for (int oc = 0; oc < 4; ++oc)
            w(0, 0, c, oc) = static_cast<float>(c + 1);
    pruneFloatTensorDbbAlongDim(w, 2, DbbSpec{3, 8});
    for (int oc = 0; oc < 4; ++oc) {
        int nz = 0;
        for (int c = 0; c < 8; ++c)
            nz += w(0, 0, c, oc) != 0.0f;
        EXPECT_EQ(nz, 3) << "output channel " << oc;
        // The largest magnitudes (c = 5, 6, 7) survive.
        EXPECT_NE(w(0, 0, 7, oc), 0.0f);
        EXPECT_NE(w(0, 0, 6, oc), 0.0f);
        EXPECT_NE(w(0, 0, 5, oc), 0.0f);
    }
}

TEST(ProgressiveSpec, RampsFromDenseToTarget)
{
    const DbbSpec target{4, 8};
    const DbbSpec e0 = progressiveSpec(0, 4, target);
    const DbbSpec e3 = progressiveSpec(3, 4, target);
    const DbbSpec e9 = progressiveSpec(9, 4, target);
    EXPECT_GE(e0.nnz, target.nnz);
    EXPECT_LE(e0.nnz, 8);
    EXPECT_EQ(e3.nnz, target.nnz);
    EXPECT_EQ(e9.nnz, target.nnz);
    // Monotone non-increasing budget.
    int prev = 8;
    for (int ep = 0; ep < 8; ++ep) {
        const int nnz = progressiveSpec(ep, 5, target).nnz;
        EXPECT_LE(nnz, prev);
        prev = nnz;
    }
}

} // anonymous namespace
} // namespace s2ta
