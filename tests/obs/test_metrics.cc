/** @file MetricsRegistry contract: counters/gauges/histograms are
 *  exact, named lookups return stable references, the log2
 *  histogram buckets partition every recorded value on the
 *  documented boundaries, snapshots render every registered metric,
 *  concurrent increments lose nothing (the TSan serve job runs
 *  this), and reset() zeroes without unregistering. */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace s2ta {
namespace obs {
namespace {

TEST(Metrics, CounterAddsAndResets)
{
    MetricsRegistry r;
    Counter &c = r.counter("test.requests");
    EXPECT_EQ(c.value(), 0);
    c.add(3);
    c.add(1);
    EXPECT_EQ(c.value(), 4);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeHoldsLastValue)
{
    MetricsRegistry r;
    Gauge &g = r.gauge("test.depth");
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Metrics, LookupsReturnTheSameInstance)
{
    MetricsRegistry r;
    Counter &a = r.counter("test.same");
    a.add(7);
    // A second lookup must alias, not shadow.
    EXPECT_EQ(&r.counter("test.same"), &a);
    EXPECT_EQ(r.counter("test.same").value(), 7);
    EXPECT_EQ(&r.gauge("test.g"), &r.gauge("test.g"));
    EXPECT_EQ(&r.histogram("test.h"), &r.histogram("test.h"));
}

TEST(Metrics, HistogramBucketsOnLog2Boundaries)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("test.lat_us");
    // Bucket 0 is [0, 2); bucket k >= 1 is [2^k, 2^(k+1)).
    h.record(0.0);
    h.record(1.9);   // bucket 0
    h.record(2.0);   // bucket 1
    h.record(3.99);  // bucket 1
    h.record(4.0);   // bucket 2
    h.record(1024.0);

    EXPECT_EQ(h.count(), 6);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.9 + 2.0 + 3.99 + 4.0 + 1024.0);

    const std::vector<Histogram::Bin> bins = h.bins();
    ASSERT_EQ(bins.size(), 4u);
    EXPECT_DOUBLE_EQ(bins[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(bins[0].hi, 2.0);
    EXPECT_EQ(bins[0].count, 2);
    EXPECT_DOUBLE_EQ(bins[1].lo, 2.0);
    EXPECT_DOUBLE_EQ(bins[1].hi, 4.0);
    EXPECT_EQ(bins[1].count, 2);
    EXPECT_DOUBLE_EQ(bins[2].lo, 4.0);
    EXPECT_DOUBLE_EQ(bins[2].hi, 8.0);
    EXPECT_EQ(bins[2].count, 1);
    EXPECT_DOUBLE_EQ(bins[3].lo, 1024.0);
    EXPECT_DOUBLE_EQ(bins[3].hi, 2048.0);
    EXPECT_EQ(bins[3].count, 1);

    // Every recorded value landed in some bin.
    int64_t binned = 0;
    for (const Histogram::Bin &b : bins)
        binned += b.count;
    EXPECT_EQ(binned, h.count());
}

TEST(Metrics, HistogramClampsHugeValuesToTheLastBucket)
{
    MetricsRegistry r;
    Histogram &h = r.histogram("test.huge");
    h.record(std::ldexp(1.0, 80)); // way past 2^63
    const std::vector<Histogram::Bin> bins = h.bins();
    ASSERT_EQ(bins.size(), 1u);
    EXPECT_DOUBLE_EQ(bins[0].lo, std::ldexp(1.0, 63));
    EXPECT_EQ(bins[0].count, 1);
}

TEST(Metrics, SnapshotsRenderEveryMetric)
{
    MetricsRegistry r;
    r.counter("serve.requests").add(5);
    r.gauge("serve.depth").set(2.0);
    r.histogram("serve.latency_us").record(100.0);

    const std::string text = r.snapshotText();
    EXPECT_NE(text.find("serve.requests"), std::string::npos);
    EXPECT_NE(text.find("serve.depth"), std::string::npos);
    EXPECT_NE(text.find("serve.latency_us"), std::string::npos);

    const std::string json = r.snapshotJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"serve.requests\":5"),
              std::string::npos);
    int depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Metrics, ConcurrentCounterIncrementsLoseNothing)
{
    MetricsRegistry r;
    Counter &c = r.counter("test.contended");
    Histogram &h = r.histogram("test.contended_hist");
    constexpr int kThreads = 8;
    constexpr int kPer = 10000;
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPer; ++i) {
                c.add(1);
                h.record(static_cast<double>(i % 64));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), int64_t{kThreads} * kPer);
    EXPECT_EQ(h.count(), int64_t{kThreads} * kPer);
}

TEST(Metrics, ResetZeroesWithoutUnregistering)
{
    MetricsRegistry r;
    Counter &c = r.counter("test.keep");
    c.add(9);
    r.gauge("test.keep_g").set(1.0);
    r.histogram("test.keep_h").record(5.0);
    r.reset();
    // Same instances, zeroed.
    EXPECT_EQ(c.value(), 0);
    EXPECT_DOUBLE_EQ(r.gauge("test.keep_g").value(), 0.0);
    EXPECT_EQ(r.histogram("test.keep_h").count(), 0);
    EXPECT_NE(r.snapshotText().find("test.keep"),
              std::string::npos);
}

TEST(Metrics, MacrosRecordIntoTheGlobalRegistry)
{
    MetricsRegistry &g = MetricsRegistry::global();
    const int64_t before =
        g.counter("test.macro_counter").value();
    S2TA_METRIC_INC("test.macro_counter");
    S2TA_METRIC_ADD("test.macro_counter", 2);
    S2TA_METRIC_SET("test.macro_gauge", 4.5);
    S2TA_METRIC_RECORD("test.macro_hist", 10.0);
#ifndef S2TA_OBS_DISABLE
    EXPECT_EQ(g.counter("test.macro_counter").value(), before + 3);
    EXPECT_DOUBLE_EQ(g.gauge("test.macro_gauge").value(), 4.5);
    EXPECT_GE(g.histogram("test.macro_hist").count(), 1);
#else
    // Compiled out: the hooks must be exactly nothing.
    EXPECT_EQ(g.counter("test.macro_counter").value(), before);
#endif
}

} // namespace
} // namespace obs
} // namespace s2ta
