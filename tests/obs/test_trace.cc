/** @file Tracer contract: events are recorded with the right
 *  phase/category/payload and export as valid Chrome trace JSON, a
 *  full ring overwrites its oldest events and counts the drops,
 *  clear() empties every ring, concurrent emitters and exporters
 *  are safe (the TSan serve job runs this), disabled tracing costs
 *  no events, and — the load-bearing property — tracing on or off
 *  never changes a NetworkRun bit. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/trace.hh"
#include "serve/model_registry.hh"

namespace s2ta {
namespace obs {
namespace {

/** Events of one (cat, name) in a snapshot. */
std::vector<TraceEvent>
eventsNamed(const std::vector<TraceEvent> &all, const char *cat,
            const char *name)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &ev : all) {
        if (std::strcmp(ev.cat, cat) == 0 &&
            std::strcmp(ev.name, name) == 0)
            out.push_back(ev);
    }
    return out;
}

TEST(Tracer, StartsDisabledAndRecordsNothing)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    t.instant("test", "ignored", 1);
    t.counter("test", "ignored", 2);
    t.completeEvent("test", "ignored", 0, 10);
    EXPECT_EQ(t.stats().recorded, 0);
    EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, RecordsAllThreePhasesWithPayloads)
{
    Tracer t;
    t.setEnabled(true);
    const int64_t t0 = t.nowNs();
    t.completeEvent("cat-a", "span", t0, 1234, /*arg=*/7);
    t.instant("cat-b", "mark", 42);
    t.counter("cat-b", "depth", 3);

    const std::vector<TraceEvent> all = t.snapshot();
    ASSERT_EQ(all.size(), 3u);
    const Tracer::Stats st = t.stats();
    EXPECT_EQ(st.recorded, 3);
    EXPECT_EQ(st.dropped, 0);
    EXPECT_EQ(st.threads, 1);

    const auto spans = eventsNamed(all, "cat-a", "span");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].phase, TraceEvent::Phase::Complete);
    EXPECT_EQ(spans[0].ts_ns, t0);
    EXPECT_EQ(spans[0].dur_ns, 1234);
    EXPECT_EQ(spans[0].value, 7);

    const auto marks = eventsNamed(all, "cat-b", "mark");
    ASSERT_EQ(marks.size(), 1u);
    EXPECT_EQ(marks[0].phase, TraceEvent::Phase::Instant);
    EXPECT_EQ(marks[0].value, 42);

    const auto depths = eventsNamed(all, "cat-b", "depth");
    ASSERT_EQ(depths.size(), 1u);
    EXPECT_EQ(depths[0].phase, TraceEvent::Phase::Counter);
    EXPECT_EQ(depths[0].value, 3);
}

TEST(Tracer, SnapshotIsSortedByTimestamp)
{
    Tracer t;
    t.setEnabled(true);
    for (int i = 0; i < 100; ++i)
        t.instant("test", "tick", i);
    const std::vector<TraceEvent> all = t.snapshot();
    ASSERT_EQ(all.size(), 100u);
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i].ts_ns, all[i - 1].ts_ns);
}

TEST(Tracer, FullRingOverwritesOldestAndCountsDrops)
{
    Tracer t(/*ring_capacity=*/8);
    t.setEnabled(true);
    for (int i = 0; i < 20; ++i)
        t.instant("test", "tick", i);

    const Tracer::Stats st = t.stats();
    EXPECT_EQ(st.recorded, 8);
    EXPECT_EQ(st.dropped, 12);

    // The survivors are exactly the newest 8, oldest-first.
    const std::vector<TraceEvent> all = t.snapshot();
    ASSERT_EQ(all.size(), 8u);
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].value, static_cast<int64_t>(12 + i));
}

TEST(Tracer, RingCapacityRoundsUpToPowerOfTwo)
{
    Tracer t(/*ring_capacity=*/5); // rounds to 8
    t.setEnabled(true);
    for (int i = 0; i < 8; ++i)
        t.instant("test", "tick", i);
    EXPECT_EQ(t.stats().recorded, 8);
    EXPECT_EQ(t.stats().dropped, 0);
}

TEST(Tracer, ClearEmptiesEveryRingAndResetsDrops)
{
    Tracer t(/*ring_capacity=*/4);
    t.setEnabled(true);
    for (int i = 0; i < 9; ++i)
        t.instant("test", "tick", i);
    EXPECT_GT(t.stats().dropped, 0);

    t.clear();
    EXPECT_EQ(t.stats().recorded, 0);
    EXPECT_EQ(t.stats().dropped, 0);
    EXPECT_TRUE(t.snapshot().empty());

    // The ring is reusable after a clear.
    t.instant("test", "after", 1);
    EXPECT_EQ(t.stats().recorded, 1);
}

TEST(Tracer, SpanRaiiEmitsOneCompleteEvent)
{
    Tracer t;
    t.setEnabled(true);
    {
        TraceSpan span(t, "test", "scoped", 11);
    }
    const auto spans = t.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].phase, TraceEvent::Phase::Complete);
    EXPECT_GE(spans[0].dur_ns, 0);
    EXPECT_EQ(spans[0].value, 11);
}

TEST(Tracer, SpanDisabledAtConstructionStaysInert)
{
    Tracer t;
    {
        TraceSpan span(t, "test", "half");
        // Enabling mid-span must not produce a half-timed event.
        t.setEnabled(true);
    }
    EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, ChromeExportIsWellFormed)
{
    Tracer t;
    t.setEnabled(true);
    t.completeEvent("serve", "simulate", t.nowNs(), 5000, 1);
    t.instant("serve", "admit", 2);
    t.counter("backend", "backend.queue_depth", 4);

    const std::string json = t.chromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"serve\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"simulate\""),
              std::string::npos);
    // Balanced braces/brackets (cheap structural sanity; the CI
    // smoke job json.load()s a real trace file).
    int depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Tracer, ConcurrentEmittersAndExporterAreSafe)
{
    Tracer t(/*ring_capacity=*/1 << 10);
    t.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kEvents = 2000;
    std::atomic<bool> stop{false};

    // One exporter thread snapshots + reads stats in a loop while
    // the emitters hammer their rings (TSan-observed in CI).
    std::thread exporter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::vector<TraceEvent> snap = t.snapshot();
            for (const TraceEvent &ev : snap)
                ASSERT_GE(ev.ts_ns, 0);
            (void)t.stats();
        }
    });

    std::vector<std::thread> emitters;
    for (int w = 0; w < kThreads; ++w) {
        emitters.emplace_back([&t, w] {
            for (int i = 0; i < kEvents; ++i) {
                switch (i % 3) {
                  case 0:
                    t.instant("load", "tick", w);
                    break;
                  case 1:
                    t.counter("load", "value", i);
                    break;
                  default: {
                    TraceSpan span(t, "load", "work", i);
                  } break;
                }
            }
        });
    }
    for (std::thread &th : emitters)
        th.join();
    stop.store(true, std::memory_order_relaxed);
    exporter.join();

    const Tracer::Stats st = t.stats();
    EXPECT_EQ(st.threads, kThreads);
    EXPECT_EQ(st.recorded + st.dropped,
              static_cast<int64_t>(kThreads) * kEvents);
}

/** The property every hook in the serving stack leans on: tracing
 *  is observation only. The same workload through the same cacheless
 *  options must produce bit-identical runs with the global tracer
 *  off, on, and toggled. */
TEST(Tracer, TracingNeverChangesNetworkRunBits)
{
    AcceleratorConfig cfg;
    cfg.array = ArrayConfig::s2taAw(4);
    cfg.sim_threads = 1;
    const Accelerator acc(cfg);
    serve::ModelRegistry registry;
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    NetworkRunOptions opt;
    opt.validate_operands = false;

    Tracer &g = Tracer::global();
    const bool was_enabled = g.enabled();

    g.setEnabled(false);
    const NetworkRun off = acc.runNetwork(mw.layers, opt);
    g.setEnabled(true);
    const NetworkRun on = acc.runNetwork(mw.layers, opt);
    g.setEnabled(was_enabled);

    ASSERT_EQ(off.layers.size(), on.layers.size());
    EXPECT_TRUE(off.total == on.total);
    EXPECT_EQ(off.dense_macs, on.dense_macs);
    for (size_t i = 0; i < off.layers.size(); ++i) {
        EXPECT_TRUE(off.layers[i].events == on.layers[i].events);
        EXPECT_TRUE(off.layers[i].output == on.layers[i].output);
    }
}

} // namespace
} // namespace obs
} // namespace s2ta
