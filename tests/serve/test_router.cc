/** @file Placement-router contract: routing is a pure function of
 *  (ring seed, identity, routable set, loads), consistent hashing
 *  keeps a workload on one replica while the routable set is
 *  stable and moves only the departed replica's keys when it
 *  leaves, least-loaded picks the minimum-outstanding routable
 *  replica with low-index ties, exclusion and empty routable sets
 *  behave as documented, and the CLI name round-trip is exact. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "serve/router.hh"

namespace s2ta {
namespace serve {
namespace {

std::vector<bool>
allUp(int n)
{
    return std::vector<bool>(static_cast<size_t>(n), true);
}

std::vector<int64_t>
noLoad(int n)
{
    return std::vector<int64_t>(static_cast<size_t>(n), 0);
}

TEST(Router, PlacementNamesRoundTrip)
{
    EXPECT_STREQ(placementName(PlacementKind::ConsistentHash),
                 "hash");
    EXPECT_STREQ(placementName(PlacementKind::LeastLoaded),
                 "least-loaded");
    EXPECT_EQ(placementByName("hash"),
              PlacementKind::ConsistentHash);
    EXPECT_EQ(placementByName("least-loaded"),
              PlacementKind::LeastLoaded);
}

TEST(Router, WorkloadIdentityIsStableAndDiscriminating)
{
    const uint64_t a = workloadIdentity("resnet50", 1);
    EXPECT_EQ(a, workloadIdentity("resnet50", 1));
    std::set<uint64_t> ids;
    for (const char *m : {"lenet5", "alexnet", "resnet50"})
        for (int b : {1, 2, 4})
            ids.insert(workloadIdentity(m, b));
    EXPECT_EQ(ids.size(), 9u);
}

TEST(Router, ConsistentHashIsStickyWhileRoutableSetIsStable)
{
    const ReplicaRouter router(4, PlacementKind::ConsistentHash);
    const std::vector<bool> up = allUp(4);
    const std::vector<int64_t> load = noLoad(4);
    for (const char *m : {"lenet5", "alexnet", "resnet50"}) {
        const uint64_t id = workloadIdentity(m, 2);
        const int first = router.route(id, up, load);
        ASSERT_GE(first, 0);
        ASSERT_LT(first, 4);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(router.route(id, up, load), first) << m;
        // Loads never matter to the hash policy.
        std::vector<int64_t> skewed = {100, 0, 100, 0};
        EXPECT_EQ(router.route(id, up, skewed), first) << m;
    }
    // Two routers of the same (size, seed) agree; a different seed
    // permutes the ring (checked over enough keys that identical
    // placement everywhere is astronomically unlikely).
    const ReplicaRouter twin(4, PlacementKind::ConsistentHash);
    const ReplicaRouter other(4, PlacementKind::ConsistentHash,
                              0xD1FF);
    int moved = 0;
    for (int b = 1; b <= 64; ++b) {
        const uint64_t id = workloadIdentity("resnet50", b);
        EXPECT_EQ(router.route(id, up, load),
                  twin.route(id, up, load));
        moved += router.route(id, up, load) !=
                         other.route(id, up, load)
                     ? 1
                     : 0;
    }
    EXPECT_GT(moved, 0);
}

TEST(Router, ConsistentHashMovesOnlyTheDepartedReplicasKeys)
{
    const ReplicaRouter router(4, PlacementKind::ConsistentHash);
    const std::vector<bool> up = allUp(4);
    const std::vector<int64_t> load = noLoad(4);
    std::map<uint64_t, int> before;
    for (int b = 1; b <= 128; ++b) {
        const uint64_t id = workloadIdentity("mobilenetv1", b);
        before[id] = router.route(id, up, load);
    }
    // Take replica 2 out of the routable set: its keys move, every
    // other key stays put (the consistent-hashing locality that
    // keeps surviving replicas' caches warm through a crash).
    std::vector<bool> degraded = up;
    degraded[2] = false;
    int relocated = 0;
    for (const auto &[id, home] : before) {
        const int now = router.route(id, degraded, load);
        if (home == 2) {
            EXPECT_NE(now, 2);
            EXPECT_GE(now, 0);
            relocated += 1;
        } else {
            EXPECT_EQ(now, home) << "unaffected key moved";
        }
    }
    EXPECT_GT(relocated, 0) << "64 vnodes over 128 keys must give "
                               "replica 2 some keyspace";
}

TEST(Router, LeastLoadedPicksMinimumWithLowIndexTies)
{
    const ReplicaRouter router(4, PlacementKind::LeastLoaded);
    const std::vector<bool> up = allUp(4);
    const uint64_t id = workloadIdentity("lenet5", 1);
    EXPECT_EQ(router.route(id, up, {3, 1, 0, 2}), 2);
    EXPECT_EQ(router.route(id, up, {1, 0, 0, 2}), 1)
        << "ties break on the lowest index";
    EXPECT_EQ(router.route(id, up, {0, 0, 0, 0}), 0);
    // Unroutable replicas are never candidates, however idle.
    std::vector<bool> degraded = up;
    degraded[1] = false;
    EXPECT_EQ(router.route(id, degraded, {5, 0, 6, 6}), 0);
}

TEST(Router, ExclusionAndEmptyRoutableSet)
{
    for (const PlacementKind kind :
         {PlacementKind::ConsistentHash,
          PlacementKind::LeastLoaded}) {
        const ReplicaRouter router(3, kind);
        const std::vector<bool> up = allUp(3);
        const std::vector<int64_t> load = noLoad(3);
        const uint64_t id = workloadIdentity("alexnet", 4);
        const int home = router.route(id, up, load);
        const int alt = router.route(id, up, load, home);
        EXPECT_NE(alt, home) << "the excluded replica (the hedge "
                                "origin / crash site) never wins";
        EXPECT_GE(alt, 0);
        // Nothing routable: -1, the caller strands the instance.
        const std::vector<bool> down(3, false);
        EXPECT_EQ(router.route(id, down, load), -1);
        // Single survivor, but excluded: still -1.
        std::vector<bool> one(3, false);
        one[1] = true;
        EXPECT_EQ(router.route(id, one, load, 1), -1);
    }
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
