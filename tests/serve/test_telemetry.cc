/** @file Telemetry contract: quantiles are exact nearest-rank
 *  values (checked against a sorted-reference oracle), per-stream
 *  queueing breakdowns and deadline-miss accounting are exact, the
 *  histogram partitions every sample, and clear() resets. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "base/random.hh"
#include "serve/telemetry.hh"

namespace s2ta {
namespace serve {
namespace {

LatencySample
sample(int stream, double arrival, double start, double finish,
       double deadline = kNoDeadline)
{
    return LatencySample{stream, arrival, start, finish, deadline};
}

/** Independent nearest-rank oracle over the raw latency list. */
double
oracleQuantile(std::vector<double> latencies, double q)
{
    std::sort(latencies.begin(), latencies.end());
    const size_t n = latencies.size();
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return latencies[rank - 1];
}

TEST(LatencyTelemetry, QuantilesMatchSortedOracle)
{
    Rng rng(0xDECAF);
    for (const int n : {1, 2, 3, 7, 100, 1777}) {
        LatencyTelemetry t;
        std::vector<double> latencies;
        for (int i = 0; i < n; ++i) {
            // Arrival 0 so the recorded latency is exactly `lat`
            // (an offset would perturb the low bits of the
            // finish - arrival difference).
            const double lat = rng.uniformReal(1e-6, 5.0);
            latencies.push_back(lat);
            t.record(sample(i % 4, 0.0, 0.0, lat));
        }
        ASSERT_EQ(t.count(), n);
        for (const double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99,
                               1.0}) {
            EXPECT_DOUBLE_EQ(t.quantile(q),
                             oracleQuantile(latencies, q))
                << "n=" << n << " q=" << q;
        }
        const LatencyQuantiles lq = t.quantiles();
        EXPECT_DOUBLE_EQ(lq.p50_s, oracleQuantile(latencies, 0.5));
        EXPECT_DOUBLE_EQ(lq.p95_s,
                         oracleQuantile(latencies, 0.95));
        EXPECT_DOUBLE_EQ(lq.p99_s,
                         oracleQuantile(latencies, 0.99));
    }
}

TEST(LatencyTelemetry, QuantileIsRecordOrderIndependent)
{
    const std::vector<double> latencies = {0.5, 0.1, 0.9, 0.3,
                                           0.7};
    LatencyTelemetry fwd, rev;
    for (const double lat : latencies)
        fwd.record(sample(0, 0.0, 0.0, lat));
    for (auto it = latencies.rbegin(); it != latencies.rend(); ++it)
        rev.record(sample(0, 0.0, 0.0, *it));
    for (const double q : {0.2, 0.5, 0.95})
        EXPECT_DOUBLE_EQ(fwd.quantile(q), rev.quantile(q));
}

TEST(LatencyTelemetry, PerStreamQueueingBreakdown)
{
    LatencyTelemetry t;
    // Stream 3: queues of 1 and 3; stream 8: queue of 0.
    t.record(sample(3, 0.0, 1.0, 2.0));
    t.record(sample(3, 2.0, 5.0, 6.0));
    t.record(sample(8, 0.0, 0.0, 4.0));
    const auto &by = t.byStream();
    ASSERT_EQ(by.size(), 2u);
    const StreamDelay &s3 = by.at(3);
    EXPECT_EQ(s3.requests, 2);
    EXPECT_DOUBLE_EQ(s3.queue_sum_s, 4.0);
    EXPECT_DOUBLE_EQ(s3.meanQueue(), 2.0);
    EXPECT_DOUBLE_EQ(s3.queue_max_s, 3.0);
    const StreamDelay &s8 = by.at(8);
    EXPECT_EQ(s8.requests, 1);
    EXPECT_DOUBLE_EQ(s8.meanQueue(), 0.0);
}

TEST(LatencyTelemetry, DeadlineAccounting)
{
    LatencyTelemetry t;
    t.record(sample(0, 0.0, 0.0, 1.0));           // no deadline
    t.record(sample(0, 0.0, 0.0, 1.0, 2.0));      // met
    t.record(sample(1, 0.0, 0.0, 3.0, 2.0));      // missed
    t.record(sample(1, 0.0, 0.0, 2.0, 2.0));      // met (exact)
    EXPECT_EQ(t.count(), 4);
    EXPECT_EQ(t.deadlineRequests(), 3);
    EXPECT_EQ(t.deadlineMisses(), 1);
    EXPECT_DOUBLE_EQ(t.missRate(), 1.0 / 3.0);
    EXPECT_EQ(t.byStream().at(0).deadline_misses, 0);
    EXPECT_EQ(t.byStream().at(1).deadline_misses, 1);

    LatencyTelemetry none;
    none.record(sample(0, 0.0, 0.0, 1.0));
    EXPECT_DOUBLE_EQ(none.missRate(), 0.0);
}

TEST(LatencyTelemetry, HistogramPartitionsEverySample)
{
    LatencyTelemetry t;
    Rng rng(0xB1A5);
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        // Latencies spanning sub-us to tens of seconds.
        const double lat = std::pow(
            10.0, rng.uniformReal(-7.0, 1.5));
        t.record(sample(0, 0.0, 0.0, lat));
    }
    const auto bins = t.histogram();
    int64_t total = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
        EXPECT_GT(bins[i].count, 0); // only populated bins
        EXPECT_LT(bins[i].lo_s, bins[i].hi_s);
        if (i > 0) {
            EXPECT_GE(bins[i].lo_s, bins[i - 1].hi_s - 1e-12);
        }
        total += bins[i].count;
    }
    EXPECT_EQ(total, n);
}

TEST(LatencyTelemetry, MeanMaxAndClear)
{
    LatencyTelemetry t;
    t.record(sample(0, 0.0, 0.0, 1.0));
    t.record(sample(1, 0.0, 1.0, 3.0, 0.5));
    EXPECT_DOUBLE_EQ(t.meanLatency(), 2.0);
    EXPECT_DOUBLE_EQ(t.maxLatency(), 3.0);
    t.clear();
    EXPECT_EQ(t.count(), 0);
    EXPECT_EQ(t.deadlineRequests(), 0);
    EXPECT_EQ(t.deadlineMisses(), 0);
    EXPECT_TRUE(t.byStream().empty());
    EXPECT_TRUE(t.histogram().empty());
    EXPECT_DOUBLE_EQ(t.meanLatency(), 0.0);
}

TEST(LatencyTelemetry, EmptyStreamQuantilePanicsInsteadOfLying)
{
    // The degenerate-stream contract: quantile() on an empty
    // telemetry is a caller bug and panics — the old silent 0.0
    // masqueraded as a perfect latency in dashboards. Callers for
    // whom emptiness is legitimate use quantileIfAny() (nullopt) or
    // quantiles() (defined on every size: all zeros when empty,
    // because harnesses emit quantile columns unconditionally).
    LatencyTelemetry t;
    EXPECT_EQ(t.count(), 0);
    EXPECT_DEATH(t.quantile(0.5), "empty");
    for (const double q : {0.01, 0.5, 0.99, 1.0})
        EXPECT_FALSE(t.quantileIfAny(q).has_value()) << "q=" << q;
    const LatencyQuantiles lq = t.quantiles();
    EXPECT_DOUBLE_EQ(lq.p50_s, 0.0);
    EXPECT_DOUBLE_EQ(lq.p95_s, 0.0);
    EXPECT_DOUBLE_EQ(lq.p99_s, 0.0);
    EXPECT_DOUBLE_EQ(t.meanLatency(), 0.0);
    EXPECT_DOUBLE_EQ(t.maxLatency(), 0.0);
}

TEST(LatencyTelemetry, SingleSampleStreamIsItsOwnQuantile)
{
    // One sample: every quantile — including q = 0.01, whose
    // nearest-rank index would naively round to rank 0 — is that
    // sample.
    LatencyTelemetry t;
    t.record(sample(0, 0.0, 0.25, 1.75));
    for (const double q : {0.01, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(t.quantile(q), 1.75) << "q=" << q;
        ASSERT_TRUE(t.quantileIfAny(q).has_value());
        EXPECT_DOUBLE_EQ(*t.quantileIfAny(q), 1.75) << "q=" << q;
    }
    const LatencyQuantiles lq = t.quantiles();
    EXPECT_DOUBLE_EQ(lq.p50_s, 1.75);
    EXPECT_DOUBLE_EQ(lq.p95_s, 1.75);
    EXPECT_DOUBLE_EQ(lq.p99_s, 1.75);
    EXPECT_DOUBLE_EQ(t.meanLatency(), 1.75);
    EXPECT_DOUBLE_EQ(t.maxLatency(), 1.75);
    // And after clear() the empty-stream contract applies again.
    t.clear();
    EXPECT_FALSE(t.quantileIfAny(0.5).has_value());
    EXPECT_DEATH(t.quantile(0.5), "empty");
}

TEST(LatencyTelemetry, TwoSampleNearestRankBoundaries)
{
    // Two samples pin the nearest-rank boundary arithmetic: p50 is
    // the *lower* sample (rank ceil(0.5 * 2) = 1) and everything
    // above q = 0.5 is the upper one (rank 2).
    LatencyTelemetry t;
    t.record(sample(0, 0.0, 0.0, 3.0));
    t.record(sample(1, 0.0, 0.0, 1.0));
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.51), 3.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.95), 3.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.99), 3.0);
    EXPECT_DOUBLE_EQ(t.quantile(1.0), 3.0);
    const LatencyQuantiles lq = t.quantiles();
    EXPECT_DOUBLE_EQ(lq.p50_s, 1.0);
    EXPECT_DOUBLE_EQ(lq.p95_s, 3.0);
    EXPECT_DOUBLE_EQ(lq.p99_s, 3.0);
}

TEST(FleetTelemetry, HedgeLedgerReconciles)
{
    FleetTelemetry ft(3);
    EXPECT_TRUE(ft.hedgesReconcile());
    ft.recordHedgeLaunched();
    EXPECT_FALSE(ft.hedgesReconcile()); // in flight, unresolved
    ft.recordHedgeWin();
    EXPECT_TRUE(ft.hedgesReconcile());
    ft.recordHedgeLaunched();
    ft.recordHedgeLoss();
    ft.recordHedgeLaunched();
    ft.recordHedgeFailed();
    EXPECT_TRUE(ft.hedgesReconcile());
    EXPECT_EQ(ft.hedgesLaunched(), 3);
    EXPECT_EQ(ft.hedgeWins(), 1);
    EXPECT_EQ(ft.hedgeLosses(), 1);
    EXPECT_EQ(ft.hedgeFailed(), 1);
}

TEST(FleetTelemetry, RoutingSkewIsPeakOverMean)
{
    FleetTelemetry ft(2);
    // No traffic routed anywhere: skew degenerates to 0.
    EXPECT_DOUBLE_EQ(ft.routingSkew(), 0.0);
    ft.replica(0).routed = 3;
    ft.replica(1).routed = 1;
    // Peak 3 over mean 2.
    EXPECT_DOUBLE_EQ(ft.routingSkew(), 1.5);
}

TEST(FleetTelemetry, CacheHitVarianceIsPopulationVariance)
{
    FleetTelemetry ft(2);
    // Hit rates 1.0 and 0.0: mean 0.5, population variance 0.25.
    ft.replica(0).cache_hits = 4;
    ft.replica(1).cache_misses = 4;
    EXPECT_DOUBLE_EQ(ft.cacheHitVariance(), 0.25);
    // Identical replicas: zero variance.
    FleetTelemetry even(3);
    for (int r = 0; r < 3; ++r) {
        even.replica(r).cache_hits = 2;
        even.replica(r).cache_misses = 2;
    }
    EXPECT_DOUBLE_EQ(even.cacheHitVariance(), 0.0);
}

TEST(LatencySample, Helpers)
{
    const LatencySample s = sample(2, 1.0, 3.0, 7.0, 6.0);
    EXPECT_DOUBLE_EQ(s.latency(), 6.0);
    EXPECT_DOUBLE_EQ(s.queueing(), 2.0);
    EXPECT_TRUE(s.hasDeadline());
    EXPECT_TRUE(s.missedDeadline());
    const LatencySample open = sample(2, 1.0, 3.0, 7.0);
    EXPECT_FALSE(open.hasDeadline());
    EXPECT_FALSE(open.missedDeadline());
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
