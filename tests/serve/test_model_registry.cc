/** @file Registry contract: workload content is a pure function of
 *  (seed, model name, batch) — request arrival order can never
 *  change it — references are stable, and batch variants share the
 *  deployed model's weights. Batch > 1 entries carry distinct
 *  per-sample content by default (seeded per sample index, so
 *  batches of different sizes share their sample prefix);
 *  BatchMode::Replicate preserves the replication behavior the
 *  batched-equals-concatenated equivalence tests rely on. */

#include <gtest/gtest.h>

#include <cstring>

#include "serve/model_registry.hh"

namespace s2ta {
namespace serve {
namespace {

bool
sameWorkload(const ModelWorkload &a, const ModelWorkload &b)
{
    if (a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const LayerWorkload &x = a.layers[i];
        const LayerWorkload &y = b.layers[i];
        if (x.batch != y.batch || !(x.input == y.input) ||
            !(x.weights == y.weights))
            return false;
    }
    return true;
}

TEST(ModelRegistry, StableReferencesAndMemoization)
{
    ModelRegistry reg;
    const ModelWorkload &a = reg.workload("lenet5");
    const ModelWorkload &b = reg.workload("lenet5");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.entries(), 1);
    const ModelWorkload &c = reg.workload("lenet5", 2);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.entries(), 2);
}

TEST(ModelRegistry, ContentIndependentOfArrivalOrder)
{
    // Same seed, opposite request orders: bit-identical workloads.
    ModelRegistry fwd;
    ModelRegistry rev;
    const ModelWorkload &f1 = fwd.workload("lenet5", 1);
    const ModelWorkload &f2 = fwd.workload("lenet5", 2);
    const ModelWorkload &r2 = rev.workload("lenet5", 2);
    const ModelWorkload &r1 = rev.workload("lenet5", 1);
    EXPECT_TRUE(sameWorkload(f1, r1));
    EXPECT_TRUE(sameWorkload(f2, r2));
}

TEST(ModelRegistry, SeedsChangeContent)
{
    ModelRegistry a(1);
    ModelRegistry b(2);
    EXPECT_FALSE(sameWorkload(a.workload("lenet5"),
                              b.workload("lenet5")));
}

TEST(ModelRegistry, BatchVariantsShareTheDeployedModel)
{
    ModelRegistry reg;
    const ModelWorkload &base = reg.workload("lenet5", 1);
    const ModelWorkload &b4 = reg.workload("lenet5", 4);
    ASSERT_EQ(b4.layers.size(), base.layers.size());
    for (size_t i = 0; i < b4.layers.size(); ++i) {
        EXPECT_EQ(b4.layers[i].batch, 4);
        EXPECT_TRUE(b4.layers[i].weights ==
                    base.layers[i].weights);
        EXPECT_EQ(b4.layers[i].input.size(),
                  4 * base.layers[i].input.size());
        EXPECT_EQ(b4.layers[i].act_nnz, base.layers[i].act_nnz);
        EXPECT_EQ(b4.layers[i].wgt_nnz, base.layers[i].wgt_nnz);
    }
}

/** Pointer to sample @p s of a batched layer input. */
const int8_t *
sampleData(const LayerWorkload &wl, int s)
{
    const size_t sample_elems =
        static_cast<size_t>(wl.input.size()) /
        static_cast<size_t>(wl.batch);
    return wl.input.data() + static_cast<size_t>(s) * sample_elems;
}

bool
samplesEqual(const LayerWorkload &a, int sa,
             const LayerWorkload &b, int sb)
{
    const size_t bytes = static_cast<size_t>(a.input.size()) /
                         static_cast<size_t>(a.batch);
    return std::memcmp(sampleData(a, sa), sampleData(b, sb),
                       bytes) == 0;
}

TEST(ModelRegistry, DistinctBatchesCarryDistinctSamples)
{
    ModelRegistry reg; // BatchMode::Distinct is the default
    const ModelWorkload &base = reg.workload("lenet5", 1);
    const ModelWorkload &b3 = reg.workload("lenet5", 3);
    bool any_differs = false;
    for (size_t i = 0; i < b3.layers.size(); ++i) {
        const LayerWorkload &bl = b3.layers[i];
        // Sample 0 is the batch-1 base...
        EXPECT_EQ(0, std::memcmp(sampleData(bl, 0),
                                 base.layers[i].input.data(),
                                 static_cast<size_t>(
                                     base.layers[i].input.size())));
        // ...and later samples are fresh content.
        for (int s = 1; s < 3; ++s)
            any_differs = any_differs || !samplesEqual(bl, 0, bl, s);
    }
    EXPECT_TRUE(any_differs);
}

TEST(ModelRegistry, DistinctBatchesShareTheSamplePrefix)
{
    // Sample s is seeded by (model seed, s) alone: batch-2 and
    // batch-4 entries agree on their common samples, bit for bit.
    ModelRegistry reg;
    const ModelWorkload &b2 = reg.workload("lenet5", 2);
    const ModelWorkload &b4 = reg.workload("lenet5", 4);
    for (size_t i = 0; i < b2.layers.size(); ++i) {
        for (int s = 0; s < 2; ++s) {
            EXPECT_TRUE(samplesEqual(b2.layers[i], s,
                                     b4.layers[i], s))
                << "layer " << i << " sample " << s;
        }
    }
}

TEST(ModelRegistry, DistinctBatchContentIndependentOfOrder)
{
    ModelRegistry fwd;
    ModelRegistry rev;
    const ModelWorkload &f = fwd.workload("lenet5", 3);
    rev.workload("lenet5", 1);
    rev.workload("lenet5", 4);
    const ModelWorkload &r = rev.workload("lenet5", 3);
    EXPECT_TRUE(sameWorkload(f, r));
}

TEST(ModelRegistry, ReplicateModePreservesReplication)
{
    ModelRegistry reg(0x5E47E, BatchMode::Replicate);
    EXPECT_EQ(reg.batchMode(), BatchMode::Replicate);
    const ModelWorkload &base = reg.workload("lenet5", 1);
    const ModelWorkload &b3 = reg.workload("lenet5", 3);
    for (size_t i = 0; i < b3.layers.size(); ++i) {
        for (int s = 0; s < 3; ++s) {
            EXPECT_EQ(0,
                      std::memcmp(sampleData(b3.layers[i], s),
                                  base.layers[i].input.data(),
                                  static_cast<size_t>(
                                      base.layers[i]
                                          .input.size())));
        }
    }
    // And the replicate-mode base equals the distinct-mode base:
    // the mode only changes batch > 1 derivation.
    ModelRegistry distinct;
    EXPECT_TRUE(sameWorkload(base, distinct.workload("lenet5", 1)));
}

TEST(ModelRegistry, DistinctBatchSatisfiesDeclaredBounds)
{
    // The generated samples must satisfy the layers' declared DBB
    // bounds: run a distinct-batch workload with operand validation
    // on (a violated bound is fatal inside the run).
    ModelRegistry reg;
    const ModelWorkload &mw = reg.workload("lenet5", 3);
    AcceleratorConfig cfg;
    cfg.array = ArrayConfig::s2taAw(4);
    cfg.sim_threads = 1;
    const Accelerator acc(cfg);
    NetworkRunOptions opt;
    opt.validate_operands = true;
    const NetworkRun nr = acc.runNetwork(mw.layers, opt);
    EXPECT_EQ(nr.layers.size(), mw.layers.size());
    EXPECT_GT(nr.total.cycles, 0);
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
