/** @file Registry contract: workload content is a pure function of
 *  (seed, model name, batch) — request arrival order can never
 *  change it — references are stable, and batch variants share the
 *  deployed model's weights. */

#include <gtest/gtest.h>

#include "serve/model_registry.hh"

namespace s2ta {
namespace serve {
namespace {

bool
sameWorkload(const ModelWorkload &a, const ModelWorkload &b)
{
    if (a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        const LayerWorkload &x = a.layers[i];
        const LayerWorkload &y = b.layers[i];
        if (x.batch != y.batch || !(x.input == y.input) ||
            !(x.weights == y.weights))
            return false;
    }
    return true;
}

TEST(ModelRegistry, StableReferencesAndMemoization)
{
    ModelRegistry reg;
    const ModelWorkload &a = reg.workload("lenet5");
    const ModelWorkload &b = reg.workload("lenet5");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.entries(), 1);
    const ModelWorkload &c = reg.workload("lenet5", 2);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.entries(), 2);
}

TEST(ModelRegistry, ContentIndependentOfArrivalOrder)
{
    // Same seed, opposite request orders: bit-identical workloads.
    ModelRegistry fwd;
    ModelRegistry rev;
    const ModelWorkload &f1 = fwd.workload("lenet5", 1);
    const ModelWorkload &f2 = fwd.workload("lenet5", 2);
    const ModelWorkload &r2 = rev.workload("lenet5", 2);
    const ModelWorkload &r1 = rev.workload("lenet5", 1);
    EXPECT_TRUE(sameWorkload(f1, r1));
    EXPECT_TRUE(sameWorkload(f2, r2));
}

TEST(ModelRegistry, SeedsChangeContent)
{
    ModelRegistry a(1);
    ModelRegistry b(2);
    EXPECT_FALSE(sameWorkload(a.workload("lenet5"),
                              b.workload("lenet5")));
}

TEST(ModelRegistry, BatchVariantsShareTheDeployedModel)
{
    ModelRegistry reg;
    const ModelWorkload &base = reg.workload("lenet5", 1);
    const ModelWorkload &b4 = reg.workload("lenet5", 4);
    ASSERT_EQ(b4.layers.size(), base.layers.size());
    for (size_t i = 0; i < b4.layers.size(); ++i) {
        EXPECT_EQ(b4.layers[i].batch, 4);
        EXPECT_TRUE(b4.layers[i].weights ==
                    base.layers[i].weights);
        EXPECT_EQ(b4.layers[i].input.size(),
                  4 * base.layers[i].input.size());
    }
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
