/** @file Overload + fault robustness of the stream scheduler:
 *  queue caps shed deterministically (same seed -> same shed set at
 *  every thread count), per-stream caps isolate the flooding
 *  stream, infeasible-deadline shedding is opt-in, transient
 *  compute faults retry to bitwise-identical results, exhausted
 *  retry budgets fail only the owning request with a typed error,
 *  injected stalls move virtual time but never results, and every
 *  counter reconciles exactly with the injection plan. */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <tuple>

#include "base/fault_injection.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"
#include "serve/telemetry.hh"

namespace s2ta {
namespace serve {
namespace {

NetworkRunOptions
serveRunOptions()
{
    NetworkRunOptions opt;
    opt.validate_operands = false;
    return opt;
}

bool
sameRun(const NetworkRun &a, const NetworkRun &b)
{
    if (!(a.total == b.total) || a.dense_macs != b.dense_macs ||
        a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        if (!(a.layers[i].events == b.layers[i].events) ||
            !(a.layers[i].output == b.layers[i].output))
            return false;
    }
    return true;
}

/** Everything observable about one completion except the run. */
using Observed = std::tuple<int, int, int, int, int64_t, int64_t,
                            double, double, double, int>;

Observed
observe(const Completion &c)
{
    return {static_cast<int>(c.outcome),
            static_cast<int>(c.shed_reason),
            c.attempts,
            c.fault_layer,
            c.fault_count,
            c.stall_cycles,
            c.start_s,
            c.finish_s,
            c.retry_delay_s,
            c.lane};
}

class OverloadTest : public ::testing::Test
{
  protected:
    OverloadTest()
    {
        AcceleratorConfig cfg;
        cfg.array = ArrayConfig::s2taAw(4);
        cfg.sim_threads = 1;
        acc = std::make_unique<Accelerator>(cfg);
    }

    ModelRegistry registry;
    std::unique_ptr<Accelerator> acc;
};

TEST_F(OverloadTest, GlobalQueueCapShedsDeterministically)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);

    const auto run_with = [&](int threads) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.threads = threads;
        opts.overload.global_queue_cap = 4;
        StreamScheduler sched(*acc, opts);
        // 12 simultaneous arrivals over 3 streams into a cap-4
        // queue on one lane: the first four admitted survive, the
        // rest shed the instant they arrive.
        for (int i = 0; i < 12; ++i)
            sched.submit(i % 3, mw);
        std::map<uint64_t, Observed> seen;
        for (const auto &stream : sched.drain())
            for (const auto &c : stream)
                seen.emplace(c.id, observe(c));
        return std::make_pair(seen, sched.stats());
    };

    const auto [serial, serial_stats] = run_with(1);
    ASSERT_EQ(serial.size(), 12u);
    EXPECT_EQ(serial_stats.completed, 4);
    EXPECT_EQ(serial_stats.shed_queue_full, 8);
    EXPECT_EQ(serial_stats.max_queue_depth, 4);

    // The shed set and every timing are identical at every
    // simulation thread count.
    for (const int threads : {2, 4}) {
        const auto [parallel, stats] = run_with(threads);
        EXPECT_EQ(parallel, serial) << "threads " << threads;
        EXPECT_EQ(stats.shed_queue_full,
                  serial_stats.shed_queue_full);
        EXPECT_EQ(stats.max_queue_depth,
                  serial_stats.max_queue_depth);
    }
}

TEST_F(OverloadTest, ShedCompletionsCarryNoResult)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 1;
    opts.overload.global_queue_cap = 1;
    RobustnessTelemetry telemetry;
    opts.on_complete = [&](const Completion &c) {
        telemetry.recordOutcome(c.outcome, c.shed_reason,
                                c.attempts, c.fault_count,
                                c.stall_cycles);
    };
    StreamScheduler sched(*acc, opts);
    for (int i = 0; i < 3; ++i)
        sched.submit(0, mw);
    const auto by_stream = sched.drain();
    ASSERT_EQ(by_stream[0].size(), 3u);
    EXPECT_TRUE(by_stream[0][0].ok());
    for (int i = 1; i < 3; ++i) {
        const Completion &c = by_stream[0][static_cast<size_t>(i)];
        EXPECT_TRUE(c.shed());
        EXPECT_EQ(c.shed_reason, ShedReason::QueueFull);
        EXPECT_EQ(c.lane, -1);
        EXPECT_EQ(c.service_cycles, 0);
        EXPECT_DOUBLE_EQ(c.start_s, c.finish_s);
        EXPECT_TRUE(c.run.layers.empty());
    }
    // The completion stream reconciles with the scheduler's own
    // accounting.
    EXPECT_EQ(telemetry.total(), sched.stats().requests);
    EXPECT_EQ(telemetry.completed(), sched.stats().completed);
    EXPECT_EQ(telemetry.shedTotal(), sched.stats().shedTotal());
    EXPECT_EQ(telemetry.shedRate(), 2.0 / 3.0);
}

TEST_F(OverloadTest, StreamQueueCapShedsOnlyTheFloodingStream)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 1;
    opts.overload.stream_queue_cap = 2;
    StreamScheduler sched(*acc, opts);
    // Stream 0 floods with five requests; stream 1 stays modest.
    for (int i = 0; i < 5; ++i)
        sched.submit(0, mw);
    sched.submit(1, mw);
    sched.submit(1, mw);
    const auto by_stream = sched.drain();

    int shed0 = 0;
    for (const auto &c : by_stream[0]) {
        if (c.shed()) {
            EXPECT_EQ(c.shed_reason, ShedReason::StreamQueueFull);
            ++shed0;
        }
    }
    EXPECT_EQ(shed0, 3);
    for (const auto &c : by_stream[1])
        EXPECT_TRUE(c.ok()) << "the modest stream must not pay for "
                               "its neighbor's flood";
    EXPECT_EQ(sched.stats().shed_stream_full, 3);
    EXPECT_EQ(sched.stats().shed_queue_full, 0);
}

TEST_F(OverloadTest, InfeasibleDeadlineShedIsOptIn)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    const auto run_with = [&](bool shed_infeasible) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.threads = 1;
        opts.overload.shed_infeasible = shed_infeasible;
        StreamScheduler sched(*acc, opts);
        // Deadline at the arrival instant: no positive service
        // time can ever meet it.
        for (int i = 0; i < 3; ++i)
            sched.submit(i, mw, 0.0, 0.0);
        return sched.drain();
    };

    for (const auto &stream : run_with(false)) {
        for (const auto &c : stream) {
            EXPECT_TRUE(c.ok());
            EXPECT_TRUE(c.missedDeadline());
        }
    }
    for (const auto &stream : run_with(true)) {
        for (const auto &c : stream) {
            EXPECT_TRUE(c.shed());
            EXPECT_EQ(c.shed_reason,
                      ShedReason::DeadlineInfeasible);
        }
    }
}

TEST_F(OverloadTest, TransientFaultsRetryToIdenticalResults)
{
    const ModelWorkload &w1 = registry.workload("lenet5", 1);
    const ModelWorkload &w2 = registry.workload("lenet5", 2);
    const std::array<const ModelWorkload *, 2> models = {&w1, &w2};

    // Fault-free baseline runs, keyed by request id (ids restart
    // per scheduler, so submission order aligns them).
    std::map<uint64_t, NetworkRun> baseline;
    {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.run.compute_output = true;
        opts.threads = 1;
        StreamScheduler sched(*acc, opts);
        for (int i = 0; i < 8; ++i)
            sched.submit(i % 3, *models[i % 2]);
        for (auto &stream : sched.drain())
            for (auto &c : stream)
                baseline.emplace(c.id, std::move(c.run));
    }

    const auto run_with = [&](int threads, FaultInjector &fi) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.run.compute_output = true;
        opts.run.fault = &fi;
        opts.threads = threads;
        opts.overload.max_retries = 8;
        StreamScheduler sched(*acc, opts);
        for (int i = 0; i < 8; ++i)
            sched.submit(i % 3, *models[i % 2]);
        return sched.drain();
    };

    std::map<uint64_t, Observed> serial;
    int64_t serial_faulted = 0;
    {
        FaultInjector fi(0x0F417);
        fi.setRate(FaultSite::LayerCompute, 0.1);
        const auto by_stream = run_with(1, fi);
        int64_t ok = 0, retried = 0;
        for (const auto &stream : by_stream) {
            for (const auto &c : stream) {
                serial.emplace(c.id, observe(c));
                if (c.ok()) {
                    ++ok;
                    retried += c.attempts > 1 ? 1 : 0;
                    // The recovered result is bitwise identical to
                    // the fault-free run: a fault can delay a
                    // result, never corrupt one.
                    EXPECT_TRUE(
                        sameRun(c.run, baseline.at(c.id)));
                }
            }
        }
        // The chosen seed faults at least one attempt and recovers
        // at least one request (deterministic, not luck: the fault
        // set is a pure function of the seed).
        EXPECT_GT(ok, 0);
        EXPECT_GT(retried, 0);
        serial_faulted = fi.injected(FaultSite::LayerCompute);
        EXPECT_GT(serial_faulted, 0);
    }

    // The full outcome map — timings, attempts, fault layers — is
    // identical at every thread count under the same seed.
    for (const int threads : {2, 4}) {
        FaultInjector fi(0x0F417);
        fi.setRate(FaultSite::LayerCompute, 0.1);
        std::map<uint64_t, Observed> parallel;
        for (const auto &stream : run_with(threads, fi))
            for (const auto &c : stream)
                parallel.emplace(c.id, observe(c));
        EXPECT_EQ(parallel, serial) << "threads " << threads;
    }
}

TEST_F(OverloadTest, FaultCountersReconcileExactly)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    FaultInjector fi(0xBEEF);
    fi.setRate(FaultSite::LayerCompute, 0.1);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.run.fault = &fi;
    opts.threads = 1;
    opts.overload.max_retries = 8;
    StreamScheduler sched(*acc, opts);
    for (int i = 0; i < 10; ++i)
        sched.submit(i % 2, mw);
    sched.drain();

    const ServeStats &st = sched.stats();
    EXPECT_EQ(st.layer_faults, fi.injected(FaultSite::LayerCompute));
    EXPECT_EQ(st.faulted_attempts, st.retries + st.failed)
        << "every faulted attempt either retried or terminally "
           "failed its request";
    EXPECT_GT(st.faulted_attempts, 0);
}

TEST_F(OverloadTest, ExhaustedRetriesFailOnlyTheOwningRequest)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    FaultInjector fi(0x42);
    fi.setRate(FaultSite::LayerCompute, 1.0);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.run.fault = &fi;
    opts.threads = 1;
    opts.overload.max_retries = 1;
    StreamScheduler sched(*acc, opts);
    sched.submit(0, mw);
    sched.submit(1, mw);
    const auto by_stream = sched.drain();
    for (const auto &stream : by_stream) {
        ASSERT_EQ(stream.size(), 1u);
        const Completion &c = stream[0];
        EXPECT_TRUE(c.failed());
        EXPECT_EQ(c.attempts, 2);
        EXPECT_GE(c.fault_layer, 0) << "a typed error names the "
                                       "layer that faulted";
        EXPECT_EQ(c.service_cycles, 0);
        EXPECT_TRUE(c.run.layers.empty());
    }
    EXPECT_EQ(sched.stats().failed, 2);
    EXPECT_EQ(sched.stats().retries, 2);
    EXPECT_EQ(sched.stats().completed, 0);

    // The scheduler itself survives: with the fault cleared, the
    // same instance serves the next batch normally.
    fi.setRate(FaultSite::LayerCompute, 0.0);
    sched.submit(0, mw);
    const auto healthy = sched.drain();
    ASSERT_EQ(healthy[0].size(), 1u);
    EXPECT_TRUE(healthy[0][0].ok());
    EXPECT_EQ(healthy[0][0].attempts, 1);
}

TEST_F(OverloadTest, StallsMoveTimeButNeverResults)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);

    std::map<uint64_t, NetworkRun> baseline;
    std::map<uint64_t, double> baseline_finish;
    {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.run.compute_output = true;
        opts.threads = 1;
        StreamScheduler sched(*acc, opts);
        for (int i = 0; i < 6; ++i)
            sched.submit(i % 2, mw);
        for (auto &stream : sched.drain()) {
            for (auto &c : stream) {
                baseline_finish.emplace(c.id, c.finish_s);
                baseline.emplace(c.id, std::move(c.run));
            }
        }
    }

    FaultInjector fi(0x57A11);
    fi.setRate(FaultSite::LayerStall, 0.5);
    fi.setStallCycles(1000, 50000);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.run.compute_output = true;
    opts.run.fault = &fi;
    opts.threads = 1;
    StreamScheduler sched(*acc, opts);
    for (int i = 0; i < 6; ++i)
        sched.submit(i % 2, mw);
    int64_t stalled = 0;
    for (const auto &stream : sched.drain()) {
        for (const auto &c : stream) {
            ASSERT_TRUE(c.ok());
            EXPECT_TRUE(sameRun(c.run, baseline.at(c.id)))
                << "stalls are timing-only";
            EXPECT_GE(c.finish_s, baseline_finish.at(c.id));
            if (c.stall_cycles > 0) {
                ++stalled;
                EXPECT_GT(c.retry_delay_s, 0.0);
                EXPECT_GT(c.finish_s, baseline_finish.at(c.id));
            }
        }
    }
    EXPECT_GT(stalled, 0);
    EXPECT_EQ(sched.stats().stall_events,
              fi.injected(FaultSite::LayerStall));
    EXPECT_EQ(sched.stats().failed, 0);
}

TEST_F(OverloadTest, RetryDelayIsTheExactExponentialSeries)
{
    // The documented accrual contract, checked term by term:
    // retry_delay_s == stall seconds + per failed attempt
    // (the attempt's service seconds + backoff * 2^min(a, 20)),
    // summed in attempt order. The oracle mirrors the accumulation
    // order exactly, so EXPECT_DOUBLE_EQ holds bit for bit.
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    const double backoff = 0.125;
    FaultInjector fi(0x0F417);
    fi.setRate(FaultSite::LayerCompute, 0.1);
    fi.setRate(FaultSite::LayerStall, 0.05);
    fi.setStallCycles(1000, 50000);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.run.fault = &fi;
    opts.threads = 1;
    opts.overload.max_retries = 8;
    opts.overload.retry_backoff_s = backoff;
    StreamScheduler sched(*acc, opts);
    for (int i = 0; i < 12; ++i)
        sched.submit(i % 3, mw);
    int64_t retried = 0;
    for (const auto &stream : sched.drain()) {
        for (const auto &c : stream) {
            ASSERT_TRUE(c.ok());
            const double service_s =
                opts.clock.cyclesToSeconds(c.service_cycles);
            double expected =
                opts.clock.cyclesToSeconds(c.stall_cycles);
            for (int a = 0; a < c.attempts - 1; ++a) {
                expected += service_s;
                expected += backoff *
                            static_cast<double>(
                                int64_t{1} << std::min(a, 20));
            }
            EXPECT_DOUBLE_EQ(c.retry_delay_s, expected)
                << "request " << c.id << " attempts "
                << c.attempts;
            retried += c.attempts > 1 ? 1 : 0;
        }
    }
    // The seed retries at least one request, so the exponential
    // terms above were actually exercised.
    EXPECT_GT(retried, 0);
}

TEST_F(OverloadTest, BackoffAccruesOnlyOnTheOwningLane)
{
    // Two always-faulting requests on two lanes: each exhausts its
    // retry budget on its *own* lane, so both start at t = 0 —
    // backoff never serializes unrelated lanes. A third request
    // then waits exactly one full retry series, no more: the
    // series with attempt cost 0 (nothing ever simulated
    // successfully, so the workload estimate is 0) is
    // backoff * (1 + 2 + 4) = 3.5 virtual seconds.
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    FaultInjector fi(0x42);
    fi.setRate(FaultSite::LayerCompute, 1.0);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.run.fault = &fi;
    opts.threads = 1;
    opts.clock.lanes = 2;
    opts.overload.max_retries = 2;
    opts.overload.retry_backoff_s = 0.5;
    StreamScheduler sched(*acc, opts);
    sched.submit(0, mw, /*arrival_s=*/0.0);
    sched.submit(1, mw, /*arrival_s=*/0.0);
    sched.submit(2, mw, /*arrival_s=*/0.0);
    const auto by_stream = sched.drain();
    ASSERT_EQ(by_stream.size(), 3u);
    const double series = 0.5 * (1.0 + 2.0 + 4.0);
    for (const auto &stream : by_stream) {
        ASSERT_EQ(stream.size(), 1u);
        const Completion &c = stream[0];
        EXPECT_TRUE(c.failed());
        EXPECT_EQ(c.attempts, 3);
        EXPECT_DOUBLE_EQ(c.retry_delay_s, series);
        // Zero service cycles: the lane was occupied purely by the
        // accrued series, so finish - start is exactly it.
        EXPECT_DOUBLE_EQ(c.finish_s - c.start_s, series);
    }
    const Completion &first = by_stream[0][0];
    const Completion &second = by_stream[1][0];
    const Completion &third = by_stream[2][0];
    EXPECT_EQ(first.lane, 0);
    EXPECT_EQ(second.lane, 1);
    EXPECT_DOUBLE_EQ(first.start_s, 0.0);
    EXPECT_DOUBLE_EQ(second.start_s, 0.0)
        << "lane 1 must not inherit lane 0's backoff";
    EXPECT_EQ(third.lane, 0) << "earliest-free tie breaks low";
    EXPECT_DOUBLE_EQ(third.start_s, series);
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
