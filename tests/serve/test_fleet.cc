/** @file Fleet-scheduler contract: clean fleet serving is bitwise
 *  identical to the single-accelerator scheduler, crashes lose
 *  instances but never requests (failover re-dispatches, exhausted
 *  budgets fail typed), draining stops placements without dropping
 *  work, hedges launch against a slow replica and reconcile, the
 *  derived replica schedule is a seed-pure alternating lifecycle
 *  that matches the injector's counters, and the whole drain is
 *  identical at every simulation thread count. */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "base/fault_injection.hh"
#include "serve/fleet.hh"
#include "serve/model_registry.hh"

namespace s2ta {
namespace serve {
namespace {

NetworkRunOptions
serveRunOptions()
{
    NetworkRunOptions opt;
    opt.validate_operands = false;
    opt.compute_output = true;
    return opt;
}

bool
sameRun(const NetworkRun &a, const NetworkRun &b)
{
    if (!(a.total == b.total) || a.dense_macs != b.dense_macs ||
        a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        if (!(a.layers[i].events == b.layers[i].events) ||
            !(a.layers[i].output == b.layers[i].output))
            return false;
    }
    return true;
}

/** Everything observable about one fleet completion except the
 *  run, for cross-thread-count determinism comparisons. */
using Observed =
    std::tuple<int, int, int, double, double, double, int, int,
               int, bool, bool, bool>;

Observed
observe(const FleetCompletion &c)
{
    return Observed{static_cast<int>(c.outcome),
                    static_cast<int>(c.shed_reason),
                    c.attempts,
                    c.start_s,
                    c.finish_s,
                    c.retry_delay_s,
                    c.lane,
                    c.replica,
                    c.failovers,
                    c.hedged,
                    c.hedge_won,
                    c.lost_to_crash};
}

class FleetTest : public ::testing::Test
{
  protected:
    FleetTest()
    {
        AcceleratorConfig cfg;
        cfg.array = ArrayConfig::s2taAw(4);
        cfg.sim_threads = 1;
        acc = std::make_unique<Accelerator>(cfg);
        const ModelWorkload &mw = registry.workload("lenet5", 1);
        const NetworkRun nr =
            acc->runNetwork(mw.layers, serveRunOptions());
        service_s = VirtualClockConfig{}.cyclesToSeconds(
            nr.total.cycles);
    }

    /** A homogeneous fleet of @p n replicas over the one test
     *  accelerator (caches off: cache behavior is covered by the
     *  plan-cache tests; fleet semantics are cache-independent). */
    std::vector<FleetReplica>
    fleetOf(int n) const
    {
        std::vector<FleetReplica> fleet;
        for (int r = 0; r < n; ++r)
            fleet.push_back(FleetReplica{acc.get(), nullptr});
        return fleet;
    }

    FleetScheduler::Options
    baseOptions() const
    {
        FleetScheduler::Options o;
        o.run = serveRunOptions();
        o.threads = 1;
        return o;
    }

    ModelRegistry registry;
    std::unique_ptr<Accelerator> acc;
    /** Virtual service seconds of one lenet5 batch-1 request. */
    double service_s = 0.0;
};

TEST_F(FleetTest, CleanFleetMatchesSingleAcceleratorBitwise)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);

    // Single-accelerator baseline, keyed by request id (both
    // schedulers assign ids in submission order).
    std::map<uint64_t, NetworkRun> baseline;
    {
        StreamScheduler::Options o;
        o.run = serveRunOptions();
        o.threads = 1;
        StreamScheduler sched(*acc, o);
        for (int i = 0; i < 8; ++i)
            sched.submit(i % 3, mw, 0.1 * i);
        for (auto &stream : sched.drain())
            for (auto &c : stream)
                baseline.emplace(c.id, std::move(c.run));
    }

    FleetScheduler sched(fleetOf(3), baseOptions());
    for (int i = 0; i < 8; ++i)
        sched.submit(i % 3, mw, 0.1 * i);
    int served = 0;
    for (const auto &stream : sched.drain()) {
        for (const auto &c : stream) {
            ASSERT_TRUE(c.ok());
            EXPECT_GE(c.replica, 0);
            EXPECT_LT(c.replica, 3);
            EXPECT_EQ(c.failovers, 0);
            EXPECT_EQ(c.instances, 1);
            EXPECT_TRUE(sameRun(c.run, baseline.at(c.id)));
            ++served;
        }
    }
    EXPECT_EQ(served, 8);
    const FleetStats &st = sched.stats();
    EXPECT_TRUE(st.reconciles());
    EXPECT_EQ(st.requests, 8);
    EXPECT_EQ(st.completed, 8);
    EXPECT_EQ(st.crashes, 0);
    EXPECT_EQ(st.failovers, 0);
}

TEST_F(FleetTest, CrashFailsOverWithoutLosingRequests)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    const auto run_with = [&](int threads) {
        FleetScheduler::Options o = baseOptions();
        o.threads = threads;
        // Replica 0 dies mid-backlog and comes back later; its
        // queued and running instances must fail over to replica 1
        // the instant the loss is detected (detect_delay 0).
        o.schedule = {
            {0, ReplicaEvent::Kind::Crash, 1.5 * service_s, 1.0},
            {0, ReplicaEvent::Kind::Restart, 6.0 * service_s,
             1.0},
        };
        FleetScheduler sched(fleetOf(2), o);
        for (int i = 0; i < 8; ++i)
            sched.submit(i % 4, mw, /*arrival_s=*/0.0);
        std::map<uint64_t, Observed> observed;
        std::map<uint64_t, NetworkRun> runs;
        for (auto &stream : sched.drain()) {
            for (auto &c : stream) {
                observed.emplace(c.id, observe(c));
                if (c.ok())
                    runs.emplace(c.id, std::move(c.run));
            }
        }
        return std::make_tuple(std::move(observed),
                               std::move(runs), sched.stats());
    };

    const auto [observed, runs, st] = run_with(1);
    EXPECT_EQ(st.requests, 8);
    EXPECT_EQ(st.completed, 8) << "a crash with a live peer loses "
                                  "no requests";
    EXPECT_TRUE(st.reconciles());
    EXPECT_EQ(st.crashes, 1);
    EXPECT_EQ(st.restarts, 1);
    EXPECT_GT(st.lost_instances, 0);
    EXPECT_EQ(st.failovers, st.lost_instances)
        << "every lost instance was re-dispatched exactly once";
    const double crash_s = 1.5 * service_s;
    int failed_over = 0;
    for (const auto &[id, ob] : observed) {
        failed_over += std::get<8>(ob) > 0 ? 1 : 0;
        // Work the dead replica finished before the crash stands;
        // everything after the crash instant must have completed
        // on the survivor.
        if (std::get<4>(ob) > crash_s) {
            EXPECT_EQ(std::get<7>(ob), 1)
                << "request " << id << " finished after the crash "
                << "and must be on the surviving replica";
        }
    }
    EXPECT_GT(failed_over, 0);

    // Identical outcome map, runs, and stats at any thread count.
    for (const int threads : {2, 4}) {
        const auto [ob2, runs2, st2] = run_with(threads);
        EXPECT_EQ(ob2, observed) << "threads " << threads;
        ASSERT_EQ(runs2.size(), runs.size());
        for (const auto &[id, run] : runs)
            EXPECT_TRUE(sameRun(runs2.at(id), run));
        EXPECT_EQ(st2.requests, st.requests);
        EXPECT_EQ(st2.failovers, st.failovers);
        EXPECT_EQ(st2.makespan_s, st.makespan_s);
    }
}

TEST_F(FleetTest, ExhaustedFailoverFailsTypedNotSilently)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    FleetScheduler::Options o = baseOptions();
    // The only replica dies and never returns: requests cannot be
    // re-placed, so they resolve Failed with the crash-typed
    // reason — never vanish.
    o.schedule = {
        {0, ReplicaEvent::Kind::Crash, 0.5 * service_s, 1.0},
    };
    FleetScheduler sched(fleetOf(1), o);
    sched.submit(0, mw, 0.0);
    sched.submit(1, mw, 0.0);
    const auto by_stream = sched.drain();
    int failed_crash = 0;
    for (const auto &stream : by_stream) {
        for (const auto &c : stream) {
            if (c.failed()) {
                EXPECT_TRUE(c.lost_to_crash);
                EXPECT_TRUE(c.run.layers.empty());
                ++failed_crash;
            }
        }
    }
    const FleetStats &st = sched.stats();
    EXPECT_TRUE(st.reconciles());
    EXPECT_EQ(st.requests, 2);
    EXPECT_EQ(st.completed + st.failed, 2);
    EXPECT_EQ(st.failed_crash, failed_crash);
    EXPECT_GT(failed_crash, 0);
    EXPECT_EQ(st.failed_compute, 0);
}

TEST_F(FleetTest, DrainingReplicaTakesNoNewPlacements)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    FleetScheduler::Options o = baseOptions();
    // Replica 0 drains before any arrival and undrains long after
    // the trace: every placement must land on replica 1, and
    // nothing is lost or failed.
    o.schedule = {
        {0, ReplicaEvent::Kind::DrainStart, 0.0, 1.0},
        {0, ReplicaEvent::Kind::DrainEnd, 1000.0, 1.0},
    };
    FleetScheduler sched(fleetOf(2), o);
    for (int i = 0; i < 6; ++i)
        sched.submit(i % 2, mw, 0.05 * i);
    for (const auto &stream : sched.drain())
        for (const auto &c : stream) {
            ASSERT_TRUE(c.ok());
            EXPECT_EQ(c.replica, 1);
        }
    const FleetStats &st = sched.stats();
    EXPECT_TRUE(st.reconciles());
    EXPECT_EQ(st.completed, 6);
    EXPECT_EQ(st.drains, 1);
    const FleetTelemetry &ft = sched.telemetry();
    EXPECT_EQ(ft.replica(0).routed, 0);
    EXPECT_EQ(ft.replica(1).routed, 6);
}

TEST_F(FleetTest, HedgesLaunchAgainstASlowReplicaAndReconcile)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    FleetScheduler::Options o = baseOptions();
    // Replica 0 browns out 10x slow for the whole trace; hedges
    // arm shortly after placement, so requests stuck on it launch
    // a duplicate on replica 1 and the duplicate wins.
    o.schedule = {
        {0, ReplicaEvent::Kind::BrownoutStart, 0.0, 10.0},
        {0, ReplicaEvent::Kind::BrownoutEnd, 1000.0, 1.0},
    };
    o.hedge_delay_s = 0.5 * service_s;
    FleetScheduler sched(fleetOf(2), o);
    for (int i = 0; i < 6; ++i)
        sched.submit(i % 2, mw, 0.0);
    int hedged = 0, hedge_won = 0;
    for (const auto &stream : sched.drain()) {
        for (const auto &c : stream) {
            ASSERT_TRUE(c.ok());
            hedged += c.hedged ? 1 : 0;
            hedge_won += c.hedge_won ? 1 : 0;
            if (c.hedged) {
                EXPECT_EQ(c.instances, 2);
            }
        }
    }
    const FleetStats &st = sched.stats();
    EXPECT_TRUE(st.reconciles());
    EXPECT_EQ(st.completed, 6);
    EXPECT_EQ(st.brownouts, 1);
    const FleetTelemetry &ft = sched.telemetry();
    EXPECT_TRUE(ft.hedgesReconcile());
    EXPECT_GT(ft.hedgesLaunched(), 0);
    EXPECT_EQ(hedged, static_cast<int>(ft.hedgesLaunched()));
    EXPECT_GT(hedge_won, 0) << "a 10x brownout must lose to its "
                               "hedge at least once";
    EXPECT_EQ(ft.hedgeWins(), hedge_won);
}

TEST_F(FleetTest, DerivedScheduleIsSeedPureAndReconciles)
{
    const auto derive = [](uint64_t seed) {
        FaultInjector fi(seed);
        fi.setRate(FaultSite::ReplicaCrash, 0.2);
        fi.setRate(FaultSite::ReplicaRestart, 0.5);
        fi.setRate(FaultSite::ReplicaStall, 0.15);
        const std::vector<ReplicaEvent> schedule =
            deriveReplicaSchedule(fi, 3, /*horizon_s=*/40.0,
                                  /*slot_s=*/1.0,
                                  /*brownout_slowdown=*/2.5);
        return std::make_tuple(
            schedule, fi.injected(FaultSite::ReplicaCrash),
            fi.injected(FaultSite::ReplicaRestart),
            fi.injected(FaultSite::ReplicaStall));
    };
    const auto [schedule, crashes, restarts, brownouts] =
        derive(0xF1EE7);

    // Per-replica lifecycle invariants: crash only while up,
    // restart only while down, brownouts are paired one-slot
    // windows at the requested slowdown, times never regress.
    std::vector<bool> up(3, true);
    std::vector<double> last(3, 0.0);
    int64_t n_crash = 0, n_restart = 0, n_brownout = 0;
    for (const ReplicaEvent &ev : schedule) {
        ASSERT_GE(ev.replica, 0);
        ASSERT_LT(ev.replica, 3);
        EXPECT_GE(ev.at_s, last[ev.replica])
            << "per-replica event times must not regress";
        last[ev.replica] = ev.at_s;
        switch (ev.kind) {
          case ReplicaEvent::Kind::Crash:
            EXPECT_TRUE(up[ev.replica]);
            up[ev.replica] = false;
            ++n_crash;
            break;
          case ReplicaEvent::Kind::Restart:
            EXPECT_FALSE(up[ev.replica]);
            up[ev.replica] = true;
            ++n_restart;
            break;
          case ReplicaEvent::Kind::BrownoutStart:
            EXPECT_TRUE(up[ev.replica]);
            EXPECT_DOUBLE_EQ(ev.slowdown, 2.5);
            ++n_brownout;
            break;
          case ReplicaEvent::Kind::BrownoutEnd:
            break;
          default:
            FAIL() << "derived schedules carry only fault-driven "
                      "lifecycle kinds";
        }
    }
    EXPECT_EQ(n_crash, crashes);
    EXPECT_EQ(n_restart, restarts);
    EXPECT_EQ(n_brownout, brownouts);
    EXPECT_GT(n_crash, 0) << "rate 0.2 over 120 slots";
    EXPECT_GT(n_brownout, 0);

    // Seed-pure: same seed regenerates the identical timeline (the
    // property the serial-determinism bench gate rests on).
    const auto [again, c2, r2, b2] = derive(0xF1EE7);
    ASSERT_EQ(again.size(), schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(again[i].replica, schedule[i].replica);
        EXPECT_EQ(static_cast<int>(again[i].kind),
                  static_cast<int>(schedule[i].kind));
        EXPECT_DOUBLE_EQ(again[i].at_s, schedule[i].at_s);
    }
    (void)c2;
    (void)r2;
    (void)b2;
}

TEST_F(FleetTest, ReplicaEventKindNamesAreStable)
{
    EXPECT_STREQ(replicaEventKindName(ReplicaEvent::Kind::Crash),
                 "crash");
    EXPECT_STREQ(replicaEventKindName(ReplicaEvent::Kind::Restart),
                 "restart");
    EXPECT_STREQ(
        replicaEventKindName(ReplicaEvent::Kind::BrownoutStart),
        "brownout-start");
    EXPECT_STREQ(
        replicaEventKindName(ReplicaEvent::Kind::BrownoutEnd),
        "brownout-end");
    EXPECT_STREQ(
        replicaEventKindName(ReplicaEvent::Kind::DrainStart),
        "drain-start");
    EXPECT_STREQ(replicaEventKindName(ReplicaEvent::Kind::DrainEnd),
                 "drain-end");
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
