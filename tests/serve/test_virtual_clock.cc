/** @file Virtual-clock contract: Poisson traces are seeded and
 *  ascending, the discrete-event loop is work-conserving and
 *  non-preemptive with deterministic tie-breaks, and the built-in
 *  policies dispatch exactly per their ordering contracts
 *  (admission order / earliest deadline / shortest estimated job,
 *  all tie-broken on admission index). */

#include <gtest/gtest.h>

#include <algorithm>

#include "serve/virtual_clock.hh"

namespace s2ta {
namespace serve {
namespace {

/** Requests with integer-second service times (exact doubles at a
 *  1 GHz clock: k seconds = k * 1e9 cycles). */
TimedRequest
req(double arrival_s, double service_seconds,
    double deadline_s = kNoDeadline, int64_t est_cycles = -1)
{
    TimedRequest r;
    r.arrival_s = arrival_s;
    r.deadline_s = deadline_s;
    r.service_cycles =
        static_cast<int64_t>(service_seconds * 1e9);
    r.est_cycles = est_cycles >= 0 ? est_cycles : r.service_cycles;
    return r;
}

VirtualClockConfig
oneLane()
{
    return VirtualClockConfig{1, 1.0};
}

/** Dispatch order implied by assignments: ascending start time,
 *  ties by admission index (starts are distinct on one lane). */
std::vector<size_t>
dispatchOrder(const std::vector<LaneAssignment> &la)
{
    std::vector<size_t> order(la.size());
    for (size_t i = 0; i < la.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return la[a].start_s < la[b].start_s;
                     });
    return order;
}

TEST(PoissonArrivals, SeededAscendingAndRateScaled)
{
    Rng a(42), b(42), c(43);
    const auto t1 = poissonArrivals(200, 10.0, a);
    const auto t2 = poissonArrivals(200, 10.0, b);
    const auto t3 = poissonArrivals(200, 10.0, c);
    ASSERT_EQ(t1.size(), 200u);
    EXPECT_EQ(t1, t2); // pure function of the seed
    EXPECT_NE(t1, t3);
    EXPECT_TRUE(std::is_sorted(t1.begin(), t1.end()));
    EXPECT_GT(t1.front(), 0.0);
    // Mean inter-arrival ~ 1/rate (loose statistical sanity).
    const double mean = t1.back() / 200.0;
    EXPECT_GT(mean, 0.5 / 10.0);
    EXPECT_LT(mean, 2.0 / 10.0);
}

TEST(VirtualClock, SingleLaneFifoBackToBack)
{
    // Everything arrives at 0: one lane runs admission order back
    // to back under round-robin.
    const std::vector<TimedRequest> reqs = {req(0, 2), req(0, 3),
                                            req(0, 1)};
    const auto la = scheduleOnLanes(
        oneLane(), reqs, policyFor(PolicyKind::RoundRobin));
    EXPECT_DOUBLE_EQ(la[0].start_s, 0.0);
    EXPECT_DOUBLE_EQ(la[0].finish_s, 2.0);
    EXPECT_DOUBLE_EQ(la[1].start_s, 2.0);
    EXPECT_DOUBLE_EQ(la[1].finish_s, 5.0);
    EXPECT_DOUBLE_EQ(la[2].start_s, 5.0);
    EXPECT_DOUBLE_EQ(la[2].finish_s, 6.0);
    for (const LaneAssignment &a : la)
        EXPECT_EQ(a.lane, 0);
}

TEST(VirtualClock, WorkConservingIdleUntilNextArrival)
{
    // A gap in arrivals: the lane idles exactly until the next
    // arrival, never longer.
    const std::vector<TimedRequest> reqs = {req(0, 1), req(5, 1)};
    const auto la = scheduleOnLanes(
        oneLane(), reqs, policyFor(PolicyKind::RoundRobin));
    EXPECT_DOUBLE_EQ(la[0].finish_s, 1.0);
    EXPECT_DOUBLE_EQ(la[1].start_s, 5.0);
    EXPECT_DOUBLE_EQ(la[1].finish_s, 6.0);
}

TEST(VirtualClock, TwoLanesRunConcurrently)
{
    const std::vector<TimedRequest> reqs = {req(0, 4), req(0, 1),
                                            req(0, 1)};
    const auto la = scheduleOnLanes(
        VirtualClockConfig{2, 1.0}, reqs,
        policyFor(PolicyKind::RoundRobin));
    // Request 0 occupies lane 0; requests 1 and 2 share lane 1.
    EXPECT_DOUBLE_EQ(la[0].start_s, 0.0);
    EXPECT_EQ(la[0].lane, 0);
    EXPECT_DOUBLE_EQ(la[1].start_s, 0.0);
    EXPECT_EQ(la[1].lane, 1);
    EXPECT_DOUBLE_EQ(la[2].start_s, 1.0);
    EXPECT_EQ(la[2].lane, 1);
}

TEST(VirtualClock, ClockScalesServiceTime)
{
    const std::vector<TimedRequest> reqs = {req(0, 2)};
    const auto la = scheduleOnLanes(
        VirtualClockConfig{1, 2.0}, reqs,
        policyFor(PolicyKind::RoundRobin));
    // 2e9 cycles at 2 GHz = 1 virtual second.
    EXPECT_DOUBLE_EQ(la[0].finish_s, 1.0);
}

TEST(VirtualClock, EdfPicksEarliestDeadlineAmongArrived)
{
    // Request 0 occupies the lane; 1..3 arrive while it runs. At
    // t=4 EDF dispatches by deadline (2 before 1), and a
    // no-deadline request always goes last.
    const std::vector<TimedRequest> reqs = {
        req(0, 4, 100.0),
        req(1, 1, 50.0),
        req(2, 1, 10.0),
        req(3, 1), // kNoDeadline
    };
    const auto la = scheduleOnLanes(
        oneLane(), reqs,
        policyFor(PolicyKind::EarliestDeadlineFirst));
    const auto order = dispatchOrder(la);
    EXPECT_EQ(order, (std::vector<size_t>{0, 2, 1, 3}));
}

TEST(VirtualClock, EdfCannotPreempt)
{
    // An urgent request arriving mid-service waits: dispatch is
    // non-preemptive.
    const std::vector<TimedRequest> reqs = {req(0, 10, 100.0),
                                            req(1, 1, 2.0)};
    const auto la = scheduleOnLanes(
        oneLane(), reqs,
        policyFor(PolicyKind::EarliestDeadlineFirst));
    EXPECT_DOUBLE_EQ(la[1].start_s, 10.0);
    EXPECT_GT(la[1].finish_s, reqs[1].deadline_s); // missed
}

TEST(VirtualClock, SjfPicksShortestEstimate)
{
    // Estimates (not exact service) drive SJF: request 2 carries a
    // small estimate despite a long true service time.
    const std::vector<TimedRequest> reqs = {
        req(0, 4),
        req(1, 2, kNoDeadline, 3'000'000'000),
        req(2, 9, kNoDeadline, 1'000'000'000),
        req(3, 1, kNoDeadline, 2'000'000'000),
    };
    const auto la = scheduleOnLanes(
        oneLane(), reqs, policyFor(PolicyKind::ShortestJobFirst));
    const auto order = dispatchOrder(la);
    EXPECT_EQ(order, (std::vector<size_t>{0, 2, 3, 1}));
}

TEST(VirtualClock, TiesBreakOnAdmissionIndex)
{
    // Identical deadlines and estimates: every policy degrades to
    // admission order.
    const std::vector<TimedRequest> reqs = {req(0, 5, 30.0),
                                            req(1, 1, 20.0),
                                            req(2, 1, 20.0)};
    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::EarliestDeadlineFirst,
          PolicyKind::ShortestJobFirst}) {
        const auto la =
            scheduleOnLanes(oneLane(), reqs, policyFor(kind));
        const auto order = dispatchOrder(la);
        EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}))
            << policyName(kind);
    }
}

TEST(VirtualClock, PolicyNeverChangesTotalBusyTime)
{
    // Work conservation: on one lane the makespan from the first
    // dispatch is identical under every policy.
    Rng rng(7);
    std::vector<TimedRequest> reqs;
    const auto arrivals = poissonArrivals(40, 4.0, rng);
    for (size_t i = 0; i < arrivals.size(); ++i) {
        reqs.push_back(req(arrivals[i],
                           0.1 * (1 + rng.uniformInt(1, 9)),
                           arrivals[i] + 2.0));
    }
    double makespan = -1.0;
    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::EarliestDeadlineFirst,
          PolicyKind::ShortestJobFirst}) {
        const auto la =
            scheduleOnLanes(oneLane(), reqs, policyFor(kind));
        double finish = 0.0;
        for (const LaneAssignment &a : la)
            finish = std::max(finish, a.finish_s);
        if (makespan < 0.0)
            makespan = finish;
        else
            EXPECT_DOUBLE_EQ(finish, makespan)
                << policyName(kind);
    }
}

TEST(PolicyNames, RoundTripAndRejection)
{
    EXPECT_EQ(policyByName("rr"), PolicyKind::RoundRobin);
    EXPECT_EQ(policyByName("edf"),
              PolicyKind::EarliestDeadlineFirst);
    EXPECT_EQ(policyByName("sjf"), PolicyKind::ShortestJobFirst);
    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::EarliestDeadlineFirst,
          PolicyKind::ShortestJobFirst}) {
        EXPECT_EQ(policyByName(policyName(kind)), kind);
    }
    EXPECT_DEATH(policyByName("fifo"), "accepted values");
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
