/** @file Scheduler contract: per-stream completions arrive strictly
 *  in submission order, results are bitwise identical at every lane
 *  count and with the cross-stream PlanCache on or off, the
 *  on_complete callback fires in deterministic admission order, and
 *  cache sharing across streams actually hits. QoS contract: the
 *  virtual-clock timing is deterministic at every thread count and
 *  for every policy/seed permutation, policies never change
 *  simulation results, deadline misses are accounted exactly, and
 *  the default options preserve the pre-QoS round-robin behavior
 *  bit for bit. */

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "arch/plan_cache.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"

namespace s2ta {
namespace serve {
namespace {

/** Events-only runs, generator structure trusted (test speed). */
NetworkRunOptions
serveRunOptions()
{
    NetworkRunOptions opt;
    opt.validate_operands = false;
    return opt;
}

bool
sameRun(const NetworkRun &a, const NetworkRun &b)
{
    if (!(a.total == b.total) || a.dense_macs != b.dense_macs ||
        a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        if (!(a.layers[i].events == b.layers[i].events) ||
            !(a.layers[i].output == b.layers[i].output))
            return false;
    }
    return true;
}

class StreamSchedulerTest : public ::testing::Test
{
  protected:
    StreamSchedulerTest()
    {
        AcceleratorConfig cfg;
        cfg.array = ArrayConfig::s2taAw(4);
        cfg.sim_threads = 1;
        acc = std::make_unique<Accelerator>(cfg);
    }

    ModelRegistry registry;
    std::unique_ptr<Accelerator> acc;
};

TEST_F(StreamSchedulerTest, PerStreamCompletionIsInSubmissionOrder)
{
    const ModelWorkload &small = registry.workload("lenet5", 1);
    const ModelWorkload &big = registry.workload("lenet5", 2);

    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 0; // hardware-sized fan-out
    StreamScheduler sched(*acc, opts);

    // Interleave submissions across two streams; stream 7 gets a
    // slow (batched) request first so an out-of-order scheduler
    // would complete its second request earlier.
    const uint64_t a0 = sched.submit(7, big);
    const uint64_t b0 = sched.submit(2, small);
    const uint64_t a1 = sched.submit(7, small);
    const uint64_t b1 = sched.submit(2, big);
    EXPECT_EQ(sched.pending(), 4);

    const auto by_stream = sched.drain();
    EXPECT_EQ(sched.pending(), 0);
    ASSERT_EQ(by_stream.size(), 2u);
    // Groups come back in ascending stream id: stream 2 first.
    ASSERT_EQ(by_stream[0].size(), 2u);
    ASSERT_EQ(by_stream[1].size(), 2u);
    EXPECT_EQ(by_stream[0][0].id, b0);
    EXPECT_EQ(by_stream[0][1].id, b1);
    EXPECT_EQ(by_stream[1][0].id, a0);
    EXPECT_EQ(by_stream[1][1].id, a1);
    EXPECT_EQ(by_stream[1][0].batch, 2);
    EXPECT_EQ(by_stream[1][1].batch, 1);
    EXPECT_EQ(by_stream[0][0].model, "LeNet-5");
}

TEST_F(StreamSchedulerTest, ResultsIdenticalAtEveryLaneCount)
{
    const ModelWorkload &w1 = registry.workload("lenet5", 1);
    const ModelWorkload &w2 = registry.workload("lenet5", 3);

    const auto run_with = [&](int threads) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.run.compute_output = true; // strongest check
        opts.threads = threads;
        StreamScheduler sched(*acc, opts);
        for (int r = 0; r < 3; ++r) {
            sched.submit(0, w1);
            sched.submit(1, w2);
        }
        return sched.drain();
    };

    const auto serial = run_with(1);
    for (int threads : {0, 2, 4}) {
        const auto parallel = run_with(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t s = 0; s < serial.size(); ++s) {
            ASSERT_EQ(parallel[s].size(), serial[s].size());
            for (size_t i = 0; i < serial[s].size(); ++i) {
                EXPECT_TRUE(sameRun(parallel[s][i].run,
                                    serial[s][i].run))
                    << "threads " << threads << " stream " << s
                    << " request " << i;
            }
        }
    }
}

TEST_F(StreamSchedulerTest, SharedPlanCacheHitsAcrossStreams)
{
    const ModelWorkload &mw = registry.workload("lenet5", 2);

    PlanCache cache;
    StreamScheduler::Options cached;
    cached.run = serveRunOptions();
    cached.run.plan_cache = &cache;
    cached.threads = 1;
    StreamScheduler sched(*acc, cached);
    // Four streams all serving the same model: every stream after
    // the first re-hits the encodings the first one built.
    for (int stream = 0; stream < 4; ++stream)
        sched.submit(stream, mw);
    const auto cached_runs = sched.drain();
    EXPECT_GT(cache.stats().hits, 0);

    // And the shared cache is invisible in the results.
    StreamScheduler::Options plain;
    plain.run = serveRunOptions();
    plain.threads = 1;
    StreamScheduler ref(*acc, plain);
    ref.submit(0, mw);
    const auto ref_runs = ref.drain();
    for (const auto &stream : cached_runs) {
        for (const auto &c : stream)
            EXPECT_TRUE(sameRun(c.run, ref_runs[0][0].run));
    }
}

TEST_F(StreamSchedulerTest, CallbackFiresInAdmissionOrderAndStats)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    const int64_t gemms = StreamScheduler::gemmCount(mw);
    // LeNet-5 is ungrouped: one GEMM per layer.
    EXPECT_EQ(gemms, static_cast<int64_t>(mw.layers.size()));

    std::vector<uint64_t> completed;
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 0;
    opts.on_complete = [&](const Completion &c) {
        completed.push_back(c.id);
    };
    StreamScheduler sched(*acc, opts);
    const uint64_t s0r0 = sched.submit(0, mw);
    const uint64_t s0r1 = sched.submit(0, mw);
    const uint64_t s1r0 = sched.submit(1, mw);
    sched.drain();

    // Round-robin admission: stream 0, stream 1, stream 0.
    ASSERT_EQ(completed.size(), 3u);
    EXPECT_EQ(completed[0], s0r0);
    EXPECT_EQ(completed[1], s1r0);
    EXPECT_EQ(completed[2], s0r1);

    const ServeStats &st = sched.stats();
    EXPECT_EQ(st.requests, 3);
    EXPECT_EQ(st.gemms, 3 * gemms);
    EXPECT_EQ(st.layers,
              3 * static_cast<int64_t>(mw.layers.size()));
    EXPECT_GT(st.dense_macs, 0);
}

// ---- QoS: virtual-clock timing through the scheduler ------------

TEST_F(StreamSchedulerTest, DefaultTimingIsClosedLoopFifo)
{
    // Default submissions (arrival 0, no deadline, 1 lane): the
    // virtual clock runs requests back to back in admission order,
    // each service time being exactly the request's cycle total at
    // the 1 GHz default clock.
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 1;
    StreamScheduler sched(*acc, opts);
    sched.submit(0, mw);
    sched.submit(0, mw);
    const auto by_stream = sched.drain();
    ASSERT_EQ(by_stream.size(), 1u);
    ASSERT_EQ(by_stream[0].size(), 2u);
    const Completion &c0 = by_stream[0][0];
    const Completion &c1 = by_stream[0][1];
    EXPECT_EQ(c0.service_cycles, c0.run.total.cycles);
    EXPECT_DOUBLE_EQ(c0.arrival_s, 0.0);
    EXPECT_DOUBLE_EQ(c0.start_s, 0.0);
    EXPECT_DOUBLE_EQ(
        c0.finish_s,
        static_cast<double>(c0.service_cycles) / 1e9);
    EXPECT_DOUBLE_EQ(c1.start_s, c0.finish_s);
    EXPECT_EQ(c0.deadline_s, kNoDeadline);
    EXPECT_FALSE(c0.missedDeadline());
    EXPECT_EQ(c0.lane, 0);
}

TEST_F(StreamSchedulerTest, TimingDeterministicAcrossThreadCounts)
{
    // Virtual timings (and runs) must be bitwise identical at
    // every simulation lane count, for every policy and several
    // trace seeds.
    const ModelWorkload &w1 = registry.workload("lenet5", 1);
    const ModelWorkload &w2 = registry.workload("lenet5", 2);
    const std::array<const ModelWorkload *, 2> models = {&w1, &w2};

    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::EarliestDeadlineFirst,
          PolicyKind::ShortestJobFirst}) {
        for (const uint64_t seed : {1ull, 99ull}) {
            const auto run_with = [&](int threads) {
                Rng rng(seed);
                const auto arrivals =
                    poissonArrivals(6, 2000.0, rng);
                StreamScheduler::Options opts;
                opts.run = serveRunOptions();
                opts.threads = threads;
                opts.clock = VirtualClockConfig{2, 1.0};
                opts.policy = &policyFor(kind);
                StreamScheduler sched(*acc, opts);
                for (size_t i = 0; i < arrivals.size(); ++i) {
                    sched.submit(static_cast<int>(i) % 3,
                                 *models[i % models.size()],
                                 arrivals[i],
                                 arrivals[i] + 0.001);
                }
                std::map<uint64_t, std::array<double, 4>> timings;
                for (const auto &stream : sched.drain()) {
                    for (const auto &c : stream) {
                        timings.emplace(
                            c.id,
                            std::array<double, 4>{
                                c.arrival_s, c.start_s, c.finish_s,
                                c.deadline_s});
                    }
                }
                return timings;
            };
            const auto serial = run_with(1);
            for (const int threads : {0, 2, 4}) {
                EXPECT_EQ(run_with(threads), serial)
                    << policyName(kind) << " seed " << seed
                    << " threads " << threads;
            }
        }
    }
}

TEST_F(StreamSchedulerTest, PoliciesNeverChangeSimulationResults)
{
    const ModelWorkload &w1 = registry.workload("lenet5", 1);
    const ModelWorkload &w2 = registry.workload("lenet5", 2);

    const auto run_with = [&](const AdmissionPolicy *policy) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.run.compute_output = true; // strongest check
        opts.threads = 1;
        opts.clock = VirtualClockConfig{2, 1.0};
        opts.policy = policy;
        StreamScheduler sched(*acc, opts);
        // Arrivals all at 0 with distinct deadlines/sizes so the
        // policies genuinely dispatch in different orders.
        sched.submit(0, w2, 0.0, 0.010);
        sched.submit(1, w1, 0.0, 0.001);
        sched.submit(2, w2, 0.0, 0.005);
        sched.submit(3, w1, 0.0, 0.002);
        return sched.drain();
    };

    const auto base = run_with(nullptr);
    for (const PolicyKind kind :
         {PolicyKind::RoundRobin, PolicyKind::EarliestDeadlineFirst,
          PolicyKind::ShortestJobFirst}) {
        const auto got = run_with(&policyFor(kind));
        ASSERT_EQ(got.size(), base.size()) << policyName(kind);
        for (size_t s = 0; s < base.size(); ++s) {
            ASSERT_EQ(got[s].size(), base[s].size());
            for (size_t i = 0; i < base[s].size(); ++i) {
                // Identity, grouping, callback order, and the
                // simulation itself are policy-independent...
                EXPECT_EQ(got[s][i].id, base[s][i].id);
                EXPECT_TRUE(
                    sameRun(got[s][i].run, base[s][i].run))
                    << policyName(kind) << " stream " << s;
            }
        }
    }
}

TEST_F(StreamSchedulerTest, NullPolicyMatchesRoundRobinBitForBit)
{
    // The default (no policy) is the round-robin policy: identical
    // timings, not just identical results.
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    const auto timings = [&](const AdmissionPolicy *policy) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.threads = 1;
        opts.policy = policy;
        StreamScheduler sched(*acc, opts);
        for (int i = 0; i < 4; ++i)
            sched.submit(i % 2, mw, 0.0001 * i);
        std::vector<std::array<double, 2>> out;
        for (const auto &stream : sched.drain())
            for (const auto &c : stream)
                out.push_back({c.start_s, c.finish_s});
        return out;
    };
    EXPECT_EQ(timings(nullptr),
              timings(&policyFor(PolicyKind::RoundRobin)));
}

TEST_F(StreamSchedulerTest, DeadlineMissAccountingIsExact)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    // Pin the service time first so deadlines can bracket it.
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 1;
    StreamScheduler probe(*acc, opts);
    probe.submit(0, mw);
    const double service_s =
        probe.drain()[0][0].finish_s;
    ASSERT_GT(service_s, 0.0);

    LatencyTelemetry telemetry;
    opts.on_complete = [&](const Completion &c) {
        telemetry.record(c.sample());
    };
    StreamScheduler sched(*acc, opts);
    // One lane, both arrive at 0: the second queues behind the
    // first. Generous deadline on the first (met), one service
    // time on the second (missed: it finishes at 2x service).
    sched.submit(0, mw, 0.0, 10.0 * service_s);
    sched.submit(1, mw, 0.0, 1.0 * service_s);
    const auto by_stream = sched.drain();
    EXPECT_FALSE(by_stream[0][0].missedDeadline());
    EXPECT_TRUE(by_stream[1][0].missedDeadline());
    EXPECT_EQ(telemetry.deadlineRequests(), 2);
    EXPECT_EQ(telemetry.deadlineMisses(), 1);
    EXPECT_EQ(telemetry.byStream().at(1).deadline_misses, 1);
}

TEST_F(StreamSchedulerTest, EstimatedCyclesPinnedPerWorkload)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 1;
    StreamScheduler sched(*acc, opts);
    EXPECT_EQ(sched.estimatedCycles(mw), 0); // nothing drained yet
    sched.submit(0, mw);
    const auto runs = sched.drain();
    const int64_t exact = runs[0][0].run.total.cycles;
    EXPECT_EQ(sched.estimatedCycles(mw), exact);
    // Pinned: a second drain of the same workload keeps the
    // first-seen estimate (which equals the exact cycles — the
    // simulation is deterministic).
    sched.submit(0, mw);
    sched.drain();
    EXPECT_EQ(sched.estimatedCycles(mw), exact);
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
