/** @file Scheduler contract: per-stream completions arrive strictly
 *  in submission order, results are bitwise identical at every lane
 *  count and with the cross-stream PlanCache on or off, the
 *  on_complete callback fires in deterministic admission order, and
 *  cache sharing across streams actually hits. */

#include <gtest/gtest.h>

#include "arch/plan_cache.hh"
#include "serve/model_registry.hh"
#include "serve/stream_scheduler.hh"

namespace s2ta {
namespace serve {
namespace {

/** Events-only runs, generator structure trusted (test speed). */
NetworkRunOptions
serveRunOptions()
{
    NetworkRunOptions opt;
    opt.validate_operands = false;
    return opt;
}

bool
sameRun(const NetworkRun &a, const NetworkRun &b)
{
    if (!(a.total == b.total) || a.dense_macs != b.dense_macs ||
        a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        if (!(a.layers[i].events == b.layers[i].events) ||
            !(a.layers[i].output == b.layers[i].output))
            return false;
    }
    return true;
}

class StreamSchedulerTest : public ::testing::Test
{
  protected:
    StreamSchedulerTest()
    {
        AcceleratorConfig cfg;
        cfg.array = ArrayConfig::s2taAw(4);
        cfg.sim_threads = 1;
        acc = std::make_unique<Accelerator>(cfg);
    }

    ModelRegistry registry;
    std::unique_ptr<Accelerator> acc;
};

TEST_F(StreamSchedulerTest, PerStreamCompletionIsInSubmissionOrder)
{
    const ModelWorkload &small = registry.workload("lenet5", 1);
    const ModelWorkload &big = registry.workload("lenet5", 2);

    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 0; // hardware-sized fan-out
    StreamScheduler sched(*acc, opts);

    // Interleave submissions across two streams; stream 7 gets a
    // slow (batched) request first so an out-of-order scheduler
    // would complete its second request earlier.
    const uint64_t a0 = sched.submit(7, big);
    const uint64_t b0 = sched.submit(2, small);
    const uint64_t a1 = sched.submit(7, small);
    const uint64_t b1 = sched.submit(2, big);
    EXPECT_EQ(sched.pending(), 4);

    const auto by_stream = sched.drain();
    EXPECT_EQ(sched.pending(), 0);
    ASSERT_EQ(by_stream.size(), 2u);
    // Groups come back in ascending stream id: stream 2 first.
    ASSERT_EQ(by_stream[0].size(), 2u);
    ASSERT_EQ(by_stream[1].size(), 2u);
    EXPECT_EQ(by_stream[0][0].id, b0);
    EXPECT_EQ(by_stream[0][1].id, b1);
    EXPECT_EQ(by_stream[1][0].id, a0);
    EXPECT_EQ(by_stream[1][1].id, a1);
    EXPECT_EQ(by_stream[1][0].batch, 2);
    EXPECT_EQ(by_stream[1][1].batch, 1);
    EXPECT_EQ(by_stream[0][0].model, "LeNet-5");
}

TEST_F(StreamSchedulerTest, ResultsIdenticalAtEveryLaneCount)
{
    const ModelWorkload &w1 = registry.workload("lenet5", 1);
    const ModelWorkload &w2 = registry.workload("lenet5", 3);

    const auto run_with = [&](int threads) {
        StreamScheduler::Options opts;
        opts.run = serveRunOptions();
        opts.run.compute_output = true; // strongest check
        opts.threads = threads;
        StreamScheduler sched(*acc, opts);
        for (int r = 0; r < 3; ++r) {
            sched.submit(0, w1);
            sched.submit(1, w2);
        }
        return sched.drain();
    };

    const auto serial = run_with(1);
    for (int threads : {0, 2, 4}) {
        const auto parallel = run_with(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t s = 0; s < serial.size(); ++s) {
            ASSERT_EQ(parallel[s].size(), serial[s].size());
            for (size_t i = 0; i < serial[s].size(); ++i) {
                EXPECT_TRUE(sameRun(parallel[s][i].run,
                                    serial[s][i].run))
                    << "threads " << threads << " stream " << s
                    << " request " << i;
            }
        }
    }
}

TEST_F(StreamSchedulerTest, SharedPlanCacheHitsAcrossStreams)
{
    const ModelWorkload &mw = registry.workload("lenet5", 2);

    PlanCache cache;
    StreamScheduler::Options cached;
    cached.run = serveRunOptions();
    cached.run.plan_cache = &cache;
    cached.threads = 1;
    StreamScheduler sched(*acc, cached);
    // Four streams all serving the same model: every stream after
    // the first re-hits the encodings the first one built.
    for (int stream = 0; stream < 4; ++stream)
        sched.submit(stream, mw);
    const auto cached_runs = sched.drain();
    EXPECT_GT(cache.stats().hits, 0);

    // And the shared cache is invisible in the results.
    StreamScheduler::Options plain;
    plain.run = serveRunOptions();
    plain.threads = 1;
    StreamScheduler ref(*acc, plain);
    ref.submit(0, mw);
    const auto ref_runs = ref.drain();
    for (const auto &stream : cached_runs) {
        for (const auto &c : stream)
            EXPECT_TRUE(sameRun(c.run, ref_runs[0][0].run));
    }
}

TEST_F(StreamSchedulerTest, CallbackFiresInAdmissionOrderAndStats)
{
    const ModelWorkload &mw = registry.workload("lenet5", 1);
    const int64_t gemms = StreamScheduler::gemmCount(mw);
    // LeNet-5 is ungrouped: one GEMM per layer.
    EXPECT_EQ(gemms, static_cast<int64_t>(mw.layers.size()));

    std::vector<uint64_t> completed;
    StreamScheduler::Options opts;
    opts.run = serveRunOptions();
    opts.threads = 0;
    opts.on_complete = [&](const Completion &c) {
        completed.push_back(c.id);
    };
    StreamScheduler sched(*acc, opts);
    const uint64_t s0r0 = sched.submit(0, mw);
    const uint64_t s0r1 = sched.submit(0, mw);
    const uint64_t s1r0 = sched.submit(1, mw);
    sched.drain();

    // Round-robin admission: stream 0, stream 1, stream 0.
    ASSERT_EQ(completed.size(), 3u);
    EXPECT_EQ(completed[0], s0r0);
    EXPECT_EQ(completed[1], s1r0);
    EXPECT_EQ(completed[2], s0r1);

    const ServeStats &st = sched.stats();
    EXPECT_EQ(st.requests, 3);
    EXPECT_EQ(st.gemms, 3 * gemms);
    EXPECT_EQ(st.layers,
              3 * static_cast<int64_t>(mw.layers.size()));
    EXPECT_GT(st.dense_macs, 0);
}

} // anonymous namespace
} // namespace serve
} // namespace s2ta
