/** @file Wall-clock replay contract: every request is served
 *  exactly once with measured instants that respect causality
 *  (enqueue/start at or after the scheduled arrival, finish after
 *  start), results are bitwise identical to direct runNetwork calls
 *  (real concurrency reorders timing, never computation), the
 *  configured admission policy drives dispatch order, and degenerate
 *  traces (empty, single lane, simultaneous arrivals) hold up. */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "arch/plan_cache.hh"
#include "base/logging.hh"
#include "serve/model_registry.hh"
#include "serve/wallclock_replay.hh"

namespace s2ta {
namespace serve {
namespace {

bool
sameRun(const NetworkRun &a, const NetworkRun &b)
{
    if (!(a.total == b.total) || a.dense_macs != b.dense_macs ||
        a.layers.size() != b.layers.size())
        return false;
    for (size_t i = 0; i < a.layers.size(); ++i) {
        if (!(a.layers[i].events == b.layers[i].events) ||
            !(a.layers[i].output == b.layers[i].output))
            return false;
    }
    return true;
}

class WallclockReplayTest : public ::testing::Test
{
  protected:
    WallclockReplayTest()
    {
        AcceleratorConfig cfg;
        cfg.array = ArrayConfig::s2taAw(4);
        cfg.sim_threads = 1;
        acc = std::make_unique<Accelerator>(cfg);
        run_opt.validate_operands = false;
        run_opt.plan_cache = &cache;
    }

    /** A short mixed trace with sub-ms arrival spacing (test speed:
     *  the replay blocks for the trace's real-time horizon). */
    std::vector<WallclockRequest>
    smallTrace(int n)
    {
        std::vector<WallclockRequest> trace(
            static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            const ModelWorkload &mw =
                registry.workload("lenet5", 1 + i % 2);
            trace[static_cast<size_t>(i)].model = &mw;
            trace[static_cast<size_t>(i)].stream = i % 3;
            trace[static_cast<size_t>(i)].arrival_s = 0.0005 * i;
            trace[static_cast<size_t>(i)].est_cycles =
                1000 * (1 + i % 2);
        }
        return trace;
    }

    ModelRegistry registry;
    PlanCache cache;
    std::unique_ptr<Accelerator> acc;
    NetworkRunOptions run_opt;
};

TEST_F(WallclockReplayTest, EmptyTraceReturnsNothing)
{
    WallclockReplayOptions opts;
    opts.run = run_opt;
    EXPECT_TRUE(replayWallclock(*acc, {}, opts).empty());
}

TEST_F(WallclockReplayTest, MeasuredInstantsRespectCausality)
{
    const std::vector<WallclockRequest> trace = smallTrace(8);
    WallclockReplayOptions opts;
    opts.run = run_opt;
    opts.lanes = 2;
    const std::vector<WallclockCompletion> done =
        replayWallclock(*acc, trace, opts);

    ASSERT_EQ(done.size(), trace.size());
    for (size_t i = 0; i < done.size(); ++i) {
        const WallclockCompletion &c = done[i];
        EXPECT_EQ(c.index, i);
        EXPECT_EQ(c.stream, trace[i].stream);
        EXPECT_GE(c.lane, 0);
        EXPECT_LT(c.lane, opts.lanes);
        // Scheduled arrival is copied through; measured instants
        // are causal: published at/after arrival, started at/after
        // publication, finished after start.
        EXPECT_DOUBLE_EQ(c.arrival_s, trace[i].arrival_s);
        EXPECT_GE(c.enqueue_s, c.arrival_s);
        EXPECT_GE(c.start_s, c.enqueue_s);
        EXPECT_GE(c.finish_s, c.start_s);
        // And the telemetry view agrees.
        EXPECT_GE(c.sample().latency(), 0.0);
        EXPECT_GE(c.sample().queueing(), 0.0);
    }
}

TEST_F(WallclockReplayTest, ResultsBitwiseMatchDirectRuns)
{
    const std::vector<WallclockRequest> trace = smallTrace(6);
    WallclockReplayOptions opts;
    opts.run = run_opt;
    opts.lanes = 3;
    const std::vector<WallclockCompletion> done =
        replayWallclock(*acc, trace, opts);

    ASSERT_EQ(done.size(), trace.size());
    for (size_t i = 0; i < done.size(); ++i) {
        const NetworkRun direct =
            acc->runNetwork(trace[i].model->layers, run_opt);
        EXPECT_TRUE(sameRun(done[i].run, direct))
            << "request " << i;
    }
}

TEST_F(WallclockReplayTest, SingleLaneServesEverything)
{
    const std::vector<WallclockRequest> trace = smallTrace(5);
    WallclockReplayOptions opts;
    opts.run = run_opt;
    opts.lanes = 1;
    const std::vector<WallclockCompletion> done =
        replayWallclock(*acc, trace, opts);
    ASSERT_EQ(done.size(), trace.size());
    for (const WallclockCompletion &c : done)
        EXPECT_EQ(c.lane, 0);
}

TEST_F(WallclockReplayTest, SimultaneousArrivalsAllServeOnce)
{
    std::vector<WallclockRequest> trace = smallTrace(8);
    for (WallclockRequest &r : trace)
        r.arrival_s = 0.0; // everything arrives at the epoch
    WallclockReplayOptions opts;
    opts.run = run_opt;
    opts.lanes = 4;
    const std::vector<WallclockCompletion> done =
        replayWallclock(*acc, trace, opts);
    ASSERT_EQ(done.size(), trace.size());
    std::set<size_t> seen;
    for (const WallclockCompletion &c : done) {
        EXPECT_TRUE(seen.insert(c.index).second);
        EXPECT_GE(c.finish_s, c.start_s);
    }
    EXPECT_EQ(seen.size(), trace.size());
}

/** With one lane held busy by a long head-of-line request while the
 *  rest of the trace arrives, an SJF policy must dispatch the
 *  queued remainder shortest-first (by est_cycles) — observable
 *  through measured start order. */
TEST_F(WallclockReplayTest, PolicyControlsDispatchOrder)
{
    // Request 0 is a long simulation occupying the single lane;
    // requests 1..4 arrive 1 ms in (well inside 0's service) with
    // *descending* estimates, so SJF must start them in reverse
    // admission order once the lane frees.
    std::vector<WallclockRequest> trace(5);
    trace[0].model = &registry.workload("mobilenetv1", 2);
    trace[0].arrival_s = 0.0;
    trace[0].est_cycles = 1;
    for (size_t i = 1; i < trace.size(); ++i) {
        // One workload for all queued requests: est_cycles alone
        // drives the SJF comparison.
        trace[i].model = &registry.workload("lenet5", 1);
        trace[i].arrival_s = 0.001;
        trace[i].est_cycles = static_cast<int64_t>(10000 - 100 * i);
    }
    WallclockReplayOptions opts;
    opts.run = run_opt;
    opts.lanes = 1;
    opts.policy = &policyFor(PolicyKind::ShortestJobFirst);
    const std::vector<WallclockCompletion> done =
        replayWallclock(*acc, trace, opts);
    ASSERT_EQ(done.size(), trace.size());

    // Only judge the order when the timing premise held — every
    // queued request was published before the head-of-line request
    // finished. (On a machine where the mobilenetv1 simulation
    // somehow beats the 1 ms arrivals the premise fails and order
    // is legitimately arbitrary; the virtual-clock tests pin policy
    // order deterministically.)
    bool premise = true;
    for (size_t i = 1; i < trace.size(); ++i)
        premise = premise && done[i].enqueue_s < done[0].finish_s;
    if (!premise) {
        s2ta_warn("head-of-line request finished before the queue "
                  "filled; skipping the order assertion");
        return;
    }
    for (size_t i = 2; i < trace.size(); ++i) {
        EXPECT_GE(done[i - 1].start_s, done[i].start_s)
            << "SJF started " << i - 1 << " (est "
            << trace[i - 1].est_cycles << ") before " << i
            << " (est " << trace[i].est_cycles << ")";
    }
}

} // namespace
} // namespace serve
} // namespace s2ta
