#include <algorithm>

#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "core/dbb.hh"

namespace s2ta {

S2taAwModel::S2taAwModel(ArrayConfig cfg_) : ArrayModel(cfg_)
{
    s2ta_assert(cfg.kind == ArchKind::S2taAw, "S2taAwModel kind");
}

void
S2taAwModel::simulate(const GemmPlan &plan, const RunOptions &opt,
                      GemmRun &out) const
{
    const GemmProblem &p = plan.problem();
    const bool scalar = usesScalarEngine(plan, opt);
    const OperandProfile prof = profileFor(plan, opt);
    EventCounts &ev = out.events;

    const int bz = cfg.bz;
    const int nblocks = p.k / bz;
    const int nnz_a = cfg.act_nnz;
    const int wstored = cfg.weight_dbb.nnz;
    const int wblock_bytes = cfg.weight_dbb.storedBytesPerBlock();
    // Dense activation bypass stores raw blocks without a mask.
    const int ablock_bytes = nnz_a >= bz ? bz : nnz_a + 1;
    // The DP1M4 mux spans tpe.b weight lanes; denser weight specs
    // need extra sequential passes per block (dense fallback).
    const int passes = (wstored + cfg.tpe.b - 1) / cfg.tpe.b;

    const TileGrid grid = tileGrid(p.m, p.n);

    // Time-unrolled serialization: one activation element per cycle,
    // so a block costs exactly NNZ_a cycles (Sec. 5.2). This is the
    // mechanism behind speedup = BZ / NNZ_a.
    const int64_t tile_cycles =
        static_cast<int64_t>(nblocks) * nnz_a * passes + cfg.tpe.m +
        cfg.tpe.n + bz;
    ev.cycles = grid.tiles() * tile_cycles;

    // Each DP1M4 evaluates one MAC slot per cycle. A slot executes
    // when the serialized activation is non-zero and the 4:1 mux
    // finds a matching non-zero weight at the same expanded
    // position; otherwise the MAC is clock gated.
    const int64_t slots = static_cast<int64_t>(p.m) * p.n * nblocks *
                          nnz_a * passes;
    ev.macs_executed = prof.matched_products;
    ev.macs_gated = slots - prof.matched_products;
    ev.mux_selects = slots; // one 4:1 steer per slot

    // One accumulator per DP1M4; it updates only on executed MACs.
    ev.accum_updates = prof.matched_products;
    ev.accum_gated = slots - prof.matched_products;

    // Operand registers at TPE granularity. Activation blocks are
    // serialized (values plus the positional mask) and hop across
    // TPE columns; weight blocks are latched once per block and
    // reused for all NNZ_a serialized cycles. Large grids shard the
    // per-tile loop across the pool (bitwise identical to serial).
    ev.operand_reg_bytes += sumTileGrid(
        grid, opt.shard_pool, [&](int trow, int tcol) {
            const int rows = std::min(grid.eff_rows,
                                      p.m - trow * grid.eff_rows);
            const int cols = std::min(grid.eff_cols,
                                      p.n - tcol * grid.eff_cols);
            const int tpe_rows =
                (rows + cfg.tpe.a - 1) / cfg.tpe.a;
            const int tpe_cols =
                (cols + cfg.tpe.c - 1) / cfg.tpe.c;
            return static_cast<int64_t>(nblocks) * ablock_bytes *
                       rows * tpe_cols +
                   static_cast<int64_t>(nblocks) * wblock_bytes *
                       cols * tpe_rows;
        });

    // SRAM: both operands move compressed (the dominant energy win
    // of S2TA-AW over S2TA-W, Fig. 10).
    ev.act_sram_read_bytes = static_cast<int64_t>(grid.col_tiles) *
                             p.m * nblocks * ablock_bytes;
    ev.wgt_sram_bytes = static_cast<int64_t>(grid.row_tiles) * p.n *
                        nblocks * wblock_bytes;
    ev.act_sram_write_bytes = static_cast<int64_t>(p.m) * p.n;
    ev.actfn_elements = static_cast<int64_t>(p.m) * p.n;

    if (!opt.compute_output)
        return;

    out.output.assign(static_cast<size_t>(p.m) * p.n, 0);
    if (!scalar) {
        // DBB-native fast path: serializing the stored activations
        // and muxing against the weight mask computes exactly the
        // products at intersecting mask positions, so the datapath
        // result is the mask-intersection dot product of the cached
        // encodings.
        dbbGemm(plan, out.output.data(), opt.shard_pool);
        return;
    }

    // Scalar reference: per-element functional model through the
    // time-unrolled DP1M4 path: each serialized activation element
    // carries its expanded position; the 4:1 mux selects the weight
    // slot whose mask bit matches (Fig. 6e). Encode permissively —
    // density enforcement belongs to checkOperands, which
    // RunOptions may have skipped.
    const DbbSpec all{bz, bz};
    const DbbMatrix am = DbbMatrix::fromActivations(p, all);
    const DbbMatrix wm = DbbMatrix::fromWeights(p, all);
    for (int i = 0; i < p.m; ++i) {
        for (int j = 0; j < p.n; ++j) {
            int32_t acc = 0;
            for (int b = 0; b < nblocks; ++b) {
                const DbbBlock &ab = am.block(i, b);
                const DbbBlock &wb = wm.block(j, b);
                const int stored = ab.storedCount();
                for (int s = 0; s < stored; ++s) {
                    const int pos = maskNthSetBit(ab.mask, s);
                    if (!maskTest(wb.mask, pos))
                        continue; // mux finds no match: gated
                    acc += static_cast<int32_t>(
                               ab.values[static_cast<size_t>(s)])
                           * wb.values[static_cast<size_t>(
                                 maskRank(wb.mask, pos))];
                }
            }
            out.output[static_cast<size_t>(i) * p.n + j] = acc;
        }
    }
}

} // namespace s2ta
