/**
 * @file
 * Accelerator array configurations (paper Sec. 6.1 and 7).
 *
 * A design point is denoted AxBxC_MxN: an M x N grid of tensor PEs,
 * each consuming A activation blocks and C weight blocks, with B the
 * per-block operand arity (BZ for dot-product TPEs, weight NNZ for
 * time-unrolled TPEs). The scalar PE of a classic systolic array is
 * the degenerate 1x1x1 TPE.
 *
 * Evaluated design points (Sec. 7, all 2048 INT8 MACs):
 *  - SA / SA-ZVCG / SA-SMT : 1x1x1_32x64
 *  - S2TA-W  : 4x8x4_4x8 (DP4M8 dot-product datapath)
 *  - S2TA-AW : 8x4x4_8x8 (DP1M4 time-unrolled datapath)
 */

#ifndef S2TA_ARCH_ARRAY_CONFIG_HH
#define S2TA_ARCH_ARRAY_CONFIG_HH

#include <string>

#include "core/dbb.hh"

namespace s2ta {

/** Which microarchitecture family a configuration instantiates. */
enum class ArchKind
{
    /** Dense systolic array, no sparsity support. */
    Sa,
    /** Systolic array with zero-value clock gating. */
    SaZvcg,
    /** SMT-SA: unstructured sparsity via operand staging FIFOs. */
    SaSmt,
    /** S2TA with weight DBB only (DP4M8 dot-product TPEs). */
    S2taW,
    /** S2TA with joint A/W DBB, time-unrolled (DP1M4 TPEs). */
    S2taAw,
};

/** Human-readable architecture name as used in the paper. */
const char *archKindName(ArchKind kind);

/** Hardware MAC lanes of the DP4M8 dot-product datapath. */
inline constexpr int kDp4Lanes = 4;

/** Tensor-PE geometry AxBxC within an MxN array. */
struct TpeGeometry
{
    int a = 1; ///< activation blocks per TPE
    int b = 1; ///< per-block operand arity
    int c = 1; ///< weight blocks per TPE
    int m = 32; ///< TPE array rows
    int n = 64; ///< TPE array columns

    /** Render as "AxBxC_MxN". */
    std::string toString() const;

    bool operator==(const TpeGeometry &) const = default;
};

/** SMT-SA specific parameters (threads and FIFO depth). */
struct SmtConfig
{
    int threads = 2;
    int queue_depth = 2;

    bool operator==(const SmtConfig &) const = default;
};

/** A complete array design point. */
struct ArrayConfig
{
    ArchKind kind = ArchKind::Sa;
    TpeGeometry tpe;

    /** Weight DBB bound (S2TA kinds). nnz==bz disables W-DBB. */
    DbbSpec weight_dbb{4, 8};
    /** A-DBB serialization depth for S2taAw; bz means dense. */
    int act_nnz = 8;
    /** DBB block size shared by both operands. */
    int bz = 8;

    SmtConfig smt;

    /** Clock frequency in GHz (1.0 in 16nm, 0.5 in 65nm). */
    double freq_ghz = 1.0;

    // --- Derived geometry -------------------------------------

    /** Physical INT8 multipliers in the array. */
    int64_t totalMacs() const;

    /** Output rows covered by one tile (M*A). */
    int tileRows() const { return tpe.m * tpe.a; }

    /** Output columns covered by one tile (N*C). */
    int tileCols() const { return tpe.n * tpe.c; }

    /** Dense peak throughput in TOPS (2 ops per MAC per cycle). */
    double
    densePeakTops() const
    {
        return 2.0 * static_cast<double>(totalMacs()) * freq_ghz
               * 1e-3;
    }

    /** Name like "S2TA-AW(8x4x4_8x8)". */
    std::string name() const;

    /** Validate internal consistency; fatal on error. */
    void check() const;

    /** Structural identity (used by sweep-level model caches). */
    bool operator==(const ArrayConfig &) const = default;

    // --- Canonical paper design points -------------------------

    static ArrayConfig sa();
    static ArrayConfig saZvcg();
    static ArrayConfig saSmt(int queue_depth = 2);
    static ArrayConfig s2taW();
    /** @param act_nnz per-layer A-DBB density (1..5, or 8=dense). */
    static ArrayConfig s2taAw(int act_nnz = 8);
};

} // namespace s2ta

#endif // S2TA_ARCH_ARRAY_CONFIG_HH
