#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "core/dbb.hh"

namespace s2ta {

SaModel::SaModel(ArrayConfig cfg_) : ArrayModel(cfg_)
{
    s2ta_assert(cfg.kind == ArchKind::Sa ||
                cfg.kind == ArchKind::SaZvcg,
                "SaModel needs an SA kind");
}

void
SaModel::simulate(const GemmPlan &plan, const RunOptions &opt,
                  GemmRun &out) const
{
    const GemmProblem &p = plan.problem();
    const OperandProfile prof = profileFor(plan, opt);
    EventCounts &ev = out.events;
    const bool zvcg = cfg.kind == ArchKind::SaZvcg;

    const TileGrid grid = tileGrid(p.m, p.n);

    // Output-stationary: K streams through each tile, plus wavefront
    // fill and accumulator drain.
    const int64_t tile_cycles =
        p.k + cfg.tileRows() + cfg.tileCols();
    ev.cycles = grid.tiles() * tile_cycles;

    // MAC slots: every mapped output sees all K operand pairs.
    const int64_t slots = static_cast<int64_t>(p.m) * p.n * p.k;
    ev.macs_executed = prof.matched_products;
    if (zvcg)
        ev.macs_gated = slots - prof.matched_products;
    else
        ev.macs_zero = slots - prof.matched_products;

    // Operand pipeline registers: each PE latches one activation and
    // one weight byte per streaming cycle. ZVCG gates the latch for
    // zero bytes; the dense SA pays for every move.
    const int64_t moves = 2 * slots;
    const int64_t active_moves =
        static_cast<int64_t>(p.n) * prof.act_nnz +
        static_cast<int64_t>(p.m) * prof.wgt_nnz;
    if (zvcg) {
        ev.operand_reg_bytes = active_moves;
        ev.operand_reg_gated_bytes = moves - active_moves;
    } else {
        ev.operand_reg_bytes = moves;
    }

    // Output-stationary accumulator: the dense SA clocks it every
    // cycle; ZVCG suppresses the update when the product is zero.
    if (zvcg) {
        ev.accum_updates = prof.matched_products;
        ev.accum_gated = slots - prof.matched_products;
    } else {
        ev.accum_updates = slots;
    }

    // SRAM: the activation row stripe is re-read for every column
    // tile and the weight column stripe for every row tile.
    ev.act_sram_read_bytes =
        static_cast<int64_t>(grid.col_tiles) * p.m * p.k;
    ev.wgt_sram_bytes =
        static_cast<int64_t>(grid.row_tiles) * p.k * p.n;
    ev.act_sram_write_bytes = static_cast<int64_t>(p.m) * p.n;
    ev.actfn_elements = static_cast<int64_t>(p.m) * p.n;

    if (!opt.compute_output)
        return;
    // Dense MAC order sums the same INT32 products; terms with a
    // zero operand are exactly zero, so the fast engine's kernels
    // are bit-identical to gemmReference here.
    referenceOutput(plan, opt, out);
}

} // namespace s2ta
