/**
 * @file
 * AVX2 tier of the mask-intersection row dot product: the SSSE3
 * scheme (gemm_kernels_v2.cc) widened to 256-bit registers.
 *
 * vpshufb shuffles within each 128-bit lane independently, which is
 * exactly the structure the DBB expansion needs: each lane expands
 * two compressed blocks with the same 256-entry permutation table
 * as the SSSE3 kernel, so one shuffle now expands FOUR blocks per
 * operand — twice the batch — and one vpmaddwd tree contracts all
 * 32 dense INT8 lanes. Skipped positions contribute exact zeros and
 * INT32 wraparound addition is order-independent, so the result is
 * bit-identical to dbbDotRow and to the SSSE3 tier (property-tested
 * in tests/arch/test_gemm_kernels.cc).
 *
 * This translation unit is the only one compiled with AVX2 codegen
 * (see S2TA_ENABLE_X86_64_V2 in CMakeLists.txt — one build option
 * gates every x86 tier; each tier probes its own cpuid bit).
 * Callers reach it through dbbActiveKernel()'s runtime dispatch,
 * which prefers this tier, then SSSE3, then scalar. Like the SSSE3
 * TU, the SIMD branch must not call inline functions from shared
 * headers: a comdat copy compiled here could be kept by the linker
 * for the whole program and break the runtime fallback on older
 * CPUs. The odd tail therefore pads with all-zero partner blocks
 * (mask 0 expands to all-zero lanes, contributing exact zeros).
 */

#include "arch/gemm_kernels.hh"
#include "core/dbb.hh"

#if defined(S2TA_X86_64_V2) && defined(__AVX2__)
#include <immintrin.h>
#define S2TA_HAVE_SIMD_AVX2 1
#endif

namespace s2ta {

#ifdef S2TA_HAVE_SIMD_AVX2

namespace {

/**
 * Per-mask pshufb control expanding compressed storage to dense
 * lanes: byte i holds rank(mask, i) when bit i is set, 0x80 (lane
 * zeroed by pshufb) otherwise. Same table as the SSSE3 tier; each
 * TU owns its copy so neither depends on symbols compiled under the
 * other's ISA.
 */
struct ExpandTable
{
    alignas(16) uint8_t ctrl[256][8];
};

constexpr ExpandTable kExpand = [] {
    ExpandTable t{};
    for (unsigned m = 0; m < 256; ++m) {
        unsigned rank = 0;
        for (int i = 0; i < 8; ++i) {
            if ((m >> i) & 1u)
                t.ctrl[m][i] = static_cast<uint8_t>(rank++);
            else
                t.ctrl[m][i] = 0x80;
        }
    }
    return t;
}();

/**
 * Expand two consecutive blocks into one 128-bit half (block b0 in
 * lanes 0-7, b1 in 8-15), exactly the SSSE3 expandPair layout. The
 * upper control bytes are offset by 8 to index b1's values in the
 * combined register; 0x80 zero-lanes stay >= 0x80 under the OR, so
 * the shuffle still clears them.
 */
inline __m128i
expandPair128(const DbbBlock &b0, const DbbBlock &b1)
{
    const __m128i vals = _mm_unpacklo_epi64(
        _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(&b0.values)),
        _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(&b1.values)));
    const __m128i ctrl = _mm_or_si128(
        _mm_unpacklo_epi64(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                kExpand.ctrl[b0.mask])),
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                kExpand.ctrl[b1.mask]))),
        _mm_set_epi64x(0x0808080808080808ll, 0));
    return _mm_shuffle_epi8(vals, ctrl);
}

/**
 * Expand four consecutive blocks of one operand into 32 dense INT8
 * lanes: blocks 0-1 fill the low 128-bit lane, blocks 2-3 the high
 * one. Both operands of a dot product expand with the identical
 * permutation, so lane k of A always meets lane k of W.
 */
inline __m256i
expandQuad(const DbbBlock *b)
{
    return _mm256_set_m128i(expandPair128(b[2], b[3]),
                            expandPair128(b[0], b[1]));
}

/** Exact INT8x32 dot product folded into an INT32x8 accumulator. */
inline __m256i
maddAccumulate(__m256i acc, __m256i av, __m256i wv)
{
    const __m256i zero = _mm256_setzero_si256();
    // Sign-extend each INT8 half-lane into INT16 (bytes enter the
    // high half of each word; the arithmetic shift restores sign).
    // unpacklo/hi operate per 128-bit lane on both operands the
    // same way, so products still pair a[i] with w[i].
    const __m256i alo =
        _mm256_srai_epi16(_mm256_unpacklo_epi8(zero, av), 8);
    const __m256i ahi =
        _mm256_srai_epi16(_mm256_unpackhi_epi8(zero, av), 8);
    const __m256i wlo =
        _mm256_srai_epi16(_mm256_unpacklo_epi8(zero, wv), 8);
    const __m256i whi =
        _mm256_srai_epi16(_mm256_unpackhi_epi8(zero, wv), 8);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(alo, wlo));
    return _mm256_add_epi32(acc, _mm256_madd_epi16(ahi, whi));
}

} // anonymous namespace

int32_t
dbbDotRowAvx2(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    __m256i acc = _mm256_setzero_si256();
    int b = 0;
    for (; b + 4 <= nblocks; b += 4) {
        acc = maddAccumulate(acc, expandQuad(a + b),
                             expandQuad(w + b));
    }
    if (b < nblocks) {
        // 1-3 trailing blocks: pad with all-zero partners instead
        // of touching shared inline helpers (see the file comment).
        DbbBlock tail_a[4] = {};
        DbbBlock tail_w[4] = {};
        for (int t = 0; b + t < nblocks; ++t) {
            tail_a[t] = a[b + t];
            tail_w[t] = w[b + t];
        }
        acc = maddAccumulate(acc, expandQuad(tail_a),
                             expandQuad(tail_w));
    }
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
           lanes[5] + lanes[6] + lanes[7];
}

bool
dbbAvx2KernelSupportedImpl()
{
    return __builtin_cpu_supports("avx2");
}

#else // !S2TA_HAVE_SIMD_AVX2

// Built without the x86-64-v2 option (or on a target without AVX2
// codegen): keep the symbols so the dispatcher links, but report
// the tier unavailable — dbbActiveKernel() then falls through to
// the SSSE3 tier or the scalar path and this alias is never called
// in anger.
int32_t
dbbDotRowAvx2(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    return dbbDotRow(a, w, nblocks);
}

bool
dbbAvx2KernelSupportedImpl()
{
    return false;
}

#endif // S2TA_HAVE_SIMD_AVX2

} // namespace s2ta
