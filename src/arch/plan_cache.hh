/**
 * @file
 * Cross-run plan cache for architecture sweeps and serving.
 *
 * The compressed DBB form of a workload is config-independent: the
 * same encoded GemmPlan serves every array geometry, SMT depth, and
 * sparsity bound under comparison, so a sweep over many design
 * points only needs to im2col-lower and encode each workload once.
 * The same property makes the format weight-static under serving
 * traffic: one cache shared across every stream of a
 * serve::StreamScheduler lets repeated (model, batch) requests —
 * and models sharing identical layers — skip lowering and encoding
 * entirely (RunOptions::plan_cache wires it in).
 * The cache keys entries by operand *content* (a 64-bit FNV-1a
 * fingerprint of both operand byte arrays plus the GEMM dims, the
 * DBB block size, and whether the dense weight mirror was
 * materialized): mutated operands re-fingerprint on every call and
 * therefore can never hit a stale entry, so results are bitwise
 * identical with caching on or off. Hits are decided by the
 * fingerprint; acquire() cross-checks the dims on a hit, leaving
 * only the ~2^-64 same-dims content collision undetected.
 *
 * Entries own their GemmProblem (plans borrow the problem they were
 * built from), so cached plans stay valid after the caller's problem
 * dies — acquire() returns shared_ptrs, so an entry evicted while a
 * lane still simulates from it stays alive until the last user
 * drops it.
 *
 * Thread-safety: lookups, inserts, stats(), and clear() are
 * mutex-guarded; plan construction runs outside the lock, and when
 * two threads race to build the same key the first insert wins
 * (plan contents are deterministic, so either copy is correct).
 * Hit/miss counters can differ across thread interleavings; the
 * returned plans never do.
 *
 * Eviction: strict LRU over caller-chosen entry and resident-byte
 * budgets (least-recently-acquired entries evicted until both caps
 * hold), and therefore deterministic for any single-threaded access
 * sequence; concurrent lanes may reorder recency updates, which can
 * change *which* entry is evicted but never the results computed
 * from whatever is resident. DAP memo entries live outside the LRU.
 */

#ifndef S2TA_ARCH_PLAN_CACHE_HH
#define S2TA_ARCH_PLAN_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arch/gemm_plan.hh"
#include "core/dap.hh"

namespace s2ta {

/** One cached workload: the owned operands plus their encoded plan. */
struct CachedPlan
{
    CachedPlan(GemmProblem p, int bz, bool dense_mirror)
        : problem(std::move(p)),
          plan(GemmPlan::build(problem, bz, dense_mirror))
    {}

    const GemmProblem problem;
    const GemmPlan plan;
};

class PlanCache
{
  public:
    /** Cache effectiveness counters. */
    struct Stats
    {
        /** Plan-entry lookups that found a resident encoding. */
        int64_t hits = 0;
        /** Plan-entry lookups that had to lower + encode. */
        int64_t misses = 0;
        int64_t evictions = 0;
        /** Plan entries currently resident. */
        int64_t entries = 0;
        /** Operand + mirror bytes held by resident entries. */
        int64_t resident_bytes = 0;
        /** DAP-memo lookups, counted separately so plan hit rates
         *  in bench artifacts stay meaningful. */
        int64_t dap_hits = 0;
        int64_t dap_misses = 0;
    };

    /**
     * @param max_entries LRU entry capacity; 0 means unbounded
     *        (sweep drivers usually hold every workload of one
     *        model).
     * @param max_bytes LRU resident-byte budget (operands +
     *        encodings + mirrors); 0 means unbounded. Entries are
     *        evicted least-recently-used until both caps hold.
     */
    explicit PlanCache(size_t max_entries = 0,
                       int64_t max_bytes = 0)
        : max_entries(max_entries), max_bytes(max_bytes)
    {}

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /**
     * Plan for @p p's operands, encoded at block size @p bz. The
     * operands are fingerprinted on every call, so a stale entry can
     * never be returned for mutated data; on a miss the problem is
     * copied into the new entry.
     */
    std::shared_ptr<const CachedPlan> acquire(const GemmProblem &p,
                                              int bz,
                                              bool dense_mirror);

    /**
     * Keyed variant for callers that can identify the workload
     * without materializing it (e.g. a conv layer before im2col
     * lowering): @p key must already distinguish operand content
     * (hash the source tensors with hashBytes). @p lower runs only
     * on a miss and produces the problem to encode.
     */
    std::shared_ptr<const CachedPlan>
    acquireKeyed(uint64_t key, int bz, bool dense_mirror,
                 const std::function<GemmProblem()> &lower);

    /**
     * Batched layer variant: one entry per convolution group, all
     * lowered in a single pass on a whole-layer miss. @p lower_all
     * must return exactly @p groups problems (group-major). Group g
     * is keyed as combine(key, g); a layer whose groups are all
     * resident costs only @p groups lookups. On a *partial* miss
     * (some groups evicted mid-sweep), only the absent groups are
     * re-lowered via @p lower_one.
     */
    std::vector<std::shared_ptr<const CachedPlan>>
    acquireLayer(uint64_t key, int groups, int bz, bool dense_mirror,
                 const std::function<std::vector<GemmProblem>()>
                     &lower_all,
                 const std::function<GemmProblem(int)> &lower_one);

    /**
     * Memoized DAP comparator statistics. The DAP array prunes a
     * deployed model's activations once as they stream into the
     * SRAM; its comparator counts are a pure function of (tensor
     * content, NNZ bound) — independent of the array geometry — so
     * a sweep over array configs computes them once per layer.
     * @p key must identify tensor content and bound (hashBytes +
     * combine); @p compute runs only on a miss. DAP entries live
     * outside the LRU (they are a few counters, not plans).
     */
    DapStats dapStats(uint64_t key,
                      const std::function<DapStats()> &compute);

    Stats stats() const;

    /** Drop every entry (counters keep accumulating). */
    void clear();

    /** FNV-1a 64-bit content hash (8-byte strides + byte tail). */
    static uint64_t hashBytes(const void *data, size_t len,
                              uint64_t seed = 0xcbf29ce484222325ull);

    /** Order-dependent mix of a value into a running key. */
    static uint64_t
    combine(uint64_t key, uint64_t value)
    {
        // splitmix64 finalizer over the xor keeps single-bit key
        // differences from colliding after further combines.
        uint64_t x = key ^ (value + 0x9e3779b97f4a7c15ull);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

    /** Content + geometry fingerprint of a GEMM problem. */
    static uint64_t fingerprint(const GemmProblem &p);

  private:
    /** Bytes an entry pins in memory (operands + dense mirror). */
    static int64_t entryBytes(const CachedPlan &e);

    std::shared_ptr<const CachedPlan> lookupLocked(uint64_t key);
    void insertLocked(uint64_t key,
                      std::shared_ptr<const CachedPlan> entry);

    struct Slot
    {
        std::shared_ptr<const CachedPlan> entry;
        /** Position in lru (most recent at front). */
        std::list<uint64_t>::iterator lru_it;
    };

    const size_t max_entries;
    const int64_t max_bytes;
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Slot> slots;
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, DapStats> dap_memo;
    Stats counters;
};

} // namespace s2ta

#endif // S2TA_ARCH_PLAN_CACHE_HH
