/**
 * @file
 * Cross-run plan cache for architecture sweeps and serving.
 *
 * The compressed DBB form of a workload is config-independent: the
 * same encoded GemmPlan serves every array geometry, SMT depth, and
 * sparsity bound under comparison, so a sweep over many design
 * points only needs to im2col-lower and encode each workload once.
 * The same property makes the format weight-static under serving
 * traffic: one cache shared across every stream of a
 * serve::StreamScheduler lets repeated (model, batch) requests —
 * and models sharing identical layers — skip lowering and encoding
 * entirely (RunOptions::plan_cache wires it in).
 * The cache keys entries by operand *content* (a 64-bit FNV-1a
 * fingerprint of both operand byte arrays plus the GEMM dims, the
 * DBB block size, and whether the dense weight mirror was
 * materialized): mutated operands re-fingerprint on every call and
 * therefore can never hit a stale entry, so results are bitwise
 * identical with caching on or off. Hits are decided by the
 * fingerprint; acquire() cross-checks the dims on a hit, leaving
 * only the ~2^-64 same-dims content collision undetected.
 *
 * Entries own their GemmProblem (plans borrow the problem they were
 * built from), so cached plans stay valid after the caller's problem
 * dies — acquire() returns shared_ptrs, so an entry evicted while a
 * lane still simulates from it stays alive until the last user
 * drops it.
 *
 * Thread-safety: lookups, inserts, stats(), and clear() are
 * mutex-guarded; plan construction runs outside the lock, and when
 * two threads race to build the same key the first insert wins
 * (plan contents are deterministic, so either copy is correct).
 * Hit/miss counters can differ across thread interleavings; the
 * returned plans never do.
 *
 * Eviction: strict LRU over caller-chosen entry and resident-byte
 * budgets (least-recently-acquired entries evicted until both caps
 * hold), and therefore deterministic for any single-threaded access
 * sequence; concurrent lanes may reorder recency updates, which can
 * change *which* entry is evicted but never the results computed
 * from whatever is resident. DAP memo entries live outside the LRU.
 *
 * Two further tiers sit under the resident LRU, both optional and
 * both returning plans bit-identical to a fresh build:
 *
 *  - **Spill tier** (spill_max_bytes > 0): entries evicted from the
 *    resident LRU are kept in the compact spill form (dims + block
 *    arrays, varint/RLE-coded; see arch/plan_store.hh) under their
 *    own byte budget with their own LRU. A lookup that misses the
 *    resident tier but hits the spill tier rehydrates — decode +
 *    operand reconstruction + profile/mirror re-derivation — which
 *    costs a fraction of the full im2col-lower + encode miss, so a
 *    bounded cache under a cyclic trace degrades smoothly instead
 *    of falling off the LRU-thrash cliff. Rehydrated entries
 *    re-enter the resident tier (possibly spilling another entry),
 *    and their compact image stays *parked* in the spill tier, so
 *    the cyclic steady state — rehydrate, use, re-evict — pays one
 *    decode per cycle and zero re-encodes. Both spill encoding (an
 *    entry's first eviction) and rehydration run outside the lock;
 *    only the list/map surgery is serialized.
 *  - **Persistent store** (attachStore): a miss in both in-RAM
 *    tiers consults the cross-process PlanStore before lowering,
 *    and a full miss saves its freshly built plan back. Warm
 *    process starts hydrate plans from the mmap'd images instead of
 *    re-encoding; corrupt or version-mismatched files are rejected,
 *    rebuilt, and silently replaced. The store is not owned and
 *    must outlive the cache.
 *
 * stats() reports each tier separately (resident hits vs spill
 * rehydrations vs store hydrations vs full misses) so bench
 * artifacts can attribute wins to the right tier.
 */

#ifndef S2TA_ARCH_PLAN_CACHE_HH
#define S2TA_ARCH_PLAN_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arch/gemm_plan.hh"
#include "core/dap.hh"

namespace s2ta {

class FaultInjector;
class PlanStore;

/** One cached workload: the owned operands plus their encoded plan. */
struct CachedPlan
{
    CachedPlan(GemmProblem p, int bz, bool dense_mirror)
        : problem(std::move(p)),
          plan(GemmPlan::build(problem, bz, dense_mirror))
    {}

    /**
     * Hydration constructor: adopt @p p and build the plan with
     * @p build_plan, which receives the *owned* problem (plans
     * borrow the problem they were built from, so it must be this
     * entry's member, not the caller's temporary). Used by the
     * store and spill decoders, whose plans come from
     * GemmPlan::restore / GemmPlan::rebuild rather than a fresh
     * encode.
     */
    template <typename BuildFn>
    CachedPlan(GemmProblem p, BuildFn &&build_plan)
        : problem(std::move(p)), plan(build_plan(problem))
    {}

    const GemmProblem problem;
    const GemmPlan plan;
};

class PlanCache
{
  public:
    /** Cache effectiveness counters, one set per tier. */
    struct Stats
    {
        /** Plan-entry lookups that found a resident encoding. */
        int64_t hits = 0;
        /** Plan-entry lookups that had to lower + encode (missed
         *  every tier). */
        int64_t misses = 0;
        /** Entries evicted out of the resident tier (into the
         *  spill tier when one is configured, dropped otherwise). */
        int64_t evictions = 0;
        /** Plan entries currently resident. */
        int64_t entries = 0;
        /** Operand + mirror bytes held by resident entries. */
        int64_t resident_bytes = 0;
        /** Lookups served by rehydrating a spilled entry — counted
         *  apart from resident hits so artifacts distinguish RAM
         *  hits from (costlier) rehydrations. */
        int64_t spill_hits = 0;
        /** Entries currently held in spill form, including images
         *  parked for resident entries that were once rehydrated
         *  (kept so re-evicting them is free). */
        int64_t spill_entries = 0;
        /** Compact serialized bytes held by the spill tier. */
        int64_t spill_bytes = 0;
        /** Spilled entries dropped to hold the spill byte budget. */
        int64_t spill_evictions = 0;
        /** Evicted entries dropped outright because their spill
         *  encode faulted (injected) — degradation: the next use is
         *  a store hydration or cold encode instead of a decode. */
        int64_t spill_drops = 0;
        /** Parked images dropped because their decode faulted
         *  (injected) — the lookup degrades to store/cold. */
        int64_t spill_decode_faults = 0;
        /** Plans hydrated from the persistent store. */
        int64_t store_hits = 0;
        /** Store consulted, no file present. */
        int64_t store_misses = 0;
        /** Store files rejected (corrupt/truncated/version/key). */
        int64_t store_rejects = 0;
        /** Plans serialized to the persistent store. */
        int64_t store_saves = 0;
        /** DAP-memo lookups, counted separately so plan hit rates
         *  in bench artifacts stay meaningful. */
        int64_t dap_hits = 0;
        int64_t dap_misses = 0;
    };

    /**
     * @param max_entries LRU entry capacity; 0 means unbounded
     *        (sweep drivers usually hold every workload of one
     *        model).
     * @param max_bytes LRU resident-byte budget (operands +
     *        encodings + mirrors); 0 means unbounded. Entries are
     *        evicted least-recently-used until both caps hold.
     * @param spill_max_bytes Spill-tier byte budget for evicted
     *        entries in compact form; 0 disables the tier (evicted
     *        entries are dropped, the pre-spill behavior).
     */
    explicit PlanCache(size_t max_entries = 0,
                       int64_t max_bytes = 0,
                       int64_t spill_max_bytes = 0)
        : max_entries(max_entries), max_bytes(max_bytes),
          spill_max_bytes(spill_max_bytes)
    {}

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /**
     * Plan for @p p's operands, encoded at block size @p bz. The
     * operands are fingerprinted on every call, so a stale entry can
     * never be returned for mutated data; on a miss the problem is
     * copied into the new entry.
     */
    std::shared_ptr<const CachedPlan> acquire(const GemmProblem &p,
                                              int bz,
                                              bool dense_mirror);

    /**
     * Keyed variant for callers that can identify the workload
     * without materializing it (e.g. a conv layer before im2col
     * lowering): @p key must already distinguish operand content
     * (hash the source tensors with hashBytes). @p lower runs only
     * on a miss and produces the problem to encode.
     */
    std::shared_ptr<const CachedPlan>
    acquireKeyed(uint64_t key, int bz, bool dense_mirror,
                 const std::function<GemmProblem()> &lower);

    /**
     * Batched layer variant: one entry per convolution group, all
     * lowered in a single pass on a whole-layer miss. @p lower_all
     * must return exactly @p groups problems (group-major). Group g
     * is keyed as combine(key, g); a layer whose groups are all
     * resident costs only @p groups lookups. On a *partial* miss
     * (some groups evicted mid-sweep), only the absent groups are
     * re-lowered via @p lower_one.
     */
    std::vector<std::shared_ptr<const CachedPlan>>
    acquireLayer(uint64_t key, int groups, int bz, bool dense_mirror,
                 const std::function<std::vector<GemmProblem>()>
                     &lower_all,
                 const std::function<GemmProblem(int)> &lower_one);

    /**
     * Memoized DAP comparator statistics. The DAP array prunes a
     * deployed model's activations once as they stream into the
     * SRAM; its comparator counts are a pure function of (tensor
     * content, NNZ bound) — independent of the array geometry — so
     * a sweep over array configs computes them once per layer.
     * @p key must identify tensor content and bound (hashBytes +
     * combine); @p compute runs only on a miss. DAP entries live
     * outside the LRU (they are a few counters, not plans).
     */
    DapStats dapStats(uint64_t key,
                      const std::function<DapStats()> &compute);

    /**
     * Attach (or detach with nullptr) a persistent cross-process
     * store, consulted after both in-RAM tiers and written back on
     * full misses. Not owned; must outlive this cache.
     */
    void attachStore(PlanStore *s);

    /**
     * Attach a fault injector for the spill tier (SpillEncode /
     * SpillDecode sites, identity = entry key); null detaches.
     * Injected spill faults are never errors — the entry degrades
     * to the next tier down (store, then cold encode), counted in
     * spill_drops / spill_decode_faults.
     */
    void setFaultInjector(const FaultInjector *fi);

    Stats stats() const;

    /** Drop every entry, resident and spilled (counters keep
     *  accumulating). */
    void clear();

    /** FNV-1a 64-bit content hash (8-byte strides + byte tail). */
    static uint64_t hashBytes(const void *data, size_t len,
                              uint64_t seed = 0xcbf29ce484222325ull);

    /** Order-dependent mix of a value into a running key. */
    static uint64_t
    combine(uint64_t key, uint64_t value)
    {
        // splitmix64 finalizer over the xor keeps single-bit key
        // differences from colliding after further combines.
        uint64_t x = key ^ (value + 0x9e3779b97f4a7c15ull);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

    /** Content + geometry fingerprint of a GEMM problem. */
    static uint64_t fingerprint(const GemmProblem &p);

  private:
    /** Bytes an entry pins in memory (operands + dense mirror). */
    static int64_t entryBytes(const CachedPlan &e);

    /**
     * Tiered lookup outcome: a resident entry, a reference to the
     * spilled image (rehydration happens outside the lock; the
     * image stays parked in the spill tier so a later re-eviction
     * of the rehydrated entry is an LRU touch, not a re-encode),
     * or neither.
     */
    struct Lookup
    {
        std::shared_ptr<const CachedPlan> entry;
        std::shared_ptr<const std::vector<uint8_t>> spilled;
    };

    /** An entry evicted with no parked image yet: its spill encode
     *  happens after the lock is released. */
    struct PendingSpill
    {
        uint64_t key;
        std::shared_ptr<const CachedPlan> entry;
    };

    Lookup lookupLocked(uint64_t key);
    void insertLocked(uint64_t key,
                      std::shared_ptr<const CachedPlan> entry,
                      std::vector<PendingSpill> *pending);
    /** Lock, insert (evicting per the budgets), then spill-encode
     *  any evicted entries *outside* the lock and park the images —
     *  the one insert entry point every acquire path uses. */
    void insertAndSpill(uint64_t key,
                        std::shared_ptr<const CachedPlan> entry);
    /** Park a compact image for @p key (touch if already parked)
     *  and hold the spill byte budget. */
    void
    parkLocked(uint64_t key,
               std::shared_ptr<const std::vector<uint8_t>> bytes);
    /** Consult the attached store; inserts + counts on success. */
    std::shared_ptr<const CachedPlan> loadFromStore(uint64_t key);
    /** Persist a freshly built entry (best-effort, counted). */
    void saveToStore(uint64_t key, const CachedPlan &entry);
    /**
     * Decode a parked image and promote it back into the resident
     * tier; null when an injected decode fault fires, in which case
     * the image is dropped (it is now suspect) and the caller falls
     * through to the store / cold path.
     */
    std::shared_ptr<const CachedPlan>
    rehydrate(uint64_t key,
              std::shared_ptr<const std::vector<uint8_t>> bytes);
    /** Remove @p key's parked image from the spill tier. */
    void dropSpillLocked(uint64_t key);

    struct Slot
    {
        std::shared_ptr<const CachedPlan> entry;
        /** Position in lru (most recent at front). */
        std::list<uint64_t>::iterator lru_it;
    };

    struct SpillSlot
    {
        /** Shared so a rehydrating lane can decode outside the
         *  lock while the image stays parked in the tier. */
        std::shared_ptr<const std::vector<uint8_t>> bytes;
        /** Position in spill_lru (most recent at front). */
        std::list<uint64_t>::iterator lru_it;
    };

    const size_t max_entries;
    const int64_t max_bytes;
    const int64_t spill_max_bytes;
    PlanStore *store = nullptr;
    const FaultInjector *fault = nullptr;
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Slot> slots;
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, SpillSlot> spill_slots;
    std::list<uint64_t> spill_lru;
    std::unordered_map<uint64_t, DapStats> dap_memo;
    Stats counters;
};

} // namespace s2ta

#endif // S2TA_ARCH_PLAN_CACHE_HH
