#include <algorithm>
#include <cmath>

#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "core/dbb.hh"

namespace s2ta {

S2taWModel::S2taWModel(ArrayConfig cfg_) : ArrayModel(cfg_)
{
    s2ta_assert(cfg.kind == ArchKind::S2taW, "S2taWModel kind");
}

void
S2taWModel::simulate(const GemmPlan &plan, const RunOptions &opt,
                     GemmRun &out) const
{
    const GemmProblem &p = plan.problem();
    const bool scalar = usesScalarEngine(plan, opt);
    const OperandProfile prof = profileFor(plan, opt);
    EventCounts &ev = out.events;

    const int bz = cfg.bz;
    const int nblocks = p.k / bz;
    const int wstored = cfg.weight_dbb.nnz;
    const int wblock_bytes = cfg.weight_dbb.storedBytesPerBlock();
    // DP4M8 holds 4 weight lanes; denser weight specs need extra
    // sequential passes per block (dense fallback, Sec. 4).
    const int lanes = kDp4Lanes;
    const int passes = (wstored + lanes - 1) / lanes;

    const TileGrid grid = tileGrid(p.m, p.n);

    // One weight block (and one dense activation block) per DP4M8
    // per cycle; M+N TPE hops to fill plus a block drain.
    const int64_t tile_cycles =
        static_cast<int64_t>(nblocks) * passes + cfg.tpe.m +
        cfg.tpe.n + bz;
    ev.cycles = grid.tiles() * tile_cycles;

    // MAC slots: 'lanes' multipliers evaluated per block pass per
    // output. A slot executes when its stored weight is non-zero and
    // the mux-steered activation is non-zero; everything else (empty
    // weight lanes, ZVCG'd zero activations) is clock gated.
    const int64_t slots = static_cast<int64_t>(p.m) * p.n * nblocks *
                          lanes * passes;
    ev.macs_executed = prof.matched_products;
    ev.macs_gated = slots - prof.matched_products;
    ev.mux_selects = slots; // one 8:1 steer per slot

    // Accumulator: the DP4 adder-tree result is accumulated once per
    // block pass, gated when all four products are zero. The active
    // fraction is estimated statistically (DESIGN.md Sec. 3).
    const int64_t accum_slots =
        static_cast<int64_t>(p.m) * p.n * nblocks * passes;
    const double q = slots > 0
        ? static_cast<double>(prof.matched_products) /
              static_cast<double>(slots)
        : 0.0;
    const double p_active = 1.0 - std::pow(1.0 - q, lanes);
    ev.accum_updates = static_cast<int64_t>(
        std::llround(static_cast<double>(accum_slots) * p_active));
    ev.accum_gated = accum_slots - ev.accum_updates;

    // Operand registers at TPE granularity: activation blocks hop
    // across the TPE columns, weight blocks down the TPE rows; each
    // value is reused by A x C datapaths once latched (the new
    // data-reuse dimension of Sec. 6.1). Large grids shard the
    // per-tile loop across the pool (bitwise identical to serial).
    ev.operand_reg_bytes += sumTileGrid(
        grid, opt.shard_pool, [&](int trow, int tcol) {
            const int rows = std::min(grid.eff_rows,
                                      p.m - trow * grid.eff_rows);
            const int cols = std::min(grid.eff_cols,
                                      p.n - tcol * grid.eff_cols);
            const int tpe_rows =
                (rows + cfg.tpe.a - 1) / cfg.tpe.a;
            const int tpe_cols =
                (cols + cfg.tpe.c - 1) / cfg.tpe.c;
            // Dense activation blocks (bz bytes per row per hop)
            // plus compressed weight blocks (stored values + mask).
            return static_cast<int64_t>(nblocks) * bz * rows *
                       tpe_cols +
                   static_cast<int64_t>(nblocks) * wblock_bytes *
                       cols * tpe_rows;
        });

    // SRAM: weights move compressed; activations are dense.
    ev.act_sram_read_bytes =
        static_cast<int64_t>(grid.col_tiles) * p.m * p.k;
    ev.wgt_sram_bytes = static_cast<int64_t>(grid.row_tiles) * p.n *
                        nblocks * wblock_bytes;
    ev.act_sram_write_bytes = static_cast<int64_t>(p.m) * p.n;
    ev.actfn_elements = static_cast<int64_t>(p.m) * p.n;

    if (!opt.compute_output)
        return;

    out.output.assign(static_cast<size_t>(p.m) * p.n, 0);
    if (!scalar) {
        // DBB-native fast path: the mux steering selects exactly the
        // activations at the weight mask's positions, and zero
        // activations contribute nothing, so the datapath result is
        // the mask-intersection dot product of the cached encodings.
        dbbGemm(plan, out.output.data(), opt.shard_pool);
        return;
    }

    // Scalar reference: per-element functional model through the
    // DP4M8 steering path: for each stored weight, the 8:1 mux
    // selects the activation at the weight's expanded position
    // (Fig. 6c). Encode permissively — density enforcement belongs
    // to checkOperands, which RunOptions may have skipped.
    const DbbMatrix wm =
        DbbMatrix::fromWeights(p, DbbSpec{bz, bz});
    for (int i = 0; i < p.m; ++i) {
        for (int j = 0; j < p.n; ++j) {
            int32_t acc = 0;
            for (int b = 0; b < nblocks; ++b) {
                const DbbBlock &blk = wm.block(j, b);
                const int stored = blk.storedCount();
                for (int s = 0; s < stored; ++s) {
                    const int pos = maskNthSetBit(blk.mask, s);
                    acc += static_cast<int32_t>(
                               p.actAt(i, b * bz + pos)) *
                           blk.values[static_cast<size_t>(s)];
                }
            }
            out.output[static_cast<size_t>(i) * p.n + j] = acc;
        }
    }
}

} // namespace s2ta
