#include "arch/gemm_plan.hh"

#include <algorithm>

#include "arch/gemm_kernels.hh"
#include "base/thread_pool.hh"

#ifdef __SSE2__
#include <emmintrin.h>
#endif

namespace s2ta {

namespace {

/** Forced dispatch ceiling; Avx512 (the widest tier) = unclamped. */
std::atomic<int> kernel_cap{static_cast<int>(DbbKernelKind::Avx512)};

/** Row-dot signature all intersection kernels share. */
using RowDotFn = int32_t (*)(const DbbBlock *, const DbbBlock *,
                             int);

/** Dense-dot signature the dense-mirror contraction dispatches. */
using DenseDotFn = int32_t (*)(const int8_t *, const int8_t *, int);

/** Widest compiled-in tier this CPU supports (cpuid results cannot
 *  change at runtime; memoized). */
DbbKernelKind
widestSupportedKernel()
{
    static const DbbKernelKind kind =
        dbbAvx512KernelSupportedImpl() ? DbbKernelKind::Avx512
        : dbbAvx2KernelSupportedImpl() ? DbbKernelKind::Avx2
        : dbbSimdKernelSupportedImpl() ? DbbKernelKind::SimdV2
                                       : DbbKernelKind::Scalar;
    return kind;
}

/**
 * Shared kernel-selection predicate: below ~0.5 matched products
 * per block pair the gather path does less work than the eight
 * always-on SIMD lanes; above it the branch-free contraction wins
 * (the match loop's variable trip count costs more than multiplying
 * the zeros). Used both when deciding to materialize the dense
 * mirror and when dispatching dbbGemm, so the two can't drift.
 */
bool
wantsDenseKernel(const OperandProfile &prof, int64_t block_pairs)
{
    return 2 * prof.matched_products >= block_pairs;
}

/**
 * Row-tiled mask-intersection contraction over the compressed
 * encodings for output rows [row_begin, row_end): an activation
 * stripe stays cache-resident while each weight column's blocks
 * stream through once per stripe. @p dot is the dispatched row-dot
 * kernel (scalar rank gathers or the SSSE3 expansion).
 */
void
intersectGemmRows(const DbbMatrix &act, const DbbMatrix &wgt, int n,
                  int row_begin, int row_end, RowDotFn dot,
                  int32_t *out)
{
    const int nb = act.blocksPerVector();
    constexpr int kRowTile = 64;
    for (int i0 = row_begin; i0 < row_end; i0 += kRowTile) {
        const int ilim = std::min(row_end, i0 + kRowTile);
        for (int j = 0; j < n; ++j) {
            const DbbBlock *wcol = wgt.vectorBlocks(j);
            for (int i = i0; i < ilim; ++i) {
                out[static_cast<size_t>(i) * n + j] =
                    dot(act.vectorBlocks(i), wcol, nb);
            }
        }
    }
}

#ifdef __SSE2__

/** Exact INT8 dot product with INT32 accumulation over k elements. */
int32_t
denseDot(const int8_t *a, const int8_t *w, int k)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = zero;
    int x = 0;
    for (; x + 16 <= k; x += 16) {
        const __m128i av = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + x));
        const __m128i wv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(w + x));
        // Sign-extend each INT8 half into INT16 lanes (bytes enter
        // the high half of each word, then an arithmetic shift
        // restores the value with its sign).
        const __m128i alo =
            _mm_srai_epi16(_mm_unpacklo_epi8(zero, av), 8);
        const __m128i ahi =
            _mm_srai_epi16(_mm_unpackhi_epi8(zero, av), 8);
        const __m128i wlo =
            _mm_srai_epi16(_mm_unpacklo_epi8(zero, wv), 8);
        const __m128i whi =
            _mm_srai_epi16(_mm_unpackhi_epi8(zero, wv), 8);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, wlo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, whi));
    }
    int32_t sum = 0;
    for (; x < k; ++x)
        sum += static_cast<int32_t>(a[x]) * w[x];
    alignas(16) int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
    return sum + lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/**
 * Branch-free SIMD contraction over the dense activation rows and
 * the transposed weight mirror, row-tiled like intersectGemmRows,
 * covering output rows [row_begin, row_end). @p ddot is the
 * dispatched dense dot (SSE2 unpack/madd baseline or the VNNI
 * vpdpbusd sub-kernel).
 */
void
denseGemmRows(const GemmProblem &p, const int8_t *wgt_t,
              int row_begin, int row_end, DenseDotFn ddot,
              int32_t *out)
{
    constexpr int kRowTile = 64;
    for (int i0 = row_begin; i0 < row_end; i0 += kRowTile) {
        const int ilim = std::min(row_end, i0 + kRowTile);
        for (int j = 0; j < p.n; ++j) {
            const int8_t *wcol =
                wgt_t + static_cast<size_t>(j) * p.k;
            for (int i = i0; i < ilim; ++i) {
                out[static_cast<size_t>(i) * p.n + j] = ddot(
                    &p.a[static_cast<size_t>(i) * p.k], wcol, p.k);
            }
        }
    }
}

#endif // __SSE2__

/**
 * Run @p rows_fn(row_begin, row_end) over [0, m), split into
 * kStripeRows-row stripes across the pool (or in one serial call
 * when no pool is given). Stripes write disjoint rows, so
 * scheduling order cannot affect the result.
 */
template <typename RowsFn>
void
forRowStripes(int m, ThreadPool *pool, const RowsFn &rows_fn)
{
    // One stripe is several cache tiles: big enough that stripe
    // dispatch overhead stays invisible, small enough that a
    // ResNet-sized GEMM (m ~ 3k) still fans out across many lanes.
    constexpr int64_t kStripeRows = 256;
    if (pool == nullptr) {
        if (m > 0)
            rows_fn(0, m);
        return;
    }
    pool->parallelForStripes(
        m, kStripeRows, [&](int64_t begin, int64_t end) {
            rows_fn(static_cast<int>(begin),
                    static_cast<int>(end));
        });
}

} // anonymous namespace

const char *
dbbKernelKindName(DbbKernelKind kind)
{
    switch (kind) {
      case DbbKernelKind::Scalar: return "scalar";
      case DbbKernelKind::SimdV2: return "ssse3";
      case DbbKernelKind::Avx2:   return "avx2";
      case DbbKernelKind::Avx512: return "avx512";
    }
    s2ta_panic("unknown kernel kind");
}

bool
dbbSimdKernelAvailable()
{
    // The probe lives in the v2 TU so the compile-time gate, the
    // cpuid check, and the kernel all sit under the same flags.
    return dbbSimdKernelSupportedImpl();
}

DbbKernelKind
dbbActiveKernel()
{
    const auto cap = static_cast<DbbKernelKind>(
        kernel_cap.load(std::memory_order_relaxed));
    const DbbKernelKind widest = widestSupportedKernel();
    return cap < widest ? cap : widest;
}

void
dbbForceKernelCap(DbbKernelKind cap)
{
    kernel_cap.store(static_cast<int>(cap),
                     std::memory_order_relaxed);
}

DbbKernelKind
dbbKernelCap()
{
    return static_cast<DbbKernelKind>(
        kernel_cap.load(std::memory_order_relaxed));
}

void
dbbForceScalarKernel(bool force)
{
    dbbForceKernelCap(force ? DbbKernelKind::Scalar
                            : DbbKernelKind::Avx512);
}

bool
dbbVnniDenseEnabled()
{
    static const bool supported = dbbVnniKernelSupportedImpl();
    return supported && dbbKernelCap() >= DbbKernelKind::Avx512;
}

bool
dbbProfileSimdEnabled()
{
    static const bool supported = dbbVpopcntKernelSupportedImpl();
    return supported && dbbKernelCap() >= DbbKernelKind::Avx512;
}

void
dbbGemm(const GemmPlan &plan, int32_t *out, ThreadPool *shard_pool)
{
    const GemmProblem &p = plan.problem();
#ifdef __SSE2__
    const int64_t block_pairs =
        static_cast<int64_t>(p.m) * p.n *
        plan.act().blocksPerVector();
    if (plan.wgtDenseT() != nullptr &&
        wantsDenseKernel(plan.profile(), block_pairs)) {
        // The dense-mirror contraction sub-dispatches to the VNNI
        // vpdpbusd dot when the AVX-512 tier is active; the SSE2
        // unpack/madd tree is the baseline. Both wrap mod 2^32, so
        // outputs are bit-identical either way.
        const DenseDotFn ddot =
            dbbVnniDenseEnabled() ? dbbDenseDotVnni : denseDot;
        forRowStripes(p.m, shard_pool,
                      [&](int row_begin, int row_end) {
                          denseGemmRows(p, plan.wgtDenseT(),
                                        row_begin, row_end, ddot,
                                        out);
                      });
        return;
    }
#endif
    const DbbKernelKind kind = dbbActiveKernel();
    const RowDotFn dot =
        kind == DbbKernelKind::Avx512 ? dbbDotRowAvx512
        : kind == DbbKernelKind::Avx2 ? dbbDotRowAvx2
        : kind == DbbKernelKind::SimdV2 ? dbbDotRowSimdV2
                                        : dbbDotRow;
    forRowStripes(p.m, shard_pool, [&](int row_begin, int row_end) {
        intersectGemmRows(plan.act(), plan.wgt(), p.n, row_begin,
                          row_end, dot, out);
    });
}

GemmPlan
GemmPlan::build(const GemmProblem &p, int bz, bool dense_mirror)
{
    s2ta_assert(bz >= 1 && bz <= 8, "block size %d", bz);
    // Encode with the permissive bz/bz spec: a plan caches content,
    // not a density contract; bounds are checked against the masks
    // by checkWeights / checkActivations.
    const DbbSpec all{bz, bz};
    return assemble(p, bz, DbbMatrix::fromActivations(p, all),
                    DbbMatrix::fromWeights(p, all), dense_mirror);
}

GemmPlan
GemmPlan::assemble(const GemmProblem &p, int bz, DbbMatrix act,
                   DbbMatrix wgt, bool dense_mirror)
{
    GemmPlan plan(p);
    plan.blk_bz = bz;
    plan.act_blocks = std::move(act);
    plan.wgt_blocks = std::move(wgt);
    plan.prof = OperandProfile::fromDbb(p, plan.act_blocks,
                                        plan.wgt_blocks);

    // Dense transposed weight mirror for the SIMD contraction,
    // tiled over columns so writes stay within a few streams. Skip
    // it whenever dbbGemm cannot pick the SIMD kernel: non-SSE2
    // builds, and densities where the gather path wins anyway (the
    // same heuristic dbbGemm applies).
#ifndef __SSE2__
    dense_mirror = false;
#else
    const int64_t block_pairs = static_cast<int64_t>(p.m) * p.n *
                                plan.act_blocks.blocksPerVector();
    dense_mirror =
        dense_mirror && wantsDenseKernel(plan.prof, block_pairs);
#endif
    if (dense_mirror) {
        plan.wgt_t.resize(static_cast<size_t>(p.n) * p.k);
        constexpr int kColTile = 64;
        for (int j0 = 0; j0 < p.n; j0 += kColTile) {
            const int jlim = std::min(p.n, j0 + kColTile);
            for (int kk = 0; kk < p.k; ++kk) {
                const int8_t *row =
                    &p.w[static_cast<size_t>(kk) * p.n];
                for (int j = j0; j < jlim; ++j)
                    plan.wgt_t[static_cast<size_t>(j) * p.k + kk] =
                        row[j];
            }
        }
    }

    plan.is_encoded = true;
    return plan;
}

GemmPlan
GemmPlan::restore(const GemmProblem &p, Parts parts)
{
    s2ta_assert(parts.bz >= 1 && parts.bz <= 8, "block size %d",
                parts.bz);
    s2ta_assert(parts.act.vectors() == p.m &&
                    parts.wgt.vectors() == p.n,
                "restored encodings (%d act, %d wgt vectors) do not "
                "match %dx%dx%d", parts.act.vectors(),
                parts.wgt.vectors(), p.m, p.k, p.n);
    GemmPlan plan(p);
    plan.blk_bz = parts.bz;
    plan.act_blocks = std::move(parts.act);
    plan.wgt_blocks = std::move(parts.wgt);
    plan.wgt_t = std::move(parts.wgt_t);
    plan.prof = std::move(parts.prof);
    plan.is_encoded = true;
    return plan;
}

GemmPlan
GemmPlan::rebuild(const GemmProblem &p, int bz, DbbMatrix act,
                  DbbMatrix wgt, bool dense_mirror)
{
    s2ta_assert(bz >= 1 && bz <= 8, "block size %d", bz);
    return assemble(p, bz, std::move(act), std::move(wgt),
                    dense_mirror);
}

GemmPlan
GemmPlan::shallow(const GemmProblem &p)
{
    return GemmPlan(p);
}

namespace {

/** Popcount density check shared by both operand validators. */
void
checkBlockDensity(const DbbMatrix &mat, const DbbSpec &spec,
                  const char *kind, const char *vec_name,
                  const char *remedy)
{
    const int nb = mat.blocksPerVector();
    for (int v = 0; v < mat.vectors(); ++v) {
        const DbbBlock *blocks = mat.vectorBlocks(v);
        for (int b = 0; b < nb; ++b) {
            if (maskPopcount(blocks[b].mask) > spec.nnz) {
                s2ta_fatal("%s block (%s %d, block %d) violates %s; "
                           "run %s first", kind, vec_name, v, b,
                           spec.toString().c_str(), remedy);
            }
        }
    }
}

} // anonymous namespace

void
GemmPlan::checkWeights(const DbbSpec &spec) const
{
    s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
    if (wgt_ok_spec.load(std::memory_order_acquire) ==
        encodeSpec(spec))
        return;
    checkBlockDensity(wgt_blocks, spec, "weight", "col",
                      "pruneWeightsDbb");
    wgt_ok_spec.store(encodeSpec(spec), std::memory_order_release);
}

void
GemmPlan::checkActivations(const DbbSpec &spec) const
{
    s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
    if (act_ok_spec.load(std::memory_order_acquire) ==
        encodeSpec(spec))
        return;
    checkBlockDensity(act_blocks, spec, "activation", "row", "DAP");
    act_ok_spec.store(encodeSpec(spec), std::memory_order_release);
}

} // namespace s2ta
