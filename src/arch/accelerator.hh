/**
 * @file
 * Full-accelerator model: the TPE array plus the software-managed
 * SRAMs, DMA, the DAP array, and the Cortex-M33 MCU cluster (paper
 * Sec. 6.3, Fig. 7a). Runs whole CNN layers and networks, producing
 * per-layer event records for the energy model.
 */

#ifndef S2TA_ARCH_ACCELERATOR_HH
#define S2TA_ARCH_ACCELERATOR_HH

#include <string>
#include <vector>

#include "arch/array_model.hh"
#include "tensor/conv.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/** System-level configuration around the array. */
struct AcceleratorConfig
{
    ArrayConfig array;
    /** Weight buffer (WB) capacity in bytes; 512 KB in the paper. */
    int64_t wgt_sram_bytes = 512ll * 1024;
    /** Activation buffer (AB) capacity in bytes; 2 MB in the paper. */
    int64_t act_sram_bytes = 2ll * 1024 * 1024;
    /** Sustained DMA bandwidth in bytes per array cycle. */
    double dma_bytes_per_cycle = 128.0;
    /** Cortex-M33 MCUs for non-GEMM work (4 in the paper). */
    int mcu_count = 4;
    /** Activation-function elements one MCU handles per cycle. */
    double mcu_elems_per_cycle = 8.0;
};

/**
 * One CNN layer plus the data it runs on. The tensors must already
 * carry the desired sparsity structure (W-DBB pruned weights,
 * DAP-structured activations); pruning is a property of the deployed
 * model, shared by every architecture under comparison (Sec. 8.3).
 */
struct LayerWorkload
{
    std::string name;
    Conv2dShape shape;
    /** (in_h, in_w, in_c) activations. */
    Int8Tensor input;
    /** (kernel_h, kernel_w, groupInC, out_c) weights. */
    Int8Tensor weights;
    /** A-DBB bound the input blocks satisfy (bz for dense). */
    int act_nnz = 8;
    /** W-DBB bound the weight blocks satisfy (bz for dense; dense
     *  layers run the S2TA dense-weight fallback). */
    int wgt_nnz = 4;
};

/** Per-layer simulation outcome. */
struct LayerRun
{
    std::string name;
    EventCounts events;
    /** Dense-equivalent MACs of the convolution. */
    int64_t dense_macs = 0;
    /** A-DBB density the array was configured with. */
    int act_nnz_used = 8;
    /** True when DMA, not compute, set the layer latency. */
    bool memory_bound = false;
    /** Compute-only cycles (before the DMA bound was applied). */
    int64_t compute_cycles = 0;
    /** Functional conv output; empty unless requested. */
    Int32Tensor output;
};

/** Whole-network simulation outcome. */
struct NetworkRun
{
    std::vector<LayerRun> layers;
    EventCounts total;
    int64_t dense_macs = 0;

    /** Fold a layer record into the totals. */
    void add(LayerRun lr);
};

/**
 * The accelerator: array model + SRAM/DMA/MCU bookkeeping.
 *
 * Thread-compatible: const after construction; each runLayer call is
 * independent.
 */
class Accelerator
{
  public:
    explicit Accelerator(AcceleratorConfig cfg);

    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Simulate one convolution (or FC, expressed as 1x1 conv) layer.
     *
     * @param wl the layer and its operands.
     * @param compute_output also compute the functional INT32 conv
     *        result through the array datapath (slower).
     */
    LayerRun runLayer(const LayerWorkload &wl,
                      bool compute_output = false) const;

    /** Simulate a sequence of layers and accumulate totals. */
    NetworkRun runNetwork(const std::vector<LayerWorkload> &layers,
                          bool compute_output = false) const;

  private:
    /** DBB architectures need 8-aligned im2col channel segments. */
    int channelAlign() const;

    AcceleratorConfig cfg;
};

} // namespace s2ta

#endif // S2TA_ARCH_ACCELERATOR_HH
