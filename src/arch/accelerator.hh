/**
 * @file
 * Full-accelerator model: the TPE array plus the software-managed
 * SRAMs, DMA, the DAP array, and the Cortex-M33 MCU cluster (paper
 * Sec. 6.3, Fig. 7a). Runs whole CNN layers and networks, producing
 * per-layer event records for the energy model.
 */

#ifndef S2TA_ARCH_ACCELERATOR_HH
#define S2TA_ARCH_ACCELERATOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/array_model.hh"
#include "tensor/conv.hh"
#include "tensor/tensor.hh"

namespace s2ta {

class FaultInjector;
class ThreadPool;
struct CachedPlan;

/** System-level configuration around the array. */
struct AcceleratorConfig
{
    ArrayConfig array;
    /** Weight buffer (WB) capacity in bytes; 512 KB in the paper. */
    int64_t wgt_sram_bytes = 512ll * 1024;
    /** Activation buffer (AB) capacity in bytes; 2 MB in the paper. */
    int64_t act_sram_bytes = 2ll * 1024 * 1024;
    /** Sustained DMA bandwidth in bytes per array cycle. */
    double dma_bytes_per_cycle = 128.0;
    /** Cortex-M33 MCUs for non-GEMM work (4 in the paper). */
    int mcu_count = 4;
    /** Activation-function elements one MCU handles per cycle. */
    double mcu_elems_per_cycle = 8.0;
    /**
     * Simulation threads for runNetwork/runLayer: 0 = one lane per
     * hardware thread (the process-wide pool), 1 = serial, N > 1 =
     * a dedicated pool of exactly N lanes. Results are bitwise
     * identical in all cases (per-layer and per-group results are
     * reduced in order).
     */
    int sim_threads = 0;
};

/**
 * Per-run options for layer and network simulation: the GEMM-level
 * RunOptions knobs (engine, validation, SMT sampling seed, ...)
 * with the functional output off by default — network sweeps are
 * usually events-only.
 */
struct NetworkRunOptions : RunOptions
{
    NetworkRunOptions() { compute_output = false; }

    /**
     * Optional fault injector (LayerCompute / LayerStall sites).
     * Per-layer identities are combineId(fault_id, layer_index), so
     * callers that retry set a fresh fault_id per attempt (e.g.
     * combineId(request_id, attempt)) to model *transient* faults.
     * A compute fault aborts the whole attempt before simulation —
     * results are discarded, never corrupted — and a stall adds
     * virtual-time cycles without touching any event or output.
     */
    const FaultInjector *fault = nullptr;
    uint64_t fault_id = 0;
};

/**
 * Injected-fault outcome of one simulation *attempt*: the
 * LayerCompute / LayerStall decisions for every layer of the
 * attempt identified by @p attempt_id, evaluated in layer order
 * (identities combineId(attempt_id, layer)). This is the single
 * source of truth both Accelerator::runNetwork (which evaluates it
 * before simulating anything) and the fleet scheduler's serial
 * event loop (which re-rolls attempts without re-simulating —
 * results are attempt-independent) share, so the injector's exact
 * per-site counters reconcile no matter which path evaluated.
 */
struct AttemptFaults
{
    /** First layer whose compute fault aborts the attempt; -1 when
     *  the attempt survives. */
    int fault_layer = -1;
    /** Compute faults across the attempt's layers. */
    int64_t fault_count = 0;
    /** Injected stalls: virtual-time cycles only. */
    int64_t stall_events = 0;
    int64_t stall_cycles = 0;

    bool faulted() const { return fault_layer >= 0; }
};

/** Evaluate every per-layer fault site of one attempt (see
 *  AttemptFaults). Pure in (injector seed, attempt_id, n_layers)
 *  aside from the injector's counters. */
AttemptFaults evaluateAttemptFaults(const FaultInjector &fi,
                                    uint64_t attempt_id,
                                    size_t n_layers);

/**
 * One CNN layer plus the data it runs on. The tensors must already
 * carry the desired sparsity structure (W-DBB pruned weights,
 * DAP-structured activations); pruning is a property of the deployed
 * model, shared by every architecture under comparison (Sec. 8.3).
 */
struct LayerWorkload
{
    std::string name;
    Conv2dShape shape;
    /**
     * Samples run through the layer per request. Batch folds into
     * the GEMM M axis (sample-major rows), so every engine stays
     * bitwise identical across batch sizes: a batched output is
     * exactly the concatenation of the per-sample outputs.
     */
    int batch = 1;
    /** (in_h, in_w, in_c) activations at batch 1, or
     *  (batch, in_h, in_w, in_c) when batch > 1. */
    Int8Tensor input;
    /** (kernel_h, kernel_w, groupInC, out_c) weights. */
    Int8Tensor weights;
    /** A-DBB bound the input blocks satisfy (bz for dense). */
    int act_nnz = 8;
    /** W-DBB bound the weight blocks satisfy (bz for dense; dense
     *  layers run the S2TA dense-weight fallback). */
    int wgt_nnz = 4;
};

/** Per-layer simulation outcome. */
struct LayerRun
{
    std::string name;
    EventCounts events;
    /** Dense-equivalent MACs of the convolution. */
    int64_t dense_macs = 0;
    /** A-DBB density the array was configured with. */
    int act_nnz_used = 8;
    /** True when DMA, not compute, set the layer latency. */
    bool memory_bound = false;
    /** Compute-only cycles (before the DMA bound was applied). */
    int64_t compute_cycles = 0;
    /** Samples the layer processed (the workload's batch). */
    int batch = 1;
    /** Functional conv output; empty unless requested. Shaped
     *  (outH, outW, out_c), with a leading batch dimension when
     *  the workload's batch is > 1. */
    Int32Tensor output;
    /** Host→device operand DMA bytes (weights + activations, with
     *  the streaming/refetch policy applied). Together with
     *  d2h_bytes this is the buffer-residency ledger an async
     *  device backend reconciles against:
     *  h2d_bytes + d2h_bytes == events.dma_bytes, always. */
    int64_t h2d_bytes = 0;
    /** Device→host result DMA bytes (the dense output tensor). */
    int64_t d2h_bytes = 0;
};

/**
 * Host-side ("driver") stage of one layer, split out of runLayer so
 * an asynchronous device backend (arch/backend.hh) can overlap it
 * with array execution: shape checks, the per-layer tightened array
 * config, im2col lowering, DBB encoding (or plan-cache acquisition)
 * and the DMA-traffic pricing — everything that happens before the
 * device is kicked. Movable; holds shared handles so cached
 * encodings stay alive while a queued command waits to execute.
 */
struct PreparedLayer
{
    /** Borrowed workload; must outlive executePrepared(). */
    const LayerWorkload *wl = nullptr;
    /** Array config with this layer's tightened DBB bounds. */
    ArrayConfig acfg;
    /** Stateless array model built for acfg. */
    std::shared_ptr<const ArrayModel> model;
    /** Plan-cache handles, one per group (cached path). */
    std::vector<std::shared_ptr<const CachedPlan>> cached;
    /** Lowered problems owned by this command (uncached paths);
     *  heap-held so the plans below stay valid across moves. */
    std::shared_ptr<std::vector<GemmProblem>> problems;
    /** Locally encoded plans over `problems` (uncached fast path;
     *  empty on the scalar path, which encodes nothing). */
    std::vector<std::shared_ptr<const GemmPlan>> plans;
    /** Content fingerprint of the input tensor (cached path). */
    uint64_t input_hash = 0;
    /** True when `cached` (not `problems`) carries the plans. */
    bool use_cache = false;
    /** Operand upload / result download bytes; see
     *  LayerRun::h2d_bytes. */
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;
};

/** Whole-network simulation outcome. */
struct NetworkRun
{
    std::vector<LayerRun> layers;
    EventCounts total;
    int64_t dense_macs = 0;

    /** First layer whose injected compute fault aborted this
     *  attempt; -1 when the attempt completed. A faulted run
     *  carries no layer records (nothing was simulated). */
    int fault_layer = -1;
    /** Injected compute faults across this attempt's layers. */
    int64_t fault_count = 0;
    /** Injected stalls: timing-only, never reflected in events. */
    int64_t stall_events = 0;
    int64_t stall_cycles = 0;

    bool faulted() const { return fault_layer >= 0; }

    /** Fold a layer record into the totals. */
    void add(LayerRun lr);
};

/**
 * The accelerator: array model + SRAM/DMA/MCU bookkeeping.
 *
 * Thread-compatible: const after construction; each runLayer call is
 * independent.
 */
class Accelerator
{
  public:
    explicit Accelerator(AcceleratorConfig cfg);
    ~Accelerator();

    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Simulate one convolution (or FC, expressed as 1x1 conv) layer.
     * Grouped layers fan their per-group GEMMs out across the
     * simulation threads; the per-group events are reduced in group
     * order, so results match the serial run bit for bit.
     */
    LayerRun runLayer(const LayerWorkload &wl,
                      const NetworkRunOptions &opt) const;

    /**
     * Host-side stage of runLayer: validate, build the per-layer
     * array model, lower and encode (or acquire from the plan
     * cache), and price the DMA traffic. No array cycles are
     * simulated. The returned command must be executed with the
     * same options it was prepared with.
     */
    PreparedLayer prepareLayer(const LayerWorkload &wl,
                               const NetworkRunOptions &opt) const;

    /**
     * Device-side stage of runLayer: run the array model over the
     * prepared per-group plans and fold events, outputs and the
     * DMA/MCU latency model. For any (wl, opt),
     * executePrepared(prepareLayer(wl, opt), opt) is bitwise
     * identical to runLayer(wl, opt) — it is its implementation.
     */
    LayerRun executePrepared(const PreparedLayer &prep,
                             const NetworkRunOptions &opt) const;

    /** Convenience overload matching the original API. */
    LayerRun
    runLayer(const LayerWorkload &wl,
             bool compute_output = false) const
    {
        NetworkRunOptions opt;
        opt.compute_output = compute_output;
        return runLayer(wl, opt);
    }

    /**
     * Simulate a sequence of layers and accumulate totals. Layers
     * run concurrently across the simulation threads; totals are
     * folded in layer order (bitwise identical to serial).
     */
    NetworkRun runNetwork(const std::vector<LayerWorkload> &layers,
                          const NetworkRunOptions &opt) const;

    /** Convenience overload matching the original API. */
    NetworkRun
    runNetwork(const std::vector<LayerWorkload> &layers,
               bool compute_output = false) const
    {
        NetworkRunOptions opt;
        opt.compute_output = compute_output;
        return runNetwork(layers, opt);
    }

  private:
    /** DBB architectures need 8-aligned im2col channel segments. */
    int channelAlign() const;

    /** Run fn(i) over [0, n) on the configured lane count. */
    void runIndexed(int64_t n,
                    const std::function<void(int64_t)> &fn) const;

    /** Pool functional GEMM kernels shard tile stripes onto
     *  (nullptr when the accelerator is configured serial). */
    ThreadPool *shardPool() const;

    AcceleratorConfig cfg;
    /** Dedicated pool when sim_threads > 1; else serial/global. */
    std::unique_ptr<ThreadPool> own_pool;
};

} // namespace s2ta

#endif // S2TA_ARCH_ACCELERATOR_HH
