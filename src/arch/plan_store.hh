/**
 * @file
 * Persistent, cross-process plan store plus the compact spill codec
 * — the two serialized forms of a GemmPlan.
 *
 * The DBB compressed form is weight-static and config-independent:
 * the encoding of a workload depends only on operand content and
 * the block size, never on the array geometry, SMT depth, or
 * sparsity bound under evaluation. A plan encoded once is therefore
 * valid for every future process that sees the same operands, and
 * re-encoding on every invocation (108 cold encodes per sweep, one
 * per distinct workload per serving restart) is pure waste. Two
 * serialized forms exploit this, at opposite points of the
 * size/speed trade:
 *
 *  - **Store form** (PlanStore, one file per plan): the full plan —
 *    operands, both DBB block arrays, the dense transposed weight
 *    mirror when materialized, and the OperandProfile — laid out so
 *    every section hydrates with a single memcpy from the mapped
 *    image (base/mapped_file.hh). Nothing is re-derived on load; a
 *    warm start is bounded by memory bandwidth, not encode compute.
 *  - **Spill form** (spillEncode/spillDecode, in-RAM): the minimum
 *    from which a bit-identical plan can be rebuilt — dims plus the
 *    two block arrays, mask byte + stored values per block, zero
 *    runs run-length coded with varints; operands, mirror, and
 *    profile are all dropped and re-derived on rehydration (the
 *    encodings are lossless, so the operands come back exactly).
 *    This is what PlanCache's spill tier holds evicted entries in.
 *
 * Store files are versioned and checksummed; load() rejects — never
 * trusts — anything that fails validation: short or truncated
 * files, wrong magic, version mismatch after a format bump, key
 * mismatch (a file renamed or hash-colliding), implausible dims,
 * size/dims disagreement, or payload checksum mismatch (bit rot,
 * torn concurrent write on a non-POSIX filesystem). A rejected or
 * absent file is an ordinary cache miss: the caller re-encodes and
 * save() silently replaces the bad file via an atomic temp+rename,
 * so corruption degrades to a cold start, never to wrong results
 * and never to a fatal error. Readers of one store directory are
 * fully concurrent (files are immutable once published; rename
 * guarantees a reader maps old-or-new, never a mix) and writers
 * race benignly (both produce identical bytes for one key).
 *
 * Checksums use a 4-lane interleaved FNV-1a (planStoreChecksum):
 * the single-stream fold of PlanCache::hashBytes is latency-bound
 * on its 64-bit multiply chain, which would make validation as
 * expensive as the memcpy it guards; four independent streams run
 * at memcpy-like speed and are combined order-dependently at the
 * end. Like hashBytes, it is deterministic across platforms of the
 * same endianness — a store directory is a same-arch artifact, not
 * an interchange format.
 */

#ifndef S2TA_ARCH_PLAN_STORE_HH
#define S2TA_ARCH_PLAN_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/plan_cache.hh"

namespace s2ta {

class FaultInjector;

/** Bump on any layout change; old files are rejected and rebuilt. */
constexpr uint32_t kPlanStoreVersion = 1;

/** 4-lane interleaved FNV-1a over @p len bytes (see file comment). */
uint64_t planStoreChecksum(const void *data, size_t len);

class PlanStore
{
  public:
    /**
     * Open (creating if needed) the store directory. Fatal when the
     * directory cannot be created — a store the user asked for on
     * the command line that can never persist anything is a
     * misconfiguration, not a cache miss.
     *
     * @p size_cap_bytes (0 = uncapped) is the total published-entry
     * budget compact() enforces; attaching never evicts on its own,
     * so a reader can open an over-budget store without mutating it
     * beyond the torn-temp sweep.
     */
    explicit PlanStore(std::string dir, int64_t size_cap_bytes = 0);

    PlanStore(const PlanStore &) = delete;
    PlanStore &operator=(const PlanStore &) = delete;

    struct LoadResult
    {
        /** Hydrated plan; null on miss or rejection. */
        std::shared_ptr<const CachedPlan> entry;
        /** True when a file existed but failed validation. */
        bool rejected = false;
    };

    /**
     * Hydrate the plan stored under @p key. Absent file = plain
     * miss; present-but-invalid = rejection (both return a null
     * entry and are never fatal). A rejected file is quarantined:
     * renamed aside to "<name>.quar" so it is never re-read (load
     * only ever opens the exact .s2ta path) and the next save
     * publishes a fresh entry in its place; compact() deletes
     * quarantined files. Concurrent callers are safe.
     */
    LoadResult load(uint64_t key) const;

    /**
     * Serialize @p entry under @p key (atomic replace). Returns
     * false on I/O failure — the plan simply stays unpersisted.
     */
    bool save(uint64_t key, const CachedPlan &entry) const;

    /** Exact lifecycle counters for this store handle (totals;
     *  increment order across threads is unspecified). */
    struct Stats
    {
        int64_t loads = 0;        ///< load() calls
        int64_t rejects = 0;      ///< files that failed validation
        int64_t quarantined = 0;  ///< corrupt files renamed aside
        int64_t read_faults = 0;  ///< injected open/map failures
        int64_t saves = 0;        ///< successful publishes
        int64_t save_failures = 0;///< failed saves (I/O or injected)
        int64_t torn_swept = 0;   ///< "*.tmp.*" leftovers removed
        int64_t quarantine_removed = 0; ///< .quar files deleted
        int64_t evicted_files = 0;///< entries evicted by compact()
        int64_t evicted_bytes = 0;
    };

    Stats stats() const;

    /** compact() outcome: what was swept plus what survived. */
    struct CompactResult
    {
        int64_t torn_swept = 0;
        int64_t quarantine_removed = 0;
        int64_t evicted_files = 0;
        int64_t evicted_bytes = 0;
        /** Published entries remaining after the sweep. */
        int64_t files = 0;
        int64_t bytes = 0;
    };

    /**
     * Lifecycle sweep: remove torn temps and quarantined files,
     * evict published entries older than @p max_age_s (0 = no age
     * cap), then evict oldest-first (mtime, filename tie-break)
     * until total published bytes fit the construction-time size
     * cap. Safe to run concurrently with readers: eviction is
     * unlink, and mapped readers keep their mapping.
     */
    CompactResult compact(double max_age_s = 0.0) const;

    int64_t sizeCapBytes() const { return size_cap; }

    /** Attach a fault injector (StoreRead/StoreWrite/StoreRename/
     *  StoreBitFlip sites, identity = plan key); null detaches.
     *  Not thread-safe against concurrent load/save. */
    void setFaultInjector(const FaultInjector *fi) { fault = fi; }

    const std::string &dir() const { return store_dir; }

    /** File a key serializes to: <dir>/plan_<16-hex-key>.s2ta. */
    std::string pathFor(uint64_t key) const;

    /** Store-form image of @p entry (header + payload). */
    static std::vector<uint8_t> serialize(uint64_t key,
                                          const CachedPlan &entry);

    /**
     * Validate and hydrate a store-form image; null on any
     * validation failure (see file comment for the reject set).
     */
    static std::shared_ptr<const CachedPlan>
    deserialize(const uint8_t *data, size_t len,
                uint64_t expected_key);

  private:
    /** Remove "*.tmp.*" leftovers from the directory (counted). */
    int64_t sweepTornTemps() const;

    /** Rename a rejected file aside so it is never re-read. */
    void quarantine(const std::string &path) const;

    const std::string store_dir;
    const int64_t size_cap;
    const FaultInjector *fault = nullptr;

    // load/save are const (the store is logically a cache); the
    // lifecycle counters they maintain are bookkeeping, not state.
    mutable std::atomic<int64_t> n_loads{0};
    mutable std::atomic<int64_t> n_rejects{0};
    mutable std::atomic<int64_t> n_quarantined{0};
    mutable std::atomic<int64_t> n_read_faults{0};
    mutable std::atomic<int64_t> n_saves{0};
    mutable std::atomic<int64_t> n_save_failures{0};
    mutable std::atomic<int64_t> n_torn_swept{0};
    mutable std::atomic<int64_t> n_quarantine_removed{0};
    mutable std::atomic<int64_t> n_evicted_files{0};
    mutable std::atomic<int64_t> n_evicted_bytes{0};
};

/**
 * Spill-form image of @p entry: dims + varint/RLE-coded block
 * arrays only (mask byte + stored values per non-empty block, zero
 * runs length-coded). Typically 3-6x smaller than the entry's
 * resident footprint.
 */
std::vector<uint8_t> spillEncode(const CachedPlan &entry);

/**
 * Rebuild a full entry from a spill-form image: operands are
 * reconstructed from the lossless encodings, the profile re-derived
 * from the masks, and the dense mirror re-materialized under
 * build()'s heuristic — bit-identical to the entry that was
 * spilled. Fatal on a malformed image (spill bytes never leave the
 * process; corruption here is a program bug, not an input).
 */
std::shared_ptr<const CachedPlan> spillDecode(const uint8_t *data,
                                              size_t len);

} // namespace s2ta

#endif // S2TA_ARCH_PLAN_STORE_HH
