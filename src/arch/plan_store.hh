/**
 * @file
 * Persistent, cross-process plan store plus the compact spill codec
 * — the two serialized forms of a GemmPlan.
 *
 * The DBB compressed form is weight-static and config-independent:
 * the encoding of a workload depends only on operand content and
 * the block size, never on the array geometry, SMT depth, or
 * sparsity bound under evaluation. A plan encoded once is therefore
 * valid for every future process that sees the same operands, and
 * re-encoding on every invocation (108 cold encodes per sweep, one
 * per distinct workload per serving restart) is pure waste. Two
 * serialized forms exploit this, at opposite points of the
 * size/speed trade:
 *
 *  - **Store form** (PlanStore, one file per plan): the full plan —
 *    operands, both DBB block arrays, the dense transposed weight
 *    mirror when materialized, and the OperandProfile — laid out so
 *    every section hydrates with a single memcpy from the mapped
 *    image (base/mapped_file.hh). Nothing is re-derived on load; a
 *    warm start is bounded by memory bandwidth, not encode compute.
 *  - **Spill form** (spillEncode/spillDecode, in-RAM): the minimum
 *    from which a bit-identical plan can be rebuilt — dims plus the
 *    two block arrays, mask byte + stored values per block, zero
 *    runs run-length coded with varints; operands, mirror, and
 *    profile are all dropped and re-derived on rehydration (the
 *    encodings are lossless, so the operands come back exactly).
 *    This is what PlanCache's spill tier holds evicted entries in.
 *
 * Store files are versioned and checksummed; load() rejects — never
 * trusts — anything that fails validation: short or truncated
 * files, wrong magic, version mismatch after a format bump, key
 * mismatch (a file renamed or hash-colliding), implausible dims,
 * size/dims disagreement, or payload checksum mismatch (bit rot,
 * torn concurrent write on a non-POSIX filesystem). A rejected or
 * absent file is an ordinary cache miss: the caller re-encodes and
 * save() silently replaces the bad file via an atomic temp+rename,
 * so corruption degrades to a cold start, never to wrong results
 * and never to a fatal error. Readers of one store directory are
 * fully concurrent (files are immutable once published; rename
 * guarantees a reader maps old-or-new, never a mix) and writers
 * race benignly (both produce identical bytes for one key).
 *
 * Checksums use a 4-lane interleaved FNV-1a (planStoreChecksum):
 * the single-stream fold of PlanCache::hashBytes is latency-bound
 * on its 64-bit multiply chain, which would make validation as
 * expensive as the memcpy it guards; four independent streams run
 * at memcpy-like speed and are combined order-dependently at the
 * end. Like hashBytes, it is deterministic across platforms of the
 * same endianness — a store directory is a same-arch artifact, not
 * an interchange format.
 */

#ifndef S2TA_ARCH_PLAN_STORE_HH
#define S2TA_ARCH_PLAN_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/plan_cache.hh"

namespace s2ta {

/** Bump on any layout change; old files are rejected and rebuilt. */
constexpr uint32_t kPlanStoreVersion = 1;

/** 4-lane interleaved FNV-1a over @p len bytes (see file comment). */
uint64_t planStoreChecksum(const void *data, size_t len);

class PlanStore
{
  public:
    /**
     * Open (creating if needed) the store directory. Fatal when the
     * directory cannot be created — a store the user asked for on
     * the command line that can never persist anything is a
     * misconfiguration, not a cache miss.
     */
    explicit PlanStore(std::string dir);

    PlanStore(const PlanStore &) = delete;
    PlanStore &operator=(const PlanStore &) = delete;

    struct LoadResult
    {
        /** Hydrated plan; null on miss or rejection. */
        std::shared_ptr<const CachedPlan> entry;
        /** True when a file existed but failed validation. */
        bool rejected = false;
    };

    /**
     * Hydrate the plan stored under @p key. Absent file = plain
     * miss; present-but-invalid = rejection (both return a null
     * entry and are never fatal). Concurrent callers are safe.
     */
    LoadResult load(uint64_t key) const;

    /**
     * Serialize @p entry under @p key (atomic replace). Returns
     * false on I/O failure — the plan simply stays unpersisted.
     */
    bool save(uint64_t key, const CachedPlan &entry) const;

    const std::string &dir() const { return store_dir; }

    /** File a key serializes to: <dir>/plan_<16-hex-key>.s2ta. */
    std::string pathFor(uint64_t key) const;

    /** Store-form image of @p entry (header + payload). */
    static std::vector<uint8_t> serialize(uint64_t key,
                                          const CachedPlan &entry);

    /**
     * Validate and hydrate a store-form image; null on any
     * validation failure (see file comment for the reject set).
     */
    static std::shared_ptr<const CachedPlan>
    deserialize(const uint8_t *data, size_t len,
                uint64_t expected_key);

  private:
    const std::string store_dir;
};

/**
 * Spill-form image of @p entry: dims + varint/RLE-coded block
 * arrays only (mask byte + stored values per non-empty block, zero
 * runs length-coded). Typically 3-6x smaller than the entry's
 * resident footprint.
 */
std::vector<uint8_t> spillEncode(const CachedPlan &entry);

/**
 * Rebuild a full entry from a spill-form image: operands are
 * reconstructed from the lossless encodings, the profile re-derived
 * from the masks, and the dense mirror re-materialized under
 * build()'s heuristic — bit-identical to the entry that was
 * spilled. Fatal on a malformed image (spill bytes never leave the
 * process; corruption here is a program bug, not an input).
 */
std::shared_ptr<const CachedPlan> spillDecode(const uint8_t *data,
                                              size_t len);

} // namespace s2ta

#endif // S2TA_ARCH_PLAN_STORE_HH
