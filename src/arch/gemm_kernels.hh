/**
 * @file
 * Internal declarations for the runtime-dispatched mask-intersection
 * row-dot kernels.
 *
 * Each SIMD tier lives in its own translation unit compiled with
 * exactly the ISA it needs (see S2TA_ENABLE_X86_64_V2 in
 * CMakeLists.txt); this header carries only declarations so
 * including it never instantiates code under a raised ISA. Callers
 * go through dbbActiveKernel() in gemm_plan.hh — these symbols are
 * exposed for the dispatcher and for the kernel-equivalence property
 * tests, which compare every compiled-in tier against the scalar
 * rank-gather loop on the same block rows. When a tier is compiled
 * out (option off, or a non-x86 target) its entry point is a scalar
 * alias and its probe reports unsupported, so the symbols always
 * link.
 */

#ifndef S2TA_ARCH_GEMM_KERNELS_HH
#define S2TA_ARCH_GEMM_KERNELS_HH

#include <cstdint>

namespace s2ta {

struct DbbBlock;

/** SSSE3 pshufb-expansion row dot (gemm_kernels_v2.cc). */
int32_t dbbDotRowSimdV2(const DbbBlock *a, const DbbBlock *w,
                        int nblocks);

/** True when the SSSE3 tier is compiled in and this CPU has it. */
bool dbbSimdKernelSupportedImpl();

/**
 * AVX2 tier (gemm_kernels_avx2.cc): four blocks per operand expand
 * into one 256-bit register per iteration — twice the SSSE3 batch
 * per shuffle.
 */
int32_t dbbDotRowAvx2(const DbbBlock *a, const DbbBlock *w,
                      int nblocks);

/** True when the AVX2 tier is compiled in and this CPU has it. */
bool dbbAvx2KernelSupportedImpl();

} // namespace s2ta

#endif // S2TA_ARCH_GEMM_KERNELS_HH
