/**
 * @file
 * Internal declarations for the runtime-dispatched mask-intersection
 * row-dot kernels.
 *
 * Each SIMD tier lives in its own translation unit compiled with
 * exactly the ISA it needs (see S2TA_ENABLE_X86_64_V2 in
 * CMakeLists.txt); this header carries only declarations so
 * including it never instantiates code under a raised ISA. Callers
 * go through dbbActiveKernel() in gemm_plan.hh — these symbols are
 * exposed for the dispatcher and for the kernel-equivalence property
 * tests, which compare every compiled-in tier against the scalar
 * rank-gather loop on the same block rows. When a tier is compiled
 * out (option off, or a non-x86 target) its entry point is a scalar
 * alias and its probe reports unsupported, so the symbols always
 * link.
 */

#ifndef S2TA_ARCH_GEMM_KERNELS_HH
#define S2TA_ARCH_GEMM_KERNELS_HH

#include <cstdint>

namespace s2ta {

struct DbbBlock;

/** SSSE3 pshufb-expansion row dot (gemm_kernels_v2.cc). */
int32_t dbbDotRowSimdV2(const DbbBlock *a, const DbbBlock *w,
                        int nblocks);

/** True when the SSSE3 tier is compiled in and this CPU has it. */
bool dbbSimdKernelSupportedImpl();

/**
 * AVX2 tier (gemm_kernels_avx2.cc): four blocks per operand expand
 * into one 256-bit register per iteration — twice the SSSE3 batch
 * per shuffle.
 */
int32_t dbbDotRowAvx2(const DbbBlock *a, const DbbBlock *w,
                      int nblocks);

/** True when the AVX2 tier is compiled in and this CPU has it. */
bool dbbAvx2KernelSupportedImpl();

/**
 * AVX-512 tier (gemm_kernels_avx512.cc): EIGHT blocks per operand
 * expand into one 512-bit register per masked-zeroing vpermi2b
 * (AVX512VBMI), then one 512-bit madd tree contracts 64 dense INT8
 * lanes per iteration.
 */
int32_t dbbDotRowAvx512(const DbbBlock *a, const DbbBlock *w,
                        int nblocks);

/** True when the AVX-512 intersection kernel is compiled in and
 *  this CPU has avx512bw + avx512vbmi. */
bool dbbAvx512KernelSupportedImpl();

/**
 * VNNI dense-mirror dot product (sub-feature of the AVX-512 tier):
 * one vpdpbusd contracts 64 INT8 pairs per instruction. vpdpbusd is
 * u8 x s8, so the signed result is recovered exactly as
 * dp(a ^ 0x80, w) - 128 * dp(1, w) — bit-identical to the scalar
 * INT32 wrapping accumulation.
 */
int32_t dbbDenseDotVnni(const int8_t *a, const int8_t *w, int k);

/** True when the VNNI dense dot is compiled in and this CPU has
 *  avx512vnni (probed independently of the intersection kernel). */
bool dbbVnniKernelSupportedImpl();

/**
 * VPOPCNTDQ profile derivation (sub-feature of the AVX-512 tier):
 * adds the per-position non-zero counts of one encoded vector of
 * bz == 8 blocks into hist[block * 8 + bit] and returns the
 * vector's total mask popcount. Groups of 8 blocks whose full
 * 64-position window fits inside @p hist_len go through the SIMD
 * path (packed-mask vpopcntq for the total, vpmovm2b widening for
 * the histogram); trailing blocks fall back to per-bit updates.
 * Bit-identical to the scalar mask loops in
 * OperandProfile::fromDbb.
 */
int64_t dbbProfileVectorAvx512(const DbbBlock *blocks, int nblocks,
                               int32_t *hist, int hist_len);

/** True when the VPOPCNTDQ profile path is compiled in and this CPU
 *  has avx512vpopcntdq + avx512bw. */
bool dbbVpopcntKernelSupportedImpl();

} // namespace s2ta

#endif // S2TA_ARCH_GEMM_KERNELS_HH
