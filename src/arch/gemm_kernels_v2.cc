/**
 * @file
 * x86-64-v2 (SSSE3) implementation of the mask-intersection row
 * dot product.
 *
 * The scalar kernel walks the AND of the two positional masks and
 * gathers each matched value by rank — O(matched nnz) work but a
 * serial dependency chain of popcounts and byte loads per match.
 * This kernel inverts the trade: each compressed block is expanded
 * to its dense 8-lane form with a single pshufb whose shuffle
 * control is the mask's expansion permutation (a 256-entry constant
 * table: lane i reads stored slot rank(mask, i) when bit i is set
 * and zeroes otherwise, exactly the steering the DP1M4/DP4M8 mux
 * network computes in hardware, Fig. 6). Two blocks per operand are
 * expanded per iteration and contracted with the same sign-extend +
 * pmaddwd tree as the dense kernel. Skipped positions contribute
 * exact zeros and INT32 wraparound addition is order-independent,
 * so the result is bit-identical to dbbDotRow.
 *
 * This translation unit is the only one compiled with SSSE3 codegen
 * (see S2TA_ENABLE_X86_64_V2 in CMakeLists.txt); callers reach it
 * through dbbActiveKernel()'s runtime dispatch, which consults the
 * cpuid probe below and falls back to the scalar kernel on older
 * CPUs or when the option is off.
 */

#include "arch/gemm_kernels.hh"
#include "core/dbb.hh"

#if defined(S2TA_X86_64_V2) && defined(__SSSE3__)
#include <tmmintrin.h>
#define S2TA_HAVE_SIMD_V2 1
#endif

namespace s2ta {

#ifdef S2TA_HAVE_SIMD_V2

namespace {

/**
 * Per-mask pshufb control expanding compressed storage to dense
 * lanes: byte i holds rank(mask, i) when bit i is set, 0x80 (lane
 * zeroed by pshufb) otherwise.
 */
struct ExpandTable
{
    alignas(16) uint8_t ctrl[256][8];
};

constexpr ExpandTable kExpand = [] {
    ExpandTable t{};
    for (unsigned m = 0; m < 256; ++m) {
        unsigned rank = 0;
        for (int i = 0; i < 8; ++i) {
            if ((m >> i) & 1u)
                t.ctrl[m][i] = static_cast<uint8_t>(rank++);
            else
                t.ctrl[m][i] = 0x80;
        }
    }
    return t;
}();

/**
 * Expand two consecutive blocks of one operand into a 16-byte
 * dense vector: block b0 in lanes 0-7, block b1 in lanes 8-15.
 * The upper control bytes are offset by 8 to index b1's values in
 * the combined register; 0x80 zero-lanes stay >= 0x80 under the OR,
 * so pshufb still clears them.
 */
inline __m128i
expandPair(const DbbBlock &b0, const DbbBlock &b1)
{
    // &values (not values.data()): even a trivial std::array
    // accessor instantiated here would be a comdat compiled under
    // this TU's raised ISA — see the note in dbbDotRowSimdV2.
    const __m128i vals = _mm_unpacklo_epi64(
        _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(&b0.values)),
        _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(&b1.values)));
    const __m128i ctrl = _mm_or_si128(
        _mm_unpacklo_epi64(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                kExpand.ctrl[b0.mask])),
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                kExpand.ctrl[b1.mask]))),
        _mm_set_epi64x(0x0808080808080808ll, 0));
    return _mm_shuffle_epi8(vals, ctrl);
}

/** Exact INT8x16 dot product folded into an INT32x4 accumulator. */
inline __m128i
maddAccumulate(__m128i acc, __m128i av, __m128i wv)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i alo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, av), 8);
    const __m128i ahi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, av), 8);
    const __m128i wlo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, wv), 8);
    const __m128i whi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, wv), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, wlo));
    return _mm_add_epi32(acc, _mm_madd_epi16(ahi, whi));
}

} // anonymous namespace

int32_t
dbbDotRowSimdV2(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    // NOTE: this branch must not call inline functions from shared
    // headers (dbbDotBlocks, maskPopcount, ...): their comdat
    // copies would be compiled with this TU's raised ISA and the
    // linker may keep them for the whole program, breaking the
    // runtime scalar fallback on pre-SSSE3 CPUs. The odd tail
    // therefore reuses the SIMD path with an all-zero partner
    // block (mask 0 expands to all-zero lanes, contributing exact
    // zeros).
    __m128i acc = _mm_setzero_si128();
    int b = 0;
    for (; b + 2 <= nblocks; b += 2) {
        acc = maddAccumulate(acc, expandPair(a[b], a[b + 1]),
                             expandPair(w[b], w[b + 1]));
    }
    if (b < nblocks) {
        const DbbBlock zero{};
        acc = maddAccumulate(acc, expandPair(a[b], zero),
                             expandPair(w[b], zero));
    }
    alignas(16) int32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

bool
dbbSimdKernelSupportedImpl()
{
    return __builtin_cpu_supports("ssse3");
}

#else // !S2TA_HAVE_SIMD_V2

// Built without the x86-64-v2 option (or on a non-SSSE3 target):
// keep the symbols so the dispatcher links, but report the kernel
// unavailable — dbbActiveKernel() then always picks the scalar
// path and this alias is never called in anger.
int32_t
dbbDotRowSimdV2(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    return dbbDotRow(a, w, nblocks);
}

bool
dbbSimdKernelSupportedImpl()
{
    return false;
}

#endif // S2TA_HAVE_SIMD_V2

} // namespace s2ta
