#include "arch/event_counts.hh"

#include <cmath>

namespace s2ta {

void
EventCounts::add(const EventCounts &o)
{
    cycles += o.cycles;
    logical_macs += o.logical_macs;
    macs_executed += o.macs_executed;
    macs_zero += o.macs_zero;
    macs_gated += o.macs_gated;
    operand_reg_bytes += o.operand_reg_bytes;
    operand_reg_gated_bytes += o.operand_reg_gated_bytes;
    accum_updates += o.accum_updates;
    accum_gated += o.accum_gated;
    fifo_pushes += o.fifo_pushes;
    fifo_pops += o.fifo_pops;
    mux_selects += o.mux_selects;
    wgt_sram_bytes += o.wgt_sram_bytes;
    act_sram_read_bytes += o.act_sram_read_bytes;
    act_sram_write_bytes += o.act_sram_write_bytes;
    dap_comparisons += o.dap_comparisons;
    actfn_elements += o.actfn_elements;
    dma_bytes += o.dma_bytes;
}

void
EventCounts::scale(double factor)
{
    auto sc = [factor](int64_t &v) {
        v = static_cast<int64_t>(
            std::llround(static_cast<double>(v) * factor));
    };
    sc(cycles);
    sc(logical_macs);
    sc(macs_executed);
    sc(macs_zero);
    sc(macs_gated);
    sc(operand_reg_bytes);
    sc(operand_reg_gated_bytes);
    sc(accum_updates);
    sc(accum_gated);
    sc(fifo_pushes);
    sc(fifo_pops);
    sc(mux_selects);
    sc(wgt_sram_bytes);
    sc(act_sram_read_bytes);
    sc(act_sram_write_bytes);
    sc(dap_comparisons);
    sc(actfn_elements);
    sc(dma_bytes);
}

} // namespace s2ta
