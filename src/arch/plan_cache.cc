#include "arch/plan_cache.hh"

#include <cstring>

#include "arch/plan_store.hh"
#include "base/fault_injection.hh"
#include "obs/metrics.hh"

namespace s2ta {

uint64_t
PlanCache::hashBytes(const void *data, size_t len, uint64_t seed)
{
    // FNV-1a, consumed in 8-byte strides: each stride is folded as
    // one 64-bit unit (xor + multiply), which keeps the single
    // sequential pass close to memory speed while remaining
    // deterministic across platforms of the same endianness.
    constexpr uint64_t kPrime = 0x100000001b3ull;
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        uint64_t chunk;
        std::memcpy(&chunk, p + i, 8);
        h = (h ^ chunk) * kPrime;
    }
    for (; i < len; ++i)
        h = (h ^ p[i]) * kPrime;
    return h;
}

uint64_t
PlanCache::fingerprint(const GemmProblem &p)
{
    uint64_t key = 0x5157454550ull; // arbitrary domain tag
    key = combine(key, static_cast<uint64_t>(p.m));
    key = combine(key, static_cast<uint64_t>(p.k));
    key = combine(key, static_cast<uint64_t>(p.n));
    key = combine(key, hashBytes(p.a.data(), p.a.size()));
    key = combine(key, hashBytes(p.w.data(), p.w.size()));
    return key;
}

int64_t
PlanCache::entryBytes(const CachedPlan &e)
{
    int64_t bytes = static_cast<int64_t>(e.problem.a.size()) +
                    static_cast<int64_t>(e.problem.w.size());
    bytes += static_cast<int64_t>(e.plan.act().vectors()) *
             e.plan.act().blocksPerVector() *
             static_cast<int64_t>(sizeof(DbbBlock));
    bytes += static_cast<int64_t>(e.plan.wgt().vectors()) *
             e.plan.wgt().blocksPerVector() *
             static_cast<int64_t>(sizeof(DbbBlock));
    if (e.plan.wgtDenseT() != nullptr)
        bytes += static_cast<int64_t>(e.problem.n) * e.problem.k;
    return bytes;
}

void
PlanCache::attachStore(PlanStore *s)
{
    std::lock_guard<std::mutex> lk(mu);
    store = s;
}

void
PlanCache::setFaultInjector(const FaultInjector *fi)
{
    std::lock_guard<std::mutex> lk(mu);
    fault = fi;
}

PlanCache::Lookup
PlanCache::lookupLocked(uint64_t key)
{
    Lookup l;
    const auto it = slots.find(key);
    if (it != slots.end()) {
        ++counters.hits;
        S2TA_METRIC_INC("plan_cache.hits");
        lru.splice(lru.begin(), lru, it->second.lru_it);
        l.entry = it->second.entry;
        return l;
    }
    const auto sit = spill_slots.find(key);
    if (sit != spill_slots.end()) {
        // Hand out a reference to the compact image; the caller
        // rehydrates outside the lock and re-inserts the entry
        // into the resident tier. The image stays parked here so
        // the entry's next eviction is an LRU touch, not a
        // re-encode.
        ++counters.spill_hits;
        S2TA_METRIC_INC("plan_cache.spill_rehydrates");
        spill_lru.splice(spill_lru.begin(), spill_lru,
                         sit->second.lru_it);
        l.spilled = sit->second.bytes;
    }
    return l;
}

void
PlanCache::parkLocked(
    uint64_t key, std::shared_ptr<const std::vector<uint8_t>> bytes)
{
    // A parked image can already exist (this entry's own earlier
    // rehydration, or a racing lane's encode); touch it and drop
    // the duplicate (contents are deterministic).
    const auto old = spill_slots.find(key);
    if (old != spill_slots.end()) {
        spill_lru.splice(spill_lru.begin(), spill_lru,
                         old->second.lru_it);
        return;
    }
    counters.spill_bytes += static_cast<int64_t>(bytes->size());
    ++counters.spill_entries;
    S2TA_METRIC_INC("plan_cache.spills");
    spill_lru.push_front(key);
    spill_slots.emplace(
        key, SpillSlot{std::move(bytes), spill_lru.begin()});
    // Hold the spill byte budget, but never drop the entry just
    // spilled (mirroring the resident tier: one over-budget
    // workload must still round-trip).
    while (counters.spill_bytes > spill_max_bytes &&
           spill_slots.size() > 1) {
        const uint64_t victim = spill_lru.back();
        spill_lru.pop_back();
        const auto vit = spill_slots.find(victim);
        counters.spill_bytes -=
            static_cast<int64_t>(vit->second.bytes->size());
        --counters.spill_entries;
        spill_slots.erase(vit);
        ++counters.spill_evictions;
    }
}

void
PlanCache::insertLocked(uint64_t key,
                        std::shared_ptr<const CachedPlan> entry,
                        std::vector<PendingSpill> *pending)
{
    const auto it = slots.find(key);
    if (it != slots.end()) {
        // A racing thread built the same workload first; keep the
        // resident copy (contents are deterministic and identical).
        lru.splice(lru.begin(), lru, it->second.lru_it);
        return;
    }
    lru.push_front(key);
    counters.resident_bytes += entryBytes(*entry);
    ++counters.entries;
    slots.emplace(key, Slot{std::move(entry), lru.begin()});
    while (((max_entries > 0 && slots.size() > max_entries) ||
            (max_bytes > 0 &&
             counters.resident_bytes > max_bytes)) &&
           slots.size() > 1) {
        // Never evict the just-inserted entry (front of the LRU):
        // an over-budget single workload must still be usable.
        const uint64_t victim = lru.back();
        lru.pop_back();
        const auto vit = slots.find(victim);
        counters.resident_bytes -= entryBytes(*vit->second.entry);
        --counters.entries;
        if (spill_max_bytes > 0) {
            // Move the victim toward the spill tier. With an image
            // already parked (the rehydrate-use-re-evict cycle),
            // re-eviction is an LRU touch; otherwise the encode is
            // deferred to after the lock is released — an O(plan)
            // pass must not serialize concurrent lanes.
            const auto parked = spill_slots.find(victim);
            if (parked != spill_slots.end()) {
                spill_lru.splice(spill_lru.begin(), spill_lru,
                                 parked->second.lru_it);
            } else {
                pending->push_back(
                    PendingSpill{victim, vit->second.entry});
            }
        }
        slots.erase(vit);
        ++counters.evictions;
        S2TA_METRIC_INC("plan_cache.evictions");
    }
}

void
PlanCache::insertAndSpill(uint64_t key,
                          std::shared_ptr<const CachedPlan> entry)
{
    std::vector<PendingSpill> pending;
    {
        std::lock_guard<std::mutex> lk(mu);
        insertLocked(key, std::move(entry), &pending);
    }
    for (PendingSpill &ps : pending) {
        {
            std::lock_guard<std::mutex> lk(mu);
            if (fault &&
                fault->shouldFail(FaultSite::SpillEncode, ps.key)) {
                // Injected encode failure: the victim is dropped
                // outright instead of parked. Degradation, not an
                // error — its next use hydrates from the store or
                // re-encodes cold.
                ++counters.spill_drops;
                continue;
            }
        }
        auto bytes = std::make_shared<const std::vector<uint8_t>>(
            spillEncode(*ps.entry));
        std::lock_guard<std::mutex> lk(mu);
        parkLocked(ps.key, std::move(bytes));
    }
}

void
PlanCache::dropSpillLocked(uint64_t key)
{
    const auto it = spill_slots.find(key);
    if (it == spill_slots.end())
        return;
    counters.spill_bytes -=
        static_cast<int64_t>(it->second.bytes->size());
    --counters.spill_entries;
    spill_lru.erase(it->second.lru_it);
    spill_slots.erase(it);
}

std::shared_ptr<const CachedPlan>
PlanCache::rehydrate(
    uint64_t key, std::shared_ptr<const std::vector<uint8_t>> bytes)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (fault &&
            fault->shouldFail(FaultSite::SpillDecode, key)) {
            // Injected decode failure: drop the (now suspect)
            // parked image and report a miss; the caller degrades
            // to the store / cold path. The lookup was not served
            // by the spill tier after all, so take back the
            // spill_hit the lookup optimistically counted.
            ++counters.spill_decode_faults;
            --counters.spill_hits;
            S2TA_METRIC_INC("plan_cache.spill_decode_faults");
            dropSpillLocked(key);
            return nullptr;
        }
    }
    // Rehydrate outside the lock (decode + operand reconstruction +
    // profile/mirror re-derivation) and promote back into the
    // resident tier.
    auto entry = spillDecode(bytes->data(), bytes->size());
    insertAndSpill(key, entry);
    return entry;
}

std::shared_ptr<const CachedPlan>
PlanCache::loadFromStore(uint64_t key)
{
    PlanStore *s;
    {
        std::lock_guard<std::mutex> lk(mu);
        s = store;
    }
    if (s == nullptr)
        return nullptr;
    // File I/O and hydration run outside the cache lock.
    PlanStore::LoadResult r = s->load(key);
    {
        std::lock_guard<std::mutex> lk(mu);
        if (r.entry) {
            ++counters.store_hits;
            S2TA_METRIC_INC("plan_cache.store_hits");
        } else if (r.rejected) {
            // Corrupt / truncated / stale-version file: treated as
            // a miss; the rebuild below overwrites it.
            ++counters.store_rejects;
        } else {
            ++counters.store_misses;
        }
    }
    if (r.entry)
        insertAndSpill(key, r.entry);
    return r.entry;
}

void
PlanCache::saveToStore(uint64_t key, const CachedPlan &entry)
{
    PlanStore *s;
    {
        std::lock_guard<std::mutex> lk(mu);
        s = store;
    }
    if (s == nullptr)
        return;
    if (s->save(key, entry)) {
        std::lock_guard<std::mutex> lk(mu);
        ++counters.store_saves;
        S2TA_METRIC_INC("plan_cache.store_saves");
    }
}

std::shared_ptr<const CachedPlan>
PlanCache::acquire(const GemmProblem &p, int bz, bool dense_mirror)
{
    auto entry = acquireKeyed(fingerprint(p), bz, dense_mirror,
                              [&p] { return p; });
    // Cross-check the geometry against the resident operands: a
    // 64-bit fingerprint collision between distinct workloads
    // would otherwise return a wrong plan silently. (Same-dims
    // content collisions remain theoretically possible at ~2^-64;
    // a full memcmp would cost as much as the hash itself.)
    s2ta_assert(entry->problem.m == p.m &&
                entry->problem.k == p.k &&
                entry->problem.n == p.n,
                "plan cache fingerprint collision (%dx%dx%d vs "
                "%dx%dx%d)", p.m, p.k, p.n, entry->problem.m,
                entry->problem.k, entry->problem.n);
    return entry;
}

std::shared_ptr<const CachedPlan>
PlanCache::acquireKeyed(uint64_t key, int bz, bool dense_mirror,
                        const std::function<GemmProblem()> &lower)
{
    key = combine(key, static_cast<uint64_t>(bz) |
                           (dense_mirror ? 0x100u : 0u));
    Lookup l;
    {
        std::lock_guard<std::mutex> lk(mu);
        l = lookupLocked(key);
    }
    if (l.entry)
        return l.entry;
    if (l.spilled) {
        if (auto entry = rehydrate(key, std::move(l.spilled)))
            return entry;
    }
    if (auto entry = loadFromStore(key))
        return entry;
    {
        std::lock_guard<std::mutex> lk(mu);
        ++counters.misses;
    }
    S2TA_METRIC_INC("plan_cache.misses");
    // Lower and encode outside the lock: plan construction is the
    // expensive part and must not serialize concurrent sweep lanes.
    auto entry =
        std::make_shared<const CachedPlan>(lower(), bz, dense_mirror);
    insertAndSpill(key, entry);
    saveToStore(key, *entry);
    return entry;
}

std::vector<std::shared_ptr<const CachedPlan>>
PlanCache::acquireLayer(
    uint64_t key, int groups, int bz, bool dense_mirror,
    const std::function<std::vector<GemmProblem>()> &lower_all,
    const std::function<GemmProblem(int)> &lower_one)
{
    s2ta_assert(groups >= 1, "groups %d", groups);
    const uint64_t base = combine(
        key, static_cast<uint64_t>(bz) |
                 (dense_mirror ? 0x100u : 0u));
    std::vector<std::shared_ptr<const CachedPlan>> out(
        static_cast<size_t>(groups));
    std::vector<uint64_t> keys(static_cast<size_t>(groups));
    for (int g = 0; g < groups; ++g)
        keys[static_cast<size_t>(g)] =
            combine(base, static_cast<uint64_t>(g));

    std::vector<Lookup> looks(static_cast<size_t>(groups));
    bool has_store;
    {
        std::lock_guard<std::mutex> lk(mu);
        has_store = store != nullptr;
        for (int g = 0; g < groups; ++g)
            looks[static_cast<size_t>(g)] =
                lookupLocked(keys[static_cast<size_t>(g)]);
    }
    int absent = 0;
    for (int g = 0; g < groups; ++g) {
        auto &l = looks[static_cast<size_t>(g)];
        auto &slot = out[static_cast<size_t>(g)];
        if (l.entry) {
            slot = std::move(l.entry);
        } else {
            if (l.spilled)
                slot = rehydrate(keys[static_cast<size_t>(g)],
                                 std::move(l.spilled));
            if (!slot && has_store)
                slot = loadFromStore(keys[static_cast<size_t>(g)]);
            if (!slot)
                ++absent;
        }
    }
    if (absent == 0)
        return out;
    {
        std::lock_guard<std::mutex> lk(mu);
        counters.misses += absent;
    }
    S2TA_METRIC_ADD("plan_cache.misses", absent);

    // Whole-layer miss: lower every group in one batched pass (the
    // activation tensor is walked once for all groups). Partial
    // miss (a few groups evicted mid-sweep or individually
    // corrupted on disk): re-lower only the absent ones instead of
    // redoing the whole layer.
    std::vector<GemmProblem> problems;
    if (absent == groups) {
        problems = lower_all();
        s2ta_assert(problems.size() == static_cast<size_t>(groups),
                    "lower_all returned %zu of %d groups",
                    problems.size(), groups);
    }
    for (int g = 0; g < groups; ++g) {
        auto &slot = out[static_cast<size_t>(g)];
        if (slot)
            continue;
        slot = std::make_shared<const CachedPlan>(
            problems.empty()
                ? lower_one(g)
                : std::move(problems[static_cast<size_t>(g)]),
            bz, dense_mirror);
        insertAndSpill(keys[static_cast<size_t>(g)], slot);
        saveToStore(keys[static_cast<size_t>(g)], *slot);
    }
    return out;
}

DapStats
PlanCache::dapStats(uint64_t key,
                    const std::function<DapStats()> &compute)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        const auto it = dap_memo.find(key);
        if (it != dap_memo.end()) {
            ++counters.dap_hits;
            return it->second;
        }
        ++counters.dap_misses;
    }
    const DapStats st = compute();
    std::lock_guard<std::mutex> lk(mu);
    dap_memo.emplace(key, st);
    return st;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu);
    return counters;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lk(mu);
    slots.clear();
    lru.clear();
    spill_slots.clear();
    spill_lru.clear();
    dap_memo.clear();
    counters.entries = 0;
    counters.resident_bytes = 0;
    counters.spill_entries = 0;
    counters.spill_bytes = 0;
}

} // namespace s2ta
