#include "arch/plan_cache.hh"

#include <cstring>

namespace s2ta {

uint64_t
PlanCache::hashBytes(const void *data, size_t len, uint64_t seed)
{
    // FNV-1a, consumed in 8-byte strides: each stride is folded as
    // one 64-bit unit (xor + multiply), which keeps the single
    // sequential pass close to memory speed while remaining
    // deterministic across platforms of the same endianness.
    constexpr uint64_t kPrime = 0x100000001b3ull;
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        uint64_t chunk;
        std::memcpy(&chunk, p + i, 8);
        h = (h ^ chunk) * kPrime;
    }
    for (; i < len; ++i)
        h = (h ^ p[i]) * kPrime;
    return h;
}

uint64_t
PlanCache::fingerprint(const GemmProblem &p)
{
    uint64_t key = 0x5157454550ull; // arbitrary domain tag
    key = combine(key, static_cast<uint64_t>(p.m));
    key = combine(key, static_cast<uint64_t>(p.k));
    key = combine(key, static_cast<uint64_t>(p.n));
    key = combine(key, hashBytes(p.a.data(), p.a.size()));
    key = combine(key, hashBytes(p.w.data(), p.w.size()));
    return key;
}

int64_t
PlanCache::entryBytes(const CachedPlan &e)
{
    int64_t bytes = static_cast<int64_t>(e.problem.a.size()) +
                    static_cast<int64_t>(e.problem.w.size());
    bytes += static_cast<int64_t>(e.plan.act().vectors()) *
             e.plan.act().blocksPerVector() *
             static_cast<int64_t>(sizeof(DbbBlock));
    bytes += static_cast<int64_t>(e.plan.wgt().vectors()) *
             e.plan.wgt().blocksPerVector() *
             static_cast<int64_t>(sizeof(DbbBlock));
    if (e.plan.wgtDenseT() != nullptr)
        bytes += static_cast<int64_t>(e.problem.n) * e.problem.k;
    return bytes;
}

std::shared_ptr<const CachedPlan>
PlanCache::lookupLocked(uint64_t key)
{
    const auto it = slots.find(key);
    if (it == slots.end()) {
        ++counters.misses;
        return nullptr;
    }
    ++counters.hits;
    lru.splice(lru.begin(), lru, it->second.lru_it);
    return it->second.entry;
}

void
PlanCache::insertLocked(uint64_t key,
                        std::shared_ptr<const CachedPlan> entry)
{
    const auto it = slots.find(key);
    if (it != slots.end()) {
        // A racing thread built the same workload first; keep the
        // resident copy (contents are deterministic and identical).
        lru.splice(lru.begin(), lru, it->second.lru_it);
        return;
    }
    lru.push_front(key);
    counters.resident_bytes += entryBytes(*entry);
    ++counters.entries;
    slots.emplace(key, Slot{std::move(entry), lru.begin()});
    while (((max_entries > 0 && slots.size() > max_entries) ||
            (max_bytes > 0 &&
             counters.resident_bytes > max_bytes)) &&
           slots.size() > 1) {
        // Never evict the just-inserted entry (front of the LRU):
        // an over-budget single workload must still be usable.
        const uint64_t victim = lru.back();
        lru.pop_back();
        const auto vit = slots.find(victim);
        counters.resident_bytes -= entryBytes(*vit->second.entry);
        --counters.entries;
        slots.erase(vit);
        ++counters.evictions;
    }
}

std::shared_ptr<const CachedPlan>
PlanCache::acquire(const GemmProblem &p, int bz, bool dense_mirror)
{
    auto entry = acquireKeyed(fingerprint(p), bz, dense_mirror,
                              [&p] { return p; });
    // Cross-check the geometry against the resident operands: a
    // 64-bit fingerprint collision between distinct workloads
    // would otherwise return a wrong plan silently. (Same-dims
    // content collisions remain theoretically possible at ~2^-64;
    // a full memcmp would cost as much as the hash itself.)
    s2ta_assert(entry->problem.m == p.m &&
                entry->problem.k == p.k &&
                entry->problem.n == p.n,
                "plan cache fingerprint collision (%dx%dx%d vs "
                "%dx%dx%d)", p.m, p.k, p.n, entry->problem.m,
                entry->problem.k, entry->problem.n);
    return entry;
}

std::shared_ptr<const CachedPlan>
PlanCache::acquireKeyed(uint64_t key, int bz, bool dense_mirror,
                        const std::function<GemmProblem()> &lower)
{
    key = combine(key, static_cast<uint64_t>(bz) |
                           (dense_mirror ? 0x100u : 0u));
    {
        std::lock_guard<std::mutex> lk(mu);
        if (auto hit = lookupLocked(key))
            return hit;
    }
    // Lower and encode outside the lock: plan construction is the
    // expensive part and must not serialize concurrent sweep lanes.
    auto entry =
        std::make_shared<const CachedPlan>(lower(), bz, dense_mirror);
    std::lock_guard<std::mutex> lk(mu);
    insertLocked(key, entry);
    return entry;
}

std::vector<std::shared_ptr<const CachedPlan>>
PlanCache::acquireLayer(
    uint64_t key, int groups, int bz, bool dense_mirror,
    const std::function<std::vector<GemmProblem>()> &lower_all,
    const std::function<GemmProblem(int)> &lower_one)
{
    s2ta_assert(groups >= 1, "groups %d", groups);
    const uint64_t base = combine(
        key, static_cast<uint64_t>(bz) |
                 (dense_mirror ? 0x100u : 0u));
    std::vector<std::shared_ptr<const CachedPlan>> out(
        static_cast<size_t>(groups));

    int absent = 0;
    {
        std::lock_guard<std::mutex> lk(mu);
        for (int g = 0; g < groups; ++g) {
            out[static_cast<size_t>(g)] = lookupLocked(
                combine(base, static_cast<uint64_t>(g)));
            if (!out[static_cast<size_t>(g)])
                ++absent;
        }
    }
    if (absent == 0)
        return out;

    // Whole-layer miss: lower every group in one batched pass (the
    // activation tensor is walked once for all groups). Partial
    // miss (a few groups evicted mid-sweep): re-lower only the
    // absent ones instead of redoing the whole layer.
    std::vector<GemmProblem> problems;
    if (absent == groups) {
        problems = lower_all();
        s2ta_assert(problems.size() == static_cast<size_t>(groups),
                    "lower_all returned %zu of %d groups",
                    problems.size(), groups);
    }
    for (int g = 0; g < groups; ++g) {
        auto &slot = out[static_cast<size_t>(g)];
        if (slot)
            continue;
        slot = std::make_shared<const CachedPlan>(
            problems.empty()
                ? lower_one(g)
                : std::move(problems[static_cast<size_t>(g)]),
            bz, dense_mirror);
        std::lock_guard<std::mutex> lk(mu);
        insertLocked(combine(base, static_cast<uint64_t>(g)), slot);
    }
    return out;
}

DapStats
PlanCache::dapStats(uint64_t key,
                    const std::function<DapStats()> &compute)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        const auto it = dap_memo.find(key);
        if (it != dap_memo.end()) {
            ++counters.dap_hits;
            return it->second;
        }
        ++counters.dap_misses;
    }
    const DapStats st = compute();
    std::lock_guard<std::mutex> lk(mu);
    dap_memo.emplace(key, st);
    return st;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu);
    return counters;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lk(mu);
    slots.clear();
    lru.clear();
    dap_memo.clear();
    counters.entries = 0;
    counters.resident_bytes = 0;
}

} // namespace s2ta
