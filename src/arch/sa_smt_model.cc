#include <algorithm>

#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "core/dbb.hh"

namespace s2ta {

SaSmtModel::SaSmtModel(ArrayConfig cfg_) : ArrayModel(cfg_)
{
    s2ta_assert(cfg.kind == ArchKind::SaSmt, "SaSmtModel kind");
}

int64_t
SaSmtModel::queueCycles(const std::vector<int> &arrivals,
                        int queue_depth)
{
    s2ta_assert(queue_depth >= 1, "queue depth %d", queue_depth);
    int64_t cycles = 0;
    int queue = 0;
    for (int arr : arrivals) {
        s2ta_assert(arr >= 0, "negative arrival count");
        // Each cycle the MAC pops one entry; the streams advance
        // (delivering 'arr' non-zero pairs) only once the FIFO has
        // room for all of them, otherwise the wavefront stalls.
        while (true) {
            ++cycles;
            if (queue > 0)
                --queue;
            if (queue + arr <= queue_depth) {
                queue += arr;
                break;
            }
        }
    }
    // Drain what is still queued after the streams finish.
    cycles += queue;
    return cycles;
}

void
SaSmtModel::simulate(const GemmPlan &plan, const RunOptions &opt,
                     GemmRun &out) const
{
    const GemmProblem &p = plan.problem();
    const bool scalar = usesScalarEngine(plan, opt);
    const OperandProfile prof = profileFor(plan, opt);
    EventCounts &ev = out.events;
    const int tcount = cfg.smt.threads;
    const int qdepth = cfg.smt.queue_depth;
    // Arrival slots per thread: K is split across threads.
    const int slots_per_thread = (p.k + tcount - 1) / tcount;

    // ---- Event totals (exact, closed form) ----------------------
    // Only position-matched non-zero pairs are enqueued and MACed.
    ev.macs_executed = prof.matched_products;
    const int64_t pe_slots =
        static_cast<int64_t>(p.m) * p.n * slots_per_thread;
    // MAC idle cycles burn clock energy only.
    ev.macs_gated = std::max<int64_t>(0, pe_slots - ev.macs_executed);

    // Streams shift every cycle; zero bytes are latch-gated like
    // ZVCG (the zero detection already exists for the skip logic).
    const int64_t moves = 2ll * p.m * p.n * p.k;
    const int64_t active_moves =
        static_cast<int64_t>(p.n) * prof.act_nnz +
        static_cast<int64_t>(p.m) * prof.wgt_nnz;
    ev.operand_reg_bytes = active_moves;
    ev.operand_reg_gated_bytes = moves - active_moves;

    // Staging FIFO: one push and one pop per matched pair.
    ev.fifo_pushes = prof.matched_products;
    ev.fifo_pops = prof.matched_products;

    ev.accum_updates = prof.matched_products;
    ev.accum_gated = std::max<int64_t>(0,
        pe_slots - prof.matched_products);

    const TileGrid grid = tileGrid(p.m, p.n);
    ev.act_sram_read_bytes =
        static_cast<int64_t>(grid.col_tiles) * p.m * p.k;
    ev.wgt_sram_bytes =
        static_cast<int64_t>(grid.row_tiles) * p.k * p.n;
    ev.act_sram_write_bytes = static_cast<int64_t>(p.m) * p.n;
    ev.actfn_elements = static_cast<int64_t>(p.m) * p.n;

    // ---- Tile timing (sampled queue simulation) -----------------
    // The tile finishes when its slowest PE drains; we simulate the
    // queue automaton for a deterministic sample of PEs in a sample
    // of tiles and use the per-tile maximum. The fast engine reads
    // non-zero tests from the cached masks instead of the dense
    // operands; the booleans (and so the cycle totals) are
    // identical.
    //
    // The whole sample schedule is drawn serially first, in exactly
    // the order the serial loop would consume the RNG; the
    // expensive part (arrival histograms + queue automata) then
    // fans the sampled tiles across opt.shard_pool when set. Each
    // tile writes only its own worst-PE slot and the per-tile
    // results are reduced in tile order, so the cycle totals are
    // bitwise identical at any lane count (and with the pool off).
    Rng rng(opt.seed);
    const int64_t total_tiles = grid.tiles();
    const int sim_tiles = static_cast<int>(std::min<int64_t>(
        total_tiles, std::max(1, opt.smt_sample_tiles)));
    const int64_t fill = cfg.tileRows() + cfg.tileCols();
    const int samples = std::max(1, opt.smt_sample_pes);

    std::vector<int> pe_i(static_cast<size_t>(sim_tiles) * samples);
    std::vector<int> pe_j(static_cast<size_t>(sim_tiles) * samples);
    for (int s = 0; s < sim_tiles; ++s) {
        const int tr = static_cast<int>(
            rng.uniformInt(0, grid.row_tiles - 1));
        const int tc = static_cast<int>(
            rng.uniformInt(0, grid.col_tiles - 1));
        const int row0 = tr * grid.eff_rows;
        const int col0 = tc * grid.eff_cols;
        const int rows = std::min(grid.eff_rows, p.m - row0);
        const int cols = std::min(grid.eff_cols, p.n - col0);
        for (int t = 0; t < samples; ++t) {
            const size_t slot =
                static_cast<size_t>(s) * samples + t;
            pe_i[slot] = row0 + static_cast<int>(
                                    rng.uniformInt(0, rows - 1));
            pe_j[slot] = col0 + static_cast<int>(
                                    rng.uniformInt(0, cols - 1));
        }
    }

    std::vector<int64_t> tile_worst(static_cast<size_t>(sim_tiles),
                                    0);
    const auto simTile = [&](int s) {
        std::vector<int> arrivals(
            static_cast<size_t>(slots_per_thread));
        int64_t worst = 0;
        for (int t = 0; t < samples; ++t) {
            const size_t slot =
                static_cast<size_t>(s) * samples + t;
            const int i = pe_i[slot];
            const int j = pe_j[slot];
            // Thread th owns the contiguous K chunk
            // [th*slots_per_thread, ...).
            if (scalar) {
                for (int sl = 0; sl < slots_per_thread; ++sl) {
                    int arr = 0;
                    for (int th = 0; th < tcount; ++th) {
                        const int kk = th * slots_per_thread + sl;
                        if (kk >= p.k)
                            continue;
                        if (p.actAt(i, kk) != 0 &&
                            p.wgtAt(kk, j) != 0)
                            ++arr;
                    }
                    arrivals[static_cast<size_t>(sl)] = arr;
                }
            } else {
                // DBB-native sampling: one mask AND yields all
                // matched positions of a block pair at once, so
                // building the arrival histogram is O(matched)
                // instead of O(k) per sampled PE. Counts are
                // identical to the per-element scan (tail padding
                // positions are never set in any mask).
                std::fill(arrivals.begin(), arrivals.end(), 0);
                const DbbBlock *arow = plan.act().vectorBlocks(i);
                const DbbBlock *wcol = plan.wgt().vectorBlocks(j);
                const int nb = plan.act().blocksPerVector();
                const int bz = plan.bz();
                for (int b = 0; b < nb; ++b) {
                    for (Mask8 m = maskAnd(arow[b].mask,
                                           wcol[b].mask);
                         m; m = maskClearLowest(m)) {
                        const int kk =
                            b * bz + maskLowestSetBit(m);
                        ++arrivals[static_cast<size_t>(
                            kk % slots_per_thread)];
                    }
                }
            }
            worst = std::max(worst, queueCycles(arrivals, qdepth));
        }
        tile_worst[static_cast<size_t>(s)] = worst;
    };
    if (opt.shard_pool != nullptr && sim_tiles > 1) {
        opt.shard_pool->parallelFor(sim_tiles, [&](int64_t s) {
            simTile(static_cast<int>(s));
        });
    } else {
        for (int s = 0; s < sim_tiles; ++s)
            simTile(s);
    }
    int64_t sampled_cycles = 0;
    for (int s = 0; s < sim_tiles; ++s)
        sampled_cycles += tile_worst[static_cast<size_t>(s)] + fill;
    const double mean_tile =
        static_cast<double>(sampled_cycles) / sim_tiles;
    ev.cycles = static_cast<int64_t>(
        std::llround(mean_tile * static_cast<double>(total_tiles)));

    if (!opt.compute_output)
        return;
    referenceOutput(plan, opt, out);
}

} // namespace s2ta
