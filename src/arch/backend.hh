/**
 * @file
 * Asynchronous device-backend abstraction: the driver-shaped seam
 * between the host (im2col lowering, DBB encoding, operand staging)
 * and the simulated accelerator (the array model). Real accelerator
 * drivers run configure → DMA operands in → kick → poll → DMA
 * results out, with double buffering hiding transfer behind
 * compute; this interface reproduces that shape so the host can
 * lower and encode layer k+1 while the device executes layer k.
 *
 * submit() stages one layer command and returns a completion token;
 * wait() blocks on the token and downloads the result. Commands
 * flow through a bounded queue (BackendConfig::queue_depth), which
 * is both the overlap window and the QoS knob the serving
 * schedulers consume. Buffers move through explicit residency
 * states (Staged → Device → Host) whose byte counts reconcile
 * exactly with the synchronous accelerator's DMA events.
 *
 * Three backends ship via BackendRegistry: "in-process" (the fast
 * DBB engine), "scalar-ref" (the scalar reference engine — the
 * differential anchor), and "remote-stub" (the fast engine plus
 * modeled link-transfer latency on the virtual clock). Results are
 * bitwise identical across all three and to the synchronous
 * Accelerator — the remote stub's transfer cost is timing-only
 * metadata, never part of the NetworkRun. New backends plug into
 * the conformance suite (tests/arch/test_backend_conformance.cc)
 * by registration, not by copying tests.
 */

#ifndef S2TA_ARCH_BACKEND_HH
#define S2TA_ARCH_BACKEND_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/accelerator.hh"

namespace s2ta {

/**
 * Residency of one submitted command's buffers, mirroring the DMA
 * ledger: Staged means the operands are uploaded (h2d bytes
 * counted) and the command is queued or executing; Device means the
 * result exists in device memory but has not been downloaded; Host
 * means wait() has downloaded it (d2h bytes counted).
 */
enum class Residency
{
    Staged,
    Device,
    Host,
};

/** Command-queue shape and transfer model of one backend. */
struct BackendConfig
{
    /**
     * Bounded queue depth: submit() blocks while this many commands
     * are staged or executing (completed-but-unwaited results do
     * not occupy a slot, so tokens may be waited in any order
     * without deadlock). Depth 1 serializes prepare and execute —
     * no overlap; depth >= 2 lets the host prepare layer k+1 while
     * the device runs layer k. This is the knob the QoS model
     * consumes.
     */
    int queue_depth = 2;
    /**
     * Run every command inline on the submitting thread (no device
     * thread): the synchronous reference mode the async pipeline is
     * differentially tested and benchmarked against.
     */
    bool synchronous = false;
    /** Remote-stub link bandwidth, payload bytes per array cycle
     *  (virtual-clock model only; ignored by local backends). */
    double link_bytes_per_cycle = 32.0;
    /** Remote-stub fixed per-command cost (doorbell + descriptor
     *  round trip) in array cycles. */
    int64_t kick_cycles = 64;
};

/**
 * Deterministic backend counters. Every field is a commutative sum
 * over commands, so the totals are identical for any submission or
 * completion interleaving; once all issued tokens are waited,
 * h2d_bytes + d2h_bytes equals the sum of the completed runs'
 * events.dma_bytes.
 */
struct BackendStats
{
    int64_t submitted = 0;
    int64_t completed = 0;
    /** Operand bytes uploaded by submit() (counted when staged). */
    int64_t h2d_bytes = 0;
    /** Result bytes downloaded by wait(). */
    int64_t d2h_bytes = 0;
    /** Modeled link-transfer cycles (remote stub; 0 locally). */
    int64_t transfer_cycles = 0;
};

/**
 * One whole-network pass through a backend: the functional /
 * event-level result (bitwise identical across backends) plus the
 * pass's modeled transfer cost, which is virtual-timing metadata
 * the serving schedulers fold into latency — deliberately kept out
 * of `run` so remote and local backends stay bit-for-bit equal.
 */
struct BackendNetworkRun
{
    NetworkRun run;
    int64_t transfer_cycles = 0;
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;
};

/**
 * Async command-queue interface over one simulated device. All
 * entry points are thread-safe; determinism is the implementation's
 * contract (results depend only on the command, never on timing).
 */
class Backend
{
  public:
    /** Completion token of one submitted command (never 0). */
    using Token = uint64_t;

    virtual ~Backend() = default;

    /** Registry name ("in-process", "scalar-ref", "remote-stub"). */
    virtual const std::string &name() const = 0;
    /** Device configuration the backend simulates. */
    virtual const AcceleratorConfig &config() const = 0;
    /** Queue shape / transfer model. */
    virtual const BackendConfig &queueConfig() const = 0;

    /**
     * Stage one layer command: the host-side prepare (im2col +
     * encode + operand-upload accounting) runs on the calling
     * thread, then the command enters the bounded device queue.
     * Blocks while queue_depth commands are in flight. @p wl must
     * stay alive until the returned token is waited.
     */
    virtual Token submit(const LayerWorkload &wl,
                         const NetworkRunOptions &opt) = 0;

    /**
     * Block until @p t completes and download its result.
     * @p transfer_cycles, when non-null, receives the command's
     * modeled link cycles. Each token is waitable exactly once;
     * tokens may be waited in any order — results are keyed by
     * token, never reordered by completion timing.
     */
    virtual LayerRun wait(Token t,
                          int64_t *transfer_cycles = nullptr) = 0;

    /** Buffer-residency state of @p t's command. */
    virtual Residency residency(Token t) const = 0;

    /** Snapshot of the deterministic counters. */
    virtual BackendStats stats() const = 0;

    /**
     * Run a whole network through the command queue: evaluate the
     * attempt's fault sites up front (exactly as
     * Accelerator::runNetwork — a faulted attempt aborts before
     * anything is submitted), then submit every layer in order and
     * wait in order, folding results in layer order. Bitwise
     * identical to the synchronous Accelerator at any queue depth
     * or thread count; prepare of layer k+1 overlaps execution of
     * layer k whenever queue_depth >= 2.
     */
    BackendNetworkRun
    runNetworkTimed(const std::vector<LayerWorkload> &layers,
                    const NetworkRunOptions &opt);

    /** runNetworkTimed without the transfer metadata. */
    NetworkRun
    runNetwork(const std::vector<LayerWorkload> &layers,
               const NetworkRunOptions &opt)
    {
        return std::move(runNetworkTimed(layers, opt).run);
    }
};

/**
 * Name → factory registry. The conformance suite instantiates every
 * registered backend through the same differential property tests,
 * so a new backend earns coverage by calling add() (e.g. from its
 * translation unit or a test fixture) — no test code is copied.
 */
class BackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Backend>(
        const AcceleratorConfig &, const BackendConfig &)>;

    /** Register (or replace) a named factory. Thread-safe. */
    static void add(const std::string &name, Factory factory);

    /** Registered names, sorted for deterministic iteration. */
    static std::vector<std::string> names();

    /** Instantiate a registered backend; fatal on unknown name. */
    static std::unique_ptr<Backend>
    make(const std::string &name, const AcceleratorConfig &acfg,
         const BackendConfig &bcfg = BackendConfig{});
};

/** Shorthand for BackendRegistry::make. */
std::unique_ptr<Backend>
makeBackend(const std::string &name, const AcceleratorConfig &acfg,
            const BackendConfig &bcfg = BackendConfig{});

} // namespace s2ta

#endif // S2TA_ARCH_BACKEND_HH
