#include "arch/plan_store.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "base/fault_injection.hh"
#include "base/mapped_file.hh"

namespace s2ta {

namespace {

// The store memcpys whole block arrays; the compressed block must
// be a padding-free POD for the image to be deterministic.
static_assert(sizeof(DbbBlock) == 9 &&
                  std::is_trivially_copyable_v<DbbBlock>,
              "DbbBlock layout changed; bump kPlanStoreVersion and "
              "adjust the (de)serializers");

/** On-disk header; every field fixed-width, total 48 bytes. */
struct PlanFileHeader
{
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t key = 0;
    uint64_t payload_hash = 0;
    int32_t m = 0, k = 0, n = 0, bz = 0;
    /** Bit 0: dense transposed weight mirror present. */
    uint32_t flags = 0;
    uint32_t reserved = 0;
};

static_assert(sizeof(PlanFileHeader) == 48 &&
              std::is_trivially_copyable_v<PlanFileHeader>);

constexpr uint32_t kPlanStoreMagic = 0x53325054u; // "S2PT"
constexpr uint32_t kFlagDenseMirror = 1u << 0;

/** Dim bound for validation: no real workload comes close, and it
 *  keeps all size arithmetic far from int64 overflow. */
constexpr int64_t kMaxDim = int64_t{1} << 27;

/** Section byte sizes, derivable from the header dims alone (the
 *  image needs no offset table: sections are laid out back to back
 *  in this fixed order). */
struct SectionSizes
{
    int64_t a, w, act_blocks, wgt_blocks, wgt_t, profile;

    int64_t
    payload() const
    {
        return a + w + act_blocks + wgt_blocks + wgt_t + profile;
    }
};

SectionSizes
sectionSizes(int64_t m, int64_t k, int64_t n, int64_t nb,
             bool mirror)
{
    SectionSizes s;
    s.a = m * k;
    s.w = k * n;
    s.act_blocks = m * nb * static_cast<int64_t>(sizeof(DbbBlock));
    s.wgt_blocks = n * nb * static_cast<int64_t>(sizeof(DbbBlock));
    s.wgt_t = mirror ? n * k : 0;
    // row_nz[m], col_nz[n], act_nz_at_k[k], wgt_nz_at_k[k], then
    // the three 64-bit nnz / matched-product totals.
    s.profile = (m + n + 2 * k) *
                    static_cast<int64_t>(sizeof(int32_t)) +
                3 * static_cast<int64_t>(sizeof(int64_t));
    return s;
}

/** Append @p len bytes to @p out. */
void
put(std::vector<uint8_t> &out, const void *data, size_t len)
{
    const size_t at = out.size();
    out.resize(at + len);
    if (len > 0)
        std::memcpy(out.data() + at, data, len);
}

/** Copy @p len bytes out of the image, advancing the cursor. */
void
take(const uint8_t *&p, void *dst, size_t len)
{
    if (len > 0)
        std::memcpy(dst, p, len);
    p += len;
}

// ---- spill codec helpers --------------------------------------------

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint64_t
getVarint(const uint8_t *&p, const uint8_t *end)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        s2ta_assert(p < end && shift < 64,
                    "malformed spill varint");
        const uint8_t byte = *p++;
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80u) == 0)
            return v;
        shift += 7;
    }
}

/**
 * Mask + stored values per block; runs of all-zero blocks collapse
 * to one zero mask byte plus a varint run extension. Zero blocks
 * dominate at high sparsity, so cyclic serving traces spill small.
 */
void
encodeBlocks(const DbbMatrix &mat, std::vector<uint8_t> &out)
{
    const DbbBlock *blocks = mat.vectorBlocks(0);
    const int64_t total =
        static_cast<int64_t>(mat.vectors()) * mat.blocksPerVector();
    for (int64_t i = 0; i < total;) {
        const Mask8 mask = blocks[i].mask;
        out.push_back(mask);
        if (mask != 0) {
            put(out, blocks[i].values.data(),
                static_cast<size_t>(maskPopcount(mask)));
            ++i;
        } else {
            int64_t run = 1;
            while (i + run < total && blocks[i + run].mask == 0)
                ++run;
            putVarint(out, static_cast<uint64_t>(run - 1));
            i += run;
        }
    }
}

void
decodeBlocks(const uint8_t *&p, const uint8_t *end,
             std::vector<DbbBlock> &blks)
{
    size_t i = 0;
    while (i < blks.size()) {
        s2ta_assert(p < end, "truncated spill block stream");
        const Mask8 mask = *p++;
        if (mask == 0) {
            const uint64_t run = 1 + getVarint(p, end);
            s2ta_assert(i + run <= blks.size(),
                        "spill zero-run overruns the block array");
            i += run; // blocks are value-initialized to zero
        } else {
            DbbBlock &b = blks[i++];
            b.mask = mask;
            const int c = maskPopcount(mask);
            s2ta_assert(p + c <= end,
                        "truncated spill block values");
            take(p, b.values.data(), static_cast<size_t>(c));
        }
    }
}

/**
 * Reconstruct the dense operands from their encodings. Encoding is
 * lossless (every non-zero keeps its position and value; padding
 * positions stay unset), so this inverts it exactly.
 */
GemmProblem
problemFromBlocks(int m, int k, int n, int bz, int nb,
                  const std::vector<DbbBlock> &act,
                  const std::vector<DbbBlock> &wgt)
{
    GemmProblem p(m, k, n);
    for (int i = 0; i < m; ++i) {
        const DbbBlock *row = &act[static_cast<size_t>(i) * nb];
        int8_t *dst = &p.a[static_cast<size_t>(i) * k];
        for (int b = 0; b < nb; ++b) {
            const DbbBlock &blk = row[b];
            int slot = 0;
            for (Mask8 mm = blk.mask; mm;
                 mm = maskClearLowest(mm)) {
                const int kk = b * bz + maskLowestSetBit(mm);
                s2ta_assert(kk < k,
                            "spilled activation non-zero in the "
                            "padding tail");
                dst[kk] =
                    blk.values[static_cast<size_t>(slot++)];
            }
        }
    }
    for (int j = 0; j < n; ++j) {
        const DbbBlock *col = &wgt[static_cast<size_t>(j) * nb];
        for (int b = 0; b < nb; ++b) {
            const DbbBlock &blk = col[b];
            int slot = 0;
            for (Mask8 mm = blk.mask; mm;
                 mm = maskClearLowest(mm)) {
                const int kk = b * bz + maskLowestSetBit(mm);
                s2ta_assert(kk < k,
                            "spilled weight non-zero in the "
                            "padding tail");
                p.w[static_cast<size_t>(kk) * n + j] =
                    blk.values[static_cast<size_t>(slot++)];
            }
        }
    }
    return p;
}

constexpr uint8_t kSpillMagic = 0x53; // 'S'
constexpr uint8_t kSpillVersion = 1;

} // anonymous namespace

uint64_t
planStoreChecksum(const void *data, size_t len)
{
    // Four independent FNV-1a streams over interleaved 8-byte
    // strides: each stream is the same xor-multiply fold as
    // PlanCache::hashBytes, but the four multiply chains overlap,
    // so the checksum runs at memcpy-like speed instead of being
    // latency-bound on one 64-bit multiply per stride.
    constexpr uint64_t kPrime = 0x100000001b3ull;
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h0 = 0xcbf29ce484222325ull;
    uint64_t h1 = 0x84222325cbf29ce4ull;
    uint64_t h2 = 0x9ce484222325cbf2ull;
    uint64_t h3 = 0x25cbf29ce4842223ull;
    size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        uint64_t c0, c1, c2, c3;
        std::memcpy(&c0, p + i, 8);
        std::memcpy(&c1, p + i + 8, 8);
        std::memcpy(&c2, p + i + 16, 8);
        std::memcpy(&c3, p + i + 24, 8);
        h0 = (h0 ^ c0) * kPrime;
        h1 = (h1 ^ c1) * kPrime;
        h2 = (h2 ^ c2) * kPrime;
        h3 = (h3 ^ c3) * kPrime;
    }
    for (; i < len; ++i)
        h0 = (h0 ^ p[i]) * kPrime;
    return PlanCache::combine(
        PlanCache::combine(PlanCache::combine(h0, h1), h2), h3);
}

PlanStore::PlanStore(std::string dir, int64_t size_cap_bytes)
    : store_dir(std::move(dir)), size_cap(size_cap_bytes)
{
    s2ta_assert(!store_dir.empty(), "empty plan-store directory");
    s2ta_assert(size_cap >= 0,
                "plan-store size cap must be >= 0 (0 = uncapped), "
                "got %lld", (long long)size_cap);
    if (!makeDirs(store_dir)) {
        s2ta_fatal("cannot create plan-store directory '%s'",
                   store_dir.c_str());
    }
    sweepTornTemps();
}

int64_t
PlanStore::sweepTornTemps() const
{
    // Opportunistic cleanup of torn writes: a process killed
    // mid-save leaves an unpublished "*.tmp.<pid>" file behind
    // (writeFileAtomic publishes via rename, so these never shadow
    // a real entry — they only accumulate). Sweeping can race a
    // concurrent writer's in-flight temp; that writer's rename then
    // fails and its save() reports false, which the cache treats as
    // "plan stays unpersisted" — benign, and the next process saves
    // it again.
    int64_t swept = 0;
    std::error_code ec;
    std::filesystem::directory_iterator it(store_dir, ec), end;
    while (!ec && it != end) {
        const std::filesystem::path path = it->path();
        if (path.filename().string().find(".tmp.") !=
            std::string::npos) {
            std::error_code rm_ec;
            if (std::filesystem::remove(path, rm_ec) && !rm_ec)
                ++swept;
        }
        it.increment(ec);
    }
    n_torn_swept.fetch_add(swept, std::memory_order_relaxed);
    return swept;
}

void
PlanStore::quarantine(const std::string &path) const
{
    // Rename, not delete: the corrupt bytes stay inspectable, and
    // the ".quar" suffix guarantees load() never maps them again
    // (it only ever opens the exact ".s2ta" path). Racing
    // quarantiners are benign — the loser's rename fails because
    // the source is already gone.
    std::error_code ec;
    std::filesystem::rename(path, path + ".quar", ec);
    if (!ec)
        n_quarantined.fetch_add(1, std::memory_order_relaxed);
}

PlanStore::Stats
PlanStore::stats() const
{
    Stats s;
    s.loads = n_loads.load(std::memory_order_relaxed);
    s.rejects = n_rejects.load(std::memory_order_relaxed);
    s.quarantined = n_quarantined.load(std::memory_order_relaxed);
    s.read_faults = n_read_faults.load(std::memory_order_relaxed);
    s.saves = n_saves.load(std::memory_order_relaxed);
    s.save_failures =
        n_save_failures.load(std::memory_order_relaxed);
    s.torn_swept = n_torn_swept.load(std::memory_order_relaxed);
    s.quarantine_removed =
        n_quarantine_removed.load(std::memory_order_relaxed);
    s.evicted_files =
        n_evicted_files.load(std::memory_order_relaxed);
    s.evicted_bytes =
        n_evicted_bytes.load(std::memory_order_relaxed);
    return s;
}

PlanStore::CompactResult
PlanStore::compact(double max_age_s) const
{
    CompactResult res;
    res.torn_swept = sweepTornTemps();

    struct Entry
    {
        std::filesystem::path path;
        int64_t bytes;
        std::filesystem::file_time_type mtime;
    };
    std::vector<Entry> entries;

    std::error_code ec;
    std::filesystem::directory_iterator it(store_dir, ec), end;
    while (!ec && it != end) {
        const std::filesystem::path path = it->path();
        const std::string name = path.filename().string();
        std::error_code fs_ec;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".quar") == 0) {
            if (std::filesystem::remove(path, fs_ec) && !fs_ec)
                ++res.quarantine_removed;
        } else if (name.rfind("plan_", 0) == 0 && name.size() > 5 &&
                   name.compare(name.size() - 5, 5, ".s2ta") == 0) {
            Entry e;
            e.path = path;
            e.bytes = static_cast<int64_t>(
                std::filesystem::file_size(path, fs_ec));
            if (!fs_ec)
                e.mtime =
                    std::filesystem::last_write_time(path, fs_ec);
            if (!fs_ec)
                entries.push_back(std::move(e));
        }
        it.increment(ec);
    }
    n_quarantine_removed.fetch_add(res.quarantine_removed,
                                   std::memory_order_relaxed);

    // Oldest entries go first; equal mtimes (common on fast
    // populates) break ties by filename so the eviction order is
    // deterministic.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path.filename() < b.path.filename();
              });

    int64_t total = 0;
    for (const Entry &e : entries)
        total += e.bytes;

    const auto evict = [&](const Entry &e) {
        std::error_code rm_ec;
        if (std::filesystem::remove(e.path, rm_ec) && !rm_ec) {
            ++res.evicted_files;
            res.evicted_bytes += e.bytes;
            total -= e.bytes;
            return true;
        }
        return false;
    };

    size_t keep_from = 0;
    if (max_age_s > 0.0) {
        const auto now =
            std::filesystem::file_time_type::clock::now();
        const auto horizon =
            now - std::chrono::duration_cast<
                      std::filesystem::file_time_type::duration>(
                      std::chrono::duration<double>(max_age_s));
        while (keep_from < entries.size() &&
               entries[keep_from].mtime < horizon) {
            evict(entries[keep_from]);
            ++keep_from;
        }
    }
    if (size_cap > 0) {
        while (keep_from < entries.size() && total > size_cap) {
            evict(entries[keep_from]);
            ++keep_from;
        }
    }
    n_evicted_files.fetch_add(res.evicted_files,
                              std::memory_order_relaxed);
    n_evicted_bytes.fetch_add(res.evicted_bytes,
                              std::memory_order_relaxed);

    res.files = static_cast<int64_t>(entries.size()) -
                static_cast<int64_t>(keep_from);
    res.bytes = total;
    return res;
}

std::string
PlanStore::pathFor(uint64_t key) const
{
    char name[40];
    std::snprintf(name, sizeof(name), "/plan_%016llx.s2ta",
                  static_cast<unsigned long long>(key));
    return store_dir + name;
}

std::vector<uint8_t>
PlanStore::serialize(uint64_t key, const CachedPlan &entry)
{
    const GemmProblem &p = entry.problem;
    const GemmPlan &plan = entry.plan;
    s2ta_assert(plan.encoded(),
                "only encoded plans are storable (scalar-engine "
                "runs bypass the cache entirely)");
    const OperandProfile &prof = plan.profile();
    const int nb = plan.act().blocksPerVector();
    const bool mirror = plan.wgtDenseT() != nullptr;
    const SectionSizes ss = sectionSizes(p.m, p.k, p.n, nb, mirror);

    PlanFileHeader hdr;
    hdr.magic = kPlanStoreMagic;
    hdr.version = kPlanStoreVersion;
    hdr.key = key;
    hdr.m = p.m;
    hdr.k = p.k;
    hdr.n = p.n;
    hdr.bz = plan.bz();
    hdr.flags = mirror ? kFlagDenseMirror : 0;

    std::vector<uint8_t> out;
    out.reserve(sizeof(hdr) + static_cast<size_t>(ss.payload()));
    out.resize(sizeof(hdr)); // hash lands after the payload exists
    put(out, p.a.data(), p.a.size());
    put(out, p.w.data(), p.w.size());
    put(out, plan.act().vectorBlocks(0),
        static_cast<size_t>(ss.act_blocks));
    put(out, plan.wgt().vectorBlocks(0),
        static_cast<size_t>(ss.wgt_blocks));
    if (mirror)
        put(out, plan.wgtDenseT(), static_cast<size_t>(ss.wgt_t));

    s2ta_assert(prof.row_nz.size() == static_cast<size_t>(p.m) &&
                    prof.col_nz.size() ==
                        static_cast<size_t>(p.n) &&
                    prof.act_nz_at_k.size() ==
                        static_cast<size_t>(p.k) &&
                    prof.wgt_nz_at_k.size() ==
                        static_cast<size_t>(p.k),
                "profile vectors do not match the plan dims");
    put(out, prof.row_nz.data(),
        prof.row_nz.size() * sizeof(int32_t));
    put(out, prof.col_nz.data(),
        prof.col_nz.size() * sizeof(int32_t));
    put(out, prof.act_nz_at_k.data(),
        prof.act_nz_at_k.size() * sizeof(int32_t));
    put(out, prof.wgt_nz_at_k.data(),
        prof.wgt_nz_at_k.size() * sizeof(int32_t));
    put(out, &prof.act_nnz, sizeof(int64_t));
    put(out, &prof.wgt_nnz, sizeof(int64_t));
    put(out, &prof.matched_products, sizeof(int64_t));

    s2ta_assert(out.size() ==
                    sizeof(hdr) + static_cast<size_t>(ss.payload()),
                "store image size drifted from sectionSizes");
    hdr.payload_hash = planStoreChecksum(out.data() + sizeof(hdr),
                                         out.size() - sizeof(hdr));
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    return out;
}

std::shared_ptr<const CachedPlan>
PlanStore::deserialize(const uint8_t *data, size_t len,
                       uint64_t expected_key)
{
    // Every check below is a *rejection* (null return), never a
    // fatal: store bytes come from disk and may be truncated, bit
    // flipped, stale-versioned, or misnamed.
    if (len < sizeof(PlanFileHeader))
        return nullptr;
    PlanFileHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.magic != kPlanStoreMagic ||
        hdr.version != kPlanStoreVersion ||
        hdr.key != expected_key)
        return nullptr;
    if (hdr.m < 1 || hdr.k < 1 || hdr.n < 1 || hdr.m > kMaxDim ||
        hdr.k > kMaxDim || hdr.n > kMaxDim || hdr.bz < 1 ||
        hdr.bz > 8)
        return nullptr;
    const bool mirror = (hdr.flags & kFlagDenseMirror) != 0;
    const int nb = (hdr.k + hdr.bz - 1) / hdr.bz;
    const SectionSizes ss =
        sectionSizes(hdr.m, hdr.k, hdr.n, nb, mirror);
    if (static_cast<int64_t>(len) !=
        static_cast<int64_t>(sizeof(hdr)) + ss.payload())
        return nullptr;
    if (planStoreChecksum(data + sizeof(hdr),
                          len - sizeof(hdr)) != hdr.payload_hash)
        return nullptr;

    // Validated: hydrate. Each section is one memcpy out of the
    // image; nothing is parsed or re-derived.
    const uint8_t *p = data + sizeof(hdr);
    GemmProblem prob(hdr.m, hdr.k, hdr.n);
    take(p, prob.a.data(), prob.a.size());
    take(p, prob.w.data(), prob.w.size());

    GemmPlan::Parts parts;
    parts.bz = hdr.bz;
    std::vector<DbbBlock> act_blks(
        static_cast<size_t>(hdr.m) * nb);
    take(p, act_blks.data(), static_cast<size_t>(ss.act_blocks));
    std::vector<DbbBlock> wgt_blks(
        static_cast<size_t>(hdr.n) * nb);
    take(p, wgt_blks.data(), static_cast<size_t>(ss.wgt_blocks));
    const DbbSpec spec{hdr.bz, hdr.bz};
    parts.act = DbbMatrix::fromParts(spec, hdr.m, nb,
                                     std::move(act_blks));
    parts.wgt = DbbMatrix::fromParts(spec, hdr.n, nb,
                                     std::move(wgt_blks));
    if (mirror) {
        parts.wgt_t.resize(static_cast<size_t>(ss.wgt_t));
        take(p, parts.wgt_t.data(), parts.wgt_t.size());
    }
    parts.prof.m = hdr.m;
    parts.prof.k = hdr.k;
    parts.prof.n = hdr.n;
    parts.prof.row_nz.resize(static_cast<size_t>(hdr.m));
    take(p, parts.prof.row_nz.data(),
         parts.prof.row_nz.size() * sizeof(int32_t));
    parts.prof.col_nz.resize(static_cast<size_t>(hdr.n));
    take(p, parts.prof.col_nz.data(),
         parts.prof.col_nz.size() * sizeof(int32_t));
    parts.prof.act_nz_at_k.resize(static_cast<size_t>(hdr.k));
    take(p, parts.prof.act_nz_at_k.data(),
         parts.prof.act_nz_at_k.size() * sizeof(int32_t));
    parts.prof.wgt_nz_at_k.resize(static_cast<size_t>(hdr.k));
    take(p, parts.prof.wgt_nz_at_k.data(),
         parts.prof.wgt_nz_at_k.size() * sizeof(int32_t));
    take(p, &parts.prof.act_nnz, sizeof(int64_t));
    take(p, &parts.prof.wgt_nnz, sizeof(int64_t));
    take(p, &parts.prof.matched_products, sizeof(int64_t));
    s2ta_assert(p == data + len, "store image cursor drifted");

    return std::make_shared<const CachedPlan>(
        std::move(prob), [&parts](const GemmProblem &owned) {
            return GemmPlan::restore(owned, std::move(parts));
        });
}

PlanStore::LoadResult
PlanStore::load(uint64_t key) const
{
    LoadResult r;
    n_loads.fetch_add(1, std::memory_order_relaxed);
    if (fault && fault->shouldFail(FaultSite::StoreRead, key)) {
        // Modeled open/map failure: indistinguishable from an
        // absent file, so it degrades to a plain miss.
        n_read_faults.fetch_add(1, std::memory_order_relaxed);
        return r;
    }
    const std::string path = pathFor(key);
    const MappedFile mf = MappedFile::openRead(path);
    if (!mf.valid())
        return r; // plain miss
    if (fault && mf.size() > sizeof(PlanFileHeader) &&
        fault->shouldFail(FaultSite::StoreBitFlip, key)) {
        // Modeled bit rot: flip one payload bit in a copy of the
        // image (payload bits are all checksummed, so the flip is
        // guaranteed to trip validation — a header-padding flip
        // could slip through undetected and break reconciliation).
        std::vector<uint8_t> dirty(mf.data(), mf.data() + mf.size());
        const uint64_t payload_bits =
            (uint64_t(mf.size()) - sizeof(PlanFileHeader)) * 8;
        const uint64_t bit =
            FaultInjector::combineId(key, 0xB17F11Bull) %
            payload_bits;
        dirty[sizeof(PlanFileHeader) + bit / 8] ^=
            uint8_t(1u << (bit % 8));
        r.entry = deserialize(dirty.data(), dirty.size(), key);
    } else {
        r.entry = deserialize(mf.data(), mf.size(), key);
    }
    r.rejected = r.entry == nullptr;
    if (r.rejected) {
        n_rejects.fetch_add(1, std::memory_order_relaxed);
        quarantine(path);
    }
    return r;
}

bool
PlanStore::save(uint64_t key, const CachedPlan &entry) const
{
    const std::vector<uint8_t> image = serialize(key, entry);
    const std::string path = pathFor(key);
    if (fault && fault->shouldFail(FaultSite::StoreWrite, key)) {
        // Modeled torn write: leave half the image behind under an
        // unpublished temp name (swept by attach/compact) and fail
        // the save. Nothing becomes visible under the real path.
        const std::string torn = path + ".tmp.injected";
        if (std::FILE *f = std::fopen(torn.c_str(), "wb")) {
            std::fwrite(image.data(), 1, image.size() / 2, f);
            std::fclose(f);
        }
        n_save_failures.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (fault && fault->shouldFail(FaultSite::StoreRename, key)) {
        // Modeled publish failure: the temp was written but the
        // rename failed; writeFileAtomic cleans its temp on that
        // path, so nothing is left behind at all.
        n_save_failures.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (writeFileAtomic(path, image.data(), image.size())) {
        n_saves.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    n_save_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
}

// ---- spill codec ----------------------------------------------------

std::vector<uint8_t>
spillEncode(const CachedPlan &entry)
{
    const GemmProblem &p = entry.problem;
    const GemmPlan &plan = entry.plan;
    s2ta_assert(plan.encoded(), "cannot spill a shallow plan");
    std::vector<uint8_t> out;
    // Mask byte + up to bz values per block is the worst case;
    // reserve for it so dense workloads don't reallocate.
    const int64_t blocks =
        (static_cast<int64_t>(p.m) + p.n) *
        plan.act().blocksPerVector();
    out.reserve(static_cast<size_t>(32 + blocks * (plan.bz() + 1)));
    out.push_back(kSpillMagic);
    out.push_back(kSpillVersion);
    putVarint(out, static_cast<uint64_t>(p.m));
    putVarint(out, static_cast<uint64_t>(p.k));
    putVarint(out, static_cast<uint64_t>(p.n));
    out.push_back(static_cast<uint8_t>(plan.bz()));
    out.push_back(plan.wgtDenseT() != nullptr ? 1 : 0);
    encodeBlocks(plan.act(), out);
    encodeBlocks(plan.wgt(), out);
    return out;
}

std::shared_ptr<const CachedPlan>
spillDecode(const uint8_t *data, size_t len)
{
    const uint8_t *p = data;
    const uint8_t *end = data + len;
    s2ta_assert(len > 2 && p[0] == kSpillMagic &&
                    p[1] == kSpillVersion,
                "malformed spill image header");
    p += 2;
    const auto m = static_cast<int>(getVarint(p, end));
    const auto k = static_cast<int>(getVarint(p, end));
    const auto n = static_cast<int>(getVarint(p, end));
    s2ta_assert(p + 2 <= end, "truncated spill image");
    const int bz = *p++;
    const bool mirror = *p++ != 0;
    s2ta_assert(m >= 1 && k >= 1 && n >= 1 && bz >= 1 && bz <= 8,
                "implausible spill dims %dx%dx%d bz %d", m, k, n,
                bz);
    const int nb = (k + bz - 1) / bz;

    std::vector<DbbBlock> act_blks(static_cast<size_t>(m) * nb);
    decodeBlocks(p, end, act_blks);
    std::vector<DbbBlock> wgt_blks(static_cast<size_t>(n) * nb);
    decodeBlocks(p, end, wgt_blks);
    s2ta_assert(p == end, "trailing bytes in spill image");

    GemmProblem prob =
        problemFromBlocks(m, k, n, bz, nb, act_blks, wgt_blks);
    const DbbSpec spec{bz, bz};
    return std::make_shared<const CachedPlan>(
        std::move(prob), [&](const GemmProblem &owned) {
            return GemmPlan::rebuild(
                owned, bz,
                DbbMatrix::fromParts(spec, m, nb,
                                     std::move(act_blks)),
                DbbMatrix::fromParts(spec, n, nb,
                                     std::move(wgt_blks)),
                mirror);
        });
}

} // namespace s2ta
