/**
 * @file
 * Concrete array models: the dense / ZVCG systolic array, the SMT-SA
 * re-implementation, and the two S2TA variants.
 *
 * See DESIGN.md Sec. 3 for the cycle and event accounting of each.
 */

#ifndef S2TA_ARCH_MODELS_HH
#define S2TA_ARCH_MODELS_HH

#include "arch/array_model.hh"

namespace s2ta {

/**
 * Classic output-stationary systolic array of scalar PEs.
 *
 * Covers both the plain dense SA and SA-ZVCG: with ZVCG, zero
 * operands gate the MAC, the operand registers, and the accumulator
 * update (paper Sec. 2.1); without it zero products still flow
 * through the datapath at reduced switching.
 */
class SaModel : public ArrayModel
{
  public:
    explicit SaModel(ArrayConfig cfg);

  protected:
    void simulate(const GemmPlan &plan, const RunOptions &opt,
                  GemmRun &out) const override;
};

/**
 * SMT-SA (Shomron et al.) INT8 re-implementation: T operand streams
 * per PE, non-zero products enqueue into a depth-Q staging FIFO,
 * one MAC pop per cycle, back-pressure stalls the streams when a
 * FIFO fills (paper Sec. 2.2).
 *
 * Event totals are exact; tile timing is obtained by simulating the
 * per-PE queue automaton on a deterministic sample of PEs/tiles and
 * taking the per-tile maximum (DESIGN.md Sec. 3).
 */
class SaSmtModel : public ArrayModel
{
  public:
    explicit SaSmtModel(ArrayConfig cfg);

  protected:
    void simulate(const GemmPlan &plan, const RunOptions &opt,
                  GemmRun &out) const override;

  public:
    /**
     * Queue automaton for one PE: given the per-arrival-slot count
     * of non-zero pairs (0..T), return the cycles needed to consume
     * the stream and drain, honouring a depth-Q FIFO with one pop
     * per cycle and stall-on-full semantics. Exposed for unit tests.
     */
    static int64_t queueCycles(const std::vector<int> &arrivals,
                               int queue_depth);
};

/**
 * S2TA-W: TPE array of DP4M8 dot-product datapaths exploiting weight
 * DBB only (paper Sec. 4, Fig. 6c). Activations are dense; their
 * zeros are weakly exploited via ZVCG. One weight DBB block (and one
 * full dense activation block) is consumed per DP4M8 per cycle.
 */
class S2taWModel : public ArrayModel
{
  public:
    explicit S2taWModel(ArrayConfig cfg);

  protected:
    void simulate(const GemmPlan &plan, const RunOptions &opt,
                  GemmRun &out) const override;
};

/**
 * S2TA-AW: time-unrolled TPE array of DP1M4 datapaths exploiting
 * joint A/W DBB (paper Sec. 5.2, Fig. 6e, Fig. 7c). Activation block
 * elements are serialized one per cycle (act_nnz cycles per block),
 * so per-layer variable A-DBB density maps directly to speedup
 * BZ / NNZ_a. Weight blocks are spatially unrolled across the 4:1
 * mux inputs; weight zeros gate the MAC.
 */
class S2taAwModel : public ArrayModel
{
  public:
    explicit S2taAwModel(ArrayConfig cfg);

  protected:
    void simulate(const GemmPlan &plan, const RunOptions &opt,
                  GemmRun &out) const override;
};

} // namespace s2ta

#endif // S2TA_ARCH_MODELS_HH
