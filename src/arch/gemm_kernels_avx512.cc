/**
 * @file
 * AVX-512 tier of the DBB kernels: the AVX2 scheme widened to
 * 512-bit registers, plus two feature-gated sub-kernels.
 *
 *  - Intersection row dot (avx512bw + avx512vbmi): EIGHT compressed
 *    blocks per operand expand into one ZMM with a single
 *    masked-zeroing vpermi2b. Eight stride-9 blocks span 72 bytes,
 *    so the two-source permute reads a full 64-byte load plus an
 *    8-byte masked load; the per-block expansion controls come from
 *    the same 256-entry permutation table as the narrower tiers,
 *    pre-packed as uint64 words (fetched with one 8-qword gather)
 *    and offset per block lane. vpermb has no zero-control byte the
 *    way pshufb does — the zeroing k-mask (the concatenation of the
 *    eight block masks) supplies it, so garbage indices on skipped
 *    lanes are never observable. Contraction of the 64 dense INT8
 *    lanes per iteration is one vpdpbusd when the CPU also has
 *    avx512vnni (runtime-probed), else a 512-bit madd tree.
 *  - Dense-mirror dot (avx512vnni): vpdpbusd contracts 64 INT8
 *    pairs per instruction. It multiplies u8 x s8, so the signed
 *    dot is recovered exactly as dp(a ^ 0x80, w) - 128 * dp(1, w);
 *    all arithmetic wraps mod 2^32, bit-identical to the scalar
 *    INT32 accumulation.
 *  - Profile derivation (avx512vpopcntdq + avx512bw): per-vector
 *    nnz from vpopcntq over packed mask words, per-position
 *    histogram updates from vpmovm2b-widened mask bytes.
 *
 * Skipped positions contribute exact zeros and INT32 wraparound
 * addition is order-independent, so every path is bit-identical to
 * the scalar kernels (property-tested in
 * tests/arch/test_gemm_kernels.cc).
 *
 * This translation unit is the only one compiled with AVX-512
 * codegen (see S2TA_ENABLE_X86_64_V4 in CMakeLists.txt). Each
 * sub-kernel probes its own cpuid bits, so a CPU with e.g.
 * avx512bw but no VNNI still gets the intersection kernel while the
 * dense path falls back to SSE2. Like the lower tiers, the SIMD
 * branch must not call inline functions from shared headers: a
 * comdat copy compiled here could be kept by the linker for the
 * whole program and break the runtime fallback on older CPUs.
 */

#include "arch/gemm_kernels.hh"
#include "core/dbb.hh"

#if defined(S2TA_X86_64_V4) && defined(__AVX512F__) &&                \
    defined(__AVX512BW__) && defined(__AVX512VBMI__) &&               \
    defined(__AVX512VNNI__) && defined(__AVX512VPOPCNTDQ__)
#include <immintrin.h>
#define S2TA_HAVE_SIMD_AVX512 1
#endif

namespace s2ta {

#ifdef S2TA_HAVE_SIMD_AVX512

namespace {

/**
 * Per-mask expansion permutation packed as one uint64 word: byte i
 * holds rank(mask, i) when bit i is set, 0x80 otherwise. The 0x80
 * filler never survives: the zeroing k-mask clears exactly those
 * lanes. Each tier owns its table copy (see the file comment).
 */
struct ExpandQTable
{
    uint64_t q[256];
};

constexpr ExpandQTable kExpandTable = [] {
    ExpandQTable t{};
    for (unsigned m = 0; m < 256; ++m) {
        uint64_t w = 0;
        unsigned rank = 0;
        for (int i = 0; i < 8; ++i) {
            const uint64_t byte =
                ((m >> i) & 1u) ? rank++ : 0x80u;
            w |= byte << (8 * i);
        }
        t.q[m] = w;
    }
    return t;
}();

/**
 * Byte offset of block j's values within the 8-block group,
 * replicated per byte so one vector add rebases every control byte
 * at once. Ranks are <= 7 and offsets <= 63, so no per-byte sum
 * carries into its neighbor.
 */
alignas(64) constexpr uint64_t kLaneBase[8] = {
    0x0101010101010101ull * 0,  0x0101010101010101ull * 9,
    0x0101010101010101ull * 18, 0x0101010101010101ull * 27,
    0x0101010101010101ull * 36, 0x0101010101010101ull * 45,
    0x0101010101010101ull * 54, 0x0101010101010101ull * 63,
};

/**
 * Expand eight consecutive blocks of one operand into 64 dense INT8
 * lanes (block j in lanes 8j..8j+7). Both operands of a dot product
 * expand with the identical permutation, so lane k of A always
 * meets lane k of W.
 *
 * The zeroing k-mask (the concatenation of the eight block masks)
 * is assembled from eight scalar byte loads — cheap ALU work on the
 * load/int ports — and one vector gather fetches the eight
 * pre-packed control qwords from the 256-entry permutation table.
 * Everything stays off the stack: routing the controls through a
 * local array instead would bounce eight scalar stores into one
 * 64-byte reload, stalling store-to-load forwarding on every call,
 * and an all-vpermb control build (nibble-rank lookups) oversubs
 * the one shuffle port the final permute and any unpack/madd
 * contraction already need.
 */
inline __m512i
expandOct(const DbbBlock *b, uint64_t km)
{
    const char *bytes = reinterpret_cast<const char *>(b);
    // Eight stride-9 blocks span 72 bytes: one full 64-byte source
    // plus an 8-byte masked load (masked-out lanes are not read, so
    // this never touches memory past the row).
    const __m512i src0 = _mm512_loadu_si512(bytes);
    const __m512i src1 = _mm512_maskz_loadu_epi8(
        static_cast<__mmask64>(0xFF), bytes + 64);
    // Masked forms of the widen/gather: same instructions, but GCC
    // 12's unmasked wrappers expand through _mm512_undefined_epi32,
    // which -Werror=maybe-uninitialized rejects.
    const __m512i midx = _mm512_maskz_cvtepu8_epi64(
        static_cast<__mmask8>(0xFF),
        _mm_cvtsi64_si128(static_cast<long long>(km)));
    const __m512i idx = _mm512_add_epi64(
        _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                    static_cast<__mmask8>(0xFF),
                                    midx, kExpandTable.q, 8),
        _mm512_load_si512(kLaneBase));
    return _mm512_maskz_permutex2var_epi8(
        static_cast<__mmask64>(km), src0, idx, src1);
}

/** The eight mask bytes of one block group as one qword: byte j =
 *  b[j].mask. Doubles as expandOct's k-mask and its gather key. */
inline uint64_t
groupMasks(const DbbBlock *b)
{
    uint64_t km = 0;
    for (int j = 0; j < 8; ++j)
        km |= static_cast<uint64_t>(b[j].mask) << (8 * j);
    return km;
}

/**
 * Horizontal INT32x16 sum with wraparound. GCC's
 * _mm512_reduce_add_epi32 expands through _mm256_undefined_si256,
 * which -Werror=uninitialized rejects; the store-and-sum form below
 * compiles to the same shuffle tree and keeps the mod-2^32 wrap
 * well-defined by accumulating unsigned.
 */
inline int32_t
reduceAdd512(__m512i v)
{
    alignas(64) int32_t lane[16];
    _mm512_store_si512(lane, v);
    uint32_t sum = 0;
    for (int i = 0; i < 16; ++i)
        sum += static_cast<uint32_t>(lane[i]);
    return static_cast<int32_t>(sum);
}

/** Exact INT8x64 dot product folded into an INT32x16 accumulator. */
inline __m512i
maddAccumulate512(__m512i acc, __m512i av, __m512i wv)
{
    const __m512i zero = _mm512_setzero_si512();
    // Sign-extend each INT8 half-lane into INT16 (bytes enter the
    // high half of each word; the arithmetic shift restores sign).
    // unpacklo/hi operate per 128-bit lane on both operands the
    // same way, so products still pair a[i] with w[i].
    const __m512i alo =
        _mm512_srai_epi16(_mm512_unpacklo_epi8(zero, av), 8);
    const __m512i ahi =
        _mm512_srai_epi16(_mm512_unpackhi_epi8(zero, av), 8);
    const __m512i wlo =
        _mm512_srai_epi16(_mm512_unpacklo_epi8(zero, wv), 8);
    const __m512i whi =
        _mm512_srai_epi16(_mm512_unpackhi_epi8(zero, wv), 8);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(alo, wlo));
    return _mm512_add_epi32(acc, _mm512_madd_epi16(ahi, whi));
}

/**
 * The madd-tree row dot: works on any avx512bw + avx512vbmi CPU.
 * INT32 wraparound addition is order-independent, so the tree
 * reduction matches the scalar left-to-right sum bit for bit.
 */
int32_t
dotRowMadd(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    __m512i acc = _mm512_setzero_si512();
    int b = 0;
    for (; b + 8 <= nblocks; b += 8) {
        acc = maddAccumulate512(acc,
                                expandOct(a + b, groupMasks(a + b)),
                                expandOct(w + b,
                                          groupMasks(w + b)));
    }
    if (b < nblocks) {
        // 1-7 trailing blocks: pad with all-zero partners instead
        // of touching shared inline helpers (see the file comment).
        DbbBlock tail_a[8] = {};
        DbbBlock tail_w[8] = {};
        for (int t = 0; b + t < nblocks; ++t) {
            tail_a[t] = a[b + t];
            tail_w[t] = w[b + t];
        }
        acc = maddAccumulate512(acc,
                                expandOct(tail_a,
                                          groupMasks(tail_a)),
                                expandOct(tail_w,
                                          groupMasks(tail_w)));
    }
    return reduceAdd512(acc);
}

/**
 * The VNNI row dot: expansion as above, contraction folded into one
 * vpdpbusd per operand pair instead of the four-unpack/two-madd
 * tree — the tree's shuffles compete with the expansion permutes
 * for the single 512-bit shuffle port, while vpdpbusd issues on the
 * FMA ports. Signedness is recovered with the same exact identity
 * as dbbDenseDotVnni: dp(a ^ 0x80, w) - 128 * dp(1, w) mod 2^32.
 * The bias turns a zeroed (masked-out) activation lane into 128,
 * but that lane's weight partner is a matched-position zero only
 * when the weight mask bit is also clear — not in general — so the
 * correction term must use the EXPANDED weight vector's column sum,
 * which counts exactly the lanes the biased product saw. Both
 * accumulators wrap mod 2^32, so the result is bit-identical to the
 * scalar rank-gather loop.
 */
int32_t
dotRowVnni(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
    const __m512i ones = _mm512_set1_epi8(1);
    __m512i acc = _mm512_setzero_si512();
    __m512i wsum = _mm512_setzero_si512();
    int b = 0;
    for (; b + 8 <= nblocks; b += 8) {
        const __m512i av = expandOct(a + b, groupMasks(a + b));
        const __m512i wv = expandOct(w + b, groupMasks(w + b));
        acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(av, bias),
                                  wv);
        wsum = _mm512_dpbusd_epi32(wsum, ones, wv);
    }
    if (b < nblocks) {
        DbbBlock tail_a[8] = {};
        DbbBlock tail_w[8] = {};
        for (int t = 0; b + t < nblocks; ++t) {
            tail_a[t] = a[b + t];
            tail_w[t] = w[b + t];
        }
        const __m512i av = expandOct(tail_a, groupMasks(tail_a));
        const __m512i wv = expandOct(tail_w, groupMasks(tail_w));
        acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(av, bias),
                                  wv);
        wsum = _mm512_dpbusd_epi32(wsum, ones, wv);
    }
    const uint32_t biased = static_cast<uint32_t>(reduceAdd512(acc));
    const uint32_t col_sum =
        static_cast<uint32_t>(reduceAdd512(wsum));
    return static_cast<int32_t>(biased - 128u * col_sum);
}

} // anonymous namespace

int32_t
dbbDotRowAvx512(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    // The intersection kernel's probe requires only bw + vbmi; the
    // faster vpdpbusd contraction is a runtime upgrade on CPUs that
    // also have avx512vnni (one perfectly-predicted branch per row).
    static const bool vnni = dbbVnniKernelSupportedImpl();
    return vnni ? dotRowVnni(a, w, nblocks)
                : dotRowMadd(a, w, nblocks);
}

bool
dbbAvx512KernelSupportedImpl()
{
    return __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vbmi");
}

int32_t
dbbDenseDotVnni(const int8_t *a, const int8_t *w, int k)
{
    const __m512i bias = _mm512_set1_epi8(
        static_cast<char>(0x80));
    const __m512i ones = _mm512_set1_epi8(1);
    __m512i acc = _mm512_setzero_si512();
    __m512i wsum = _mm512_setzero_si512();
    int x = 0;
    for (; x + 64 <= k; x += 64) {
        const __m512i av = _mm512_loadu_si512(a + x);
        const __m512i wv = _mm512_loadu_si512(w + x);
        acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(av, bias),
                                  wv);
        wsum = _mm512_dpbusd_epi32(wsum, ones, wv);
    }
    if (x < k) {
        // Masked tail: a zero-filled lane biases to exactly 128 but
        // meets a zero weight, so both dot products gain nothing.
        const __mmask64 tail =
            (~static_cast<uint64_t>(0)) >>
            (64 - static_cast<unsigned>(k - x));
        const __m512i av = _mm512_maskz_loadu_epi8(tail, a + x);
        const __m512i wv = _mm512_maskz_loadu_epi8(tail, w + x);
        acc = _mm512_dpbusd_epi32(acc, _mm512_xor_si512(av, bias),
                                  wv);
        wsum = _mm512_dpbusd_epi32(wsum, ones, wv);
    }
    // dp(a + 128, w) - 128 * dp(1, w) == dp(a, w) mod 2^32; do the
    // correction in unsigned arithmetic so the wrap is well-defined.
    const uint32_t biased = static_cast<uint32_t>(reduceAdd512(acc));
    const uint32_t col_sum =
        static_cast<uint32_t>(reduceAdd512(wsum));
    return static_cast<int32_t>(biased - 128u * col_sum);
}

bool
dbbVnniKernelSupportedImpl()
{
    return __builtin_cpu_supports("avx512vnni");
}

int64_t
dbbProfileVectorAvx512(const DbbBlock *blocks, int nblocks,
                       int32_t *hist, int hist_len)
{
    // Only 8-block groups whose full 64-position window fits in the
    // histogram take the SIMD path; K's tail blocks (positions that
    // would index past hist_len) stay on the per-bit loop below.
    int simd_groups = nblocks / 8;
    if (simd_groups > hist_len / 64)
        simd_groups = hist_len / 64;

    __m512i nnz_acc = _mm512_setzero_si512();
    alignas(64) uint64_t words[8];
    int wi = 0;
    for (int g = 0; g < simd_groups; ++g) {
        const DbbBlock *blk = blocks + g * 8;
        uint64_t km = 0;
        for (int j = 0; j < 8; ++j)
            km |= static_cast<uint64_t>(blk[j].mask) << (8 * j);
        words[wi++] = km;
        if (wi == 8) {
            nnz_acc = _mm512_add_epi64(
                nnz_acc,
                _mm512_popcnt_epi64(_mm512_load_si512(words)));
            wi = 0;
        }
        // Widen the 64 mask bits to 0/-1 bytes, then to 0/-1 INT32
        // lanes, and subtract into the histogram (x - (-1) == x+1).
        const __m512i bytes =
            _mm512_movm_epi8(static_cast<__mmask64>(km));
        int32_t *h = hist + g * 64;
        for (int c = 0; c < 4; ++c) {
            // maskz forms with all-ones masks: same instructions as
            // the plain variants, but their expansions avoid the
            // _mm*_undefined_* helpers -Werror=uninitialized rejects.
            const __m512i wide = _mm512_maskz_cvtepi8_epi32(
                static_cast<__mmask16>(0xFFFF),
                _mm512_maskz_extracti32x4_epi32(
                    static_cast<__mmask8>(0xF), bytes, c));
            const __m512i cur = _mm512_loadu_si512(h + c * 16);
            _mm512_storeu_si512(h + c * 16,
                                _mm512_sub_epi32(cur, wide));
        }
    }
    if (wi > 0) {
        for (int z = wi; z < 8; ++z)
            words[z] = 0;
        nnz_acc = _mm512_add_epi64(
            nnz_acc, _mm512_popcnt_epi64(_mm512_load_si512(words)));
    }
    alignas(64) int64_t nnz_lane[8];
    _mm512_store_si512(nnz_lane, nnz_acc);
    int64_t nnz = 0;
    for (int i = 0; i < 8; ++i)
        nnz += nnz_lane[i]; // popcounts: no overflow possible


    for (int b = simd_groups * 8; b < nblocks; ++b) {
        unsigned m = blocks[b].mask;
        nnz += __builtin_popcount(m);
        while (m != 0) {
            ++hist[b * 8 + __builtin_ctz(m)];
            m &= m - 1;
        }
    }
    return nnz;
}

bool
dbbVpopcntKernelSupportedImpl()
{
    return __builtin_cpu_supports("avx512vpopcntdq") &&
           __builtin_cpu_supports("avx512bw");
}

#else // !S2TA_HAVE_SIMD_AVX512

// Built without the x86-64-v4 option (or on a target without
// AVX-512 codegen): keep the symbols so the dispatcher links, but
// report every sub-feature unavailable — dbbActiveKernel() then
// falls through to the AVX2/SSSE3 tiers or the scalar path and
// these aliases are never called in anger.
int32_t
dbbDotRowAvx512(const DbbBlock *a, const DbbBlock *w, int nblocks)
{
    return dbbDotRow(a, w, nblocks);
}

bool
dbbAvx512KernelSupportedImpl()
{
    return false;
}

int32_t
dbbDenseDotVnni(const int8_t *a, const int8_t *w, int k)
{
    int32_t sum = 0;
    for (int x = 0; x < k; ++x)
        sum += static_cast<int32_t>(a[x]) * w[x];
    return sum;
}

bool
dbbVnniKernelSupportedImpl()
{
    return false;
}

int64_t
dbbProfileVectorAvx512(const DbbBlock *blocks, int nblocks,
                       int32_t *hist, int hist_len)
{
    (void)hist_len;
    int64_t nnz = 0;
    for (int b = 0; b < nblocks; ++b) {
        unsigned m = blocks[b].mask;
        nnz += __builtin_popcount(m);
        while (m != 0) {
            ++hist[b * 8 + __builtin_ctz(m)];
            m &= m - 1;
        }
    }
    return nnz;
}

bool
dbbVpopcntKernelSupportedImpl()
{
    return false;
}

#endif // S2TA_HAVE_SIMD_AVX512

} // namespace s2ta
