#include "arch/backend.hh"

#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "base/fault_injection.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace s2ta {

namespace {

/** Which engine a DeviceBackend runs and what transfer it models. */
enum class BackendKind
{
    /** The configured (fast) engine, zero transfer cost. */
    InProcess,
    /** Forces the scalar reference engine: the differential anchor
     *  every other backend is compared against. */
    ScalarRef,
    /** The fast engine plus a modeled host<->device link: a fixed
     *  kick cost plus the command's DMA bytes over the link
     *  bandwidth, on the virtual clock only. */
    RemoteStub,
};

/**
 * The one concrete backend: an Accelerator driven through a bounded
 * command queue by a single device thread (or inline when
 * synchronous). submit() claims a queue slot, runs the host-side
 * prepareLayer on the calling thread, and enqueues the prepared
 * command; the device thread pops commands in FIFO order and runs
 * executePrepared. A completed result parks in a token-keyed map
 * until wait() downloads it, and the queue slot frees at device
 * completion — not at wait() — so any wait order is deadlock-free.
 *
 * Determinism: a command's result depends only on (workload,
 * options, device config) — prepare and execute are const methods
 * of a const Accelerator — so reordered waits, delayed waits, or
 * racing submitters change timing, never bytes.
 */
class DeviceBackend final : public Backend
{
  public:
    DeviceBackend(std::string name, BackendKind kind,
                  const AcceleratorConfig &acfg,
                  const BackendConfig &bcfg)
        : name_(std::move(name)), kind_(kind), bcfg_(bcfg),
          acc(deviceConfig(acfg, bcfg))
    {
        s2ta_assert(bcfg_.queue_depth >= 1, "queue depth %d",
                    bcfg_.queue_depth);
        s2ta_assert(bcfg_.link_bytes_per_cycle > 0.0,
                    "link bandwidth %.3f B/cycle",
                    bcfg_.link_bytes_per_cycle);
        s2ta_assert(bcfg_.kick_cycles >= 0, "kick cost %lld cycles",
                    static_cast<long long>(bcfg_.kick_cycles));
        if (!bcfg_.synchronous)
            device = std::thread([this] { deviceLoop(); });
    }

    ~DeviceBackend() override
    {
        if (device.joinable()) {
            {
                std::lock_guard<std::mutex> lk(mu);
                stopping = true;
            }
            cv_device.notify_all();
            device.join();
        }
    }

    const std::string &name() const override { return name_; }

    const AcceleratorConfig &
    config() const override
    {
        return acc.config();
    }

    const BackendConfig &
    queueConfig() const override
    {
        return bcfg_;
    }

    Token
    submit(const LayerWorkload &wl,
           const NetworkRunOptions &opt) override
    {
        S2TA_TRACE_SPAN("backend", "submit");
        NetworkRunOptions ro = opt;
        if (kind_ == BackendKind::ScalarRef)
            ro.engine = EngineKind::Scalar;

        Token t;
        [[maybe_unused]] int queued; // only the trace hook reads it
        {
            // Claim a queue slot *before* preparing: the depth
            // bounds staged-operand memory, and depth 1 degrades to
            // a fully serialized prepare -> execute pipeline.
            std::unique_lock<std::mutex> lk(mu);
            cv_submit.wait(lk, [&] {
                return in_flight < bcfg_.queue_depth;
            });
            ++in_flight;
            queued = in_flight;
            t = next_token++;
            staged.insert(t);
            stats_.submitted += 1;
        }
        S2TA_TRACE_COUNTER("backend", "backend.queue_depth",
                           queued);
        S2TA_METRIC_INC("backend.submitted");

        // Host-side stage outside the lock: the im2col + encode +
        // upload-accounting work that overlaps the device's
        // execution of previously submitted commands.
        Command cmd;
        cmd.token = t;
        cmd.opt = ro;
        {
            S2TA_TRACE_SPAN_ID("backend", "prepare", t);
            cmd.prep = acc.prepareLayer(wl, ro);
        }
        cmd.transfer_cycles = modeledTransferCycles(cmd.prep);
        S2TA_METRIC_ADD("backend.h2d_bytes", cmd.prep.h2d_bytes);
        {
            std::lock_guard<std::mutex> lk(mu);
            stats_.h2d_bytes += cmd.prep.h2d_bytes;
            stats_.transfer_cycles += cmd.transfer_cycles;
        }

        if (bcfg_.synchronous) {
            LayerRun run;
            {
                S2TA_TRACE_SPAN_ID("backend", "execute", cmd.token);
                run = acc.executePrepared(cmd.prep, cmd.opt);
            }
            complete(cmd.token, cmd.transfer_cycles,
                     std::move(run));
        } else {
            {
                std::lock_guard<std::mutex> lk(mu);
                queue.push_back(std::move(cmd));
            }
            cv_device.notify_one();
        }
        return t;
    }

    LayerRun
    wait(Token t, int64_t *transfer_cycles) override
    {
        S2TA_TRACE_SPAN_ID("backend", "wait", t);
        std::unique_lock<std::mutex> lk(mu);
        s2ta_assert(staged.count(t) != 0 || done.count(t) != 0,
                    "token %llu is not outstanding (never issued, "
                    "or already waited)",
                    static_cast<unsigned long long>(t));
        cv_done.wait(lk, [&] { return done.count(t) != 0; });
        auto it = done.find(t);
        Done d = std::move(it->second);
        done.erase(it);
        stats_.d2h_bytes += d.run.d2h_bytes;
        S2TA_METRIC_ADD("backend.d2h_bytes", d.run.d2h_bytes);
        if (transfer_cycles != nullptr)
            *transfer_cycles = d.transfer_cycles;
        return std::move(d.run);
    }

    Residency
    residency(Token t) const override
    {
        std::lock_guard<std::mutex> lk(mu);
        s2ta_assert(t >= 1 && t < next_token, "unknown token %llu",
                    static_cast<unsigned long long>(t));
        if (staged.count(t) != 0)
            return Residency::Staged;
        if (done.count(t) != 0)
            return Residency::Device;
        return Residency::Host;
    }

    BackendStats
    stats() const override
    {
        std::lock_guard<std::mutex> lk(mu);
        return stats_;
    }

  private:
    struct Command
    {
        Token token = 0;
        NetworkRunOptions opt;
        PreparedLayer prep;
        int64_t transfer_cycles = 0;
    };

    struct Done
    {
        LayerRun run;
        int64_t transfer_cycles = 0;
    };

    /**
     * The device thread must never borrow the process-global thread
     * pool: a serving scheduler holds the pool's job lock across a
     * whole request fan-out while its lanes block in wait(), so a
     * device-side parallelFor on the global pool would deadlock.
     * Serialize device execution unless the caller explicitly gave
     * the backend a dedicated pool (sim_threads > 1). Synchronous
     * mode executes on the submitting thread, exactly like the bare
     * Accelerator, so it keeps the caller's pool choice.
     */
    static AcceleratorConfig
    deviceConfig(AcceleratorConfig acfg, const BackendConfig &bcfg)
    {
        if (!bcfg.synchronous && acfg.sim_threads == 0)
            acfg.sim_threads = 1;
        return acfg;
    }

    /** Closed-form link cost of one command (virtual clock only):
     *  recomputable by tests from the command's DMA bytes. */
    int64_t
    modeledTransferCycles(const PreparedLayer &prep) const
    {
        if (kind_ != BackendKind::RemoteStub)
            return 0;
        const double bytes =
            static_cast<double>(prep.h2d_bytes + prep.d2h_bytes);
        return bcfg_.kick_cycles +
               static_cast<int64_t>(
                   std::ceil(bytes / bcfg_.link_bytes_per_cycle));
    }

    /** Park a finished result and free its queue slot. */
    void
    complete(Token t, int64_t transfer_cycles, LayerRun run)
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            Done d;
            d.run = std::move(run);
            d.transfer_cycles = transfer_cycles;
            staged.erase(t);
            done.emplace(t, std::move(d));
            stats_.completed += 1;
            --in_flight;
        }
        S2TA_METRIC_INC("backend.completed");
        cv_submit.notify_all();
        cv_done.notify_all();
    }

    void
    deviceLoop()
    {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            cv_device.wait(lk, [&] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping, and fully drained
            Command cmd = std::move(queue.front());
            queue.pop_front();
            lk.unlock();
            LayerRun run;
            {
                S2TA_TRACE_SPAN_ID("backend", "execute", cmd.token);
                run = acc.executePrepared(cmd.prep, cmd.opt);
            }
            complete(cmd.token, cmd.transfer_cycles,
                     std::move(run));
            lk.lock();
        }
    }

    const std::string name_;
    const BackendKind kind_;
    const BackendConfig bcfg_;
    const Accelerator acc;

    mutable std::mutex mu;
    std::condition_variable cv_submit;
    std::condition_variable cv_done;
    std::condition_variable cv_device;
    std::deque<Command> queue;
    /** Pending (queued or executing) tokens: Residency::Staged. */
    std::set<Token> staged;
    /** Completed, not yet waited results: Residency::Device. */
    std::map<Token, Done> done;
    BackendStats stats_;
    Token next_token = 1;
    int in_flight = 0;
    bool stopping = false;
    std::thread device;
};

using FactoryMap = std::map<std::string, BackendRegistry::Factory>;

std::mutex &
registryMutex()
{
    static std::mutex mu;
    return mu;
}

FactoryMap &
registryMap()
{
    static FactoryMap map = [] {
        FactoryMap m;
        const auto builtin = [&m](const char *name,
                                  BackendKind kind) {
            m.emplace(
                name,
                [name, kind](const AcceleratorConfig &acfg,
                             const BackendConfig &bcfg) {
                    return std::unique_ptr<Backend>(
                        new DeviceBackend(name, kind, acfg, bcfg));
                });
        };
        builtin("in-process", BackendKind::InProcess);
        builtin("scalar-ref", BackendKind::ScalarRef);
        builtin("remote-stub", BackendKind::RemoteStub);
        return m;
    }();
    return map;
}

} // anonymous namespace

BackendNetworkRun
Backend::runNetworkTimed(const std::vector<LayerWorkload> &layers,
                         const NetworkRunOptions &opt)
{
    // Evaluate every per-layer fault site up front, exactly as
    // Accelerator::runNetwork: the injector's site order — and so
    // its exact counters — must not depend on which execution path
    // carried the attempt, and a faulted attempt aborts before any
    // command is staged.
    BackendNetworkRun out;
    if (opt.fault != nullptr) {
        const AttemptFaults af = evaluateAttemptFaults(
            *opt.fault, opt.fault_id, layers.size());
        out.run.fault_layer = af.fault_layer;
        out.run.fault_count = af.fault_count;
        out.run.stall_events = af.stall_events;
        out.run.stall_cycles = af.stall_cycles;
        if (out.run.faulted())
            return out;
    }

    // Submit in layer order (the queue overlaps prepare k+1 with
    // execute k), wait in layer order, fold in layer order: the
    // totals are bitwise identical to the serial Accelerator.
    std::vector<Token> tokens;
    tokens.reserve(layers.size());
    for (const LayerWorkload &wl : layers)
        tokens.push_back(submit(wl, opt));
    for (Token t : tokens) {
        int64_t tc = 0;
        LayerRun lr = wait(t, &tc);
        out.transfer_cycles += tc;
        out.h2d_bytes += lr.h2d_bytes;
        out.d2h_bytes += lr.d2h_bytes;
        out.run.add(std::move(lr));
    }
    return out;
}

void
BackendRegistry::add(const std::string &name, Factory factory)
{
    s2ta_assert(!name.empty(), "empty backend name");
    s2ta_assert(factory != nullptr, "null factory for backend '%s'",
                name.c_str());
    std::lock_guard<std::mutex> lk(registryMutex());
    registryMap()[name] = std::move(factory);
}

std::vector<std::string>
BackendRegistry::names()
{
    std::lock_guard<std::mutex> lk(registryMutex());
    std::vector<std::string> out;
    out.reserve(registryMap().size());
    for (const auto &kv : registryMap())
        out.push_back(kv.first);
    return out; // std::map iterates sorted
}

std::unique_ptr<Backend>
BackendRegistry::make(const std::string &name,
                      const AcceleratorConfig &acfg,
                      const BackendConfig &bcfg)
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lk(registryMutex());
        const auto it = registryMap().find(name);
        if (it == registryMap().end()) {
            std::string known;
            for (const auto &kv : registryMap()) {
                if (!known.empty())
                    known += ", ";
                known += kv.first;
            }
            s2ta_fatal("unknown backend '%s' (registered: %s)",
                       name.c_str(), known.c_str());
        }
        factory = it->second;
    }
    // Run the (possibly user-supplied) factory outside the lock.
    return factory(acfg, bcfg);
}

std::unique_ptr<Backend>
makeBackend(const std::string &name, const AcceleratorConfig &acfg,
            const BackendConfig &bcfg)
{
    return BackendRegistry::make(name, acfg, bcfg);
}

} // namespace s2ta
