#include "arch/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "arch/plan_cache.hh"
#include "base/fault_injection.hh"
#include "base/thread_pool.hh"
#include "core/dap.hh"

namespace s2ta {

namespace {

/**
 * Content key of one layer's lowered GEMMs: the conv geometry, the
 * lowering alignment, and fingerprints of both operand tensors.
 * Two layers with identical key lower to bit-identical problems,
 * so a PlanCache entry built under this key is valid for any array
 * config that shares the alignment and block size.
 */
uint64_t
layerPlanKey(const LayerWorkload &wl, int channel_align,
             uint64_t input_hash)
{
    uint64_t key = 0x4C41594552ull; // domain tag
    const Conv2dShape &s = wl.shape;
    for (int field : {s.in_c, s.in_h, s.in_w, s.out_c, s.kernel_h,
                      s.kernel_w, s.stride, s.pad, s.groups,
                      wl.batch, channel_align}) {
        key = PlanCache::combine(key,
                                 static_cast<uint64_t>(field));
    }
    key = PlanCache::combine(key, input_hash);
    key = PlanCache::combine(
        key, PlanCache::hashBytes(
                 wl.weights.data(),
                 static_cast<size_t>(wl.weights.size())));
    return key;
}

} // anonymous namespace

void
NetworkRun::add(LayerRun lr)
{
    total.add(lr.events);
    dense_macs += lr.dense_macs;
    layers.push_back(std::move(lr));
}

Accelerator::Accelerator(AcceleratorConfig cfg_) : cfg(cfg_)
{
    cfg.array.check();
    if (cfg.wgt_sram_bytes <= 0 || cfg.act_sram_bytes <= 0)
        s2ta_fatal("non-positive SRAM size");
    if (cfg.dma_bytes_per_cycle <= 0.0)
        s2ta_fatal("non-positive DMA bandwidth");
    if (cfg.sim_threads < 0)
        s2ta_fatal("negative sim_threads %d", cfg.sim_threads);
    if (cfg.sim_threads > 1) {
        // Dedicated pool of exactly sim_threads lanes (the calling
        // thread is one of them).
        own_pool = std::make_unique<ThreadPool>(cfg.sim_threads - 1);
    }
}

Accelerator::~Accelerator() = default;

void
Accelerator::runIndexed(int64_t n,
                        const std::function<void(int64_t)> &fn) const
{
    if (cfg.sim_threads == 1) {
        for (int64_t i = 0; i < n; ++i)
            fn(i);
    } else if (own_pool) {
        own_pool->parallelFor(n, fn);
    } else {
        ThreadPool::global().parallelFor(n, fn);
    }
}

ThreadPool *
Accelerator::shardPool() const
{
    if (cfg.sim_threads == 1)
        return nullptr;
    return own_pool ? own_pool.get() : &ThreadPool::global();
}

int
Accelerator::channelAlign() const
{
    const ArchKind kind = cfg.array.kind;
    return (kind == ArchKind::S2taW || kind == ArchKind::S2taAw)
               ? cfg.array.bz
               : 1;
}

PreparedLayer
Accelerator::prepareLayer(const LayerWorkload &wl,
                          const NetworkRunOptions &opt) const
{
    const bool compute_output = opt.compute_output;
    s2ta_assert(wl.shape.valid(), "invalid shape for layer '%s'",
                wl.name.c_str());
    s2ta_assert(wl.batch >= 1, "layer '%s' batch %d",
                wl.name.c_str(), wl.batch);

    PreparedLayer prep;
    prep.wl = &wl;

    // Per-layer variable A-DBB (and the per-layer weight bound):
    // rebuild the (stateless) array model with this layer's
    // serialization depth (Sec. 5.2). Grouped layers tighten both
    // bounds structurally: an im2col channel segment holds at most
    // groupInC real values per BZ-block (a depthwise tap has one),
    // so the compiler programs the tighter bound.
    ArrayConfig acfg = cfg.array;
    const int seg_bound =
        std::min(acfg.bz, std::max(1, wl.shape.groupInC()));
    if (acfg.kind == ArchKind::S2taAw)
        acfg.act_nnz = std::min(wl.act_nnz, seg_bound);
    if (acfg.kind == ArchKind::S2taAw ||
        acfg.kind == ArchKind::S2taW) {
        acfg.weight_dbb =
            DbbSpec{std::min(wl.wgt_nnz, seg_bound), acfg.bz};
    }
    prep.acfg = acfg;
    prep.model = makeArrayModel(acfg);

    // Each group lowers to an independent GEMM whose plan (encoding
    // + profile) is built once and reused across the whole tile
    // grid. With a plan cache the layer's activations lower
    // (batched, once for all groups) and encode only on first
    // sight; every later design point in the sweep reuses the
    // cached plans.
    const int groups = wl.shape.groups;
    prep.use_cache = opt.plan_cache != nullptr &&
                     opt.engine != EngineKind::Scalar;
    // The input fingerprint keys both the lowered plans and the
    // DAP memo in executePrepared; compute it once per layer visit.
    prep.input_hash =
        prep.use_cache
            ? PlanCache::hashBytes(
                  wl.input.data(),
                  static_cast<size_t>(wl.input.size()))
            : 0;
    if (prep.use_cache) {
        prep.cached = opt.plan_cache->acquireLayer(
            layerPlanKey(wl, channelAlign(), prep.input_hash),
            groups, acfg.bz, compute_output,
            [&] {
                return im2colLowerAll(wl.shape, wl.input,
                                      wl.weights, channelAlign(),
                                      wl.batch);
            },
            [&](int g) {
                return im2colLower(wl.shape, wl.input, wl.weights,
                                   g, channelAlign(), wl.batch);
            });
    } else {
        prep.problems =
            std::make_shared<std::vector<GemmProblem>>(
                im2colLowerAll(wl.shape, wl.input, wl.weights,
                               channelAlign(), wl.batch));
        if (opt.engine != EngineKind::Scalar) {
            // Encode every group's plan on the host — the driver's
            // "stage operands" work an async backend overlaps with
            // device execution of earlier commands. Grouped layers
            // fan the encode out exactly as the synchronous path
            // fanned out the per-group runs.
            prep.plans.resize(static_cast<size_t>(groups));
            runIndexed(groups, [&](int64_t g) {
                prep.plans[static_cast<size_t>(g)] =
                    std::make_shared<const GemmPlan>(
                        GemmPlan::build(
                            (*prep.problems)[static_cast<size_t>(
                                g)],
                            acfg.bz, compute_output));
            });
        }
    }

    // ---- DMA traffic ---------------------------------------------
    // Operands enter compressed where the architecture stores them
    // compressed; outputs leave dense INT8.
    const bool dbb_w = acfg.kind == ArchKind::S2taW ||
                       acfg.kind == ArchKind::S2taAw;
    const bool dbb_a = acfg.kind == ArchKind::S2taAw &&
                       wl.act_nnz < acfg.bz;

    const int64_t wgt_elems = wl.weights.size();
    int64_t wgt_bytes = wgt_elems;
    if (dbb_w) {
        const int bz = acfg.bz;
        const int64_t blocks = (wgt_elems + bz - 1) / bz;
        wgt_bytes = blocks * acfg.weight_dbb.storedBytesPerBlock();
    }
    const int64_t act_elems = wl.input.size();
    int64_t act_bytes = act_elems;
    if (dbb_a) {
        const int bz = acfg.bz;
        const int64_t blocks = (act_elems + bz - 1) / bz;
        act_bytes = blocks * (wl.act_nnz + 1);
    }
    const int64_t out_bytes = static_cast<int64_t>(wl.batch) *
                              wl.shape.outH() * wl.shape.outW() *
                              wl.shape.out_c;

    // Residency policy: an operand that fits its SRAM is loaded
    // once. An operand that overflows is *streamed* once when the
    // other operand is resident (column-stripe-outer order for
    // oversized weights, row-stripe-outer for oversized
    // activations); only when neither fits must the cheaper one be
    // re-streamed per stripe of the other.
    const int row_tiles =
        (wl.batch * wl.shape.outH() * wl.shape.outW() +
         acfg.tileRows() - 1) /
        acfg.tileRows();
    const int col_tiles =
        (wl.shape.groupOutC() + acfg.tileCols() - 1) /
        acfg.tileCols();
    int64_t wgt_dma = wgt_bytes;
    int64_t act_dma = act_bytes;
    if (wgt_bytes > cfg.wgt_sram_bytes &&
        act_bytes > cfg.act_sram_bytes) {
        const int64_t refetch_wgt =
            wgt_bytes * row_tiles + act_bytes;
        const int64_t refetch_act =
            act_bytes * col_tiles + wgt_bytes;
        if (refetch_wgt <= refetch_act)
            wgt_dma = wgt_bytes * row_tiles;
        else
            act_dma = act_bytes * col_tiles;
    }
    prep.h2d_bytes = wgt_dma + act_dma;
    prep.d2h_bytes = out_bytes;
    return prep;
}

LayerRun
Accelerator::executePrepared(const PreparedLayer &prep,
                             const NetworkRunOptions &opt) const
{
    s2ta_assert(prep.wl != nullptr, "executePrepared on an empty "
                "PreparedLayer");
    const LayerWorkload &wl = *prep.wl;
    const ArrayConfig &acfg = prep.acfg;
    const bool compute_output = opt.compute_output;

    LayerRun lr;
    lr.name = wl.name;
    lr.batch = wl.batch;
    lr.dense_macs = wl.shape.denseMacs() * wl.batch;
    lr.act_nnz_used = wl.act_nnz;

    // The GEMM-level options inherit the caller's engine/cache
    // knobs; the shard pool lets a single big GEMM fan out even when
    // the group fan-out is 1 — both the functional kernels (row
    // stripes) and the per-PE timing/event loops of the models
    // (tile-grid stripes, SMT tile samples) shard over it.
    RunOptions gemm_opt = opt;
    gemm_opt.shard_pool = shardPool();

    if (compute_output) {
        std::vector<int> out_shape = {wl.shape.outH(),
                                      wl.shape.outW(),
                                      wl.shape.out_c};
        if (wl.batch > 1)
            out_shape.insert(out_shape.begin(), wl.batch);
        lr.output = Int32Tensor(out_shape, 0);
    }

    // Grouped layers fan out across the simulation threads; events
    // are folded in group order for bitwise determinism.
    const int groups = wl.shape.groups;
    std::vector<GemmRun> runs(static_cast<size_t>(groups));
    runIndexed(groups, [&](int64_t g) {
        const size_t gi = static_cast<size_t>(g);
        if (prep.use_cache)
            runs[gi] =
                prep.model->run(prep.cached[gi]->plan, gemm_opt);
        else if (!prep.plans.empty())
            runs[gi] = prep.model->run(*prep.plans[gi], gemm_opt);
        else
            runs[gi] =
                prep.model->run((*prep.problems)[gi], gemm_opt);
    });
    for (int g = 0; g < groups; ++g) {
        lr.events.add(runs[static_cast<size_t>(g)].events);
        if (compute_output) {
            scatterGemmResult(wl.shape, g,
                              runs[static_cast<size_t>(g)].output,
                              lr.output, wl.batch);
        }
    }

    // The DAP array prunes the input tensor once as it is written to
    // the activation SRAM; its comparator activity belongs to the
    // S2TA-AW design only (other designs have no DAP hardware). The
    // counts depend only on (tensor content, NNZ bound) — not on
    // the array geometry — so sweeps memoize them per layer.
    if (acfg.kind == ArchKind::S2taAw && wl.act_nnz < acfg.bz) {
        const auto prune = [&] {
            Int8Tensor copy = wl.input;
            return dapPruneTensor(copy, wl.act_nnz);
        };
        const DapStats ds =
            prep.use_cache
                ? opt.plan_cache->dapStats(
                      PlanCache::combine(
                          PlanCache::combine(0x444150ull,
                                             prep.input_hash),
                          static_cast<uint64_t>(wl.act_nnz)),
                      prune)
                : prune();
        lr.events.dap_comparisons = ds.comparisons;
        s2ta_assert(ds.nonzeros_dropped == 0,
                    "layer '%s' input does not satisfy its declared "
                    "A-DBB bound %d/8", wl.name.c_str(), wl.act_nnz);
    }

    // The DMA traffic was priced at prepare time (it depends only
    // on operand geometry and the SRAM budgets); fold it into the
    // event record here so a LayerRun stays self-contained.
    lr.h2d_bytes = prep.h2d_bytes;
    lr.d2h_bytes = prep.d2h_bytes;
    lr.events.dma_bytes = prep.h2d_bytes + prep.d2h_bytes;

    // ---- Latency: compute vs DMA (double buffered overlap) -------
    lr.compute_cycles = lr.events.cycles;
    const int64_t dma_cycles = static_cast<int64_t>(std::ceil(
        static_cast<double>(lr.events.dma_bytes) /
        cfg.dma_bytes_per_cycle));
    if (dma_cycles > lr.compute_cycles) {
        lr.memory_bound = true;
        lr.events.cycles = dma_cycles;
    }

    // The MCU cluster must keep up with the activation-function
    // stream (the paper sizes it so it never bottlenecks; warn if a
    // configuration breaks that assumption).
    const double mcu_tput = cfg.mcu_count * cfg.mcu_elems_per_cycle;
    const double mcu_cycles =
        static_cast<double>(lr.events.actfn_elements) / mcu_tput;
    if (mcu_cycles > static_cast<double>(lr.events.cycles)) {
        s2ta_warn("layer '%s': MCU cluster is the bottleneck "
                  "(%.0f > %ld cycles)", wl.name.c_str(), mcu_cycles,
                  lr.events.cycles);
        lr.events.cycles =
            static_cast<int64_t>(std::ceil(mcu_cycles));
    }

    return lr;
}

LayerRun
Accelerator::runLayer(const LayerWorkload &wl,
                      const NetworkRunOptions &opt) const
{
    return executePrepared(prepareLayer(wl, opt), opt);
}

AttemptFaults
evaluateAttemptFaults(const FaultInjector &fi, uint64_t attempt_id,
                      size_t n_layers)
{
    AttemptFaults af;
    for (size_t i = 0; i < n_layers; ++i) {
        const uint64_t lid = FaultInjector::combineId(
            attempt_id, static_cast<uint64_t>(i));
        if (fi.shouldFail(FaultSite::LayerCompute, lid)) {
            if (af.fault_layer < 0)
                af.fault_layer = static_cast<int>(i);
            ++af.fault_count;
        }
        const int64_t stall = fi.stallCycles(lid);
        if (stall > 0) {
            ++af.stall_events;
            af.stall_cycles += stall;
        }
    }
    return af;
}

NetworkRun
Accelerator::runNetwork(const std::vector<LayerWorkload> &layers,
                        const NetworkRunOptions &opt) const
{
    // Evaluate every per-layer fault site up front (a serial loop,
    // so the site evaluation order — and thus the injector's exact
    // counters — is thread-count independent). A compute fault
    // aborts the attempt before anything is simulated: the caller
    // gets a cleanly failed attempt to retry, never a partially
    // built or corrupted result.
    NetworkRun pre;
    if (opt.fault != nullptr) {
        const AttemptFaults af = evaluateAttemptFaults(
            *opt.fault, opt.fault_id, layers.size());
        pre.fault_layer = af.fault_layer;
        pre.fault_count = af.fault_count;
        pre.stall_events = af.stall_events;
        pre.stall_cycles = af.stall_cycles;
        if (pre.faulted())
            return pre;
    }

    // Layers are independent simulations; fan them out and fold the
    // results in layer order so totals are bitwise identical to the
    // serial run.
    std::vector<LayerRun> runs(layers.size());
    const auto run_one = [&](int64_t i) {
        runs[static_cast<size_t>(i)] =
            runLayer(layers[static_cast<size_t>(i)], opt);
    };
    runIndexed(static_cast<int64_t>(layers.size()), run_one);
    NetworkRun nr = std::move(pre);
    for (LayerRun &lr : runs)
        nr.add(std::move(lr));
    return nr;
}

} // namespace s2ta
