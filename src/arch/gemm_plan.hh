/**
 * @file
 * Pre-encoded execution plan for one GEMM.
 *
 * The DBB-native engine exploits the simulator's own sparse format:
 * both operands are encoded into DbbMatrix form exactly once, the
 * OperandProfile is derived from the block masks (O(nnz) bit loops
 * instead of an O(M*K + K*N) dense scan), and density validation is
 * a popcount test per block. Every architecture model consumes the
 * same plan, so nothing is re-encoded inside simulate() and
 * Accelerator::runLayer reuses one plan across the whole tile grid.
 *
 * A plan borrows the GemmProblem it was built from; the problem must
 * outlive the plan. Plans are immutable after construction apart
 * from a small validation memo, so sharing one plan across models is
 * safe in single-threaded use; concurrent runs should validate once
 * up front or use separate plans.
 */

#ifndef S2TA_ARCH_GEMM_PLAN_HH
#define S2TA_ARCH_GEMM_PLAN_HH

#include <optional>

#include "arch/array_model.hh"
#include "core/dbb.hh"

namespace s2ta {

class GemmPlan;

/**
 * DBB-native functional GEMM over a plan's caches. Two exact
 * kernels, chosen by the plan's measured density:
 *
 *  - mask-intersection gathers (dbbDotRow) over the compressed
 *    encodings, O(matched nnz) per block — wins at the very sparse
 *    operating points and is the portable fallback;
 *  - a branch-free SIMD contraction over the dense activation rows
 *    and the plan's transposed weight mirror — at DBB densities of
 *    2/8 and up, eight always-on MAC lanes beat per-match gathers
 *    the same way the paper's DP4M8 beats index-chasing designs.
 *
 * Both are row-tiled so one weight column's data is reused across a
 * stripe of activation rows, and both produce results bit-identical
 * to gemmReference (terms skipped by a mask are exactly zero; INT32
 * accumulation is order-independent). Writes the row-major m x n
 * result.
 */
void dbbGemm(const GemmPlan &plan, int32_t *out);

class GemmPlan
{
  public:
    /**
     * Encode both operands of @p p (one sequential pass each, all
     * non-zeros kept) and derive the mask-based profile. @p bz is
     * the block size; K need not be a multiple (tail blocks are
     * zero-padded losslessly). @p dense_mirror additionally caches
     * the transposed dense weights for dbbGemm's SIMD contraction;
     * skip it for events-only runs that never compute an output.
     */
    static GemmPlan build(const GemmProblem &p, int bz = 8,
                          bool dense_mirror = true);

    /**
     * Wrap @p p without encoding anything: the legacy scalar engine
     * runs straight off the dense operands.
     */
    static GemmPlan shallow(const GemmProblem &p);

    const GemmProblem &problem() const { return *prob; }
    int bz() const { return blk_bz; }
    bool encoded() const { return is_encoded; }

    /** Activation blocks (M vectors of ceil(K/bz) blocks). */
    const DbbMatrix &
    act() const
    {
        s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
        return act_blocks;
    }

    /** Weight blocks (N vectors of ceil(K/bz) blocks). */
    const DbbMatrix &
    wgt() const
    {
        s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
        return wgt_blocks;
    }

    /** Mask-derived operand profile (only on encoded plans). */
    const OperandProfile &
    profile() const
    {
        s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
        return prof;
    }

    /**
     * Dense transposed weight mirror: row j holds the K elements of
     * weight column j contiguously, feeding the SIMD contraction of
     * dbbGemm. Null when the plan was built without it.
     */
    const int8_t *
    wgtDenseT() const
    {
        return wgt_t.empty() ? nullptr : wgt_t.data();
    }

    /** Mask test: activation (i, kk) non-zero. */
    bool
    actNonZero(int i, int kk) const
    {
        return act_blocks.nonZeroAt(i, kk);
    }

    /** Mask test: weight (kk, j) non-zero. */
    bool
    wgtNonZero(int kk, int j) const
    {
        return wgt_blocks.nonZeroAt(j, kk);
    }

    /**
     * Verify every weight block satisfies @p spec via its cached
     * mask popcount; fatal on violation. Repeat calls with the same
     * spec are memoized.
     */
    void checkWeights(const DbbSpec &spec) const;

    /** Same for the activation operand. */
    void checkActivations(const DbbSpec &spec) const;

  private:
    explicit GemmPlan(const GemmProblem &p) : prob(&p) {}

    const GemmProblem *prob;
    int blk_bz = 8;
    bool is_encoded = false;
    DbbMatrix act_blocks;
    DbbMatrix wgt_blocks;
    std::vector<int8_t> wgt_t;
    OperandProfile prof;

    mutable std::optional<DbbSpec> wgt_ok_spec;
    mutable std::optional<DbbSpec> act_ok_spec;
};

} // namespace s2ta

#endif // S2TA_ARCH_GEMM_PLAN_HH
