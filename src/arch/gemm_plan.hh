/**
 * @file
 * Pre-encoded execution plan for one GEMM.
 *
 * The DBB-native engine exploits the simulator's own sparse format:
 * both operands are encoded into DbbMatrix form exactly once, the
 * OperandProfile is derived from the block masks (O(nnz) bit loops
 * instead of an O(M*K + K*N) dense scan), and density validation is
 * a popcount test per block. Every architecture model consumes the
 * same plan, so nothing is re-encoded inside simulate() and
 * Accelerator::runLayer reuses one plan across the whole tile grid.
 *
 * A plan borrows the GemmProblem it was built from; the problem must
 * outlive the plan. Plans are immutable after construction apart
 * from a small validation memo, which is atomic so one plan can be
 * shared across concurrent consumers: sweep lanes (PlanCache hands
 * the same encoding to every design point under comparison) and
 * serving streams (every request re-sending a workload simulates
 * from the same cached encoding). Batched workloads need nothing
 * special here — batch > 1 only grows the problem's M axis.
 */

#ifndef S2TA_ARCH_GEMM_PLAN_HH
#define S2TA_ARCH_GEMM_PLAN_HH

#include <atomic>

#include "arch/array_model.hh"
#include "core/dbb.hh"

namespace s2ta {

class GemmPlan;
class ThreadPool;

/**
 * Implementation the mask-intersection kernel dispatches to. The
 * SSSE3 (x86-64-v2) variant expands both compressed blocks to dense
 * lanes with one pshufb each (the shuffle control is the positional
 * mask's expansion permutation, looked up in a 256-entry table) and
 * contracts them with the same madd tree as the dense kernel; the
 * AVX2 tier widens the same scheme to four blocks per operand per
 * 256-bit shuffle; the AVX-512 tier (x86-64-v4) expands eight
 * blocks per masked-zeroing vpermi2b and carries the VNNI dense-dot
 * and VPOPCNTDQ profile sub-kernels. Every tier is bit-identical to
 * the scalar rank-gather loop (skipped positions contribute exact
 * zeros and INT32 wraparound addition is order-independent).
 */
enum class DbbKernelKind
{
    /** Portable rank-gather loop (dbbDotRow). */
    Scalar,
    /** pshufb mask-expansion + madd contraction (SSSE3). */
    SimdV2,
    /** 256-bit vpshufb expansion, four blocks per shuffle (AVX2). */
    Avx2,
    /** 512-bit masked vpermi2b expansion, eight blocks per permute
     *  (AVX512BW+VBMI), with VNNI/VPOPCNTDQ sub-dispatch. */
    Avx512,
};

/** Canonical lower-case tier name ("scalar", "ssse3", "avx2",
 *  "avx512") — the value bench JSON records as simd_kernel. */
const char *dbbKernelKindName(DbbKernelKind kind);

/**
 * True when the SSSE3 kernel was compiled in (S2TA_ENABLE_X86_64_V2)
 * and this CPU supports it; the dispatcher falls back to the scalar
 * kernel otherwise. The wider tiers are probed separately and
 * preferred when present.
 */
bool dbbSimdKernelAvailable();

/** The kernel dbbGemm's intersection path will actually use: the
 *  widest compiled-in tier this CPU supports, clamped to the forced
 *  cap (dbbForceKernelCap). */
DbbKernelKind dbbActiveKernel();

/**
 * Clamp runtime dispatch to at most @p cap (Avx512, the default,
 * means no clamp — dispatch picks the widest supported tier). The
 * cap pins *every* SIMD decision, not just the intersection row
 * dot: capping below Avx512 also disables the VNNI dense-mirror dot
 * and the VPOPCNTDQ profile derivation, so e.g. a forced "avx2"
 * run executes zero AVX-512 instructions anywhere. Used by the
 * --simd bench flag and by the tier-equivalence tests; thread-safe.
 */
void dbbForceKernelCap(DbbKernelKind cap);

/** The currently forced cap (Avx512 = unclamped). */
DbbKernelKind dbbKernelCap();

/**
 * Test hook: pin the intersection kernel to the scalar
 * implementation even when the SIMD one is available (for
 * equivalence tests that compare both in one process). Equivalent
 * to dbbForceKernelCap(Scalar) / (Avx512). Not for production use;
 * thread-safe.
 */
void dbbForceScalarKernel(bool force);

/** True when dbbGemm's dense-mirror path will use the VNNI
 *  vpdpbusd dot (compiled in, CPU support, cap not below Avx512). */
bool dbbVnniDenseEnabled();

/** True when OperandProfile::fromDbb may use the AVX-512 VPOPCNTDQ
 *  derivation (compiled in, CPU support, cap not below Avx512). */
bool dbbProfileSimdEnabled();

/**
 * DBB-native functional GEMM over a plan's caches. Two exact
 * kernels, chosen by the plan's measured density:
 *
 *  - mask-intersection gathers (dbbDotRow) over the compressed
 *    encodings, O(matched nnz) per block — wins at the very sparse
 *    operating points and is the portable fallback;
 *  - a branch-free SIMD contraction over the dense activation rows
 *    and the plan's transposed weight mirror — at DBB densities of
 *    2/8 and up, eight always-on MAC lanes beat per-match gathers
 *    the same way the paper's DP4M8 beats index-chasing designs.
 *
 * Both are row-tiled so one weight column's data is reused across a
 * stripe of activation rows, and both produce results bit-identical
 * to gemmReference (terms skipped by a mask are exactly zero; INT32
 * accumulation is order-independent). Writes the row-major m x n
 * result.
 *
 * When @p shard_pool is non-null the output tile grid is split into
 * row stripes dispatched across the pool's lanes; stripes write
 * disjoint output rows with unchanged per-element arithmetic, so the
 * result is bitwise identical to the serial run at every thread
 * count (this is how a single big GEMM stays parallel when the
 * layer/group fan-out is 1).
 */
void dbbGemm(const GemmPlan &plan, int32_t *out,
             ThreadPool *shard_pool = nullptr);

class GemmPlan
{
  public:
    /**
     * Encode both operands of @p p (one sequential pass each, all
     * non-zeros kept) and derive the mask-based profile. @p bz is
     * the block size; K need not be a multiple (tail blocks are
     * zero-padded losslessly). @p dense_mirror additionally caches
     * the transposed dense weights for dbbGemm's SIMD contraction;
     * skip it for events-only runs that never compute an output.
     */
    static GemmPlan build(const GemmProblem &p, int bz = 8,
                          bool dense_mirror = true);

    /**
     * Wrap @p p without encoding anything: the legacy scalar engine
     * runs straight off the dense operands.
     */
    static GemmPlan shallow(const GemmProblem &p);

    /** Deserialized pieces of an encoded plan (store hydration). */
    struct Parts
    {
        int bz = 8;
        DbbMatrix act;
        DbbMatrix wgt;
        /** Dense transposed mirror; empty = none materialized. */
        std::vector<int8_t> wgt_t;
        OperandProfile prof;
    };

    /**
     * Reassemble a plan from fully serialized parts (the persistent
     * plan store's hydration path): every member — encodings,
     * mirror, profile — is adopted verbatim, nothing is recomputed.
     * The caller (PlanStore) is responsible for @p parts having
     * come from a build() of operands identical to @p p; the store's
     * checksum + fingerprint validation establishes exactly that.
     */
    static GemmPlan restore(const GemmProblem &p, Parts parts);

    /**
     * Reassemble a plan from its encodings alone (the spill tier's
     * rehydration path, which persists only the compressed blocks).
     * The profile is re-derived from the masks and the dense mirror
     * re-materialized under the same density heuristic as build(),
     * so the result is indistinguishable from a fresh build of the
     * same operands. @p dense_mirror is the original build request.
     */
    static GemmPlan rebuild(const GemmProblem &p, int bz,
                            DbbMatrix act, DbbMatrix wgt,
                            bool dense_mirror);

    const GemmProblem &problem() const { return *prob; }
    int bz() const { return blk_bz; }
    bool encoded() const { return is_encoded; }

    /** Activation blocks (M vectors of ceil(K/bz) blocks). */
    const DbbMatrix &
    act() const
    {
        s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
        return act_blocks;
    }

    /** Weight blocks (N vectors of ceil(K/bz) blocks). */
    const DbbMatrix &
    wgt() const
    {
        s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
        return wgt_blocks;
    }

    /** Mask-derived operand profile (only on encoded plans). */
    const OperandProfile &
    profile() const
    {
        s2ta_assert(is_encoded, "plan is shallow (scalar engine)");
        return prof;
    }

    /**
     * Dense transposed weight mirror: row j holds the K elements of
     * weight column j contiguously, feeding the SIMD contraction of
     * dbbGemm. Null when the plan was built without it.
     */
    const int8_t *
    wgtDenseT() const
    {
        return wgt_t.empty() ? nullptr : wgt_t.data();
    }

    /** Mask test: activation (i, kk) non-zero. */
    bool
    actNonZero(int i, int kk) const
    {
        return act_blocks.nonZeroAt(i, kk);
    }

    /** Mask test: weight (kk, j) non-zero. */
    bool
    wgtNonZero(int kk, int j) const
    {
        return wgt_blocks.nonZeroAt(j, kk);
    }

    /**
     * Verify every weight block satisfies @p spec via its cached
     * mask popcount; fatal on violation. Repeat calls with the same
     * spec are memoized; the memo is atomic and re-validation by a
     * racing lane is idempotent, so concurrent consumers of a
     * cached plan may all call this.
     */
    void checkWeights(const DbbSpec &spec) const;

    /** Same contract for the activation operand. */
    void checkActivations(const DbbSpec &spec) const;

    // Movable (the memo atomics need explicit transfer); plans are
    // heavyweight, so copies stay disallowed — share via PlanCache.
    GemmPlan(GemmPlan &&o) noexcept
        : prob(o.prob), blk_bz(o.blk_bz), is_encoded(o.is_encoded),
          act_blocks(std::move(o.act_blocks)),
          wgt_blocks(std::move(o.wgt_blocks)),
          wgt_t(std::move(o.wgt_t)), prof(std::move(o.prof)),
          wgt_ok_spec(o.wgt_ok_spec.load()),
          act_ok_spec(o.act_ok_spec.load())
    {}

    GemmPlan &
    operator=(GemmPlan &&o) noexcept
    {
        prob = o.prob;
        blk_bz = o.blk_bz;
        is_encoded = o.is_encoded;
        act_blocks = std::move(o.act_blocks);
        wgt_blocks = std::move(o.wgt_blocks);
        wgt_t = std::move(o.wgt_t);
        prof = std::move(o.prof);
        wgt_ok_spec.store(o.wgt_ok_spec.load());
        act_ok_spec.store(o.act_ok_spec.load());
        return *this;
    }

    GemmPlan(const GemmPlan &) = delete;
    GemmPlan &operator=(const GemmPlan &) = delete;

  private:
    explicit GemmPlan(const GemmProblem &p) : prob(&p) {}

    /**
     * Shared tail of build()/rebuild(): adopt the encodings, derive
     * the profile from the masks, and materialize the dense mirror
     * under the density heuristic. One implementation so a
     * rehydrated plan can never drift from a fresh build.
     */
    static GemmPlan assemble(const GemmProblem &p, int bz,
                             DbbMatrix act, DbbMatrix wgt,
                             bool dense_mirror);

    /** Pack a spec into a non-zero memo word (nnz >= 1 always). */
    static uint16_t
    encodeSpec(const DbbSpec &spec)
    {
        return static_cast<uint16_t>(spec.nnz |
                                     (spec.bz << 8));
    }

    const GemmProblem *prob;
    int blk_bz = 8;
    bool is_encoded = false;
    DbbMatrix act_blocks;
    DbbMatrix wgt_blocks;
    std::vector<int8_t> wgt_t;
    OperandProfile prof;

    // Last spec each operand was verified against (0 = none).
    // Atomic so a cached plan shared across sweep lanes can be
    // validated concurrently; re-validation by a racing lane is
    // idempotent.
    mutable std::atomic<uint16_t> wgt_ok_spec{0};
    mutable std::atomic<uint16_t> act_ok_spec{0};
};

} // namespace s2ta

#endif // S2TA_ARCH_GEMM_PLAN_HH
