/**
 * @file
 * Architectural event counters.
 *
 * Every array model produces an EventCounts record per GEMM; the
 * energy model (src/energy) maps these to per-component energy. The
 * counters are the same quantities the paper extracts from annotated
 * VCD switching traces (Sec. 7), just collected analytically.
 */

#ifndef S2TA_ARCH_EVENT_COUNTS_HH
#define S2TA_ARCH_EVENT_COUNTS_HH

#include <cstdint>

namespace s2ta {

/** Raw activity counts accumulated over a simulated GEMM or layer. */
struct EventCounts
{
    /** Total array clock cycles (including fill/drain and stalls). */
    int64_t cycles = 0;

    /** Dense-equivalent work m*k*n (speedup/efficiency baseline). */
    int64_t logical_macs = 0;

    /** MACs where both operands are non-zero (full switching). */
    int64_t macs_executed = 0;
    /** MAC slots evaluated with a zero operand, *not* clock gated
     *  (plain dense SA): reduced but non-trivial switching. */
    int64_t macs_zero = 0;
    /** MAC slots clock-gated (ZVCG or unused DBB slots). */
    int64_t macs_gated = 0;

    /** Operand pipeline-register bytes written (active values). */
    int64_t operand_reg_bytes = 0;
    /** Operand register writes gated by ZVCG (zero bytes). */
    int64_t operand_reg_gated_bytes = 0;
    /** 32-bit output-stationary accumulator updates. */
    int64_t accum_updates = 0;
    /** Accumulator updates suppressed (zero product, ZVCG). */
    int64_t accum_gated = 0;

    /** SMT staging-FIFO entry pushes (operand pairs). */
    int64_t fifo_pushes = 0;
    /** SMT staging-FIFO entry pops. */
    int64_t fifo_pops = 0;

    /** DBB steering-mux select operations (DP4M8 / DP1M4). */
    int64_t mux_selects = 0;

    /** Weight SRAM bytes read. */
    int64_t wgt_sram_bytes = 0;
    /** Activation SRAM bytes read. */
    int64_t act_sram_read_bytes = 0;
    /** Activation SRAM bytes written (layer outputs, DAP results). */
    int64_t act_sram_write_bytes = 0;

    /** DAP comparator operations (8-bit magnitude compares). */
    int64_t dap_comparisons = 0;

    /** Elements processed by the MCU (activation fn, pooling, ...). */
    int64_t actfn_elements = 0;

    /** DRAM<->SRAM DMA traffic in bytes. */
    int64_t dma_bytes = 0;

    /** Accumulate another record into this one. */
    void add(const EventCounts &o);

    /**
     * Scale all counters by @p factor (used when a layer was
     * simulated on a subsampled set of output pixels; events are
     * linear in output pixels for fixed operand distributions).
     * Cycle counts scale too; rounding is to nearest.
     */
    void scale(double factor);

    /** Occupied MAC-slot cycles (executed + zero + gated). */
    int64_t
    macSlots() const
    {
        return macs_executed + macs_zero + macs_gated;
    }

    bool operator==(const EventCounts &) const = default;
};

} // namespace s2ta

#endif // S2TA_ARCH_EVENT_COUNTS_HH
