#include "arch/array_config.hh"

#include <cstdio>

#include "base/logging.hh"

namespace s2ta {

const char *
archKindName(ArchKind kind)
{
    switch (kind) {
      case ArchKind::Sa:     return "SA";
      case ArchKind::SaZvcg: return "SA-ZVCG";
      case ArchKind::SaSmt:  return "SA-SMT";
      case ArchKind::S2taW:  return "S2TA-W";
      case ArchKind::S2taAw: return "S2TA-AW";
    }
    return "?";
}

std::string
TpeGeometry::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%dx%dx%d_%dx%d", a, b, c, m, n);
    return buf;
}

int64_t
ArrayConfig::totalMacs() const
{
    const int64_t tpes = static_cast<int64_t>(tpe.m) * tpe.n;
    switch (kind) {
      case ArchKind::Sa:
      case ArchKind::SaZvcg:
      case ArchKind::SaSmt:
        // Scalar PEs: one MAC each.
        return tpes * tpe.a * tpe.b * tpe.c;
      case ArchKind::S2taW:
        // A x C DP4M8 units per TPE, 4 hardware MACs each (the
        // datapath width is fixed; denser weight specs take extra
        // passes, they do not grow the hardware).
        return tpes * tpe.a * tpe.c * kDp4Lanes;
      case ArchKind::S2taAw:
        // A x C DP1M4 units per TPE, one MAC each.
        return tpes * tpe.a * tpe.c;
    }
    return 0;
}

std::string
ArrayConfig::name() const
{
    std::string s = archKindName(kind);
    s += "(" + tpe.toString();
    if (kind == ArchKind::SaSmt) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ",T%dQ%d", smt.threads,
                      smt.queue_depth);
        s += buf;
    }
    if (kind == ArchKind::S2taW || kind == ArchKind::S2taAw)
        s += ",W" + weight_dbb.toString();
    if (kind == ArchKind::S2taAw) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), ",A%d/%d", act_nnz, bz);
        s += buf;
    }
    s += ")";
    return s;
}

void
ArrayConfig::check() const
{
    if (tpe.a < 1 || tpe.b < 1 || tpe.c < 1 || tpe.m < 1 || tpe.n < 1)
        s2ta_fatal("invalid TPE geometry %s", tpe.toString().c_str());
    if (bz < 1 || bz > 8)
        s2ta_fatal("invalid block size %d", bz);
    switch (kind) {
      case ArchKind::Sa:
      case ArchKind::SaZvcg:
        break;
      case ArchKind::SaSmt:
        if (smt.threads < 1 || smt.queue_depth < 1)
            s2ta_fatal("invalid SMT config T%dQ%d", smt.threads,
                       smt.queue_depth);
        break;
      case ArchKind::S2taW:
        if (!weight_dbb.valid() || weight_dbb.bz != bz)
            s2ta_fatal("invalid weight DBB %s",
                       weight_dbb.toString().c_str());
        if (tpe.b != bz)
            s2ta_fatal("S2TA-W expects B == BZ (got B=%d, BZ=%d)",
                       tpe.b, bz);
        break;
      case ArchKind::S2taAw:
        if (!weight_dbb.valid() || weight_dbb.bz != bz)
            s2ta_fatal("invalid weight DBB %s",
                       weight_dbb.toString().c_str());
        if (act_nnz < 1 || act_nnz > bz)
            s2ta_fatal("invalid A-DBB NNZ %d", act_nnz);
        break;
    }
}

ArrayConfig
ArrayConfig::sa()
{
    ArrayConfig cfg;
    cfg.kind = ArchKind::Sa;
    cfg.tpe = {1, 1, 1, 32, 64};
    return cfg;
}

ArrayConfig
ArrayConfig::saZvcg()
{
    ArrayConfig cfg = sa();
    cfg.kind = ArchKind::SaZvcg;
    return cfg;
}

ArrayConfig
ArrayConfig::saSmt(int queue_depth)
{
    ArrayConfig cfg = sa();
    cfg.kind = ArchKind::SaSmt;
    cfg.smt = {2, queue_depth};
    return cfg;
}

ArrayConfig
ArrayConfig::s2taW()
{
    ArrayConfig cfg;
    cfg.kind = ArchKind::S2taW;
    cfg.tpe = {4, 8, 4, 4, 8};
    cfg.weight_dbb = {4, 8};
    return cfg;
}

ArrayConfig
ArrayConfig::s2taAw(int act_nnz)
{
    ArrayConfig cfg;
    cfg.kind = ArchKind::S2taAw;
    cfg.tpe = {8, 4, 4, 8, 8};
    cfg.weight_dbb = {4, 8};
    cfg.act_nnz = act_nnz;
    return cfg;
}

} // namespace s2ta
