/**
 * @file
 * Abstract cycle-level array model and its factory.
 *
 * Contract shared by all architectures (DESIGN.md Sec. 3):
 *  - run() returns exact cycle and event counts for the given GEMM;
 *  - when RunOptions::compute_output is set, the model also computes
 *    the INT32 result *through its own datapath steering logic*
 *    (e.g. DBB mask/rank muxing), which must match gemmReference()
 *    bit for bit;
 *  - operands must already satisfy the config's density bounds
 *    (prune with core/weight_pruner.hh or core/dap.hh first);
 *    checkOperands() verifies this.
 */

#ifndef S2TA_ARCH_ARRAY_MODEL_HH
#define S2TA_ARCH_ARRAY_MODEL_HH

#include <memory>
#include <vector>

#include "arch/array_config.hh"
#include "arch/event_counts.hh"
#include "base/random.hh"
#include "base/thread_pool.hh"
#include "tensor/gemm.hh"

namespace s2ta {

class GemmPlan;
class PlanCache;

/**
 * Which simulation engine executes the run.
 *
 * Both engines produce bitwise-identical events and outputs; DbbFast
 * is the default and exploits the DBB format itself (mask
 * intersection + rank gathers, O(matched nnz) per block), while
 * Scalar preserves the original per-element loops as a reference and
 * as the baseline for bench_engine_throughput.
 */
enum class EngineKind
{
    /** Legacy per-element loops over the dense operands. */
    Scalar,
    /** Mask-intersection kernels over cached DBB encodings. */
    DbbFast,
};

/** Per-run options. */
struct RunOptions
{
    /** Compute the functional INT32 output (slower; exact). */
    bool compute_output = true;
    /** Verify the operands satisfy the config's density bounds
     *  before simulating (on in tests, off in benches). */
    bool validate_operands = true;
    /** Simulation engine; results are engine-independent. */
    EngineKind engine = EngineKind::DbbFast;
    /** Seed for SMT queue-timing sampling (deterministic). */
    uint64_t seed = 0xC0FFEE;
    /** PEs sampled per tile for SMT timing. */
    int smt_sample_pes = 192;
    /** Tiles simulated for SMT timing (mean reused for the rest). */
    int smt_sample_tiles = 6;
    /**
     * Cross-run plan cache: when set (and the engine is not
     * Scalar), run(GemmProblem) reuses the cached DBB encoding of
     * identical operands instead of re-encoding — one encode per
     * workload across a whole architecture sweep. Results are
     * bitwise identical with or without the cache. Not owned.
     */
    PlanCache *plan_cache = nullptr;
    /**
     * Intra-GEMM tile-stripe sharding: when set, the functional
     * kernels split the output tile grid into row stripes across
     * this pool's lanes, the per-PE tile-grid event loops of the
     * S2TA models shard the same way for large grids
     * (ArrayModel::sumTileGrid), and the SMT queue-timing loop fans
     * its sampled tiles across the pool after a serial RNG
     * pre-draw. Every path is bitwise identical to serial at any
     * lane count. Not owned; nullptr = serial.
     */
    ThreadPool *shard_pool = nullptr;
};

/** Result of simulating one GEMM on an array. */
struct GemmRun
{
    EventCounts events;
    /** Row-major m x n INT32 result; empty if not requested. */
    std::vector<int32_t> output;

    /** Dense-equivalent MACs per cycle, in [0, totalMacs]. */
    double
    effectiveMacsPerCycle() const
    {
        return events.cycles == 0
                   ? 0.0
                   : static_cast<double>(events.logical_macs) /
                         static_cast<double>(events.cycles);
    }
};

/**
 * Pre-computed non-zero structure of a GEMM's operands.
 *
 * All architecture-independent event totals reduce to closed forms
 * over these counts; e.g. the number of position-matched non-zero
 * products is sum_k actNzAtK[k] * wgtNzAtK[k], so no O(m*k*n) sweep
 * is ever needed for event accounting.
 */
struct OperandProfile
{
    int m = 0, k = 0, n = 0;
    /** Non-zero count of each activation row (length m). */
    std::vector<int32_t> row_nz;
    /** Non-zero count of each weight column (length n). */
    std::vector<int32_t> col_nz;
    /** #rows with a non-zero activation at position kk (length k). */
    std::vector<int32_t> act_nz_at_k;
    /** #cols with a non-zero weight at position kk (length k). */
    std::vector<int32_t> wgt_nz_at_k;
    int64_t act_nnz = 0;
    int64_t wgt_nnz = 0;
    /** Total (i,j,kk) triples with both operands non-zero. */
    int64_t matched_products = 0;

    /** Reference construction: dense O(m*k + k*n) scan. */
    static OperandProfile build(const GemmProblem &p);

    /**
     * Fast construction from cached DBB encodings: per-position
     * counts come from mask bit loops (O(nnz)) and per-vector counts
     * from block popcounts. Bit-identical to build().
     */
    static OperandProfile fromDbb(const GemmProblem &p,
                                  const DbbMatrix &act,
                                  const DbbMatrix &wgt);
};

/** Base class for all cycle-level array models. */
class ArrayModel
{
  public:
    virtual ~ArrayModel() = default;

    const ArrayConfig &config() const { return cfg; }

    /**
     * Simulate one GEMM.
     * Fatal if the operands violate the config's density bounds.
     */
    GemmRun run(const GemmProblem &p,
                const RunOptions &opt = RunOptions{}) const;

    /**
     * Simulate one GEMM from a pre-built plan. The plan's encodings
     * and profile are reused as-is, so a caller comparing several
     * architectures on the same operands pays the encoding cost
     * once. The plan must be encoded unless opt.engine is Scalar.
     */
    GemmRun run(const GemmPlan &plan,
                const RunOptions &opt = RunOptions{}) const;

    /**
     * Verify the operands satisfy this architecture's requirements
     * (K multiple of BZ for DBB kinds, density bounds respected).
     * Validates in place over operand rows; no block copies.
     */
    void checkOperands(const GemmProblem &p) const;

    /** Same contract, from a plan's cached masks (popcount test). */
    void checkPlan(const GemmPlan &plan) const;

    /**
     * Tile grids at or above this many tiles shard their per-tile
     * event loops across RunOptions::shard_pool (below it, stripe
     * dispatch would cost more than the loop). Public so tests and
     * benches can construct grids on either side of the cutover.
     */
    static constexpr int64_t kShardTileThreshold = 1024;

  protected:
    explicit ArrayModel(ArrayConfig cfg_);

    /** Architecture-specific simulation. */
    virtual void simulate(const GemmPlan &plan, const RunOptions &opt,
                          GemmRun &out) const = 0;

    /** True when this run executes the legacy scalar engine (by
     *  request, or because the plan carries no encodings). */
    static bool usesScalarEngine(const GemmPlan &plan,
                                 const RunOptions &opt);

    /**
     * Operand profile for this run: the scalar engine rebuilds it
     * with the reference dense scan, the fast engine takes the
     * plan's mask-derived copy. Both are bit-identical.
     */
    static OperandProfile profileFor(const GemmPlan &plan,
                                     const RunOptions &opt);

    /**
     * Functional output for architectures whose datapath sums in
     * reference order: gemmReference on the scalar engine, dbbGemm
     * (tile-stripe sharded over opt.shard_pool when set) on the
     * fast engine.
     */
    static void referenceOutput(const GemmPlan &plan,
                                const RunOptions &opt, GemmRun &out);

    /** Tiles needed along the output-row dimension. */
    int rowTiles(int m) const;
    /** Tiles needed along the output-column dimension. */
    int colTiles(int n) const;

    /**
     * Output tiling with folding for skinny GEMMs.
     *
     * A batch-1 FC layer has a single output row and a depthwise
     * group a single output column; a plain output-stationary
     * mapping would idle almost the whole array on either. The
     * mapper folds the idle dimension: with m at most half the tile
     * height, activation rows are broadcast to tileRows/m row
     * groups, each accumulating a different column stripe (one pass
     * covers eff_cols columns; this is why FC ends up memory- not
     * compute-bound, Sec. 8.3). Symmetrically, with n at most half
     * the tile width, weight columns are broadcast to tileCols/n
     * column groups, each processing a different row stripe (the
     * depthwise mapping).
     */
    struct TileGrid
    {
        int row_tiles = 1;
        int col_tiles = 1;
        /** Output rows covered per pass (>= tileRows if folded). */
        int eff_rows = 1;
        /** Output columns covered per pass. */
        int eff_cols = 1;

        int64_t
        tiles() const
        {
            return static_cast<int64_t>(row_tiles) * col_tiles;
        }
    };

    TileGrid tileGrid(int m, int n) const;

    /**
     * Sum @p tile_fn(trow, tcol) over the whole tile grid. Large
     * grids (>= kShardTileThreshold tiles) with a pool split the
     * tile rows into stripes with one partial accumulator per
     * stripe, reduced in stripe order afterwards; stripes own
     * disjoint rows and INT64 wrapping addition is
     * order-independent, so the result is bitwise identical to the
     * serial double loop at any lane count (and with the pool off).
     */
    template <typename TileFn>
    static int64_t
    sumTileGrid(const TileGrid &grid, ThreadPool *pool,
                const TileFn &tile_fn)
    {
        if (pool == nullptr || grid.tiles() < kShardTileThreshold) {
            int64_t sum = 0;
            for (int trow = 0; trow < grid.row_tiles; ++trow)
                for (int tcol = 0; tcol < grid.col_tiles; ++tcol)
                    sum += tile_fn(trow, tcol);
            return sum;
        }
        constexpr int64_t kStripeTileRows = 8;
        const int64_t stripes =
            (grid.row_tiles + kStripeTileRows - 1) /
            kStripeTileRows;
        std::vector<int64_t> partial(static_cast<size_t>(stripes),
                                     0);
        pool->parallelForStripes(
            grid.row_tiles, kStripeTileRows,
            [&](int64_t begin, int64_t end) {
                int64_t sum = 0;
                for (int64_t trow = begin; trow < end; ++trow)
                    for (int tcol = 0; tcol < grid.col_tiles;
                         ++tcol)
                        sum += tile_fn(static_cast<int>(trow),
                                       tcol);
                partial[static_cast<size_t>(begin /
                                            kStripeTileRows)] = sum;
            });
        int64_t sum = 0;
        for (int64_t s = 0; s < stripes; ++s)
            sum += partial[static_cast<size_t>(s)];
        return sum;
    }

    ArrayConfig cfg;
};

/** Instantiate the model matching @p cfg. */
std::unique_ptr<ArrayModel> makeArrayModel(const ArrayConfig &cfg);

} // namespace s2ta

#endif // S2TA_ARCH_ARRAY_MODEL_HH
