#include "arch/array_model.hh"

#include "arch/models.hh"
#include "core/dap.hh"
#include "core/dbb.hh"

namespace s2ta {

OperandProfile
OperandProfile::build(const GemmProblem &p)
{
    OperandProfile prof;
    prof.m = p.m;
    prof.k = p.k;
    prof.n = p.n;
    prof.row_nz.assign(static_cast<size_t>(p.m), 0);
    prof.col_nz.assign(static_cast<size_t>(p.n), 0);
    prof.act_nz_at_k.assign(static_cast<size_t>(p.k), 0);
    prof.wgt_nz_at_k.assign(static_cast<size_t>(p.k), 0);

    for (int i = 0; i < p.m; ++i) {
        const int8_t *row = &p.a[static_cast<size_t>(i) * p.k];
        for (int kk = 0; kk < p.k; ++kk) {
            if (row[kk] != 0) {
                ++prof.row_nz[static_cast<size_t>(i)];
                ++prof.act_nz_at_k[static_cast<size_t>(kk)];
            }
        }
    }
    for (int kk = 0; kk < p.k; ++kk) {
        const int8_t *row = &p.w[static_cast<size_t>(kk) * p.n];
        for (int j = 0; j < p.n; ++j) {
            if (row[j] != 0) {
                ++prof.col_nz[static_cast<size_t>(j)];
                ++prof.wgt_nz_at_k[static_cast<size_t>(kk)];
            }
        }
    }
    for (int i = 0; i < p.m; ++i)
        prof.act_nnz += prof.row_nz[static_cast<size_t>(i)];
    for (int j = 0; j < p.n; ++j)
        prof.wgt_nnz += prof.col_nz[static_cast<size_t>(j)];
    for (int kk = 0; kk < p.k; ++kk) {
        prof.matched_products +=
            static_cast<int64_t>(
                prof.act_nz_at_k[static_cast<size_t>(kk)]) *
            prof.wgt_nz_at_k[static_cast<size_t>(kk)];
    }
    return prof;
}

ArrayModel::ArrayModel(ArrayConfig cfg_) : cfg(cfg_)
{
    cfg.check();
}

int
ArrayModel::rowTiles(int m) const
{
    return (m + cfg.tileRows() - 1) / cfg.tileRows();
}

int
ArrayModel::colTiles(int n) const
{
    return (n + cfg.tileCols() - 1) / cfg.tileCols();
}

ArrayModel::TileGrid
ArrayModel::tileGrid(int m, int n) const
{
    TileGrid grid;
    const int tr = cfg.tileRows();
    const int tc = cfg.tileCols();
    grid.eff_rows = tr;
    grid.eff_cols = tc;
    if (2 * m <= tr) {
        // Skinny-m GEMM (FC): broadcast-fold column stripes across
        // the otherwise-idle row groups.
        grid.eff_cols = tc * (tr / m);
    } else if (2 * n <= tc) {
        // Skinny-n GEMM (depthwise group): broadcast-fold row
        // stripes across the otherwise-idle column groups.
        grid.eff_rows = tr * (tc / n);
    }
    grid.row_tiles = (m + grid.eff_rows - 1) / grid.eff_rows;
    grid.col_tiles = (n + grid.eff_cols - 1) / grid.eff_cols;
    return grid;
}

void
ArrayModel::checkOperands(const GemmProblem &p) const
{
    const bool dbb_kind = cfg.kind == ArchKind::S2taW ||
                          cfg.kind == ArchKind::S2taAw;
    if (!dbb_kind)
        return;
    if (p.k % cfg.bz != 0)
        s2ta_fatal("%s requires K %% %d == 0 (K=%d)",
                   cfg.name().c_str(), cfg.bz, p.k);

    // Weight blocks must satisfy the W-DBB bound.
    std::vector<int8_t> tmp(static_cast<size_t>(cfg.bz));
    for (int j = 0; j < p.n; ++j) {
        for (int b = 0; b < p.k / cfg.bz; ++b) {
            for (int e = 0; e < cfg.bz; ++e)
                tmp[static_cast<size_t>(e)] =
                    p.wgtAt(b * cfg.bz + e, j);
            if (!dbbSatisfies(tmp, cfg.weight_dbb)) {
                s2ta_fatal("weight block (col %d, block %d) violates "
                           "%s; run pruneWeightsDbb first", j, b,
                           cfg.weight_dbb.toString().c_str());
            }
        }
    }

    // Activation blocks must satisfy the per-layer A-DBB bound.
    if (cfg.kind == ArchKind::S2taAw && cfg.act_nnz < cfg.bz) {
        const DbbSpec aspec{cfg.act_nnz, cfg.bz};
        for (int i = 0; i < p.m; ++i) {
            for (int b = 0; b < p.k / cfg.bz; ++b) {
                for (int e = 0; e < cfg.bz; ++e)
                    tmp[static_cast<size_t>(e)] =
                        p.actAt(i, b * cfg.bz + e);
                if (!dbbSatisfies(tmp, aspec)) {
                    s2ta_fatal("activation block (row %d, block %d) "
                               "violates %s; run DAP first", i, b,
                               aspec.toString().c_str());
                }
            }
        }
    }
}

GemmRun
ArrayModel::run(const GemmProblem &p, const RunOptions &opt) const
{
    checkOperands(p);
    GemmRun out;
    out.events.logical_macs = p.denseMacs();
    simulate(p, opt, out);
    return out;
}

std::unique_ptr<ArrayModel>
makeArrayModel(const ArrayConfig &cfg)
{
    switch (cfg.kind) {
      case ArchKind::Sa:
      case ArchKind::SaZvcg:
        return std::make_unique<SaModel>(cfg);
      case ArchKind::SaSmt:
        return std::make_unique<SaSmtModel>(cfg);
      case ArchKind::S2taW:
        return std::make_unique<S2taWModel>(cfg);
      case ArchKind::S2taAw:
        return std::make_unique<S2taAwModel>(cfg);
    }
    s2ta_panic("unknown architecture kind");
}

} // namespace s2ta
