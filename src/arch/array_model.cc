#include "arch/array_model.hh"

#include <algorithm>
#include <span>

#include "arch/gemm_kernels.hh"
#include "arch/gemm_plan.hh"
#include "arch/models.hh"
#include "arch/plan_cache.hh"
#include "core/dap.hh"
#include "core/dbb.hh"

namespace s2ta {

OperandProfile
OperandProfile::build(const GemmProblem &p)
{
    OperandProfile prof;
    prof.m = p.m;
    prof.k = p.k;
    prof.n = p.n;
    prof.row_nz.assign(static_cast<size_t>(p.m), 0);
    prof.col_nz.assign(static_cast<size_t>(p.n), 0);
    prof.act_nz_at_k.assign(static_cast<size_t>(p.k), 0);
    prof.wgt_nz_at_k.assign(static_cast<size_t>(p.k), 0);

    for (int i = 0; i < p.m; ++i) {
        const int8_t *row = &p.a[static_cast<size_t>(i) * p.k];
        for (int kk = 0; kk < p.k; ++kk) {
            if (row[kk] != 0) {
                ++prof.row_nz[static_cast<size_t>(i)];
                ++prof.act_nz_at_k[static_cast<size_t>(kk)];
            }
        }
    }
    for (int kk = 0; kk < p.k; ++kk) {
        const int8_t *row = &p.w[static_cast<size_t>(kk) * p.n];
        for (int j = 0; j < p.n; ++j) {
            if (row[j] != 0) {
                ++prof.col_nz[static_cast<size_t>(j)];
                ++prof.wgt_nz_at_k[static_cast<size_t>(kk)];
            }
        }
    }
    for (int i = 0; i < p.m; ++i)
        prof.act_nnz += prof.row_nz[static_cast<size_t>(i)];
    for (int j = 0; j < p.n; ++j)
        prof.wgt_nnz += prof.col_nz[static_cast<size_t>(j)];
    for (int kk = 0; kk < p.k; ++kk) {
        prof.matched_products +=
            static_cast<int64_t>(
                prof.act_nz_at_k[static_cast<size_t>(kk)]) *
            prof.wgt_nz_at_k[static_cast<size_t>(kk)];
    }
    return prof;
}

OperandProfile
OperandProfile::fromDbb(const GemmProblem &p, const DbbMatrix &act,
                        const DbbMatrix &wgt)
{
    OperandProfile prof;
    prof.m = p.m;
    prof.k = p.k;
    prof.n = p.n;
    prof.row_nz.assign(static_cast<size_t>(p.m), 0);
    prof.col_nz.assign(static_cast<size_t>(p.n), 0);
    prof.act_nz_at_k.assign(static_cast<size_t>(p.k), 0);
    prof.wgt_nz_at_k.assign(static_cast<size_t>(p.k), 0);

    // Per-vector counts from block popcounts, per-position counts
    // from mask bit loops: O(blocks + nnz), no dense scan. Tail
    // padding positions (>= k) are never set in any mask. With the
    // AVX-512 tier active and the standard 8-wide blocks, whole
    // vectors go through the VPOPCNTDQ/vpmovm2b sub-kernel instead
    // (bit-identical; see dbbProfileVectorAvx512).
    const int act_bz = act.spec().bz;
    const bool simd_profile = dbbProfileSimdEnabled();
    for (int i = 0; i < p.m; ++i) {
        const DbbBlock *row = act.vectorBlocks(i);
        int32_t nz = 0;
        if (simd_profile && act_bz == 8) {
            nz = static_cast<int32_t>(dbbProfileVectorAvx512(
                row, act.blocksPerVector(),
                prof.act_nz_at_k.data(), p.k));
        } else {
            for (int b = 0; b < act.blocksPerVector(); ++b) {
                nz += maskPopcount(row[b].mask);
                for (Mask8 m = row[b].mask; m;
                     m = maskClearLowest(m)) {
                    ++prof.act_nz_at_k[static_cast<size_t>(
                        b * act_bz + maskLowestSetBit(m))];
                }
            }
        }
        prof.row_nz[static_cast<size_t>(i)] = nz;
        prof.act_nnz += nz;
    }
    const int wgt_bz = wgt.spec().bz;
    for (int j = 0; j < p.n; ++j) {
        const DbbBlock *col = wgt.vectorBlocks(j);
        int32_t nz = 0;
        if (simd_profile && wgt_bz == 8) {
            nz = static_cast<int32_t>(dbbProfileVectorAvx512(
                col, wgt.blocksPerVector(),
                prof.wgt_nz_at_k.data(), p.k));
        } else {
            for (int b = 0; b < wgt.blocksPerVector(); ++b) {
                nz += maskPopcount(col[b].mask);
                for (Mask8 m = col[b].mask; m;
                     m = maskClearLowest(m)) {
                    ++prof.wgt_nz_at_k[static_cast<size_t>(
                        b * wgt_bz + maskLowestSetBit(m))];
                }
            }
        }
        prof.col_nz[static_cast<size_t>(j)] = nz;
        prof.wgt_nnz += nz;
    }
    for (int kk = 0; kk < p.k; ++kk) {
        prof.matched_products +=
            static_cast<int64_t>(
                prof.act_nz_at_k[static_cast<size_t>(kk)]) *
            prof.wgt_nz_at_k[static_cast<size_t>(kk)];
    }
    return prof;
}

ArrayModel::ArrayModel(ArrayConfig cfg_) : cfg(cfg_)
{
    cfg.check();
}

int
ArrayModel::rowTiles(int m) const
{
    return (m + cfg.tileRows() - 1) / cfg.tileRows();
}

int
ArrayModel::colTiles(int n) const
{
    return (n + cfg.tileCols() - 1) / cfg.tileCols();
}

ArrayModel::TileGrid
ArrayModel::tileGrid(int m, int n) const
{
    TileGrid grid;
    const int tr = cfg.tileRows();
    const int tc = cfg.tileCols();
    grid.eff_rows = tr;
    grid.eff_cols = tc;
    if (2 * m <= tr) {
        // Skinny-m GEMM (FC): broadcast-fold column stripes across
        // the otherwise-idle row groups.
        grid.eff_cols = tc * (tr / m);
    } else if (2 * n <= tc) {
        // Skinny-n GEMM (depthwise group): broadcast-fold row
        // stripes across the otherwise-idle column groups.
        grid.eff_rows = tr * (tc / n);
    }
    grid.row_tiles = (m + grid.eff_rows - 1) / grid.eff_rows;
    grid.col_tiles = (n + grid.eff_cols - 1) / grid.eff_cols;
    return grid;
}

void
ArrayModel::checkOperands(const GemmProblem &p) const
{
    const bool dbb_kind = cfg.kind == ArchKind::S2taW ||
                          cfg.kind == ArchKind::S2taAw;
    if (!dbb_kind)
        return;
    if (p.k % cfg.bz != 0)
        s2ta_fatal("%s requires K %% %d == 0 (K=%d)",
                   cfg.name().c_str(), cfg.bz, p.k);
    const int bz = cfg.bz;
    const int nblocks = p.k / bz;

    // Weight blocks must satisfy the W-DBB bound. Column blocks are
    // strided in the K x N layout, so walk block-rows sequentially
    // with one per-column non-zero counter array; no block copies.
    std::vector<int16_t> col_cnt(static_cast<size_t>(p.n));
    for (int b = 0; b < nblocks; ++b) {
        std::fill(col_cnt.begin(), col_cnt.end(),
                  static_cast<int16_t>(0));
        for (int e = 0; e < bz; ++e) {
            const int8_t *row =
                &p.w[static_cast<size_t>(b * bz + e) * p.n];
            for (int j = 0; j < p.n; ++j)
                col_cnt[static_cast<size_t>(j)] +=
                    (row[j] != 0);
        }
        for (int j = 0; j < p.n; ++j) {
            if (col_cnt[static_cast<size_t>(j)] >
                cfg.weight_dbb.nnz) {
                s2ta_fatal("weight block (col %d, block %d) violates "
                           "%s; run pruneWeightsDbb first", j, b,
                           cfg.weight_dbb.toString().c_str());
            }
        }
    }

    // Activation blocks must satisfy the per-layer A-DBB bound;
    // row blocks are contiguous, so one span per row suffices.
    if (cfg.kind == ArchKind::S2taAw && cfg.act_nnz < cfg.bz) {
        const DbbSpec aspec{cfg.act_nnz, cfg.bz};
        for (int i = 0; i < p.m; ++i) {
            const std::span<const int8_t> row(
                &p.a[static_cast<size_t>(i) * p.k],
                static_cast<size_t>(p.k));
            for (int b = 0; b < nblocks; ++b) {
                if (!dbbSatisfies(row.subspan(
                        static_cast<size_t>(b) * bz, bz), aspec)) {
                    s2ta_fatal("activation block (row %d, block %d) "
                               "violates %s; run DAP first", i, b,
                               aspec.toString().c_str());
                }
            }
        }
    }
}

void
ArrayModel::checkPlan(const GemmPlan &plan) const
{
    const bool dbb_kind = cfg.kind == ArchKind::S2taW ||
                          cfg.kind == ArchKind::S2taAw;
    if (!dbb_kind)
        return;
    // K % bz geometry is enforced unconditionally by run(); this
    // only covers the density bounds.
    s2ta_assert(plan.bz() == cfg.bz,
                "plan block size %d != config bz %d", plan.bz(),
                cfg.bz);
    plan.checkWeights(cfg.weight_dbb);
    if (cfg.kind == ArchKind::S2taAw && cfg.act_nnz < cfg.bz)
        plan.checkActivations(DbbSpec{cfg.act_nnz, cfg.bz});
}

GemmRun
ArrayModel::run(const GemmProblem &p, const RunOptions &opt) const
{
    if (opt.engine == EngineKind::Scalar) {
        return run(GemmPlan::shallow(p), opt);
    }
    // The compressed form is config-independent, so a sweep sharing
    // a PlanCache encodes each workload once and every design point
    // after the first reuses the cached plan (operands are
    // fingerprinted per call, so mutated data can never hit).
    if (opt.plan_cache != nullptr) {
        const auto entry =
            opt.plan_cache->acquire(p, cfg.bz, opt.compute_output);
        return run(entry->plan, opt);
    }
    // The dense weight mirror only feeds the functional kernels;
    // events-only runs skip building it.
    return run(GemmPlan::build(p, cfg.bz, opt.compute_output), opt);
}

bool
ArrayModel::usesScalarEngine(const GemmPlan &plan,
                             const RunOptions &opt)
{
    return opt.engine == EngineKind::Scalar || !plan.encoded();
}

OperandProfile
ArrayModel::profileFor(const GemmPlan &plan, const RunOptions &opt)
{
    return usesScalarEngine(plan, opt)
               ? OperandProfile::build(plan.problem())
               : plan.profile();
}

void
ArrayModel::referenceOutput(const GemmPlan &plan,
                            const RunOptions &opt, GemmRun &out)
{
    const GemmProblem &p = plan.problem();
    if (usesScalarEngine(plan, opt)) {
        out.output = gemmReference(p);
        return;
    }
    out.output.assign(static_cast<size_t>(p.m) * p.n, 0);
    dbbGemm(plan, out.output.data(), opt.shard_pool);
}

GemmRun
ArrayModel::run(const GemmPlan &plan, const RunOptions &opt) const
{
    // Block geometry is a hard requirement of the DBB architectures
    // (the scalar engine would silently truncate a ragged K tail),
    // so it is enforced even when density validation is skipped.
    if ((cfg.kind == ArchKind::S2taW ||
         cfg.kind == ArchKind::S2taAw) &&
        plan.problem().k % cfg.bz != 0) {
        s2ta_fatal("%s requires K %% %d == 0 (K=%d)",
                   cfg.name().c_str(), cfg.bz, plan.problem().k);
    }
    if (opt.validate_operands) {
        if (plan.encoded())
            checkPlan(plan);
        else
            checkOperands(plan.problem());
    }
    GemmRun out;
    out.events.logical_macs = plan.problem().denseMacs();
    simulate(plan, opt, out);
    return out;
}

std::unique_ptr<ArrayModel>
makeArrayModel(const ArrayConfig &cfg)
{
    switch (cfg.kind) {
      case ArchKind::Sa:
      case ArchKind::SaZvcg:
        return std::make_unique<SaModel>(cfg);
      case ArchKind::SaSmt:
        return std::make_unique<SaSmtModel>(cfg);
      case ArchKind::S2taW:
        return std::make_unique<S2taWModel>(cfg);
      case ArchKind::S2taAw:
        return std::make_unique<S2taAwModel>(cfg);
    }
    s2ta_panic("unknown architecture kind");
}

} // namespace s2ta
