/**
 * @file
 * Structural per-PE buffer-size model (paper Table 1).
 *
 * Computes the flip-flop storage each architecture needs per INT8
 * MAC, split into operand staging and accumulators. These byte
 * counts also feed the area model (flop area) and document the core
 * claim of the paper: DBB needs orders of magnitude less buffering
 * per MAC than unstructured-sparsity architectures.
 */

#ifndef S2TA_ENERGY_BUFFER_MODEL_HH
#define S2TA_ENERGY_BUFFER_MODEL_HH

#include "arch/array_config.hh"

namespace s2ta {

/** Per-PE buffer requirements, in bytes. */
struct BufferBreakdown
{
    /** Operand staging (stream registers, DBB block latches). */
    double operand_bytes_per_mac = 0.0;
    /** SMT staging FIFOs (entries are value pair + position meta). */
    double fifo_bytes_per_mac = 0.0;
    /** Output-stationary accumulators. */
    double accum_bytes_per_mac = 0.0;

    double
    totalPerMac() const
    {
        return operand_bytes_per_mac + fifo_bytes_per_mac +
               accum_bytes_per_mac;
    }

    /** Whole-array flop bytes for @p macs physical MACs. */
    double
    totalBytes(int64_t macs) const
    {
        return totalPerMac() * static_cast<double>(macs);
    }
};

/**
 * Compute the buffer breakdown for an array configuration.
 *
 * Accounting (values only; DESIGN.md notes where the paper's Table 1
 * differs in mask/meta conventions):
 *  - SA / SA-ZVCG: 2 operand bytes + one 4-byte accumulator per PE;
 *  - SA-SMT: adds T x Q FIFO entries of 4 bytes (INT8 pair + two
 *    position-meta bytes) per PE;
 *  - S2TA-W: per TPE, A dense activation blocks (BZ bytes each) and
 *    C compressed weight blocks (nnz+1 bytes), with one 4-byte
 *    accumulator per DP4M8 (shared by its 4 MACs);
 *  - S2TA-AW: per TPE, A serialized activation lanes (element +
 *    position byte) and C compressed weight blocks, one 4-byte
 *    accumulator per DP1M4 MAC.
 */
BufferBreakdown bufferModel(const ArrayConfig &cfg);

} // namespace s2ta

#endif // S2TA_ENERGY_BUFFER_MODEL_HH
