#include "energy/buffer_model.hh"

#include "base/logging.hh"

namespace s2ta {

BufferBreakdown
bufferModel(const ArrayConfig &cfg)
{
    cfg.check();
    BufferBreakdown b;
    const double a = cfg.tpe.a;
    const double c = cfg.tpe.c;

    switch (cfg.kind) {
      case ArchKind::Sa:
      case ArchKind::SaZvcg:
        b.operand_bytes_per_mac = 2.0; // one act + one wgt register
        b.accum_bytes_per_mac = 4.0;   // 32-bit output accumulator
        break;

      case ArchKind::SaSmt:
        b.operand_bytes_per_mac = 2.0;
        // T x Q entries; each entry stages an INT8 operand pair
        // plus two position-meta bytes.
        b.fifo_bytes_per_mac = 4.0 * cfg.smt.threads *
                               cfg.smt.queue_depth;
        b.accum_bytes_per_mac = 4.0;
        break;

      case ArchKind::S2taW: {
        // Per TPE: A dense activation blocks of BZ bytes, C weight
        // blocks of (nnz + 1 mask) bytes; A*C DP4M8 units of
        // weight_dbb.nnz MACs sharing one accumulator each.
        const double macs = a * c * cfg.weight_dbb.nnz;
        b.operand_bytes_per_mac =
            (a * cfg.bz + c * (cfg.weight_dbb.nnz + 1)) / macs;
        b.accum_bytes_per_mac = (a * c * 4.0) / macs;
        break;
      }

      case ArchKind::S2taAw: {
        // Per TPE: A serialized activation lanes (current element +
        // its position byte), C weight blocks of (nnz + 1) bytes;
        // A*C single-MAC DP1M4 units with private accumulators.
        const double macs = a * c;
        b.operand_bytes_per_mac =
            (a * 2.0 + c * (cfg.weight_dbb.nnz + 1)) / macs;
        b.accum_bytes_per_mac = 4.0;
        break;
      }
    }
    return b;
}

} // namespace s2ta
