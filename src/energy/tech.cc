#include "energy/tech.hh"

namespace s2ta {

TechParams
TechParams::tsmc16()
{
    TechParams t;
    t.name = "tsmc16";
    t.freq_ghz = 1.0;
    return t;
}

TechParams
TechParams::tsmc65()
{
    TechParams t = tsmc16();
    t.name = "tsmc65";
    t.freq_ghz = 0.5;

    const double e_scale = 13.0;
    t.e_mac *= e_scale;
    t.e_reg_byte *= e_scale;
    t.e_accum *= e_scale;
    t.e_fifo_op *= e_scale;
    t.e_mux4 *= e_scale;
    t.e_mux8 *= e_scale;
    t.sram_pj_per_byte_coeff *= e_scale;
    t.sram_leak_pj_per_cycle_kb *= e_scale;
    t.p_mcu_pj_per_cycle *= e_scale;
    t.e_mcu_elem *= e_scale;
    t.e_dap_cmp *= e_scale;
    t.e_dma_byte *= e_scale;

    const double a_scale = 5.8;
    t.a_mac *= a_scale;
    t.a_flop_byte *= a_scale;
    t.a_mux4 *= a_scale;
    t.a_mux8 *= a_scale;
    t.a_sram_per_kb *= a_scale;
    t.a_mcu *= a_scale;
    t.a_dap_unit *= a_scale;
    return t;
}

} // namespace s2ta
