#include "energy/energy_model.hh"

#include <numeric>

namespace s2ta {

const char *
componentName(Component c)
{
    switch (c) {
      case Component::MacDatapath: return "MAC Datapath";
      case Component::PeBuffers:   return "PE Buffers";
      case Component::WeightSram:  return "Weight SRAM";
      case Component::ActSram:     return "Activation SRAM";
      case Component::Dap:         return "DAP Array";
      case Component::Mcu:         return "MCU (Act Fn)";
      case Component::Dma:         return "DMA";
      case Component::NumComponents: break;
    }
    return "?";
}

double
EnergyBreakdown::totalPj() const
{
    return std::accumulate(pj.begin(), pj.end(), 0.0);
}

double
EnergyBreakdown::share(Component c) const
{
    const double t = totalPj();
    return t > 0.0 ? at(c) / t : 0.0;
}

double
EnergyBreakdown::sramPj() const
{
    return at(Component::WeightSram) + at(Component::ActSram);
}

void
EnergyBreakdown::add(const EnergyBreakdown &o)
{
    for (int i = 0; i < kNumComponents; ++i)
        pj[static_cast<size_t>(i)] += o.pj[static_cast<size_t>(i)];
}

double
AreaBreakdown::totalMm2() const
{
    return std::accumulate(mm2.begin(), mm2.end(), 0.0);
}

double
AreaBreakdown::share(Component c) const
{
    const double t = totalMm2();
    return t > 0.0 ? at(c) / t : 0.0;
}

EnergyModel::EnergyModel(TechParams tech_, AcceleratorConfig acfg_)
    : tech_params(std::move(tech_)), acfg(acfg_)
{
    acfg.array.check();
    acfg.array.freq_ghz = tech_params.freq_ghz;
}

EnergyBreakdown
EnergyModel::energy(const EventCounts &ev) const
{
    const TechParams &t = tech_params;
    EnergyBreakdown e;

    // MAC datapath: full, zero-operand, and gated slots, plus the
    // DBB steering muxes.
    double mac = t.e_mac * static_cast<double>(ev.macs_executed);
    mac += t.e_mac * t.mac_zero_factor *
           static_cast<double>(ev.macs_zero);
    mac += t.e_mac * t.mac_gate_factor *
           static_cast<double>(ev.macs_gated);
    const double e_mux = acfg.array.kind == ArchKind::S2taW
                             ? t.e_mux8
                             : t.e_mux4;
    mac += e_mux * static_cast<double>(ev.mux_selects);
    e.at(Component::MacDatapath) = mac;

    // PE-array buffers: operand registers, accumulators, FIFOs.
    double buf =
        t.e_reg_byte * static_cast<double>(ev.operand_reg_bytes);
    buf += t.e_reg_byte * t.reg_gate_factor *
           static_cast<double>(ev.operand_reg_gated_bytes);
    buf += t.e_accum * static_cast<double>(ev.accum_updates);
    buf += t.e_accum * t.accum_gate_factor *
           static_cast<double>(ev.accum_gated);
    buf += t.e_fifo_op *
           static_cast<double>(ev.fifo_pushes + ev.fifo_pops);
    e.at(Component::PeBuffers) = buf;

    // SRAM macros: dynamic access energy plus standby per cycle.
    const double wgt_kb =
        static_cast<double>(acfg.wgt_sram_bytes) / 1024.0;
    const double act_kb =
        static_cast<double>(acfg.act_sram_bytes) / 1024.0;
    e.at(Component::WeightSram) =
        t.sramPjPerByte(wgt_kb) *
            static_cast<double>(ev.wgt_sram_bytes) +
        t.sram_leak_pj_per_cycle_kb * wgt_kb *
            static_cast<double>(ev.cycles);
    e.at(Component::ActSram) =
        t.sramPjPerByte(act_kb) *
            static_cast<double>(ev.act_sram_read_bytes +
                                ev.act_sram_write_bytes) +
        t.sram_leak_pj_per_cycle_kb * act_kb *
            static_cast<double>(ev.cycles);

    e.at(Component::Dap) =
        t.e_dap_cmp * static_cast<double>(ev.dap_comparisons);

    e.at(Component::Mcu) =
        t.p_mcu_pj_per_cycle * static_cast<double>(ev.cycles) +
        t.e_mcu_elem * static_cast<double>(ev.actfn_elements);

    e.at(Component::Dma) =
        t.e_dma_byte * static_cast<double>(ev.dma_bytes);
    return e;
}

AreaBreakdown
EnergyModel::area() const
{
    const TechParams &t = tech_params;
    const ArrayConfig &a = acfg.array;
    AreaBreakdown ar;

    const double macs = static_cast<double>(a.totalMacs());
    double mux_area = 0.0;
    if (a.kind == ArchKind::S2taW)
        mux_area = t.a_mux8 * macs; // one 8:1 steer per MAC lane
    else if (a.kind == ArchKind::S2taAw)
        mux_area = t.a_mux4 * macs; // one 4:1 steer per DP1M4
    ar.at(Component::MacDatapath) = t.a_mac * macs + mux_area;

    const BufferBreakdown buf = bufferModel(a);
    ar.at(Component::PeBuffers) =
        t.a_flop_byte * buf.totalBytes(a.totalMacs());

    ar.at(Component::WeightSram) =
        t.a_sram_per_kb *
        (static_cast<double>(acfg.wgt_sram_bytes) / 1024.0);
    ar.at(Component::ActSram) =
        t.a_sram_per_kb *
        (static_cast<double>(acfg.act_sram_bytes) / 1024.0);

    if (a.kind == ArchKind::S2taAw)
        ar.at(Component::Dap) = t.a_dap_unit * t.dap_units;

    ar.at(Component::Mcu) = t.a_mcu * acfg.mcu_count;
    return ar;
}

double
EnergyModel::powerMw(const EventCounts &ev) const
{
    if (ev.cycles == 0)
        return 0.0;
    return energy(ev).totalPj() / static_cast<double>(ev.cycles) *
           tech_params.freq_ghz;
}

double
EnergyModel::runtimeMs(const EventCounts &ev) const
{
    return static_cast<double>(ev.cycles) /
           (tech_params.freq_ghz * 1e9) * 1e3;
}

double
EnergyModel::effectiveTops(const EventCounts &ev) const
{
    if (ev.cycles == 0)
        return 0.0;
    const double ops = 2.0 * static_cast<double>(ev.logical_macs);
    const double seconds =
        static_cast<double>(ev.cycles) / (tech_params.freq_ghz * 1e9);
    return ops / seconds * 1e-12;
}

double
EnergyModel::effectiveTopsPerWatt(const EventCounts &ev) const
{
    const double pj = energy(ev).totalPj();
    if (pj <= 0.0)
        return 0.0;
    const double ops = 2.0 * static_cast<double>(ev.logical_macs);
    // ops / (pJ * 1e-12 J) scaled to tera-ops.
    return ops / pj;
}

} // namespace s2ta
