/**
 * @file
 * Event-count to energy/area roll-up (DESIGN.md Sec. 4).
 *
 * EnergyModel maps an EventCounts record (from src/arch) to
 * per-component energy using TechParams, and computes the static
 * area of the configured accelerator. Components follow the paper's
 * breakdowns (Fig. 1, Fig. 10, Table 2).
 */

#ifndef S2TA_ENERGY_ENERGY_MODEL_HH
#define S2TA_ENERGY_ENERGY_MODEL_HH

#include <array>

#include "arch/accelerator.hh"
#include "energy/buffer_model.hh"
#include "energy/tech.hh"

namespace s2ta {

/** Energy/area component, matching the paper's breakdown bars. */
enum class Component
{
    MacDatapath = 0, ///< multipliers, adder trees, steering muxes
    PeBuffers,       ///< operand regs, accumulators, SMT FIFOs
    WeightSram,      ///< WB macro
    ActSram,         ///< AB macro
    Dap,             ///< dynamic activation pruning array
    Mcu,             ///< Cortex-M33 cluster (activation fn etc.)
    Dma,             ///< DMA engine / interface
    NumComponents,
};

/** Printable component name. */
const char *componentName(Component c);

constexpr int kNumComponents =
    static_cast<int>(Component::NumComponents);

/** Per-component energy in pJ. */
struct EnergyBreakdown
{
    std::array<double, kNumComponents> pj{};

    double &at(Component c) { return pj[static_cast<size_t>(c)]; }
    double
    at(Component c) const
    {
        return pj[static_cast<size_t>(c)];
    }

    double totalPj() const;
    /** Component share of the total, in [0, 1]. */
    double share(Component c) const;
    /** WeightSram + ActSram (the paper's single "SRAM" bar). */
    double sramPj() const;
    /** Total in micro-joules. */
    double totalUj() const { return totalPj() * 1e-6; }

    void add(const EnergyBreakdown &o);
};

/** Per-component area in mm^2. */
struct AreaBreakdown
{
    std::array<double, kNumComponents> mm2{};

    double &at(Component c) { return mm2[static_cast<size_t>(c)]; }
    double
    at(Component c) const
    {
        return mm2[static_cast<size_t>(c)];
    }

    double totalMm2() const;
    double share(Component c) const;
};

/**
 * Maps event counts to energy and configurations to area for one
 * accelerator instance in one technology.
 */
class EnergyModel
{
  public:
    EnergyModel(TechParams tech, AcceleratorConfig acfg);

    const TechParams &tech() const { return tech_params; }
    const AcceleratorConfig &acceleratorConfig() const { return acfg; }

    /** Per-component energy of a simulated run. */
    EnergyBreakdown energy(const EventCounts &ev) const;

    /** Static area of the configured accelerator. */
    AreaBreakdown area() const;

    /** Mean power in mW over the run (pJ/cycle x GHz). */
    double powerMw(const EventCounts &ev) const;

    /** Wall-clock time of the run in milliseconds. */
    double runtimeMs(const EventCounts &ev) const;

    /** Effective throughput: 2 * logical MACs / runtime, in TOPS. */
    double effectiveTops(const EventCounts &ev) const;

    /** Effective efficiency: 2 * logical MACs / energy, TOPS/W. */
    double effectiveTopsPerWatt(const EventCounts &ev) const;

  private:
    TechParams tech_params;
    AcceleratorConfig acfg;
};

} // namespace s2ta

#endif // S2TA_ENERGY_ENERGY_MODEL_HH
