/**
 * @file
 * Numbers quoted from the S2TA paper (and the papers it cites) for
 * the comparison tables/figures. The paper itself compares against
 * these published values rather than re-implementations (Sec. 7
 * "The PPA metrics for SparTen and Eyeriss-v2 are directly from the
 * papers"), so this repo does the same and keeps them as clearly
 * labelled constants.
 */

#ifndef S2TA_ENERGY_PUBLISHED_HH
#define S2TA_ENERGY_PUBLISHED_HH

#include <array>

namespace s2ta {
namespace published {

/** One externally published accelerator datapoint (paper Table 4). */
struct AcceleratorDatapoint
{
    const char *name;
    const char *process;
    double clock_ghz;
    double area_mm2;      ///< < 0 when not reported
    int hardware_macs;
    const char *weight_sparsity;
    const char *act_sparsity;
    /** AlexNet inferences/J (x1e3); < 0 when not reported. */
    double alexnet_kinf_per_j;
    /** AlexNet effective TOPS/W; < 0 when not reported. */
    double alexnet_tops_per_w;
    /** MobileNet inferences/J (x1e3); < 0 when not reported. */
    double mobilenet_kinf_per_j;
    double mobilenet_tops_per_w;
    const char *source;
};

/** SparTen (Gondimalla et al., MICRO'19), as quoted in Table 4. */
inline constexpr AcceleratorDatapoint kSparTen = {
    "SparTen", "45nm", 0.8, 0.766, 32, "Random", "Random",
    0.52,  // AlexNet x1e3 Inf/J (conv only)
    0.68,  // AlexNet TOPS/W (conv only)
    -1.0, -1.0,
    "S2TA paper Table 4, quoting MICRO'19",
};

/** Eyeriss v2 (Chen et al., JETCAS'19), as quoted in Table 4. */
inline constexpr AcceleratorDatapoint kEyerissV2 = {
    "Eyeriss v2", "65nm", 0.2, 3.38, 384, "Random", "Random",
    0.66,  // AlexNet x1e3 Inf/J (0.74 conv only)
    0.96,  // AlexNet TOPS/W (1.1 conv only)
    0.22,  // MobileNet x1e3 Inf/J (scaled from 0.5-128 to 1.0-224)
    0.24,  // MobileNet TOPS/W
    "S2TA paper Table 4, quoting JETCAS'19",
};

/** Nvidia A100 sparse-tensor-core peak, as quoted in Sec. 9. */
inline constexpr struct
{
    const char *weight_dbb = "2/4";
    double speedup = 1.5;
    double peak_tops_per_w = 3.12;
    const char *source = "S2TA paper Sec. 9, quoting Dally MLSys'21";
} kA100;

/**
 * AlexNet per-layer energy per inference in uJ (paper Fig. 12),
 * digitized from the figure; order conv1..conv5. Approximate (the
 * paper publishes a bar chart, not a table).
 */
struct AlexNetLayerEnergy
{
    const char *name;
    const char *process;
    std::array<double, 5> conv_uj;
    double total_uj;
};

inline constexpr AlexNetLayerEnergy kFig12EyerissV2 = {
    "Eyeriss v2", "65nm", {380.0, 680.0, 480.0, 360.0, 300.0}, 2200.0,
};

inline constexpr AlexNetLayerEnergy kFig12SparTen = {
    "SparTen", "45nm", {600.0, 550.0, 180.0, 130.0, 110.0}, 1570.0,
};

/**
 * Per-PE buffer bytes as the paper reports them (Table 1), for
 * side-by-side printing with this repo's structural model.
 */
struct BufferDatapoint
{
    const char *name;
    double operand_bytes;
    double accum_bytes;
    double total_bytes;
};

inline constexpr std::array<BufferDatapoint, 7> kTable1 = {{
    {"SCNN", 1280.0, 384.0, 1664.0},
    {"SparTen", 864.0, 128.0, 1013.76},
    {"Eyeriss v2", 165.0, 40.0, 205.0},
    {"SA-SMT", 16.0, 4.0, 20.0},
    {"Systolic Array", 2.0, 4.0, 6.0},
    {"S2TA-W", 0.375, 0.5, 0.875},
    {"S2TA-AW", 0.75, 4.0, 4.75},
}};

/**
 * Table 2 reference: S2TA-AW 16nm power (mW) and area (mm^2)
 * breakdown at the 4-TOPS design point.
 */
struct Table2Row
{
    const char *component;
    double power_mw;
    double area_mm2;
};

inline constexpr std::array<Table2Row, 5> kTable2 = {{
    {"MAC Datapath and Buffers", 317.7, 0.72},
    {"Weight SRAM (512KB)", 69.4, 0.54},
    {"Activation SRAM (2MB)", 93.4, 2.16},
    {"Cortex-M33 MCU x4", 50.4, 0.30},
    {"DAP Array", 10.4, 0.05},
}};

/**
 * Paper Table 3 reference accuracies (ImageNet/MNIST/GLUE); printed
 * next to this repo's synthetic-dataset results by bench/tab03.
 */
struct AccuracyRow
{
    const char *model;
    const char *dataset;
    double baseline_pct;
    const char *a_dbb; ///< "-" when dense
    const char *w_dbb;
    double pruned_pct;
};

inline constexpr std::array<AccuracyRow, 12> kTable3 = {{
    {"LeNet-5", "MNIST", 99.0, "3/8", "-", 98.9},
    {"LeNet-5", "MNIST", 99.0, "-", "2/8", 98.9},
    {"LeNet-5", "MNIST", 99.0, "4/8", "2/8", 98.8},
    {"MobileNetV1", "ImageNet", 70.1, "3.8/8", "-", 69.4},
    {"MobileNetV1", "ImageNet", 70.1, "-", "4/8", 69.8},
    {"MobileNetV1", "ImageNet", 70.1, "4.8/8", "4/8", 68.9},
    {"AlexNet", "ImageNet", 55.7, "3.9/8", "4/8", 54.6},
    {"VGG-16", "ImageNet", 71.5, "3.1/8", "3/8", 71.9},
    {"ResNet-50V1", "ImageNet", 75.0, "-", "4/8", 74.5},
    {"ResNet-50V1", "ImageNet", 75.0, "3.49/8", "3/8", 73.9},
    {"I-BERT (base)", "GLUE (QQP)", 91.2, "4/8", "4/8", 90.9},
    {"I-BERT (base)", "GLUE (SST2)", 94.7, "4/8", "4/8", 93.5},
}};

} // namespace published
} // namespace s2ta

#endif // S2TA_ENERGY_PUBLISHED_HH
