/**
 * @file
 * Technology parameters: per-event energies and per-structure areas
 * for the TSMC 16nm FinFET and 65nm nodes the paper evaluates
 * (Sec. 7).
 *
 * The paper extracts power from post-layout netlists with annotated
 * switching activity; this repo has no PDK, so the coefficients
 * below are *calibrated to the paper's published anchors* and
 * verified by unit tests (DESIGN.md Sec. 4):
 *   - Fig. 1 dense-SA energy shares (21/49/20/10 +-3pp);
 *   - Table 2 S2TA-AW area split (the SRAM/MCU areas match the
 *     paper's mm^2 almost exactly);
 *   - Table 4 peak-efficiency ballpark (SA-ZVCG ~10.5 TOPS/W in
 *     16nm, ~0.78 TOPS/W in 65nm).
 */

#ifndef S2TA_ENERGY_TECH_HH
#define S2TA_ENERGY_TECH_HH

#include <cmath>
#include <string>

namespace s2ta {

/** Per-event energies (pJ) and per-structure areas (mm^2). */
struct TechParams
{
    std::string name;
    /** Array clock at the slow corner (Sec. 7). */
    double freq_ghz = 1.0;

    // --- Dynamic energy per event (pJ) ---------------------------
    /** INT8 MAC, both operands non-zero (full switching). */
    double e_mac = 0.098;
    /** Fraction of e_mac burned when an operand is zero but the
     *  datapath is not gated (plain dense SA). */
    double mac_zero_factor = 0.45;
    /** Fraction of e_mac burned by a clock-gated MAC slot (the
     *  clock tree segment and gating logic still toggle). */
    double mac_gate_factor = 0.20;

    /** 8-bit operand pipeline-register write, per byte. */
    double e_reg_byte = 0.030;
    /** Gated register-latch cost fraction: flip-flop clock-pin
     *  power dominates FF energy, so gating leaves ~1/3 behind. */
    double reg_gate_factor = 0.35;

    /** 32-bit output-stationary accumulator update. */
    double e_accum = 0.081;
    double accum_gate_factor = 0.35;

    /** SMT staging-FIFO entry push or pop (4-byte entry + ctrl). */
    double e_fifo_op = 0.40;

    /** DBB steering mux select. */
    double e_mux4 = 0.002;
    double e_mux8 = 0.004;

    /** SRAM read/write energy per byte = coeff * sqrt(size_KB). */
    double sram_pj_per_byte_coeff = 0.040;
    /** SRAM standby (leakage + clock) pJ per cycle per KB. */
    double sram_leak_pj_per_cycle_kb = 0.006;

    /** MCU cluster power, pJ per array cycle (4x Cortex-M33 plus
     *  64 KB control stores each, Sec. 6.3). */
    double p_mcu_pj_per_cycle = 52.0;
    /** Marginal MCU energy per processed element (SIMD op). */
    double e_mcu_elem = 1.0;

    /** One 8-bit magnitude comparison in the DAP cascade. */
    double e_dap_cmp = 0.08;

    /** DMA engine + interface energy per byte (DRAM core energy is
     *  out of scope, as in the paper's accelerator-power metric). */
    double e_dma_byte = 2.0;

    // --- Area per structure (mm^2) -------------------------------
    double a_mac = 0.00028;
    /** Per byte of flip-flop storage (regs, accums, FIFOs). */
    double a_flop_byte = 1.2e-5;
    double a_mux4 = 8.0e-6;
    double a_mux8 = 1.6e-5;
    /** SRAM macro area per KB (fits both paper SRAMs exactly). */
    double a_sram_per_kb = 1.055e-3;
    /** One Cortex-M33 with its 64 KB control store. */
    double a_mcu = 0.0755;
    /** One DAP unit (5 maxpool stages x 7 comparators). */
    double a_dap_unit = 0.0031;
    /** DAP units at the activation SRAM write port. */
    int dap_units = 16;

    /** SRAM access energy for a macro of @p kb KB, pJ/byte. */
    double
    sramPjPerByte(double kb) const
    {
        return sram_pj_per_byte_coeff * std::sqrt(kb);
    }

    /** TSMC 16nm FinFET, 1 GHz (paper Sec. 7). */
    static TechParams tsmc16();

    /**
     * TSMC 65nm, 500 MHz. Energy scales by ~13x relative to 16nm
     * (node + voltage), matching the paper's published 16nm-vs-65nm
     * efficiency ratio (Table 4); area scales by ~5.8x, matching
     * the published 65nm design areas.
     */
    static TechParams tsmc65();
};

} // namespace s2ta

#endif // S2TA_ENERGY_TECH_HH
