#include "nn/net.hh"

#include <cmath>

#include "core/topk.hh"
#include "core/weight_pruner.hh"

namespace s2ta {

namespace {

/** He-uniform initialization bound for fan_in inputs. */
float
initBound(int fan_in)
{
    return std::sqrt(6.0f / static_cast<float>(fan_in));
}

/** SGD + momentum update for one parameter tensor. */
void
sgdUpdate(FloatTensor &param, FloatTensor &grad, FloatTensor &vel,
          float lr, float momentum, int batch)
{
    const float scale = 1.0f / static_cast<float>(batch);
    for (int64_t i = 0; i < param.size(); ++i) {
        const float g = grad.flat(i) * scale;
        vel.flat(i) = momentum * vel.flat(i) - lr * g;
        param.flat(i) += vel.flat(i);
        grad.flat(i) = 0.0f;
    }
}

} // anonymous namespace

// ---------------------------------------------------------------
// ConvLayer
// ---------------------------------------------------------------

ConvLayer::ConvLayer(int in_c_, int out_c_, int kernel_, int pad_,
                     Rng &rng)
    : in_c(in_c_), out_c(out_c_), kernel(kernel_), pad(pad_),
      w({kernel_, kernel_, in_c_, out_c_}),
      bias({out_c_}),
      gw(w.shape()), gbias(bias.shape()),
      vw(w.shape()), vbias(bias.shape())
{
    const float bound = initBound(kernel * kernel * in_c);
    for (int64_t i = 0; i < w.size(); ++i)
        w.flat(i) = static_cast<float>(rng.uniformReal(-bound, bound));
}

FloatTensor
ConvLayer::forward(const FloatTensor &x, bool train)
{
    s2ta_assert(x.rank() == 3 && x.dim(2) == in_c,
                "conv input shape mismatch");
    if (train)
        last_in = x;
    const int ih = x.dim(0), iw = x.dim(1);
    const int oh = ih + 2 * pad - kernel + 1;
    const int ow = iw + 2 * pad - kernel + 1;
    FloatTensor y({oh, ow, out_c});
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int oc = 0; oc < out_c; ++oc)
                y(oy, ox, oc) = bias(oc);
            for (int ky = 0; ky < kernel; ++ky) {
                const int iy = oy + ky - pad;
                if (iy < 0 || iy >= ih)
                    continue;
                for (int kx = 0; kx < kernel; ++kx) {
                    const int ix = ox + kx - pad;
                    if (ix < 0 || ix >= iw)
                        continue;
                    for (int c = 0; c < in_c; ++c) {
                        const float xv = x(iy, ix, c);
                        if (xv == 0.0f)
                            continue;
                        for (int oc = 0; oc < out_c; ++oc)
                            y(oy, ox, oc) += xv * w(ky, kx, c, oc);
                    }
                }
            }
        }
    }
    return y;
}

FloatTensor
ConvLayer::backward(const FloatTensor &grad_out)
{
    const FloatTensor &x = last_in;
    const int ih = x.dim(0), iw = x.dim(1);
    const int oh = grad_out.dim(0), ow = grad_out.dim(1);
    FloatTensor gx(x.shape());
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int oc = 0; oc < out_c; ++oc)
                gbias(oc) += grad_out(oy, ox, oc);
            for (int ky = 0; ky < kernel; ++ky) {
                const int iy = oy + ky - pad;
                if (iy < 0 || iy >= ih)
                    continue;
                for (int kx = 0; kx < kernel; ++kx) {
                    const int ix = ox + kx - pad;
                    if (ix < 0 || ix >= iw)
                        continue;
                    for (int c = 0; c < in_c; ++c) {
                        const float xv = x(iy, ix, c);
                        float gx_acc = 0.0f;
                        for (int oc = 0; oc < out_c; ++oc) {
                            const float go = grad_out(oy, ox, oc);
                            gw(ky, kx, c, oc) += xv * go;
                            gx_acc += go * w(ky, kx, c, oc);
                        }
                        gx(iy, ix, c) += gx_acc;
                    }
                }
            }
        }
    }
    return gx;
}

void
ConvLayer::step(float lr, float momentum, int batch)
{
    sgdUpdate(w, gw, vw, lr, momentum, batch);
    sgdUpdate(bias, gbias, vbias, lr, momentum, batch);
}

std::string
ConvLayer::describe() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "conv%dx%d %d->%d", kernel,
                  kernel, in_c, out_c);
    return buf;
}

// ---------------------------------------------------------------
// DenseLayer
// ---------------------------------------------------------------

DenseLayer::DenseLayer(int in_f_, int out_f_, Rng &rng)
    : in_f(in_f_), out_f(out_f_),
      w({in_f_, out_f_}), bias({out_f_}),
      gw(w.shape()), gbias(bias.shape()),
      vw(w.shape()), vbias(bias.shape())
{
    const float bound = initBound(in_f);
    for (int64_t i = 0; i < w.size(); ++i)
        w.flat(i) = static_cast<float>(rng.uniformReal(-bound, bound));
}

FloatTensor
DenseLayer::forward(const FloatTensor &x, bool train)
{
    s2ta_assert(x.rank() == 1 && x.dim(0) == in_f,
                "dense input shape mismatch");
    if (train)
        last_in = x;
    FloatTensor y({out_f});
    for (int o = 0; o < out_f; ++o)
        y(o) = bias(o);
    for (int i = 0; i < in_f; ++i) {
        const float xv = x(i);
        if (xv == 0.0f)
            continue;
        for (int o = 0; o < out_f; ++o)
            y(o) += xv * w(i, o);
    }
    return y;
}

FloatTensor
DenseLayer::backward(const FloatTensor &grad_out)
{
    FloatTensor gx({in_f});
    for (int o = 0; o < out_f; ++o)
        gbias(o) += grad_out(o);
    for (int i = 0; i < in_f; ++i) {
        const float xv = last_in(i);
        float acc = 0.0f;
        for (int o = 0; o < out_f; ++o) {
            const float go = grad_out(o);
            gw(i, o) += xv * go;
            acc += go * w(i, o);
        }
        gx(i) = acc;
    }
    return gx;
}

void
DenseLayer::step(float lr, float momentum, int batch)
{
    sgdUpdate(w, gw, vw, lr, momentum, batch);
    sgdUpdate(bias, gbias, vbias, lr, momentum, batch);
}

std::string
DenseLayer::describe() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "dense %d->%d", in_f, out_f);
    return buf;
}

// ---------------------------------------------------------------
// ReluLayer / MaxPoolLayer / FlattenLayer
// ---------------------------------------------------------------

FloatTensor
ReluLayer::forward(const FloatTensor &x, bool train)
{
    if (train)
        last_in = x;
    FloatTensor y(x.shape());
    for (int64_t i = 0; i < x.size(); ++i)
        y.flat(i) = x.flat(i) > 0.0f ? x.flat(i) : 0.0f;
    return y;
}

FloatTensor
ReluLayer::backward(const FloatTensor &grad_out)
{
    FloatTensor gx(grad_out.shape());
    for (int64_t i = 0; i < gx.size(); ++i)
        gx.flat(i) = last_in.flat(i) > 0.0f ? grad_out.flat(i) : 0.0f;
    return gx;
}

FloatTensor
MaxPoolLayer::forward(const FloatTensor &x, bool train)
{
    s2ta_assert(x.rank() == 3, "pool input must be (H, W, C)");
    const int ih = x.dim(0), iw = x.dim(1), c = x.dim(2);
    const int oh = ih / 2, ow = iw / 2;
    FloatTensor y({oh, ow, c});
    if (train) {
        last_in = x;
        argmax.assign(static_cast<size_t>(y.size()), 0);
        out_shape = y.shape();
    }
    int64_t oidx = 0;
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            for (int ch = 0; ch < c; ++ch, ++oidx) {
                float best = -1e30f;
                int64_t best_idx = 0;
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        const int iy = oy * 2 + dy;
                        const int ix = ox * 2 + dx;
                        const float v = x(iy, ix, ch);
                        if (v > best) {
                            best = v;
                            best_idx =
                                (static_cast<int64_t>(iy) * iw + ix)
                                    * c + ch;
                        }
                    }
                }
                y.flat(oidx) = best;
                if (train)
                    argmax[static_cast<size_t>(oidx)] = best_idx;
            }
        }
    }
    return y;
}

FloatTensor
MaxPoolLayer::backward(const FloatTensor &grad_out)
{
    FloatTensor gx(last_in.shape());
    for (int64_t i = 0; i < grad_out.size(); ++i)
        gx.flat(argmax[static_cast<size_t>(i)]) += grad_out.flat(i);
    return gx;
}

FloatTensor
FlattenLayer::forward(const FloatTensor &x, bool train)
{
    if (train)
        in_shape = x.shape();
    FloatTensor y = x;
    y.reshape({static_cast<int>(x.size())});
    return y;
}

FloatTensor
FlattenLayer::backward(const FloatTensor &grad_out)
{
    FloatTensor gx = grad_out;
    gx.reshape(in_shape);
    return gx;
}

// ---------------------------------------------------------------
// DapLayer
// ---------------------------------------------------------------

DapLayer::DapLayer(int nnz_, int bz_) : nnz(nnz_), bz(bz_)
{
    s2ta_assert(bz >= 1 && bz <= 8, "bz=%d", bz);
    s2ta_assert(nnz >= 1 && nnz <= bz, "nnz=%d", nnz);
}

FloatTensor
DapLayer::forward(const FloatTensor &x, bool train)
{
    if (nnz >= bz) {
        if (train) {
            last_mask = FloatTensor(x.shape());
            last_mask.fill(1.0f);
        }
        return x;
    }
    const int channels = x.dim(x.rank() - 1);
    FloatTensor y = x;
    FloatTensor mask(x.shape());
    mask.fill(0.0f);
    float *data = y.data();
    float *mdata = mask.data();
    for (int64_t base = 0; base < y.size(); base += channels) {
        for (int off = 0; off < channels; off += bz) {
            const int len = std::min(bz, channels - off);
            const int bound = std::min(nnz, len);
            std::span<float> blk(data + base + off,
                                 static_cast<size_t>(len));
            const Mask8 keep =
                topNnzMask(std::span<const float>(blk), bound);
            for (int e = 0; e < len; ++e) {
                if (maskTest(keep, e))
                    mdata[base + off + e] = 1.0f;
                else
                    blk[static_cast<size_t>(e)] = 0.0f;
            }
        }
    }
    if (train)
        last_mask = std::move(mask);
    return y;
}

FloatTensor
DapLayer::backward(const FloatTensor &grad_out)
{
    // Straight-through estimator: dDAP(a)/da is the binary Top-NNZ
    // keep mask (paper Sec. 8.1).
    FloatTensor gx(grad_out.shape());
    for (int64_t i = 0; i < gx.size(); ++i)
        gx.flat(i) = grad_out.flat(i) * last_mask.flat(i);
    return gx;
}

std::string
DapLayer::describe() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "dap %d/%d", nnz, bz);
    return buf;
}

// ---------------------------------------------------------------
// Network
// ---------------------------------------------------------------

FloatTensor
Network::forward(const FloatTensor &x, bool train)
{
    FloatTensor cur = x;
    for (auto &l : layers)
        cur = l->forward(cur, train);
    return cur;
}

void
Network::backward(const FloatTensor &grad_logits)
{
    FloatTensor cur = grad_logits;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        cur = (*it)->backward(cur);
}

void
Network::step(float lr, float momentum, int batch)
{
    for (auto &l : layers)
        l->step(lr, momentum, batch);
}

void
Network::applyWeightDbb(const DbbSpec &spec)
{
    for (auto &l : layers) {
        FloatTensor *w = l->weights();
        if (w != nullptr && l->dbbDim() >= 0)
            pruneFloatTensorDbbAlongDim(*w, l->dbbDim(), spec);
    }
}

std::vector<FloatTensor>
Network::snapshotParameters()
{
    std::vector<FloatTensor> snap;
    for (auto &l : layers)
        for (FloatTensor *p : l->parameters())
            snap.push_back(*p);
    return snap;
}

void
Network::restoreParameters(const std::vector<FloatTensor> &snap)
{
    size_t i = 0;
    for (auto &l : layers) {
        for (FloatTensor *p : l->parameters()) {
            s2ta_assert(i < snap.size(),
                        "snapshot too small (%zu params)",
                        snap.size());
            s2ta_assert(snap[i].shape() == p->shape(),
                        "snapshot shape mismatch at param %zu", i);
            *p = snap[i++];
        }
    }
    s2ta_assert(i == snap.size(), "snapshot has %zu extra params",
                snap.size() - i);
}

void
Network::enableDap(int nnz)
{
    for (auto &l : layers) {
        if (auto *dap = dynamic_cast<DapLayer *>(l.get()))
            dap->enable(nnz);
    }
}

void
Network::disableDap()
{
    for (auto &l : layers) {
        if (auto *dap = dynamic_cast<DapLayer *>(l.get()))
            dap->disable();
    }
}

void
Network::fakeQuantizeWeightsInt8()
{
    for (auto &l : layers) {
        FloatTensor *w = l->weights();
        if (w == nullptr)
            continue;
        float max_abs = 0.0f;
        for (int64_t i = 0; i < w->size(); ++i)
            max_abs = std::max(max_abs, std::fabs(w->flat(i)));
        if (max_abs == 0.0f)
            continue;
        const float scale = max_abs / 127.0f;
        for (int64_t i = 0; i < w->size(); ++i) {
            float q = std::nearbyint(w->flat(i) / scale);
            q = std::min(127.0f, std::max(-127.0f, q));
            w->flat(i) = q * scale;
        }
    }
}

float
softmaxCrossEntropy(const FloatTensor &logits, int label,
                    FloatTensor &grad_out)
{
    s2ta_assert(logits.rank() == 1, "logits must be flat");
    const int n = logits.dim(0);
    s2ta_assert(label >= 0 && label < n, "label %d of %d", label, n);

    float max_logit = logits.flat(0);
    for (int i = 1; i < n; ++i)
        max_logit = std::max(max_logit, logits.flat(i));
    double denom = 0.0;
    for (int i = 0; i < n; ++i)
        denom += std::exp(static_cast<double>(
            logits.flat(i) - max_logit));

    grad_out = FloatTensor({n});
    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
        const double pr = std::exp(static_cast<double>(
                              logits.flat(i) - max_logit)) / denom;
        grad_out(i) = static_cast<float>(pr - (i == label ? 1.0 : 0.0));
        if (i == label)
            loss = -std::log(std::max(pr, 1e-12));
    }
    return static_cast<float>(loss);
}

} // namespace s2ta
