#include "nn/synthetic.hh"

#include <cmath>

namespace s2ta {

namespace {

constexpr double kPi = 3.14159265358979323846;

} // anonymous namespace

Dataset
makeSyntheticVision(int count, const SyntheticVisionConfig &cfg,
                    Rng &rng)
{
    s2ta_assert(count > 0 && cfg.num_classes >= 2,
                "bad vision dataset config");
    Dataset ds;
    ds.num_classes = cfg.num_classes;
    ds.samples.reserve(static_cast<size_t>(count));

    for (int s = 0; s < count; ++s) {
        const int label =
            static_cast<int>(rng.uniformInt(0, cfg.num_classes - 1));
        // Class signature: grating orientation + frequency, plus a
        // class-positioned blob; both jittered per sample.
        const double theta =
            kPi * label / static_cast<double>(cfg.num_classes);
        const double freq = 1.5 + 0.5 * (label % 3);
        const double phase = rng.uniformReal(0.0, 2.0 * kPi);
        const int jx = static_cast<int>(
            rng.uniformInt(-cfg.jitter, cfg.jitter));
        const int jy = static_cast<int>(
            rng.uniformInt(-cfg.jitter, cfg.jitter));
        const double bx =
            (0.2 + 0.6 * ((label * 3) % cfg.num_classes) /
                       static_cast<double>(cfg.num_classes)) *
                cfg.width + jx;
        const double by =
            (0.2 + 0.6 * ((label * 5) % cfg.num_classes) /
                       static_cast<double>(cfg.num_classes)) *
                cfg.height + jy;

        FloatTensor img({cfg.height, cfg.width, cfg.channels});
        for (int y = 0; y < cfg.height; ++y) {
            for (int x = 0; x < cfg.width; ++x) {
                const double u =
                    (x + jx) * std::cos(theta) +
                    (y + jy) * std::sin(theta);
                const double grating = std::sin(
                    2.0 * kPi * freq * u / cfg.width + phase);
                const double d2 =
                    (x - bx) * (x - bx) + (y - by) * (y - by);
                const double blob = std::exp(-d2 / 6.0);
                for (int c = 0; c < cfg.channels; ++c) {
                    // Channels see phase-shifted copies so channel
                    // blocks carry correlated structure (relevant
                    // for DAP along the channel dimension).
                    const double chan_phase = 0.7 * c;
                    const double v =
                        grating * std::cos(chan_phase) +
                        blob * std::sin(chan_phase + 0.4) +
                        rng.normal(0.0, cfg.noise);
                    img(y, x, c) = static_cast<float>(v);
                }
            }
        }
        ds.samples.push_back({std::move(img), label});
    }
    return ds;
}

Dataset
makeSyntheticFeatures(int count, const SyntheticFeatureConfig &cfg,
                      Rng &rng)
{
    s2ta_assert(count > 0 && cfg.num_classes >= 2,
                "bad feature dataset config");
    Dataset ds;
    ds.num_classes = cfg.num_classes;
    ds.samples.reserve(static_cast<size_t>(count));

    // Deterministic class centroids from a fixed-seed stream so the
    // task is identical across runs regardless of @p rng state.
    Rng centroid_rng(0xCE27401Dull);
    std::vector<FloatTensor> centroids;
    centroids.reserve(static_cast<size_t>(cfg.num_classes));
    for (int k = 0; k < cfg.num_classes; ++k) {
        FloatTensor c({cfg.dim});
        for (int i = 0; i < cfg.dim; ++i)
            c(i) = centroid_rng.bernoulli(0.5) ? 1.0f : -1.0f;
        centroids.push_back(std::move(c));
    }

    for (int s = 0; s < count; ++s) {
        const int label =
            static_cast<int>(rng.uniformInt(0, cfg.num_classes - 1));
        FloatTensor v({cfg.dim});
        for (int i = 0; i < cfg.dim; ++i) {
            v(i) = centroids[static_cast<size_t>(label)](i) +
                   static_cast<float>(rng.normal(0.0, cfg.noise));
        }
        ds.samples.push_back({std::move(v), label});
    }
    return ds;
}

} // namespace s2ta
