/**
 * @file
 * Training / fine-tuning loop with DBB-aware extensions (paper
 * Sec. 8.1): progressive W-DBB magnitude projection during training
 * and DAP layers active in the forward pass with straight-through
 * gradients.
 */

#ifndef S2TA_NN_TRAINER_HH
#define S2TA_NN_TRAINER_HH

#include "core/dbb.hh"
#include "nn/net.hh"
#include "nn/synthetic.hh"

namespace s2ta {

/** Training-loop configuration. */
struct TrainConfig
{
    int epochs = 8;
    int batch = 16;
    float lr = 0.05f;
    /** Per-epoch multiplicative learning-rate decay. */
    float lr_decay = 1.0f;
    float momentum = 0.9f;
    /** Enable progressive W-DBB projection towards this spec. */
    bool use_weight_dbb = false;
    DbbSpec weight_dbb{4, 8};
    /** Epochs over which the W-DBB budget ramps down. */
    int weight_dbb_ramp = 3;
    /** Print a progress line every N epochs (0 = silent). */
    int log_every = 0;
    uint64_t shuffle_seed = 0x5EED;
};

/** Outcome of a training run. */
struct TrainResult
{
    float final_loss = 0.0f;
    int epochs_run = 0;
};

/**
 * Train (or fine-tune) @p net on @p data. If W-DBB is enabled, the
 * weights are projected onto the (progressively tightening) density
 * bound after every optimizer step, so the returned network
 * satisfies the target spec exactly.
 */
TrainResult train(Network &net, const Dataset &data,
                  const TrainConfig &cfg);

/** Top-1 accuracy of @p net on @p data, in [0, 1]. */
double evaluate(Network &net, const Dataset &data);

/** The small CNN used as the Table-3 vision testbed. */
Network makeTestbedCnn(int in_channels, int num_classes, Rng &rng);

/** The small MLP used as the Table-3 I-BERT (FC sub-layer) analog. */
Network makeTestbedMlp(int in_dim, int num_classes, Rng &rng);

} // namespace s2ta

#endif // S2TA_NN_TRAINER_HH
