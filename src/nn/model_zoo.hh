/**
 * @file
 * Layer-shape tables for the CNNs the paper evaluates (Sec. 8):
 * AlexNet, VGG-16, MobileNetV1, ResNet-50V1 (ImageNet shapes) and
 * LeNet-5 (MNIST shapes). Fully-connected layers are expressed as
 * 1x1 convolutions over a 1x1 spatial extent, and depthwise layers
 * as grouped convolutions, which is exactly how the accelerator
 * consumes them.
 */

#ifndef S2TA_NN_MODEL_ZOO_HH
#define S2TA_NN_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "tensor/conv.hh"

namespace s2ta {

/** Functional role of a layer (affects sparsity profiles). */
enum class LayerKind
{
    Conv,           ///< standard convolution
    Depthwise,      ///< depthwise convolution (groups == channels)
    Pointwise,      ///< 1x1 convolution
    FullyConnected, ///< FC expressed as 1x1 conv on 1x1 input
};

const char *layerKindName(LayerKind kind);

/** One layer of a model. */
struct ModelLayer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    Conv2dShape shape;
};

/** A whole model: ordered GEMM-bearing layers. */
struct ModelSpec
{
    std::string name;
    std::vector<ModelLayer> layers;

    /** Dense MACs summed over all layers. */
    int64_t totalMacs() const;

    /** Dense MACs over convolution layers only (paper's "Conv
     *  only" rows exclude FC). */
    int64_t convMacs() const;

    /** Total weight elements. */
    int64_t totalWeights() const;
};

/** AlexNet (single-tower, 227x227 input). */
ModelSpec alexNet();

/** VGG-16 (224x224 input). */
ModelSpec vgg16();

/** MobileNetV1 1.0-224. */
ModelSpec mobileNetV1();

/** ResNet-50 v1 (224x224 input), all 53 convolutions plus FC. */
ModelSpec resNet50();

/** LeNet-5 (28x28 input). */
ModelSpec leNet5();

/** The four full-model benchmark networks of Sec. 8.3. */
std::vector<ModelSpec> benchmarkModels();

/**
 * Zoo model by its CLI name: lenet5, alexnet, vgg16, mobilenetv1,
 * or resnet50. Fatal on unknown names (shared by the bench flag
 * parser and the serving model registry, so a typo can never run
 * the wrong model silently).
 */
ModelSpec modelByName(const std::string &name);

} // namespace s2ta

#endif // S2TA_NN_MODEL_ZOO_HH
