#include "nn/trainer.hh"

#include <numeric>

#include "core/weight_pruner.hh"

namespace s2ta {

TrainResult
train(Network &net, const Dataset &data, const TrainConfig &cfg)
{
    s2ta_assert(data.size() > 0, "empty dataset");
    s2ta_assert(cfg.batch >= 1, "batch=%d", cfg.batch);

    Rng rng(cfg.shuffle_seed);
    std::vector<int> order(static_cast<size_t>(data.size()));
    std::iota(order.begin(), order.end(), 0);

    TrainResult res;
    FloatTensor grad;
    float lr = cfg.lr;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        rng.shuffle(order);
        const DbbSpec epoch_spec =
            cfg.use_weight_dbb
                ? progressiveSpec(epoch, cfg.weight_dbb_ramp,
                                  cfg.weight_dbb)
                : DbbSpec{8, 8};

        double epoch_loss = 0.0;
        int in_batch = 0;
        for (int idx : order) {
            const Sample &s =
                data.samples[static_cast<size_t>(idx)];
            FloatTensor logits = net.forward(s.input, true);
            epoch_loss += softmaxCrossEntropy(logits, s.label, grad);
            net.backward(grad);
            if (++in_batch == cfg.batch) {
                net.step(lr, cfg.momentum, in_batch);
                if (cfg.use_weight_dbb)
                    net.applyWeightDbb(epoch_spec);
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            net.step(lr, cfg.momentum, in_batch);
            if (cfg.use_weight_dbb)
                net.applyWeightDbb(epoch_spec);
        }
        res.final_loss =
            static_cast<float>(epoch_loss / data.size());
        res.epochs_run = epoch + 1;
        lr *= cfg.lr_decay;
        if (cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0) {
            s2ta_inform("epoch %d/%d: mean loss %.4f", epoch + 1,
                        cfg.epochs,
                        static_cast<double>(res.final_loss));
        }
    }
    // Guarantee the final constraint regardless of ramp state.
    if (cfg.use_weight_dbb)
        net.applyWeightDbb(cfg.weight_dbb);
    return res;
}

double
evaluate(Network &net, const Dataset &data)
{
    s2ta_assert(data.size() > 0, "empty dataset");
    int correct = 0;
    for (const Sample &s : data.samples) {
        FloatTensor logits = net.forward(s.input, false);
        int best = 0;
        for (int i = 1; i < logits.dim(0); ++i)
            if (logits(i) > logits(best))
                best = i;
        correct += (best == s.label);
    }
    return static_cast<double>(correct) / data.size();
}

Network
makeTestbedCnn(int in_channels, int num_classes, Rng &rng)
{
    // conv-relu-[dap]-pool twice, then a small classifier head; the
    // DAP layers sit in front of the convolutions they feed, as in
    // the paper's fine-tuning setup ("adding DAP in front of
    // convolution operations").
    Network net;
    net.add<ConvLayer>(in_channels, 8, 3, 1, rng);
    net.add<ReluLayer>();
    net.add<MaxPoolLayer>();
    net.add<DapLayer>(); // disabled until enableDap()
    net.add<ConvLayer>(8, 16, 3, 1, rng);
    net.add<ReluLayer>();
    net.add<MaxPoolLayer>();
    net.add<DapLayer>();
    net.add<FlattenLayer>();
    net.add<DenseLayer>(3 * 3 * 16, 48, rng);
    net.add<ReluLayer>();
    net.add<DenseLayer>(48, num_classes, rng);
    return net;
}

Network
makeTestbedMlp(int in_dim, int num_classes, Rng &rng)
{
    // FC1 -> FC2 mirrors the encoder FC sub-layers the paper prunes
    // in I-BERT (Table 3 footnote 4).
    Network net;
    net.add<DenseLayer>(in_dim, 96, rng);
    net.add<ReluLayer>();
    net.add<DapLayer>();
    net.add<DenseLayer>(96, 48, rng);
    net.add<ReluLayer>();
    net.add<DenseLayer>(48, num_classes, rng);
    return net;
}

} // namespace s2ta
