/**
 * @file
 * Minimal float32 training substrate for the accuracy experiments
 * (paper Sec. 8.1 / Table 3).
 *
 * Supports exactly what DBB fine-tuning needs: small CNN/MLP
 * forward/backward, SGD with momentum, a DAP layer with the paper's
 * straight-through gradient (the binary Top-NNZ mask), and W-DBB
 * projection of weights along the input-channel blocking dimension.
 *
 * Single-sample forward/backward with gradient accumulation over a
 * mini-batch; tensors are (H, W, C) or flat (F).
 */

#ifndef S2TA_NN_NET_HH
#define S2TA_NN_NET_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "core/dbb.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/** Base class for trainable layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass; @p train enables training-only behaviour. */
    virtual FloatTensor forward(const FloatTensor &x, bool train) = 0;

    /** Backward pass; consumes dL/dout, returns dL/din. */
    virtual FloatTensor backward(const FloatTensor &grad_out) = 0;

    /** Apply accumulated gradients (SGD + momentum), then clear. */
    virtual void step(float lr, float momentum, int batch) {
        (void)lr; (void)momentum; (void)batch;
    }

    /** Trainable weight tensor, or nullptr. */
    virtual FloatTensor *weights() { return nullptr; }

    /** All trainable parameter tensors (weights and biases). */
    virtual std::vector<FloatTensor *> parameters() { return {}; }

    /**
     * Dimension of weights() along which DBB blocks run (the
     * input-channel dimension); -1 when not applicable.
     */
    virtual int dbbDim() const { return -1; }

    virtual std::string describe() const = 0;
};

/** 2-D convolution, stride 1, zero padding, NHWC / (kh,kw,cin,cout). */
class ConvLayer : public Layer
{
  public:
    ConvLayer(int in_c, int out_c, int kernel, int pad, Rng &rng);

    FloatTensor forward(const FloatTensor &x, bool train) override;
    FloatTensor backward(const FloatTensor &grad_out) override;
    void step(float lr, float momentum, int batch) override;
    FloatTensor *weights() override { return &w; }
    std::vector<FloatTensor *> parameters() override
    {
        return {&w, &bias};
    }
    int dbbDim() const override { return 2; }
    std::string describe() const override;

  private:
    int in_c, out_c, kernel, pad;
    FloatTensor w;      ///< (k, k, in_c, out_c)
    FloatTensor bias;   ///< (out_c)
    FloatTensor gw, gbias, vw, vbias;
    FloatTensor last_in;
};

/** Fully connected layer on flat (F) tensors; weights (in, out). */
class DenseLayer : public Layer
{
  public:
    DenseLayer(int in_f, int out_f, Rng &rng);

    FloatTensor forward(const FloatTensor &x, bool train) override;
    FloatTensor backward(const FloatTensor &grad_out) override;
    void step(float lr, float momentum, int batch) override;
    FloatTensor *weights() override { return &w; }
    std::vector<FloatTensor *> parameters() override
    {
        return {&w, &bias};
    }
    int dbbDim() const override { return 0; }
    std::string describe() const override;

  private:
    int in_f, out_f;
    FloatTensor w, bias, gw, gbias, vw, vbias;
    FloatTensor last_in;
};

/** Element-wise ReLU. */
class ReluLayer : public Layer
{
  public:
    FloatTensor forward(const FloatTensor &x, bool train) override;
    FloatTensor backward(const FloatTensor &grad_out) override;
    std::string describe() const override { return "relu"; }

  private:
    FloatTensor last_in;
};

/** 2x2 max pooling, stride 2, on (H, W, C). */
class MaxPoolLayer : public Layer
{
  public:
    FloatTensor forward(const FloatTensor &x, bool train) override;
    FloatTensor backward(const FloatTensor &grad_out) override;
    std::string describe() const override { return "maxpool2"; }

  private:
    FloatTensor last_in;
    std::vector<int64_t> argmax;
    std::vector<int> out_shape;
};

/** Flatten (H, W, C) to (F). */
class FlattenLayer : public Layer
{
  public:
    FloatTensor forward(const FloatTensor &x, bool train) override;
    FloatTensor backward(const FloatTensor &grad_out) override;
    std::string describe() const override { return "flatten"; }

  private:
    std::vector<int> in_shape;
};

/**
 * Dynamic Activation Pruning layer (paper Sec. 5.1 / 8.1): Top-NNZ
 * magnitude pruning of 1x1xBZ channel blocks in the forward pass;
 * the backward pass multiplies by the binary keep mask
 * (straight-through dDAP(a)/da).
 *
 * Disabled (identity) until enable() is called, so a baseline can
 * be trained first and DAP switched on for fine-tuning.
 */
class DapLayer : public Layer
{
  public:
    explicit DapLayer(int nnz = 8, int bz = 8);

    void enable(int nnz_) { nnz = nnz_; }
    void disable() { nnz = bz; }
    int currentNnz() const { return nnz; }

    FloatTensor forward(const FloatTensor &x, bool train) override;
    FloatTensor backward(const FloatTensor &grad_out) override;
    std::string describe() const override;

  private:
    int nnz, bz;
    FloatTensor last_mask;
};

/** A sequential network. */
class Network
{
  public:
    Network() = default;

    /** Append a layer; returns a borrowed pointer for later access. */
    template <typename L, typename... Args>
    L *
    add(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers.push_back(std::move(layer));
        return raw;
    }

    /** Forward through all layers; returns the logits. */
    FloatTensor forward(const FloatTensor &x, bool train = false);

    /** Backward from dL/dlogits. */
    void backward(const FloatTensor &grad_logits);

    /** SGD step over all layers. */
    void step(float lr, float momentum, int batch);

    /**
     * Project every weight tensor onto the W-DBB constraint along
     * its layer's blocking dimension (magnitude Top-NNZ per block).
     */
    void applyWeightDbb(const DbbSpec &spec);

    /** Snapshot all trainable parameters (weights and biases). */
    std::vector<FloatTensor> snapshotParameters();

    /** Restore parameters captured by snapshotParameters(). */
    void restoreParameters(const std::vector<FloatTensor> &snap);

    /** Enable every DAP layer at the given density. */
    void enableDap(int nnz);
    /** Disable (bypass) every DAP layer. */
    void disableDap();

    /**
     * Quantize all weights to the symmetric INT8 grid in place
     * (fake quantization: values become scale * round(w / scale)).
     * Used to evaluate INT8 deployment accuracy.
     */
    void fakeQuantizeWeightsInt8();

    const std::vector<std::unique_ptr<Layer>> &all() const {
        return layers;
    }

  private:
    std::vector<std::unique_ptr<Layer>> layers;
};

/** Softmax + cross-entropy; returns loss, writes dL/dlogits. */
float softmaxCrossEntropy(const FloatTensor &logits, int label,
                          FloatTensor &grad_out);

} // namespace s2ta

#endif // S2TA_NN_NET_HH
