/**
 * @file
 * Deterministic synthetic datasets for the accuracy experiments.
 *
 * ImageNet/MNIST are not available offline, so Table 3's *relative*
 * claim (DBB pruning with fine-tuning costs <~1% accuracy; naive
 * pruning costs much more) is exercised on procedurally generated
 * classification tasks (DESIGN.md Sec. 5 substitution table):
 *  - a vision task: oriented sinusoidal gratings + per-class blobs
 *    + Gaussian noise + spatial jitter, (H, W, C) images;
 *  - a feature task: noisy class centroids in R^dim, standing in
 *    for the FC sub-layer workloads of the I-BERT rows.
 */

#ifndef S2TA_NN_SYNTHETIC_HH
#define S2TA_NN_SYNTHETIC_HH

#include <vector>

#include "base/random.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/** One labelled example. */
struct Sample
{
    FloatTensor input;
    int label = 0;
};

/** A labelled dataset. */
struct Dataset
{
    std::vector<Sample> samples;
    int num_classes = 0;

    int size() const { return static_cast<int>(samples.size()); }
};

/** Configuration of the synthetic vision task. */
struct SyntheticVisionConfig
{
    int height = 12;
    int width = 12;
    int channels = 3;
    int num_classes = 8;
    /** Additive Gaussian noise sigma (signal amplitude is ~1). */
    double noise = 0.65;
    /** Max spatial jitter in pixels. */
    int jitter = 2;
};

/** Generate @p count vision samples. */
Dataset makeSyntheticVision(int count,
                            const SyntheticVisionConfig &cfg,
                            Rng &rng);

/** Configuration of the synthetic feature (MLP) task. */
struct SyntheticFeatureConfig
{
    int dim = 64;
    int num_classes = 8;
    double noise = 2.2;
};

/** Generate @p count feature samples. */
Dataset makeSyntheticFeatures(int count,
                              const SyntheticFeatureConfig &cfg,
                              Rng &rng);

} // namespace s2ta

#endif // S2TA_NN_SYNTHETIC_HH
