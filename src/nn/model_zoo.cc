#include "nn/model_zoo.hh"

#include <cstdio>

#include "base/logging.hh"

namespace s2ta {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:           return "conv";
      case LayerKind::Depthwise:      return "dw";
      case LayerKind::Pointwise:      return "pw";
      case LayerKind::FullyConnected: return "fc";
    }
    return "?";
}

int64_t
ModelSpec::totalMacs() const
{
    int64_t macs = 0;
    for (const ModelLayer &l : layers)
        macs += l.shape.denseMacs();
    return macs;
}

int64_t
ModelSpec::convMacs() const
{
    int64_t macs = 0;
    for (const ModelLayer &l : layers)
        if (l.kind != LayerKind::FullyConnected)
            macs += l.shape.denseMacs();
    return macs;
}

int64_t
ModelSpec::totalWeights() const
{
    int64_t w = 0;
    for (const ModelLayer &l : layers) {
        w += static_cast<int64_t>(l.shape.kernel_h) *
             l.shape.kernel_w * l.shape.groupInC() * l.shape.out_c;
    }
    return w;
}

namespace {

/**
 * Incremental model builder tracking the activation resolution as
 * layers (and pooling) are appended.
 */
class Builder
{
  public:
    Builder(std::string name, int h, int w, int c) : h(h), w(w), c(c)
    {
        spec.name = std::move(name);
    }

    /** Append a convolution and update the tracked resolution. */
    Builder &
    conv(const std::string &name, int out_c, int kernel, int stride,
         int pad, LayerKind kind = LayerKind::Conv, int groups = 1)
    {
        ModelLayer l;
        l.name = name;
        l.kind = kernel == 1 && kind == LayerKind::Conv
                     ? LayerKind::Pointwise
                     : kind;
        l.shape.in_c = c;
        l.shape.in_h = h;
        l.shape.in_w = w;
        l.shape.out_c = out_c;
        l.shape.kernel_h = kernel;
        l.shape.kernel_w = kernel;
        l.shape.stride = stride;
        l.shape.pad = pad;
        l.shape.groups =
            kind == LayerKind::Depthwise ? c : groups;
        s2ta_assert(l.shape.valid(), "layer '%s' invalid",
                    name.c_str());
        h = l.shape.outH();
        w = l.shape.outW();
        c = out_c;
        spec.layers.push_back(std::move(l));
        return *this;
    }

    /** Depthwise 3x3 convolution. */
    Builder &
    dw(const std::string &name, int stride)
    {
        return conv(name, c, 3, stride, 1, LayerKind::Depthwise);
    }

    /** Max/avg pooling: only updates the tracked resolution. */
    Builder &
    pool(int kernel, int stride)
    {
        h = (h - kernel) / stride + 1;
        w = (w - kernel) / stride + 1;
        return *this;
    }

    /** Collapse the spatial extent (global average pooling). */
    Builder &
    globalPool()
    {
        h = 1;
        w = 1;
        return *this;
    }

    /** Fully-connected layer as a 1x1 conv over flattened input. */
    Builder &
    fc(const std::string &name, int out_features)
    {
        const int in_features = h * w * c;
        h = 1;
        w = 1;
        c = in_features;
        return conv(name, out_features, 1, 1, 0,
                    LayerKind::FullyConnected);
    }

    ModelSpec take() { return std::move(spec); }

  private:
    ModelSpec spec;
    int h, w, c;
};

} // anonymous namespace

ModelSpec
alexNet()
{
    // The original two-tower AlexNet: conv2/4/5 are 2-group
    // convolutions, giving the classic ~666M convolution MACs the
    // paper's AlexNet numbers correspond to.
    Builder b("AlexNet", 227, 227, 3);
    b.conv("conv1", 96, 11, 4, 0);
    b.pool(3, 2);
    b.conv("conv2", 256, 5, 1, 2, LayerKind::Conv, 2);
    b.pool(3, 2);
    b.conv("conv3", 384, 3, 1, 1);
    b.conv("conv4", 384, 3, 1, 1, LayerKind::Conv, 2);
    b.conv("conv5", 256, 3, 1, 1, LayerKind::Conv, 2);
    b.pool(3, 2);
    b.fc("fc6", 4096);
    b.fc("fc7", 4096);
    b.fc("fc8", 1000);
    return b.take();
}

ModelSpec
vgg16()
{
    Builder b("VGG-16", 224, 224, 3);
    b.conv("conv1_1", 64, 3, 1, 1).conv("conv1_2", 64, 3, 1, 1);
    b.pool(2, 2);
    b.conv("conv2_1", 128, 3, 1, 1).conv("conv2_2", 128, 3, 1, 1);
    b.pool(2, 2);
    b.conv("conv3_1", 256, 3, 1, 1).conv("conv3_2", 256, 3, 1, 1);
    b.conv("conv3_3", 256, 3, 1, 1);
    b.pool(2, 2);
    b.conv("conv4_1", 512, 3, 1, 1).conv("conv4_2", 512, 3, 1, 1);
    b.conv("conv4_3", 512, 3, 1, 1);
    b.pool(2, 2);
    b.conv("conv5_1", 512, 3, 1, 1).conv("conv5_2", 512, 3, 1, 1);
    b.conv("conv5_3", 512, 3, 1, 1);
    b.pool(2, 2);
    b.fc("fc6", 4096);
    b.fc("fc7", 4096);
    b.fc("fc8", 1000);
    return b.take();
}

ModelSpec
mobileNetV1()
{
    Builder b("MobileNetV1", 224, 224, 3);
    b.conv("conv1", 32, 3, 2, 1);
    struct Stage { int out_c; int stride; };
    // The 13 depthwise-separable blocks of MobileNetV1 1.0-224.
    const Stage stages[] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
        {512, 1}, {1024, 2}, {1024, 1},
    };
    int idx = 2;
    for (const Stage &s : stages) {
        char name[32];
        std::snprintf(name, sizeof(name), "conv%d_dw", idx);
        b.dw(name, s.stride);
        std::snprintf(name, sizeof(name), "conv%d_pw", idx);
        b.conv(name, s.out_c, 1, 1, 0);
        ++idx;
    }
    b.globalPool();
    b.fc("fc", 1000);
    return b.take();
}

ModelSpec
resNet50()
{
    ModelSpec spec;
    spec.name = "ResNet-50V1";

    // Residual blocks branch, so track the block-input tensor
    // explicitly instead of using the linear Builder.
    int h = 224, w = 224, c = 3;

    auto emit = [&spec](const std::string &name, int in_c, int in_h,
                        int in_w, int out_c, int kernel, int stride,
                        int pad) {
        ModelLayer l;
        l.name = name;
        l.kind = kernel == 1 ? LayerKind::Pointwise : LayerKind::Conv;
        l.shape = {in_c, in_h, in_w, out_c, kernel, kernel, stride,
                   pad, 1};
        s2ta_assert(l.shape.valid(), "layer '%s' invalid",
                    name.c_str());
        spec.layers.push_back(std::move(l));
    };

    emit("conv1", c, h, w, 64, 7, 2, 3);
    // conv1 output is 112x112x64; the 3x3/2 pad-1 max pool halves
    // the resolution to 56x56.
    h = 56; w = 56; c = 64;

    struct StageCfg { int mid; int out; int blocks; const char *nm; };
    const StageCfg stages[] = {
        {64, 256, 3, "conv2"},
        {128, 512, 4, "conv3"},
        {256, 1024, 6, "conv4"},
        {512, 2048, 3, "conv5"},
    };
    bool first_stage = true;
    for (const StageCfg &st : stages) {
        for (int blk = 0; blk < st.blocks; ++blk) {
            char name[48];
            // The first block of conv3/4/5 downsamples (stride in
            // the 1x1a and the projection, ResNet v1 convention).
            const int stride = (blk == 0 && !first_stage) ? 2 : 1;
            const int oh = (h - 1) / stride + 1;
            const int ow = (w - 1) / stride + 1;
            if (blk == 0) {
                std::snprintf(name, sizeof(name), "%s_b%d_proj",
                              st.nm, blk + 1);
                emit(name, c, h, w, st.out, 1, stride, 0);
            }
            std::snprintf(name, sizeof(name), "%s_b%d_1x1a", st.nm,
                          blk + 1);
            emit(name, c, h, w, st.mid, 1, stride, 0);
            std::snprintf(name, sizeof(name), "%s_b%d_3x3", st.nm,
                          blk + 1);
            emit(name, st.mid, oh, ow, st.mid, 3, 1, 1);
            std::snprintf(name, sizeof(name), "%s_b%d_1x1b", st.nm,
                          blk + 1);
            emit(name, st.mid, oh, ow, st.out, 1, 1, 0);
            h = oh;
            w = ow;
            c = st.out;
        }
        first_stage = false;
    }

    // Global average pool then FC, as a 1x1 conv on 1x1x2048.
    ModelLayer fc;
    fc.name = "fc";
    fc.kind = LayerKind::FullyConnected;
    fc.shape = {c, 1, 1, 1000, 1, 1, 1, 0, 1};
    spec.layers.push_back(std::move(fc));
    return spec;
}

ModelSpec
leNet5()
{
    Builder b("LeNet-5", 28, 28, 1);
    b.conv("conv1", 6, 5, 1, 2);
    b.pool(2, 2);
    b.conv("conv2", 16, 5, 1, 0);
    b.pool(2, 2);
    b.fc("fc3", 120);
    b.fc("fc4", 84);
    b.fc("fc5", 10);
    return b.take();
}

std::vector<ModelSpec>
benchmarkModels()
{
    return {resNet50(), vgg16(), mobileNetV1(), alexNet()};
}

ModelSpec
modelByName(const std::string &name)
{
    if (name == "lenet5")
        return leNet5();
    if (name == "alexnet")
        return alexNet();
    if (name == "vgg16")
        return vgg16();
    if (name == "mobilenetv1")
        return mobileNetV1();
    if (name == "resnet50")
        return resNet50();
    s2ta_fatal("unknown model '%s' (lenet5|alexnet|vgg16|"
               "mobilenetv1|resnet50)", name.c_str());
}

} // namespace s2ta
