#include "core/dbb.hh"

#include <algorithm>
#include <cstdio>

namespace s2ta {

std::string
DbbSpec::toString() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d/%d", nnz, bz);
    return buf;
}

DbbBlock
dbbEncode(std::span<const int8_t> dense, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid DBB spec %d/%d",
                spec.nnz, spec.bz);
    s2ta_assert(dense.size() == static_cast<size_t>(spec.bz),
                "block length %zu != bz %d", dense.size(), spec.bz);

    DbbBlock blk;
    int slot = 0;
    for (int i = 0; i < spec.bz; ++i) {
        if (dense[static_cast<size_t>(i)] == 0)
            continue;
        s2ta_assert(slot < spec.nnz,
                    "block violates %s density bound; prune first",
                    spec.toString().c_str());
        blk.values[static_cast<size_t>(slot)] =
            dense[static_cast<size_t>(i)];
        blk.mask = maskSet(blk.mask, i);
        ++slot;
    }
    return blk;
}

void
dbbDecode(const DbbBlock &block, const DbbSpec &spec,
          std::span<int8_t> dense_out)
{
    s2ta_assert(dense_out.size() == static_cast<size_t>(spec.bz),
                "output length %zu != bz %d", dense_out.size(),
                spec.bz);
    for (int i = 0; i < spec.bz; ++i)
        dense_out[static_cast<size_t>(i)] = block.expandedAt(i);
}

bool
dbbSatisfies(std::span<const int8_t> dense, const DbbSpec &spec)
{
    if (dense.size() != static_cast<size_t>(spec.bz))
        return false;
    int nz = 0;
    for (int8_t v : dense)
        nz += (v != 0);
    return nz <= spec.nnz;
}

DbbMatrix
DbbMatrix::fromWeights(const GemmProblem &p, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid DBB spec %d/%d",
                spec.nnz, spec.bz);
    const int bz = spec.bz;
    DbbMatrix m(spec, p.n, (p.k + bz - 1) / bz);
    // The weight operand is K x N row-major but blocks run down each
    // column; encode all N column blocks of one block-row at a time
    // so memory access stays sequential.
    for (int b = 0; b < m.n_blocks; ++b) {
        const int klim = std::min(bz, p.k - b * bz);
        for (int e = 0; e < klim; ++e) {
            const int8_t *row =
                &p.w[static_cast<size_t>(b * bz + e) * p.n];
            for (int j = 0; j < p.n; ++j) {
                if (row[j] == 0)
                    continue;
                DbbBlock &blk =
                    m.blks[static_cast<size_t>(j) * m.n_blocks + b];
                const int slot = maskPopcount(blk.mask);
                s2ta_assert(slot < spec.nnz,
                            "weight block (col %d, block %d) "
                            "violates %s density bound; prune first",
                            j, b, spec.toString().c_str());
                blk.values[static_cast<size_t>(slot)] = row[j];
                blk.mask = maskSet(blk.mask, e);
            }
        }
    }
    return m;
}

DbbMatrix
DbbMatrix::fromActivations(const GemmProblem &p, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid DBB spec %d/%d",
                spec.nnz, spec.bz);
    const int bz = spec.bz;
    DbbMatrix m(spec, p.m, (p.k + bz - 1) / bz);
    for (int i = 0; i < p.m; ++i) {
        const int8_t *row = &p.a[static_cast<size_t>(i) * p.k];
        DbbBlock *blk_row =
            &m.blks[static_cast<size_t>(i) * m.n_blocks];
        for (int b = 0; b < m.n_blocks; ++b) {
            DbbBlock &blk = blk_row[b];
            const int klim = std::min(bz, p.k - b * bz);
            int slot = 0;
            for (int e = 0; e < klim; ++e) {
                const int8_t v = row[b * bz + e];
                if (v == 0)
                    continue;
                s2ta_assert(slot < spec.nnz,
                            "activation block (row %d, block %d) "
                            "violates %s density bound; prune first",
                            i, b, spec.toString().c_str());
                blk.values[static_cast<size_t>(slot)] = v;
                blk.mask = maskSet(blk.mask, e);
                ++slot;
            }
        }
    }
    return m;
}

int64_t
DbbMatrix::compressedBytes() const
{
    // nnz value bytes + 1 mask byte per block.
    return static_cast<int64_t>(n_vectors) * n_blocks *
           (dbb_spec.nnz + 1);
}

double
DbbMatrix::occupancy() const
{
    if (blks.empty())
        return 0.0;
    int64_t stored = 0;
    for (const DbbBlock &b : blks)
        stored += b.storedCount();
    return static_cast<double>(stored) /
           (static_cast<double>(blks.size()) * dbb_spec.nnz);
}

std::vector<int8_t>
DbbMatrix::toDense() const
{
    const int k = n_blocks * dbb_spec.bz;
    std::vector<int8_t> dense(
        static_cast<size_t>(n_vectors) * k, 0);
    for (int v = 0; v < n_vectors; ++v) {
        for (int b = 0; b < n_blocks; ++b) {
            const DbbBlock &blk =
                blks[static_cast<size_t>(v) * n_blocks + b];
            for (int e = 0; e < dbb_spec.bz; ++e) {
                dense[static_cast<size_t>(v) * k + b * dbb_spec.bz +
                      e] = blk.expandedAt(e);
            }
        }
    }
    return dense;
}

} // namespace s2ta
