#include "core/weight_pruner.hh"

#include "core/topk.hh"

namespace s2ta {

namespace {

/**
 * Prune one block in place and fold the outcome into @p stats and the
 * L2 accumulators.
 */
template <typename T>
void
pruneBlock(std::span<T> block, int nnz, PruneStats &stats,
           double &l2_before, double &l2_after)
{
    for (T v : block) {
        const double mag = elemMagnitude(v);
        if (mag > 0.0) {
            ++stats.nonzeros_before;
            l2_before += mag * mag;
        }
    }
    const Mask8 keep = topNnzMask(std::span<const T>(block), nnz);
    for (size_t i = 0; i < block.size(); ++i) {
        const double mag = elemMagnitude(block[i]);
        if (maskTest(keep, static_cast<int>(i))) {
            l2_after += mag * mag;
        } else if (mag > 0.0) {
            ++stats.nonzeros_dropped;
        }
    }
    applyKeepMask(block, keep);
    ++stats.blocks;
}

/** Prune a flat buffer of contiguous vectors of length @p vec_len. */
template <typename T>
PruneStats
pruneContiguous(T *data, int64_t count, int vec_len,
                const DbbSpec &spec)
{
    PruneStats stats;
    double l2_before = 0.0, l2_after = 0.0;
    s2ta_assert(count % vec_len == 0,
                "buffer %ld not a multiple of vector length %d",
                count, vec_len);
    for (int64_t base = 0; base < count; base += vec_len) {
        for (int off = 0; off < vec_len; off += spec.bz) {
            const int len = std::min(spec.bz, vec_len - off);
            const int bound = std::min(spec.nnz, len);
            pruneBlock(std::span<T>(data + base + off,
                                    static_cast<size_t>(len)),
                       bound, stats, l2_before, l2_after);
        }
    }
    stats.l2_retained = l2_before > 0.0 ? l2_after / l2_before : 1.0;
    return stats;
}

} // anonymous namespace

PruneStats
pruneWeightsDbb(GemmProblem &p, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid spec");
    s2ta_assert(p.k % spec.bz == 0, "K=%d vs bz=%d", p.k, spec.bz);

    // Weight blocks run down columns; gather, prune, scatter.
    PruneStats stats;
    double l2_before = 0.0, l2_after = 0.0;
    std::vector<int8_t> tmp(static_cast<size_t>(spec.bz));
    for (int j = 0; j < p.n; ++j) {
        for (int b = 0; b < p.k / spec.bz; ++b) {
            for (int e = 0; e < spec.bz; ++e)
                tmp[static_cast<size_t>(e)] =
                    p.wgtAt(b * spec.bz + e, j);
            pruneBlock(std::span<int8_t>(tmp), spec.nnz, stats,
                       l2_before, l2_after);
            for (int e = 0; e < spec.bz; ++e)
                p.wgtAt(b * spec.bz + e, j) =
                    tmp[static_cast<size_t>(e)];
        }
    }
    stats.l2_retained = l2_before > 0.0 ? l2_after / l2_before : 1.0;
    return stats;
}

PruneStats
pruneActivationsDbb(GemmProblem &p, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid spec");
    s2ta_assert(p.k % spec.bz == 0, "K=%d vs bz=%d", p.k, spec.bz);
    return pruneContiguous(p.a.data(),
                           static_cast<int64_t>(p.a.size()), p.k,
                           spec);
}

PruneStats
pruneTensorDbb(Int8Tensor &t, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid spec");
    s2ta_assert(t.rank() >= 1, "rank-0 tensor");
    const int channels = t.dim(t.rank() - 1);
    return pruneContiguous(t.data(), t.size(), channels, spec);
}

PruneStats
pruneFloatTensorDbb(FloatTensor &t, const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid spec");
    s2ta_assert(t.rank() >= 1, "rank-0 tensor");
    const int channels = t.dim(t.rank() - 1);
    return pruneContiguous(t.data(), t.size(), channels, spec);
}

PruneStats
pruneFloatTensorDbbAlongDim(FloatTensor &t, int dim,
                            const DbbSpec &spec)
{
    s2ta_assert(spec.valid(), "invalid spec");
    s2ta_assert(dim >= 0 && dim < t.rank(), "dim %d of rank %d", dim,
                t.rank());

    // Iterate over all index tuples with 'dim' fixed at 0; gather
    // the vector along 'dim', prune, and scatter back.
    const int len = t.dim(dim);
    int64_t outer = 1, inner = 1;
    for (int d = 0; d < dim; ++d)
        outer *= t.dim(d);
    for (int d = dim + 1; d < t.rank(); ++d)
        inner *= t.dim(d);

    PruneStats stats;
    double l2_before = 0.0, l2_after = 0.0;
    std::vector<float> vec(static_cast<size_t>(len));
    for (int64_t o = 0; o < outer; ++o) {
        for (int64_t in = 0; in < inner; ++in) {
            const int64_t base = o * len * inner + in;
            for (int e = 0; e < len; ++e)
                vec[static_cast<size_t>(e)] = t.flat(base + e * inner);
            for (int off = 0; off < len; off += spec.bz) {
                const int blk_len = std::min(spec.bz, len - off);
                const int bound = std::min(spec.nnz, blk_len);
                pruneBlock(std::span<float>(vec.data() + off,
                               static_cast<size_t>(blk_len)),
                           bound, stats, l2_before, l2_after);
            }
            for (int e = 0; e < len; ++e)
                t.flat(base + e * inner) = vec[static_cast<size_t>(e)];
        }
    }
    stats.l2_retained = l2_before > 0.0 ? l2_after / l2_before : 1.0;
    return stats;
}

DbbSpec
progressiveSpec(int epoch, int ramp_epochs, const DbbSpec &target)
{
    s2ta_assert(target.valid(), "invalid target spec");
    s2ta_assert(ramp_epochs >= 1, "ramp_epochs=%d", ramp_epochs);
    if (epoch >= ramp_epochs)
        return target;
    // Linear ramp from fully dense down to the target budget.
    const double frac =
        static_cast<double>(epoch + 1) / ramp_epochs;
    const int span = target.bz - target.nnz;
    const int nnz =
        target.bz - static_cast<int>(std::lround(span * frac));
    return DbbSpec{std::max(target.nnz, nnz), target.bz};
}

} // namespace s2ta
