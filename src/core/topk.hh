/**
 * @file
 * Shared Top-NNZ-by-magnitude selection used by both the static
 * weight pruner (W-DBB) and Dynamic Activation Pruning (A-DBB).
 *
 * Selection semantics mirror the hardware (paper Fig. 8): repeated
 * magnitude argmax with the *lowest index winning ties*, and
 * zero-magnitude elements are never selected. A linear scan with
 * strict-greater comparison is exactly equivalent to a left-biased
 * binary maxpool reduction tree, so the software reference and the
 * cycle-level hardware model provably agree.
 */

#ifndef S2TA_CORE_TOPK_HH
#define S2TA_CORE_TOPK_HH

#include <cmath>
#include <cstdint>
#include <span>

#include "base/bitmask.hh"

namespace s2ta {

/** Absolute magnitude of an element, as the comparators see it. */
inline double
elemMagnitude(int8_t v)
{
    return std::abs(static_cast<int>(v));
}

inline double
elemMagnitude(float v)
{
    return std::fabs(v);
}

/**
 * Select up to @p nnz elements of @p block with the largest
 * magnitude; returns the positional bitmask of the keepers.
 *
 * Blocks must have at most 8 elements (Mask8). Zero-magnitude
 * elements are never selected, so blocks with fewer than nnz
 * non-zeros yield masks with fewer than nnz set bits.
 */
template <typename T>
Mask8
topNnzMask(std::span<const T> block, int nnz)
{
    s2ta_assert(block.size() >= 1 && block.size() <= 8,
                "block size %zu", block.size());
    s2ta_assert(nnz >= 0, "nnz=%d", nnz);

    Mask8 mask = 0;
    const int bz = static_cast<int>(block.size());
    for (int stage = 0; stage < nnz; ++stage) {
        int best = -1;
        double best_mag = 0.0;
        for (int i = 0; i < bz; ++i) {
            if (maskTest(mask, i))
                continue; // selected by an earlier stage
            const double mag =
                elemMagnitude(block[static_cast<size_t>(i)]);
            if (mag > best_mag) { // strict '>' => lowest index wins
                best_mag = mag;
                best = i;
            }
        }
        if (best < 0)
            break; // nothing non-zero left
        mask = maskSet(mask, best);
    }
    return mask;
}

/** Zero every element of @p block not flagged in @p keep_mask. */
template <typename T>
void
applyKeepMask(std::span<T> block, Mask8 keep_mask)
{
    for (size_t i = 0; i < block.size(); ++i) {
        if (!maskTest(keep_mask, static_cast<int>(i)))
            block[i] = T{};
    }
}

} // namespace s2ta

#endif // S2TA_CORE_TOPK_HH
