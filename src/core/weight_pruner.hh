/**
 * @file
 * Static weight DBB pruning (W-DBB, paper Sec. 4 and 8.1).
 *
 * Weights are known offline, so the density bound is enforced at
 * training/deployment time by magnitude pruning *independently within
 * each DBB block* ("DBB-aware weight pruning", similar to random
 * magnitude pruning but block-local). Progressive schedules shrink
 * the per-block budget over fine-tuning epochs.
 */

#ifndef S2TA_CORE_WEIGHT_PRUNER_HH
#define S2TA_CORE_WEIGHT_PRUNER_HH

#include <vector>

#include "core/dbb.hh"
#include "tensor/tensor.hh"

namespace s2ta {

/** Outcome of a pruning pass. */
struct PruneStats
{
    /** Number of DBB blocks visited. */
    int64_t blocks = 0;
    /** Elements that were non-zero and got zeroed. */
    int64_t nonzeros_dropped = 0;
    /** Non-zero elements before pruning. */
    int64_t nonzeros_before = 0;
    /** Sum |x|^2 retained / sum |x|^2 before (1.0 when lossless). */
    double l2_retained = 1.0;

    /** Fraction of previously non-zero elements that were dropped. */
    double
    dropFraction() const
    {
        return nonzeros_before == 0
                   ? 0.0
                   : static_cast<double>(nonzeros_dropped) /
                         static_cast<double>(nonzeros_before);
    }
};

/**
 * Prune the weight operand of a GEMM in place so every K-block of
 * every column satisfies @p spec (keep the Top-NNZ magnitudes per
 * block). K must be a multiple of spec.bz.
 */
PruneStats pruneWeightsDbb(GemmProblem &p, const DbbSpec &spec);

/**
 * Prune the activation operand of a GEMM in place so every K-block
 * of every row satisfies @p spec. Used by microbenchmark workloads
 * that synthesize operands directly at the GEMM level.
 */
PruneStats pruneActivationsDbb(GemmProblem &p, const DbbSpec &spec);

/**
 * Prune an INT8 tensor along its innermost (channel) dimension.
 * A partial tail block of r < bz elements uses the bound
 * min(nnz, r).
 */
PruneStats pruneTensorDbb(Int8Tensor &t, const DbbSpec &spec);

/**
 * Prune a float tensor along its innermost dimension (used by the
 * training substrate for W-DBB-aware fine-tuning).
 */
PruneStats pruneFloatTensorDbb(FloatTensor &t, const DbbSpec &spec);

/**
 * Prune a float tensor with DBB blocks running along an arbitrary
 * dimension @p dim (e.g. the input-channel dimension of a
 * (kh, kw, cin, cout) convolution weight tensor, which is the
 * paper's blocking dimension).
 */
PruneStats pruneFloatTensorDbbAlongDim(FloatTensor &t, int dim,
                                       const DbbSpec &spec);

/**
 * Progressive pruning schedule (paper: "progressively pruning
 * small-magnitude weights ... until the desired DBB sparsity
 * constraint is met", 20-50 epochs).
 *
 * @param epoch current epoch, 0-based.
 * @param ramp_epochs epochs over which the budget shrinks.
 * @param target final spec (e.g. 4/8).
 * @return the spec to enforce at this epoch; starts at bz/bz and
 *         decreases linearly to target.nnz.
 */
DbbSpec progressiveSpec(int epoch, int ramp_epochs,
                        const DbbSpec &target);

} // namespace s2ta

#endif // S2TA_CORE_WEIGHT_PRUNER_HH
