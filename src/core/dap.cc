#include "core/dap.hh"

#include "core/topk.hh"

namespace s2ta {

Mask8
dapSelectMask(std::span<const int8_t> block, int nnz)
{
    return topNnzMask(block, nnz);
}

DapUnit::DapUnit(DapConfig cfg_) : cfg(cfg_)
{
    s2ta_assert(cfg.bz >= 1 && cfg.bz <= 8, "bz=%d", cfg.bz);
    s2ta_assert(cfg.max_stages >= 1 && cfg.max_stages <= cfg.bz,
                "max_stages=%d", cfg.max_stages);
}

DapUnit::BlockResult
DapUnit::process(std::span<const int8_t> block, int nnz) const
{
    s2ta_assert(block.size() == static_cast<size_t>(cfg.bz),
                "block size %zu != bz %d", block.size(), cfg.bz);
    s2ta_assert(cfg.supports(nnz), "unsupported NNZ %d", nnz);

    BlockResult res;
    if (nnz == cfg.bz) {
        // Dense bypass: no comparator activity; the mask simply
        // flags the non-zero positions (what dbbEncode would store).
        for (int i = 0; i < cfg.bz; ++i) {
            if (block[static_cast<size_t>(i)] != 0)
                res.mask = maskSet(res.mask, i);
        }
        return res;
    }

    // Cascade of magnitude maxpool stages. Each stage performs a
    // left-biased binary-tree reduction over the elements not yet
    // selected, which is equivalent to a linear argmax scan with
    // strict-greater comparison (lowest index wins ties). Each stage
    // burns BZ-1 comparators regardless of data (Fig. 8).
    for (int stage = 0; stage < nnz; ++stage) {
        res.comparisons += cfg.bz - 1;
        int best = -1;
        int best_mag = 0;
        for (int i = 0; i < cfg.bz; ++i) {
            if (maskTest(res.mask, i))
                continue; // discounted in consecutive maxpools
            const int mag =
                std::abs(static_cast<int>(block[
                    static_cast<size_t>(i)]));
            if (mag > best_mag) {
                best_mag = mag;
                best = i;
            }
        }
        if (best < 0)
            break; // only zeros remain; later stages select nothing
        res.winner_positions.push_back(best);
        res.mask = maskSet(res.mask, best);
    }
    return res;
}

namespace {

/**
 * Prune contiguous channel vectors of length @p vec_len inside a
 * flat buffer, accumulating DAP statistics.
 */
DapStats
dapPruneContiguous(int8_t *data, int64_t count, int vec_len, int nnz,
                   const DapConfig &cfg)
{
    s2ta_assert(cfg.supports(nnz), "unsupported NNZ %d", nnz);
    s2ta_assert(count % vec_len == 0,
                "buffer %ld not a multiple of vector length %d",
                count, vec_len);

    DapStats stats;
    double l2_before = 0.0, l2_after = 0.0;
    const bool bypass = (nnz == cfg.bz);

    for (int64_t base = 0; base < count; base += vec_len) {
        for (int off = 0; off < vec_len; off += cfg.bz) {
            const int len = std::min(cfg.bz, vec_len - off);
            const int bound = std::min(nnz, len);
            std::span<int8_t> blk(data + base + off,
                                  static_cast<size_t>(len));

            for (int8_t v : blk) {
                if (v != 0) {
                    ++stats.nonzeros_before;
                    const double m = elemMagnitude(v);
                    l2_before += m * m;
                }
            }

            if (bypass || bound >= len) {
                ++stats.bypassed_blocks;
                for (int8_t v : blk) {
                    const double m = elemMagnitude(v);
                    l2_after += m * m;
                }
                continue;
            }

            ++stats.blocks;
            stats.comparisons +=
                static_cast<int64_t>(bound) * (len - 1);
            const Mask8 keep =
                topNnzMask(std::span<const int8_t>(blk), bound);
            for (size_t i = 0; i < blk.size(); ++i) {
                const double m = elemMagnitude(blk[i]);
                if (maskTest(keep, static_cast<int>(i))) {
                    l2_after += m * m;
                } else if (blk[i] != 0) {
                    ++stats.nonzeros_dropped;
                }
            }
            applyKeepMask(blk, keep);
        }
    }
    stats.l2_retained = l2_before > 0.0 ? l2_after / l2_before : 1.0;
    return stats;
}

} // anonymous namespace

DapStats
dapPruneTensor(Int8Tensor &t, int nnz, const DapConfig &cfg)
{
    s2ta_assert(t.rank() >= 1, "rank-0 tensor");
    const int channels = t.dim(t.rank() - 1);
    return dapPruneContiguous(t.data(), t.size(), channels, nnz, cfg);
}

DapStats
dapPruneActivations(GemmProblem &p, int nnz, const DapConfig &cfg)
{
    s2ta_assert(p.k % cfg.bz == 0, "K=%d vs bz=%d", p.k, cfg.bz);
    return dapPruneContiguous(p.a.data(),
                              static_cast<int64_t>(p.a.size()), p.k,
                              nnz, cfg);
}

int
chooseLayerNnz(const Int8Tensor &activations, double min_l2_retention,
               const DapConfig &cfg)
{
    for (int nnz = 1; nnz <= cfg.max_stages; ++nnz) {
        Int8Tensor copy = activations;
        const DapStats st = dapPruneTensor(copy, nnz, cfg);
        if (st.l2_retained >= min_l2_retention)
            return nnz;
    }
    return cfg.bz; // dense bypass
}

} // namespace s2ta
